//! Staging-mode parity suite (ISSUE 8).
//!
//! Three invariants of the columnar staging layer:
//!
//! 1. **Functional parity** — the kernels read the same bytes whether
//!    the column arrived packed (SoA), buried inside a 2 KB frame
//!    slot (frames ablation), or via NIC→GPU direct DMA. Shading the
//!    same packets under every mode must yield byte-identical frames
//!    and ports; only modeled time moves (frames ≥ soa ≥ direct-dma).
//! 2. **Per-mode shard stability** — within any one staging mode the
//!    virtual-time result is a pure function of (config, app, seed),
//!    never of the shard count, for every column-staged app at
//!    shards ∈ {1, 2, 4, 8}, CPU and GPU configs.
//! 3. **CPU-path independence** — CPU-only runs never stage columns,
//!    so their reports must be byte-identical across staging modes.
//!
//! (The *default-mode* GPU fingerprints — SoA reproducing the seed
//! implementation bit for bit — are pinned in `tests/fastpath.rs`.)
//!
//! A `ps-check` property at the bottom drives the gather itself:
//! random columns staged under SoA and frames must be read back
//! identically through each mode's `Slots` addressing, with the PCIe
//! ledger charging packed bytes vs whole-frame bytes respectively.

use packetshader::check::{check, ensure, ensure_eq, Gen};
use packetshader::core::apps::{Backend, Ipv4App, LbApp, NatApp, OpenFlowApp};
use packetshader::core::columns::{ColumnStage, FLOW_COLUMNS, FRAME_SLOT, IPV4_COLUMNS};
use packetshader::core::{App, Router, RouterConfig, RouterReport, Staging};
use packetshader::gpu::{GpuDevice, GpuEngine};
use packetshader::hw::ioh::Ioh;
use packetshader::hw::pcie::PcieModel;
use packetshader::hw::spec::{IohSpec, PcieSpec};
use packetshader::io::Packet;
use packetshader::lookup::route::Route4;
use packetshader::lookup::synth;
use packetshader::net::ethernet::MacAddr;
use packetshader::net::PacketBuilder;
use packetshader::nic::port::PortId;
use packetshader::pktgen::{TrafficKind, TrafficSpec};
use packetshader::sim::MILLIS;
use ps_bench::workloads;
use std::net::Ipv4Addr;

const DUR: u64 = MILLIS / 2;

const MODES: [Staging; 3] = [Staging::Frames, Staging::Soa, Staging::DirectDma];

fn full_fp(r: &RouterReport) -> String {
    format!("{r:?}")
}

fn rig() -> (GpuEngine, Ioh) {
    let dev = GpuDevice::gtx480_with_mem(64 << 20);
    (
        GpuEngine::new(dev, PcieModel::new(PcieSpec::dual_ioh_x16())),
        Ioh::new(IohSpec::intel_5520_dual()),
    )
}

fn udp(src: u32, dst: u32, sport: u16, in_port: u16) -> Packet {
    let f = PacketBuilder::udp_v4(
        MacAddr::local(1),
        MacAddr::local(2),
        Ipv4Addr::from(src),
        Ipv4Addr::from(dst),
        sport,
        80,
        64,
    );
    Packet::new(0, f, PortId(in_port), 0)
}

/// What shading did to each packet: final frame bytes + egress port.
type Outcome = Vec<(Vec<u8>, Option<PortId>)>;

/// Shade one batch under `mode` and return the functional outcome
/// (frames + ports) plus the completion time.
fn shade_under<A: App>(mut app: A, mode: Staging, mut pkts: Vec<Packet>) -> (Outcome, u64) {
    let (mut eng, mut ioh) = rig();
    app.set_staging(mode);
    app.setup_gpu(0, &mut eng);
    app.pre_shade(&mut pkts);
    let done = app.shade(0, &mut eng, &mut ioh, 0, &mut pkts);
    (
        pkts.iter().map(|p| (p.data.clone(), p.out_port)).collect(),
        done,
    )
}

/// Functional parity + honest cost ordering for one app: identical
/// frames/ports in every mode, with frames-staging never finishing
/// before SoA and SoA never before direct DMA.
fn assert_mode_parity<A: App>(label: &str, mk: impl Fn() -> A, pkts: Vec<Packet>) {
    let (frames_res, t_frames) = shade_under(mk(), Staging::Frames, pkts.clone());
    let (soa_res, t_soa) = shade_under(mk(), Staging::Soa, pkts.clone());
    let (direct_res, t_direct) = shade_under(mk(), Staging::DirectDma, pkts);
    assert_eq!(soa_res, frames_res, "{label}: soa vs frames results");
    assert_eq!(soa_res, direct_res, "{label}: soa vs direct-dma results");
    assert!(
        t_frames >= t_soa && t_soa >= t_direct,
        "{label}: cost order frames({t_frames}) >= soa({t_soa}) >= direct({t_direct})"
    );
}

#[test]
fn ipv4_results_identical_across_modes() {
    let routes = vec![
        Route4::new(0x0A00_0000, 8, 1),
        Route4::new(0x0B00_0000, 8, 3),
        Route4::new(0, 0, 0),
    ];
    let pkts: Vec<Packet> = (0..192u32)
        .map(|i| {
            let dst = if i % 3 == 0 {
                0x0A00_0000 + i
            } else {
                0x0B00_0000 + i
            };
            udp(0x0C00_0001 + i, dst, 5000, (i % 8) as u16)
        })
        .collect();
    assert_mode_parity("ipv4", || Ipv4App::new(&routes), pkts);
}

#[test]
fn ipv6_results_identical_across_modes() {
    let pkts: Vec<Packet> = (0..128u32)
        .map(|i| {
            let f = PacketBuilder::udp_v6(
                MacAddr::local(1),
                MacAddr::local(2),
                std::net::Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 1 + i as u16),
                std::net::Ipv6Addr::new(0x2001, 0xdb8, 1 + i as u16, 0, 0, 0, 0, 9),
                5000,
                80,
                64,
            );
            Packet::new(0, f, PortId((i % 8) as u16), 0)
        })
        .collect();
    assert_mode_parity("ipv6", || workloads::ipv6_app(2_000, 2), pkts);
}

#[test]
fn openflow_results_identical_across_modes() {
    let mut spec = TrafficSpec::ipv4_64b(20.0, 5);
    spec.flows = Some(64);
    let pkts: Vec<Packet> = (0..128u32)
        .map(|i| {
            udp(
                0x0A00_0001 + (i % 64),
                0x0A63_0001,
                4000 + (i % 64) as u16,
                0,
            )
        })
        .collect();
    assert_mode_parity(
        "openflow",
        || OpenFlowApp::new(workloads::openflow_switch(&spec, 64, 16)),
        pkts,
    );
}

#[test]
fn nat_results_identical_across_modes() {
    let pkts: Vec<Packet> = (0..128u32)
        .map(|i| udp(0x0A00_0001 + (i % 40), 0x0C63_0001, 5000, 0))
        .collect();
    assert_mode_parity("nat", || NatApp::new(8, 2, 1 << 16, 0), pkts);
}

#[test]
fn lb_results_identical_across_modes() {
    let backends: Vec<Backend> = (0..8)
        .map(|i| Backend {
            ip: 0x0A63_0001 + i,
            port: 8080,
        })
        .collect();
    let pkts: Vec<Packet> = (0..128u32)
        .map(|i| udp(0x0A00_0001 + (i % 40), 0xC633_6401, 5000, 0))
        .collect();
    assert_mode_parity(
        "lb",
        || LbApp::new(backends.clone(), 8, 2, 1 << 16, 0),
        pkts,
    );
}

// ---------------------------------------------------------------------------
// Per-mode shard stability: within a mode, shard count changes nothing.
// ---------------------------------------------------------------------------

fn assert_shard_stable<A: App + Send>(
    label: &str,
    mut cfg: RouterConfig,
    mk: impl Fn() -> A,
    spec: TrafficSpec,
) {
    for mode in MODES {
        cfg.staging = mode;
        let base = full_fp(&Router::run_with_shards(cfg, mk(), spec, DUR, 1));
        for shards in [2usize, 4, 8] {
            let fp = full_fp(&Router::run_with_shards(cfg, mk(), spec, DUR, shards));
            assert_eq!(
                base,
                fp,
                "{label} [{}]: shards=1 vs shards={shards}",
                mode.label()
            );
        }
    }
}

#[test]
fn ipv4_shard_stable_in_every_mode() {
    let mk = || {
        let mut routes = vec![Route4::new(0, 1, 0), Route4::new(0x8000_0000, 1, 4)];
        routes.extend(synth::routeviews_like(2_000, 8, 3));
        Ipv4App::new(&routes)
    };
    let spec = TrafficSpec::ipv4_64b(30.0, 5);
    assert_shard_stable("ipv4 gpu", RouterConfig::paper_gpu(), mk, spec);
}

#[test]
fn ipv6_shard_stable_in_every_mode() {
    let spec = TrafficSpec {
        kind: TrafficKind::Ipv6Udp,
        frame_len: 64,
        offered_bits: 20_000_000_000,
        ports: 8,
        seed: 5,
        flows: None,
        ..TrafficSpec::default()
    };
    assert_shard_stable(
        "ipv6 gpu",
        RouterConfig::paper_gpu(),
        || workloads::ipv6_app(2_000, 2),
        spec,
    );
}

#[test]
fn openflow_shard_stable_in_every_mode() {
    let mut spec = TrafficSpec::ipv4_64b(20.0, 5);
    spec.flows = Some(64);
    assert_shard_stable(
        "openflow gpu",
        RouterConfig::paper_gpu(),
        || OpenFlowApp::new(workloads::openflow_switch(&spec, 64, 16)),
        spec,
    );
}

#[test]
fn nat_shard_stable_in_every_mode() {
    let spec = TrafficSpec::imix(20.0, 5).with_heavy_tail(512, 3);
    assert_shard_stable(
        "nat gpu",
        RouterConfig::paper_gpu(),
        || NatApp::new(8, 2, 1 << 16, 0),
        spec,
    );
}

#[test]
fn lb_shard_stable_in_every_mode() {
    let spec = TrafficSpec::imix(20.0, 5).with_heavy_tail(512, 3);
    let backends: Vec<Backend> = (0..16)
        .map(|i| Backend {
            ip: 0x0A63_0001 + i,
            port: 8080,
        })
        .collect();
    assert_shard_stable(
        "lb gpu",
        RouterConfig::paper_gpu(),
        || LbApp::new(backends.clone(), 8, 2, 1 << 16, 0),
        spec,
    );
}

// ---------------------------------------------------------------------------
// CPU path: staging mode is a GPU concern and must not leak.
// ---------------------------------------------------------------------------

#[test]
fn cpu_path_ignores_staging_mode() {
    let mk = || {
        let mut routes = vec![Route4::new(0, 1, 0), Route4::new(0x8000_0000, 1, 4)];
        routes.extend(synth::routeviews_like(2_000, 8, 3));
        Ipv4App::new(&routes)
    };
    let spec = TrafficSpec::ipv4_64b(30.0, 5);
    let mut cfg = RouterConfig::paper_cpu();
    cfg.staging = Staging::Soa;
    let base = full_fp(&Router::run(cfg, mk(), spec, DUR));
    for mode in [Staging::Frames, Staging::DirectDma] {
        cfg.staging = mode;
        let fp = full_fp(&Router::run(cfg, mk(), spec, DUR));
        assert_eq!(base, fp, "cpu path must not see staging mode {mode:?}");
    }
}

// ---------------------------------------------------------------------------
// The gather itself, property-checked against the Slots addressing.
// ---------------------------------------------------------------------------

/// Random columns staged under SoA and frames modes must read back
/// identically through each mode's `Slots` addressing, and the IOH
/// ledgers must charge packed bytes (SoA) vs whole frames (frames)
/// vs nothing host-side (direct DMA).
#[test]
fn column_gather_reads_back_identically_in_every_mode() {
    check("column_gather_modes_agree", |g: &mut Gen| {
        let n = g.int_in(1usize..=64);
        let set = if g.int_in(0u32..=1) == 0 {
            IPV4_COLUMNS
        } else {
            FLOW_COLUMNS
        };
        let w = set.input.width;
        let col: Vec<u8> = (0..n * w).map(|_| g.value::<u8>()).collect();
        let frame_len = g.int_in(60usize..=256);
        let pkts: Vec<Packet> = (0..n)
            .map(|i| Packet::new(i as u64, vec![0xEE; frame_len], PortId(0), 0))
            .collect();
        for mode in MODES {
            let (mut eng, mut ioh) = rig();
            let mut stage = ColumnStage::new(set);
            stage.set_mode(mode);
            let buf = stage.alloc_input(&mut eng, n.max(1));
            stage.begin().extend_from_slice(&col);
            stage.upload(&mut eng, &mut ioh, 0, &buf, &pkts);
            let slots = stage.slots();
            // Read every record back through the mode's addressing.
            let mut got = Vec::with_capacity(n * w);
            for tid in 0..n {
                let mut rec = vec![0u8; w];
                eng.dev.mem.read(&buf, slots.at(tid as u32), &mut rec);
                got.extend_from_slice(&rec);
            }
            ensure_eq!(got, col, "mode {:?} read-back", mode);
            // Ledger honesty per mode.
            match mode {
                Staging::Soa => {
                    ensure_eq!(ioh.h2d_bytes(), (n * w) as u64, "soa charges the column");
                    ensure_eq!(ioh.direct_bytes(), 0, "soa is host-staged");
                }
                Staging::Frames => {
                    ensure_eq!(
                        ioh.h2d_bytes(),
                        (n * frame_len) as u64,
                        "frames charge whole frames"
                    );
                    ensure!(FRAME_SLOT >= frame_len, "slot holds the frame");
                }
                Staging::DirectDma => {
                    ensure_eq!(ioh.h2d_bytes(), 0, "direct DMA skips the host copy");
                    ensure_eq!(
                        ioh.direct_bytes(),
                        (n * w) as u64,
                        "ledger notes the column"
                    );
                }
            }
        }
        Ok(())
    });
}
