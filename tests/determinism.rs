//! Reproducibility: identical seeds must replay identical virtual-time
//! results, in both modes — the property every experiment in
//! EXPERIMENTS.md rests on.

use packetshader::core::apps::{ForwardPattern, Ipv4App, MinimalApp};
use packetshader::core::{Router, RouterConfig};
use packetshader::lookup::route::Route4;
use packetshader::lookup::synth;
use packetshader::pktgen::TrafficSpec;
use packetshader::sim::MILLIS;

fn fingerprint(cfg: RouterConfig, seed: u64) -> (u64, u64, u64, u64, u64) {
    let mut routes = vec![Route4::new(0, 1, 0), Route4::new(0x8000_0000, 1, 4)];
    routes.extend(synth::routeviews_like(2_000, 8, 3));
    let report = Router::run(
        cfg,
        Ipv4App::new(&routes),
        TrafficSpec::ipv4_64b(30.0, seed),
        MILLIS,
    );
    (
        report.offered.packets,
        report.delivered.packets,
        report.rx_drops,
        report.latency.p50(),
        report.latency.max(),
    )
}

#[test]
fn cpu_mode_is_deterministic() {
    assert_eq!(
        fingerprint(RouterConfig::paper_cpu(), 5),
        fingerprint(RouterConfig::paper_cpu(), 5)
    );
}

#[test]
fn gpu_mode_is_deterministic() {
    assert_eq!(
        fingerprint(RouterConfig::paper_gpu(), 5),
        fingerprint(RouterConfig::paper_gpu(), 5)
    );
}

#[test]
fn different_seeds_differ() {
    assert_ne!(
        fingerprint(RouterConfig::paper_cpu(), 5),
        fingerprint(RouterConfig::paper_cpu(), 6)
    );
}

#[test]
fn minimal_app_deterministic_under_overload() {
    let run = || {
        let r = Router::run(
            RouterConfig::paper_cpu(),
            MinimalApp::new(ForwardPattern::NodeCrossing, 8),
            TrafficSpec::ipv4_64b(80.0, 9),
            MILLIS,
        );
        (r.delivered.packets, r.rx_drops)
    };
    assert_eq!(run(), run());
}
