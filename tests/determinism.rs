//! Reproducibility: identical seeds must replay identical virtual-time
//! results, in both modes — the property every experiment in
//! EXPERIMENTS.md rests on. Fingerprints cover the four stateless applications
//! (IPv4, Minimal, IPsec, OpenFlow), and a different-seed test guards
//! against a seed being silently ignored anywhere in the pipeline.

use packetshader::core::apps::{ForwardPattern, IpsecApp, Ipv4App, MinimalApp, OpenFlowApp};
use packetshader::core::{App, Router, RouterConfig};
use packetshader::lookup::route::Route4;
use packetshader::lookup::synth;
use packetshader::pktgen::TrafficSpec;
use packetshader::sim::MILLIS;
use ps_bench::workloads;

/// The cross-run fingerprint: every seed-dependent aggregate the
/// report exposes. Byte-stable across runs for a fixed (config, app,
/// seed) triple.
type Fingerprint = (u64, u64, u64, u64, u64, u64);

fn run_fingerprint<A: App + Send>(cfg: RouterConfig, app: A, spec: TrafficSpec) -> Fingerprint {
    let report = Router::run(cfg, app, spec, MILLIS);
    (
        report.offered.packets,
        report.delivered.packets,
        report.rx_drops,
        report.slow_path,
        report.latency.p50(),
        report.latency.max(),
    )
}

fn fingerprint(cfg: RouterConfig, seed: u64) -> Fingerprint {
    let mut routes = vec![Route4::new(0, 1, 0), Route4::new(0x8000_0000, 1, 4)];
    routes.extend(synth::routeviews_like(2_000, 8, 3));
    run_fingerprint(
        cfg,
        Ipv4App::new(&routes),
        TrafficSpec::ipv4_64b(30.0, seed),
    )
}

fn fingerprint_ipsec(cfg: RouterConfig, seed: u64) -> Fingerprint {
    let app = IpsecApp::new([7u8; 16], 0xABCD, b"determinism-key");
    run_fingerprint(cfg, app, TrafficSpec::ipv4_64b(10.0, seed))
}

fn fingerprint_openflow(cfg: RouterConfig, seed: u64) -> Fingerprint {
    let mut spec = TrafficSpec::ipv4_64b(20.0, seed);
    spec.flows = Some(64);
    let app = OpenFlowApp::new(workloads::openflow_switch(&spec, 64, 16));
    run_fingerprint(cfg, app, spec)
}

#[test]
fn cpu_mode_is_deterministic() {
    assert_eq!(
        fingerprint(RouterConfig::paper_cpu(), 5),
        fingerprint(RouterConfig::paper_cpu(), 5)
    );
}

#[test]
fn gpu_mode_is_deterministic() {
    assert_eq!(
        fingerprint(RouterConfig::paper_gpu(), 5),
        fingerprint(RouterConfig::paper_gpu(), 5)
    );
}

#[test]
fn ipsec_app_is_deterministic_both_modes() {
    assert_eq!(
        fingerprint_ipsec(RouterConfig::paper_cpu(), 5),
        fingerprint_ipsec(RouterConfig::paper_cpu(), 5)
    );
    assert_eq!(
        fingerprint_ipsec(RouterConfig::paper_gpu(), 5),
        fingerprint_ipsec(RouterConfig::paper_gpu(), 5)
    );
}

#[test]
fn openflow_app_is_deterministic_both_modes() {
    assert_eq!(
        fingerprint_openflow(RouterConfig::paper_cpu(), 5),
        fingerprint_openflow(RouterConfig::paper_cpu(), 5)
    );
    assert_eq!(
        fingerprint_openflow(RouterConfig::paper_gpu(), 5),
        fingerprint_openflow(RouterConfig::paper_gpu(), 5)
    );
}

/// Two different seeds must produce different fingerprints in every
/// app — a seed that stops reaching the generator would freeze the
/// traffic and silently void every "deterministic per seed" claim.
#[test]
fn different_seeds_differ() {
    assert_ne!(
        fingerprint(RouterConfig::paper_cpu(), 5),
        fingerprint(RouterConfig::paper_cpu(), 6)
    );
}

#[test]
fn different_seeds_differ_ipsec_and_openflow() {
    assert_ne!(
        fingerprint_ipsec(RouterConfig::paper_cpu(), 5),
        fingerprint_ipsec(RouterConfig::paper_cpu(), 6)
    );
    assert_ne!(
        fingerprint_openflow(RouterConfig::paper_cpu(), 5),
        fingerprint_openflow(RouterConfig::paper_cpu(), 6)
    );
}

/// Tracing must be a pure observer: running the exact same (config,
/// app, seed) triple with a trace collector installed yields the same
/// fingerprint as running untraced. A span that perturbed the virtual
/// clock or consumed RNG draws would show up here immediately.
#[test]
fn tracing_does_not_perturb_results() {
    use packetshader::trace::TraceConfig;
    for cfg in [RouterConfig::paper_cpu(), RouterConfig::paper_gpu()] {
        let untraced = fingerprint(cfg, 5);
        let (traced, collector) =
            ps_bench::trace::traced(TraceConfig::all(), || fingerprint(cfg, 5));
        assert_eq!(untraced, traced, "tracing perturbed the simulation");
        assert!(!collector.is_empty(), "tracer saw no events");
    }
}

/// Identical seeds must replay to a byte-identical Chrome trace dump:
/// the exporter's integer-only µs formatting plus the collector's
/// stable (timestamp, emission-order) sort make the whole timeline —
/// not just the report aggregates — part of the determinism contract.
#[test]
fn trace_dump_is_byte_identical_per_seed() {
    use packetshader::trace::{chrome, TraceConfig};
    let dump = |seed: u64| {
        let (_, collector) = ps_bench::trace::traced(TraceConfig::all(), || {
            fingerprint(RouterConfig::paper_gpu(), seed)
        });
        chrome::export(&collector)
    };
    assert_eq!(dump(5), dump(5), "same seed produced different trace bytes");
    assert_ne!(
        dump(5),
        dump(6),
        "different seeds produced identical traces"
    );
}

#[test]
fn minimal_app_deterministic_under_overload() {
    let run = || {
        let r = Router::run(
            RouterConfig::paper_cpu(),
            MinimalApp::new(ForwardPattern::NodeCrossing, 8),
            TrafficSpec::ipv4_64b(80.0, 9),
            MILLIS,
        );
        (r.delivered.packets, r.rx_drops)
    };
    assert_eq!(run(), run());
}
