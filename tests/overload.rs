//! Overload-governance suite (ISSUE 10): adaptive batching, priority
//! lanes, closed-loop backpressure and the decomposed drop ledger.
//!
//! Two families of guarantees:
//!
//! * **Behavioral** — adaptive batching must actually cut the
//!   low-load sojourn tail without costing saturated throughput, and
//!   a closed-loop source must convert overload into generator-side
//!   ledger entries instead of NIC tail drops.
//! * **Determinism** — every governance mechanism is a pure function
//!   of virtual-time state, so runs with all of them armed must stay
//!   byte-identical across `shards ∈ {1, 2, 4, 8}` — drop ledger,
//!   sojourn histograms and latency fingerprint included.
//!
//! `ps-check` properties at the bottom pin the [`Histogram`]
//! percentile edges the new p999/max columns rely on.

use packetshader::check::{check, ensure, ensure_eq, Gen};
use packetshader::core::apps::{ForwardPattern, MinimalApp};
use packetshader::core::{LatencyConfig, Router, RouterConfig, RouterReport};
use packetshader::fault::FaultSpec;
use packetshader::pktgen::{TrafficKind, TrafficSpec};
use packetshader::sim::stats::Histogram;
use packetshader::sim::MILLIS;
use ps_bench::workloads;

/// Parity-run duration: long enough to fill pipelines and drop paths.
const DUR: u64 = MILLIS / 2;

fn ipv4_spec(gbps: f64, seed: u64) -> TrafficSpec {
    TrafficSpec {
        kind: TrafficKind::Ipv4Udp,
        frame_len: 64,
        offered_bits: (gbps * 1e9) as u64,
        ports: 8,
        seed,
        flows: None,
        ..TrafficSpec::default()
    }
}

/// The adaptive latency profile the overload sweep measures: depth-
/// scaled fetch caps, eager interrupts, and opportunistic offload so
/// the shrunken low-load chunks skip the GPU pipeline.
fn adaptive_cfg() -> RouterConfig {
    let mut cfg = RouterConfig::paper_gpu();
    cfg.latency = LatencyConfig::adaptive();
    cfg.opportunistic = true;
    cfg
}

// ---------------------------------------------------------------------------
// 1. Behavior: the latency/throughput trade the sweep is judged on.
// ---------------------------------------------------------------------------

/// At half load, adaptive batching must cut the p99 RX→TX sojourn
/// against the fixed 64-cap pipeline (the acceptance headline), and
/// the p999 tail — dominated by interrupt-moderation stalls in fixed
/// mode — must shrink at least as much.
#[test]
fn adaptive_batching_cuts_low_load_sojourn_tail() {
    let run = |cfg: RouterConfig| {
        Router::run(cfg, workloads::ipv4_app(2_000, 1), ipv4_spec(20.0, 1), DUR)
    };
    let fixed = run(RouterConfig::paper_gpu());
    let adaptive = run(adaptive_cfg());
    assert!(
        adaptive.sojourn.p99() < fixed.sojourn.p99(),
        "p99 sojourn: adaptive {} ns vs fixed {} ns",
        adaptive.sojourn.p99(),
        fixed.sojourn.p99(),
    );
    assert!(
        adaptive.sojourn.p999() < fixed.sojourn.p999(),
        "p999 sojourn: adaptive {} ns vs fixed {} ns",
        adaptive.sojourn.p999(),
        fixed.sojourn.p999(),
    );
    // The cut must not come out of delivery: both modes carry the
    // full offered load at this operating point.
    let ratio = adaptive.delivered.packets as f64 / fixed.delivered.packets.max(1) as f64;
    assert!(
        ratio > 0.99,
        "adaptive must not shed load at half load (ratio {ratio:.4})"
    );
}

/// At saturating load the adaptive governor must fall back to the
/// paper's operating point: queues stay deep, so caps sit at 64 and
/// interrupts moderate — delivered throughput within 5% of fixed.
#[test]
fn adaptive_batching_holds_saturated_throughput() {
    let run = |cfg: RouterConfig| {
        Router::run(cfg, workloads::ipv4_app(2_000, 1), ipv4_spec(42.0, 1), DUR)
    };
    let fixed = run(RouterConfig::paper_gpu());
    let adaptive = run(adaptive_cfg());
    let ratio = adaptive.delivered.packets as f64 / fixed.delivered.packets.max(1) as f64;
    assert!(
        ratio > 0.95,
        "adaptive delivered {} vs fixed {} at saturation (ratio {ratio:.4})",
        adaptive.delivered.packets,
        fixed.delivered.packets,
    );
}

/// A closed-loop source under 2x overload throttles at the generator:
/// the drop ledger moves entirely to `backpressure`, the NIC and the
/// rings never tail-drop, and queue growth stays pinned near the high
/// watermark instead of slamming into ring capacity.
#[test]
fn closed_loop_source_absorbs_overload() {
    let spec = ipv4_spec(80.0, 1).closed_loop(64);
    let r = Router::run(
        RouterConfig::paper_gpu(),
        workloads::ipv4_app(2_000, 1),
        spec,
        DUR,
    );
    assert!(r.drops.backpressure > 0, "source must throttle under 2x");
    assert_eq!(r.drops.ring_tail, 0, "rings must never overflow");
    assert_eq!(r.drops.nic_admission, 0, "NIC must never starve");
    assert!(
        r.peak_ring_depth < 1024,
        "queue growth must stay off ring capacity (peak {})",
        r.peak_ring_depth
    );
    // The open-loop run of the same offered load does overflow — the
    // contrast the sweep's 2.0x row shows.
    let open = Router::run(
        RouterConfig::paper_gpu(),
        workloads::ipv4_app(2_000, 1),
        ipv4_spec(80.0, 1),
        DUR,
    );
    assert!(open.drops.nic_side() > 0, "open loop must drop at the NIC");
    assert_eq!(open.drops.backpressure, 0, "open loop never throttles");
}

/// Priority-lane packets bypass bulk batching and the GPU pipeline:
/// their sojourn tail must sit below the bulk tail, and the split
/// histograms must cover every delivered packet between them.
#[test]
fn priority_lane_undercuts_bulk_sojourn() {
    let mut cfg = adaptive_cfg();
    cfg.latency = cfg.latency.with_priority(16);
    let r = Router::run(cfg, workloads::ipv4_app(2_000, 1), ipv4_spec(20.0, 1), DUR);
    assert!(r.prio_sojourn.count() > 0, "some flows must classify");
    assert!(
        r.prio_sojourn.count() < r.sojourn.count(),
        "priority must be a strict subset"
    );
    assert!(
        r.prio_sojourn.p99() <= r.sojourn.p99(),
        "prio p99 {} ns must not exceed bulk p99 {} ns",
        r.prio_sojourn.p99(),
        r.sojourn.p99(),
    );
    assert!(r.prio_latency.count() > 0, "sink sees the priority split");
}

// ---------------------------------------------------------------------------
// 2. The drop-accounting seam: ledger counters stay decomposable.
// ---------------------------------------------------------------------------

/// Injected NIC faults and organic descriptor starvation share the
/// `rx_drops` total (the pinned quantity) but distinct ledger
/// counters, and the fault side must reconcile against the ps-fault
/// ledger exactly: `nic_fault == flap_drops + nic_starved`.
#[test]
fn fault_and_admission_drops_stay_decomposed() {
    let mut cfg = RouterConfig::paper_cpu();
    cfg.faults = FaultSpec::scenario("nic")
        .expect("known scenario")
        .with_seed(0xBEEF);
    let r = Router::run(
        cfg,
        MinimalApp::new(ForwardPattern::SameNode, 8),
        ipv4_spec(30.0, 9),
        DUR,
    );
    assert!(r.drops.nic_fault > 0, "the nic scenario must inject drops");
    assert_eq!(
        r.drops.nic_fault,
        r.faults.flap_drops + r.faults.nic_starved,
        "NIC-fault ledger must reconcile with the fault plan's"
    );
    assert_eq!(
        r.drops.nic_fault + r.drops.nic_admission,
        r.drop_split.0,
        "ledger must decompose the NIC-drop total"
    );
    assert_eq!(r.drops.ring_tail, r.drop_split.1);
    assert_eq!(r.drops.nic_side(), r.rx_drops);
    assert_eq!(r.drops.gen_side(), 0, "open loop: no generator drops");
}

/// Default-mode runs leave every governance counter at zero and the
/// NIC ledger equal to the legacy split — the seam is pure
/// bookkeeping.
#[test]
fn default_mode_ledger_matches_legacy_split() {
    let r = Router::run(
        RouterConfig::paper_gpu(),
        workloads::ipv4_app(2_000, 1),
        ipv4_spec(60.0, 1),
        DUR,
    );
    assert_eq!(r.drops.backpressure, 0);
    assert_eq!(r.drops.nic_fault, 0, "no plan armed");
    assert_eq!(r.drops.nic_admission, r.drop_split.0);
    assert_eq!(r.drops.ring_tail, r.drop_split.1);
    assert_eq!(r.prio_sojourn.count(), 0, "no classifier configured");
    assert!(r.sojourn.count() > 0, "sojourn rides every delivery");
}

// ---------------------------------------------------------------------------
// 3. Determinism: governance mechanisms preserve shard parity.
// ---------------------------------------------------------------------------

/// Byte-level report fingerprint (same contract as `tests/shards.rs`:
/// Debug output renders every counter, ledger field and histogram
/// bucket).
fn full_fp(r: &RouterReport) -> String {
    format!("{r:?}")
}

/// A wide box: `nodes` NUMA domains, two ports and one worker each,
/// so shard counts 4 and 8 are real splits.
fn wide_cfg(nodes: usize) -> RouterConfig {
    let mut cfg = RouterConfig::paper_cpu();
    cfg.nodes = nodes;
    cfg.workers_per_node = 1;
    cfg.ports = 2 * nodes as u16;
    cfg
}

fn wide_spec(nodes: usize, gbps: f64, seed: u64) -> TrafficSpec {
    TrafficSpec {
        kind: TrafficKind::Ipv4Udp,
        frame_len: 64,
        offered_bits: (gbps * 1e9) as u64,
        ports: 2 * nodes as u16,
        seed,
        flows: None,
        ..TrafficSpec::default()
    }
}

fn assert_parity(label: &str, cfg: RouterConfig, spec: TrafficSpec) {
    let mk = || MinimalApp::new(ForwardPattern::SameNode, 16);
    let base = full_fp(&Router::run_with_shards(cfg, mk(), spec, DUR, 1));
    for shards in [2usize, 4, 8] {
        let fp = full_fp(&Router::run_with_shards(cfg, mk(), spec, DUR, shards));
        assert_eq!(base, fp, "{label}: shards=1 vs shards={shards}");
    }
}

/// Same seed + load factor ⇒ byte-identical drop ledger and latency
/// fingerprint at shards {1, 2, 4, 8}, with *every* governance
/// mechanism armed at once: adaptive batching, a priority classifier,
/// and a closed-loop source, at half load and at 2x overload.
#[test]
fn governed_overload_identical_across_shard_counts() {
    let mut cfg = wide_cfg(8);
    cfg.latency = LatencyConfig::adaptive().with_priority(16);
    for factor in [0.5f64, 2.0] {
        let spec = wide_spec(8, 40.0, 7).scaled(factor).closed_loop(64);
        assert_parity(&format!("governed {factor}x"), cfg, spec);
    }
}

/// The windowed regime (priced QPI hop, cross-node forwarding) with
/// adaptive batching and priority lanes on: far-future discards are
/// counted at the source in both sequential and windowed runs, so the
/// ledger must not move with the shard count.
#[test]
fn governed_windowed_run_identical_across_shard_counts() {
    let mut cfg = wide_cfg(4);
    cfg.testbed.ioh = cfg.testbed.ioh.with_qpi_hop(300);
    cfg.latency = LatencyConfig::adaptive().with_priority(16);
    let mk = || MinimalApp::new(ForwardPattern::NodeCrossing, 8);
    let spec = wide_spec(4, 20.0, 11);
    let base = full_fp(&Router::run_with_shards(cfg, mk(), spec, DUR, 1));
    for shards in [2usize, 4, 8] {
        let fp = full_fp(&Router::run_with_shards(cfg, mk(), spec, DUR, shards));
        assert_eq!(base, fp, "governed windowed: shards=1 vs shards={shards}");
    }
}

// ---------------------------------------------------------------------------
// 4. Histogram percentile edges (ps-check properties).
// ---------------------------------------------------------------------------

/// Empty and single-sample histograms: every quantile of an empty
/// histogram is 0; every quantile of a single-sample histogram is
/// exactly that sample (the min/max clamp collapses the bucket).
#[test]
fn histogram_quantile_edges() {
    check("histogram_quantile_edges", |g: &mut Gen| {
        let empty = Histogram::new();
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            ensure_eq!(empty.quantile(q), 0, "empty at q={}", q);
        }
        ensure_eq!(empty.max(), 0);
        let v = g.value::<u64>() >> g.int_in(0u32..=40);
        let mut h = Histogram::new();
        h.record(v);
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            ensure_eq!(h.quantile(q), v, "single sample {} at q={}", v, q);
        }
        Ok(())
    });
}

/// Bucket boundaries: values straddling a power of two land exactly
/// when alone in the histogram, for any octave.
#[test]
fn histogram_bucket_boundaries_are_exact_alone() {
    check("histogram_bucket_boundaries", |g: &mut Gen| {
        let k = g.int_in(1u32..=62);
        let v = 1u64 << k;
        for x in [v - 1, v, v + 1] {
            let mut h = Histogram::new();
            h.record(x);
            ensure_eq!(h.p999(), x, "boundary value {}", x);
            ensure_eq!(h.max(), x);
        }
        Ok(())
    });
}

/// Quantiles are monotone in q over any sample set — in particular
/// `p999() >= p99()` — and always bounded by `[min, max]`.
#[test]
fn histogram_quantiles_monotone_and_bounded() {
    check("histogram_quantiles_monotone", |g: &mut Gen| {
        let vals = g.vec_of(1, 300, |g| g.value::<u64>() >> g.int_in(24u32..=60));
        let mut h = Histogram::new();
        for &v in &vals {
            h.record(v);
        }
        let qs = [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0];
        let xs: Vec<u64> = qs.iter().map(|&q| h.quantile(q)).collect();
        ensure!(
            xs.windows(2).all(|w| w[0] <= w[1]),
            "quantiles must be monotone: {:?}",
            xs
        );
        ensure!(h.p999() >= h.p99(), "p999 below p99");
        ensure!(h.p999() >= h.p50(), "p999 below p50");
        ensure!(
            xs.iter().all(|&x| x >= h.min() && x <= h.max()),
            "quantiles must stay in [min, max]"
        );
        ensure_eq!(h.quantile(1.0), h.max(), "q=1 is the max");
        Ok(())
    });
}
