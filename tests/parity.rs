//! CPU-path vs GPU-path functional parity: both modes must make the
//! same forwarding decisions and emit identical bytes, packet for
//! packet — the core guarantee that the offload is transparent.

use packetshader::core::apps::{IpsecApp, Ipv4App, Ipv6App, OpenFlowApp};
use packetshader::core::App;
use packetshader::gpu::{GpuDevice, GpuEngine};
use packetshader::hw::ioh::Ioh;
use packetshader::hw::pcie::PcieModel;
use packetshader::hw::spec::{IohSpec, PcieSpec};
use packetshader::io::Packet;
use packetshader::lookup::route::{Route4, Route6};
use packetshader::lookup::synth;
use packetshader::net::ethernet::MacAddr;
use packetshader::net::{FlowKey, PacketBuilder};
use packetshader::openflow::wildcard::wc;
use packetshader::openflow::{Action, OpenFlowSwitch, WildcardEntry};
use packetshader::pktgen::{Generator, TrafficKind, TrafficSpec};

fn gpu_env() -> (GpuEngine, Ioh) {
    (
        GpuEngine::new(
            GpuDevice::gtx480_with_mem(96 << 20),
            PcieModel::new(PcieSpec::dual_ioh_x16()),
        ),
        Ioh::new(IohSpec::intel_5520_dual()),
    )
}

fn traffic(kind: TrafficKind, n: usize, seed: u64) -> Vec<Packet> {
    let mut g = Generator::new(TrafficSpec {
        kind,
        frame_len: 64,
        offered_bits: 1_000_000_000,
        ports: 8,
        seed,
        flows: None,
        ..TrafficSpec::default()
    });
    (0..n).map(|_| g.next_packet().1).collect()
}

/// Run the same packet set through both paths of `app_a`/`app_b` and
/// compare `(id, out_port, bytes)`.
fn assert_parity<A: App>(mut cpu_app: A, mut gpu_app: A, pkts: Vec<Packet>) {
    let (mut eng, mut ioh) = gpu_env();
    gpu_app.setup_gpu(0, &mut eng);

    let mut via_cpu = pkts.clone();
    cpu_app.pre_shade(&mut via_cpu);
    cpu_app.process_cpu(&mut via_cpu);

    let mut via_gpu = pkts;
    gpu_app.pre_shade(&mut via_gpu);
    gpu_app.shade(0, &mut eng, &mut ioh, 0, &mut via_gpu);
    via_gpu.retain(|p| p.out_port.is_some());

    let a: Vec<_> = via_cpu
        .iter()
        .map(|p| (p.id, p.out_port, p.data.clone()))
        .collect();
    let b: Vec<_> = via_gpu
        .iter()
        .map(|p| (p.id, p.out_port, p.data.clone()))
        .collect();
    assert_eq!(a.len(), b.len(), "packet counts differ");
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.0, y.0, "packet order");
        assert_eq!(x.1, y.1, "out port of packet {}", x.0);
        assert_eq!(x.2, y.2, "bytes of packet {}", x.0);
    }
}

#[test]
fn ipv4_parity_on_500_random_packets() {
    let mut routes = vec![Route4::new(0, 1, 0), Route4::new(0x8000_0000, 1, 4)];
    routes.extend(synth::routeviews_like(3_000, 8, 2));
    assert_parity(
        Ipv4App::new(&routes),
        Ipv4App::new(&routes),
        traffic(TrafficKind::Ipv4Udp, 500, 3),
    );
}

#[test]
fn ipv6_parity_on_500_random_packets() {
    let mut routes: Vec<Route6> = (0..8u16)
        .map(|i| Route6::new((0b001u128 << 125) | (u128::from(i) << 122), 6, i))
        .collect();
    routes.extend(synth::random_ipv6(1_500, 8, 2));
    assert_parity(
        Ipv6App::new(&routes),
        Ipv6App::new(&routes),
        traffic(TrafficKind::Ipv6Udp, 500, 4),
    );
}

#[test]
fn ipsec_parity_bit_exact() {
    assert_parity(
        IpsecApp::new([0x11; 16], 0xBEEF, b"parity-key"),
        IpsecApp::new([0x11; 16], 0xBEEF, b"parity-key"),
        traffic(TrafficKind::Ipv4Udp, 200, 5),
    );
}

#[test]
fn openflow_parity_with_mixed_tables() {
    let build = || {
        let mut sw = OpenFlowSwitch::new();
        // Exact entry for one specific constructed flow.
        let f = PacketBuilder::udp_v4(
            MacAddr::local(1),
            MacAddr::local(2),
            "10.0.0.1".parse().unwrap(),
            "10.0.0.2".parse().unwrap(),
            1000,
            2000,
            64,
        );
        sw.add_exact(FlowKey::extract(0, &f).unwrap(), Action::Output(6));
        // Wildcards: UDP to low ports -> 1, 10/8 -> 2, the rest by /3.
        sw.add_wildcard(WildcardEntry {
            fields: wc::NW_PROTO | wc::TP_DST,
            priority: 50,
            key: FlowKey {
                nw_proto: 17,
                tp_dst: 53,
                ..FlowKey::default()
            },
            nw_src_mask: 0,
            nw_dst_mask: 0,
            action: Action::Output(1),
        });
        for i in 0..8u16 {
            sw.add_wildcard(WildcardEntry {
                fields: wc::NW_DST,
                priority: 0,
                key: FlowKey {
                    nw_dst: u32::from(i) << 29,
                    ..FlowKey::default()
                },
                nw_src_mask: 0,
                nw_dst_mask: 0xE000_0000,
                action: Action::Output(i),
            });
        }
        OpenFlowApp::new(sw)
    };
    assert_parity(build(), build(), traffic(TrafficKind::Ipv4Udp, 500, 6));
}

#[test]
fn per_flow_order_is_preserved_through_the_gpu_pipeline() {
    // One flow (fixed 5-tuple) must come out in generation order.
    use packetshader::core::{Router, RouterConfig};
    use packetshader::sim::MILLIS;
    let mut spec = TrafficSpec::ipv4_64b(2.0, 11);
    spec.flows = Some(8); // all packets of a flow share a worker
    let mut routes = vec![Route4::new(0, 1, 0), Route4::new(0x8000_0000, 1, 4)];
    routes.extend(synth::routeviews_like(1_000, 8, 2));
    let mut router = Router::new(
        RouterConfig::paper_gpu(),
        Ipv4App::new(&routes),
        spec,
        MILLIS,
    );
    router.sink.track_flows = Some(8);
    let mut sim = packetshader::sim::Simulation::new(router);
    sim.schedule(0, packetshader::core::router::Ev::Gen);
    sim.run_until(MILLIS + MILLIS / 2);
    assert!(sim.model.sink.delivered.packets > 1_000);
    assert_eq!(
        sim.model.sink.flow_inversions, 0,
        "per-flow FIFO order violated (§5.3)"
    );
}
