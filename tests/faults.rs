//! The adversarial corpus and fault-determinism suite (ISSUE 4).
//!
//! Three contracts are pinned here:
//!
//! 1. **Drops, not panics.** Every application survives frames that
//!    arrive bit-flipped, truncated, zero-length, or with broken
//!    checksums/ICVs — on both the CPU path and the GPU path — and
//!    still routes the healthy traffic mixed in with the garbage.
//! 2. **Fault plans are deterministic.** Any `FaultSpec` seed yields
//!    a byte-identical stats fingerprint on re-run, and a plan with
//!    every rate forced to zero reproduces the *pinned* fault-free
//!    fingerprints from `tests/fastpath.rs` exactly: arming the
//!    fault layer costs nothing when nothing fires.
//! 3. **Fallback is transparent.** When a GPU batch faults and
//!    re-runs on the CPU, the functional output — forwarding
//!    decisions, ciphertext bytes — is what the GPU would have
//!    produced. The properties shrink, so a violation reports a
//!    minimal failing batch.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use packetshader::check::{check_with, ensure, ensure_eq, Config};
use packetshader::core::apps::{IpsecApp, Ipv4App, Ipv6App, OpenFlowApp};
use packetshader::core::{App, Router, RouterConfig, RouterReport};
use packetshader::crypto::esp::{decrypt_tunnel, EspError};
use packetshader::fault::{CorruptKind, FaultSpec};
use packetshader::gpu::{GpuDevice, GpuEngine};
use packetshader::hw::ioh::Ioh;
use packetshader::hw::pcie::PcieModel;
use packetshader::hw::spec::{IohSpec, PcieSpec};
use packetshader::io::Packet;
use packetshader::lookup::route::{Route4, Route6};
use packetshader::lookup::synth;
use packetshader::net::ethernet::{EthernetFrame, MacAddr};
use packetshader::net::ipv4::Ipv4Packet;
use packetshader::net::{FlowKey, PacketBuilder};
use packetshader::nic::port::PortId;
use packetshader::openflow::wildcard::wc;
use packetshader::openflow::{Action, OpenFlowSwitch, WildcardEntry};
use packetshader::pktgen::fault::corrupt_in_place;
use packetshader::pktgen::{TrafficKind, TrafficSpec};
use packetshader::rng::Rng;
use packetshader::sim::MILLIS;
use packetshader::trace::{Category, Phase, TraceConfig};
use ps_bench::workloads;

const ETH_LEN: usize = 14;

fn gpu_env() -> (GpuEngine, Ioh) {
    (
        GpuEngine::new(
            GpuDevice::gtx480_with_mem(96 << 20),
            PcieModel::new(PcieSpec::dual_ioh_x16()),
        ),
        Ioh::new(IohSpec::intel_5520_dual()),
    )
}

// ---------------------------------------------------------------------------
// 1. Adversarial corpus: damaged frames are counted drops, never panics.
// ---------------------------------------------------------------------------

fn v4_frame(i: u64) -> Vec<u8> {
    PacketBuilder::udp_v4(
        MacAddr::local(1),
        MacAddr::local(2),
        Ipv4Addr::new(10, 0, 0, 1),
        // Spread over unicast space so routes and flow keys differ.
        Ipv4Addr::from(((i as u32).wrapping_mul(0x9E37_79B9) >> 4) | 0x0100_0000),
        1000 + i as u16,
        53,
        64 + (i as usize % 60),
    )
}

fn v6_frame(i: u64) -> Vec<u8> {
    let dst = (0b001u128 << 125) | (u128::from(i).wrapping_mul(0x9E37_79B9) << 64) | u128::from(i);
    PacketBuilder::udp_v6(
        MacAddr::local(1),
        MacAddr::local(2),
        std::net::Ipv6Addr::from(0x2001_0db8_0000_0000_0000_0000_0000_0001u128),
        std::net::Ipv6Addr::from(dst),
        1000 + i as u16,
        53,
        78 + (i as usize % 40),
    )
}

/// Every [`CorruptKind`] applied to every base frame, plus the runts
/// corruption cannot produce from a healthy frame: an empty buffer, a
/// single octet, and a bare Ethernet header with no payload at all.
fn damaged(base: &[Vec<u8>], seed: u64) -> Vec<Vec<u8>> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut out = Vec::new();
    for kind in CorruptKind::ALL {
        for f in base {
            let mut d = f.clone();
            corrupt_in_place(&mut rng, kind, &mut d);
            out.push(d);
        }
    }
    out.push(Vec::new());
    out.push(vec![0x45]);
    out.push(base[0][..ETH_LEN].to_vec());
    out
}

/// Drive `frames` (garbage first, `healthy` known-good frames last)
/// through both paths of an app pair. Asserts the accounting identity
/// on pre-shade, that survivors carry forwarding decisions, and that
/// the healthy tail still routes — amid the garbage, not instead of it.
fn assert_survives<A: App>(mut cpu: A, mut gpu: A, frames: &[Vec<u8>], healthy: usize) {
    let total = frames.len();
    let mk = || -> Vec<Packet> {
        frames
            .iter()
            .enumerate()
            .map(|(i, f)| Packet::new(i as u64, f.clone(), PortId((i % 2) as u16), 0))
            .collect()
    };

    // CPU path: pre-shade accounting must be exact, survivors routed.
    let mut a = mk();
    let pre = cpu.pre_shade(&mut a);
    assert_eq!(
        pre.dropped + pre.slow_path + a.len() as u64,
        total as u64,
        "pre_shade lost packets without counting them"
    );
    cpu.process_cpu(&mut a);
    let routed: BTreeMap<u64, PortId> = a
        .iter()
        .filter_map(|p| p.out_port.map(|port| (p.id, port)))
        .collect();
    for h in (total - healthy)..total {
        assert!(
            routed.contains_key(&(h as u64)),
            "healthy frame {h} was not routed on the CPU path"
        );
    }

    // GPU path on a fresh copy of the same corpus.
    let (mut eng, mut ioh) = gpu_env();
    gpu.setup_gpu(0, &mut eng);
    let mut b = mk();
    gpu.pre_shade(&mut b);
    gpu.shade(0, &mut eng, &mut ioh, 0, &mut b);
    let shaded: BTreeMap<u64, PortId> = b
        .iter()
        .filter_map(|p| p.out_port.map(|port| (p.id, port)))
        .collect();
    for h in (total - healthy)..total {
        assert_eq!(
            shaded.get(&(h as u64)),
            routed.get(&(h as u64)),
            "healthy frame {h} routed differently on the GPU path"
        );
    }
}

#[test]
fn ipv4_survives_adversarial_corpus() {
    let base: Vec<Vec<u8>> = (0..8).map(v4_frame).collect();
    let mut frames = damaged(&base, 0xC0FFEE);
    frames.extend(base.iter().take(4).cloned());
    let mut routes = vec![Route4::new(0, 0, 0)];
    routes.extend(synth::routeviews_like(500, 4, 9));
    assert_survives(Ipv4App::new(&routes), Ipv4App::new(&routes), &frames, 4);
}

#[test]
fn ipv6_survives_adversarial_corpus() {
    let base: Vec<Vec<u8>> = (0..8).map(v6_frame).collect();
    let mut frames = damaged(&base, 0xC0FFEE);
    frames.extend(base.iter().take(4).cloned());
    let mut routes = vec![Route6::new(0, 0, 0)];
    routes.extend(synth::random_ipv6(500, 4, 9));
    assert_survives(Ipv6App::new(&routes), Ipv6App::new(&routes), &frames, 4);
}

#[test]
fn ipsec_survives_adversarial_corpus() {
    let base: Vec<Vec<u8>> = (0..8).map(v4_frame).collect();
    let mut frames = damaged(&base, 0xC0FFEE);
    frames.extend(base.iter().take(4).cloned());
    let mk = || IpsecApp::new([0x42; 16], 0xDEAD, b"corpus-hmac-key");
    assert_survives(mk(), mk(), &frames, 4);
}

#[test]
fn openflow_survives_adversarial_corpus() {
    let base: Vec<Vec<u8>> = (0..8).map(v4_frame).collect();
    let mut frames = damaged(&base, 0xC0FFEE);
    frames.extend(base.iter().take(4).cloned());
    let build = || {
        let mut sw = OpenFlowSwitch::new();
        // Eight /3 wildcards on nw_dst cover the whole address space,
        // so every parseable frame matches something.
        for i in 0..8u16 {
            sw.add_wildcard(WildcardEntry {
                fields: wc::NW_DST,
                priority: 0,
                key: FlowKey {
                    nw_dst: u32::from(i) << 29,
                    ..FlowKey::default()
                },
                nw_src_mask: 0,
                nw_dst_mask: 0xE000_0000,
                action: Action::Output(i),
            });
        }
        OpenFlowApp::new(sw)
    };
    assert_survives(build(), build(), &frames, 4);
}

/// A frame damaged *after* classification (what on-the-wire fault
/// injection does between RX and shading) must become a counted drop
/// in both paths, and — for IPsec, whose GPU batch layout compacts
/// around the hole — must not desynchronize the SA sequence numbers
/// the two paths share: the surviving packets stay bit-identical.
#[test]
fn ipsec_malformed_mid_batch_keeps_gpu_cpu_parity() {
    let mk_app = || IpsecApp::new([0x11; 16], 0xBEEF, b"mid-batch-key");
    let mk_pkts = || -> Vec<Packet> {
        (0..5u64)
            .map(|i| Packet::new(i, v4_frame(i), PortId(0), 0))
            .collect()
    };
    let (mut eng, mut ioh) = gpu_env();
    let mut cpu = mk_app();
    let mut gpu = mk_app();
    gpu.setup_gpu(0, &mut eng);

    let mut a = mk_pkts();
    cpu.pre_shade(&mut a);
    a[2].data.truncate(10); // damage lands post-classification
    cpu.process_cpu(&mut a);

    let mut b = mk_pkts();
    gpu.pre_shade(&mut b);
    b[2].data.truncate(10);
    gpu.shade(0, &mut eng, &mut ioh, 0, &mut b);

    assert_eq!(cpu.malformed, 1, "CPU path must count the damaged frame");
    assert_eq!(gpu.malformed, 1, "GPU path must count the damaged frame");
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.out_port, y.out_port, "packet {}", x.id);
        if x.id == 2 {
            assert_eq!(x.out_port, None, "damaged frame must not be forwarded");
        } else {
            assert_eq!(x.data, y.data, "ciphertext of packet {}", x.id);
        }
    }
}

/// ESP authentication is the last line of defense: damage inside the
/// authenticated region that parses fine must still be rejected — as
/// an `Err`, not a panic, and never as silently decrypted garbage.
#[test]
fn esp_rejects_flipped_icv_and_ciphertext() {
    let mut app = IpsecApp::new([0x42; 16], 0xDEAD, b"icv-test-key");
    let mut pkts = vec![Packet::new(1, v4_frame(1), PortId(0), 0)];
    app.pre_shade(&mut pkts);
    app.process_cpu(&mut pkts);

    let eth = EthernetFrame::new_checked(&pkts[0].data[..]).expect("outer frame parses");
    let ip = Ipv4Packet::new_checked(eth.payload()).expect("outer IP parses");
    let peer = app.peer_sa();
    let clean = ip.payload().to_vec();
    assert!(
        decrypt_tunnel(&peer, &clean).is_ok(),
        "clean payload decrypts"
    );

    let mut bad_icv = clean.clone();
    *bad_icv.last_mut().expect("payload nonempty") ^= 0x01;
    assert!(
        matches!(decrypt_tunnel(&peer, &bad_icv), Err(EspError::BadIcv)),
        "flipped ICV must fail authentication"
    );

    let mut bad_ct = clean.clone();
    let mid = bad_ct.len() / 2;
    bad_ct[mid] ^= 0x80;
    assert!(
        decrypt_tunnel(&peer, &bad_ct).is_err(),
        "flipped ciphertext must fail authentication"
    );

    assert!(
        matches!(decrypt_tunnel(&peer, &[]), Err(EspError::Malformed)),
        "empty payload is malformed, not a panic"
    );
    assert!(
        decrypt_tunnel(&peer, &clean[..clean.len() / 2]).is_err(),
        "truncated payload must be rejected"
    );
}

// ---------------------------------------------------------------------------
// 2. Determinism: any fault seed replays exactly; rate-0 plans are free.
// ---------------------------------------------------------------------------

/// Same aggregate tuple as tests/fastpath.rs.
type Fp = (u64, u64, u64, u64, u64, u64);

fn report_fp(r: &RouterReport) -> Fp {
    (
        r.offered.packets,
        r.delivered.packets,
        r.rx_drops,
        r.slow_path,
        r.latency.p50(),
        r.latency.max(),
    )
}

/// A small CPU-only run (Figure-5 shape) under `faults`, cheap enough
/// to re-run inside a property.
fn faulted_fingerprint(traffic_seed: u64, faults: FaultSpec) -> (Fp, u64) {
    let mut cfg = RouterConfig::fig5(64);
    cfg.faults = faults;
    let mut routes = vec![Route4::new(0, 1, 0), Route4::new(0x8000_0000, 1, 1)];
    routes.extend(synth::routeviews_like(500, 2, 3));
    let spec = TrafficSpec {
        kind: TrafficKind::Ipv4Udp,
        frame_len: 64,
        offered_bits: 5_000_000_000,
        ports: 2,
        seed: traffic_seed,
        flows: None,
        ..TrafficSpec::default()
    };
    let r = Router::run(cfg, Ipv4App::new(&routes), spec, MILLIS / 4);
    (report_fp(&r), r.faults.fingerprint())
}

/// Any FaultPlan seed preserves determinism: running the same (traffic
/// seed, fault seed) twice yields the same stats fingerprint *and* the
/// same fault-ledger fingerprint, for randomly drawn seeds.
#[test]
fn any_fault_seed_replays_byte_identically() {
    let cfg = Config {
        cases: 6,
        seed: 0x5EED_FA17,
    };
    check_with("any_fault_seed_replays_byte_identically", &cfg, |g| {
        let fault_seed = g.value::<u64>();
        let traffic_seed = g.int_in(0u64..1 << 20);
        let spec = FaultSpec::scenario("all")
            .expect("known scenario")
            .with_seed(fault_seed)
            .with_rate(0.02);
        let (fp1, ledger1) = faulted_fingerprint(traffic_seed, spec);
        let (fp2, ledger2) = faulted_fingerprint(traffic_seed, spec);
        ensure_eq!(fp1, fp2, "stats diverged for fault seed {fault_seed:#x}");
        ensure_eq!(
            ledger1,
            ledger2,
            "fault ledger diverged for fault seed {fault_seed:#x}"
        );
        Ok(())
    });
}

/// The GPU-owned classes (PCIe stalls, kernel aborts, stragglers) are
/// deterministic through the full CPU+GPU pipeline, fallbacks and all.
#[test]
fn gpu_fault_classes_replay_byte_identically() {
    let run = || {
        let mut cfg = RouterConfig::paper_gpu();
        cfg.faults = FaultSpec::scenario("all")
            .expect("known scenario")
            .with_seed(0xDECAF)
            .with_rate(0.05);
        let r = Router::run(
            cfg,
            workloads::ipv4_app(5_000, 1),
            TrafficSpec::ipv4_64b(30.0, 7),
            MILLIS,
        );
        let gpu_class = r.faults.pcie_stalls + r.faults.gpu_aborts + r.faults.gpu_stragglers;
        (report_fp(&r), r.faults.fingerprint(), gpu_class)
    };
    let (fp1, ledger1, gpu1) = run();
    let (fp2, ledger2, gpu2) = run();
    assert!(
        gpu1 > 0,
        "no GPU-class fault fired at 5% over a full window"
    );
    assert_eq!(fp1, fp2, "stats fingerprint");
    assert_eq!(ledger1, ledger2, "fault-ledger fingerprint");
    assert_eq!(gpu1, gpu2, "GPU-class fault counts");
}

/// A plan whose every rate is zero must be indistinguishable from no
/// plan at all: for random fault seeds, the run reproduces the pinned
/// seed-implementation fingerprint from tests/fastpath.rs *exactly*.
#[test]
fn rate_zero_plans_reproduce_pinned_fingerprints() {
    let cfg = Config {
        cases: 3,
        seed: 0xFA17_0000,
    };
    check_with("rate_zero_plans_reproduce_pinned_fingerprints", &cfg, |g| {
        let fault_seed = g.value::<u64>();
        let mut c = RouterConfig::paper_gpu();
        c.faults = FaultSpec::scenario("all")
            .expect("known scenario")
            .with_seed(fault_seed)
            .with_rate(0.0);
        let mut routes = vec![Route4::new(0, 1, 0), Route4::new(0x8000_0000, 1, 4)];
        routes.extend(synth::routeviews_like(2_000, 8, 3));
        let r = Router::run(
            c,
            Ipv4App::new(&routes),
            TrafficSpec::ipv4_64b(30.0, 5),
            MILLIS,
        );
        ensure_eq!(
            report_fp(&r),
            (34091, 23115, 2375, 0, 294911, 429719),
            "rate-0 plan perturbed the pinned ipv4 gpu fingerprint (fault seed {fault_seed:#x})"
        );
        ensure_eq!(r.faults.injected(), 0);
        ensure_eq!(r.faults.handled() + r.faults.dropped(), 0, "nonzero ledger");
        Ok(())
    });
}

// ---------------------------------------------------------------------------
// 3. GPU→CPU fallback parity (shrinking): faulted batches lose nothing.
// ---------------------------------------------------------------------------

/// The forwarding decisions a faulted batch gets from the CPU fallback
/// are exactly the decisions the GPU would have produced. Shrinks: a
/// violation is reported on a minimal batch.
#[test]
fn gpu_fallback_preserves_ipv4_decisions() {
    let mut routes = vec![Route4::new(0, 0, 0), Route4::new(0x0A00_0000, 8, 3)];
    routes.extend(synth::routeviews_like(500, 4, 9));
    let cfg = Config {
        cases: 12,
        seed: 0xFA11_BACC,
    };
    check_with("gpu_fallback_preserves_ipv4_decisions", &cfg, |g| {
        let n = g.len_in(1, 48);
        let pkts: Vec<Packet> = (0..n)
            .map(|i| {
                let f = PacketBuilder::udp_v4(
                    MacAddr::local(1),
                    MacAddr::local(2),
                    Ipv4Addr::new(10, 0, 0, 1),
                    Ipv4Addr::from(g.value::<u32>()),
                    1000 + i as u16,
                    53,
                    64,
                );
                Packet::new(i as u64, f, PortId(0), 0)
            })
            .collect();
        let mut cpu = Ipv4App::new(&routes);
        let mut gpu = Ipv4App::new(&routes);
        let (mut eng, mut ioh) = gpu_env();
        gpu.setup_gpu(0, &mut eng);

        let mut a = pkts.clone();
        cpu.pre_shade(&mut a);
        cpu.process_cpu(&mut a);
        let mut b = pkts;
        gpu.pre_shade(&mut b);
        gpu.shade(0, &mut eng, &mut ioh, 0, &mut b);

        let decided: BTreeMap<u64, Option<PortId>> = a.iter().map(|p| (p.id, p.out_port)).collect();
        for p in &b {
            let via_cpu = decided.get(&p.id).copied().flatten();
            ensure_eq!(p.out_port, via_cpu, "decision differs for packet {}", p.id);
        }
        Ok(())
    });
}

/// Same property for IPsec, where parity must hold down to the bytes:
/// ciphertext and ICV from the fallback match the GPU's bit for bit.
#[test]
fn gpu_fallback_preserves_ipsec_ciphertext() {
    let cfg = Config {
        cases: 16,
        seed: 0x0FA1_1E5B,
    };
    check_with("gpu_fallback_preserves_ipsec_ciphertext", &cfg, |g| {
        let n = g.len_in(1, 12);
        let pkts: Vec<Packet> = (0..n)
            .map(|i| {
                let len = g.int_in(60usize..=300);
                let f = PacketBuilder::udp_v4(
                    MacAddr::local(1),
                    MacAddr::local(2),
                    Ipv4Addr::new(10, 0, 0, 1),
                    Ipv4Addr::new(10, 0, 0, 2),
                    1000 + i as u16,
                    2000,
                    len,
                );
                Packet::new(i as u64, f, PortId(0), 0)
            })
            .collect();
        let mut cpu = IpsecApp::new([0x33; 16], 0xFEED, b"fallback-parity-key");
        let mut gpu = IpsecApp::new([0x33; 16], 0xFEED, b"fallback-parity-key");
        let (mut eng, mut ioh) = gpu_env();
        gpu.setup_gpu(0, &mut eng);

        let mut a = pkts.clone();
        cpu.pre_shade(&mut a);
        cpu.process_cpu(&mut a);
        let mut b = pkts;
        gpu.pre_shade(&mut b);
        gpu.shade(0, &mut eng, &mut ioh, 0, &mut b);

        ensure_eq!(a.len(), b.len(), "batch sizes diverged");
        for (x, y) in a.iter().zip(b.iter()) {
            ensure_eq!(x.out_port, y.out_port, "out port of packet {}", x.id);
            ensure!(x.data == y.data, "ciphertext differs for packet {}", x.id);
        }
        Ok(())
    });
}

// ---------------------------------------------------------------------------
// 4. Graceful degradation end to end: all faults, every app, full router.
// ---------------------------------------------------------------------------

fn assert_degrades(name: &str, r: &RouterReport) {
    assert!(
        r.delivered.packets > 0,
        "{name}: zero throughput under 1% faults"
    );
    assert!(r.faults.injected() > 0, "{name}: armed plan never fired");
    assert!(
        r.faults.reconciles(),
        "{name}: ledger does not reconcile\n{}",
        r.faults.summary_table()
    );
}

/// The acceptance run: every application, both modes, the `all`
/// scenario at its headline 1% rate — nonzero throughput, zero
/// panics, and `injected == handled + dropped` holds exactly.
#[test]
fn every_app_degrades_gracefully_under_all_faults() {
    let base = FaultSpec::scenario("all").expect("known scenario");
    let spec4 = |seed| TrafficSpec {
        kind: TrafficKind::Ipv4Udp,
        frame_len: 64,
        offered_bits: 20_000_000_000,
        ports: 8,
        seed,
        flows: None,
        ..TrafficSpec::default()
    };
    let mut cell = 0u64;
    for mode in ["cpu", "gpu"] {
        let cfg_for = |c: &mut u64| {
            let mut cfg = if mode == "cpu" {
                RouterConfig::paper_cpu()
            } else {
                RouterConfig::paper_gpu()
            };
            // Per-cell derived seeds, like the ps-bench sweep: short
            // windows sample only a prefix of each class's stream, and
            // identical prefixes would correlate what fires where.
            cfg.faults = base.with_seed(base.seed ^ c.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            *c += 1;
            cfg
        };

        let r = Router::run(
            cfg_for(&mut cell),
            workloads::ipv4_app(10_000, 1),
            spec4(11),
            MILLIS,
        );
        assert_degrades(&format!("ipv4/{mode}"), &r);

        let mut s6 = spec4(12);
        s6.kind = TrafficKind::Ipv6Udp;
        s6.frame_len = 78;
        let r = Router::run(
            cfg_for(&mut cell),
            workloads::ipv6_app(5_000, 2),
            s6,
            MILLIS,
        );
        assert_degrades(&format!("ipv6/{mode}"), &r);

        let mut sof = spec4(13);
        sof.flows = Some(512);
        let r = Router::run(
            cfg_for(&mut cell),
            workloads::openflow_app(&sof, 512, 16),
            sof,
            MILLIS,
        );
        assert_degrades(&format!("openflow/{mode}"), &r);

        let r = Router::run(
            cfg_for(&mut cell),
            IpsecApp::new([0x42; 16], 0xD00D, b"degradation-key"),
            spec4(14),
            MILLIS,
        );
        assert_degrades(&format!("ipsec/{mode}"), &r);
    }
}

/// Every fired fault leaves a trace: armed runs emit
/// `Category::Fault` instants, unarmed runs emit none at all.
#[test]
fn fault_trace_instants_track_the_plan() {
    let run = |faults: FaultSpec| {
        let mut cfg = RouterConfig::paper_gpu();
        cfg.faults = faults;
        ps_bench::trace::traced(TraceConfig::all(), || {
            Router::run(
                cfg,
                workloads::ipv4_app(2_000, 1),
                TrafficSpec::ipv4_64b(20.0, 9),
                MILLIS / 2,
            )
        })
    };

    let (report, collector) = run(FaultSpec::scenario("all").expect("known scenario"));
    let (events, _) = collector.resolved();
    let fault_events: Vec<_> = events.iter().filter(|e| e.cat == Category::Fault).collect();
    assert!(report.faults.injected() > 0, "armed plan never fired");
    assert!(!fault_events.is_empty(), "fired faults left no trace");
    assert!(
        fault_events
            .iter()
            .all(|e| matches!(e.phase, Phase::Instant)),
        "fault events must be instants"
    );

    let (report, collector) = run(FaultSpec::none());
    let (events, _) = collector.resolved();
    assert_eq!(report.faults.injected(), 0);
    assert_eq!(
        events.iter().filter(|e| e.cat == Category::Fault).count(),
        0,
        "fault-free run emitted fault events"
    );
}
