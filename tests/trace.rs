//! Trace-layer correctness: span pairing under out-of-order emission,
//! category gating, and the Chrome `trace_event` JSON round-trip —
//! exercised both on a hand-built collector and on a real router run,
//! as documented in OBSERVABILITY.md.

use packetshader::core::apps::Ipv4App;
use packetshader::core::{Router, RouterConfig};
use packetshader::lookup::route::Route4;
use packetshader::pktgen::TrafficSpec;
use packetshader::sim::MILLIS;
use packetshader::trace::{chrome, Category, Collector, Phase, TraceConfig};

/// Nested begin/end spans resolve into complete spans whose intervals
/// properly contain each other.
#[test]
fn spans_nest() {
    let mut c = Collector::new(TraceConfig::all());
    let outer = c.span_begin(Category::Stage, "outer", 0, 100);
    let inner = c.span_begin(Category::Stage, "inner", 0, 150);
    c.span_end(inner, 200, Vec::new());
    c.span_end(outer, 300, Vec::new());

    let (events, unmatched) = c.resolved();
    assert_eq!(unmatched, 0);
    assert_eq!(events.len(), 2);
    // Timestamp order: outer (ts 100) first, inner (ts 150) second.
    assert_eq!(events[0].name, "outer");
    assert_eq!(events[1].name, "inner");
    let (o, i) = (&events[0], &events[1]);
    assert!(matches!(o.phase, Phase::Complete { dur: 200 }));
    assert!(matches!(i.phase, Phase::Complete { dur: 50 }));
    // Proper nesting: inner ⊂ outer.
    assert!(o.ts <= i.ts && i.ts + i.dur() <= o.ts + o.dur());
}

/// Begin/end pairing is by span id, not emission position: ends
/// arriving in the "wrong" order (a later-started span ending first,
/// or interleaved lanes) still pair with their own begins.
#[test]
fn out_of_order_ends_pair_by_id() {
    let mut c = Collector::new(TraceConfig::all());
    let a = c.span_begin(Category::Gpu, "copy_h2d", 1, 100);
    let b = c.span_begin(Category::Gpu, "kernel", 2, 120);
    // `b` ends before `a` even though it began after.
    c.span_end(b, 180, vec![("threads", 32)]);
    c.span_end(a, 400, vec![("bytes", 4096)]);

    let (events, unmatched) = c.resolved();
    assert_eq!(unmatched, 0);
    assert_eq!(events.len(), 2);
    let copy = events.iter().find(|e| e.name == "copy_h2d").unwrap();
    let kern = events.iter().find(|e| e.name == "kernel").unwrap();
    assert_eq!((copy.ts, copy.dur()), (100, 300));
    assert_eq!((kern.ts, kern.dur()), (120, 60));
    // End args are attached to the resolved span.
    assert_eq!(copy.args, vec![("bytes", 4096)]);
    assert_eq!(kern.args, vec![("threads", 32)]);
}

/// A begin with no end is dropped from the resolved list and counted,
/// never emitted as a half-span.
#[test]
fn unmatched_begin_is_dropped_and_counted() {
    let mut c = Collector::new(TraceConfig::all());
    let _leak = c.span_begin(Category::Stage, "never_ends", 0, 10);
    c.complete(Category::Stage, "fine", 0, 20, 30, Vec::new());
    let (events, unmatched) = c.resolved();
    assert_eq!(unmatched, 1);
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].name, "fine");
}

/// Disabled categories emit nothing through any entry point, and a
/// span begun under a disabled category yields a `None` id whose end
/// is a no-op.
#[test]
fn disabled_categories_emit_nothing() {
    let mut c = Collector::new(TraceConfig::categories(&[Category::Stage]));
    c.complete(Category::Gpu, "kernel", 0, 0, 10, Vec::new());
    c.counter(Category::Io, "ring_depth", 0, 5, 3);
    c.instant(Category::Fabric, "marker", 0, 7, Vec::new());
    let id = c.span_begin(Category::Gpu, "copy_h2d", 0, 0);
    assert!(id.is_none());
    c.span_end(id, 10, Vec::new());
    assert!(c.is_empty());

    // Enabled category still records.
    c.complete(Category::Stage, "pre_shade", 0, 0, 10, Vec::new());
    assert_eq!(c.len(), 1);
}

/// The global tracer honours the installed mask: a Stage-only
/// collector sees none of the Gpu/Io/Fabric traffic a router run
/// generates, and the lazy args closures of disabled categories are
/// never invoked.
#[test]
fn global_tracer_respects_mask() {
    use packetshader::trace as tr;
    assert!(!tr::is_installed());
    tr::install(Collector::new(TraceConfig::categories(&[Category::Stage])));
    assert!(tr::enabled(Category::Stage));
    assert!(!tr::enabled(Category::Gpu));
    tr::complete(Category::Gpu, "kernel", 0, 0, 10, || {
        panic!("args closure of a disabled category must not run")
    });
    tr::complete(Category::Stage, "pre_shade", 0, 0, 10, Vec::new);
    let c = tr::take().unwrap();
    assert_eq!(c.len(), 1);
    assert_eq!(c.events().next().unwrap().name, "pre_shade");
}

fn traced_ipv4_run(gbps: f64, seed: u64) -> (Collector, u64) {
    let window = MILLIS;
    let routes = vec![Route4::new(0, 1, 0), Route4::new(0x8000_0000, 1, 4)];
    let (_, collector) = ps_bench::trace::traced(TraceConfig::all(), || {
        Router::run(
            RouterConfig::paper_gpu(),
            Ipv4App::new(&routes),
            TrafficSpec::ipv4_64b(gbps, seed),
            window,
        )
    });
    (collector, window)
}

/// A real router run exports Chrome `trace_event` JSON that survives
/// the round trip through the in-tree parser: every resolved event
/// reappears with its timestamp, duration, and pid/tid mapping intact.
#[test]
fn chrome_json_round_trips_through_parser() {
    let (collector, _) = traced_ipv4_run(10.0, 3);
    let (events, unmatched) = collector.resolved();
    assert_eq!(unmatched, 0);
    assert!(!events.is_empty(), "router run produced no trace events");

    let json = chrome::export(&collector);
    let parsed = chrome::parse(&json).expect("exporter output must parse");
    assert_eq!(chrome::parsed_dropped(&json), Some(0));

    // Every non-metadata parsed event corresponds 1:1, in order, to a
    // resolved event; the exporter's µs formatting is lossless at ns
    // granularity.
    let payload: Vec<_> = parsed.iter().filter(|p| p.ph != 'M').collect();
    assert_eq!(payload.len(), events.len());
    for (p, e) in payload.iter().zip(&events) {
        assert_eq!(p.name, e.name);
        assert_eq!(p.ts_ns, e.ts);
        assert_eq!(p.pid, chrome::pid_of(e.cat));
        assert_eq!(p.tid, e.lane);
        match e.phase {
            Phase::Complete { dur } => {
                assert_eq!(p.ph, 'X');
                assert_eq!(p.dur_ns, dur);
            }
            Phase::Counter { value } => {
                assert_eq!(p.ph, 'C');
                assert_eq!(p.value, Some(value));
            }
            Phase::Instant => assert_eq!(p.ph, 'i'),
            Phase::Begin { .. } | Phase::End { .. } => {
                panic!("resolved() must not leave raw begin/end events")
            }
        }
    }
}

/// Acceptance shape from the issue: per-lane Stage spans tile the run
/// exactly — on every lane, busy + idle equals the virtual run time,
/// so the per-stage durations sum (with idle) to the window.
#[test]
fn stage_spans_tile_the_virtual_window() {
    let (collector, window) = traced_ipv4_run(20.0, 3);
    let (events, _) = collector.resolved();
    let accounts = ps_bench::trace::stage_lane_accounting(&events, window);
    assert!(!accounts.is_empty());
    for acc in &accounts {
        assert_eq!(
            acc.busy + acc.idle,
            window,
            "lane {} does not tile the window",
            acc.lane
        );
    }
    // At 20 Gbps the workers are genuinely loaded: some lane spends
    // a nontrivial share of the window busy.
    assert!(accounts.iter().any(|a| a.busy > window / 10));
}

/// The flat metrics exporter aggregates the same events the Chrome
/// exporter serializes: stage counts match between the two views.
#[test]
fn summary_agrees_with_chrome_export() {
    let (collector, window) = traced_ipv4_run(10.0, 3);
    let summary = packetshader::sim::trace_summary::summarize_collector(&collector, window);

    let json = chrome::export(&collector);
    let parsed = chrome::parse(&json).unwrap();
    let chrome_pre = parsed
        .iter()
        .filter(|p| p.ph == 'X' && p.name == "pre_shade")
        .count() as u64;
    let stat = summary.stage("pre_shade").expect("pre_shade stat");
    assert_eq!(stat.count, chrome_pre);
    assert!(stat.total_ns > 0);
    assert_eq!(stat.hist.count(), stat.count);
}
