//! Property-based tests on the core invariants, on the in-tree
//! `ps-check` harness (seeded cases, shrink-by-halving, replayable
//! from the printed seed). Same invariants the proptest suite
//! checked, ≥64 cases each (`PS_CHECK_CASES` raises it).

use packetshader::check::{check, ensure, ensure_eq, ensure_ne, Gen};
use packetshader::crypto::esp::{decrypt_tunnel, encrypt_tunnel, SecurityAssociation};
use packetshader::crypto::hmac::HmacSha1;
use packetshader::crypto::sha1::Sha1;
use packetshader::lookup::dir24::Dir24Table;
use packetshader::lookup::route::{lpm4, lpm6, Route4, Route6};
use packetshader::lookup::waldvogel::V6Table;
use packetshader::lookup::NO_ROUTE;
use packetshader::net::ethernet::MacAddr;
use packetshader::net::ipv4::Ipv4Packet;
use packetshader::net::PacketBuilder;

fn route4(g: &mut Gen) -> Route4 {
    let p = g.value::<u32>();
    let l = g.int_in(0u8..=32);
    let h = g.int_in(0u16..8);
    Route4::new(p, l, h)
}

fn route6(g: &mut Gen) -> Route6 {
    let p = g.value::<u128>();
    let l = g.int_in(0u8..=128);
    let h = g.int_in(0u16..8);
    Route6::new(p, l, h)
}

/// DIR-24-8 must agree with the naive LPM oracle on any route set
/// and any address.
#[test]
fn dir24_equals_oracle() {
    check("dir24_equals_oracle", |g| {
        let routes = g.vec_of(1, 60, route4);
        let addrs = g.vec_of(1, 40, |g| g.value::<u32>());
        let table = Dir24Table::build(&routes);
        for addr in addrs {
            let want = lpm4(&routes, addr).unwrap_or(NO_ROUTE);
            ensure_eq!(table.lookup_host(addr), want, "addr {:#010x}", addr);
        }
        Ok(())
    });
}

/// Waldvogel binary search must agree with the naive oracle.
#[test]
fn waldvogel_equals_oracle() {
    check("waldvogel_equals_oracle", |g| {
        let routes = g.vec_of(1, 40, route6);
        let addrs = g.vec_of(1, 30, |g| g.value::<u128>());
        let table = V6Table::build(&routes);
        for addr in addrs {
            let want = lpm6(&routes, addr).unwrap_or(NO_ROUTE);
            ensure_eq!(table.lookup_host(addr), want, "addr {:#034x}", addr);
        }
        Ok(())
    });
}

/// Lookups must also hit route boundaries exactly (first/last
/// address of every prefix).
#[test]
fn dir24_handles_prefix_boundaries() {
    check("dir24_handles_prefix_boundaries", |g| {
        let routes = g.vec_of(1, 40, route4);
        let table = Dir24Table::build(&routes);
        for r in &routes {
            let lo = r.prefix;
            let hi = r.prefix | !packetshader::lookup::route::mask4(u32::MAX, r.len);
            for addr in [lo, hi] {
                let want = lpm4(&routes, addr).unwrap_or(NO_ROUTE);
                ensure_eq!(table.lookup_host(addr), want, "addr {:#010x}", addr);
            }
        }
        Ok(())
    });
}

/// ESP tunnel round trip for arbitrary payloads and keys.
#[test]
fn esp_round_trip() {
    check("esp_round_trip", |g| {
        let inner = g.bytes(20, 1500);
        let key = g.byte_array::<16>();
        let nonce = g.value::<u32>();
        let hkey = g.bytes(1, 64);
        let mut sa = SecurityAssociation::new(1, &key, nonce, &hkey);
        let wire = encrypt_tunnel(&mut sa, &inner);
        let back = decrypt_tunnel(&sa, &wire).expect("own SA decrypts");
        ensure_eq!(back, inner);
        Ok(())
    });
}

/// Any single corrupted byte must be detected.
#[test]
fn esp_detects_any_corruption() {
    check("esp_detects_any_corruption", |g| {
        let inner = g.bytes(20, 200);
        let idx_seed = g.value::<u64>();
        let flip = g.int_in(1u8..=255);
        let mut sa = SecurityAssociation::new(1, &[9; 16], 7, b"prop-key");
        let mut wire = encrypt_tunnel(&mut sa, &inner);
        let idx = (idx_seed as usize) % wire.len();
        wire[idx] ^= flip;
        ensure!(
            decrypt_tunnel(&sa, &wire).is_err(),
            "corruption at byte {idx} undetected"
        );
        Ok(())
    });
}

/// The T-table AES fast path must agree with the byte-oriented
/// oracle on any key and block.
#[test]
fn ttable_aes_equals_byte_oracle() {
    use packetshader::crypto::aes::{oracle, Aes128};
    check("ttable_aes_equals_byte_oracle", |g| {
        let key = g.byte_array::<16>();
        let aes = Aes128::new(&key);
        let blocks: [[u8; 16]; 4] = [
            g.byte_array::<16>(),
            g.byte_array::<16>(),
            g.byte_array::<16>(),
            g.byte_array::<16>(),
        ];
        for b in &blocks {
            ensure_eq!(aes.encrypt(b), oracle::encrypt(&aes, b));
        }
        // The 4-wide interleaved path too.
        let mut four = blocks;
        aes.encrypt4(&mut four);
        for (b, enc) in blocks.iter().zip(four.iter()) {
            ensure_eq!(*enc, oracle::encrypt(&aes, b));
        }
        Ok(())
    });
}

/// Batched multi-block CTR must equal the scalar block-at-a-time
/// oracle for arbitrary lengths, block offsets, and counters that
/// wrap through u32::MAX.
#[test]
fn batched_ctr_equals_scalar_ctr() {
    use packetshader::crypto::aes::{ctr_xor, oracle, Aes128};
    check("batched_ctr_equals_scalar_ctr", |g| {
        let key = g.byte_array::<16>();
        let nonce = g.value::<u32>();
        let iv = g.byte_array::<8>();
        // Half the cases start near the wrap point so the counter
        // crosses u32::MAX mid-stream.
        let first_block = if g.value::<u64>().is_multiple_of(2) {
            u32::MAX - g.int_in(0u32..8)
        } else {
            g.value::<u32>()
        };
        let data = g.bytes(0, 300);
        let aes = Aes128::new(&key);
        let mut fast = data.clone();
        ctr_xor(&aes, nonce, &iv, first_block, &mut fast);
        let mut slow = data.clone();
        oracle::ctr_xor(&aes, nonce, &iv, first_block, &mut slow);
        ensure_eq!(fast, slow, "first_block {first_block} len {}", data.len());
        // CTR is an involution: applying the keystream twice
        // restores the plaintext.
        ctr_xor(&aes, nonce, &iv, first_block, &mut fast);
        ensure_eq!(fast, data);
        Ok(())
    });
}

/// HMAC is a function of the full message.
#[test]
fn hmac_distinguishes_messages() {
    check("hmac_distinguishes_messages", |g| {
        let a = g.bytes(0, 200);
        let b = g.bytes(0, 200);
        let h = HmacSha1::new(b"k");
        if a != b {
            ensure_ne!(h.mac(&a), h.mac(&b));
        } else {
            ensure_eq!(h.mac(&a), h.mac(&b));
        }
        Ok(())
    });
}

/// SHA-1 incremental updates equal one-shot hashing at any split.
#[test]
fn sha1_incremental_consistency() {
    check("sha1_incremental_consistency", |g| {
        let data = g.bytes(0, 500);
        let split_seed = g.value::<u64>();
        let split = if data.is_empty() {
            0
        } else {
            (split_seed as usize) % data.len()
        };
        let mut s = Sha1::new();
        s.update(&data[..split]);
        s.update(&data[split..]);
        ensure_eq!(s.finalize(), Sha1::digest(&data), "split {split}");
        Ok(())
    });
}

/// TTL decrement keeps the IPv4 header checksum valid for every
/// initial TTL.
#[test]
fn ttl_decrement_checksum_invariant() {
    check("ttl_decrement_checksum_invariant", |g| {
        let ttl = g.int_in(0u8..=255);
        let dst = g.value::<u32>();
        let mut f = PacketBuilder::udp_v4(
            MacAddr::local(1),
            MacAddr::local(2),
            "10.0.0.1".parse().unwrap(),
            std::net::Ipv4Addr::from(dst),
            1,
            2,
            64,
        );
        let mut ip = Ipv4Packet::new_unchecked(&mut f[14..]);
        ip.set_ttl(ttl);
        ip.fill_checksum();
        ip.decrement_ttl();
        ensure!(ip.verify_checksum(), "checksum broken at ttl {ttl}");
        ensure_eq!(ip.ttl(), ttl.saturating_sub(1));
        Ok(())
    });
}

/// Generated frames always classify to the fast path.
#[test]
fn generated_frames_are_fast_path() {
    check("generated_frames_are_fast_path", |g| {
        let seed = g.value::<u64>();
        let size = g.int_in(64usize..1514);
        let f = PacketBuilder::udp_v4(
            MacAddr::local(1),
            MacAddr::local(2),
            std::net::Ipv4Addr::from((seed >> 32) as u32 | 0x0100_0000),
            std::net::Ipv4Addr::from(seed as u32),
            (seed % 60000) as u16,
            ((seed >> 16) % 60000) as u16,
            size,
        );
        ensure_eq!(
            packetshader::net::classify(&f, &[]),
            packetshader::net::Verdict::FastPath
        );
        Ok(())
    });
}
