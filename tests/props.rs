//! Property-based tests on the core invariants.

use proptest::collection::vec;
use proptest::prelude::*;

use packetshader::crypto::esp::{decrypt_tunnel, encrypt_tunnel, SecurityAssociation};
use packetshader::crypto::hmac::HmacSha1;
use packetshader::crypto::sha1::Sha1;
use packetshader::lookup::dir24::Dir24Table;
use packetshader::lookup::route::{lpm4, lpm6, Route4, Route6};
use packetshader::lookup::waldvogel::V6Table;
use packetshader::lookup::NO_ROUTE;
use packetshader::net::ethernet::MacAddr;
use packetshader::net::ipv4::Ipv4Packet;
use packetshader::net::PacketBuilder;

fn route4() -> impl Strategy<Value = Route4> {
    (any::<u32>(), 0u8..=32, 0u16..8).prop_map(|(p, l, h)| Route4::new(p, l, h))
}

fn route6() -> impl Strategy<Value = Route6> {
    (any::<u128>(), 0u8..=128, 0u16..8).prop_map(|(p, l, h)| Route6::new(p, l, h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// DIR-24-8 must agree with the naive LPM oracle on any route set
    /// and any address.
    #[test]
    fn dir24_equals_oracle(routes in vec(route4(), 1..60), addrs in vec(any::<u32>(), 1..40)) {
        let table = Dir24Table::build(&routes);
        for addr in addrs {
            let want = lpm4(&routes, addr).unwrap_or(NO_ROUTE);
            prop_assert_eq!(table.lookup_host(addr), want, "addr {:#010x}", addr);
        }
    }

    /// Waldvogel binary search must agree with the naive oracle.
    #[test]
    fn waldvogel_equals_oracle(routes in vec(route6(), 1..40), addrs in vec(any::<u128>(), 1..30)) {
        let table = V6Table::build(&routes);
        for addr in addrs {
            let want = lpm6(&routes, addr).unwrap_or(NO_ROUTE);
            prop_assert_eq!(table.lookup_host(addr), want, "addr {:#034x}", addr);
        }
    }

    /// Lookups must also hit route boundaries exactly (first/last
    /// address of every prefix).
    #[test]
    fn dir24_handles_prefix_boundaries(routes in vec(route4(), 1..40)) {
        let table = Dir24Table::build(&routes);
        for r in &routes {
            let lo = r.prefix;
            let hi = r.prefix | !packetshader::lookup::route::mask4(u32::MAX, r.len);
            for addr in [lo, hi] {
                let want = lpm4(&routes, addr).unwrap_or(NO_ROUTE);
                prop_assert_eq!(table.lookup_host(addr), want);
            }
        }
    }

    /// ESP tunnel round trip for arbitrary payloads and keys.
    #[test]
    fn esp_round_trip(
        inner in vec(any::<u8>(), 20..1500),
        key in any::<[u8; 16]>(),
        nonce in any::<u32>(),
        hkey in vec(any::<u8>(), 1..64),
    ) {
        let mut sa = SecurityAssociation::new(1, &key, nonce, &hkey);
        let wire = encrypt_tunnel(&mut sa, &inner);
        let back = decrypt_tunnel(&sa, &wire).expect("own SA decrypts");
        prop_assert_eq!(back, inner);
    }

    /// Any single corrupted byte must be detected.
    #[test]
    fn esp_detects_any_corruption(
        inner in vec(any::<u8>(), 20..200),
        idx_seed in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let mut sa = SecurityAssociation::new(1, &[9; 16], 7, b"prop-key");
        let mut wire = encrypt_tunnel(&mut sa, &inner);
        let idx = (idx_seed as usize) % wire.len();
        wire[idx] ^= flip;
        prop_assert!(decrypt_tunnel(&sa, &wire).is_err());
    }

    /// HMAC is a function of the full message.
    #[test]
    fn hmac_distinguishes_messages(a in vec(any::<u8>(), 0..200), b in vec(any::<u8>(), 0..200)) {
        let h = HmacSha1::new(b"k");
        if a != b {
            prop_assert_ne!(h.mac(&a), h.mac(&b));
        } else {
            prop_assert_eq!(h.mac(&a), h.mac(&b));
        }
    }

    /// SHA-1 incremental updates equal one-shot hashing at any split.
    #[test]
    fn sha1_incremental_consistency(data in vec(any::<u8>(), 0..500), split_seed in any::<u64>()) {
        let split = if data.is_empty() { 0 } else { (split_seed as usize) % data.len() };
        let mut s = Sha1::new();
        s.update(&data[..split]);
        s.update(&data[split..]);
        prop_assert_eq!(s.finalize(), Sha1::digest(&data));
    }

    /// TTL decrement keeps the IPv4 header checksum valid for every
    /// initial TTL.
    #[test]
    fn ttl_decrement_checksum_invariant(ttl in 0u8..=255, dst in any::<u32>()) {
        let mut f = PacketBuilder::udp_v4(
            MacAddr::local(1),
            MacAddr::local(2),
            "10.0.0.1".parse().unwrap(),
            std::net::Ipv4Addr::from(dst),
            1,
            2,
            64,
        );
        let mut ip = Ipv4Packet::new_unchecked(&mut f[14..]);
        ip.set_ttl(ttl);
        ip.fill_checksum();
        ip.decrement_ttl();
        prop_assert!(ip.verify_checksum());
        prop_assert_eq!(ip.ttl(), ttl.saturating_sub(1));
    }

    /// Generated frames always classify to the fast path.
    #[test]
    fn generated_frames_are_fast_path(seed in any::<u64>(), size in 64usize..1514) {
        let f = PacketBuilder::udp_v4(
            MacAddr::local(1),
            MacAddr::local(2),
            std::net::Ipv4Addr::from((seed >> 32) as u32 | 0x0100_0000),
            std::net::Ipv4Addr::from(seed as u32),
            (seed % 60000) as u16,
            ((seed >> 16) % 60000) as u16,
            size,
        );
        prop_assert_eq!(packetshader::net::classify(&f, &[]), packetshader::net::Verdict::FastPath);
    }
}
