//! End-to-end router runs: packets in, correctly forwarded packets
//! out, across the four stateless applications and both execution modes
//! (the stateful NFV pair has its own suites in nfv.rs/shards.rs).

use packetshader::core::apps::{ForwardPattern, IpsecApp, Ipv4App, Ipv6App, MinimalApp};
use packetshader::core::{Router, RouterConfig};
use packetshader::lookup::route::{Route4, Route6};
use packetshader::lookup::synth;
use packetshader::pktgen::{TrafficKind, TrafficSpec};
use packetshader::sim::MILLIS;

fn v4_routes() -> Vec<Route4> {
    let mut routes = vec![Route4::new(0, 1, 0), Route4::new(0x8000_0000, 1, 4)];
    routes.extend(synth::routeviews_like(5_000, 8, 1));
    routes
}

fn v6_routes() -> Vec<Route6> {
    let mut routes: Vec<Route6> = (0..8u16)
        .map(|i| Route6::new((0b001u128 << 125) | (u128::from(i) << 122), 6, i))
        .collect();
    routes.extend(synth::random_ipv6(2_000, 8, 1));
    routes
}

fn spec(kind: TrafficKind, gbps: f64) -> TrafficSpec {
    TrafficSpec {
        kind,
        frame_len: 64,
        offered_bits: (gbps * 1e9) as u64,
        ports: 8,
        seed: 42,
        flows: None,
        ..TrafficSpec::default()
    }
}

#[test]
fn minimal_forwarding_is_lossless_at_light_load() {
    let report = Router::run(
        RouterConfig::paper_cpu(),
        MinimalApp::new(ForwardPattern::SameNode, 8),
        spec(TrafficKind::Ipv4Udp, 2.0),
        MILLIS,
    );
    assert!(
        report.delivery_ratio() > 0.999,
        "{}",
        report.delivery_ratio()
    );
    assert_eq!(report.rx_drops, 0);
    assert_eq!(report.app_drops, 0);
}

#[test]
fn ipv4_router_delivers_on_both_modes() {
    for cfg in [RouterConfig::paper_cpu(), RouterConfig::paper_gpu()] {
        let report = Router::run(
            cfg,
            Ipv4App::new(&v4_routes()),
            spec(TrafficKind::Ipv4Udp, 2.0),
            MILLIS,
        );
        assert!(
            report.delivery_ratio() > 0.99,
            "mode {:?}: ratio {}",
            cfg.mode,
            report.delivery_ratio()
        );
    }
}

#[test]
fn ipv6_router_delivers_on_both_modes() {
    for cfg in [RouterConfig::paper_cpu(), RouterConfig::paper_gpu()] {
        let report = Router::run(
            cfg,
            Ipv6App::new(&v6_routes()),
            spec(TrafficKind::Ipv6Udp, 2.0),
            MILLIS,
        );
        assert!(
            report.delivery_ratio() > 0.99,
            "mode {:?}: ratio {}",
            cfg.mode,
            report.delivery_ratio()
        );
    }
}

#[test]
fn ipsec_gateway_encrypts_everything_it_forwards() {
    let mut cfg = RouterConfig::paper_gpu();
    cfg.concurrent_copy = true;
    let app = IpsecApp::new([7; 16], 9, b"e2e-key");
    let router = Router::new(cfg, app, spec(TrafficKind::Ipv4Udp, 2.0), MILLIS);
    let mut sim = packetshader::sim::Simulation::new(router);
    sim.schedule(0, packetshader::core::router::Ev::Gen);
    sim.run_until(MILLIS);
    let report = sim.model.report(MILLIS);
    assert!(report.delivered.packets > 1000);
    // Every delivered packet went through the SA.
    assert!(sim.model.app().encrypted >= report.delivered.packets);
}

#[test]
fn gpu_mode_actually_uses_the_gpu() {
    let report = Router::run(
        RouterConfig::paper_gpu(),
        Ipv4App::new(&v4_routes()),
        spec(TrafficKind::Ipv4Udp, 8.0),
        MILLIS,
    );
    assert!(report.gpu_kernels > 0, "no kernels launched");
    assert!(report.mean_shade_batch >= 1.0);
}

#[test]
fn overload_sheds_at_the_nic_not_the_app() {
    let report = Router::run(
        RouterConfig::paper_cpu(),
        MinimalApp::new(ForwardPattern::SameNode, 8),
        spec(TrafficKind::Ipv4Udp, 80.0),
        MILLIS,
    );
    assert!(report.rx_drops > 0);
    assert_eq!(report.app_drops, 0);
    // Still forwards at the fabric ceiling.
    assert!(report.out_gbps() > 35.0, "{}", report.out_gbps());
}
