//! The fast-path determinism guard (ISSUE 3).
//!
//! The wall-clock fast path — T-table AES, batched CTR keystreams,
//! cached HMAC pads, zero-alloc launch scratch and chunk staging — is
//! only admissible if it changes *nothing* observable in virtual
//! time. `tests/determinism.rs` proves runs are self-consistent; this
//! file pins the actual values the *seed implementation* (byte-
//! oriented AES, per-launch allocation) produced at commit d7309d9,
//! captured before any fast-path code landed. If an "optimization"
//! perturbs a fingerprint, a trace byte, or even the dump length,
//! these constants catch it — not just a flaky inequality.

use packetshader::core::apps::{IpsecApp, Ipv4App, OpenFlowApp};
use packetshader::core::{App, Router, RouterConfig};
use packetshader::lookup::route::Route4;
use packetshader::lookup::synth;
use packetshader::pktgen::TrafficSpec;
use packetshader::sim::MILLIS;
use packetshader::trace::{chrome, TraceConfig};
use ps_bench::workloads;

/// Same aggregate tuple as tests/determinism.rs.
type Fingerprint = (u64, u64, u64, u64, u64, u64);

fn run_fingerprint<A: App + Send>(cfg: RouterConfig, app: A, spec: TrafficSpec) -> Fingerprint {
    let report = Router::run(cfg, app, spec, MILLIS);
    (
        report.offered.packets,
        report.delivered.packets,
        report.rx_drops,
        report.slow_path,
        report.latency.p50(),
        report.latency.max(),
    )
}

fn fingerprint(cfg: RouterConfig, seed: u64) -> Fingerprint {
    let mut routes = vec![Route4::new(0, 1, 0), Route4::new(0x8000_0000, 1, 4)];
    routes.extend(synth::routeviews_like(2_000, 8, 3));
    run_fingerprint(
        cfg,
        Ipv4App::new(&routes),
        TrafficSpec::ipv4_64b(30.0, seed),
    )
}

fn fingerprint_ipsec(cfg: RouterConfig, seed: u64) -> Fingerprint {
    let app = IpsecApp::new([7u8; 16], 0xABCD, b"determinism-key");
    run_fingerprint(cfg, app, TrafficSpec::ipv4_64b(10.0, seed))
}

fn fingerprint_openflow(cfg: RouterConfig, seed: u64) -> Fingerprint {
    let mut spec = TrafficSpec::ipv4_64b(20.0, seed);
    spec.flows = Some(64);
    let app = OpenFlowApp::new(workloads::openflow_switch(&spec, 64, 16));
    run_fingerprint(cfg, app, spec)
}

/// FNV-1a, the cheapest stable digest that fits in a pinned constant.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Every (app, mode) fingerprint at seed 5 must equal the values the
/// seed implementation produced. Captured pre-fast-path at d7309d9.
#[test]
fn fingerprints_match_seed_implementation() {
    assert_eq!(
        fingerprint(RouterConfig::paper_cpu(), 5),
        (34091, 23323, 906, 0, 327679, 463635),
        "ipv4 cpu"
    );
    assert_eq!(
        fingerprint(RouterConfig::paper_gpu(), 5),
        (34091, 23115, 2375, 0, 294911, 429719),
        "ipv4 gpu"
    );
    assert_eq!(
        fingerprint_ipsec(RouterConfig::paper_cpu(), 5),
        (11364, 3584, 1916, 0, 524287, 747150),
        "ipsec cpu"
    );
    assert_eq!(
        fingerprint_ipsec(RouterConfig::paper_gpu(), 5),
        (11364, 11573, 833, 0, 147455, 336124),
        "ipsec gpu"
    );
    assert_eq!(
        fingerprint_openflow(RouterConfig::paper_cpu(), 5),
        (22728, 26106, 0, 0, 122879, 215565),
        "openflow cpu"
    );
    assert_eq!(
        fingerprint_openflow(RouterConfig::paper_gpu(), 5),
        (22728, 26742, 568, 0, 53247, 240665),
        "openflow gpu"
    );
}

/// The full GPU-mode trace dump — every span, counter and instant the
/// pipeline emits, byte for byte — must match the seed implementation.
/// Pinned as (length, FNV-1a) per seed; a fast path that reordered a
/// launch, split a copy, or emitted one extra event flips the hash.
///
/// Re-pinned when the columnar staging layer landed: `GpuEngine::copy`
/// now emits `submit`/`wait`/`queue_depth` args on both directions and
/// the stage adds cumulative `pcie_*` counters, which legitimately
/// grow the dump. The *result* fingerprints above did not move.
#[test]
fn trace_dump_matches_seed_implementation() {
    let dump = |seed: u64| {
        let (_, collector) = ps_bench::trace::traced(TraceConfig::all(), || {
            fingerprint(RouterConfig::paper_gpu(), seed)
        });
        chrome::export(&collector)
    };
    let d5 = dump(5);
    assert_eq!(d5.len(), 33_039_635, "seed 5 dump length");
    assert_eq!(
        fnv1a(d5.as_bytes()),
        0x14c9_53e9_c2c9_96a6,
        "seed 5 dump hash"
    );
    let d6 = dump(6);
    assert_eq!(d6.len(), 33_095_165, "seed 6 dump length");
    assert_eq!(
        fnv1a(d6.as_bytes()),
        0xe3d4_6f57_66f7_c3dd,
        "seed 6 dump hash"
    );
}
