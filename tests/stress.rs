//! Overload and stress tests for the sharded runtime (ISSUE 6).
//!
//! The parity suite (`tests/shards.rs`) pins *what* a sharded run
//! computes; this file pins that the runtime survives hostile load:
//! pathological all-cross-traffic workloads must neither deadlock nor
//! grow the in-flight message set without bound, and injected ps-fault
//! degradation must compose with a sharding request (the fault ledger
//! invariant — every injected fault handled or dropped — holds at
//! every shard count).

use packetshader::core::apps::{ForwardPattern, MinimalApp};
use packetshader::core::{Router, RouterConfig};
use packetshader::fault::FaultSpec;
use packetshader::pktgen::TrafficSpec;
use packetshader::sim::Time as SimTime;
use packetshader::sim::{
    run_sharded_on, CrossQueue, Scheduler, ShardModel, ShardedScheduler, MILLIS,
};

// ---------------------------------------------------------------------------
// 1. ps-sim level: the runtime under synthetic cross-traffic floods.
// ---------------------------------------------------------------------------

/// Every handled event broadcasts to *every* shard (itself included)
/// and reschedules itself: the densest possible cross-traffic matrix.
struct Storm {
    id: usize,
    n: usize,
    latency: SimTime,
    period: SimTime,
    handled: u64,
    delivered: u64,
}

impl ShardModel for Storm {
    type Event = ();
    type Cross = ();

    fn handle(&mut self, sched: &mut Scheduler<()>, _: (), cross: &mut CrossQueue<()>) {
        self.handled += 1;
        for to in 0..self.n {
            cross.send(self.id, to, sched.now() + self.latency, ());
        }
        sched.after(self.period, ());
    }

    fn deliver(&mut self, _: &mut Scheduler<()>, _: SimTime, _: ()) {
        // Count only; delivering without rescheduling keeps the event
        // population proportional to the generators, not the messages.
        self.delivered += 1;
    }
}

fn storm(n: usize, latency: SimTime, period: SimTime, until: SimTime) -> (Vec<Storm>, u64, usize) {
    let mut models: Vec<Storm> = (0..n)
        .map(|id| Storm {
            id,
            n,
            latency,
            period,
            handled: 0,
            delivered: 0,
        })
        .collect();
    let mut scheds = ShardedScheduler::new(n);
    for i in 0..n {
        scheds.shard_mut(i).at(0, ());
    }
    let stats = run_sharded_on(&mut models, &mut scheds, until, latency, 2, |d| d);
    for i in 0..n {
        assert_eq!(scheds.shard_mut(i).now(), until, "shard {i} clock at until");
    }
    let delivered = models.iter().map(|m| m.delivered).sum();
    (models, delivered, stats.max_in_flight)
}

/// All-cross traffic completes (no deadlock: the barrier protocol has
/// no circular waits, every window strictly advances virtual time)
/// and delivers the exact expected message count.
#[test]
fn all_cross_storm_completes_and_delivers_everything() {
    let (models, delivered, _) = storm(4, 5, 5, 1000);
    let handled: u64 = models.iter().map(|m| m.handled).sum();
    // Each handled event broadcasts to all 4 shards; emissions in the
    // last `latency` of the run land past `until` and are discarded.
    assert_eq!(handled, 4 * 201, "4 generators, one event each 5ns");
    assert_eq!(delivered, handled * 4 - 4 * 4, "all but the final volley");
}

/// The in-flight high-water mark depends on the traffic *rate*, never
/// on how long the run lasts: quadrupling the runtime must not move
/// it. This is the unbounded-growth guard — messages are handed off
/// every window and post-`until` arrivals are dropped at the source,
/// so nothing accumulates.
#[test]
fn storm_in_flight_is_bounded_by_window_not_runtime() {
    let (_, _, short) = storm(4, 5, 5, 1000);
    let (_, _, long) = storm(4, 5, 5, 4000);
    assert!(short > 0, "the storm must actually queue messages");
    assert_eq!(
        short, long,
        "in-flight high-water mark must not grow with runtime"
    );
}

/// Messages aimed past the end of the run never enter the in-flight
/// set at all: a model flooding far-future arrivals costs zero
/// barrier-to-barrier memory (the old runtime accumulated these in
/// `pending` forever).
#[test]
fn far_future_flood_is_dropped_at_the_source() {
    struct FarFlood {
        id: usize,
    }
    impl ShardModel for FarFlood {
        type Event = ();
        type Cross = ();
        fn handle(&mut self, sched: &mut Scheduler<()>, _: (), cross: &mut CrossQueue<()>) {
            // Arrival far beyond `until`: deliverable never.
            for _ in 0..64 {
                cross.send(self.id, 1 - self.id, sched.now() + 1_000_000, ());
            }
            if sched.now() < 500 {
                sched.after(10, ());
            }
        }
        fn deliver(&mut self, _: &mut Scheduler<()>, _: SimTime, _: ()) {
            panic!("nothing may arrive");
        }
    }
    let mut models = vec![FarFlood { id: 0 }, FarFlood { id: 1 }];
    let mut scheds = ShardedScheduler::new(2);
    scheds.shard_mut(0).at(0, ());
    scheds.shard_mut(1).at(0, ());
    let stats = run_sharded_on(&mut models, &mut scheds, 1000, 20, 1, |d| d);
    assert_eq!(stats.max_in_flight, 0, "far-future messages never queue");
}

// ---------------------------------------------------------------------------
// 2. Router level: overload and fault degradation compose with shards.
// ---------------------------------------------------------------------------

const DUR: u64 = MILLIS / 2;

/// Every packet crosses the QPI seam at 2.5x the deliverable rate:
/// the windowed runtime must survive sustained overload (drops, full
/// rings, backlogged IOHs) and still match the sequential run byte
/// for byte at every shard count.
#[test]
fn overloaded_cross_traffic_stays_identical_across_shard_counts() {
    let mut cfg = RouterConfig::paper_cpu();
    cfg.testbed.ioh = cfg.testbed.ioh.with_qpi_hop(300);
    let spec = TrafficSpec::ipv4_64b(60.0, 13);
    let run = |shards: usize| {
        let app = MinimalApp::new(ForwardPattern::NodeCrossing, 8);
        Router::run_with_shards(cfg, app, spec, DUR, shards)
    };
    let base = run(1);
    assert!(
        base.delivery_ratio() < 0.9,
        "the workload must actually overload the box (got {:.3})",
        base.delivery_ratio()
    );
    let fp = format!("{base:?}");
    for shards in [2usize, 4, 8] {
        assert_eq!(
            fp,
            format!("{:?}", run(shards)),
            "overloaded parity at shards={shards}"
        );
    }
}

/// PCIe stall injection composes with a sharding request: the run
/// collapses to sequential (fault RNG streams are global), the ledger
/// reconciles — every injected fault is handled or dropped, nothing
/// leaks — and the report is count-independent.
#[test]
fn pcie_stalls_compose_with_sharding() {
    let run = |shards: usize| {
        let mut cfg = RouterConfig::paper_gpu();
        cfg.faults = FaultSpec::scenario("pcie")
            .expect("known scenario")
            .with_seed(0x5EED);
        let app = MinimalApp::new(ForwardPattern::SameNode, 8);
        Router::run_with_shards(cfg, app, TrafficSpec::ipv4_64b(30.0, 9), DUR, shards)
    };
    let base = run(1);
    assert!(base.faults.injected() > 0, "stalls must actually fire");
    assert!(base.faults.reconciles(), "ledger invariant at shards=1");
    let fp = format!("{base:?}");
    for shards in [2usize, 4, 8] {
        let r = run(shards);
        assert!(r.faults.reconciles(), "ledger invariant at shards={shards}");
        assert_eq!(fp, format!("{r:?}"), "faulted parity at shards={shards}");
    }
}
