//! Cross-shard parity suite (ISSUE 5).
//!
//! The contract of DESIGN.md §9: virtual-time results are a pure
//! function of (config, app, seed) — **never** of the shard count.
//! Every test here compares *full* `RouterReport`s (the Debug
//! rendering covers every counter, every histogram bucket, the
//! per-node IOH gigabit vectors and the fault ledger) across
//! `shards ∈ {1, 2, 4}`, exercising all three execution regimes:
//!
//! * **Sequential collapse** — the four real applications (no
//!   `shard_replica`), faulted runs, and traced runs must all ignore
//!   the shard request and reproduce the single-threaded result.
//! * **Replicated** — node-local traffic actually runs one OS thread
//!   per NUMA domain; the merged report must equal the sequential one
//!   byte for byte.
//! * **Windowed** — cross-node traffic with a priced QPI hop runs in
//!   conservative windows at every shard count; results must be
//!   identical across counts.
//!
//! A `ps-check` property at the bottom pins the merge order of
//! [`ShardedScheduler`] itself against a sort-based oracle.

use packetshader::check::{check, ensure_eq, Gen};
use packetshader::core::apps::{ForwardPattern, IpsecApp, Ipv4App, MinimalApp, OpenFlowApp};
use packetshader::core::{App, Router, RouterConfig, RouterReport};
use packetshader::fault::FaultSpec;
use packetshader::lookup::route::Route4;
use packetshader::lookup::synth;
use packetshader::pktgen::{TrafficKind, TrafficSpec};
use packetshader::sim::{ShardedScheduler, MILLIS};
use packetshader::trace::TraceConfig;
use ps_bench::workloads;

/// The duration for parity runs: long enough to fill pipelines, GPU
/// batches and drop paths, short enough to run twelve times.
const DUR: u64 = MILLIS / 2;

/// Byte-level report fingerprint. `RouterReport`'s Debug output
/// renders every field — counters, drop split, full latency
/// histogram, per-node IOH throughput, GPU kernel count, fault
/// ledger — so string equality is report identity, not a sampled
/// tuple like the fastpath pins.
fn full_fp(r: &RouterReport) -> String {
    format!("{r:?}")
}

/// Run the same (config, app, traffic) at shard counts 1, 2 and 4 and
/// assert the reports are byte-identical. `mk` builds a fresh app per
/// run (apps are consumed and not all of them clone).
fn assert_parity<A: App + Send>(
    label: &str,
    cfg: RouterConfig,
    mk: impl Fn() -> A,
    spec: TrafficSpec,
) {
    let base = full_fp(&Router::run_with_shards(cfg, mk(), spec, DUR, 1));
    for shards in [2usize, 4] {
        let fp = full_fp(&Router::run_with_shards(cfg, mk(), spec, DUR, shards));
        assert_eq!(base, fp, "{label}: shards=1 vs shards={shards}");
    }
}

// ---------------------------------------------------------------------------
// 1. The four real applications: sequential collapse at any count.
// ---------------------------------------------------------------------------

/// IPv4, both modes: the flagship fastpath configuration must not
/// move when `PS_SHARDS` (here: the explicit shard argument) changes.
#[test]
fn ipv4_identical_across_shard_counts() {
    let mk = || {
        let mut routes = vec![Route4::new(0, 1, 0), Route4::new(0x8000_0000, 1, 4)];
        routes.extend(synth::routeviews_like(2_000, 8, 3));
        Ipv4App::new(&routes)
    };
    let spec = TrafficSpec::ipv4_64b(30.0, 5);
    assert_parity("ipv4 cpu", RouterConfig::paper_cpu(), mk, spec);
    assert_parity("ipv4 gpu", RouterConfig::paper_gpu(), mk, spec);
}

/// IPv6 forwarding (the fourth app; GPU mode, where timing is most
/// intricate: gather/scatter plus the two-stage Waldvogel kernel).
#[test]
fn ipv6_identical_across_shard_counts() {
    let spec = TrafficSpec {
        kind: TrafficKind::Ipv6Udp,
        frame_len: 64,
        offered_bits: 20_000_000_000,
        ports: 8,
        seed: 5,
        flows: None,
    };
    assert_parity(
        "ipv6 gpu",
        RouterConfig::paper_gpu(),
        || workloads::ipv6_app(2_000, 2),
        spec,
    );
}

/// IPsec: the crypto pipeline (slow-path heavy in CPU mode).
#[test]
fn ipsec_identical_across_shard_counts() {
    assert_parity(
        "ipsec gpu",
        RouterConfig::paper_gpu(),
        || IpsecApp::new([7u8; 16], 0xABCD, b"determinism-key"),
        TrafficSpec::ipv4_64b(10.0, 5),
    );
}

/// OpenFlow: per-flow state plus the wildcard scan path.
#[test]
fn openflow_identical_across_shard_counts() {
    let mut spec = TrafficSpec::ipv4_64b(20.0, 5);
    spec.flows = Some(64);
    assert_parity(
        "openflow cpu",
        RouterConfig::paper_cpu(),
        || OpenFlowApp::new(workloads::openflow_switch(&spec, 64, 16)),
        spec,
    );
}

// ---------------------------------------------------------------------------
// 2. Faulted runs: the fault ledger forces sequential, at any count.
// ---------------------------------------------------------------------------

/// Fault plans draw from global per-class RNG streams, so a faulted
/// run must collapse to sequential no matter what shard count is
/// requested — and the ledger fingerprint must not move either.
#[test]
fn faulted_run_identical_across_shard_counts() {
    let run = |shards: usize| {
        let mut cfg = RouterConfig::paper_cpu();
        cfg.faults = FaultSpec::scenario("all")
            .expect("known scenario")
            .with_seed(0xDECAF);
        let app = MinimalApp::new(ForwardPattern::SameNode, 8);
        let r = Router::run_with_shards(cfg, app, TrafficSpec::ipv4_64b(20.0, 9), DUR, shards);
        (r.faults.fingerprint(), full_fp(&r))
    };
    let (ledger1, fp1) = run(1);
    for shards in [2usize, 4] {
        let (ledger, fp) = run(shards);
        assert_eq!(ledger1, ledger, "fault ledger at shards={shards}");
        assert_eq!(fp1, fp, "faulted report at shards={shards}");
    }
}

// ---------------------------------------------------------------------------
// 3. Replicated regime: real threads, byte-identical merge.
// ---------------------------------------------------------------------------

/// Node-local traffic at shards=2 runs one full replica per NUMA
/// domain on its own OS thread; the merged report must equal the
/// sequential shards=1 run exactly. This is the core tentpole claim.
#[test]
fn replicated_shards_match_sequential_cpu() {
    assert_parity(
        "minimal same-node cpu",
        RouterConfig::paper_cpu(),
        || MinimalApp::new(ForwardPattern::SameNode, 8),
        TrafficSpec::ipv4_64b(35.0, 7),
    );
}

/// Same, in CPU+GPU mode: gather/scatter, kernel launches and DMA
/// timing all merge deterministically across threads.
#[test]
fn replicated_shards_match_sequential_gpu() {
    assert_parity(
        "minimal same-node gpu",
        RouterConfig::paper_gpu(),
        || MinimalApp::new(ForwardPattern::SameNode, 8),
        TrafficSpec::ipv4_64b(35.0, 7),
    );
}

// ---------------------------------------------------------------------------
// 4. Windowed regime: a priced QPI hop buys real lookahead.
// ---------------------------------------------------------------------------

/// Cross-node traffic with `qpi_hop_ns > 0` runs in conservative
/// windows — at *every* shard count, shards=1 included — so the
/// result is identical across counts by construction. This exercises
/// the barrier merge, the typed cross-shard messages and the
/// per-source emission ordering.
#[test]
fn windowed_shards_identical_across_counts() {
    let mut cfg = RouterConfig::paper_cpu();
    cfg.testbed.ioh = cfg.testbed.ioh.with_qpi_hop(300);
    assert_parity(
        "minimal node-crossing qpi",
        cfg,
        || MinimalApp::new(ForwardPattern::NodeCrossing, 8),
        TrafficSpec::ipv4_64b(25.0, 11),
    );
}

/// With the hop priced at zero (the calibrated paper testbed) there
/// is no lookahead, so cross-node traffic must stay sequential — and
/// therefore still be shard-count-independent.
#[test]
fn unpriced_cross_traffic_identical_across_counts() {
    assert_parity(
        "minimal node-crossing qpi=0",
        RouterConfig::paper_cpu(),
        || MinimalApp::new(ForwardPattern::NodeCrossing, 8),
        TrafficSpec::ipv4_64b(25.0, 11),
    );
}

// ---------------------------------------------------------------------------
// 5. Traced runs collapse to sequential.
// ---------------------------------------------------------------------------

/// Trace collectors are thread-local sinks, so an installed collector
/// forces sequential execution; a traced shards=2 run must reproduce
/// the untraced sequential report byte for byte.
#[test]
fn traced_run_collapses_to_sequential() {
    let cfg = RouterConfig::paper_gpu();
    let spec = TrafficSpec::ipv4_64b(35.0, 7);
    let mk = || MinimalApp::new(ForwardPattern::SameNode, 8);
    let seq = full_fp(&Router::run_with_shards(cfg, mk(), spec, DUR, 1));
    let (traced_fp, _collector) = ps_bench::trace::traced(TraceConfig::all(), || {
        full_fp(&Router::run_with_shards(cfg, mk(), spec, DUR, 2))
    });
    assert_eq!(seq, traced_fp, "traced shards=2 vs untraced sequential");
}

// ---------------------------------------------------------------------------
// 6. The merge order itself, against a sort-based oracle.
// ---------------------------------------------------------------------------

/// [`ShardedScheduler::pop_merged`] must yield the documented
/// `(time, shard, seq)` total order for any push sequence — which for
/// a single shard is exactly the single-heap `(time, seq)` order.
#[test]
fn sharded_pop_order_matches_single_heap_order() {
    check("sharded_pop_order", |g: &mut Gen| {
        let shards = g.int_in(1usize..=4);
        // Random (time, shard) pushes; the payload is the push index.
        let pushes = g.vec_of(1, 200, |g| {
            (g.int_in(0u64..=40), g.int_in(0usize..=shards - 1))
        });
        let mut sched = ShardedScheduler::new(shards);
        for (i, &(t, s)) in pushes.iter().enumerate() {
            sched.shard_mut(s).at(t, i);
        }
        // Oracle: stable sort by (time, shard). Stability preserves
        // per-shard push order, i.e. the per-shard `seq` tiebreak.
        let mut expect: Vec<(u64, usize, usize)> = pushes
            .iter()
            .enumerate()
            .map(|(i, &(t, s))| (t, s, i))
            .collect();
        expect.sort_by_key(|&(t, s, _)| (t, s));
        for &(t, s, i) in &expect {
            let (shard, time, ev) = sched.pop_merged().expect("push count matches pop count");
            ensure_eq!(shard, s, "shard order at push {}", i);
            ensure_eq!(time, t, "time order at push {}", i);
            ensure_eq!(ev, i, "event identity at push {}", i);
        }
        ensure_eq!(sched.pop_merged(), None, "drained");
        Ok(())
    });
}
