//! Cross-shard parity suite (ISSUE 5).
//!
//! The contract of DESIGN.md §9: virtual-time results are a pure
//! function of (config, app, seed) — **never** of the shard count.
//! Every test here compares *full* `RouterReport`s (the Debug
//! rendering covers every counter, every histogram bucket, the
//! per-node IOH gigabit vectors and the fault ledger) across
//! `shards ∈ {1, 2, 4, 8}`, exercising all three execution regimes:
//!
//! * **Sequential collapse** — the four real applications (no
//!   `shard_replica`), faulted runs, and traced runs must all ignore
//!   the shard request and reproduce the single-threaded result.
//! * **Replicated** — node-local traffic actually runs one OS thread
//!   per NUMA domain; the merged report must equal the sequential one
//!   byte for byte.
//! * **Windowed** — cross-node traffic with a priced QPI hop runs in
//!   conservative windows at every shard count; results must be
//!   identical across counts.
//!
//! A `ps-check` property at the bottom pins the merge order of
//! [`ShardedScheduler`] itself against a sort-based oracle.

use packetshader::check::{check, ensure_eq, Gen};
use packetshader::core::apps::{
    Backend, ForwardPattern, IpsecApp, Ipv4App, LbApp, MinimalApp, NatApp, OpenFlowApp,
};
use packetshader::core::{App, Router, RouterConfig, RouterReport};
use packetshader::fault::FaultSpec;
use packetshader::lookup::route::Route4;
use packetshader::lookup::synth;
use packetshader::pktgen::{TrafficKind, TrafficSpec};
use packetshader::sim::{ShardedScheduler, MILLIS};
use packetshader::trace::TraceConfig;
use ps_bench::workloads;

/// The duration for parity runs: long enough to fill pipelines, GPU
/// batches and drop paths, short enough to run twelve times.
const DUR: u64 = MILLIS / 2;

/// Byte-level report fingerprint. `RouterReport`'s Debug output
/// renders every field — counters, drop split, full latency
/// histogram, per-node IOH throughput, GPU kernel count, fault
/// ledger — so string equality is report identity, not a sampled
/// tuple like the fastpath pins.
fn full_fp(r: &RouterReport) -> String {
    format!("{r:?}")
}

/// Run the same (config, app, traffic) at shard counts 1, 2, 4 and 8
/// and assert the reports are byte-identical. `mk` builds a fresh app
/// per run (apps are consumed and not all of them clone). Counts
/// beyond `cfg.nodes` clamp, so on the two-node paper box 4 and 8
/// re-exercise the two-shard path; the wide configs below make them
/// real four- and eight-way runs.
fn assert_parity<A: App + Send>(
    label: &str,
    cfg: RouterConfig,
    mk: impl Fn() -> A,
    spec: TrafficSpec,
) {
    let base = full_fp(&Router::run_with_shards(cfg, mk(), spec, DUR, 1));
    for shards in [2usize, 4, 8] {
        let fp = full_fp(&Router::run_with_shards(cfg, mk(), spec, DUR, shards));
        assert_eq!(base, fp, "{label}: shards=1 vs shards={shards}");
    }
}

/// A wider box than the paper's: `nodes` NUMA domains, two ports and
/// one worker core per domain. This is the configuration the scaling
/// matrix (`ps-bench --scaling`) measures, so its cross-count parity
/// is pinned here at real shard counts 4 and 8 — not the clamped
/// two-way runs the paper configs produce.
fn wide_cfg(nodes: usize) -> RouterConfig {
    let mut cfg = RouterConfig::paper_cpu();
    cfg.nodes = nodes;
    cfg.workers_per_node = 1;
    cfg.ports = 2 * nodes as u16;
    cfg
}

/// 64-byte IPv4 traffic across all of a wide config's ports.
fn wide_spec(nodes: usize, gbps: f64, seed: u64) -> TrafficSpec {
    TrafficSpec {
        kind: TrafficKind::Ipv4Udp,
        frame_len: 64,
        offered_bits: (gbps * 1e9) as u64,
        ports: 2 * nodes as u16,
        seed,
        flows: None,
        ..TrafficSpec::default()
    }
}

// ---------------------------------------------------------------------------
// 1. The four real applications: sequential collapse at any count.
// ---------------------------------------------------------------------------

/// IPv4, both modes: the flagship fastpath configuration must not
/// move when `PS_SHARDS` (here: the explicit shard argument) changes.
#[test]
fn ipv4_identical_across_shard_counts() {
    let mk = || {
        let mut routes = vec![Route4::new(0, 1, 0), Route4::new(0x8000_0000, 1, 4)];
        routes.extend(synth::routeviews_like(2_000, 8, 3));
        Ipv4App::new(&routes)
    };
    let spec = TrafficSpec::ipv4_64b(30.0, 5);
    assert_parity("ipv4 cpu", RouterConfig::paper_cpu(), mk, spec);
    assert_parity("ipv4 gpu", RouterConfig::paper_gpu(), mk, spec);
}

/// IPv6 forwarding (the fourth app; GPU mode, where timing is most
/// intricate: gather/scatter plus the two-stage Waldvogel kernel).
#[test]
fn ipv6_identical_across_shard_counts() {
    let spec = TrafficSpec {
        kind: TrafficKind::Ipv6Udp,
        frame_len: 64,
        offered_bits: 20_000_000_000,
        ports: 8,
        seed: 5,
        flows: None,
        ..TrafficSpec::default()
    };
    assert_parity(
        "ipv6 gpu",
        RouterConfig::paper_gpu(),
        || workloads::ipv6_app(2_000, 2),
        spec,
    );
}

/// IPsec: the crypto pipeline (slow-path heavy in CPU mode).
#[test]
fn ipsec_identical_across_shard_counts() {
    assert_parity(
        "ipsec gpu",
        RouterConfig::paper_gpu(),
        || IpsecApp::new([7u8; 16], 0xABCD, b"determinism-key"),
        TrafficSpec::ipv4_64b(10.0, 5),
    );
}

/// OpenFlow: per-flow state plus the wildcard scan path.
#[test]
fn openflow_identical_across_shard_counts() {
    let mut spec = TrafficSpec::ipv4_64b(20.0, 5);
    spec.flows = Some(64);
    assert_parity(
        "openflow cpu",
        RouterConfig::paper_cpu(),
        || OpenFlowApp::new(workloads::openflow_switch(&spec, 64, 16)),
        spec,
    );
}

// ---------------------------------------------------------------------------
// 1b. The stateful NFV tier (ISSUE 7): per-node flow state must make
//     replicated runs byte-identical to sequential ones.
// ---------------------------------------------------------------------------

/// NAT under the realistic stateful-NFV load: IMIX frames, 512
/// heavy-tailed keyed flows. The connection tracker, the external
/// port allocator and the cuckoo cache are all per-RX-node, so every
/// shard count must reproduce the sequential binding history exactly.
#[test]
fn nat_identical_across_shard_counts() {
    let spec = TrafficSpec::imix(20.0, 5).with_heavy_tail(512, 3);
    let mk = || NatApp::new(8, 2, 1 << 16, 0);
    assert_parity("nat cpu", RouterConfig::paper_cpu(), mk, spec);
    assert_parity("nat gpu", RouterConfig::paper_gpu(), mk, spec);
}

/// The L4 load balancer under the same load: rendezvous selection is
/// stateless, but the stickiness pins live in per-node caches whose
/// hit/miss history feeds the cycle budget — so timing parity requires
/// state parity.
#[test]
fn lb_identical_across_shard_counts() {
    let spec = TrafficSpec::imix(20.0, 5).with_heavy_tail(512, 3);
    let backends: Vec<Backend> = (0..16)
        .map(|i| Backend {
            ip: 0x0A63_0001 + i,
            port: 8080,
        })
        .collect();
    let mk = || LbApp::new(backends.clone(), 8, 2, 1 << 16, 0);
    assert_parity("lb cpu", RouterConfig::paper_cpu(), mk, spec);
    assert_parity("lb gpu", RouterConfig::paper_gpu(), mk, spec);
}

/// Four real NAT replicas on a four-node box (shards 4 and 8 are not
/// clamped): four independent allocators and caches merge into the
/// sequential report byte for byte.
#[test]
fn nat_parity_on_four_nodes() {
    let mut spec = TrafficSpec::imix(20.0, 7).with_heavy_tail(512, 3);
    spec.ports = 8;
    assert_parity(
        "nat 4-node",
        wide_cfg(4),
        || NatApp::new(8, 4, 1 << 16, 0),
        spec,
    );
}

// ---------------------------------------------------------------------------
// 2. Faulted runs: the fault ledger forces sequential, at any count.
// ---------------------------------------------------------------------------

/// Fault plans draw from global per-class RNG streams, so a faulted
/// run must collapse to sequential no matter what shard count is
/// requested — and the ledger fingerprint must not move either.
#[test]
fn faulted_run_identical_across_shard_counts() {
    let run = |shards: usize| {
        let mut cfg = RouterConfig::paper_cpu();
        cfg.faults = FaultSpec::scenario("all")
            .expect("known scenario")
            .with_seed(0xDECAF);
        let app = MinimalApp::new(ForwardPattern::SameNode, 8);
        let r = Router::run_with_shards(cfg, app, TrafficSpec::ipv4_64b(20.0, 9), DUR, shards);
        (r.faults.fingerprint(), full_fp(&r))
    };
    let (ledger1, fp1) = run(1);
    for shards in [2usize, 4, 8] {
        let (ledger, fp) = run(shards);
        assert_eq!(ledger1, ledger, "fault ledger at shards={shards}");
        assert_eq!(fp1, fp, "faulted report at shards={shards}");
    }
}

// ---------------------------------------------------------------------------
// 3. Replicated regime: real threads, byte-identical merge.
// ---------------------------------------------------------------------------

/// Node-local traffic at shards=2 runs one full replica per NUMA
/// domain on its own OS thread; the merged report must equal the
/// sequential shards=1 run exactly. This is the core tentpole claim.
#[test]
fn replicated_shards_match_sequential_cpu() {
    assert_parity(
        "minimal same-node cpu",
        RouterConfig::paper_cpu(),
        || MinimalApp::new(ForwardPattern::SameNode, 8),
        TrafficSpec::ipv4_64b(35.0, 7),
    );
}

/// Same, in CPU+GPU mode: gather/scatter, kernel launches and DMA
/// timing all merge deterministically across threads.
#[test]
fn replicated_shards_match_sequential_gpu() {
    assert_parity(
        "minimal same-node gpu",
        RouterConfig::paper_gpu(),
        || MinimalApp::new(ForwardPattern::SameNode, 8),
        TrafficSpec::ipv4_64b(35.0, 7),
    );
}

/// Four real replicas on a four-node box: shards 4 and 8 are no
/// longer clamped to 2, so the merge sums four per-shard reports.
#[test]
fn replicated_parity_on_four_nodes() {
    assert_parity(
        "minimal same-node 4-node",
        wide_cfg(4),
        || MinimalApp::new(ForwardPattern::SameNode, 8),
        wide_spec(4, 35.0, 7),
    );
}

/// Eight real replicas — the full scaling-matrix configuration. Every
/// packet is admitted by exactly one of eight shards and the merged
/// report must still match the sequential run byte for byte.
#[test]
fn replicated_parity_on_eight_nodes() {
    assert_parity(
        "minimal same-node 8-node",
        wide_cfg(8),
        || MinimalApp::new(ForwardPattern::SameNode, 16),
        wide_spec(8, 40.0, 7),
    );
}

// ---------------------------------------------------------------------------
// 4. Windowed regime: a priced QPI hop buys real lookahead.
// ---------------------------------------------------------------------------

/// Cross-node traffic with `qpi_hop_ns > 0` runs in conservative
/// windows — at *every* shard count, shards=1 included — so the
/// result is identical across counts by construction. This exercises
/// the barrier merge, the typed cross-shard messages and the
/// per-source emission ordering.
#[test]
fn windowed_shards_identical_across_counts() {
    let mut cfg = RouterConfig::paper_cpu();
    cfg.testbed.ioh = cfg.testbed.ioh.with_qpi_hop(300);
    assert_parity(
        "minimal node-crossing qpi",
        cfg,
        || MinimalApp::new(ForwardPattern::NodeCrossing, 8),
        TrafficSpec::ipv4_64b(25.0, 11),
    );
}

/// Windowed execution on a four-node box: cross-node messages flow
/// between four shards (and between the pairs the clamped eight-way
/// request folds onto), so the batched barrier exchange and the
/// per-source emission ordering are exercised with real fan-in.
#[test]
fn windowed_parity_on_four_nodes() {
    let mut cfg = wide_cfg(4);
    cfg.testbed.ioh = cfg.testbed.ioh.with_qpi_hop(300);
    assert_parity(
        "minimal node-crossing 4-node qpi",
        cfg,
        || MinimalApp::new(ForwardPattern::NodeCrossing, 8),
        wide_spec(4, 20.0, 11),
    );
}

/// With the hop priced at zero (the calibrated paper testbed) there
/// is no lookahead, so cross-node traffic must stay sequential — and
/// therefore still be shard-count-independent.
#[test]
fn unpriced_cross_traffic_identical_across_counts() {
    assert_parity(
        "minimal node-crossing qpi=0",
        RouterConfig::paper_cpu(),
        || MinimalApp::new(ForwardPattern::NodeCrossing, 8),
        TrafficSpec::ipv4_64b(25.0, 11),
    );
}

// ---------------------------------------------------------------------------
// 5. Traced runs collapse to sequential.
// ---------------------------------------------------------------------------

/// Trace collectors are thread-local sinks, so an installed collector
/// forces sequential execution; a traced shards=2 run must reproduce
/// the untraced sequential report byte for byte.
#[test]
fn traced_run_collapses_to_sequential() {
    let cfg = RouterConfig::paper_gpu();
    let spec = TrafficSpec::ipv4_64b(35.0, 7);
    let mk = || MinimalApp::new(ForwardPattern::SameNode, 8);
    let seq = full_fp(&Router::run_with_shards(cfg, mk(), spec, DUR, 1));
    let (traced_fp, _collector) = ps_bench::trace::traced(TraceConfig::all(), || {
        full_fp(&Router::run_with_shards(cfg, mk(), spec, DUR, 2))
    });
    assert_eq!(seq, traced_fp, "traced shards=2 vs untraced sequential");
}

/// The exported trace *dump* — not just the report — must be
/// byte-identical at every shard count. The Chrome serialization is
/// deterministic by construction (integer-only timestamp formatting,
/// virtual-time sort), so any divergence here means the collapsed run
/// itself emitted different events.
#[test]
fn trace_dumps_byte_identical_across_shard_counts() {
    let cfg = RouterConfig::paper_gpu();
    let spec = TrafficSpec::ipv4_64b(35.0, 7);
    let dump = |shards: usize| {
        let (_, collector) = ps_bench::trace::traced(TraceConfig::all(), || {
            Router::run_with_shards(
                cfg,
                MinimalApp::new(ForwardPattern::SameNode, 8),
                spec,
                DUR,
                shards,
            )
        });
        packetshader::trace::chrome::export(&collector)
    };
    let base = dump(1);
    assert!(
        base.contains("\"traceEvents\""),
        "dump should be a Chrome trace object"
    );
    for shards in [2usize, 4, 8] {
        let d = dump(shards);
        assert!(
            base == d,
            "trace dump diverged at shards={shards}: {} vs {} bytes",
            base.len(),
            d.len()
        );
    }
}

// ---------------------------------------------------------------------------
// 6. The merge order itself, against a sort-based oracle.
// ---------------------------------------------------------------------------

/// [`ShardedScheduler::pop_merged`] must yield the documented
/// `(time, shard, seq)` total order for any push sequence — which for
/// a single shard is exactly the single-heap `(time, seq)` order.
#[test]
fn sharded_pop_order_matches_single_heap_order() {
    check("sharded_pop_order", |g: &mut Gen| {
        let shards = g.int_in(1usize..=4);
        // Random (time, shard) pushes; the payload is the push index.
        let pushes = g.vec_of(1, 200, |g| {
            (g.int_in(0u64..=40), g.int_in(0usize..=shards - 1))
        });
        let mut sched = ShardedScheduler::new(shards);
        for (i, &(t, s)) in pushes.iter().enumerate() {
            sched.shard_mut(s).at(t, i);
        }
        // Oracle: stable sort by (time, shard). Stability preserves
        // per-shard push order, i.e. the per-shard `seq` tiebreak.
        let mut expect: Vec<(u64, usize, usize)> = pushes
            .iter()
            .enumerate()
            .map(|(i, &(t, s))| (t, s, i))
            .collect();
        expect.sort_by_key(|&(t, s, _)| (t, s));
        for &(t, s, i) in &expect {
            let (shard, time, ev) = sched.pop_merged().expect("push count matches pop count");
            ensure_eq!(shard, s, "shard order at push {}", i);
            ensure_eq!(time, t, "time order at push {}", i);
            ensure_eq!(ev, i, "event identity at push {}", i);
        }
        ensure_eq!(sched.pop_merged(), None, "drained");
        Ok(())
    });
}

// ---------------------------------------------------------------------------
// 7. The batched runtime itself: random relay systems vs oracles.
// ---------------------------------------------------------------------------

use packetshader::check::ensure;
use packetshader::sim::Time as SimTime;
use packetshader::sim::{run_sharded_on, CrossQueue, Scheduler, ShardModel};

/// A randomized relay shard for driving [`run_sharded_on`] directly:
/// every handled tag below `limit` forwards `tag + 1` according to a
/// generated rule table — either locally (rescheduled on the own
/// queue) or across shards with at least `latency` ns of flight time.
/// The shard records every emission (with its per-source index, which
/// mirrors [`CrossQueue`]'s internal counter) and a combined
/// handle/delivery log, so properties can compare the batched
/// runtime's behavior against sort-based per-event oracles.
#[derive(Clone)]
struct Relay {
    id: usize,
    latency: SimTime,
    limit: u32,
    /// `(dest, extra_delay)`; `dest == usize::MAX` means a local hop.
    rules: Vec<(usize, SimTime)>,
    sent: u64,
    /// Every cross emission: `(arrival, src, idx, to, tag)`.
    sends: Vec<(SimTime, usize, u64, usize, u32)>,
    /// Interleaved observations: `(time, kind, tag)` with kind 0 for a
    /// handled event and 1 for a delivered message.
    log: Vec<(SimTime, u8, u32)>,
}

impl ShardModel for Relay {
    type Event = u32;
    type Cross = u32;

    fn handle(&mut self, sched: &mut Scheduler<u32>, tag: u32, cross: &mut CrossQueue<u32>) {
        self.log.push((sched.now(), 0, tag));
        if tag >= self.limit {
            return;
        }
        let (dest, extra) = self.rules[tag as usize % self.rules.len()];
        if dest == usize::MAX {
            sched.after(extra + 1, tag + 1);
        } else {
            let arrival = sched.now() + self.latency + extra;
            self.sends
                .push((arrival, self.id, self.sent, dest, tag + 1));
            self.sent += 1;
            cross.send(self.id, dest, arrival, tag + 1);
        }
    }

    fn deliver(&mut self, sched: &mut Scheduler<u32>, at: SimTime, tag: u32) {
        self.log.push((at, 1, tag));
        sched.at(at, tag);
    }
}

/// One random relay system, drawn from `g`: shard count, true
/// cross-shard latency, a rule table, seed events and a safe (<=
/// latency) lookahead. Returned as a closure so a property can run
/// the *identical* system at several thread counts.
fn gen_relay(g: &mut Gen) -> (impl Fn(usize) -> Vec<Relay>, SimTime) {
    let n = g.int_in(2usize..=4);
    let latency = g.int_in(1u64..=20);
    let limit = g.int_in(1u32..=30);
    let rules = g.vec_of(1, 6, |g| {
        if g.int_in(0u32..=3) == 0 {
            (usize::MAX, g.int_in(0u64..=15))
        } else {
            (g.int_in(0usize..=n - 1), g.int_in(0u64..=15))
        }
    });
    let seeds = g.vec_of(1, 5, |g| (g.int_in(0usize..=n - 1), g.int_in(0u64..=10)));
    let until = g.int_in(50u64..=400);
    let lookahead = g.int_in(1u64..=latency);
    let run = move |threads: usize| {
        let mut models: Vec<Relay> = (0..n)
            .map(|id| Relay {
                id,
                latency,
                limit,
                rules: rules.clone(),
                sent: 0,
                sends: Vec::new(),
                log: Vec::new(),
            })
            .collect();
        let mut scheds = ShardedScheduler::new(n);
        for &(s, t) in &seeds {
            scheds.shard_mut(s).at(t, 0u32);
        }
        run_sharded_on(&mut models, &mut scheds, until, lookahead, threads, |d| d);
        models
    };
    (run, until)
}

/// Property (ISSUE 6): the batched per-window `Vec` handoff delivers
/// exactly the multiset and order a per-event send would — every
/// shard's delivery log equals all emissions destined to it, sorted
/// by `(arrival, src, idx)`, with post-`until` arrivals discarded.
#[test]
fn batched_handoff_matches_per_event_oracle() {
    check("batched_handoff_oracle", |g: &mut Gen| {
        let (run, until) = gen_relay(g);
        let threads = g.int_in(1usize..=3);
        let models = run(threads);
        let all: Vec<_> = models
            .iter()
            .flat_map(|m| m.sends.iter().copied())
            .collect();
        for (d, m) in models.iter().enumerate() {
            let mut expect: Vec<_> = all
                .iter()
                .filter(|&&(arrival, _, _, to, _)| to == d && arrival <= until)
                .copied()
                .collect();
            expect.sort_by_key(|&(arrival, src, idx, _, _)| (arrival, src, idx));
            let want: Vec<(SimTime, u32)> = expect
                .iter()
                .map(|&(arrival, _, _, _, tag)| (arrival, tag))
                .collect();
            let got: Vec<(SimTime, u32)> = m
                .log
                .iter()
                .filter(|&&(_, kind, _)| kind == 1)
                .map(|&(t, _, tag)| (t, tag))
                .collect();
            ensure_eq!(got, want, "shard {} deliveries vs per-event oracle", d);
        }
        Ok(())
    });
}

/// Property (ISSUE 6): work-stealing never pops an event ahead of the
/// deterministic merge order — a pooled run (threads 2 and 3, where
/// shard-windows migrate between threads) produces byte-identical
/// per-shard logs to the inline single-thread run, and no shard's log
/// ever goes backwards in time.
#[test]
fn work_stealing_preserves_merged_order() {
    check("stealing_preserves_order", |g: &mut Gen| {
        let (run, _) = gen_relay(g);
        let inline = run(1);
        for (i, m) in inline.iter().enumerate() {
            // Only handled events are *pops*; a delivery entry is an
            // enqueue at the window boundary and may legitimately
            // precede earlier-timed pending events in the log.
            let handles: Vec<_> = m.log.iter().filter(|&&(_, kind, _)| kind == 0).collect();
            ensure!(
                handles.windows(2).all(|w| w[0].0 <= w[1].0),
                "shard {} pops must be time-monotone",
                i
            );
        }
        for threads in [2usize, 3] {
            let pooled = run(threads);
            for (i, (a, b)) in inline.iter().zip(&pooled).enumerate() {
                ensure_eq!(
                    a.log,
                    b.log,
                    "shard {} log: threads=1 vs threads={}",
                    i,
                    threads
                );
                ensure_eq!(
                    a.sends,
                    b.sends,
                    "shard {} emissions at threads={}",
                    i,
                    threads
                );
            }
        }
        Ok(())
    });
}
