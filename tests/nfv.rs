//! The stateful NFV tier, end to end (ISSUE 7).
//!
//! Three layers of evidence that the flow-state architecture of
//! DESIGN.md §10 holds up:
//!
//! 1. **The cuckoo cache against a `BTreeMap` oracle** — seeded
//!    churn (insert/lookup/remove/clock-advance) must agree with the
//!    obviously-correct map exactly while there is no eviction
//!    pressure, and keep its consistency + accounting invariants once
//!    the table is slammed past capacity.
//! 2. **Million-flow scale** — NAT and the load balancer each sustain
//!    ≥ 1M concurrent flow entries under the IMIX blend with
//!    per-packet ephemeral flows, with bounded cuckoo displacement.
//! 3. **Fault composition** — a GPU-abort run through the full router
//!    loses per-node flow state (`App::on_gpu_fault`) yet the fault
//!    ledger still reconciles: `injected == handled + dropped`.

use std::collections::BTreeMap;

use packetshader::check::{check, ensure, ensure_eq, Gen};
use packetshader::core::apps::{Backend, LbApp, NatApp};
use packetshader::core::{App, Router, RouterConfig};
use packetshader::fault::FaultSpec;
use packetshader::flow::{FlowCache, FlowTuple};
use packetshader::pktgen::{Generator, TrafficSpec};
use packetshader::sim::MILLIS;

// ---------------------------------------------------------------------------
// 1. The cuckoo cache vs a BTreeMap oracle.
// ---------------------------------------------------------------------------

/// A small pool of distinct tuples; ops pick keys from here so that
/// inserts, lookups and removes actually collide.
fn key_pool(g: &mut Gen) -> Vec<FlowTuple> {
    let n = g.len_in(1, 48);
    (0..n)
        .map(|i| {
            (
                0x0A00_0000 + i as u32,
                g.value::<u32>(),
                g.int_in(1u16..60000),
                g.int_in(1u16..60000),
                if g.int_in(0u32..=1) == 0 { 6 } else { 17 },
            )
        })
        .collect()
}

/// With the table far larger than the key pool there is no eviction
/// pressure, so the cuckoo cache must behave *exactly* like a map:
/// same hits, same values, same occupancy, at every step.
#[test]
fn cuckoo_matches_btreemap_without_pressure() {
    check("cuckoo_vs_btreemap", |g: &mut Gen| {
        let keys = key_pool(g);
        let mut cache: FlowCache<u64> = FlowCache::new(4096, 0);
        let mut oracle: BTreeMap<FlowTuple, u64> = BTreeMap::new();
        let ops = g.len_in(1, 300);
        for step in 0..ops {
            let k = keys[g.int_in(0usize..=keys.len() - 1)];
            let now = step as u64;
            match g.int_in(0u32..=3) {
                0 | 1 => {
                    let v = g.value::<u64>();
                    cache.insert(k, now, v);
                    oracle.insert(k, v);
                }
                2 => {
                    ensure_eq!(
                        cache.lookup(&k, now).copied(),
                        oracle.get(&k).copied(),
                        "lookup at step {}",
                        step
                    );
                }
                _ => {
                    ensure_eq!(
                        cache.remove(&k),
                        oracle.remove(&k),
                        "remove at step {}",
                        step
                    );
                }
            }
            ensure_eq!(
                cache.occupancy(),
                oracle.len(),
                "occupancy at step {}",
                step
            );
        }
        ensure_eq!(
            cache.stats().evictions,
            0,
            "4096 slots for ≤48 keys never evict"
        );
        for k in &keys {
            ensure_eq!(cache.lookup(k, ops as u64).copied(), oracle.get(k).copied());
        }
        Ok(())
    });
}

/// Slammed past capacity the cache may *forget* (LRU eviction at the
/// cuckoo dead end) but must never *lie*: a hit always returns the
/// last value written for that key, occupancy never exceeds the slot
/// count, and the accounting identity
/// `occupancy == inserts − evictions − expiries − removals` holds
/// after every operation.
#[test]
fn cuckoo_stays_consistent_under_pressure() {
    check("cuckoo_under_pressure", |g: &mut Gen| {
        let mut cache: FlowCache<u64> = FlowCache::new(64, 0);
        let slots = cache.capacity();
        let mut oracle: BTreeMap<FlowTuple, u64> = BTreeMap::new();
        let mut removed = 0u64;
        let ops = g.len_in(1, 400);
        for step in 0..ops {
            let k: FlowTuple = (
                g.int_in(0u32..=255),
                0x0B00_0000,
                g.int_in(1u16..=4),
                80,
                17,
            );
            let now = step as u64;
            match g.int_in(0u32..=3) {
                0 | 1 => {
                    let v = g.value::<u64>();
                    cache.insert(k, now, v);
                    oracle.insert(k, v);
                }
                2 => {
                    if let Some(&got) = cache.lookup(&k, now).map(|v| &*v) {
                        ensure_eq!(
                            Some(got),
                            oracle.get(&k).copied(),
                            "hit must match the last write at step {}",
                            step
                        );
                    }
                }
                _ => {
                    if cache.remove(&k).is_some() {
                        removed += 1;
                    }
                    oracle.remove(&k);
                }
            }
            let st = cache.stats();
            ensure!(cache.occupancy() <= slots, "occupancy within slots");
            ensure_eq!(
                cache.occupancy() as u64,
                st.inserts - st.evictions - st.expiries - removed,
                "accounting identity at step {}",
                step
            );
            ensure!(st.max_depth <= 8, "kick chains are bounded");
        }
        Ok(())
    });
}

// ---------------------------------------------------------------------------
// 2. Million-flow scale under the IMIX blend.
// ---------------------------------------------------------------------------

/// Drive `total` generator packets through `app` in batches and
/// return the number the app forwarded.
fn drive<A: App>(app: &mut A, spec: TrafficSpec, total: usize) -> usize {
    let mut gen = Generator::new(spec);
    let mut forwarded = 0;
    let mut batch = Vec::with_capacity(8192);
    let mut left = total;
    while left > 0 {
        batch.clear();
        for _ in 0..8192.min(left) {
            batch.push(gen.next_packet().1);
        }
        left -= batch.len();
        app.pre_shade(&mut batch);
        app.process_cpu(&mut batch);
        forwarded += batch.len();
    }
    forwarded
}

/// 1.25M ephemeral flows (IMIX blend, per-packet random tuples)
/// against a NAT sized at 2²⁰ slots per node: ≥ 1M concurrent
/// bindings stay resident, the external-pool allocator keeps up, and
/// cuckoo displacement stays within its bound.
#[test]
fn nat_sustains_a_million_concurrent_flows() {
    const N: usize = 1_250_000;
    let mut nat = NatApp::new(8, 2, 1 << 20, 0);
    let forwarded = drive(&mut nat, TrafficSpec::imix(40.0, 3), N);
    assert_eq!(forwarded, N, "every well-formed frame translates");
    let occ = nat.occupancy();
    assert!(occ >= 1_000_000, "only {occ} concurrent NAT bindings");
    let st = nat.cache_stats();
    assert!(
        st.max_depth <= 8,
        "displacement depth {} escaped its bound",
        st.max_depth
    );
    assert_eq!(
        occ as u64,
        st.inserts - st.evictions - st.expiries,
        "accounting"
    );
    assert!(
        st.evictions < (N as u64) / 100,
        "{} evictions at ~60% load — the cuckoo table is thrashing",
        st.evictions
    );
}

/// The same storm against the load balancer: ≥ 1M sticky pins across
/// the per-node caches, every packet dispatched to a live backend.
#[test]
fn lb_sustains_a_million_concurrent_flows() {
    const N: usize = 1_250_000;
    let backends: Vec<Backend> = (0..16)
        .map(|i| Backend {
            ip: 0x0A63_0001 + i,
            port: 8080,
        })
        .collect();
    let mut lb = LbApp::new(backends, 8, 2, 1 << 20, 0);
    let forwarded = drive(&mut lb, TrafficSpec::imix(40.0, 4), N);
    assert_eq!(forwarded, N, "every well-formed frame dispatches");
    let occ = lb.occupancy();
    assert!(occ >= 1_000_000, "only {occ} concurrent LB pins");
    let st = lb.cache_stats();
    assert!(st.max_depth <= 8);
    assert!(st.evictions < (N as u64) / 100);
}

// ---------------------------------------------------------------------------
// 3. Fault composition: state loss on a faulted shard, ledger intact.
// ---------------------------------------------------------------------------

/// The `gpu` fault scenario aborts batches mid-shade. Each abort now
/// also flushes the faulted node's flow table (`App::on_gpu_fault`) —
/// flows re-establish through the CPU fallback path, and the ledger
/// invariant `injected == handled + dropped` must survive the
/// composition exactly.
#[test]
fn nat_state_loss_reconciles_the_fault_ledger() {
    let mut cfg = RouterConfig::paper_gpu();
    cfg.faults = FaultSpec::scenario("gpu")
        .expect("known scenario")
        .with_seed(0xF10);
    let spec = TrafficSpec::imix(20.0, 5).with_heavy_tail(512, 3);
    let r = Router::run(cfg, NatApp::new(8, 2, 1 << 16, 0), spec, MILLIS);
    assert!(r.delivered.packets > 0, "NAT forwards under GPU faults");
    assert!(r.faults.gpu_aborts > 0, "scenario never aborted a batch");
    assert!(
        r.faults.cpu_fallbacks > 0,
        "aborts must fall back to the CPU"
    );
    assert!(
        r.faults.reconciles(),
        "ledger does not reconcile after flow-state loss\n{}",
        r.faults.summary_table()
    );
}

/// The same faulted run is still deterministic: two runs with the
/// same seed produce byte-identical reports even though each abort
/// tears down and rebuilds per-node flow state.
#[test]
fn faulted_nat_runs_are_deterministic() {
    let run = || {
        let mut cfg = RouterConfig::paper_gpu();
        cfg.faults = FaultSpec::scenario("gpu")
            .expect("known scenario")
            .with_seed(0xF10);
        let spec = TrafficSpec::imix(20.0, 5).with_heavy_tail(512, 3);
        format!(
            "{:?}",
            Router::run(cfg, NatApp::new(8, 2, 1 << 16, 0), spec, MILLIS / 2)
        )
    };
    assert_eq!(run(), run());
}
