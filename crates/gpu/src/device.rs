//! Simulated device (GPU) memory and the device descriptor.

use ps_hw::spec::GpuSpec;

/// A handle to an allocation in device memory. Plain offsets — device
/// pointers are opaque to the host, exactly like CUDA `devptr`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceBuffer {
    offset: usize,
    len: usize,
}

impl DeviceBuffer {
    /// Allocation length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for zero-length buffers.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Absolute device address of `off` within this buffer, for
    /// coalescing analysis.
    pub(crate) fn addr(&self, off: usize) -> usize {
        debug_assert!(off <= self.len);
        self.offset + off
    }
}

/// Flat device memory with a bump allocator.
///
/// PacketShader allocates long-lived table images at startup and
/// reuses fixed I/O staging buffers per chunk slot, so a bump
/// allocator plus whole-buffer reuse is a faithful (and simple)
/// model; there is no free-list because the real system never frees.
#[derive(Debug)]
pub struct DeviceMemory {
    data: Vec<u8>,
    next: usize,
}

impl DeviceMemory {
    /// Device memory of `capacity` bytes (lazily zeroed).
    pub fn new(capacity: usize) -> DeviceMemory {
        DeviceMemory {
            data: vec![0; capacity],
            next: 0,
        }
    }

    /// Bytes still unallocated.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.next
    }

    /// Allocate `len` bytes, 256-byte aligned (CUDA's allocation
    /// granularity guarantee that makes coalesced access possible).
    ///
    /// # Panics
    /// Panics on device-memory exhaustion: the workloads size their
    /// tables up front, so exhaustion is a configuration bug.
    pub fn alloc(&mut self, len: usize) -> DeviceBuffer {
        let offset = (self.next + 255) & !255;
        assert!(
            offset + len <= self.data.len(),
            "device memory exhausted: want {} at {}, capacity {}",
            len,
            offset,
            self.data.len()
        );
        self.next = offset + len;
        DeviceBuffer { offset, len }
    }

    /// Host-side write into device memory (the payload action of a
    /// host→device DMA copy).
    pub fn write(&mut self, buf: &DeviceBuffer, off: usize, src: &[u8]) {
        assert!(off + src.len() <= buf.len, "device write out of bounds");
        self.data[buf.offset + off..buf.offset + off + src.len()].copy_from_slice(src);
    }

    /// Host-side read out of device memory (device→host DMA).
    pub fn read(&self, buf: &DeviceBuffer, off: usize, dst: &mut [u8]) {
        assert!(off + dst.len() <= buf.len, "device read out of bounds");
        dst.copy_from_slice(&self.data[buf.offset + off..buf.offset + off + dst.len()]);
    }

    /// Borrow an allocation's bytes.
    pub fn slice(&self, buf: &DeviceBuffer) -> &[u8] {
        &self.data[buf.offset..buf.offset + buf.len]
    }

    /// Borrow an allocation's bytes mutably.
    pub fn slice_mut(&mut self, buf: &DeviceBuffer) -> &mut [u8] {
        &mut self.data[buf.offset..buf.offset + buf.len]
    }

    pub(crate) fn raw(&self) -> &[u8] {
        &self.data
    }

    pub(crate) fn raw_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// One GPU: its spec and its memory.
#[derive(Debug)]
pub struct GpuDevice {
    /// Architecture constants.
    pub spec: GpuSpec,
    /// Device memory.
    pub mem: DeviceMemory,
}

impl GpuDevice {
    /// A device with the given spec and its full memory capacity.
    pub fn new(spec: GpuSpec) -> GpuDevice {
        let mem = DeviceMemory::new(spec.mem_bytes as usize);
        GpuDevice { spec, mem }
    }

    /// A GTX480 with a reduced memory capacity — test configurations
    /// use this to avoid multi-GB allocations.
    pub fn gtx480_with_mem(mem_bytes: usize) -> GpuDevice {
        GpuDevice {
            spec: GpuSpec::gtx480(),
            mem: DeviceMemory::new(mem_bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut m = DeviceMemory::new(4096);
        let a = m.alloc(100);
        let b = m.alloc(100);
        assert_eq!(a.addr(0) % 256, 0);
        assert_eq!(b.addr(0) % 256, 0);
        assert!(b.addr(0) >= a.addr(0) + 100);
    }

    #[test]
    fn write_read_round_trip() {
        let mut m = DeviceMemory::new(4096);
        let buf = m.alloc(16);
        m.write(&buf, 4, &[1, 2, 3, 4]);
        let mut out = [0u8; 4];
        m.read(&buf, 4, &mut out);
        assert_eq!(out, [1, 2, 3, 4]);
        assert_eq!(&m.slice(&buf)[4..8], &[1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn write_out_of_bounds_panics() {
        let mut m = DeviceMemory::new(4096);
        let buf = m.alloc(8);
        m.write(&buf, 4, &[0; 8]);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let mut m = DeviceMemory::new(1024);
        let _ = m.alloc(512);
        let _ = m.alloc(1024);
    }

    #[test]
    fn remaining_shrinks() {
        let mut m = DeviceMemory::new(4096);
        let before = m.remaining();
        m.alloc(256);
        assert!(m.remaining() < before);
    }

    #[test]
    fn gtx480_shape() {
        let d = GpuDevice::gtx480_with_mem(1 << 20);
        assert_eq!(d.spec.total_lanes(), 480);
        assert_eq!(d.mem.remaining(), 1 << 20);
    }
}
