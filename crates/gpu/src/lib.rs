//! # ps-gpu — SIMT GPU simulator
//!
//! A functional-plus-analytic model of the NVIDIA GTX480 (§2.1) that
//! plays CUDA's role in the reproduction:
//!
//! * **Functional**: kernels are real Rust code executed once per GPU
//!   thread against simulated device memory ([`DeviceMemory`]), so the
//!   forwarding tables, crypto and flow lookups produce *real*
//!   results — the router's output is bit-exact regardless of timing.
//! * **Analytic timing**: each thread's memory accesses and ALU work
//!   are traced per warp (32 lanes, lockstep, divergence counted,
//!   per-warp coalescing into 128 B segments) and converted into a
//!   kernel duration by [`timing::kernel_time`] — the maximum of an
//!   instruction-issue bound, a memory-latency bound, an
//!   outstanding-transaction (latency-hiding) bound and a device
//!   bandwidth bound. This is the mechanism behind Figure 2: few
//!   threads leave the latency term exposed; many threads amortize it
//!   and shift the bottleneck to throughput terms.
//! * **Transfers**: copies ride the PCIe model fitted to Table 1 and
//!   also consume IOH capacity, coupling GPU traffic with packet I/O
//!   exactly as §6.3 observes ("IOH gets more overloaded due to
//!   copying IP addresses...").
//! * **Streams**: [`engine::GpuEngine`] serializes copy-in, kernel and
//!   copy-out per chunk, with optional concurrent copy & execution
//!   (Figure 10(c)) that lets different chunks overlap engines.

#![deny(missing_docs)]

pub mod device;
pub mod engine;
pub mod kernel;
pub mod staging;
pub mod timing;

pub use device::{DeviceBuffer, DeviceMemory, GpuDevice};
pub use engine::GpuEngine;
pub use kernel::{Kernel, LaunchStats, ThreadCtx};
pub use staging::{Slots, Staging};
pub use timing::KernelCost;
