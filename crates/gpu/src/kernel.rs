//! The kernel API: real per-thread code with cost tracing.
//!
//! A [`Kernel`] is executed once per GPU thread. The [`ThreadCtx`]
//! passed to each thread is both the *functional* interface to device
//! memory and the *tracing* interface: every global access records its
//! address so the per-warp coalescing analysis can count 128-byte
//! memory transactions, `alu()` accumulates issue cycles, and
//! `branch()` records data-dependent decisions so warp divergence can
//! be charged (§5.5 "Divergency in GPU code").

use crate::device::{DeviceBuffer, DeviceMemory};
use crate::timing::KernelCost;

/// A GPU kernel: one object, many threads.
pub trait Kernel {
    /// Kernel name for reports.
    fn name(&self) -> &str;

    /// Execute thread `tid` of the launch.
    fn thread(&self, tid: u32, ctx: &mut ThreadCtx<'_>);
}

/// Aggregated outcome of a kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchStats {
    /// Threads launched.
    pub threads: u32,
    /// Warps executed.
    pub warps: u32,
    /// Total coalesced memory transactions issued.
    pub mem_transactions: u64,
    /// Longest dependent memory chain (steps) over all warps.
    pub max_chain: u32,
    /// Total warp-issue cycles (divergence included).
    pub issue_cycles: u64,
    /// Warp branch decisions that diverged within a warp.
    pub divergent_branches: u64,
}

/// Per-thread execution context.
pub struct ThreadCtx<'a> {
    mem: &'a mut DeviceMemory,
    /// Which lane of its warp this thread occupies.
    lane: u32,
    /// Index of the thread's next memory step.
    step: usize,
    alu: u64,
    branch_step: usize,
    warp: &'a mut WarpAccumulator,
}

impl<'a> ThreadCtx<'a> {
    /// Record `cycles` of pure compute.
    #[inline]
    pub fn alu(&mut self, cycles: u32) {
        self.alu += u64::from(cycles);
    }

    /// Record a data-dependent branch decision. Divergence within the
    /// warp is detected and charged by the timing model.
    #[inline]
    pub fn branch(&mut self, taken: bool) {
        self.warp.record_branch(self.branch_step, taken);
        self.branch_step += 1;
    }

    /// Read `N` bytes of global memory at `buf[off..]`.
    #[inline]
    pub fn read<const N: usize>(&mut self, buf: &DeviceBuffer, off: usize) -> [u8; N] {
        self.record_access(buf.addr(off), N);
        let mut out = [0u8; N];
        let base = buf.addr(0);
        out.copy_from_slice(&self.mem.raw()[base + off..base + off + N]);
        out
    }

    /// Read a little-endian u32 from global memory.
    #[inline]
    pub fn read_u32(&mut self, buf: &DeviceBuffer, off: usize) -> u32 {
        u32::from_le_bytes(self.read::<4>(buf, off))
    }

    /// Read a little-endian u16 from global memory.
    #[inline]
    pub fn read_u16(&mut self, buf: &DeviceBuffer, off: usize) -> u16 {
        u16::from_le_bytes(self.read::<2>(buf, off))
    }

    /// Read one byte from global memory.
    #[inline]
    pub fn read_u8(&mut self, buf: &DeviceBuffer, off: usize) -> u8 {
        self.read::<1>(buf, off)[0]
    }

    /// Write bytes to global memory at `buf[off..]`.
    #[inline]
    pub fn write(&mut self, buf: &DeviceBuffer, off: usize, data: &[u8]) {
        self.record_access(buf.addr(off), data.len());
        let base = buf.addr(0);
        self.mem.raw_mut()[base + off..base + off + data.len()].copy_from_slice(data);
    }

    /// Write a little-endian u32.
    #[inline]
    pub fn write_u32(&mut self, buf: &DeviceBuffer, off: usize, v: u32) {
        self.write(buf, off, &v.to_le_bytes());
    }

    /// Access that hits shared memory / registers: costs issue cycles
    /// only, no global transaction. (The IPsec kernel keeps its AES
    /// tables in shared memory, §6: "maximize the usage of in-die
    /// memory".)
    #[inline]
    pub fn shared(&mut self, cycles: u32) {
        self.alu += u64::from(cycles);
    }

    fn record_access(&mut self, addr: usize, len: usize) {
        self.warp.record_access(self.step, addr, len);
        self.step += 1;
    }
}

const SEGMENT_SHIFT: u32 = 7; // 128-byte coalescing segments

/// Collects per-warp traces while the 32 lanes execute sequentially.
///
/// The buffers are high-water-mark scratch: `finish` resets *used*
/// counts but never frees — inner segment vectors keep their capacity
/// across warps, and when the accumulator itself is reused across
/// launches (see [`execute_with`]) the steady state allocates
/// nothing. The per-launch `steps.resize_with(step + 1, ...)` churn
/// this replaces showed up directly in the IPsec wall-clock sweeps.
#[derive(Debug, Default)]
pub struct WarpAccumulator {
    /// Per memory step: unique 128 B segment ids touched. Only
    /// `steps[..used_steps]` is live; slots beyond hold empty spare
    /// vectors with retained capacity.
    steps: Vec<Vec<u64>>,
    used_steps: usize,
    /// Per branch step: (first decision, diverged?). Slots at or past
    /// `used_branches` are stale and re-initialized on first touch.
    branches: Vec<(bool, bool)>,
    used_branches: usize,
}

impl WarpAccumulator {
    fn record_access(&mut self, step: usize, addr: usize, len: usize) {
        if self.steps.len() <= step {
            self.steps.resize_with(step + 1, Vec::new);
        }
        self.used_steps = self.used_steps.max(step + 1);
        let first = (addr >> SEGMENT_SHIFT) as u64;
        let last = ((addr + len.max(1) - 1) >> SEGMENT_SHIFT) as u64;
        for seg in first..=last {
            let v = &mut self.steps[step];
            if !v.contains(&seg) {
                v.push(seg);
            }
        }
    }

    fn record_branch(&mut self, step: usize, taken: bool) {
        if self.branches.len() <= step {
            self.branches.resize(step + 1, (taken, false));
        }
        if self.used_branches <= step {
            // First touch this warp: overwrite whatever a previous
            // warp left here (same semantics as the old `resize`
            // after `clear`).
            for slot in &mut self.branches[self.used_branches..=step] {
                *slot = (taken, false);
            }
            self.used_branches = step + 1;
        }
        let (first, diverged) = &mut self.branches[step];
        if *first != taken {
            *diverged = true;
        }
    }

    fn finish(&mut self, max_alu: u64) -> (u64, u32, u64, u64) {
        let live = &mut self.steps[..self.used_steps];
        let transactions: u64 = live.iter().map(|s| s.len() as u64).sum();
        let chain = self.used_steps as u32;
        let divergent = self.branches[..self.used_branches]
            .iter()
            .filter(|(_, d)| *d)
            .count() as u64;
        // A divergent branch serializes both sides of the warp: charge
        // the warp's issue cost again for each divergent decision, the
        // standard lockstep-masking cost model (§2.1).
        let issue = max_alu * (1 + divergent);
        for v in live {
            v.clear(); // capacity retained
        }
        self.used_steps = 0;
        self.used_branches = 0;
        (transactions, chain, issue, divergent)
    }
}

/// Execute `kernel` over `threads` threads against `mem`, returning
/// aggregate stats for the timing model. Purely functional — virtual
/// time is computed separately from the returned stats.
///
/// Allocates fresh warp scratch; the engine's steady-state path is
/// [`execute_with`], which reuses scratch across launches.
pub fn execute(kernel: &dyn Kernel, mem: &mut DeviceMemory, threads: u32) -> LaunchStats {
    execute_with(kernel, mem, threads, &mut WarpAccumulator::default())
}

/// [`execute`] with caller-owned warp scratch. [`crate::GpuEngine`]
/// holds one [`WarpAccumulator`] for its lifetime, so per-warp step
/// and branch buffers are allocated once at the high-water mark and
/// recycled for every subsequent launch.
pub fn execute_with(
    kernel: &dyn Kernel,
    mem: &mut DeviceMemory,
    threads: u32,
    warp: &mut WarpAccumulator,
) -> LaunchStats {
    let warp_size = 32;
    let mut stats = LaunchStats {
        threads,
        warps: threads.div_ceil(warp_size),
        mem_transactions: 0,
        max_chain: 0,
        issue_cycles: 0,
        divergent_branches: 0,
    };
    let mut tid = 0;
    while tid < threads {
        let lanes = warp_size.min(threads - tid);
        let mut max_alu = 0u64;
        for lane in 0..lanes {
            let mut ctx = ThreadCtx {
                mem,
                lane,
                step: 0,
                alu: 0,
                branch_step: 0,
                warp: &mut *warp,
            };
            kernel.thread(tid + lane, &mut ctx);
            max_alu = max_alu.max(ctx.alu);
            let _ = ctx.lane;
        }
        let (tx, chain, issue, div) = warp.finish(max_alu);
        stats.mem_transactions += tx;
        stats.max_chain = stats.max_chain.max(chain);
        stats.issue_cycles += issue;
        stats.divergent_branches += div;
        tid += lanes;
    }
    stats
}

/// Convert launch stats into the cost summary the timing model uses.
pub fn cost_of(stats: &LaunchStats) -> KernelCost {
    KernelCost {
        warps: stats.warps,
        issue_cycles: stats.issue_cycles,
        mem_transactions: stats.mem_transactions,
        max_chain: stats.max_chain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Each thread reads 4 bytes at tid*4 from one buffer: perfectly
    /// coalesced — a warp's 32 reads fit in one 128 B segment.
    struct CoalescedRead {
        buf: DeviceBuffer,
    }

    impl Kernel for CoalescedRead {
        fn name(&self) -> &str {
            "coalesced-read"
        }
        fn thread(&self, tid: u32, ctx: &mut ThreadCtx<'_>) {
            let _ = ctx.read_u32(&self.buf, tid as usize * 4);
            ctx.alu(10);
        }
    }

    /// Each thread reads 4 bytes at tid*512: fully scattered — every
    /// lane in its own segment.
    struct ScatteredRead {
        buf: DeviceBuffer,
    }

    impl Kernel for ScatteredRead {
        fn name(&self) -> &str {
            "scattered-read"
        }
        fn thread(&self, tid: u32, ctx: &mut ThreadCtx<'_>) {
            let _ = ctx.read_u32(&self.buf, tid as usize * 512);
            ctx.alu(10);
        }
    }

    #[test]
    fn coalescing_collapses_warp_accesses() {
        let mut mem = DeviceMemory::new(1 << 20);
        let buf = mem.alloc(64 * 512 + 4);
        let co = execute(&CoalescedRead { buf }, &mut mem, 64);
        let sc = execute(&ScatteredRead { buf }, &mut mem, 64);
        assert_eq!(co.warps, 2);
        assert_eq!(co.mem_transactions, 2, "one segment per warp");
        assert_eq!(sc.mem_transactions, 64, "one segment per lane");
    }

    #[test]
    fn functional_results_are_real() {
        struct AddOne {
            src: DeviceBuffer,
            dst: DeviceBuffer,
        }
        impl Kernel for AddOne {
            fn name(&self) -> &str {
                "add-one"
            }
            fn thread(&self, tid: u32, ctx: &mut ThreadCtx<'_>) {
                let v = ctx.read_u32(&self.src, tid as usize * 4);
                ctx.write_u32(&self.dst, tid as usize * 4, v + 1);
            }
        }
        let mut mem = DeviceMemory::new(1 << 16);
        let src = mem.alloc(256);
        let dst = mem.alloc(256);
        for i in 0..64u32 {
            let off = i as usize * 4;
            let b = mem.slice_mut(&src);
            b[off..off + 4].copy_from_slice(&(i * 7).to_le_bytes());
        }
        execute(&AddOne { src, dst }, &mut mem, 64);
        for i in 0..64u32 {
            let off = i as usize * 4;
            let got = u32::from_le_bytes(mem.slice(&dst)[off..off + 4].try_into().unwrap());
            assert_eq!(got, i * 7 + 1);
        }
    }

    #[test]
    fn divergence_detected_and_charged() {
        struct Divergent;
        impl Kernel for Divergent {
            fn name(&self) -> &str {
                "divergent"
            }
            fn thread(&self, tid: u32, ctx: &mut ThreadCtx<'_>) {
                ctx.alu(100);
                ctx.branch(tid.is_multiple_of(2)); // alternate lanes disagree
            }
        }
        struct Uniform;
        impl Kernel for Uniform {
            fn name(&self) -> &str {
                "uniform"
            }
            fn thread(&self, _tid: u32, ctx: &mut ThreadCtx<'_>) {
                ctx.alu(100);
                ctx.branch(true);
            }
        }
        let mut mem = DeviceMemory::new(1024);
        let d = execute(&Divergent, &mut mem, 32);
        let u = execute(&Uniform, &mut mem, 32);
        assert_eq!(d.divergent_branches, 1);
        assert_eq!(u.divergent_branches, 0);
        assert_eq!(d.issue_cycles, 200, "divergent warp pays both sides");
        assert_eq!(u.issue_cycles, 100);
    }

    #[test]
    fn chain_depth_is_max_steps() {
        struct Chase {
            buf: DeviceBuffer,
            hops: usize,
        }
        impl Kernel for Chase {
            fn name(&self) -> &str {
                "chase"
            }
            fn thread(&self, tid: u32, ctx: &mut ThreadCtx<'_>) {
                let mut at = tid as usize * 4;
                for _ in 0..self.hops {
                    at = ctx.read_u32(&self.buf, at) as usize % 256;
                }
            }
        }
        let mut mem = DeviceMemory::new(4096);
        let buf = mem.alloc(512);
        let s = execute(&Chase { buf, hops: 7 }, &mut mem, 8);
        assert_eq!(s.max_chain, 7);
    }

    /// Reusing one accumulator across launches — including launches
    /// with *different* step and branch shapes — must yield exactly
    /// the stats a fresh accumulator yields. This is the contract
    /// that lets GpuEngine keep scratch for its whole lifetime.
    #[test]
    fn scratch_reuse_is_invisible() {
        struct Branchy {
            buf: DeviceBuffer,
        }
        impl Kernel for Branchy {
            fn name(&self) -> &str {
                "branchy"
            }
            fn thread(&self, tid: u32, ctx: &mut ThreadCtx<'_>) {
                ctx.alu(10);
                ctx.branch(tid.is_multiple_of(2));
                let _ = ctx.read_u32(&self.buf, tid as usize * 512);
            }
        }
        let mut mem = DeviceMemory::new(1 << 20);
        let buf = mem.alloc(64 * 512 + 4);
        let mut scratch = WarpAccumulator::default();
        // Deep kernel, then shallow, then branchy, then deep again:
        // stale state from a previous shape must never leak through.
        for _ in 0..2 {
            let fresh = execute(&ScatteredRead { buf }, &mut mem, 64);
            let reused = execute_with(&ScatteredRead { buf }, &mut mem, 64, &mut scratch);
            assert_eq!(fresh, reused, "scattered");
            let fresh = execute(&CoalescedRead { buf }, &mut mem, 64);
            let reused = execute_with(&CoalescedRead { buf }, &mut mem, 64, &mut scratch);
            assert_eq!(fresh, reused, "coalesced");
            let fresh = execute(&Branchy { buf }, &mut mem, 48);
            let reused = execute_with(&Branchy { buf }, &mut mem, 48, &mut scratch);
            assert_eq!(fresh, reused, "branchy");
        }
    }

    #[test]
    fn partial_last_warp() {
        let mut mem = DeviceMemory::new(1 << 16);
        let buf = mem.alloc(4096);
        let s = execute(&CoalescedRead { buf }, &mut mem, 33);
        assert_eq!(s.warps, 2);
        assert_eq!(s.threads, 33);
    }

    #[test]
    fn straddling_access_counts_both_segments() {
        struct Straddle {
            buf: DeviceBuffer,
        }
        impl Kernel for Straddle {
            fn name(&self) -> &str {
                "straddle"
            }
            fn thread(&self, _tid: u32, ctx: &mut ThreadCtx<'_>) {
                let _ = ctx.read::<8>(&self.buf, 124); // crosses a 128B boundary
            }
        }
        let mut mem = DeviceMemory::new(4096);
        let buf = mem.alloc(256);
        let s = execute(&Straddle { buf }, &mut mem, 1);
        assert_eq!(s.mem_transactions, 2);
    }
}
