//! Staging modes and column addressing for kernel inputs.
//!
//! PacketShader's kernels read only a few bytes of each packet (the
//! IPv4 kernel: a 4-byte destination address; the flow kernels: the
//! canonical 5-tuple), so *how* those bytes reach device memory is a
//! modeling axis of its own:
//!
//! * [`Staging::Frames`] ships whole frames and lets each thread pick
//!   its field out of a 2 KB frame slot — the naive layout, paying
//!   full frame bytes on PCIe and an uncoalesced access per thread;
//! * [`Staging::Soa`] gathers just the kernel's input column into a
//!   densely packed struct-of-arrays batch on the host (§4.3.1
//!   "copies only the destination IP addresses") — the default, and
//!   what the seed always modeled;
//! * [`Staging::DirectDma`] lands the column in device memory straight
//!   from NIC RX DMA (a NaNet/GPUDirect-style peer-to-peer path), so
//!   no host gather copy crosses the IOH a second time.
//!
//! [`Slots`] is the device-side half of the same choice: it tells a
//! kernel where thread `tid`'s input record lives, so one kernel body
//! serves both the packed and the frame-resident layouts.

use crate::device::DeviceBuffer;
use crate::kernel::ThreadCtx;

/// How kernel input columns reach device memory. See the module docs
/// for the three layouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Staging {
    /// Whole-frame staging: every gathered frame occupies a
    /// fixed-size device slot and PCIe pays the full frame bytes.
    Frames,
    /// Struct-of-arrays columnar staging (the default): only the
    /// bytes the kernel reads are gathered and copied.
    Soa,
    /// NIC→GPU direct DMA: the column materializes in device memory
    /// with the RX DMA itself; no host staging copy is charged.
    DirectDma,
}

impl Staging {
    /// Stable lower-case label for reports and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            Staging::Frames => "frames",
            Staging::Soa => "soa",
            Staging::DirectDma => "direct-dma",
        }
    }

    /// Parse a CLI label (`frames`, `soa`, `direct-dma`).
    pub fn parse(s: &str) -> Option<Staging> {
        match s {
            "frames" => Some(Staging::Frames),
            "soa" => Some(Staging::Soa),
            "direct-dma" | "direct" => Some(Staging::DirectDma),
            _ => None,
        }
    }
}

/// Where thread `tid` finds its input record inside a staging buffer:
/// records sit `stride` bytes apart starting at byte `offset`.
///
/// Packed columns use `stride == record width` (consecutive threads
/// read consecutive bytes → warp accesses coalesce into few 128 B
/// segments); frame-resident records use the frame-slot stride (each
/// thread touches its own segment → no coalescing), which is exactly
/// the cost difference the staging ablation measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slots {
    /// Byte distance between consecutive threads' records.
    pub stride: u32,
    /// Byte offset of the record within its slot.
    pub offset: u32,
}

impl Slots {
    /// Densely packed records of `width` bytes each (SoA layout).
    pub const fn packed(width: u32) -> Slots {
        Slots {
            stride: width,
            offset: 0,
        }
    }

    /// Frame-resident records: one `slot`-byte frame cell per thread,
    /// with the field at byte `offset` inside the cell.
    pub const fn frames(slot: u32, offset: u32) -> Slots {
        Slots {
            stride: slot,
            offset,
        }
    }

    /// Device byte address of thread `tid`'s record.
    pub fn at(&self, tid: u32) -> usize {
        tid as usize * self.stride as usize + self.offset as usize
    }

    /// Read thread `tid`'s `N`-byte record through the coalescing
    /// tracker (a convenience over [`ThreadCtx::read`]).
    pub fn read<const N: usize>(
        &self,
        ctx: &mut ThreadCtx<'_>,
        buf: &DeviceBuffer,
        tid: u32,
    ) -> [u8; N] {
        ctx.read::<N>(buf, self.at(tid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_addresses_are_dense() {
        let s = Slots::packed(4);
        assert_eq!(s.at(0), 0);
        assert_eq!(s.at(7), 28);
    }

    #[test]
    fn frame_addresses_stride_by_slot() {
        let s = Slots::frames(2048, 30);
        assert_eq!(s.at(0), 30);
        assert_eq!(s.at(3), 3 * 2048 + 30);
    }

    #[test]
    fn labels_round_trip() {
        for m in [Staging::Frames, Staging::Soa, Staging::DirectDma] {
            assert_eq!(Staging::parse(m.label()), Some(m));
        }
        assert_eq!(Staging::parse("direct"), Some(Staging::DirectDma));
        assert_eq!(Staging::parse("aos"), None);
    }
}
