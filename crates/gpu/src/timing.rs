//! The analytic kernel timing model.
//!
//! Kernel duration is the maximum of four bounds (a simplification of
//! Hong & Kim's analytical GPU model, which the paper cites as \[25\]):
//!
//! 1. **Issue bound** — each SM issues one warp instruction per cycle;
//!    total warp-issue cycles spread over the SMs.
//! 2. **Latency bound** — a warp's dependent memory chain serializes
//!    at full device-memory latency; chains of resident warps overlap,
//!    but when the launch needs more waves than fit residency, waves
//!    repeat.
//! 3. **Latency-hiding (MLP) bound** — each SM can keep a bounded
//!    number of memory transactions in flight; total transactions
//!    divided by that service rate. This is what makes throughput grow
//!    with thread count and saturate (Figure 2's shape).
//! 4. **Bandwidth bound** — coalesced transactions × 128 B against
//!    device memory bandwidth (177.4 GB/s).

use ps_hw::spec::GpuSpec;
use ps_sim::time::Time;

/// Cost summary of one kernel launch (from the warp traces).
#[derive(Debug, Clone, Copy)]
pub struct KernelCost {
    /// Warps in the launch.
    pub warps: u32,
    /// Total warp-issue cycles, divergence included.
    pub issue_cycles: u64,
    /// Total coalesced 128 B memory transactions.
    pub mem_transactions: u64,
    /// Longest dependent memory chain in steps.
    pub max_chain: u32,
}

/// Kernel execution time (launch overhead *not* included; see
/// [`launch_overhead`]).
pub fn kernel_time(spec: &GpuSpec, cost: &KernelCost) -> Time {
    if cost.warps == 0 {
        return 0;
    }
    let sms = u64::from(spec.sms);
    let hz = spec.hz as f64;

    // 1. Issue bound.
    let issue_ns = cost.issue_cycles as f64 / sms as f64 / hz * 1e9;

    // 2. Latency bound: each wave of resident warps pays the chain.
    let warps_per_sm = u64::from(cost.warps).div_ceil(sms);
    let waves = warps_per_sm
        .div_ceil(u64::from(spec.max_warps_per_sm))
        .max(1);
    let latency_ns = waves as f64 * cost.max_chain as f64 * spec.mem_latency_ns as f64;

    // 3. MLP bound: transactions served at (inflight per SM / latency)
    // per SM.
    let service_rate =
        (sms * u64::from(spec.max_mem_inflight_per_sm)) as f64 / spec.mem_latency_ns as f64; // transactions per ns
    let mlp_ns = cost.mem_transactions as f64 / service_rate;

    // 4. Bandwidth bound.
    let bytes = cost.mem_transactions * u64::from(spec.mem_segment);
    let bw_ns = bytes as f64 * 8.0 / spec.mem_bw_bits as f64 * 1e9;

    issue_ns.max(latency_ns).max(mlp_ns).max(bw_ns).ceil() as Time
}

/// Kernel launch overhead (§2.2): 3.8 µs for one thread, growing
/// linearly to ~4.1 µs at 4096 threads.
pub fn launch_overhead(spec: &GpuSpec, threads: u32) -> Time {
    spec.launch_base_ns + u64::from(threads) * spec.launch_per_thread_ps / 1000
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> GpuSpec {
        GpuSpec::gtx480()
    }

    /// Cost of an IPv6-lookup-like kernel: 7-step dependent chain,
    /// scattered (1 transaction per step per warp... per lane), ~60
    /// issue cycles per warp.
    fn lookup_cost(threads: u32) -> KernelCost {
        let warps = threads.div_ceil(32);
        KernelCost {
            warps,
            issue_cycles: u64::from(warps) * 120,
            // Scattered table lookups: no intra-warp coalescing.
            mem_transactions: u64::from(threads) * 7,
            max_chain: 7,
        }
    }

    #[test]
    fn small_launches_are_latency_bound() {
        let s = spec();
        let t32 = kernel_time(&s, &lookup_cost(32));
        let t320 = kernel_time(&s, &lookup_cost(320));
        // Both fit in one wave: latency bound dominates, time barely grows.
        assert_eq!(t32, 7 * s.mem_latency_ns);
        assert!(t320 <= t32 * 2, "t320={t320} t32={t32}");
    }

    #[test]
    fn large_launches_scale_with_thread_count() {
        let s = spec();
        let t4k = kernel_time(&s, &lookup_cost(4096));
        let t64k = kernel_time(&s, &lookup_cost(65536));
        let ratio = t64k as f64 / t4k as f64;
        assert!((8.0..24.0).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn throughput_saturates_an_order_of_magnitude_above_small_batch() {
        // The Figure 2 shape: throughput (lookups/s) grows with batch
        // and saturates.
        let s = spec();
        let tput = |n: u32| n as f64 / kernel_time(&s, &lookup_cost(n)) as f64;
        let small = tput(64);
        let large = tput(131_072);
        assert!(large > 8.0 * small, "small={small:.3} large={large:.3}");
        // And saturation: 256Ki is within 30% of 128Ki throughput.
        let larger = tput(262_144);
        assert!((larger - large).abs() / large < 0.3);
    }

    #[test]
    fn peak_lookup_rate_in_figure2_band() {
        // Figure 2: one GTX480 peaks at roughly 10x one X5550 socket
        // (which our CPU model calibrates to ~15-20 M lookups/s), so
        // the GPU should saturate in the 100-250 M lookups/s band.
        let s = spec();
        let n = 1 << 20;
        let t = kernel_time(&s, &lookup_cost(n));
        let rate = n as f64 / (t as f64 / 1e9);
        assert!(
            (1.0e8..2.5e8).contains(&rate),
            "peak lookup rate {rate:.2e}/s"
        );
    }

    #[test]
    fn bandwidth_bound_kernels() {
        // A copy-heavy kernel: few chain steps, huge coalesced traffic.
        let s = spec();
        let cost = KernelCost {
            warps: 4096,
            issue_cycles: 4096 * 10,
            mem_transactions: 10_000_000,
            max_chain: 4,
        };
        let t = kernel_time(&s, &cost);
        let bytes = 10_000_000u64 * 128;
        let bw_ns = bytes as f64 * 8.0 / s.mem_bw_bits as f64 * 1e9;
        assert_eq!(t, bw_ns.ceil() as Time);
    }

    #[test]
    fn launch_overhead_matches_section_2_2() {
        let s = spec();
        assert_eq!(launch_overhead(&s, 1), 3_800);
        let t4096 = launch_overhead(&s, 4096);
        // Paper: 4.1 us for 4096 threads (within 10%).
        assert!((3_900..=4_500).contains(&t4096), "t4096={t4096}");
    }

    #[test]
    fn empty_launch_costs_nothing() {
        assert_eq!(
            kernel_time(
                &spec(),
                &KernelCost {
                    warps: 0,
                    issue_cycles: 0,
                    mem_transactions: 0,
                    max_chain: 0
                }
            ),
            0
        );
    }
}
