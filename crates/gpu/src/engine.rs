//! The per-device execution engine: copy engines, the kernel engine
//! and the stream semantics of §5.4.
//!
//! A GTX480 has one kernel engine and a DMA copy engine. Operations
//! belonging to one chunk are strictly ordered (copy-in → kernel →
//! copy-out). Across chunks:
//!
//! * **without** concurrent copy & execution (the default, used for
//!   lightweight kernels like IPv4 lookup where extra per-call stream
//!   overhead hurts, §5.4), all operations serialize on the device;
//! * **with** it (used for IPsec), copies of chunk *i+1* overlap the
//!   kernel of chunk *i*, because copies and kernels run on different
//!   engines (Figure 10(c)).
//!
//! Copies also consume IOH capacity so GPU traffic competes with
//! packet I/O — the coupling §6.3 blames for IPv4's 39 Gbps being
//! "slightly lower than 41 Gbps of minimal forwarding".

use std::collections::VecDeque;

use ps_hw::ioh::{Direction, Ioh};
use ps_hw::pcie::{CopyDir, PcieModel};
use ps_sim::time::Time;

use crate::device::{DeviceBuffer, GpuDevice};
use crate::kernel::{self, Kernel, LaunchStats, WarpAccumulator};
use crate::timing;

/// Extra host-side driver cost per CUDA library call when stream
/// support is enabled ("having multiple streams adds non-trivial
/// overhead for each CUDA library function call", §5.4).
const STREAM_CALL_OVERHEAD_NS: Time = 2_000;

/// One GPU plus its engine state.
pub struct GpuEngine {
    /// The device (spec + memory).
    pub dev: GpuDevice,
    pcie: PcieModel,
    /// Concurrent copy & execution enabled (multi-stream mode).
    pub concurrent_copy: bool,
    /// Upload (host->device) engine horizon in stream mode.
    h2d_free: Time,
    /// Download (device->host) engine horizon in stream mode.
    d2h_free: Time,
    exec_free: Time,
    /// Serialization horizon used when streams are disabled.
    serial_free: Time,
    /// Totals for reports.
    pub kernels_launched: u64,
    /// Total busy kernel time accumulated.
    pub kernel_busy: Time,
    /// Trace lane for this device's `gpu`-category spans (set to the
    /// NUMA node index by the router; engine 0 by default).
    pub trace_lane: u32,
    /// Completion times of in-flight uploads, oldest first — drained
    /// against each new copy's start to report `queue_depth`.
    h2d_inflight: VecDeque<Time>,
    /// Completion times of in-flight downloads, oldest first.
    d2h_inflight: VecDeque<Time>,
    /// Reusable per-launch warp scratch: allocated to its high-water
    /// mark by the first launches, then recycled so steady-state
    /// launches are allocation-free.
    scratch: WarpAccumulator,
}

impl GpuEngine {
    /// An engine over `dev` using the PCIe transfer model `pcie`.
    pub fn new(dev: GpuDevice, pcie: PcieModel) -> GpuEngine {
        GpuEngine {
            dev,
            pcie,
            concurrent_copy: false,
            h2d_free: 0,
            d2h_free: 0,
            exec_free: 0,
            serial_free: 0,
            kernels_launched: 0,
            kernel_busy: 0,
            trace_lane: 0,
            h2d_inflight: VecDeque::new(),
            d2h_inflight: VecDeque::new(),
            scratch: WarpAccumulator::default(),
        }
    }

    fn stream_overhead(&self) -> Time {
        if self.concurrent_copy {
            STREAM_CALL_OVERHEAD_NS
        } else {
            0
        }
    }

    /// Copy `data` into device memory at `buf[off..]`, starting no
    /// earlier than `ready`. Returns the completion time.
    ///
    /// The copy occupies the copy engine, the PCIe link (timing per
    /// Table 1) and the node's IOH (host→device direction). IOH
    /// capacity is charged at `ready` — the CPU-side submission time —
    /// so fabric occupancy reflects when the transfer is queued, not
    /// when a backlogged engine eventually starts it.
    pub fn copy_h2d(
        &mut self,
        ready: Time,
        ioh: &mut Ioh,
        buf: &DeviceBuffer,
        off: usize,
        data: &[u8],
    ) -> Time {
        self.dev.mem.write(buf, off, data);
        self.copy(ready, ready, ioh, CopyDir::HostToDevice, data.len() as u64)
    }

    /// Materialize `data` in device memory at `buf[off..]` with *no*
    /// modeled transfer cost. Used by staging modes whose bytes do not
    /// cross host PCIe as a gather copy: the frame-staging ablation
    /// deposits per-packet fields and charges the frame bytes once via
    /// [`GpuEngine::charge_h2d`], and the direct-DMA ablation's
    /// columns arrived with NIC RX DMA (costed by the NIC model).
    pub fn deposit(&mut self, buf: &DeviceBuffer, off: usize, data: &[u8]) {
        self.dev.mem.write(buf, off, data);
    }

    /// Charge a host→device copy of `bytes` (copy engine, PCIe link,
    /// IOH capacity) without writing device memory — the cost half of
    /// a transfer whose functional half went through
    /// [`GpuEngine::deposit`]. Returns the completion time.
    pub fn charge_h2d(&mut self, ready: Time, ioh: &mut Ioh, bytes: u64) -> Time {
        self.copy(ready, ready, ioh, CopyDir::HostToDevice, bytes)
    }

    /// Copy device memory at `buf[off..]` out to `dst`, starting no
    /// earlier than `ready` (typically the kernel completion);
    /// `submit_at` is when the CPU queued the asynchronous call and
    /// is used for IOH capacity accounting.
    pub fn copy_d2h(
        &mut self,
        submit_at: Time,
        ready: Time,
        ioh: &mut Ioh,
        buf: &DeviceBuffer,
        off: usize,
        dst: &mut [u8],
    ) -> Time {
        self.dev.mem.read(buf, off, dst);
        self.copy(
            submit_at,
            ready,
            ioh,
            CopyDir::DeviceToHost,
            dst.len() as u64,
        )
    }

    fn copy(
        &mut self,
        submit_at: Time,
        ready: Time,
        ioh: &mut Ioh,
        dir: CopyDir,
        bytes: u64,
    ) -> Time {
        // With streams, uploads and downloads queue on separate DMA
        // engines (Figure 10(c)); without, every operation serializes
        // on the device.
        let engine_gate = if self.concurrent_copy {
            match dir {
                CopyDir::HostToDevice => self.h2d_free,
                CopyDir::DeviceToHost => self.d2h_free,
            }
        } else {
            self.serial_free
        };
        let start = ready.max(engine_gate) + self.stream_overhead();
        let pcie_done = start + self.pcie.copy_time(dir, bytes);
        let ioh_dir = match dir {
            CopyDir::HostToDevice => Direction::HostToDevice,
            CopyDir::DeviceToHost => Direction::DeviceToHost,
        };
        let ioh_done = ioh.dma_priority(submit_at.min(start), ioh_dir, bytes);
        let done = pcie_done.max(ioh_done);
        match dir {
            CopyDir::HostToDevice => self.h2d_free = done,
            CopyDir::DeviceToHost => self.d2h_free = done,
        }
        if !self.concurrent_copy {
            self.serial_free = done;
        }
        // Copies of this direction still in flight when this one
        // starts. Measured at `start` (not `submit_at`) so serial-mode
        // depth is honest: the engine drained everything before us.
        let inflight = match dir {
            CopyDir::HostToDevice => &mut self.h2d_inflight,
            CopyDir::DeviceToHost => &mut self.d2h_inflight,
        };
        while inflight.front().is_some_and(|&d| d <= start) {
            inflight.pop_front();
        }
        let queue_depth = inflight.len() as u64;
        inflight.push_back(done);
        ps_trace::complete(
            ps_trace::Category::Gpu,
            match dir {
                CopyDir::HostToDevice => "copy_h2d",
                CopyDir::DeviceToHost => "copy_d2h",
            },
            self.trace_lane,
            start,
            done,
            // `submit` is the CPU-side queueing time, `wait` the delay
            // from data-ready to engine start — emitted for both
            // directions so a d2h queued before its kernel finished
            // (`submit_at < ready`) is no longer misread as waiting.
            || {
                vec![
                    ("bytes", bytes),
                    ("submit", submit_at),
                    ("wait", start - ready.max(submit_at).min(start)),
                    ("queue_depth", queue_depth),
                ]
            },
        );
        done
    }

    /// Launch `kernel` over `threads` threads, starting no earlier
    /// than `ready` (normally the copy-in completion). Executes the
    /// kernel functionally against device memory immediately and
    /// returns `(completion_time, stats)`.
    pub fn launch(
        &mut self,
        ready: Time,
        kernel: &dyn Kernel,
        threads: u32,
    ) -> (Time, LaunchStats) {
        let stats = kernel::execute_with(kernel, &mut self.dev.mem, threads, &mut self.scratch);
        let cost = kernel::cost_of(&stats);
        let duration = timing::launch_overhead(&self.dev.spec, threads)
            + timing::kernel_time(&self.dev.spec, &cost);
        let engine_gate = if self.concurrent_copy {
            self.exec_free
        } else {
            self.serial_free
        };
        let start = ready.max(engine_gate) + self.stream_overhead();
        let done = start + duration;
        self.exec_free = done;
        if !self.concurrent_copy {
            self.serial_free = done;
        }
        self.kernels_launched += 1;
        self.kernel_busy += duration;
        ps_trace::complete(
            ps_trace::Category::Gpu,
            "kernel",
            self.trace_lane,
            start,
            done,
            || vec![("threads", threads as u64), ("wait", start - ready)],
        );
        (done, stats)
    }

    /// Hold the execution engines `extra` ns past their current
    /// horizon — an injected slow-warp straggler still occupying the
    /// SMs after the batch's modeled completion, so the *next* launch
    /// queues behind the overrun.
    pub fn delay_engines(&mut self, extra: Time) {
        self.exec_free += extra;
        self.serial_free += extra;
        self.kernel_busy += extra;
    }

    /// Earliest time a newly submitted chunk could start its copy-in
    /// (in stream mode: when the upload engine frees — the moment the
    /// async CUDA calls of the previous chunk have been queued and its
    /// inputs are on the device).
    pub fn next_copy_slot(&self) -> Time {
        if self.concurrent_copy {
            self.h2d_free
        } else {
            self.serial_free
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_hw::spec::{IohSpec, PcieSpec};

    struct Touch {
        buf: DeviceBuffer,
        per_thread_bytes: usize,
        alu: u32,
    }

    impl Kernel for Touch {
        fn name(&self) -> &str {
            "touch"
        }
        fn thread(&self, tid: u32, ctx: &mut crate::kernel::ThreadCtx<'_>) {
            let off = tid as usize * self.per_thread_bytes;
            let v = ctx.read_u32(&self.buf, off);
            ctx.write_u32(&self.buf, off, v.wrapping_add(1));
            ctx.alu(self.alu);
        }
    }

    fn engine(concurrent: bool) -> (GpuEngine, Ioh) {
        let dev = GpuDevice::gtx480_with_mem(1 << 22);
        let mut e = GpuEngine::new(dev, PcieModel::new(PcieSpec::dual_ioh_x16()));
        e.concurrent_copy = concurrent;
        (e, Ioh::new(IohSpec::intel_5520_dual()))
    }

    #[test]
    fn chunk_ops_are_ordered() {
        let (mut e, mut ioh) = engine(false);
        let buf = e.dev.mem.alloc(4096);
        let t1 = e.copy_h2d(0, &mut ioh, &buf, 0, &[7; 4096]);
        let (t2, _) = e.launch(
            t1,
            &Touch {
                buf,
                per_thread_bytes: 8,
                alu: 50,
            },
            512,
        );
        let mut out = vec![0u8; 4096];
        let t3 = e.copy_d2h(t1, t2, &mut ioh, &buf, 0, &mut out);
        assert!(t1 < t2 && t2 < t3);
        // Functional result: first u32 of each 8B cell incremented.
        assert_eq!(
            u32::from_le_bytes(out[0..4].try_into().unwrap()),
            u32::from_le_bytes([7, 7, 7, 7]) + 1
        );
    }

    #[test]
    fn serial_mode_serializes_independent_chunks() {
        let (mut e, mut ioh) = engine(false);
        let a = e.dev.mem.alloc(4096);
        let b = e.dev.mem.alloc(4096);
        let a_done = e.copy_h2d(0, &mut ioh, &a, 0, &[1; 4096]);
        let (a_kernel, _) = e.launch(
            a_done,
            &Touch {
                buf: a,
                per_thread_bytes: 8,
                alu: 50,
            },
            512,
        );
        // Chunk B's copy cannot start before chunk A's kernel is done.
        let b_done = e.copy_h2d(0, &mut ioh, &b, 0, &[2; 4096]);
        assert!(b_done > a_kernel);
    }

    #[test]
    fn concurrent_mode_overlaps_copy_with_kernel() {
        // Same two-chunk schedule in both modes; the second chunk's
        // copy-in must finish earlier when streams allow it to overlap
        // the first chunk's kernel (Figure 10(c)).
        let run = |concurrent: bool| {
            let (mut e, mut ioh) = engine(concurrent);
            let a = e.dev.mem.alloc(1 << 20);
            let b = e.dev.mem.alloc(1 << 20);
            let big = vec![3u8; 1 << 20];
            let a_done = e.copy_h2d(0, &mut ioh, &a, 0, &big);
            let (a_kernel, _) = e.launch(
                a_done,
                &Touch {
                    buf: a,
                    per_thread_bytes: 128,
                    alu: 5000,
                },
                8192,
            );
            let b_copy = e.copy_h2d(a_done, &mut ioh, &b, 0, &big);
            (a_kernel, b_copy)
        };
        let (serial_kernel, serial_b) = run(false);
        let (_, overlap_b) = run(true);
        // Serial: b's copy starts only after a's kernel.
        assert!(serial_b > serial_kernel);
        // Concurrent: b's copy finished sooner than in serial mode by
        // more than the stream call overhead it paid.
        assert!(
            overlap_b + 10 * STREAM_CALL_OVERHEAD_NS < serial_b,
            "overlap={overlap_b} serial={serial_b}"
        );
    }

    #[test]
    fn stream_mode_adds_per_call_overhead() {
        // §5.4: streams hurt lightweight kernels.
        let (mut e_plain, mut ioh1) = engine(false);
        let (mut e_stream, mut ioh2) = engine(true);
        let buf1 = e_plain.dev.mem.alloc(1024);
        let buf2 = e_stream.dev.mem.alloc(1024);
        let t_plain = {
            let t = e_plain.copy_h2d(0, &mut ioh1, &buf1, 0, &[0; 1024]);
            let (t, _) = e_plain.launch(
                t,
                &Touch {
                    buf: buf1,
                    per_thread_bytes: 4,
                    alu: 50,
                },
                256,
            );
            t
        };
        let t_stream = {
            let t = e_stream.copy_h2d(0, &mut ioh2, &buf2, 0, &[0; 1024]);
            let (t, _) = e_stream.launch(
                t,
                &Touch {
                    buf: buf2,
                    per_thread_bytes: 4,
                    alu: 50,
                },
                256,
            );
            t
        };
        assert!(t_stream > t_plain);
    }

    #[test]
    fn copies_consume_ioh_capacity() {
        let (mut e, mut ioh) = engine(false);
        let buf = e.dev.mem.alloc(1 << 20);
        let data = vec![0u8; 1 << 20];
        e.copy_h2d(0, &mut ioh, &buf, 0, &data);
        assert_eq!(ioh.h2d_bytes(), 1 << 20);
        let mut out = vec![0u8; 1 << 20];
        e.copy_d2h(0, 0, &mut ioh, &buf, 0, &mut out);
        assert_eq!(ioh.d2h_bytes(), 1 << 20);
    }

    #[test]
    fn kernel_accounting() {
        let (mut e, mut ioh) = engine(false);
        let buf = e.dev.mem.alloc(4096);
        let t = e.copy_h2d(0, &mut ioh, &buf, 0, &[0; 4096]);
        e.launch(
            t,
            &Touch {
                buf,
                per_thread_bytes: 8,
                alu: 50,
            },
            512,
        );
        assert_eq!(e.kernels_launched, 1);
        assert!(e.kernel_busy > 0);
    }
}
