//! Packet construction helpers used by the traffic generator, tests
//! and examples. Builders produce complete, checksummed frames sized
//! to an exact target length (padding the payload), matching the
//! paper's fixed-size packet workloads.

use std::net::{Ipv4Addr, Ipv6Addr};

use crate::ethernet::{EtherType, EthernetFrame, MacAddr};
use crate::ipv4::{protocol, Ipv4Packet};
use crate::ipv6::Ipv6Packet;
use crate::udp::UdpDatagram;
use crate::{ethernet, ipv4, ipv6, udp, MIN_FRAME_LEN};

/// Stateless builders for the frame shapes the evaluation uses.
pub struct PacketBuilder;

impl PacketBuilder {
    /// A UDP-over-IPv4 Ethernet frame of exactly `frame_len` bytes
    /// (>= 60). Checksums (IPv4 header + UDP) are filled in.
    pub fn udp_v4(
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        frame_len: usize,
    ) -> Vec<u8> {
        let frame_len = frame_len.max(MIN_FRAME_LEN);
        let ip_len = frame_len - ethernet::HEADER_LEN;
        let udp_len = ip_len - ipv4::HEADER_LEN;
        assert!(
            udp_len >= udp::HEADER_LEN,
            "frame too short for UDP/IPv4: {frame_len}"
        );

        let mut buf = vec![0u8; frame_len];
        {
            let mut eth = EthernetFrame::new_unchecked(&mut buf[..]);
            eth.set_src(src_mac);
            eth.set_dst(dst_mac);
            eth.set_ethertype(EtherType::Ipv4);
        }
        {
            let mut ip = Ipv4Packet::new_unchecked(&mut buf[ethernet::HEADER_LEN..]);
            ip.set_version_ihl();
            ip.set_total_len(ip_len as u16);
            ip.set_ident(0);
            ip.set_ttl(64);
            ip.set_protocol(protocol::UDP);
            ip.set_src(src);
            ip.set_dst(dst);
            ip.fill_checksum();
        }
        {
            let off = ethernet::HEADER_LEN + ipv4::HEADER_LEN;
            let mut u = UdpDatagram::new_unchecked(&mut buf[off..]);
            u.set_src_port(src_port);
            u.set_dst_port(dst_port);
            u.set_len(udp_len as u16);
            u.fill_checksum_v4(src.octets(), dst.octets());
        }
        buf
    }

    /// A UDP-over-IPv6 Ethernet frame of exactly `frame_len` bytes.
    /// (IPv6 forwarding only reads addresses; the UDP checksum is left
    /// zero, which the simulation treats as "offloaded".)
    pub fn udp_v6(
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src: Ipv6Addr,
        dst: Ipv6Addr,
        src_port: u16,
        dst_port: u16,
        frame_len: usize,
    ) -> Vec<u8> {
        let min = ethernet::HEADER_LEN + ipv6::HEADER_LEN + udp::HEADER_LEN;
        let frame_len = frame_len.max(min).max(MIN_FRAME_LEN);
        let payload_len = frame_len - ethernet::HEADER_LEN - ipv6::HEADER_LEN;

        let mut buf = vec![0u8; frame_len];
        {
            let mut eth = EthernetFrame::new_unchecked(&mut buf[..]);
            eth.set_src(src_mac);
            eth.set_dst(dst_mac);
            eth.set_ethertype(EtherType::Ipv6);
        }
        {
            let mut ip = Ipv6Packet::new_unchecked(&mut buf[ethernet::HEADER_LEN..]);
            ip.set_version();
            ip.set_payload_len(payload_len as u16);
            ip.set_next_header(protocol::UDP);
            ip.set_hop_limit(64);
            ip.set_src(src);
            ip.set_dst(dst);
        }
        {
            let off = ethernet::HEADER_LEN + ipv6::HEADER_LEN;
            let mut u = UdpDatagram::new_unchecked(&mut buf[off..]);
            u.set_src_port(src_port);
            u.set_dst_port(dst_port);
            u.set_len(payload_len as u16);
        }
        buf
    }

    /// A raw IPv4 frame (no transport header) of exactly `frame_len`
    /// bytes with the given protocol number; used to wrap ESP packets.
    pub fn raw_v4(
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        proto: u8,
        payload: &[u8],
    ) -> Vec<u8> {
        let ip_len = ipv4::HEADER_LEN + payload.len();
        let frame_len = (ethernet::HEADER_LEN + ip_len).max(MIN_FRAME_LEN);
        let mut buf = vec![0u8; frame_len];
        {
            let mut eth = EthernetFrame::new_unchecked(&mut buf[..]);
            eth.set_src(src_mac);
            eth.set_dst(dst_mac);
            eth.set_ethertype(EtherType::Ipv4);
        }
        {
            let mut ip = Ipv4Packet::new_unchecked(&mut buf[ethernet::HEADER_LEN..]);
            ip.set_version_ihl();
            ip.set_total_len(ip_len as u16);
            ip.set_ttl(64);
            ip.set_protocol(proto);
            ip.set_src(src);
            ip.set_dst(dst);
            ip.fill_checksum();
        }
        let off = ethernet::HEADER_LEN + ipv4::HEADER_LEN;
        buf[off..off + payload.len()].copy_from_slice(payload);
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn udp_v4_frame_is_valid_at_all_paper_sizes() {
        for &size in &[64usize, 128, 256, 512, 1024, 1514] {
            let f = PacketBuilder::udp_v4(
                MacAddr::local(1),
                MacAddr::local(2),
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 0, 2),
                1000,
                2000,
                size,
            );
            assert_eq!(f.len(), size);
            let eth = EthernetFrame::new_checked(&f[..]).unwrap();
            assert_eq!(eth.ethertype(), EtherType::Ipv4);
            let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
            assert!(ip.verify_checksum());
            let u = UdpDatagram::new_checked(ip.payload()).unwrap();
            assert!(u.verify_checksum_v4(ip.src().octets(), ip.dst().octets()));
        }
    }

    #[test]
    fn udp_v6_frame_is_valid() {
        let f = PacketBuilder::udp_v6(
            MacAddr::local(1),
            MacAddr::local(2),
            "2001:db8::1".parse().unwrap(),
            "2001:db8::2".parse().unwrap(),
            1000,
            2000,
            64,
        );
        assert_eq!(f.len(), 64); // IPv6 min frame here is 62, padded to min 64? no: 60
        let eth = EthernetFrame::new_checked(&f[..]).unwrap();
        assert_eq!(eth.ethertype(), EtherType::Ipv6);
        let ip = Ipv6Packet::new_checked(eth.payload()).unwrap();
        assert_eq!(ip.next_header(), protocol::UDP);
    }

    #[test]
    fn raw_v4_wraps_payload() {
        let payload = vec![0xAB; 100];
        let f = PacketBuilder::raw_v4(
            MacAddr::local(1),
            MacAddr::local(2),
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            protocol::ESP,
            &payload,
        );
        let eth = EthernetFrame::new_checked(&f[..]).unwrap();
        let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
        assert_eq!(ip.protocol(), protocol::ESP);
        assert_eq!(ip.payload(), &payload[..]);
    }

    #[test]
    fn short_frames_are_padded_to_minimum() {
        let f = PacketBuilder::udp_v4(
            MacAddr::local(1),
            MacAddr::local(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1,
            2,
            10,
        );
        assert_eq!(f.len(), MIN_FRAME_LEN);
    }
}
