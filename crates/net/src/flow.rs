//! The OpenFlow 0.8.9 ten-field flow key (§6.2.3) and its extraction
//! from raw frames.

use crate::ethernet::{EtherType, EthernetFrame, MacAddr};
use crate::ipv4::{protocol, Ipv4Packet};
use crate::tcp::TcpSegment;
use crate::udp::UdpDatagram;
use crate::{Error, Result};

/// The ten header fields OpenFlow 0.8.9 matches on.
///
/// Field order follows the specification: ingress port, Ethernet
/// source/destination/VLAN/type, IP source/destination/protocol,
/// transport source/destination ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FlowKey {
    /// Switch ingress port.
    pub in_port: u16,
    /// Ethernet source address.
    pub dl_src: [u8; 6],
    /// Ethernet destination address.
    pub dl_dst: [u8; 6],
    /// VLAN id (0xFFFF = untagged, per the reference switch).
    pub dl_vlan: u16,
    /// EtherType.
    pub dl_type: u16,
    /// IPv4 source address (network order as u32).
    pub nw_src: u32,
    /// IPv4 destination address.
    pub nw_dst: u32,
    /// IP protocol.
    pub nw_proto: u8,
    /// Transport source port (or 0).
    pub tp_src: u16,
    /// Transport destination port (or 0).
    pub tp_dst: u16,
}

/// Value of `dl_vlan` for untagged frames.
pub const VLAN_NONE: u16 = 0xFFFF;

impl FlowKey {
    /// Extract the flow key from a raw Ethernet frame received on
    /// `in_port`. Non-IPv4 frames still produce a key (the L3/L4
    /// fields are zero), matching the reference switch behaviour.
    pub fn extract(in_port: u16, frame: &[u8]) -> Result<FlowKey> {
        let eth = EthernetFrame::new_checked(frame)?;
        let mut key = FlowKey {
            in_port,
            dl_src: eth.src().0,
            dl_dst: eth.dst().0,
            dl_vlan: VLAN_NONE,
            dl_type: eth.ethertype().into(),
            ..FlowKey::default()
        };
        if eth.ethertype() == EtherType::Ipv4 {
            let ip = Ipv4Packet::new_checked(eth.payload())?;
            key.nw_src = u32::from(ip.src());
            key.nw_dst = u32::from(ip.dst());
            key.nw_proto = ip.protocol();
            match ip.protocol() {
                protocol::UDP => {
                    if let Ok(udp) = UdpDatagram::new_checked(ip.payload()) {
                        key.tp_src = udp.src_port();
                        key.tp_dst = udp.dst_port();
                    }
                }
                protocol::TCP => {
                    if let Ok(tcp) = TcpSegment::new_checked(ip.payload()) {
                        key.tp_src = tcp.src_port();
                        key.tp_dst = tcp.dst_port();
                    }
                }
                _ => {}
            }
        }
        Ok(key)
    }

    /// Serialize to the canonical byte string used for hashing —
    /// stable across platforms so hash values are reproducible.
    pub fn to_bytes(&self) -> [u8; 31] {
        let mut out = [0u8; 31];
        out[0..2].copy_from_slice(&self.in_port.to_be_bytes());
        out[2..8].copy_from_slice(&self.dl_src);
        out[8..14].copy_from_slice(&self.dl_dst);
        out[14..16].copy_from_slice(&self.dl_vlan.to_be_bytes());
        out[16..18].copy_from_slice(&self.dl_type.to_be_bytes());
        out[18..22].copy_from_slice(&self.nw_src.to_be_bytes());
        out[22..26].copy_from_slice(&self.nw_dst.to_be_bytes());
        out[26] = self.nw_proto;
        out[27..29].copy_from_slice(&self.tp_src.to_be_bytes());
        out[29..31].copy_from_slice(&self.tp_dst.to_be_bytes());
        out
    }

    /// The RSS-style 5-tuple `(nw_src, nw_dst, tp_src, tp_dst,
    /// nw_proto)` used for flow-affinity hashing (§4.4).
    pub fn five_tuple(&self) -> (u32, u32, u16, u16, u8) {
        (
            self.nw_src,
            self.nw_dst,
            self.tp_src,
            self.tp_dst,
            self.nw_proto,
        )
    }
}

/// Convenience: source/destination MACs as typed addresses.
impl FlowKey {
    /// Ethernet source as a [`MacAddr`].
    pub fn src_mac(&self) -> MacAddr {
        MacAddr(self.dl_src)
    }

    /// Ethernet destination as a [`MacAddr`].
    pub fn dst_mac(&self) -> MacAddr {
        MacAddr(self.dl_dst)
    }
}

/// Extraction failure shorthand used by switch code.
pub fn extract_or_err(in_port: u16, frame: &[u8]) -> Result<FlowKey> {
    FlowKey::extract(in_port, frame).map_err(|_| Error::Malformed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PacketBuilder;
    use std::net::Ipv4Addr;

    fn udp_frame() -> Vec<u8> {
        PacketBuilder::udp_v4(
            MacAddr::local(1),
            MacAddr::local(2),
            Ipv4Addr::new(10, 1, 2, 3),
            Ipv4Addr::new(172, 16, 0, 9),
            4000,
            53,
            64,
        )
    }

    #[test]
    fn extracts_all_ten_fields() {
        let f = udp_frame();
        let key = FlowKey::extract(3, &f).unwrap();
        assert_eq!(key.in_port, 3);
        assert_eq!(key.src_mac(), MacAddr::local(1));
        assert_eq!(key.dst_mac(), MacAddr::local(2));
        assert_eq!(key.dl_vlan, VLAN_NONE);
        assert_eq!(key.dl_type, 0x0800);
        assert_eq!(key.nw_src, u32::from(Ipv4Addr::new(10, 1, 2, 3)));
        assert_eq!(key.nw_dst, u32::from(Ipv4Addr::new(172, 16, 0, 9)));
        assert_eq!(key.nw_proto, protocol::UDP);
        assert_eq!(key.tp_src, 4000);
        assert_eq!(key.tp_dst, 53);
    }

    #[test]
    fn non_ip_frame_zeroes_l3_fields() {
        let mut f = udp_frame();
        f[12..14].copy_from_slice(&0x0806u16.to_be_bytes()); // ARP
        let key = FlowKey::extract(0, &f).unwrap();
        assert_eq!(key.dl_type, 0x0806);
        assert_eq!(key.nw_src, 0);
        assert_eq!(key.tp_dst, 0);
    }

    #[test]
    fn identical_packets_identical_keys() {
        let a = FlowKey::extract(1, &udp_frame()).unwrap();
        let b = FlowKey::extract(1, &udp_frame()).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_bytes(), b.to_bytes());
    }

    #[test]
    fn in_port_distinguishes_keys() {
        let a = FlowKey::extract(1, &udp_frame()).unwrap();
        let b = FlowKey::extract(2, &udp_frame()).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn byte_serialization_is_injective_on_fields() {
        let mut a = FlowKey::extract(1, &udp_frame()).unwrap();
        let bytes_a = a.to_bytes();
        a.tp_dst ^= 1;
        assert_ne!(a.to_bytes(), bytes_a);
    }
}
