//! Libpcap capture writer (the smoltcp examples' `--pcap` idiom):
//! every packet the simulated router sees can be dumped to a file
//! that Wireshark opens directly. Timestamps are virtual nanoseconds.

use std::io::{self, Write};

/// Classic pcap global header values.
const MAGIC_NS: u32 = 0xA1B2_3C4D; // nanosecond-resolution pcap
const VERSION_MAJOR: u16 = 2;
const VERSION_MINOR: u16 = 4;
const LINKTYPE_ETHERNET: u32 = 1;

/// Streams packets into a pcap-formatted writer.
pub struct PcapWriter<W: Write> {
    out: W,
    /// Packets written.
    pub count: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Write the global header and return the writer.
    pub fn new(mut out: W) -> io::Result<PcapWriter<W>> {
        out.write_all(&MAGIC_NS.to_le_bytes())?;
        out.write_all(&VERSION_MAJOR.to_le_bytes())?;
        out.write_all(&VERSION_MINOR.to_le_bytes())?;
        out.write_all(&0i32.to_le_bytes())?; // thiszone
        out.write_all(&0u32.to_le_bytes())?; // sigfigs
        out.write_all(&65_535u32.to_le_bytes())?; // snaplen
        out.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;
        Ok(PcapWriter { out, count: 0 })
    }

    /// Record one frame observed at virtual time `ns`.
    pub fn record(&mut self, ns: u64, frame: &[u8]) -> io::Result<()> {
        let secs = (ns / 1_000_000_000) as u32;
        let nanos = (ns % 1_000_000_000) as u32;
        self.out.write_all(&secs.to_le_bytes())?;
        self.out.write_all(&nanos.to_le_bytes())?;
        self.out.write_all(&(frame.len() as u32).to_le_bytes())?;
        self.out.write_all(&(frame.len() as u32).to_le_bytes())?;
        self.out.write_all(frame)?;
        self.count += 1;
        Ok(())
    }

    /// Flush and release the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_and_records_have_pcap_layout() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.record(1_500_000_123, &[0xAA; 60]).unwrap();
        w.record(2_000_000_456, &[0xBB; 64]).unwrap();
        assert_eq!(w.count, 2);
        let bytes = w.finish().unwrap();

        // Global header: 24 bytes.
        assert_eq!(&bytes[0..4], &MAGIC_NS.to_le_bytes());
        assert_eq!(u32::from_le_bytes(bytes[20..24].try_into().unwrap()), 1);

        // First record header.
        let r = &bytes[24..];
        assert_eq!(u32::from_le_bytes(r[0..4].try_into().unwrap()), 1); // secs
        assert_eq!(u32::from_le_bytes(r[4..8].try_into().unwrap()), 500_000_123);
        assert_eq!(u32::from_le_bytes(r[8..12].try_into().unwrap()), 60);
        assert_eq!(&r[16..26], &[0xAA; 10]);

        // Second record starts right after the first's payload.
        let second = &r[16 + 60..];
        assert_eq!(u32::from_le_bytes(second[0..4].try_into().unwrap()), 2);
        assert_eq!(u32::from_le_bytes(second[8..12].try_into().unwrap()), 64);

        // Total size sanity: 24 + 2*16 + 60 + 64.
        assert_eq!(bytes.len(), 24 + 16 + 60 + 16 + 64);
    }

    #[test]
    fn empty_capture_is_just_the_header() {
        let w = PcapWriter::new(Vec::new()).unwrap();
        assert_eq!(w.finish().unwrap().len(), 24);
    }
}
