//! UDP datagrams (RFC 768).

use crate::checksum;
use crate::{Error, Result};

/// UDP header length.
pub const HEADER_LEN: usize = 8;

/// Typed view over a UDP datagram.
#[derive(Debug, Clone)]
pub struct UdpDatagram<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> UdpDatagram<T> {
    /// Wrap a buffer, validating header and length field.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let len = buffer.as_ref().len();
        if len < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let d = UdpDatagram { buffer };
        let l = d.len() as usize;
        if l < HEADER_LEN || l > len {
            return Err(Error::BadLength);
        }
        Ok(d)
    }

    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        UdpDatagram { buffer }
    }

    fn b(&self) -> &[u8] {
        self.buffer.as_ref()
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.b()[0], self.b()[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.b()[2], self.b()[3]])
    }

    /// Length field (header + payload).
    pub fn len(&self) -> u16 {
        u16::from_be_bytes([self.b()[4], self.b()[5]])
    }

    /// True if the length field covers only the header.
    pub fn is_empty(&self) -> bool {
        self.len() as usize == HEADER_LEN
    }

    /// Checksum field (0 = not computed, legal for UDP over IPv4).
    pub fn checksum_field(&self) -> u16 {
        u16::from_be_bytes([self.b()[6], self.b()[7]])
    }

    /// Payload bytes bounded by the length field.
    pub fn payload(&self) -> &[u8] {
        let end = (self.len() as usize).min(self.b().len());
        &self.b()[HEADER_LEN..end]
    }

    /// Verify the checksum against an IPv4 pseudo header. A zero
    /// checksum field is accepted as "not computed".
    pub fn verify_checksum_v4(&self, src: [u8; 4], dst: [u8; 4]) -> bool {
        if self.checksum_field() == 0 {
            return true;
        }
        let acc = checksum::pseudo_header_v4(src, dst, crate::ipv4::protocol::UDP, self.len());
        let end = (self.len() as usize).min(self.b().len());
        checksum::finish(checksum::sum(acc, &self.b()[..end])) == 0
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> UdpDatagram<T> {
    fn m(&mut self) -> &mut [u8] {
        self.buffer.as_mut()
    }

    /// Set the source port.
    pub fn set_src_port(&mut self, p: u16) {
        self.m()[0..2].copy_from_slice(&p.to_be_bytes());
    }

    /// Set the destination port.
    pub fn set_dst_port(&mut self, p: u16) {
        self.m()[2..4].copy_from_slice(&p.to_be_bytes());
    }

    /// Set the length field.
    pub fn set_len(&mut self, l: u16) {
        self.m()[4..6].copy_from_slice(&l.to_be_bytes());
    }

    /// Compute and install the checksum over an IPv4 pseudo header.
    /// Per RFC 768 a computed checksum of 0 is transmitted as 0xFFFF.
    pub fn fill_checksum_v4(&mut self, src: [u8; 4], dst: [u8; 4]) {
        self.m()[6..8].copy_from_slice(&[0, 0]);
        let acc = checksum::pseudo_header_v4(src, dst, crate::ipv4::protocol::UDP, self.len());
        let end = (self.len() as usize).min(self.b().len());
        let mut c = checksum::finish(checksum::sum(acc, &self.b()[..end]));
        if c == 0 {
            c = 0xFFFF;
        }
        self.m()[6..8].copy_from_slice(&c.to_be_bytes());
    }

    /// Mutable payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let end = (self.len() as usize).min(self.b().len());
        &mut self.m()[HEADER_LEN..end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn datagram(payload: &[u8]) -> Vec<u8> {
        let mut v = vec![0u8; HEADER_LEN + payload.len()];
        v[HEADER_LEN..].copy_from_slice(payload);
        let mut d = UdpDatagram::new_unchecked(&mut v[..]);
        d.set_src_port(5353);
        d.set_dst_port(80);
        d.set_len((HEADER_LEN + payload.len()) as u16);
        d.fill_checksum_v4([10, 0, 0, 1], [10, 0, 0, 2]);
        v
    }

    #[test]
    fn parse_round_trip() {
        let v = datagram(b"hello");
        let d = UdpDatagram::new_checked(&v[..]).unwrap();
        assert_eq!(d.src_port(), 5353);
        assert_eq!(d.dst_port(), 80);
        assert_eq!(d.len(), 13);
        assert_eq!(d.payload(), b"hello");
        assert!(d.verify_checksum_v4([10, 0, 0, 1], [10, 0, 0, 2]));
    }

    #[test]
    fn checksum_detects_payload_corruption() {
        let mut v = datagram(b"hello");
        v[HEADER_LEN] ^= 0xFF;
        let d = UdpDatagram::new_unchecked(&v[..]);
        assert!(!d.verify_checksum_v4([10, 0, 0, 1], [10, 0, 0, 2]));
    }

    #[test]
    fn checksum_binds_pseudo_header() {
        let v = datagram(b"hello");
        let d = UdpDatagram::new_unchecked(&v[..]);
        assert!(!d.verify_checksum_v4([10, 0, 0, 1], [10, 0, 0, 3]));
    }

    #[test]
    fn zero_checksum_accepted() {
        let mut v = datagram(b"x");
        v[6] = 0;
        v[7] = 0;
        let d = UdpDatagram::new_unchecked(&v[..]);
        assert!(d.verify_checksum_v4([1, 2, 3, 4], [5, 6, 7, 8]));
    }

    #[test]
    fn truncated_and_bad_length() {
        assert_eq!(
            UdpDatagram::new_checked(&[0u8; 7][..]).unwrap_err(),
            Error::Truncated
        );
        let mut v = datagram(b"abc");
        v[4..6].copy_from_slice(&100u16.to_be_bytes());
        assert_eq!(
            UdpDatagram::new_checked(&v[..]).unwrap_err(),
            Error::BadLength
        );
        let mut v = datagram(b"abc");
        v[4..6].copy_from_slice(&4u16.to_be_bytes());
        assert_eq!(
            UdpDatagram::new_checked(&v[..]).unwrap_err(),
            Error::BadLength
        );
    }

    #[test]
    fn empty_payload() {
        let v = datagram(b"");
        let d = UdpDatagram::new_checked(&v[..]).unwrap();
        assert!(d.is_empty());
        assert_eq!(d.payload(), b"");
    }
}
