//! IPv4 headers (RFC 791), without options support (options mark the
//! packet for the slow path, as in the paper's fast-path design).

use std::net::Ipv4Addr;

use crate::checksum;
use crate::{Error, Result};

/// IPv4 base header length (no options).
pub const HEADER_LEN: usize = 20;

/// IP protocol numbers used by the applications.
pub mod protocol {
    /// TCP.
    pub const TCP: u8 = 6;
    /// UDP.
    pub const UDP: u8 = 17;
    /// IPsec Encapsulating Security Payload.
    pub const ESP: u8 = 50;
    /// ICMP.
    pub const ICMP: u8 = 1;
}

/// Typed view over an IPv4 packet.
#[derive(Debug, Clone)]
pub struct Ipv4Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv4Packet<T> {
    /// Wrap a buffer, validating version, header length and the total
    /// length field against the buffer.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let len = buffer.as_ref().len();
        if len < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let p = Ipv4Packet { buffer };
        if p.version() != 4 {
            return Err(Error::Malformed);
        }
        if p.header_len() < HEADER_LEN || p.header_len() > len {
            return Err(Error::Malformed);
        }
        if (p.total_len() as usize) < p.header_len() || p.total_len() as usize > len {
            return Err(Error::BadLength);
        }
        Ok(p)
    }

    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        Ipv4Packet { buffer }
    }

    /// Release the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    fn b(&self) -> &[u8] {
        self.buffer.as_ref()
    }

    /// IP version field (must be 4).
    pub fn version(&self) -> u8 {
        self.b()[0] >> 4
    }

    /// Header length in bytes (IHL × 4).
    pub fn header_len(&self) -> usize {
        usize::from(self.b()[0] & 0x0F) * 4
    }

    /// Whether options are present (IHL > 5).
    pub fn has_options(&self) -> bool {
        self.header_len() > HEADER_LEN
    }

    /// Total length field (header + payload).
    pub fn total_len(&self) -> u16 {
        u16::from_be_bytes([self.b()[2], self.b()[3]])
    }

    /// Identification field.
    pub fn ident(&self) -> u16 {
        u16::from_be_bytes([self.b()[4], self.b()[5]])
    }

    /// Time to live.
    pub fn ttl(&self) -> u8 {
        self.b()[8]
    }

    /// Protocol field.
    pub fn protocol(&self) -> u8 {
        self.b()[9]
    }

    /// Header checksum field.
    pub fn header_checksum(&self) -> u16 {
        u16::from_be_bytes([self.b()[10], self.b()[11]])
    }

    /// Source address.
    pub fn src(&self) -> Ipv4Addr {
        let b = self.b();
        Ipv4Addr::new(b[12], b[13], b[14], b[15])
    }

    /// Destination address.
    pub fn dst(&self) -> Ipv4Addr {
        let b = self.b();
        Ipv4Addr::new(b[16], b[17], b[18], b[19])
    }

    /// Verify the header checksum.
    pub fn verify_checksum(&self) -> bool {
        checksum::verify(&self.b()[..self.header_len()])
    }

    /// Payload after the header, bounded by the total-length field.
    pub fn payload(&self) -> &[u8] {
        let hl = self.header_len();
        let tl = self.total_len() as usize;
        &self.b()[hl..tl.max(hl).min(self.b().len())]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv4Packet<T> {
    fn m(&mut self) -> &mut [u8] {
        self.buffer.as_mut()
    }

    /// Set version=4 and IHL=5 (20-byte header).
    pub fn set_version_ihl(&mut self) {
        self.m()[0] = 0x45;
    }

    /// Set the total length field.
    pub fn set_total_len(&mut self, len: u16) {
        self.m()[2..4].copy_from_slice(&len.to_be_bytes());
    }

    /// Set the identification field.
    pub fn set_ident(&mut self, id: u16) {
        self.m()[4..6].copy_from_slice(&id.to_be_bytes());
    }

    /// Set the TTL field (does not touch the checksum).
    pub fn set_ttl(&mut self, ttl: u8) {
        self.m()[8] = ttl;
    }

    /// Set the protocol field.
    pub fn set_protocol(&mut self, proto: u8) {
        self.m()[9] = proto;
    }

    /// Set the source address.
    pub fn set_src(&mut self, a: Ipv4Addr) {
        self.m()[12..16].copy_from_slice(&a.octets());
    }

    /// Set the destination address.
    pub fn set_dst(&mut self, a: Ipv4Addr) {
        self.m()[16..20].copy_from_slice(&a.octets());
    }

    /// Zero the checksum field and install a freshly computed one.
    pub fn fill_checksum(&mut self) {
        let hl = self.header_len();
        self.m()[10..12].copy_from_slice(&[0, 0]);
        let c = checksum::checksum(&self.b()[..hl]);
        self.m()[10..12].copy_from_slice(&c.to_be_bytes());
    }

    /// Forwarding fast path: decrement TTL and incrementally update
    /// the checksum (RFC 1624), as the pre-shading step does (§6.2.1).
    /// Returns the new TTL.
    pub fn decrement_ttl(&mut self) -> u8 {
        let old_word = u16::from_be_bytes([self.b()[8], self.b()[9]]);
        let ttl = self.b()[8].saturating_sub(1);
        self.m()[8] = ttl;
        let new_word = u16::from_be_bytes([self.b()[8], self.b()[9]]);
        let c = checksum::update16(self.header_checksum(), old_word, new_word);
        self.m()[10..12].copy_from_slice(&c.to_be_bytes());
        ttl
    }

    /// Mutable payload (header-length..total-length window).
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let hl = self.header_len();
        let tl = (self.total_len() as usize).max(hl).min(self.b().len());
        &mut self.m()[hl..tl]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet_bytes(payload_len: usize) -> Vec<u8> {
        let mut v = vec![0u8; HEADER_LEN + payload_len];
        let mut p = Ipv4Packet::new_unchecked(&mut v[..]);
        p.set_version_ihl();
        p.set_total_len((HEADER_LEN + payload_len) as u16);
        p.set_ttl(64);
        p.set_protocol(protocol::UDP);
        p.set_src(Ipv4Addr::new(10, 0, 0, 1));
        p.set_dst(Ipv4Addr::new(192, 168, 1, 99));
        p.fill_checksum();
        v
    }

    #[test]
    fn parse_round_trip() {
        let v = packet_bytes(20);
        let p = Ipv4Packet::new_checked(&v[..]).unwrap();
        assert_eq!(p.version(), 4);
        assert_eq!(p.header_len(), 20);
        assert_eq!(p.total_len(), 40);
        assert_eq!(p.ttl(), 64);
        assert_eq!(p.protocol(), protocol::UDP);
        assert_eq!(p.src(), Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(p.dst(), Ipv4Addr::new(192, 168, 1, 99));
        assert!(p.verify_checksum());
        assert_eq!(p.payload().len(), 20);
    }

    #[test]
    fn bad_version_rejected() {
        let mut v = packet_bytes(0);
        v[0] = 0x65; // version 6
        assert_eq!(
            Ipv4Packet::new_checked(&v[..]).unwrap_err(),
            Error::Malformed
        );
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            Ipv4Packet::new_checked(&[0x45u8; 10][..]).unwrap_err(),
            Error::Truncated
        );
    }

    #[test]
    fn total_len_overrun_rejected() {
        let mut v = packet_bytes(0);
        v[2..4].copy_from_slice(&100u16.to_be_bytes());
        assert_eq!(
            Ipv4Packet::new_checked(&v[..]).unwrap_err(),
            Error::BadLength
        );
    }

    #[test]
    fn total_len_below_header_rejected() {
        let mut v = packet_bytes(8);
        v[2..4].copy_from_slice(&10u16.to_be_bytes());
        assert_eq!(
            Ipv4Packet::new_checked(&v[..]).unwrap_err(),
            Error::BadLength
        );
    }

    #[test]
    fn ttl_decrement_keeps_checksum_valid() {
        let mut v = packet_bytes(8);
        let mut p = Ipv4Packet::new_unchecked(&mut v[..]);
        assert!(p.verify_checksum());
        let ttl = p.decrement_ttl();
        assert_eq!(ttl, 63);
        assert!(p.verify_checksum(), "RFC1624 incremental update must hold");
    }

    #[test]
    fn ttl_decrement_saturates_at_zero() {
        let mut v = packet_bytes(8);
        {
            let mut p = Ipv4Packet::new_unchecked(&mut v[..]);
            p.set_ttl(0);
            p.fill_checksum();
            assert_eq!(p.decrement_ttl(), 0);
            assert!(p.verify_checksum());
        }
    }

    #[test]
    fn checksum_detects_bit_flip() {
        let mut v = packet_bytes(8);
        v[16] ^= 0x01;
        let p = Ipv4Packet::new_unchecked(&v[..]);
        assert!(!p.verify_checksum());
    }

    #[test]
    fn payload_bounded_by_total_len() {
        // Frame padded beyond the IP total length (common with 60B
        // minimum Ethernet frames): payload must stop at total_len.
        let mut v = packet_bytes(6);
        v.extend_from_slice(&[0xEE; 20]); // Ethernet padding
        let p = Ipv4Packet::new_checked(&v[..]).unwrap();
        assert_eq!(p.payload().len(), 6);
    }
}
