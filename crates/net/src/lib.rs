//! # ps-net — packet wire formats
//!
//! Typed, bounds-checked views over raw frame bytes in the smoltcp
//! idiom: a `Frame`/`Packet` wrapper owns (or borrows) a byte slice
//! and exposes getters/setters for each header field, with explicit
//! `check_len`-style validation and no hidden allocation.
//!
//! Everything the four PacketShader applications touch is here:
//! Ethernet II, IPv4, IPv6, UDP, TCP, and ESP (IPsec tunnel mode), the
//! Internet checksum, the OpenFlow 10-field flow key, and the
//! slow-path classification rules of §6.2.1 (TTL expired, bad
//! checksum, malformed, destined-to-local).

pub mod builder;
pub mod checksum;
pub mod esp;
pub mod ethernet;
pub mod flow;
pub mod ipv4;
pub mod ipv6;
pub mod pcap;
pub mod tcp;
pub mod udp;
pub mod verdict;

pub use builder::PacketBuilder;
pub use ethernet::{EtherType, EthernetFrame, MacAddr};
pub use flow::FlowKey;
pub use ipv4::Ipv4Packet;
pub use ipv6::Ipv6Packet;
pub use tcp::TcpSegment;
pub use udp::UdpDatagram;
pub use verdict::{classify, Verdict};

/// Errors from parsing a wire format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// The buffer is shorter than the fixed header.
    Truncated,
    /// A length field disagrees with the buffer (e.g. IPv4 total
    /// length larger than the frame payload).
    BadLength,
    /// A version/field value is not what the parser expects.
    Malformed,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Truncated => write!(f, "buffer truncated"),
            Error::BadLength => write!(f, "length field inconsistent"),
            Error::Malformed => write!(f, "malformed header"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias for wire-format parsing.
pub type Result<T> = std::result::Result<T, Error>;

/// Minimum Ethernet frame size (without FCS) the simulation uses.
pub const MIN_FRAME_LEN: usize = 60;
/// Maximum standard Ethernet frame size (without FCS): 1514 B, the
/// paper's largest evaluated packet size.
pub const MAX_FRAME_LEN: usize = 1514;
/// Wire overhead per frame in the paper's throughput metric (§1,
/// footnote 1): 4 B FCS + 8 B preamble + 12 B inter-frame gap.
pub const WIRE_OVERHEAD: usize = 24;

/// Bytes a frame of `len` occupies on the wire, for rate computations.
/// `len` is an FCS-less frame length (the workspace convention, see
/// [`MIN_FRAME_LEN`]), so adding [`WIRE_OVERHEAD`] — which includes
/// the FCS — yields the true on-wire footprint: a minimum 60 B frame
/// occupies 84 B of wire time.
#[inline]
pub fn wire_len(len: usize) -> usize {
    len + WIRE_OVERHEAD
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_len_adds_paper_overhead() {
        assert_eq!(wire_len(64), 88);
        assert_eq!(wire_len(1514), 1538);
        // The FCS-exclusion convention: a minimum FCS-less frame
        // (60 B) serializes as the standard 64 B minimum on-wire
        // frame plus 8 B preamble + 12 B inter-frame gap.
        assert_eq!(wire_len(MIN_FRAME_LEN), 64 + 8 + 12);
    }

    #[test]
    fn error_display() {
        assert_eq!(Error::Truncated.to_string(), "buffer truncated");
        assert_eq!(Error::BadLength.to_string(), "length field inconsistent");
        assert_eq!(Error::Malformed.to_string(), "malformed header");
    }
}
