//! IPv6 headers (RFC 8200). Extension headers beyond what the fast
//! path needs are deliberately not parsed — packets carrying them are
//! classified to the slow path, mirroring the paper's design.

use std::net::Ipv6Addr;

use crate::{Error, Result};

/// IPv6 fixed header length.
pub const HEADER_LEN: usize = 40;

/// Typed view over an IPv6 packet.
#[derive(Debug, Clone)]
pub struct Ipv6Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv6Packet<T> {
    /// Wrap a buffer, validating version and payload length.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let len = buffer.as_ref().len();
        if len < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let p = Ipv6Packet { buffer };
        if p.version() != 6 {
            return Err(Error::Malformed);
        }
        if HEADER_LEN + p.payload_len() as usize > len {
            return Err(Error::BadLength);
        }
        Ok(p)
    }

    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        Ipv6Packet { buffer }
    }

    /// Release the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    fn b(&self) -> &[u8] {
        self.buffer.as_ref()
    }

    /// Version field (must be 6).
    pub fn version(&self) -> u8 {
        self.b()[0] >> 4
    }

    /// Traffic class.
    pub fn traffic_class(&self) -> u8 {
        (self.b()[0] << 4) | (self.b()[1] >> 4)
    }

    /// Flow label (20 bits).
    pub fn flow_label(&self) -> u32 {
        let b = self.b();
        (u32::from(b[1] & 0x0F) << 16) | (u32::from(b[2]) << 8) | u32::from(b[3])
    }

    /// Payload length field.
    pub fn payload_len(&self) -> u16 {
        u16::from_be_bytes([self.b()[4], self.b()[5]])
    }

    /// Next-header field.
    pub fn next_header(&self) -> u8 {
        self.b()[6]
    }

    /// Hop limit.
    pub fn hop_limit(&self) -> u8 {
        self.b()[7]
    }

    /// Source address.
    pub fn src(&self) -> Ipv6Addr {
        let b: [u8; 16] = self.b()[8..24].try_into().expect("checked length");
        Ipv6Addr::from(b)
    }

    /// Destination address.
    pub fn dst(&self) -> Ipv6Addr {
        let b: [u8; 16] = self.b()[24..40].try_into().expect("checked length");
        Ipv6Addr::from(b)
    }

    /// Payload after the fixed header, bounded by the length field.
    pub fn payload(&self) -> &[u8] {
        let end = (HEADER_LEN + self.payload_len() as usize).min(self.b().len());
        &self.b()[HEADER_LEN..end]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv6Packet<T> {
    fn m(&mut self) -> &mut [u8] {
        self.buffer.as_mut()
    }

    /// Set version=6, zero traffic class and flow label.
    pub fn set_version(&mut self) {
        self.m()[0] = 0x60;
        self.m()[1] = 0;
        self.m()[2] = 0;
        self.m()[3] = 0;
    }

    /// Set the payload length field.
    pub fn set_payload_len(&mut self, len: u16) {
        self.m()[4..6].copy_from_slice(&len.to_be_bytes());
    }

    /// Set the next-header field.
    pub fn set_next_header(&mut self, nh: u8) {
        self.m()[6] = nh;
    }

    /// Set the hop limit.
    pub fn set_hop_limit(&mut self, hl: u8) {
        self.m()[7] = hl;
    }

    /// Set the source address.
    pub fn set_src(&mut self, a: Ipv6Addr) {
        self.m()[8..24].copy_from_slice(&a.octets());
    }

    /// Set the destination address.
    pub fn set_dst(&mut self, a: Ipv6Addr) {
        self.m()[24..40].copy_from_slice(&a.octets());
    }

    /// Forwarding fast path: decrement the hop limit (IPv6 has no
    /// header checksum). Returns the new value.
    pub fn decrement_hop_limit(&mut self) -> u8 {
        let hl = self.b()[7].saturating_sub(1);
        self.m()[7] = hl;
        hl
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet_bytes(payload_len: usize) -> Vec<u8> {
        let mut v = vec![0u8; HEADER_LEN + payload_len];
        let mut p = Ipv6Packet::new_unchecked(&mut v[..]);
        p.set_version();
        p.set_payload_len(payload_len as u16);
        p.set_next_header(17);
        p.set_hop_limit(64);
        p.set_src("2001:db8::1".parse().unwrap());
        p.set_dst("2001:db8:ffff::2".parse().unwrap());
        v
    }

    #[test]
    fn parse_round_trip() {
        let v = packet_bytes(24);
        let p = Ipv6Packet::new_checked(&v[..]).unwrap();
        assert_eq!(p.version(), 6);
        assert_eq!(p.payload_len(), 24);
        assert_eq!(p.next_header(), 17);
        assert_eq!(p.hop_limit(), 64);
        assert_eq!(p.src(), "2001:db8::1".parse::<Ipv6Addr>().unwrap());
        assert_eq!(p.dst(), "2001:db8:ffff::2".parse::<Ipv6Addr>().unwrap());
        assert_eq!(p.payload().len(), 24);
    }

    #[test]
    fn bad_version_rejected() {
        let mut v = packet_bytes(0);
        v[0] = 0x45;
        assert_eq!(
            Ipv6Packet::new_checked(&v[..]).unwrap_err(),
            Error::Malformed
        );
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            Ipv6Packet::new_checked(&[0x60u8; 39][..]).unwrap_err(),
            Error::Truncated
        );
    }

    #[test]
    fn payload_len_overrun_rejected() {
        let mut v = packet_bytes(4);
        v[4..6].copy_from_slice(&100u16.to_be_bytes());
        assert_eq!(
            Ipv6Packet::new_checked(&v[..]).unwrap_err(),
            Error::BadLength
        );
    }

    #[test]
    fn hop_limit_decrement() {
        let mut v = packet_bytes(0);
        let mut p = Ipv6Packet::new_unchecked(&mut v[..]);
        assert_eq!(p.decrement_hop_limit(), 63);
        p.set_hop_limit(0);
        assert_eq!(p.decrement_hop_limit(), 0);
    }

    #[test]
    fn traffic_class_and_flow_label() {
        let mut v = packet_bytes(0);
        v[0] = 0x6A; // tc upper nibble = 0xA
        v[1] = 0xB3; // tc lower = 0xB, flow label high nibble 0x3
        v[2] = 0x45;
        v[3] = 0x67;
        let p = Ipv6Packet::new_unchecked(&v[..]);
        assert_eq!(p.traffic_class(), 0xAB);
        assert_eq!(p.flow_label(), 0x34567);
    }

    #[test]
    fn payload_bounded_by_length_field() {
        let mut v = packet_bytes(6);
        v.extend_from_slice(&[0xEE; 14]); // frame padding
        let p = Ipv6Packet::new_checked(&v[..]).unwrap();
        assert_eq!(p.payload().len(), 6);
    }
}
