//! IPsec Encapsulating Security Payload (RFC 4303), tunnel mode — the
//! on-wire format the IPsec gateway application produces (§6.2.4).
//!
//! Layout of the ESP packet carried as the IPv4 payload:
//!
//! ```text
//! +-------------------+  0
//! | SPI (4)           |
//! | Sequence (4)      |
//! +-------------------+  8
//! | IV (8, CTR nonce) |
//! +-------------------+  16
//! | encrypted payload |  (inner IP packet + padding + pad_len + NH)
//! +-------------------+
//! | ICV (12, HMAC-96) |
//! +-------------------+
//! ```

use crate::{Error, Result};

/// SPI + sequence number.
pub const HEADER_LEN: usize = 8;
/// Initialization-vector length used with AES-CTR (RFC 3686 style:
/// 8-byte explicit IV per packet).
pub const IV_LEN: usize = 8;
/// Truncated HMAC-SHA1-96 integrity check value length.
pub const ICV_LEN: usize = 12;
/// ESP trailer minimum: pad-length byte + next-header byte.
pub const TRAILER_MIN: usize = 2;
/// AES block size the padding aligns to.
pub const BLOCK: usize = 16;

/// Total ESP overhead added to an inner packet of `inner_len` bytes
/// (header + IV + padding + trailer + ICV).
pub fn overhead(inner_len: usize) -> usize {
    let with_trailer = inner_len + TRAILER_MIN;
    let padded = with_trailer.div_ceil(BLOCK) * BLOCK;
    (padded - inner_len) + HEADER_LEN + IV_LEN + ICV_LEN
}

/// Typed view over an ESP packet (the IP payload).
#[derive(Debug, Clone)]
pub struct EspPacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> EspPacket<T> {
    /// Wrap a buffer, validating minimum length and ciphertext block
    /// alignment.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let len = buffer.as_ref().len();
        if len < HEADER_LEN + IV_LEN + ICV_LEN + BLOCK {
            return Err(Error::Truncated);
        }
        let p = EspPacket { buffer };
        if p.ciphertext().len() % BLOCK != 0 {
            return Err(Error::BadLength);
        }
        Ok(p)
    }

    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        EspPacket { buffer }
    }

    fn b(&self) -> &[u8] {
        self.buffer.as_ref()
    }

    /// Security Parameters Index.
    pub fn spi(&self) -> u32 {
        u32::from_be_bytes(self.b()[0..4].try_into().expect("checked length"))
    }

    /// Anti-replay sequence number.
    pub fn seq(&self) -> u32 {
        u32::from_be_bytes(self.b()[4..8].try_into().expect("checked length"))
    }

    /// The per-packet IV.
    pub fn iv(&self) -> &[u8] {
        &self.b()[HEADER_LEN..HEADER_LEN + IV_LEN]
    }

    /// Encrypted payload (inner packet + padding + trailer).
    pub fn ciphertext(&self) -> &[u8] {
        let b = self.b();
        &b[HEADER_LEN + IV_LEN..b.len() - ICV_LEN]
    }

    /// The integrity check value.
    pub fn icv(&self) -> &[u8] {
        let b = self.b();
        &b[b.len() - ICV_LEN..]
    }

    /// The region the ICV authenticates: header + IV + ciphertext.
    pub fn authenticated(&self) -> &[u8] {
        let b = self.b();
        &b[..b.len() - ICV_LEN]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> EspPacket<T> {
    fn m(&mut self) -> &mut [u8] {
        self.buffer.as_mut()
    }

    /// Set the SPI.
    pub fn set_spi(&mut self, spi: u32) {
        self.m()[0..4].copy_from_slice(&spi.to_be_bytes());
    }

    /// Set the sequence number.
    pub fn set_seq(&mut self, seq: u32) {
        self.m()[4..8].copy_from_slice(&seq.to_be_bytes());
    }

    /// Set the IV.
    pub fn set_iv(&mut self, iv: &[u8; IV_LEN]) {
        self.m()[HEADER_LEN..HEADER_LEN + IV_LEN].copy_from_slice(iv);
    }

    /// Mutable ciphertext region.
    pub fn ciphertext_mut(&mut self) -> &mut [u8] {
        let len = self.b().len();
        &mut self.m()[HEADER_LEN + IV_LEN..len - ICV_LEN]
    }

    /// Set the ICV.
    pub fn set_icv(&mut self, icv: &[u8; ICV_LEN]) {
        let len = self.b().len();
        self.m()[len - ICV_LEN..].copy_from_slice(icv);
    }
}

/// Compute the padded ciphertext length for an inner packet.
pub fn ciphertext_len(inner_len: usize) -> usize {
    (inner_len + TRAILER_MIN).div_ceil(BLOCK) * BLOCK
}

/// Total ESP packet length (IP payload) for an inner packet.
pub fn total_len(inner_len: usize) -> usize {
    HEADER_LEN + IV_LEN + ciphertext_len(inner_len) + ICV_LEN
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_consistent_with_lengths() {
        for inner in [14, 16, 60, 64, 100, 1400] {
            assert_eq!(total_len(inner), inner + overhead(inner), "inner={inner}");
            assert_eq!(ciphertext_len(inner) % BLOCK, 0);
            assert!(ciphertext_len(inner) >= inner + TRAILER_MIN);
            // Padding never exceeds one block.
            assert!(ciphertext_len(inner) < inner + TRAILER_MIN + BLOCK);
        }
    }

    #[test]
    fn field_round_trip() {
        let mut v = vec![0u8; total_len(64)];
        let mut p = EspPacket::new_unchecked(&mut v[..]);
        p.set_spi(0x1001);
        p.set_seq(42);
        p.set_iv(&[1, 2, 3, 4, 5, 6, 7, 8]);
        p.set_icv(&[9; ICV_LEN]);
        let p = EspPacket::new_checked(&v[..]).unwrap();
        assert_eq!(p.spi(), 0x1001);
        assert_eq!(p.seq(), 42);
        assert_eq!(p.iv(), &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(p.icv(), &[9; ICV_LEN]);
        assert_eq!(p.ciphertext().len(), ciphertext_len(64));
        assert_eq!(p.authenticated().len(), v.len() - ICV_LEN);
    }

    #[test]
    fn misaligned_ciphertext_rejected() {
        let v = vec![0u8; total_len(64) + 1];
        assert_eq!(
            EspPacket::new_checked(&v[..]).unwrap_err(),
            Error::BadLength
        );
    }

    #[test]
    fn too_short_rejected() {
        let v = [0u8; HEADER_LEN + IV_LEN + ICV_LEN];
        assert_eq!(
            EspPacket::new_checked(&v[..]).unwrap_err(),
            Error::Truncated
        );
    }
}
