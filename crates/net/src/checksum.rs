//! RFC 1071 Internet checksum.

/// One's-complement sum over `data`, folded to 16 bits, starting from
/// `initial` (already-folded partial sums may be chained).
pub fn sum(initial: u32, data: &[u8]) -> u32 {
    let mut acc = initial;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        acc += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        acc += u32::from(u16::from_be_bytes([*last, 0]));
    }
    acc
}

/// Fold a 32-bit accumulator into a final 16-bit checksum value
/// (one's complement of the one's-complement sum).
pub fn finish(mut acc: u32) -> u16 {
    while acc > 0xFFFF {
        acc = (acc & 0xFFFF) + (acc >> 16);
    }
    !(acc as u16)
}

/// Compute the checksum of `data` in one call.
pub fn checksum(data: &[u8]) -> u16 {
    finish(sum(0, data))
}

/// Verify a buffer whose checksum field is in place: the folded sum
/// over the whole buffer must be zero.
pub fn verify(data: &[u8]) -> bool {
    finish(sum(0, data)) == 0
}

/// Pseudo-header sum for UDP/TCP over IPv4.
pub fn pseudo_header_v4(src: [u8; 4], dst: [u8; 4], protocol: u8, len: u16) -> u32 {
    let mut acc = 0;
    acc = sum(acc, &src);
    acc = sum(acc, &dst);
    acc += u32::from(protocol);
    acc += u32::from(len);
    acc
}

/// Pseudo-header sum for UDP/TCP over IPv6.
pub fn pseudo_header_v6(src: [u8; 16], dst: [u8; 16], protocol: u8, len: u32) -> u32 {
    let mut acc = 0;
    acc = sum(acc, &src);
    acc = sum(acc, &dst);
    acc += len >> 16;
    acc += len & 0xFFFF;
    acc += u32::from(protocol);
    acc
}

/// Incrementally update a 16-bit checksum after a 16-bit field changed
/// from `old` to `new` (RFC 1624, eqn. 3). Used for the TTL-decrement
/// fast path (§6.2.1: "updates TTL and checksum fields").
pub fn update16(cksum: u16, old: u16, new: u16) -> u16 {
    // HC' = ~(~HC + ~m + m')
    let mut acc = u32::from(!cksum) + u32::from(!old) + u32::from(new);
    while acc > 0xFFFF {
        acc = (acc & 0xFFFF) + (acc >> 16);
    }
    !(acc as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Classic example from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let s = sum(0, &data);
        assert_eq!(s, 0x2ddf0);
        assert_eq!(finish(s), !0xddf2u16);
    }

    #[test]
    fn verify_detects_corruption() {
        let mut data = vec![0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00, 0x40, 0x11];
        // Install a checksum at offset 8..10 (pretend field).
        let c = checksum(&data);
        data[8] = (c >> 8) as u8;
        data[9] = c as u8;
        // Recompute: buffer with installed checksum verifies... careful:
        // we overwrote bytes used in the sum, so install properly:
        data[8] = 0;
        data[9] = 0;
        let c = checksum(&data);
        data[8] = (c >> 8) as u8;
        data[9] = c as u8;
        assert!(verify(&data));
        data[3] ^= 0xFF;
        assert!(!verify(&data));
    }

    #[test]
    fn odd_length_buffers() {
        // Pad-with-zero semantics: [a, b, c] == [a, b, c, 0].
        let odd = checksum(&[0x12, 0x34, 0x56]);
        let even = checksum(&[0x12, 0x34, 0x56, 0x00]);
        assert_eq!(odd, even);
    }

    #[test]
    fn incremental_update_matches_recompute() {
        let mut data = [
            0x45u8, 0x00, 0x00, 0x54, 0xab, 0xcd, 0x40, 0x00, 0x40, 0x01, 0, 0, 10, 0, 0, 1, 10, 0,
            0, 2,
        ];
        let c = checksum(&data);
        data[10] = (c >> 8) as u8;
        data[11] = c as u8;
        assert!(verify(&data));

        // Decrement TTL: bytes 8..10 are (ttl, proto) = one 16-bit word.
        let old = u16::from_be_bytes([data[8], data[9]]);
        data[8] -= 1;
        let new = u16::from_be_bytes([data[8], data[9]]);
        let updated = update16(u16::from_be_bytes([data[10], data[11]]), old, new);
        data[10] = (updated >> 8) as u8;
        data[11] = updated as u8;
        assert!(
            verify(&data),
            "incremental update should keep checksum valid"
        );
    }

    #[test]
    fn pseudo_header_v4_known_value() {
        // UDP over IPv4 pseudo header: 10.0.0.1 -> 10.0.0.2, proto 17, len 8.
        let acc = pseudo_header_v4([10, 0, 0, 1], [10, 0, 0, 2], 17, 8);
        // 0x0a00 + 0x0001 + 0x0a00 + 0x0002 + 17 + 8
        assert_eq!(acc, 0x0a00 + 0x0001 + 0x0a00 + 0x0002 + 17 + 8);
    }

    #[test]
    fn empty_buffer() {
        assert_eq!(checksum(&[]), 0xFFFF);
        assert!(!verify(&[0x00, 0x01]));
    }
}
