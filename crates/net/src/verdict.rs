//! Fast-path / slow-path classification (§6.2.1).
//!
//! In the pre-shading step a worker thread inspects each received
//! packet and diverts anything the GPU fast path cannot handle —
//! malformed frames, expired TTLs, bad checksums, packets destined to
//! the router itself — to the host stack (slow path) or the bit
//! bucket.

use std::net::Ipv4Addr;

use crate::ethernet::{EtherType, EthernetFrame};
use crate::ipv4::Ipv4Packet;
use crate::ipv6::Ipv6Packet;

/// Classification outcome for a received frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Eligible for GPU-accelerated forwarding.
    FastPath,
    /// Hand to the host TCP/IP stack (local delivery, options, ...).
    SlowPath(SlowPathReason),
    /// Drop immediately.
    Drop(DropReason),
}

/// Why a packet leaves the fast path but stays alive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlowPathReason {
    /// Destined to one of the router's own addresses.
    Local,
    /// Carries IP options the fast path does not parse.
    Options,
    /// Not an IP protocol we forward (ARP etc.).
    NonIp,
}

/// Why a packet is dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Could not be parsed.
    Malformed,
    /// IPv4 TTL (or IPv6 hop limit) is 0 or 1 — would expire here.
    TtlExpired,
    /// The IPv4 header checksum does not verify (the paper's NICs
    /// mark this in the descriptor; our NIC model does the same).
    BadChecksum,
}

/// Classify a frame for the IPv4/IPv6 forwarding fast path.
///
/// `local` is the router's own address set (the slow-path "destined to
/// local" test).
pub fn classify(frame: &[u8], local: &[Ipv4Addr]) -> Verdict {
    let eth = match EthernetFrame::new_checked(frame) {
        Ok(e) => e,
        Err(_) => return Verdict::Drop(DropReason::Malformed),
    };
    match eth.ethertype() {
        EtherType::Ipv4 => classify_v4(eth.payload(), local),
        EtherType::Ipv6 => classify_v6(eth.payload()),
        _ => Verdict::SlowPath(SlowPathReason::NonIp),
    }
}

fn classify_v4(payload: &[u8], local: &[Ipv4Addr]) -> Verdict {
    let ip = match Ipv4Packet::new_checked(payload) {
        Ok(p) => p,
        Err(_) => return Verdict::Drop(DropReason::Malformed),
    };
    if !ip.verify_checksum() {
        return Verdict::Drop(DropReason::BadChecksum);
    }
    if ip.ttl() <= 1 {
        return Verdict::Drop(DropReason::TtlExpired);
    }
    if ip.has_options() {
        return Verdict::SlowPath(SlowPathReason::Options);
    }
    if local.contains(&ip.dst()) {
        return Verdict::SlowPath(SlowPathReason::Local);
    }
    Verdict::FastPath
}

fn classify_v6(payload: &[u8]) -> Verdict {
    let ip = match Ipv6Packet::new_checked(payload) {
        Ok(p) => p,
        Err(_) => return Verdict::Drop(DropReason::Malformed),
    };
    if ip.hop_limit() <= 1 {
        return Verdict::Drop(DropReason::TtlExpired);
    }
    Verdict::FastPath
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PacketBuilder;
    use crate::ethernet::MacAddr;

    fn frame() -> Vec<u8> {
        PacketBuilder::udp_v4(
            MacAddr::local(1),
            MacAddr::local(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(8, 8, 8, 8),
            100,
            200,
            64,
        )
    }

    #[test]
    fn healthy_packet_takes_fast_path() {
        assert_eq!(classify(&frame(), &[]), Verdict::FastPath);
    }

    #[test]
    fn local_destination_goes_slow_path() {
        assert_eq!(
            classify(&frame(), &[Ipv4Addr::new(8, 8, 8, 8)]),
            Verdict::SlowPath(SlowPathReason::Local)
        );
    }

    #[test]
    fn expired_ttl_dropped() {
        let mut f = frame();
        {
            let mut ip = Ipv4Packet::new_unchecked(&mut f[14..]);
            ip.set_ttl(1);
            ip.fill_checksum();
        }
        assert_eq!(classify(&f, &[]), Verdict::Drop(DropReason::TtlExpired));
    }

    #[test]
    fn corrupted_checksum_dropped() {
        let mut f = frame();
        f[14 + 12] ^= 0xFF; // flip a source-address byte
        assert_eq!(classify(&f, &[]), Verdict::Drop(DropReason::BadChecksum));
    }

    #[test]
    fn truncated_frame_dropped() {
        assert_eq!(
            classify(&frame()[..20], &[]),
            Verdict::Drop(DropReason::Malformed)
        );
    }

    #[test]
    fn options_go_slow_path() {
        let mut f = frame();
        f[14] = 0x46; // IHL = 6
        {
            let mut ip = Ipv4Packet::new_unchecked(&mut f[14..]);
            ip.fill_checksum();
        }
        assert_eq!(
            classify(&f, &[]),
            Verdict::SlowPath(SlowPathReason::Options)
        );
    }

    #[test]
    fn arp_goes_slow_path() {
        let mut f = frame();
        f[12..14].copy_from_slice(&0x0806u16.to_be_bytes());
        assert_eq!(classify(&f, &[]), Verdict::SlowPath(SlowPathReason::NonIp));
    }

    #[test]
    fn ipv6_fast_path_and_hop_limit() {
        let f = PacketBuilder::udp_v6(
            MacAddr::local(1),
            MacAddr::local(2),
            "2001:db8::1".parse().unwrap(),
            "2001:db8::2".parse().unwrap(),
            1,
            2,
            80,
        );
        assert_eq!(classify(&f, &[]), Verdict::FastPath);
        let mut f2 = f.clone();
        {
            let mut ip = Ipv6Packet::new_unchecked(&mut f2[14..]);
            ip.set_hop_limit(1);
        }
        assert_eq!(classify(&f2, &[]), Verdict::Drop(DropReason::TtlExpired));
    }
}
