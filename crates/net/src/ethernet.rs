//! Ethernet II frames.

use crate::{Error, Result};

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);

    /// Locally-administered unicast address derived from a small id,
    /// in the style of smoltcp's examples (`02-00-00-00-00-xx`).
    pub fn local(id: u8) -> MacAddr {
        MacAddr([0x02, 0, 0, 0, 0, id])
    }

    /// True if the group (multicast/broadcast) bit is set.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }
}

impl std::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// EtherType values the router cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// 0x0800
    Ipv4,
    /// 0x86DD
    Ipv6,
    /// 0x0806
    Arp,
    /// Anything else, preserved verbatim.
    Other(u16),
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x86DD => EtherType::Ipv6,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(v: EtherType) -> u16 {
        match v {
            EtherType::Ipv4 => 0x0800,
            EtherType::Ipv6 => 0x86DD,
            EtherType::Arp => 0x0806,
            EtherType::Other(o) => o,
        }
    }
}

/// Ethernet II header length.
pub const HEADER_LEN: usize = 14;

/// A typed view over an Ethernet II frame.
///
/// `T` is any byte container (`&[u8]`, `&mut [u8]`, `Vec<u8>`), in the
/// smoltcp style; setters are available when `T: AsMut<[u8]>`.
#[derive(Debug, Clone)]
pub struct EthernetFrame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> EthernetFrame<T> {
    /// Wrap a buffer, validating the fixed-header length.
    pub fn new_checked(buffer: T) -> Result<Self> {
        if buffer.as_ref().len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        Ok(EthernetFrame { buffer })
    }

    /// Wrap without checking; only for buffers produced by builders.
    pub fn new_unchecked(buffer: T) -> Self {
        EthernetFrame { buffer }
    }

    /// Release the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Destination MAC.
    pub fn dst(&self) -> MacAddr {
        let b = self.buffer.as_ref();
        MacAddr(b[0..6].try_into().expect("checked length"))
    }

    /// Source MAC.
    pub fn src(&self) -> MacAddr {
        let b = self.buffer.as_ref();
        MacAddr(b[6..12].try_into().expect("checked length"))
    }

    /// EtherType field.
    pub fn ethertype(&self) -> EtherType {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[12], b[13]]).into()
    }

    /// Payload after the 14-byte header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..]
    }

    /// Whole frame length in bytes.
    pub fn total_len(&self) -> usize {
        self.buffer.as_ref().len()
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> EthernetFrame<T> {
    /// Set the destination MAC.
    pub fn set_dst(&mut self, mac: MacAddr) {
        self.buffer.as_mut()[0..6].copy_from_slice(&mac.0);
    }

    /// Set the source MAC.
    pub fn set_src(&mut self, mac: MacAddr) {
        self.buffer.as_mut()[6..12].copy_from_slice(&mac.0);
    }

    /// Set the EtherType.
    pub fn set_ethertype(&mut self, ty: EtherType) {
        let v: u16 = ty.into();
        self.buffer.as_mut()[12..14].copy_from_slice(&v.to_be_bytes());
    }

    /// Mutable payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[HEADER_LEN..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_bytes() -> Vec<u8> {
        let mut v = vec![0u8; 60];
        v[0..6].copy_from_slice(&[0xff; 6]);
        v[6..12].copy_from_slice(&[0x02, 0, 0, 0, 0, 7]);
        v[12..14].copy_from_slice(&0x0800u16.to_be_bytes());
        v
    }

    #[test]
    fn parse_fields() {
        let f = EthernetFrame::new_checked(frame_bytes()).unwrap();
        assert_eq!(f.dst(), MacAddr::BROADCAST);
        assert_eq!(f.src(), MacAddr::local(7));
        assert_eq!(f.ethertype(), EtherType::Ipv4);
        assert_eq!(f.payload().len(), 46);
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            EthernetFrame::new_checked(&[0u8; 13][..]).unwrap_err(),
            Error::Truncated
        );
    }

    #[test]
    fn setters_round_trip() {
        let mut f = EthernetFrame::new_checked(frame_bytes()).unwrap();
        f.set_dst(MacAddr::local(1));
        f.set_src(MacAddr::local(2));
        f.set_ethertype(EtherType::Ipv6);
        assert_eq!(f.dst(), MacAddr::local(1));
        assert_eq!(f.src(), MacAddr::local(2));
        assert_eq!(f.ethertype(), EtherType::Ipv6);
    }

    #[test]
    fn ethertype_round_trip() {
        for ty in [
            EtherType::Ipv4,
            EtherType::Ipv6,
            EtherType::Arp,
            EtherType::Other(0x88CC),
        ] {
            let raw: u16 = ty.into();
            assert_eq!(EtherType::from(raw), ty);
        }
    }

    #[test]
    fn multicast_bit() {
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::local(3).is_multicast());
        assert_eq!(MacAddr::local(3).to_string(), "02:00:00:00:00:03");
    }
}
