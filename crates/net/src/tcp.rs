//! TCP segment headers (RFC 9293). The router only reads the fields
//! that feed the OpenFlow flow key and RSS hash; no connection state
//! machine is needed for a forwarding plane.

use crate::{Error, Result};

/// TCP base header length (no options).
pub const HEADER_LEN: usize = 20;

/// TCP flags as a bitfield.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN flag.
    pub const FIN: u8 = 0x01;
    /// SYN flag.
    pub const SYN: u8 = 0x02;
    /// RST flag.
    pub const RST: u8 = 0x04;
    /// PSH flag.
    pub const PSH: u8 = 0x08;
    /// ACK flag.
    pub const ACK: u8 = 0x10;

    /// Is the SYN bit set?
    pub fn syn(&self) -> bool {
        self.0 & Self::SYN != 0
    }

    /// Is the ACK bit set?
    pub fn ack(&self) -> bool {
        self.0 & Self::ACK != 0
    }
}

/// Typed view over a TCP segment.
#[derive(Debug, Clone)]
pub struct TcpSegment<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> TcpSegment<T> {
    /// Wrap a buffer, validating the header and data offset.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let len = buffer.as_ref().len();
        if len < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let s = TcpSegment { buffer };
        if s.header_len() < HEADER_LEN || s.header_len() > len {
            return Err(Error::Malformed);
        }
        Ok(s)
    }

    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        TcpSegment { buffer }
    }

    fn b(&self) -> &[u8] {
        self.buffer.as_ref()
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.b()[0], self.b()[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.b()[2], self.b()[3]])
    }

    /// Sequence number.
    pub fn seq(&self) -> u32 {
        u32::from_be_bytes(self.b()[4..8].try_into().expect("checked length"))
    }

    /// Acknowledgement number.
    pub fn ack(&self) -> u32 {
        u32::from_be_bytes(self.b()[8..12].try_into().expect("checked length"))
    }

    /// Header length from the data-offset field (×4).
    pub fn header_len(&self) -> usize {
        usize::from(self.b()[12] >> 4) * 4
    }

    /// Flag bits.
    pub fn flags(&self) -> TcpFlags {
        TcpFlags(self.b()[13])
    }

    /// Receive window.
    pub fn window(&self) -> u16 {
        u16::from_be_bytes([self.b()[14], self.b()[15]])
    }

    /// Payload after the (possibly option-bearing) header.
    pub fn payload(&self) -> &[u8] {
        &self.b()[self.header_len()..]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> TcpSegment<T> {
    fn m(&mut self) -> &mut [u8] {
        self.buffer.as_mut()
    }

    /// Set the source port.
    pub fn set_src_port(&mut self, p: u16) {
        self.m()[0..2].copy_from_slice(&p.to_be_bytes());
    }

    /// Set the destination port.
    pub fn set_dst_port(&mut self, p: u16) {
        self.m()[2..4].copy_from_slice(&p.to_be_bytes());
    }

    /// Set the sequence number.
    pub fn set_seq(&mut self, s: u32) {
        self.m()[4..8].copy_from_slice(&s.to_be_bytes());
    }

    /// Set data offset to 5 (20-byte header).
    pub fn set_basic_header_len(&mut self) {
        self.m()[12] = 5 << 4;
    }

    /// Set the flag bits.
    pub fn set_flags(&mut self, f: TcpFlags) {
        self.m()[13] = f.0;
    }

    /// Set the receive window.
    pub fn set_window(&mut self, w: u16) {
        self.m()[14..16].copy_from_slice(&w.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segment() -> Vec<u8> {
        let mut v = vec![0u8; HEADER_LEN + 4];
        let mut s = TcpSegment::new_unchecked(&mut v[..]);
        s.set_src_port(443);
        s.set_dst_port(51515);
        s.set_seq(0xDEADBEEF);
        s.set_basic_header_len();
        s.set_flags(TcpFlags(TcpFlags::SYN | TcpFlags::ACK));
        s.set_window(65535);
        v
    }

    #[test]
    fn parse_round_trip() {
        let v = segment();
        let s = TcpSegment::new_checked(&v[..]).unwrap();
        assert_eq!(s.src_port(), 443);
        assert_eq!(s.dst_port(), 51515);
        assert_eq!(s.seq(), 0xDEADBEEF);
        assert_eq!(s.header_len(), 20);
        assert!(s.flags().syn());
        assert!(s.flags().ack());
        assert_eq!(s.window(), 65535);
        assert_eq!(s.payload().len(), 4);
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            TcpSegment::new_checked(&[0u8; 19][..]).unwrap_err(),
            Error::Truncated
        );
    }

    #[test]
    fn bad_data_offset_rejected() {
        let mut v = segment();
        v[12] = 3 << 4; // below minimum
        assert_eq!(
            TcpSegment::new_checked(&v[..]).unwrap_err(),
            Error::Malformed
        );
        let mut v = segment();
        v[12] = 15 << 4; // beyond buffer
        assert_eq!(
            TcpSegment::new_checked(&v[..]).unwrap_err(),
            Error::Malformed
        );
    }

    #[test]
    fn options_shift_payload() {
        let mut v = [0u8; 28];
        {
            let mut s = TcpSegment::new_unchecked(&mut v[..]);
            s.set_src_port(1);
            s.set_dst_port(2);
        }
        v[12] = 6 << 4; // 24-byte header, 4 bytes of options
        let s = TcpSegment::new_checked(&v[..]).unwrap();
        assert_eq!(s.header_len(), 24);
        assert_eq!(s.payload().len(), 4);
    }
}
