//! Seeded fuzz tests (on `ps-check`) for the wire formats: build a
//! frame from random field values, parse every field back, rebuild a
//! second frame from the parsed values, and require byte identity.
//! Any asymmetry between the setters and the accessors — an endian
//! slip, an off-by-one offset, a field aliasing another — breaks the
//! round trip.
//!
//! Replay a failure with the printed `PS_CHECK_SEED=... PS_CHECK_CASES=...`.

use std::net::{Ipv4Addr, Ipv6Addr};

use ps_check::{check, ensure, ensure_eq, Gen};
use ps_net::ethernet::{EtherType, EthernetFrame, MacAddr};
use ps_net::ipv4::Ipv4Packet;
use ps_net::ipv6::Ipv6Packet;
use ps_net::tcp::{TcpFlags, TcpSegment};
use ps_net::udp::UdpDatagram;
use ps_net::{ethernet, ipv4, ipv6, tcp, PacketBuilder, MIN_FRAME_LEN};

fn mac(g: &mut Gen) -> MacAddr {
    MacAddr(g.byte_array::<6>())
}

/// Ethernet: random addresses, ethertype and payload survive a
/// set → get → set cycle bit-exactly.
#[test]
fn ethernet_build_parse_rebuild() {
    check("ethernet_build_parse_rebuild", |g| {
        let dst = mac(g);
        let src = mac(g);
        let ty = EtherType::from(g.value::<u16>());
        let payload = g.bytes(ethernet::HEADER_LEN, 200);

        let mut first = vec![0u8; ethernet::HEADER_LEN + payload.len()];
        {
            let mut eth = EthernetFrame::new_unchecked(&mut first[..]);
            eth.set_dst(dst);
            eth.set_src(src);
            eth.set_ethertype(ty);
            eth.payload_mut().copy_from_slice(&payload);
        }

        let parsed = EthernetFrame::new_checked(&first[..]).expect("valid frame");
        ensure_eq!(parsed.dst(), dst);
        ensure_eq!(parsed.src(), src);
        ensure_eq!(parsed.ethertype(), ty);
        ensure_eq!(parsed.payload(), &payload[..]);

        let mut second = vec![0u8; first.len()];
        {
            let mut eth = EthernetFrame::new_unchecked(&mut second[..]);
            eth.set_dst(parsed.dst());
            eth.set_src(parsed.src());
            eth.set_ethertype(parsed.ethertype());
        }
        second[ethernet::HEADER_LEN..].copy_from_slice(parsed.payload());
        ensure_eq!(first, second);
        Ok(())
    });
}

/// UDP/IPv4: the builder's output parses back to exactly the inputs,
/// and rebuilding from the parsed fields reproduces every byte
/// (including both checksums).
#[test]
fn udp_v4_build_parse_rebuild() {
    check("udp_v4_build_parse_rebuild", |g| {
        let src_mac = mac(g);
        let dst_mac = mac(g);
        let src = Ipv4Addr::from(g.value::<u32>());
        let dst = Ipv4Addr::from(g.value::<u32>());
        let sport = g.value::<u16>();
        let dport = g.value::<u16>();
        let len = g.int_in(MIN_FRAME_LEN..=1514usize);

        let first = PacketBuilder::udp_v4(src_mac, dst_mac, src, dst, sport, dport, len);
        ensure_eq!(first.len(), len);

        let eth = EthernetFrame::new_checked(&first[..]).expect("ethernet");
        ensure_eq!(eth.ethertype(), EtherType::Ipv4);
        let ip = Ipv4Packet::new_checked(&first[ethernet::HEADER_LEN..]).expect("ipv4");
        ensure!(ip.verify_checksum(), "header checksum invalid");
        ensure_eq!(ip.src(), src);
        ensure_eq!(ip.dst(), dst);
        ensure_eq!(ip.total_len() as usize, len - ethernet::HEADER_LEN);
        let off = ethernet::HEADER_LEN + ipv4::HEADER_LEN;
        let udp = UdpDatagram::new_checked(&first[off..]).expect("udp");
        ensure_eq!(udp.src_port(), sport);
        ensure_eq!(udp.dst_port(), dport);
        ensure!(
            udp.verify_checksum_v4(src.octets(), dst.octets()),
            "udp checksum invalid"
        );

        let second = PacketBuilder::udp_v4(
            eth.src(),
            eth.dst(),
            ip.src(),
            ip.dst(),
            udp.src_port(),
            udp.dst_port(),
            first.len(),
        );
        ensure_eq!(first, second);
        Ok(())
    });
}

/// UDP/IPv6: same round trip through the 40-byte fixed header.
#[test]
fn udp_v6_build_parse_rebuild() {
    check("udp_v6_build_parse_rebuild", |g| {
        let src_mac = mac(g);
        let dst_mac = mac(g);
        let src = Ipv6Addr::from(g.value::<u128>());
        let dst = Ipv6Addr::from(g.value::<u128>());
        let sport = g.value::<u16>();
        let dport = g.value::<u16>();
        let len = g.int_in(62usize..=1514);

        let first = PacketBuilder::udp_v6(src_mac, dst_mac, src, dst, sport, dport, len);
        ensure_eq!(first.len(), len);

        let eth = EthernetFrame::new_checked(&first[..]).expect("ethernet");
        ensure_eq!(eth.ethertype(), EtherType::Ipv6);
        let ip = Ipv6Packet::new_checked(&first[ethernet::HEADER_LEN..]).expect("ipv6");
        ensure_eq!(ip.version(), 6);
        ensure_eq!(ip.src(), src);
        ensure_eq!(ip.dst(), dst);
        ensure_eq!(
            ip.payload_len() as usize,
            len - ethernet::HEADER_LEN - ipv6::HEADER_LEN
        );
        let off = ethernet::HEADER_LEN + ipv6::HEADER_LEN;
        let udp = UdpDatagram::new_checked(&first[off..]).expect("udp");
        ensure_eq!(udp.src_port(), sport);
        ensure_eq!(udp.dst_port(), dport);

        let second = PacketBuilder::udp_v6(
            eth.src(),
            eth.dst(),
            ip.src(),
            ip.dst(),
            udp.src_port(),
            udp.dst_port(),
            first.len(),
        );
        ensure_eq!(first, second);
        Ok(())
    });
}

/// IPv4 header fields set one at a time survive parse → re-set, and
/// the filled checksum verifies for any field combination.
#[test]
fn ipv4_header_field_round_trip() {
    check("ipv4_header_field_round_trip", |g| {
        let total = g.int_in(20u16..=1500);
        let ident = g.value::<u16>();
        let ttl = g.int_in(1u8..=255);
        let proto = g.value::<u8>();
        let src = Ipv4Addr::from(g.value::<u32>());
        let dst = Ipv4Addr::from(g.value::<u32>());

        // Buffer sized to the total length, so `new_checked`'s length
        // validation sees a self-consistent packet.
        let mut first = vec![0u8; total as usize];
        {
            let mut ip = Ipv4Packet::new_unchecked(&mut first[..]);
            ip.set_version_ihl();
            ip.set_total_len(total);
            ip.set_ident(ident);
            ip.set_ttl(ttl);
            ip.set_protocol(proto);
            ip.set_src(src);
            ip.set_dst(dst);
            ip.fill_checksum();
        }

        let ip = Ipv4Packet::new_checked(&first[..]).expect("valid header");
        ensure!(ip.verify_checksum(), "checksum invalid");
        ensure_eq!(ip.version(), 4);
        ensure_eq!(ip.total_len(), total);
        ensure_eq!(ip.ident(), ident);
        ensure_eq!(ip.ttl(), ttl);
        ensure_eq!(ip.protocol(), proto);
        ensure_eq!(ip.src(), src);
        ensure_eq!(ip.dst(), dst);

        let mut second = vec![0u8; total as usize];
        {
            let mut out = Ipv4Packet::new_unchecked(&mut second[..]);
            out.set_version_ihl();
            out.set_total_len(ip.total_len());
            out.set_ident(ip.ident());
            out.set_ttl(ip.ttl());
            out.set_protocol(ip.protocol());
            out.set_src(ip.src());
            out.set_dst(ip.dst());
            out.fill_checksum();
        }
        ensure_eq!(first, second);
        Ok(())
    });
}

/// TCP: hand-built segments (ports, seq, flags, window, payload)
/// parse back exactly and rebuild byte-identically.
#[test]
fn tcp_build_parse_rebuild() {
    check("tcp_build_parse_rebuild", |g| {
        let sport = g.value::<u16>();
        let dport = g.value::<u16>();
        let seq = g.value::<u32>();
        let flags = TcpFlags(g.value::<u8>());
        let window = g.value::<u16>();
        let payload = g.bytes(0, 200);

        let mut first = vec![0u8; tcp::HEADER_LEN + payload.len()];
        {
            let mut s = TcpSegment::new_unchecked(&mut first[..]);
            s.set_src_port(sport);
            s.set_dst_port(dport);
            s.set_seq(seq);
            s.set_basic_header_len();
            s.set_flags(flags);
            s.set_window(window);
        }
        first[tcp::HEADER_LEN..].copy_from_slice(&payload);

        let parsed = TcpSegment::new_checked(&first[..]).expect("valid segment");
        ensure_eq!(parsed.src_port(), sport);
        ensure_eq!(parsed.dst_port(), dport);
        ensure_eq!(parsed.seq(), seq);
        ensure_eq!(parsed.header_len(), tcp::HEADER_LEN);
        ensure_eq!(parsed.flags().0, flags.0);
        ensure_eq!(parsed.window(), window);
        ensure_eq!(parsed.payload(), &payload[..]);

        let mut second = vec![0u8; first.len()];
        {
            let mut s = TcpSegment::new_unchecked(&mut second[..]);
            s.set_src_port(parsed.src_port());
            s.set_dst_port(parsed.dst_port());
            s.set_seq(parsed.seq());
            s.set_basic_header_len();
            s.set_flags(parsed.flags());
            s.set_window(parsed.window());
        }
        second[tcp::HEADER_LEN..].copy_from_slice(parsed.payload());
        ensure_eq!(first, second);
        Ok(())
    });
}

/// Truncating a valid frame anywhere below the full header stack must
/// produce a clean `Err`, never a panic or a bogus parse.
#[test]
fn truncation_is_always_rejected_cleanly() {
    check("truncation_is_always_rejected_cleanly", |g| {
        let frame = PacketBuilder::udp_v4(
            MacAddr::local(1),
            MacAddr::local(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1234,
            5678,
            g.int_in(60usize..=1514),
        );
        let cut = g.int_in(0usize..ethernet::HEADER_LEN + ipv4::HEADER_LEN);
        let short = &frame[..cut];
        if cut < ethernet::HEADER_LEN {
            ensure!(
                EthernetFrame::new_checked(short).is_err(),
                "ethernet accepted {cut} bytes"
            );
        } else {
            ensure!(
                Ipv4Packet::new_checked(&short[ethernet::HEADER_LEN..]).is_err(),
                "ipv4 accepted {} bytes",
                cut - ethernet::HEADER_LEN
            );
        }
        Ok(())
    });
}
