//! Golden known-answer tests for the crypto substrate, straight from
//! the published specifications:
//!
//! - AES-128 key expansion and block encryption: FIPS-197 Appendix
//!   A.1, Appendix B, Appendix C.1.
//! - AES-128 ECB and CTR: NIST SP 800-38A F.1.1 / F.5.1.
//! - AES-CTR with RFC 3686 framing (the ESP framing `CtrStream`
//!   implements): RFC 3686 §6 test vectors.
//! - SHA-1: FIPS 180-1 Appendix A/B + the million-'a' vector.
//! - HMAC-SHA1: RFC 2202 §3 test cases 1–7, including the
//!   96-bit truncation of case 5.
//!
//! These pin the exact bit-level behaviour the IPsec data plane and
//! the recorded determinism fingerprints depend on.

use ps_crypto::aes::{ctr_counter_block, Aes128, CtrStream};
use ps_crypto::hmac::HmacSha1;
use ps_crypto::sha1::Sha1;

fn hex(s: &str) -> Vec<u8> {
    let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
    assert!(s.len().is_multiple_of(2), "odd hex literal");
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
        .collect()
}

fn hex16(s: &str) -> [u8; 16] {
    hex(s).try_into().unwrap()
}

fn hex20(s: &str) -> [u8; 20] {
    hex(s).try_into().unwrap()
}

// --- FIPS-197 -------------------------------------------------------

/// Appendix A.1: the full expansion walkthrough for the key
/// 2b7e1516 28aed2a6 abf71588 09cf4f3c. One row per round key.
#[test]
fn fips197_a1_key_expansion() {
    let aes = Aes128::new(&hex16("2b7e151628aed2a6abf7158809cf4f3c"));
    let expected = [
        "2b7e151628aed2a6abf7158809cf4f3c",
        "a0fafe1788542cb123a339392a6c7605",
        "f2c295f27a96b9435935807a7359f67f",
        "3d80477d4716fe3e1e237e446d7a883b",
        "ef44a541a8525b7fb671253bdb0bad00",
        "d4d1c6f87c839d87caf2b8bc11f915bc",
        "6d88a37a110b3efddbf98641ca0093fd",
        "4e54f70e5f5fc9f384a64fb24ea6dc4f",
        "ead27321b58dbad2312bf5607f8d292f",
        "ac7766f319fadc2128d12941575c006e",
        "d014f9a8c9ee2589e13f0cc8b6630ca6",
    ];
    for (round, want) in expected.iter().enumerate() {
        assert_eq!(
            aes.round_keys()[round],
            hex16(want),
            "round key {round} mismatch"
        );
    }
}

/// Appendix B: the worked cipher example.
#[test]
fn fips197_b_cipher_example() {
    let aes = Aes128::new(&hex16("2b7e151628aed2a6abf7158809cf4f3c"));
    assert_eq!(
        aes.encrypt(&hex16("3243f6a8885a308d313198a2e0370734")),
        hex16("3925841d02dc09fbdc118597196a0b32")
    );
}

/// Appendix C.1: the AES-128 example vector.
#[test]
fn fips197_c1_example_vector() {
    let aes = Aes128::new(&hex16("000102030405060708090a0b0c0d0e0f"));
    assert_eq!(
        aes.encrypt(&hex16("00112233445566778899aabbccddeeff")),
        hex16("69c4e0d86a7b0430d8cdb78070b4c55a")
    );
}

// --- NIST SP 800-38A ------------------------------------------------

const SP800_38A_KEY: &str = "2b7e151628aed2a6abf7158809cf4f3c";
const SP800_38A_PLAIN: [&str; 4] = [
    "6bc1bee22e409f96e93d7e117393172a",
    "ae2d8a571e03ac9c9eb76fac45af8e51",
    "30c81c46a35ce411e5fbc1191a0a52ef",
    "f69f2445df4f9b17ad2b417be66c3710",
];

/// F.1.1 ECB-AES128.Encrypt: four blocks through the raw cipher.
#[test]
fn sp800_38a_ecb_aes128_encrypt() {
    let aes = Aes128::new(&hex16(SP800_38A_KEY));
    let expected = [
        "3ad77bb40d7a3660a89ecaf32466ef97",
        "f5d3d58503b9699de785895a96fdbaaf",
        "43b1cd7f598ece23881b00e3ed030688",
        "7b0c785e27e8ad3f8223207104725dd4",
    ];
    for (plain, want) in SP800_38A_PLAIN.iter().zip(expected.iter()) {
        assert_eq!(aes.encrypt(&hex16(plain)), hex16(want));
    }
}

/// F.5.1 CTR-AES128.Encrypt: the counter blocks are the raw 128-bit
/// big-endian counter f0f1..feff, f0f1..ff00, ... — a different
/// framing than RFC 3686, so drive the block cipher directly and XOR.
#[test]
fn sp800_38a_ctr_aes128_encrypt() {
    let aes = Aes128::new(&hex16(SP800_38A_KEY));
    let expected = [
        "874d6191b620e3261bef6864990db6ce",
        "9806f66b7970fdff8617187bb9fffdff",
        "5ae4df3edbd5d35e5b4f09020db03eab",
        "1e031dda2fbe03d1792170a0f3009cee",
    ];
    let mut counter = u128::from_be_bytes(hex16("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff"));
    for (plain, want) in SP800_38A_PLAIN.iter().zip(expected.iter()) {
        let keystream = aes.encrypt(&counter.to_be_bytes());
        let mut block = hex16(plain);
        for (b, k) in block.iter_mut().zip(keystream.iter()) {
            *b ^= k;
        }
        assert_eq!(block, hex16(want));
        counter = counter.wrapping_add(1);
    }
}

// --- RFC 3686 -------------------------------------------------------

/// §6 Test Vector #1: one full block, through `CtrStream` (the
/// nonce||iv||counter framing with the counter starting at 1).
#[test]
fn rfc3686_test_vector_1() {
    let stream = CtrStream::new(&hex16("ae6852f8121067cc4bf7a5765577f39e"), 0x0000_0030);
    let iv = [0u8; 8];
    let mut data = *b"Single block msg";
    stream.apply(&iv, &mut data);
    assert_eq!(data.to_vec(), hex("e4095d4fb7a7b3792d6175a3261311b8"));
    // Counter block #1 is nonce || iv || 00000001.
    assert_eq!(
        ctr_counter_block(0x0000_0030, &iv, 1),
        hex16("00000030000000000000000000000001")
    );
    // CTR decryption is the same operation.
    stream.apply(&iv, &mut data);
    assert_eq!(&data, b"Single block msg");
}

/// §6 Test Vector #2: two full blocks.
#[test]
fn rfc3686_test_vector_2() {
    let stream = CtrStream::new(&hex16("7e24067817fae0d743d6ce1f32539163"), 0x006c_b6db);
    let iv: [u8; 8] = hex("c0543b59da48d90b").try_into().unwrap();
    let mut data = hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
    stream.apply(&iv, &mut data);
    assert_eq!(
        data,
        hex("5104a106168a72d9790d41ee8edad388eb2e1efc46da57c8fce630df9141be28")
    );
}

/// §6 Test Vector #3: 36 bytes — exercises the partial final block.
#[test]
fn rfc3686_test_vector_3() {
    let stream = CtrStream::new(&hex16("7691be035e5020a8ac6e618529f9a0dc"), 0x00e0_017b);
    let iv: [u8; 8] = hex("27777f3f4a1786f0").try_into().unwrap();
    let mut data = hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f20212223");
    stream.apply(&iv, &mut data);
    assert_eq!(
        data,
        hex("c1cf48a89f2ffdd9cf4652e9efdb72d74540a42bde6d7836d59a5ceaaef3105325b2072f")
    );
}

// --- T-table fast path vs byte-oriented oracle ----------------------

/// Every published AES vector above, replayed through the in-tree
/// byte-oriented oracle: the T-table fast path and the reference
/// implementation must both reproduce the specifications exactly.
#[test]
fn ttable_and_oracle_agree_on_published_vectors() {
    use ps_crypto::aes::oracle;
    let cases: [(&str, &str, &str); 4] = [
        (
            "2b7e151628aed2a6abf7158809cf4f3c",
            "3243f6a8885a308d313198a2e0370734",
            "3925841d02dc09fbdc118597196a0b32",
        ),
        (
            "000102030405060708090a0b0c0d0e0f",
            "00112233445566778899aabbccddeeff",
            "69c4e0d86a7b0430d8cdb78070b4c55a",
        ),
        (
            SP800_38A_KEY,
            SP800_38A_PLAIN[0],
            "3ad77bb40d7a3660a89ecaf32466ef97",
        ),
        (
            SP800_38A_KEY,
            SP800_38A_PLAIN[3],
            "7b0c785e27e8ad3f8223207104725dd4",
        ),
    ];
    for (key, plain, want) in cases {
        let aes = Aes128::new(&hex16(key));
        assert_eq!(aes.encrypt(&hex16(plain)), hex16(want), "fast path");
        assert_eq!(oracle::encrypt(&aes, &hex16(plain)), hex16(want), "oracle");
    }
}

/// The RFC 3686 vectors through the batched multi-block keystream
/// and the scalar oracle: identical ciphertext from both.
#[test]
fn batched_ctr_matches_oracle_on_rfc3686_vectors() {
    use ps_crypto::aes::{ctr_xor, oracle};
    let cases: [(&str, u32, &str, &str, &str); 2] = [
        (
            "7e24067817fae0d743d6ce1f32539163",
            0x006c_b6db,
            "c0543b59da48d90b",
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
            "5104a106168a72d9790d41ee8edad388eb2e1efc46da57c8fce630df9141be28",
        ),
        (
            "7691be035e5020a8ac6e618529f9a0dc",
            0x00e0_017b,
            "27777f3f4a1786f0",
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f20212223",
            "c1cf48a89f2ffdd9cf4652e9efdb72d74540a42bde6d7836d59a5ceaaef3105325b2072f",
        ),
    ];
    for (key, nonce, iv, plain, want) in cases {
        let aes = Aes128::new(&hex16(key));
        let iv: [u8; 8] = hex(iv).try_into().unwrap();
        let mut fast = hex(plain);
        ctr_xor(&aes, nonce, &iv, 0, &mut fast);
        assert_eq!(fast, hex(want), "batched fast path");
        let mut slow = hex(plain);
        oracle::ctr_xor(&aes, nonce, &iv, 0, &mut slow);
        assert_eq!(slow, hex(want), "scalar oracle");
    }
}

// --- FIPS 180-1 -----------------------------------------------------

#[test]
fn fips180_1_sha1_abc() {
    assert_eq!(
        Sha1::digest(b"abc"),
        hex20("a9993e364706816aba3e25717850c26c9cd0d89d")
    );
}

#[test]
fn fips180_1_sha1_two_block_message() {
    assert_eq!(
        Sha1::digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
        hex20("84983e441c3bd26ebaae4aa1f95129e5e54670f1")
    );
}

#[test]
fn fips180_1_sha1_million_a() {
    let mut s = Sha1::new();
    // Feed in odd-sized chunks so the buffering path is exercised too.
    let chunk = [b'a'; 997];
    let mut fed = 0usize;
    while fed < 1_000_000 {
        let n = chunk.len().min(1_000_000 - fed);
        s.update(&chunk[..n]);
        fed += n;
    }
    assert_eq!(
        s.finalize(),
        hex20("34aa973cd4c4daa4f61eeb2bdbad27316534016f")
    );
}

#[test]
fn sha1_empty_message() {
    assert_eq!(
        Sha1::digest(b""),
        hex20("da39a3ee5e6b4b0d3255bfef95601890afd80709")
    );
}

// --- RFC 2202 -------------------------------------------------------

/// §3 test cases 1–7 for HMAC-SHA1: (key, data, digest).
#[test]
fn rfc2202_hmac_sha1_cases_1_to_7() {
    let cases: [(Vec<u8>, Vec<u8>, &str); 7] = [
        (
            vec![0x0b; 20],
            b"Hi There".to_vec(),
            "b617318655057264e28bc0b6fb378c8ef146be00",
        ),
        (
            b"Jefe".to_vec(),
            b"what do ya want for nothing?".to_vec(),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79",
        ),
        (
            vec![0xaa; 20],
            vec![0xdd; 50],
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3",
        ),
        (
            hex("0102030405060708090a0b0c0d0e0f10111213141516171819"),
            vec![0xcd; 50],
            "4c9007f4026250c6bc8414f9bf50c86c2d7235da",
        ),
        (
            vec![0x0c; 20],
            b"Test With Truncation".to_vec(),
            "4c1a03424b55e07fe7f27be1d58bb9324a9a5a04",
        ),
        (
            vec![0xaa; 80],
            b"Test Using Larger Than Block-Size Key - Hash Key First".to_vec(),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112",
        ),
        (
            vec![0xaa; 80],
            b"Test Using Larger Than Block-Size Key and Larger Than One Block-Size Data".to_vec(),
            "e8e99d0f45237d786d6bbaa7965c7808bbff1a91",
        ),
    ];
    for (i, (key, data, want)) in cases.iter().enumerate() {
        let h = HmacSha1::new(key);
        assert_eq!(h.mac(data), hex20(want), "RFC 2202 case {}", i + 1);
        assert!(h.verify96(data, &hex(want)[..12]), "case {} mac96", i + 1);
    }
}

/// Case 5's published 96-bit truncation (the width ESP carries).
#[test]
fn rfc2202_case5_mac96_truncation() {
    let h = HmacSha1::new(&[0x0c; 20]);
    assert_eq!(
        h.mac96(b"Test With Truncation").to_vec(),
        hex("4c1a03424b55e07fe7f27be1")
    );
}
