//! # ps-crypto — the IPsec substrate (§6.2.4)
//!
//! From-scratch implementations of exactly the primitives the paper's
//! IPsec gateway uses: **AES-128 in CTR mode** (RFC 3686 framing) for
//! the ESP cipher and **HMAC-SHA1-96** for the authenticator, plus the
//! ESP tunnel-mode encapsulate/decapsulate transforms.
//!
//! Everything is validated against published vectors (FIPS-197,
//! SP 800-38A, RFC 3686, FIPS 180-1, RFC 2202) in unit tests and in
//! the golden KAT suite (`tests/kat.rs`), and round-trip properties
//! are checked with the in-tree `ps-check` harness.
//!
//! The block-level structure mirrors how the paper parallelizes the
//! GPU kernels: AES-CTR keystream blocks are independent ("we chop
//! packets into AES blocks (16B) and map each block to one GPU
//! thread") while SHA-1 blocks chain ("SHA1 cannot be parallelized at
//! the block level"; it parallelizes per packet). [`aes::ctr_block`]
//! exposes the per-block operation the GPU kernel uses directly.

pub mod aes;
pub mod esp;
pub mod hmac;
pub mod sha1;

pub use aes::{Aes128, CtrStream};
pub use esp::{decrypt_tunnel, encrypt_tunnel, EspError, SecurityAssociation};
pub use hmac::HmacSha1;
pub use sha1::Sha1;
