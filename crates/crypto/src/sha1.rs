//! SHA-1 (FIPS 180-1). Used only as the HMAC core for ESP
//! authentication, matching the paper's cipher suite; SHA-1 is of
//! course obsolete for new designs.

/// SHA-1 block size in bytes.
pub const BLOCK: usize = 64;
/// SHA-1 digest size in bytes.
pub const DIGEST: usize = 20;

/// Incremental SHA-1.
#[derive(Clone)]
pub struct Sha1 {
    h: [u32; 5],
    buf: [u8; BLOCK],
    buf_len: usize,
    total: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// A fresh hash state.
    pub fn new() -> Sha1 {
        Sha1 {
            h: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            buf: [0; BLOCK],
            buf_len: 0,
            total: 0,
        }
    }

    /// Absorb data.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total += data.len() as u64;
        if self.buf_len > 0 {
            let take = (BLOCK - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == BLOCK {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
            if data.is_empty() {
                return;
            }
        }
        while data.len() >= BLOCK {
            let (block, rest) = data.split_at(BLOCK);
            self.compress(block.try_into().expect("exact block"));
            data = rest;
        }
        self.buf[..data.len()].copy_from_slice(data);
        self.buf_len = data.len();
    }

    /// Finish and produce the digest.
    pub fn finalize(mut self) -> [u8; DIGEST] {
        let bit_len = self.total * 8;
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.total -= 8; // length bytes don't count; cancel update's add
        let mut block = self.buf;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block);
        let mut out = [0u8; DIGEST];
        for (i, w) in self.h.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    /// One-shot digest.
    pub fn digest(data: &[u8]) -> [u8; DIGEST] {
        let mut s = Sha1::new();
        s.update(data);
        s.finalize()
    }

    fn compress(&mut self, block: &[u8; BLOCK]) {
        let mut w = [0u32; 80];
        for i in 0..16 {
            w[i] = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().expect("in block"));
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.h;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999u32),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let t = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = t;
        }
        self.h[0] = self.h[0].wrapping_add(a);
        self.h[1] = self.h[1].wrapping_add(b);
        self.h[2] = self.h[2].wrapping_add(c);
        self.h[3] = self.h[3].wrapping_add(d);
        self.h[4] = self.h[4].wrapping_add(e);
    }
}

/// Number of 64-byte SHA-1 compressions needed for `len` bytes of
/// HMAC-SHA1 input (inner pad + data + padding, plus the outer hash).
/// This drives the GPU/CPU cost model for the authenticator.
pub fn hmac_compressions(len: usize) -> usize {
    // inner: 64B ipad block + data + >=9B padding
    let inner = 1 + (len + 9).div_ceil(BLOCK);
    // outer: 64B opad block + 20B digest + padding = 2 blocks
    inner + 2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_vectors() {
        assert_eq!(
            hex(&Sha1::digest(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            hex(&Sha1::digest(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
        assert_eq!(
            hex(&Sha1::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let mut s = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            s.update(&chunk);
        }
        assert_eq!(
            hex(&s.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0, 1, 63, 64, 65, 500, 999, 1000] {
            let mut s = Sha1::new();
            s.update(&data[..split]);
            s.update(&data[split..]);
            assert_eq!(s.finalize(), Sha1::digest(&data), "split={split}");
        }
    }

    #[test]
    fn length_boundary_padding() {
        // Lengths around the 55/56-byte padding boundary.
        for len in 50..70 {
            let data = vec![0xABu8; len];
            // Must not panic and must differ from neighbors.
            let d1 = Sha1::digest(&data);
            let d2 = Sha1::digest(&data[..len - 1]);
            assert_ne!(d1, d2);
        }
    }

    #[test]
    fn compression_count_model() {
        // 0 bytes: 1 inner block (pad fits) + ... : inner = 1 + ceil(9/64)=2, +2 outer.
        assert_eq!(hmac_compressions(0), 4);
        // 55 bytes: data+9 = 64 -> inner 2, total 4.
        assert_eq!(hmac_compressions(55), 4);
        // 56 bytes: data+9 = 65 -> inner 3, total 5.
        assert_eq!(hmac_compressions(56), 5);
        // 1500B packet: inner 1 + ceil(1509/64)=24 -> 25, +2 = 27.
        assert_eq!(hmac_compressions(1500), 27);
    }
}
