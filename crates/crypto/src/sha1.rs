//! SHA-1 (FIPS 180-1). Used only as the HMAC core for ESP
//! authentication, matching the paper's cipher suite; SHA-1 is of
//! course obsolete for new designs.
//!
//! The compression function has two forms: a SHA-NI path
//! (`sha1rnds4`/`sha1nexte`/`sha1msg1`/`sha1msg2`, runtime-detected)
//! and the portable scalar form. Both produce identical digests —
//! the FIPS vectors and the incremental/property tests pin them.

/// SHA-1 block size in bytes.
pub const BLOCK: usize = 64;
/// SHA-1 digest size in bytes.
pub const DIGEST: usize = 20;

/// Incremental SHA-1.
#[derive(Clone)]
pub struct Sha1 {
    h: [u32; 5],
    buf: [u8; BLOCK],
    buf_len: usize,
    total: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// A fresh hash state.
    pub fn new() -> Sha1 {
        Sha1 {
            h: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            buf: [0; BLOCK],
            buf_len: 0,
            total: 0,
        }
    }

    /// Absorb data.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total += data.len() as u64;
        if self.buf_len > 0 {
            let take = (BLOCK - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == BLOCK {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
            if data.is_empty() {
                return;
            }
        }
        while data.len() >= BLOCK {
            let (block, rest) = data.split_at(BLOCK);
            self.compress(block.try_into().expect("exact block"));
            data = rest;
        }
        self.buf[..data.len()].copy_from_slice(data);
        self.buf_len = data.len();
    }

    /// Finish and produce the digest. Padding is written directly
    /// into the block buffer (one or two compressions), not fed
    /// byte-at-a-time through `update` — `finalize` runs twice per
    /// HMAC, so its fixed cost is on the per-packet path.
    pub fn finalize(mut self) -> [u8; DIGEST] {
        let bit_len = self.total * 8;
        let n = self.buf_len;
        self.buf[n] = 0x80;
        if n + 1 > 56 {
            // No room for the length: close this block, then pad a
            // fresh one.
            self.buf[n + 1..].fill(0);
            let block = self.buf;
            self.compress(&block);
            self.buf = [0; BLOCK];
        } else {
            self.buf[n + 1..56].fill(0);
        }
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; DIGEST];
        for (i, w) in self.h.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    /// One-shot digest.
    pub fn digest(data: &[u8]) -> [u8; DIGEST] {
        let mut s = Sha1::new();
        s.update(data);
        s.finalize()
    }

    /// Compress one block: SHA-NI when the CPU has it, scalar
    /// otherwise.
    fn compress(&mut self, block: &[u8; BLOCK]) {
        #[cfg(target_arch = "x86_64")]
        if ni::available() {
            unsafe { ni::compress(&mut self.h, block) };
            return;
        }
        self.compress_soft(block);
    }

    /// The scalar compression function, written for wall-clock speed:
    /// the message schedule lives in a 16-word ring computed on the
    /// fly (no 80-word expansion buffer), the four phases are
    /// separate loops (no per-round predicate dispatch), and the
    /// choice/majority functions use their 3-op forms. Bit-identical
    /// to the textbook FIPS 180-1 formulation — the published vectors
    /// below pin it.
    fn compress_soft(&mut self, block: &[u8; BLOCK]) {
        let mut w = [0u32; 16];
        for (i, word) in w.iter_mut().enumerate() {
            *word = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().expect("in block"));
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.h;

        // w[i] for i >= 16, overwriting the ring slot it will occupy.
        macro_rules! mix {
            ($i:expr) => {{
                let x = (w[($i + 13) & 15] ^ w[($i + 8) & 15] ^ w[($i + 2) & 15] ^ w[$i & 15])
                    .rotate_left(1);
                w[$i & 15] = x;
                x
            }};
        }
        macro_rules! round {
            ($f:expr, $k:expr, $wi:expr) => {{
                let t = a
                    .rotate_left(5)
                    .wrapping_add($f)
                    .wrapping_add(e)
                    .wrapping_add($k)
                    .wrapping_add($wi);
                e = d;
                d = c;
                c = b.rotate_left(30);
                b = a;
                a = t;
            }};
        }

        for &wi in w.iter().take(16) {
            round!(d ^ (b & (c ^ d)), 0x5A827999u32, wi);
        }
        for i in 16..20 {
            round!(d ^ (b & (c ^ d)), 0x5A827999u32, mix!(i));
        }
        for i in 20..40 {
            round!(b ^ c ^ d, 0x6ED9EBA1u32, mix!(i));
        }
        for i in 40..60 {
            round!((b & c) | (d & (b | c)), 0x8F1BBCDCu32, mix!(i));
        }
        for i in 60..80 {
            round!(b ^ c ^ d, 0xCA62C1D6u32, mix!(i));
        }

        self.h[0] = self.h[0].wrapping_add(a);
        self.h[1] = self.h[1].wrapping_add(b);
        self.h[2] = self.h[2].wrapping_add(c);
        self.h[3] = self.h[3].wrapping_add(d);
        self.h[4] = self.h[4].wrapping_add(e);
    }
}

/// SHA-NI backend. The round sequence is the standard x86 SHA
/// extension schedule: four rounds per `sha1rnds4`, `sha1nexte`
/// folding the rotated `e` into the next message quad, and
/// `sha1msg1`/`sha1msg2` computing the W[16..80] expansion four words
/// at a time.
#[cfg(target_arch = "x86_64")]
mod ni {
    use core::arch::x86_64::*;
    use std::sync::atomic::{AtomicU8, Ordering};

    static STATE: AtomicU8 = AtomicU8::new(0);

    /// Does this CPU have the SHA extensions? First call probes,
    /// later calls are one relaxed load.
    #[inline]
    pub fn available() -> bool {
        match STATE.load(Ordering::Relaxed) {
            2 => true,
            1 => false,
            _ => {
                let ok = std::arch::is_x86_feature_detected!("sha")
                    && std::arch::is_x86_feature_detected!("ssse3")
                    && std::arch::is_x86_feature_detected!("sse4.1");
                STATE.store(if ok { 2 } else { 1 }, Ordering::Relaxed);
                ok
            }
        }
    }

    #[target_feature(enable = "sha,sse2,ssse3,sse4.1")]
    pub unsafe fn compress(h: &mut [u32; 5], block: &[u8; super::BLOCK]) {
        // Byte shuffle that both swaps each 32-bit word to big-endian
        // and reverses word order within the lane, matching the
        // a|b|c|d layout sha1rnds4 expects.
        let mask = _mm_set_epi64x(0x0001020304050607, 0x08090a0b0c0d0e0f);

        let mut abcd = _mm_loadu_si128(h.as_ptr() as *const __m128i);
        abcd = _mm_shuffle_epi32(abcd, 0x1B);
        let mut e0 = _mm_set_epi32(h[4] as i32, 0, 0, 0);
        let abcd_save = abcd;
        let e0_save = e0;

        let p = block.as_ptr() as *const __m128i;
        let mut msg0 = _mm_shuffle_epi8(_mm_loadu_si128(p), mask);
        let mut msg1 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(1)), mask);
        let mut msg2 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(2)), mask);
        let mut msg3 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(3)), mask);
        let mut e1;

        // Rounds 0-3
        e0 = _mm_add_epi32(e0, msg0);
        e1 = abcd;
        abcd = _mm_sha1rnds4_epu32::<0>(abcd, e0);
        // Rounds 4-7
        e1 = _mm_sha1nexte_epu32(e1, msg1);
        e0 = abcd;
        abcd = _mm_sha1rnds4_epu32::<0>(abcd, e1);
        msg0 = _mm_sha1msg1_epu32(msg0, msg1);
        // Rounds 8-11
        e0 = _mm_sha1nexte_epu32(e0, msg2);
        e1 = abcd;
        abcd = _mm_sha1rnds4_epu32::<0>(abcd, e0);
        msg1 = _mm_sha1msg1_epu32(msg1, msg2);
        msg0 = _mm_xor_si128(msg0, msg2);
        // Rounds 12-15
        e1 = _mm_sha1nexte_epu32(e1, msg3);
        e0 = abcd;
        msg0 = _mm_sha1msg2_epu32(msg0, msg3);
        abcd = _mm_sha1rnds4_epu32::<0>(abcd, e1);
        msg2 = _mm_sha1msg1_epu32(msg2, msg3);
        msg1 = _mm_xor_si128(msg1, msg3);
        // Rounds 16-19
        e0 = _mm_sha1nexte_epu32(e0, msg0);
        e1 = abcd;
        msg1 = _mm_sha1msg2_epu32(msg1, msg0);
        abcd = _mm_sha1rnds4_epu32::<0>(abcd, e0);
        msg3 = _mm_sha1msg1_epu32(msg3, msg0);
        msg2 = _mm_xor_si128(msg2, msg0);
        // Rounds 20-23
        e1 = _mm_sha1nexte_epu32(e1, msg1);
        e0 = abcd;
        msg2 = _mm_sha1msg2_epu32(msg2, msg1);
        abcd = _mm_sha1rnds4_epu32::<1>(abcd, e1);
        msg0 = _mm_sha1msg1_epu32(msg0, msg1);
        msg3 = _mm_xor_si128(msg3, msg1);
        // Rounds 24-27
        e0 = _mm_sha1nexte_epu32(e0, msg2);
        e1 = abcd;
        msg3 = _mm_sha1msg2_epu32(msg3, msg2);
        abcd = _mm_sha1rnds4_epu32::<1>(abcd, e0);
        msg1 = _mm_sha1msg1_epu32(msg1, msg2);
        msg0 = _mm_xor_si128(msg0, msg2);
        // Rounds 28-31
        e1 = _mm_sha1nexte_epu32(e1, msg3);
        e0 = abcd;
        msg0 = _mm_sha1msg2_epu32(msg0, msg3);
        abcd = _mm_sha1rnds4_epu32::<1>(abcd, e1);
        msg2 = _mm_sha1msg1_epu32(msg2, msg3);
        msg1 = _mm_xor_si128(msg1, msg3);
        // Rounds 32-35
        e0 = _mm_sha1nexte_epu32(e0, msg0);
        e1 = abcd;
        msg1 = _mm_sha1msg2_epu32(msg1, msg0);
        abcd = _mm_sha1rnds4_epu32::<1>(abcd, e0);
        msg3 = _mm_sha1msg1_epu32(msg3, msg0);
        msg2 = _mm_xor_si128(msg2, msg0);
        // Rounds 36-39
        e1 = _mm_sha1nexte_epu32(e1, msg1);
        e0 = abcd;
        msg2 = _mm_sha1msg2_epu32(msg2, msg1);
        abcd = _mm_sha1rnds4_epu32::<1>(abcd, e1);
        msg0 = _mm_sha1msg1_epu32(msg0, msg1);
        msg3 = _mm_xor_si128(msg3, msg1);
        // Rounds 40-43
        e0 = _mm_sha1nexte_epu32(e0, msg2);
        e1 = abcd;
        msg3 = _mm_sha1msg2_epu32(msg3, msg2);
        abcd = _mm_sha1rnds4_epu32::<2>(abcd, e0);
        msg1 = _mm_sha1msg1_epu32(msg1, msg2);
        msg0 = _mm_xor_si128(msg0, msg2);
        // Rounds 44-47
        e1 = _mm_sha1nexte_epu32(e1, msg3);
        e0 = abcd;
        msg0 = _mm_sha1msg2_epu32(msg0, msg3);
        abcd = _mm_sha1rnds4_epu32::<2>(abcd, e1);
        msg2 = _mm_sha1msg1_epu32(msg2, msg3);
        msg1 = _mm_xor_si128(msg1, msg3);
        // Rounds 48-51
        e0 = _mm_sha1nexte_epu32(e0, msg0);
        e1 = abcd;
        msg1 = _mm_sha1msg2_epu32(msg1, msg0);
        abcd = _mm_sha1rnds4_epu32::<2>(abcd, e0);
        msg3 = _mm_sha1msg1_epu32(msg3, msg0);
        msg2 = _mm_xor_si128(msg2, msg0);
        // Rounds 52-55
        e1 = _mm_sha1nexte_epu32(e1, msg1);
        e0 = abcd;
        msg2 = _mm_sha1msg2_epu32(msg2, msg1);
        abcd = _mm_sha1rnds4_epu32::<2>(abcd, e1);
        msg0 = _mm_sha1msg1_epu32(msg0, msg1);
        msg3 = _mm_xor_si128(msg3, msg1);
        // Rounds 56-59
        e0 = _mm_sha1nexte_epu32(e0, msg2);
        e1 = abcd;
        msg3 = _mm_sha1msg2_epu32(msg3, msg2);
        abcd = _mm_sha1rnds4_epu32::<2>(abcd, e0);
        msg1 = _mm_sha1msg1_epu32(msg1, msg2);
        msg0 = _mm_xor_si128(msg0, msg2);
        // Rounds 60-63
        e1 = _mm_sha1nexte_epu32(e1, msg3);
        e0 = abcd;
        msg0 = _mm_sha1msg2_epu32(msg0, msg3);
        abcd = _mm_sha1rnds4_epu32::<3>(abcd, e1);
        msg2 = _mm_sha1msg1_epu32(msg2, msg3);
        msg1 = _mm_xor_si128(msg1, msg3);
        // Rounds 64-67
        e0 = _mm_sha1nexte_epu32(e0, msg0);
        e1 = abcd;
        msg1 = _mm_sha1msg2_epu32(msg1, msg0);
        abcd = _mm_sha1rnds4_epu32::<3>(abcd, e0);
        msg3 = _mm_sha1msg1_epu32(msg3, msg0);
        msg2 = _mm_xor_si128(msg2, msg0);
        // Rounds 68-71
        e1 = _mm_sha1nexte_epu32(e1, msg1);
        e0 = abcd;
        msg2 = _mm_sha1msg2_epu32(msg2, msg1);
        abcd = _mm_sha1rnds4_epu32::<3>(abcd, e1);
        msg3 = _mm_xor_si128(msg3, msg1);
        // Rounds 72-75
        e0 = _mm_sha1nexte_epu32(e0, msg2);
        e1 = abcd;
        msg3 = _mm_sha1msg2_epu32(msg3, msg2);
        abcd = _mm_sha1rnds4_epu32::<3>(abcd, e0);
        // Rounds 76-79
        e1 = _mm_sha1nexte_epu32(e1, msg3);
        e0 = abcd;
        abcd = _mm_sha1rnds4_epu32::<3>(abcd, e1);

        // Fold back into the chaining state.
        e0 = _mm_sha1nexte_epu32(e0, e0_save);
        abcd = _mm_add_epi32(abcd, abcd_save);
        abcd = _mm_shuffle_epi32(abcd, 0x1B);
        _mm_storeu_si128(h.as_mut_ptr() as *mut __m128i, abcd);
        h[4] = _mm_extract_epi32::<3>(e0) as u32;
    }
}

/// Number of 64-byte SHA-1 compressions needed for `len` bytes of
/// HMAC-SHA1 input (inner pad + data + padding, plus the outer hash).
/// This drives the GPU/CPU cost model for the authenticator.
pub fn hmac_compressions(len: usize) -> usize {
    // inner: 64B ipad block + data + >=9B padding
    let inner = 1 + (len + 9).div_ceil(BLOCK);
    // outer: 64B opad block + 20B digest + padding = 2 blocks
    inner + 2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_vectors() {
        assert_eq!(
            hex(&Sha1::digest(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            hex(&Sha1::digest(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
        assert_eq!(
            hex(&Sha1::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    /// Pin the scalar compression function against a published vector
    /// directly, so it stays tested on CPUs where `compress`
    /// dispatches to SHA-NI.
    #[test]
    fn scalar_compression_matches_published_vector() {
        // "abc" padded to one block by hand: 0x80, zeros, 24-bit length.
        let mut block = [0u8; BLOCK];
        block[..3].copy_from_slice(b"abc");
        block[3] = 0x80;
        block[63] = 24;
        let mut s = Sha1::new();
        s.compress_soft(&block);
        let mut out = [0u8; DIGEST];
        for (i, w) in s.h.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        assert_eq!(hex(&out), "a9993e364706816aba3e25717850c26c9cd0d89d");
    }

    #[test]
    fn million_a() {
        let mut s = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            s.update(&chunk);
        }
        assert_eq!(
            hex(&s.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0, 1, 63, 64, 65, 500, 999, 1000] {
            let mut s = Sha1::new();
            s.update(&data[..split]);
            s.update(&data[split..]);
            assert_eq!(s.finalize(), Sha1::digest(&data), "split={split}");
        }
    }

    #[test]
    fn length_boundary_padding() {
        // Lengths around the 55/56-byte padding boundary.
        for len in 50..70 {
            let data = vec![0xABu8; len];
            // Must not panic and must differ from neighbors.
            let d1 = Sha1::digest(&data);
            let d2 = Sha1::digest(&data[..len - 1]);
            assert_ne!(d1, d2);
        }
    }

    #[test]
    fn compression_count_model() {
        // 0 bytes: 1 inner block (pad fits) + ... : inner = 1 + ceil(9/64)=2, +2 outer.
        assert_eq!(hmac_compressions(0), 4);
        // 55 bytes: data+9 = 64 -> inner 2, total 4.
        assert_eq!(hmac_compressions(55), 4);
        // 56 bytes: data+9 = 65 -> inner 3, total 5.
        assert_eq!(hmac_compressions(56), 5);
        // 1500B packet: inner 1 + ceil(1509/64)=24 -> 25, +2 = 27.
        assert_eq!(hmac_compressions(1500), 27);
    }
}
