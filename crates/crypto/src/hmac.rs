//! HMAC-SHA1 (RFC 2104) with the 96-bit truncation ESP uses
//! (HMAC-SHA1-96, RFC 2404).

use crate::sha1::{Sha1, BLOCK, DIGEST};

/// An HMAC-SHA1 keyed context (precomputed pads).
#[derive(Clone)]
pub struct HmacSha1 {
    ipad_state: Sha1,
    opad_state: Sha1,
}

impl HmacSha1 {
    /// Derive the inner/outer pad states from `key`.
    pub fn new(key: &[u8]) -> HmacSha1 {
        let mut k = [0u8; BLOCK];
        if key.len() > BLOCK {
            k[..DIGEST].copy_from_slice(&Sha1::digest(key));
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0x36u8; BLOCK];
        let mut opad = [0x5cu8; BLOCK];
        for i in 0..BLOCK {
            ipad[i] ^= k[i];
            opad[i] ^= k[i];
        }
        let mut ipad_state = Sha1::new();
        ipad_state.update(&ipad);
        let mut opad_state = Sha1::new();
        opad_state.update(&opad);
        HmacSha1 {
            ipad_state,
            opad_state,
        }
    }

    /// Begin an incremental MAC: a copy of the keyed inner-pad state,
    /// ready to absorb message chunks with [`Sha1::update`]. Lets
    /// callers that stream data (e.g. 64 B device reads) MAC without
    /// gathering the message into a contiguous buffer first.
    pub fn begin(&self) -> Sha1 {
        self.ipad_state.clone()
    }

    /// Finish an incremental MAC started with [`HmacSha1::begin`].
    pub fn finish(&self, inner: Sha1) -> [u8; DIGEST] {
        let inner_digest = inner.finalize();
        let mut outer = self.opad_state.clone();
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// Finish an incremental MAC with the 96-bit ESP truncation.
    pub fn finish96(&self, inner: Sha1) -> [u8; 12] {
        self.finish(inner)[..12].try_into().expect("12 of 20 bytes")
    }

    /// Full 20-byte MAC over `data`.
    pub fn mac(&self, data: &[u8]) -> [u8; DIGEST] {
        let mut inner = self.begin();
        inner.update(data);
        self.finish(inner)
    }

    /// Truncated 96-bit MAC (the ESP ICV).
    pub fn mac96(&self, data: &[u8]) -> [u8; 12] {
        self.mac(data)[..12].try_into().expect("12 of 20 bytes")
    }

    /// Constant-time-ish verify of a 96-bit ICV. (The simulation does
    /// not need side-channel resistance, but the habit is free.)
    pub fn verify96(&self, data: &[u8], icv: &[u8]) -> bool {
        let want = self.mac96(data);
        if icv.len() != want.len() {
            return false;
        }
        let mut diff = 0u8;
        for (a, b) in want.iter().zip(icv) {
            diff |= a ^ b;
        }
        diff == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc2202_case_1() {
        let h = HmacSha1::new(&[0x0b; 20]);
        assert_eq!(
            hex(&h.mac(b"Hi There")),
            "b617318655057264e28bc0b6fb378c8ef146be00"
        );
    }

    #[test]
    fn rfc2202_case_2() {
        let h = HmacSha1::new(b"Jefe");
        assert_eq!(
            hex(&h.mac(b"what do ya want for nothing?")),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
        );
    }

    #[test]
    fn rfc2202_case_3() {
        let h = HmacSha1::new(&[0xaa; 20]);
        assert_eq!(
            hex(&h.mac(&[0xdd; 50])),
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3"
        );
    }

    #[test]
    fn rfc2202_case_6_long_key() {
        let h = HmacSha1::new(&[0xaa; 80]);
        assert_eq!(
            hex(&h.mac(b"Test Using Larger Than Block-Size Key - Hash Key First")),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112"
        );
    }

    #[test]
    fn truncation_and_verify() {
        let h = HmacSha1::new(b"secret");
        let icv = h.mac96(b"payload");
        assert_eq!(icv.len(), 12);
        assert_eq!(icv[..], h.mac(b"payload")[..12]);
        assert!(h.verify96(b"payload", &icv));
        assert!(!h.verify96(b"payl0ad", &icv));
        let mut bad = icv;
        bad[11] ^= 1;
        assert!(!h.verify96(b"payload", &bad));
        assert!(!h.verify96(b"payload", &icv[..11]));
    }

    #[test]
    fn incremental_equals_one_shot() {
        let h = HmacSha1::new(b"stream-key");
        let data: Vec<u8> = (0..=255u8).cycle().take(777).collect();
        for chunk in [1usize, 16, 64, 100, 777] {
            let mut inner = h.begin();
            for piece in data.chunks(chunk) {
                inner.update(piece);
            }
            assert_eq!(h.finish(inner), h.mac(&data), "chunk={chunk}");
            let mut inner = h.begin();
            inner.update(&data);
            assert_eq!(h.finish96(inner), h.mac96(&data));
        }
    }

    #[test]
    fn keyed_contexts_are_reusable() {
        let h = HmacSha1::new(b"k");
        assert_eq!(h.mac(b"a"), h.mac(b"a"));
        assert_ne!(h.mac(b"a"), h.mac(b"b"));
    }
}
