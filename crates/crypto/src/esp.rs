//! ESP tunnel-mode transforms (RFC 4303): the work the IPsec gateway
//! performs per packet — encrypt-then-MAC with AES-128-CTR and
//! HMAC-SHA1-96, the paper's cipher suite (§6.2.4).

use ps_net::esp::{self, EspPacket, ICV_LEN, IV_LEN};

use crate::aes::{Aes128, CtrStream};
use crate::hmac::HmacSha1;

/// Next-header value for IPv4-in-ESP (tunnel mode).
const NEXT_HEADER_IPV4: u8 = 4;

/// Decapsulation failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EspError {
    /// Buffer does not parse as ESP.
    Malformed,
    /// The ICV does not verify: packet corrupted or forged.
    BadIcv,
    /// Decrypted trailer is inconsistent (bad padding / next header).
    BadTrailer,
    /// SPI does not match the SA.
    BadSpi,
}

impl std::fmt::Display for EspError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EspError::Malformed => write!(f, "malformed ESP packet"),
            EspError::BadIcv => write!(f, "ICV verification failed"),
            EspError::BadTrailer => write!(f, "inconsistent ESP trailer"),
            EspError::BadSpi => write!(f, "SPI mismatch"),
        }
    }
}

impl std::error::Error for EspError {}

/// One security association: keys and counters for a tunnel.
pub struct SecurityAssociation {
    /// Security Parameters Index.
    pub spi: u32,
    ctr: CtrStream,
    hmac: HmacSha1,
    /// Next outbound sequence number.
    pub seq: u32,
}

impl SecurityAssociation {
    /// Create an SA from raw key material.
    pub fn new(spi: u32, aes_key: &[u8; 16], ctr_nonce: u32, hmac_key: &[u8]) -> Self {
        SecurityAssociation {
            spi,
            ctr: CtrStream::new(aes_key, ctr_nonce),
            hmac: HmacSha1::new(hmac_key),
            seq: 1,
        }
    }

    /// The SA's block cipher, key schedule expanded once at SA
    /// creation. Offload paths that drive AES blocks themselves
    /// borrow this instead of re-expanding the key per batch.
    pub fn cipher(&self) -> &Aes128 {
        self.ctr.cipher()
    }

    /// The SA's keyed HMAC context (inner/outer pads precomputed at
    /// SA creation).
    pub fn hmac(&self) -> &HmacSha1 {
        &self.hmac
    }

    /// Deterministic per-packet IV from the sequence number (RFC 3686
    /// only requires uniqueness per SA).
    pub fn iv_for_seq(seq: u32) -> [u8; IV_LEN] {
        let mut iv = [0u8; IV_LEN];
        iv[4..8].copy_from_slice(&seq.to_be_bytes());
        iv
    }
}

/// Encapsulate `inner` (a full inner IP packet) into an ESP payload,
/// advancing the SA sequence number. Returns the ESP packet bytes —
/// the payload of the outer IP header.
pub fn encrypt_tunnel(sa: &mut SecurityAssociation, inner: &[u8]) -> Vec<u8> {
    let seq = sa.seq;
    sa.seq = sa.seq.wrapping_add(1);
    let iv = SecurityAssociation::iv_for_seq(seq);

    let ct_len = esp::ciphertext_len(inner.len());
    let total = esp::total_len(inner.len());
    let mut buf = vec![0u8; total];
    {
        let mut pkt = EspPacket::new_unchecked(&mut buf[..]);
        pkt.set_spi(sa.spi);
        pkt.set_seq(seq);
        pkt.set_iv(&iv);
        let ct = pkt.ciphertext_mut();
        ct[..inner.len()].copy_from_slice(inner);
        // RFC 4303 monotonic padding then (pad_len, next_header).
        let pad_len = ct_len - inner.len() - esp::TRAILER_MIN;
        for (i, b) in ct[inner.len()..inner.len() + pad_len]
            .iter_mut()
            .enumerate()
        {
            *b = (i + 1) as u8;
        }
        ct[ct_len - 2] = pad_len as u8;
        ct[ct_len - 1] = NEXT_HEADER_IPV4;
        sa.ctr.apply(&iv, ct);
    }
    // Encrypt-then-MAC over header + IV + ciphertext.
    let icv = {
        let pkt = EspPacket::new_unchecked(&buf[..]);
        sa.hmac.mac96(pkt.authenticated())
    };
    let mut pkt = EspPacket::new_unchecked(&mut buf[..]);
    pkt.set_icv(&icv);
    buf
}

/// Verify and decapsulate an ESP payload back to the inner IP packet.
pub fn decrypt_tunnel(sa: &SecurityAssociation, payload: &[u8]) -> Result<Vec<u8>, EspError> {
    let pkt = EspPacket::new_checked(payload).map_err(|_| EspError::Malformed)?;
    if pkt.spi() != sa.spi {
        return Err(EspError::BadSpi);
    }
    if !sa.hmac.verify96(pkt.authenticated(), pkt.icv()) {
        return Err(EspError::BadIcv);
    }
    let iv: [u8; IV_LEN] = pkt.iv().try_into().expect("fixed IV length");
    let mut ct = pkt.ciphertext().to_vec();
    sa.ctr.apply(&iv, &mut ct);

    let n = ct.len();
    let next_header = ct[n - 1];
    let pad_len = ct[n - 2] as usize;
    if next_header != NEXT_HEADER_IPV4 || pad_len + esp::TRAILER_MIN > n {
        return Err(EspError::BadTrailer);
    }
    // Validate monotonic padding.
    let inner_len = n - esp::TRAILER_MIN - pad_len;
    for (i, &b) in ct[inner_len..inner_len + pad_len].iter().enumerate() {
        if b != (i + 1) as u8 {
            return Err(EspError::BadTrailer);
        }
    }
    ct.truncate(inner_len);
    Ok(ct)
}

/// Size of the ESP packet produced for an inner packet of `len`
/// bytes; re-exported for workload sizing.
pub fn encapsulated_len(len: usize) -> usize {
    esp::total_len(len)
}

/// `ICV_LEN` re-export for cost models.
pub const fn icv_len() -> usize {
    ICV_LEN
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sa() -> SecurityAssociation {
        SecurityAssociation::new(0x1001, &[0x42; 16], 0xDEAD, b"authentication-key")
    }

    #[test]
    fn round_trip_various_sizes() {
        let mut s = sa();
        for len in [20usize, 21, 46, 64, 100, 576, 1480] {
            let inner: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let wire = encrypt_tunnel(&mut s, &inner);
            assert_eq!(wire.len(), encapsulated_len(len));
            let back = decrypt_tunnel(&s, &wire).expect("decrypts");
            assert_eq!(back, inner, "len={len}");
        }
    }

    #[test]
    fn sequence_numbers_advance() {
        let mut s = sa();
        let w1 = encrypt_tunnel(&mut s, &[0u8; 40]);
        let w2 = encrypt_tunnel(&mut s, &[0u8; 40]);
        let p1 = EspPacket::new_checked(&w1[..]).unwrap();
        let p2 = EspPacket::new_checked(&w2[..]).unwrap();
        assert_eq!(p1.seq() + 1, p2.seq());
        // Same plaintext, different seq -> different ciphertext.
        assert_ne!(p1.ciphertext(), p2.ciphertext());
    }

    #[test]
    fn tampering_detected() {
        let mut s = sa();
        let wire = encrypt_tunnel(&mut s, &[7u8; 60]);
        // A flip in the SPI field is caught by SPI lookup; anywhere
        // else the ICV catches it.
        let mut bad = wire.clone();
        bad[0] ^= 0x80;
        assert_eq!(decrypt_tunnel(&s, &bad).unwrap_err(), EspError::BadSpi);
        for idx in [5, 8, 20, wire.len() - 1] {
            let mut bad = wire.clone();
            bad[idx] ^= 0x80;
            assert_eq!(
                decrypt_tunnel(&s, &bad).unwrap_err(),
                EspError::BadIcv,
                "flip at {idx}"
            );
        }
    }

    #[test]
    fn wrong_spi_rejected() {
        let mut s = sa();
        let wire = encrypt_tunnel(&mut s, &[7u8; 60]);
        let other = SecurityAssociation::new(0x2002, &[0x42; 16], 0xDEAD, b"authentication-key");
        assert_eq!(decrypt_tunnel(&other, &wire).unwrap_err(), EspError::BadSpi);
    }

    #[test]
    fn wrong_keys_fail_icv() {
        let mut s = sa();
        let wire = encrypt_tunnel(&mut s, &[7u8; 60]);
        let other = SecurityAssociation::new(0x1001, &[0x42; 16], 0xDEAD, b"different-key");
        assert_eq!(decrypt_tunnel(&other, &wire).unwrap_err(), EspError::BadIcv);
    }

    #[test]
    fn truncated_rejected() {
        let mut s = sa();
        let wire = encrypt_tunnel(&mut s, &[7u8; 60]);
        assert_eq!(
            decrypt_tunnel(&s, &wire[..10]).unwrap_err(),
            EspError::Malformed
        );
    }

    #[test]
    fn overhead_matches_paper_framing() {
        // 64B inner packet: 8 (hdr) + 8 (IV) + pad to 16 + 12 (ICV).
        // ciphertext = ceil((64+2)/16)*16 = 80; total = 8+8+80+12 = 108.
        assert_eq!(encapsulated_len(64), 108);
    }
}
