//! AES-128 block cipher (FIPS-197) and CTR mode (RFC 3686 framing).
//!
//! A straightforward byte-oriented implementation: the S-box and the
//! xtime multiply, no T-tables. Clarity and auditability over raw
//! speed — the simulated router charges virtual time from the cost
//! model, and the wall-clock benches measure this code as an honest
//! baseline.

/// The AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

#[inline]
fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

/// An expanded AES-128 key (11 round keys).
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

impl Aes128 {
    /// Expand a 128-bit key.
    pub fn new(key: &[u8; 16]) -> Aes128 {
        let mut rk = [[0u8; 16]; 11];
        rk[0] = *key;
        for round in 1..11 {
            let prev = rk[round - 1];
            let mut w = [prev[12], prev[13], prev[14], prev[15]];
            // RotWord + SubWord + Rcon
            w.rotate_left(1);
            for b in &mut w {
                *b = SBOX[*b as usize];
            }
            w[0] ^= RCON[round - 1];
            for i in 0..4 {
                rk[round][i] = prev[i] ^ w[i];
            }
            for i in 4..16 {
                rk[round][i] = prev[i] ^ rk[round][i - 4];
            }
        }
        Aes128 { round_keys: rk }
    }

    /// Encrypt one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        add_round_key(block, &self.round_keys[0]);
        for round in 1..10 {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[round]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[10]);
    }

    /// Encrypt a copy of `block`.
    pub fn encrypt(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut out = *block;
        self.encrypt_block(&mut out);
        out
    }

    /// The expanded key schedule (11 round keys), for known-answer
    /// tests against the FIPS-197 expansion walkthrough.
    pub fn round_keys(&self) -> &[[u8; 16]; 11] {
        &self.round_keys
    }
}

#[inline]
fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= rk[i];
    }
}

#[inline]
fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

/// State is column-major: state[4*c + r] is row r, column c.
#[inline]
fn shift_rows(state: &mut [u8; 16]) {
    // Row 1: shift left by 1.
    let t = state[1];
    state[1] = state[5];
    state[5] = state[9];
    state[9] = state[13];
    state[13] = t;
    // Row 2: shift left by 2.
    state.swap(2, 10);
    state.swap(6, 14);
    // Row 3: shift left by 3 (= right by 1).
    let t = state[15];
    state[15] = state[11];
    state[11] = state[7];
    state[7] = state[3];
    state[3] = t;
}

#[inline]
fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = &mut state[4 * c..4 * c + 4];
        let a = [col[0], col[1], col[2], col[3]];
        let t = a[0] ^ a[1] ^ a[2] ^ a[3];
        col[0] = a[0] ^ t ^ xtime(a[0] ^ a[1]);
        col[1] = a[1] ^ t ^ xtime(a[1] ^ a[2]);
        col[2] = a[2] ^ t ^ xtime(a[2] ^ a[3]);
        col[3] = a[3] ^ t ^ xtime(a[3] ^ a[0]);
    }
}

/// RFC 3686 CTR counter block: `nonce(4) || iv(8) || counter(4)`,
/// counter starting at 1.
#[inline]
pub fn ctr_counter_block(nonce: u32, iv: &[u8; 8], counter: u32) -> [u8; 16] {
    let mut block = [0u8; 16];
    block[0..4].copy_from_slice(&nonce.to_be_bytes());
    block[4..12].copy_from_slice(iv);
    block[12..16].copy_from_slice(&counter.to_be_bytes());
    block
}

/// Produce the keystream block for CTR block index `idx` (0-based) and
/// XOR it into `data` (up to 16 bytes). This is the independent unit
/// of work the paper maps to one GPU thread.
pub fn ctr_block(aes: &Aes128, nonce: u32, iv: &[u8; 8], idx: u32, data: &mut [u8]) {
    debug_assert!(data.len() <= 16);
    let ks = aes.encrypt(&ctr_counter_block(nonce, iv, idx + 1));
    for (d, k) in data.iter_mut().zip(ks.iter()) {
        *d ^= k;
    }
}

/// Streaming CTR en/decryption (encrypt == decrypt).
pub struct CtrStream {
    aes: Aes128,
    nonce: u32,
}

impl CtrStream {
    /// A CTR context with the RFC 3686 per-SA nonce.
    pub fn new(key: &[u8; 16], nonce: u32) -> CtrStream {
        CtrStream {
            aes: Aes128::new(key),
            nonce,
        }
    }

    /// XOR the keystream for (`iv`) into `data`.
    pub fn apply(&self, iv: &[u8; 8], data: &mut [u8]) {
        for (idx, chunk) in data.chunks_mut(16).enumerate() {
            ctr_block(&self.aes, self.nonce, iv, idx as u32, chunk);
        }
    }

    /// The underlying block cipher (the GPU kernel drives blocks
    /// itself).
    pub fn cipher(&self) -> &Aes128 {
        &self.aes
    }

    /// The SA nonce.
    pub fn nonce(&self) -> u32 {
        self.nonce
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips197_vector() {
        let key: [u8; 16] = (0u8..16).collect::<Vec<_>>().try_into().unwrap();
        let aes = Aes128::new(&key);
        let pt: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let ct = aes.encrypt(&pt);
        assert_eq!(
            ct,
            [
                0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
                0xc5, 0x5a
            ]
        );
    }

    #[test]
    fn rfc3686_test_vector_1() {
        // RFC 3686 §6 Test Vector #1.
        let key: [u8; 16] = [
            0xAE, 0x68, 0x52, 0xF8, 0x12, 0x10, 0x67, 0xCC, 0x4B, 0xF7, 0xA5, 0x76, 0x55, 0x77,
            0xF3, 0x9E,
        ];
        let nonce = 0x0000_0030;
        let iv = [0u8; 8];
        let mut data = *b"Single block msg";
        let ctr = CtrStream::new(&key, nonce);
        ctr.apply(&iv, &mut data);
        assert_eq!(
            data,
            [
                0xE4, 0x09, 0x5D, 0x4F, 0xB7, 0xA7, 0xB3, 0x79, 0x2D, 0x61, 0x75, 0xA3, 0x26, 0x13,
                0x11, 0xB8
            ]
        );
    }

    #[test]
    fn rfc3686_test_vector_2() {
        // RFC 3686 §6 Test Vector #2: 32 bytes, two blocks.
        let key: [u8; 16] = [
            0x7E, 0x24, 0x06, 0x78, 0x17, 0xFA, 0xE0, 0xD7, 0x43, 0xD6, 0xCE, 0x1F, 0x32, 0x53,
            0x91, 0x63,
        ];
        let nonce = 0x006C_B6DB;
        let iv = [0xC0, 0x54, 0x3B, 0x59, 0xDA, 0x48, 0xD9, 0x0B];
        let mut data: Vec<u8> = (0..32).collect();
        let ctr = CtrStream::new(&key, nonce);
        ctr.apply(&iv, &mut data);
        assert_eq!(
            data,
            vec![
                0x51, 0x04, 0xA1, 0x06, 0x16, 0x8A, 0x72, 0xD9, 0x79, 0x0D, 0x41, 0xEE, 0x8E, 0xDA,
                0xD3, 0x88, 0xEB, 0x2E, 0x1E, 0xFC, 0x46, 0xDA, 0x57, 0xC8, 0xFC, 0xE6, 0x30, 0xDF,
                0x91, 0x41, 0xBE, 0x28
            ]
        );
    }

    #[test]
    fn ctr_round_trip() {
        let key = [7u8; 16];
        let ctr = CtrStream::new(&key, 0xABCD);
        let iv = [1, 2, 3, 4, 5, 6, 7, 8];
        let original: Vec<u8> = (0..100u8).collect();
        let mut data = original.clone();
        ctr.apply(&iv, &mut data);
        assert_ne!(data, original);
        ctr.apply(&iv, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn ctr_blocks_are_independent() {
        // Encrypting block-by-block out of order equals streaming.
        let key = [9u8; 16];
        let ctr = CtrStream::new(&key, 0x42);
        let iv = [8, 7, 6, 5, 4, 3, 2, 1];
        let mut streamed = vec![0x5Au8; 48];
        ctr.apply(&iv, &mut streamed);

        let mut blocks = vec![0x5Au8; 48];
        for idx in [2u32, 0, 1] {
            let s = idx as usize * 16;
            ctr_block(ctr.cipher(), 0x42, &iv, idx, &mut blocks[s..s + 16]);
        }
        assert_eq!(streamed, blocks);
    }

    #[test]
    fn different_ivs_differ() {
        let key = [3u8; 16];
        let ctr = CtrStream::new(&key, 1);
        let mut a = vec![0u8; 16];
        let mut b = vec![0u8; 16];
        ctr.apply(&[0; 8], &mut a);
        ctr.apply(&[1; 8], &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn key_schedule_first_round_key_is_key() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let aes = Aes128::new(&key);
        assert_eq!(aes.round_keys[0], key);
        // FIPS-197 A.1: w[4..8] of the expanded key.
        assert_eq!(aes.round_keys[1][0..4], [0xa0, 0xfa, 0xfe, 0x17]);
    }
}
