//! AES-128 block cipher (FIPS-197) and CTR mode (RFC 3686 framing).
//!
//! Three implementations, one contract:
//!
//! * The **AES-NI path** — `aesenc`-based block encryption and an
//!   eight-block CTR keystream, selected at runtime when the CPU has
//!   the instructions (the paper's "highly optimized AES … using
//!   SSE", §6.2.4). This is what the router and the ESP transforms
//!   run on capable hardware.
//! * The **T-table path** — four const-evaluated 1 KiB T-tables
//!   (S-box and MixColumns fused into 32-bit lookups, the classic
//!   software construction) with a four-block CTR routine for
//!   instruction-level parallelism; the portable fast path.
//! * The **oracle** ([`oracle`]) — the original byte-oriented
//!   implementation (S-box + `xtime`, no tables), kept verbatim as
//!   the reference the fast path is tested against, block by block
//!   and keystream by keystream.
//!
//! Virtual-time costs come from the simulator's cost model, so the
//! fast path changes wall-clock speed only; every byte it produces is
//! pinned to the oracle (and to FIPS-197 / SP 800-38A / RFC 3686
//! vectors) by the unit tests, `tests/kat.rs` and the ps-check
//! properties.

/// The AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

#[inline]
const fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

/// Build the four encryption T-tables at const-eval time. `TE[0][x]`
/// packs the MixColumns column `(2·S(x), S(x), S(x), 3·S(x))`
/// big-endian; `TE[1..4]` are its byte rotations, so one round of
/// SubBytes + ShiftRows + MixColumns collapses to four lookups and
/// three XORs per column.
const fn te_tables() -> [[u32; 256]; 4] {
    let mut t = [[0u32; 256]; 4];
    let mut i = 0;
    while i < 256 {
        let s = SBOX[i];
        let s2 = xtime(s);
        let s3 = s2 ^ s;
        let w = ((s2 as u32) << 24) | ((s as u32) << 16) | ((s as u32) << 8) | (s3 as u32);
        t[0][i] = w;
        t[1][i] = w.rotate_right(8);
        t[2][i] = w.rotate_right(16);
        t[3][i] = w.rotate_right(24);
        i += 1;
    }
    t
}

/// The four 1 KiB T-tables (4 KiB total, fits L1).
static TE: [[u32; 256]; 4] = te_tables();

/// AES-NI backend: the `aesenc`/`aesenclast` instruction path, used
/// when the CPU has it (runtime-detected once, cached). This is the
/// "highly optimized AES … using SSE" configuration of the paper's
/// CPU baseline (§6.2.4). Bit-identical to the T-table path and the
/// byte oracle — the same KATs and ps-check properties pin all three.
#[cfg(target_arch = "x86_64")]
mod ni {
    use core::arch::x86_64::*;
    use std::sync::atomic::{AtomicU8, Ordering};

    static STATE: AtomicU8 = AtomicU8::new(0);

    /// Does this CPU have AES-NI (+SSE2)? First call probes, later
    /// calls are one relaxed load.
    #[inline]
    pub fn available() -> bool {
        match STATE.load(Ordering::Relaxed) {
            2 => true,
            1 => false,
            _ => {
                let ok = std::arch::is_x86_feature_detected!("aes")
                    && std::arch::is_x86_feature_detected!("sse2")
                    && std::arch::is_x86_feature_detected!("sse4.1");
                STATE.store(if ok { 2 } else { 1 }, Ordering::Relaxed);
                ok
            }
        }
    }

    #[inline]
    #[target_feature(enable = "aes,sse2")]
    unsafe fn load_rk(rk: &[[u8; 16]; 11]) -> [__m128i; 11] {
        let mut k = [_mm_setzero_si128(); 11];
        for (dst, src) in k.iter_mut().zip(rk.iter()) {
            *dst = _mm_loadu_si128(src.as_ptr() as *const __m128i);
        }
        k
    }

    /// Encrypt one block.
    #[target_feature(enable = "aes,sse2")]
    pub unsafe fn encrypt1(rk: &[[u8; 16]; 11], block: &[u8; 16]) -> [u8; 16] {
        let k = load_rk(rk);
        let mut s = _mm_xor_si128(_mm_loadu_si128(block.as_ptr() as *const __m128i), k[0]);
        for key in &k[1..10] {
            s = _mm_aesenc_si128(s, *key);
        }
        s = _mm_aesenclast_si128(s, k[10]);
        let mut out = [0u8; 16];
        _mm_storeu_si128(out.as_mut_ptr() as *mut __m128i, s);
        out
    }

    /// Encrypt four independent blocks, round-interleaved so the
    /// `aesenc` latencies overlap.
    #[target_feature(enable = "aes,sse2")]
    pub unsafe fn encrypt4(rk: &[[u8; 16]; 11], blocks: &mut [[u8; 16]; 4]) {
        let k = load_rk(rk);
        let mut s = [_mm_setzero_si128(); 4];
        for (l, b) in s.iter_mut().zip(blocks.iter()) {
            *l = _mm_xor_si128(_mm_loadu_si128(b.as_ptr() as *const __m128i), k[0]);
        }
        for key in &k[1..10] {
            for l in &mut s {
                *l = _mm_aesenc_si128(*l, *key);
            }
        }
        for (l, b) in s.iter_mut().zip(blocks.iter_mut()) {
            *l = _mm_aesenclast_si128(*l, k[10]);
            _mm_storeu_si128(b.as_mut_ptr() as *mut __m128i, *l);
        }
    }

    /// RFC 3686 CTR keystream XOR, eight blocks in flight. Same
    /// counter semantics as the scalar paths (block index `i` uses
    /// counter `i + 1`, wrapping mod 2³²).
    #[target_feature(enable = "aes,sse2,sse4.1")]
    pub unsafe fn ctr_xor(
        rk: &[[u8; 16]; 11],
        nonce: u32,
        iv: &[u8; 8],
        first_block: u32,
        data: &mut [u8],
    ) {
        let k = load_rk(rk);
        // Counter block template: nonce || iv || 0, counter patched in.
        let mut tmpl = [0u8; 16];
        tmpl[0..4].copy_from_slice(&nonce.to_be_bytes());
        tmpl[4..12].copy_from_slice(iv);
        let tmpl = _mm_loadu_si128(tmpl.as_ptr() as *const __m128i);

        let ctr_block = |idx: u32| {
            // Counter occupies the last 4 bytes, big-endian.
            let ctr = idx.wrapping_add(1).to_be() as i32;
            _mm_insert_epi32::<3>(tmpl, ctr)
        };

        let mut idx = first_block;
        let mut chunks = data.chunks_exact_mut(128);
        for chunk in &mut chunks {
            let mut s = [_mm_setzero_si128(); 8];
            for (i, l) in s.iter_mut().enumerate() {
                *l = _mm_xor_si128(ctr_block(idx.wrapping_add(i as u32)), k[0]);
            }
            for key in &k[1..10] {
                for l in &mut s {
                    *l = _mm_aesenc_si128(*l, *key);
                }
            }
            for (i, l) in s.iter_mut().enumerate() {
                *l = _mm_aesenclast_si128(*l, k[10]);
                let p = chunk.as_mut_ptr().add(i * 16) as *mut __m128i;
                _mm_storeu_si128(p, _mm_xor_si128(_mm_loadu_si128(p), *l));
            }
            idx = idx.wrapping_add(8);
        }
        for blk in chunks.into_remainder().chunks_mut(16) {
            let mut s = _mm_xor_si128(ctr_block(idx), k[0]);
            for key in &k[1..10] {
                s = _mm_aesenc_si128(s, *key);
            }
            s = _mm_aesenclast_si128(s, k[10]);
            let mut kb = [0u8; 16];
            _mm_storeu_si128(kb.as_mut_ptr() as *mut __m128i, s);
            for (d, ks) in blk.iter_mut().zip(&kb) {
                *d ^= ks;
            }
            idx = idx.wrapping_add(1);
        }
    }
}

/// An expanded AES-128 key (11 round keys, kept in both byte and
/// 32-bit-word form: bytes for the oracle and the FIPS-197 expansion
/// KATs, words for the T-table rounds).
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
    rk_words: [[u32; 4]; 11],
}

impl Aes128 {
    /// Expand a 128-bit key.
    pub fn new(key: &[u8; 16]) -> Aes128 {
        let mut rk = [[0u8; 16]; 11];
        rk[0] = *key;
        for round in 1..11 {
            let prev = rk[round - 1];
            let mut w = [prev[12], prev[13], prev[14], prev[15]];
            // RotWord + SubWord + Rcon
            w.rotate_left(1);
            for b in &mut w {
                *b = SBOX[*b as usize];
            }
            w[0] ^= RCON[round - 1];
            for i in 0..4 {
                rk[round][i] = prev[i] ^ w[i];
            }
            for i in 4..16 {
                rk[round][i] = prev[i] ^ rk[round][i - 4];
            }
        }
        let mut rk_words = [[0u32; 4]; 11];
        for (r, words) in rk_words.iter_mut().enumerate() {
            for (j, w) in words.iter_mut().enumerate() {
                let b = &rk[r][j * 4..j * 4 + 4];
                *w = u32::from_be_bytes(b.try_into().expect("4 bytes"));
            }
        }
        Aes128 {
            round_keys: rk,
            rk_words,
        }
    }

    /// Encrypt one 16-byte block in place (AES-NI when the CPU has
    /// it, T-tables otherwise).
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        #[cfg(target_arch = "x86_64")]
        if ni::available() {
            *block = unsafe { ni::encrypt1(&self.round_keys, block) };
            return;
        }
        let s = self.encrypt_words(load_words(block));
        store_words(&s, block);
    }

    /// Encrypt a copy of `block`.
    pub fn encrypt(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut out = *block;
        self.encrypt_block(&mut out);
        out
    }

    /// Encrypt four independent blocks in place — the CTR keystream
    /// unit. The four block states are advanced round by round
    /// together so the loads of one block overlap the XOR chains of
    /// the others (both the AES-NI and T-table forms interleave).
    pub fn encrypt4(&self, blocks: &mut [[u8; 16]; 4]) {
        #[cfg(target_arch = "x86_64")]
        if ni::available() {
            unsafe { ni::encrypt4(&self.round_keys, blocks) };
            return;
        }
        let b = self.encrypt_words4([
            load_words(&blocks[0]),
            load_words(&blocks[1]),
            load_words(&blocks[2]),
            load_words(&blocks[3]),
        ]);
        for (blk, s) in blocks.iter_mut().zip(&b) {
            store_words(s, blk);
        }
    }

    /// The expanded key schedule (11 round keys), for known-answer
    /// tests against the FIPS-197 expansion walkthrough.
    pub fn round_keys(&self) -> &[[u8; 16]; 11] {
        &self.round_keys
    }

    /// One block over column words (big-endian within each word).
    #[inline]
    fn encrypt_words(&self, mut s: [u32; 4]) -> [u32; 4] {
        for (w, rk) in s.iter_mut().zip(&self.rk_words[0]) {
            *w ^= rk;
        }
        for round in 1..10 {
            s = table_round(&s, &self.rk_words[round]);
        }
        final_round(&s, &self.rk_words[10])
    }

    /// Four blocks, round-interleaved.
    #[inline]
    fn encrypt_words4(&self, mut b: [[u32; 4]; 4]) -> [[u32; 4]; 4] {
        for blk in &mut b {
            for (w, rk) in blk.iter_mut().zip(&self.rk_words[0]) {
                *w ^= rk;
            }
        }
        for round in 1..10 {
            let rk = &self.rk_words[round];
            b = [
                table_round(&b[0], rk),
                table_round(&b[1], rk),
                table_round(&b[2], rk),
                table_round(&b[3], rk),
            ];
        }
        let rk = &self.rk_words[10];
        [
            final_round(&b[0], rk),
            final_round(&b[1], rk),
            final_round(&b[2], rk),
            final_round(&b[3], rk),
        ]
    }
}

#[inline]
fn load_words(block: &[u8; 16]) -> [u32; 4] {
    let mut s = [0u32; 4];
    for (j, w) in s.iter_mut().enumerate() {
        *w = u32::from_be_bytes(block[j * 4..j * 4 + 4].try_into().expect("4 bytes"));
    }
    s
}

#[inline]
fn store_words(s: &[u32; 4], block: &mut [u8; 16]) {
    for (j, w) in s.iter().enumerate() {
        block[j * 4..j * 4 + 4].copy_from_slice(&w.to_be_bytes());
    }
}

/// One full table round: column `j` reads rows 0..3 from columns
/// `j, j+1, j+2, j+3` (ShiftRows folded into the indexing).
#[inline]
fn table_round(s: &[u32; 4], rk: &[u32; 4]) -> [u32; 4] {
    let mut out = [0u32; 4];
    for (j, o) in out.iter_mut().enumerate() {
        *o = TE[0][(s[j] >> 24) as usize]
            ^ TE[1][((s[(j + 1) & 3] >> 16) & 0xff) as usize]
            ^ TE[2][((s[(j + 2) & 3] >> 8) & 0xff) as usize]
            ^ TE[3][(s[(j + 3) & 3] & 0xff) as usize]
            ^ rk[j];
    }
    out
}

/// The last round has no MixColumns: plain S-box with the same
/// ShiftRows indexing.
#[inline]
fn final_round(s: &[u32; 4], rk: &[u32; 4]) -> [u32; 4] {
    let mut out = [0u32; 4];
    for (j, o) in out.iter_mut().enumerate() {
        *o = (u32::from(SBOX[(s[j] >> 24) as usize]) << 24)
            | (u32::from(SBOX[((s[(j + 1) & 3] >> 16) & 0xff) as usize]) << 16)
            | (u32::from(SBOX[((s[(j + 2) & 3] >> 8) & 0xff) as usize]) << 8)
            | u32::from(SBOX[(s[(j + 3) & 3] & 0xff) as usize]);
        *o ^= rk[j];
    }
    out
}

/// RFC 3686 CTR counter block: `nonce(4) || iv(8) || counter(4)`,
/// counter starting at 1.
#[inline]
pub fn ctr_counter_block(nonce: u32, iv: &[u8; 8], counter: u32) -> [u8; 16] {
    let mut block = [0u8; 16];
    block[0..4].copy_from_slice(&nonce.to_be_bytes());
    block[4..12].copy_from_slice(iv);
    block[12..16].copy_from_slice(&counter.to_be_bytes());
    block
}

/// Produce the keystream block for CTR block index `idx` (0-based;
/// the wire counter is `idx + 1`, wrapping) and XOR it into `data`
/// (up to 16 bytes). This is the independent unit of work the paper
/// maps to one GPU thread.
pub fn ctr_block(aes: &Aes128, nonce: u32, iv: &[u8; 8], idx: u32, data: &mut [u8]) {
    debug_assert!(data.len() <= 16);
    let ks = aes.encrypt(&ctr_counter_block(nonce, iv, idx.wrapping_add(1)));
    for (d, k) in data.iter_mut().zip(ks.iter()) {
        *d ^= k;
    }
}

/// XOR the RFC 3686 keystream for block indices `first_block..` into
/// `data`, four blocks per cipher call. Handles arbitrary lengths
/// (the tail runs block-at-a-time) and counter wrap-around; the
/// counter word for block index `i` is `i + 1` modulo 2³². Equivalent
/// to [`oracle::ctr_xor`] byte for byte.
pub fn ctr_xor(aes: &Aes128, nonce: u32, iv: &[u8; 8], first_block: u32, data: &mut [u8]) {
    #[cfg(target_arch = "x86_64")]
    if ni::available() {
        unsafe { ni::ctr_xor(&aes.round_keys, nonce, iv, first_block, data) };
        return;
    }
    ctr_xor_soft(aes, nonce, iv, first_block, data);
}

/// The portable T-table CTR path — the `ctr_xor` fallback, kept
/// callable so tests pin it against the oracle even on CPUs where the
/// dispatch never takes it.
fn ctr_xor_soft(aes: &Aes128, nonce: u32, iv: &[u8; 8], first_block: u32, data: &mut [u8]) {
    let iv0 = u32::from_be_bytes(iv[0..4].try_into().expect("4 bytes"));
    let iv1 = u32::from_be_bytes(iv[4..8].try_into().expect("4 bytes"));
    let mut idx = first_block;
    let mut chunks = data.chunks_exact_mut(64);
    for chunk in &mut chunks {
        let ctr = |i: u32| [nonce, iv0, iv1, idx.wrapping_add(i).wrapping_add(1)];
        let ks = aes.encrypt_words4([ctr(0), ctr(1), ctr(2), ctr(3)]);
        for (blk, ksw) in chunk.chunks_exact_mut(16).zip(&ks) {
            let mut kb = [0u8; 16];
            store_words(ksw, &mut kb);
            for (d, k) in blk.iter_mut().zip(&kb) {
                *d ^= k;
            }
        }
        idx = idx.wrapping_add(4);
    }
    for blk in chunks.into_remainder().chunks_mut(16) {
        let ks = aes.encrypt_words([nonce, iv0, iv1, idx.wrapping_add(1)]);
        let mut kb = [0u8; 16];
        store_words(&ks, &mut kb);
        for (d, k) in blk.iter_mut().zip(&kb) {
            *d ^= k;
        }
        idx = idx.wrapping_add(1);
    }
}

/// Streaming CTR en/decryption (encrypt == decrypt).
pub struct CtrStream {
    aes: Aes128,
    nonce: u32,
}

impl CtrStream {
    /// A CTR context with the RFC 3686 per-SA nonce.
    pub fn new(key: &[u8; 16], nonce: u32) -> CtrStream {
        CtrStream {
            aes: Aes128::new(key),
            nonce,
        }
    }

    /// XOR the keystream for (`iv`) into `data`.
    pub fn apply(&self, iv: &[u8; 8], data: &mut [u8]) {
        ctr_xor(&self.aes, self.nonce, iv, 0, data);
    }

    /// The underlying block cipher (the GPU kernel drives blocks
    /// itself).
    pub fn cipher(&self) -> &Aes128 {
        &self.aes
    }

    /// The SA nonce.
    pub fn nonce(&self) -> u32 {
        self.nonce
    }
}

pub mod oracle {
    //! The byte-oriented reference implementation — S-box and `xtime`
    //! only, exactly the seed implementation this crate shipped with.
    //! It exists so the T-table fast path always has an in-tree
    //! oracle: every optimized routine is property-tested against
    //! these functions over random keys, lengths and offsets.

    use super::{ctr_counter_block, Aes128, SBOX};

    #[inline]
    fn xtime(b: u8) -> u8 {
        super::xtime(b)
    }

    /// Encrypt one 16-byte block in place, byte-oriented.
    pub fn encrypt_block(aes: &Aes128, block: &mut [u8; 16]) {
        let rk = aes.round_keys();
        add_round_key(block, &rk[0]);
        for round_key in &rk[1..10] {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, round_key);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &rk[10]);
    }

    /// Encrypt a copy of `block`, byte-oriented.
    pub fn encrypt(aes: &Aes128, block: &[u8; 16]) -> [u8; 16] {
        let mut out = *block;
        encrypt_block(aes, &mut out);
        out
    }

    /// Scalar CTR keystream XOR: one block at a time, counter for
    /// block index `i` is `i + 1` modulo 2³². The reference
    /// [`super::ctr_xor`] is tested against.
    pub fn ctr_xor(aes: &Aes128, nonce: u32, iv: &[u8; 8], first_block: u32, data: &mut [u8]) {
        for (off, chunk) in data.chunks_mut(16).enumerate() {
            let idx = first_block.wrapping_add(off as u32);
            let ks = encrypt(aes, &ctr_counter_block(nonce, iv, idx.wrapping_add(1)));
            for (d, k) in chunk.iter_mut().zip(ks.iter()) {
                *d ^= k;
            }
        }
    }

    #[inline]
    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for i in 0..16 {
            state[i] ^= rk[i];
        }
    }

    #[inline]
    fn sub_bytes(state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = SBOX[*b as usize];
        }
    }

    /// State is column-major: state[4*c + r] is row r, column c.
    #[inline]
    fn shift_rows(state: &mut [u8; 16]) {
        // Row 1: shift left by 1.
        let t = state[1];
        state[1] = state[5];
        state[5] = state[9];
        state[9] = state[13];
        state[13] = t;
        // Row 2: shift left by 2.
        state.swap(2, 10);
        state.swap(6, 14);
        // Row 3: shift left by 3 (= right by 1).
        let t = state[15];
        state[15] = state[11];
        state[11] = state[7];
        state[7] = state[3];
        state[3] = t;
    }

    #[inline]
    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = &mut state[4 * c..4 * c + 4];
            let a = [col[0], col[1], col[2], col[3]];
            let t = a[0] ^ a[1] ^ a[2] ^ a[3];
            col[0] = a[0] ^ t ^ xtime(a[0] ^ a[1]);
            col[1] = a[1] ^ t ^ xtime(a[1] ^ a[2]);
            col[2] = a[2] ^ t ^ xtime(a[2] ^ a[3]);
            col[3] = a[3] ^ t ^ xtime(a[3] ^ a[0]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips197_vector() {
        let key: [u8; 16] = (0u8..16).collect::<Vec<_>>().try_into().unwrap();
        let aes = Aes128::new(&key);
        let pt: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let ct = aes.encrypt(&pt);
        assert_eq!(
            ct,
            [
                0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
                0xc5, 0x5a
            ]
        );
        // The oracle agrees on the published vector too.
        assert_eq!(oracle::encrypt(&aes, &pt), ct);
    }

    /// A cheap deterministic byte source for oracle comparisons
    /// (xorshift64*; the crate deliberately has no deps).
    struct Xs(u64);
    impl Xs {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
        fn fill(&mut self, buf: &mut [u8]) {
            for b in buf.iter_mut() {
                *b = self.next() as u8;
            }
        }
    }

    /// The T-table and CTR fallback paths must agree with the
    /// dispatching entry points even on CPUs where the dispatch takes
    /// the AES-NI path and the fallback would otherwise go untested.
    #[test]
    fn soft_paths_match_dispatch() {
        let mut xs = Xs(0xDEAD_BEEF_CAFE_F00D);
        for _ in 0..32 {
            let mut key = [0u8; 16];
            let mut pt = [0u8; 16];
            xs.fill(&mut key);
            xs.fill(&mut pt);
            let aes = Aes128::new(&key);
            let soft = {
                let mut out = pt;
                let s = aes.encrypt_words(load_words(&out));
                store_words(&s, &mut out);
                out
            };
            assert_eq!(aes.encrypt(&pt), soft);

            let mut iv = [0u8; 8];
            xs.fill(&mut iv);
            let nonce = xs.next() as u32;
            let first = xs.next() as u32;
            let mut a = vec![0u8; 200];
            xs.fill(&mut a);
            let mut b = a.clone();
            ctr_xor(&aes, nonce, &iv, first, &mut a);
            ctr_xor_soft(&aes, nonce, &iv, first, &mut b);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn ttable_matches_oracle_on_random_blocks() {
        let mut xs = Xs(0x9E37_79B9_7F4A_7C15);
        for _ in 0..64 {
            let mut key = [0u8; 16];
            let mut pt = [0u8; 16];
            xs.fill(&mut key);
            xs.fill(&mut pt);
            let aes = Aes128::new(&key);
            assert_eq!(aes.encrypt(&pt), oracle::encrypt(&aes, &pt));
        }
    }

    #[test]
    fn encrypt4_equals_four_single_blocks() {
        let mut xs = Xs(42);
        let mut key = [0u8; 16];
        xs.fill(&mut key);
        let aes = Aes128::new(&key);
        let mut blocks = [[0u8; 16]; 4];
        for b in &mut blocks {
            xs.fill(b);
        }
        let singles: Vec<[u8; 16]> = blocks.iter().map(|b| aes.encrypt(b)).collect();
        aes.encrypt4(&mut blocks);
        assert_eq!(blocks.to_vec(), singles);
    }

    #[test]
    fn batched_ctr_matches_oracle_odd_lengths() {
        let mut xs = Xs(7);
        let mut key = [0u8; 16];
        xs.fill(&mut key);
        let aes = Aes128::new(&key);
        let iv = [9u8; 8];
        for len in [0usize, 1, 15, 16, 17, 63, 64, 65, 100, 129, 1504] {
            let mut fast = vec![0u8; len];
            xs.fill(&mut fast);
            let mut slow = fast.clone();
            ctr_xor(&aes, 0xABCD, &iv, 3, &mut fast);
            oracle::ctr_xor(&aes, 0xABCD, &iv, 3, &mut slow);
            assert_eq!(fast, slow, "len={len}");
        }
    }

    #[test]
    fn ctr_counter_wraps_instead_of_panicking() {
        let aes = Aes128::new(&[1u8; 16]);
        let iv = [2u8; 8];
        // 5 blocks starting at u32::MAX - 1: counters MAX, 0, 1, 2, 3.
        let mut fast = vec![0x55u8; 80];
        let mut slow = fast.clone();
        ctr_xor(&aes, 7, &iv, u32::MAX - 1, &mut fast);
        oracle::ctr_xor(&aes, 7, &iv, u32::MAX - 1, &mut slow);
        assert_eq!(fast, slow);
        // The wrapped second block equals block index 0's counter (0+... )
        let mut b0 = vec![0x55u8; 16];
        ctr_block(&aes, 7, &iv, u32::MAX, &mut b0);
        assert_eq!(&fast[16..32], &b0[..], "counter 0 after wrap");
    }

    #[test]
    fn rfc3686_test_vector_1() {
        // RFC 3686 §6 Test Vector #1.
        let key: [u8; 16] = [
            0xAE, 0x68, 0x52, 0xF8, 0x12, 0x10, 0x67, 0xCC, 0x4B, 0xF7, 0xA5, 0x76, 0x55, 0x77,
            0xF3, 0x9E,
        ];
        let nonce = 0x0000_0030;
        let iv = [0u8; 8];
        let mut data = *b"Single block msg";
        let ctr = CtrStream::new(&key, nonce);
        ctr.apply(&iv, &mut data);
        assert_eq!(
            data,
            [
                0xE4, 0x09, 0x5D, 0x4F, 0xB7, 0xA7, 0xB3, 0x79, 0x2D, 0x61, 0x75, 0xA3, 0x26, 0x13,
                0x11, 0xB8
            ]
        );
    }

    #[test]
    fn rfc3686_test_vector_2() {
        // RFC 3686 §6 Test Vector #2: 32 bytes, two blocks.
        let key: [u8; 16] = [
            0x7E, 0x24, 0x06, 0x78, 0x17, 0xFA, 0xE0, 0xD7, 0x43, 0xD6, 0xCE, 0x1F, 0x32, 0x53,
            0x91, 0x63,
        ];
        let nonce = 0x006C_B6DB;
        let iv = [0xC0, 0x54, 0x3B, 0x59, 0xDA, 0x48, 0xD9, 0x0B];
        let mut data: Vec<u8> = (0..32).collect();
        let ctr = CtrStream::new(&key, nonce);
        ctr.apply(&iv, &mut data);
        assert_eq!(
            data,
            vec![
                0x51, 0x04, 0xA1, 0x06, 0x16, 0x8A, 0x72, 0xD9, 0x79, 0x0D, 0x41, 0xEE, 0x8E, 0xDA,
                0xD3, 0x88, 0xEB, 0x2E, 0x1E, 0xFC, 0x46, 0xDA, 0x57, 0xC8, 0xFC, 0xE6, 0x30, 0xDF,
                0x91, 0x41, 0xBE, 0x28
            ]
        );
    }

    #[test]
    fn ctr_round_trip() {
        let key = [7u8; 16];
        let ctr = CtrStream::new(&key, 0xABCD);
        let iv = [1, 2, 3, 4, 5, 6, 7, 8];
        let original: Vec<u8> = (0..100u8).collect();
        let mut data = original.clone();
        ctr.apply(&iv, &mut data);
        assert_ne!(data, original);
        ctr.apply(&iv, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn ctr_blocks_are_independent() {
        // Encrypting block-by-block out of order equals streaming.
        let key = [9u8; 16];
        let ctr = CtrStream::new(&key, 0x42);
        let iv = [8, 7, 6, 5, 4, 3, 2, 1];
        let mut streamed = vec![0x5Au8; 48];
        ctr.apply(&iv, &mut streamed);

        let mut blocks = vec![0x5Au8; 48];
        for idx in [2u32, 0, 1] {
            let s = idx as usize * 16;
            ctr_block(ctr.cipher(), 0x42, &iv, idx, &mut blocks[s..s + 16]);
        }
        assert_eq!(streamed, blocks);
    }

    #[test]
    fn different_ivs_differ() {
        let key = [3u8; 16];
        let ctr = CtrStream::new(&key, 1);
        let mut a = vec![0u8; 16];
        let mut b = vec![0u8; 16];
        ctr.apply(&[0; 8], &mut a);
        ctr.apply(&[1; 8], &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn key_schedule_first_round_key_is_key() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let aes = Aes128::new(&key);
        assert_eq!(aes.round_keys[0], key);
        // FIPS-197 A.1: w[4..8] of the expanded key.
        assert_eq!(aes.round_keys[1][0..4], [0xa0, 0xfa, 0xfe, 0x17]);
        // The word-form schedule is the byte form, big-endian.
        assert_eq!(aes.rk_words[1][0], 0xa0fafe17);
        assert_eq!(
            aes.rk_words[0][0],
            u32::from_be_bytes(key[0..4].try_into().unwrap())
        );
    }
}
