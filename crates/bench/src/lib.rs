//! # ps-bench — the paper-reproduction harness
//!
//! One module per evaluation artifact: every table and figure in the
//! paper's §2 and §6 has a function here that regenerates it from the
//! simulation and prints paper-vs-measured rows. The `ps-bench` binary
//! dispatches to these; integration tests assert the shapes.

pub mod baseline;
pub mod experiments;
pub mod runner;
pub mod trace;
pub mod workloads;

use std::time::Instant;

/// Milliseconds of virtual time per throughput measurement. Raise for
/// smoother numbers, lower for faster runs.
pub fn window_ms() -> u64 {
    std::env::var("PS_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

/// Print a rule line.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Print an experiment header.
pub fn header(title: &str) {
    println!();
    rule(72);
    println!("{title}");
    rule(72);
}

/// Time a closure in wall-clock seconds (the harness reports how long
/// each reproduction took to simulate).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}
