//! The in-tree microbenchmark runner that replaced `criterion`: a
//! hermetic, zero-dependency harness producing wall-clock medians and
//! JSON output.
//!
//! Design (what the five `benches/*.rs` targets need and nothing
//! more):
//!
//! * per-benchmark iteration-count calibration to a target batch time,
//! * `PS_BENCH_SAMPLES` timed batches (default 11), median-of-batches
//!   per-iteration nanoseconds — the median is robust to scheduler
//!   noise, which is all criterion's statistics bought us here,
//! * optional throughput annotation (elements or bytes per iteration),
//! * virtual-clock metrics for simulation runs ([`Runner::record_virtual`]),
//! * one human-readable line per benchmark plus a final JSON document
//!   (stdout, and `PS_BENCH_JSON=<path>` to also write a file).

use std::time::Instant;

pub use std::hint::black_box;

/// Work performed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many items.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

enum Metric {
    /// Wall-clock median ns/iter over calibrated batches.
    Wall {
        median_ns: f64,
        iters: u64,
        samples: usize,
        throughput: Option<Throughput>,
    },
    /// A virtual-clock (simulation) measurement, reported as-is.
    Virtual { value: f64, unit: String },
}

struct Record {
    id: String,
    metric: Metric,
}

/// A benchmark suite in flight.
pub struct Runner {
    suite: String,
    records: Vec<Record>,
    samples: usize,
    target_ns: u64,
}

impl Runner {
    /// A runner for the named suite. `PS_BENCH_SAMPLES` overrides the
    /// batch count, `PS_BENCH_TARGET_MS` the per-batch calibration
    /// target (default 5 ms).
    pub fn new(suite: &str) -> Runner {
        let samples = env_u64("PS_BENCH_SAMPLES", 11).max(3) as usize;
        let target_ns = env_u64("PS_BENCH_TARGET_MS", 5) * 1_000_000;
        println!(
            "suite {suite}: {samples} samples, ~{} ms/batch",
            target_ns / 1_000_000
        );
        Runner {
            suite: suite.to_string(),
            records: Vec::new(),
            samples,
            target_ns,
        }
    }

    /// Measure `f`, reporting median wall-clock ns per iteration.
    pub fn bench<R>(&mut self, id: &str, throughput: Option<Throughput>, mut f: impl FnMut() -> R) {
        // Warm up and calibrate: double the batch size until one batch
        // reaches the target time.
        let mut iters: u64 = 1;
        loop {
            let t = time_batch(&mut f, iters);
            if t >= self.target_ns as f64 || iters >= 1 << 28 {
                break;
            }
            // Jump close to the target, at least doubling.
            let guess = (self.target_ns as f64 / t.max(1.0) * iters as f64) as u64;
            iters = guess.clamp(iters * 2, iters * 16);
        }
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| time_batch(&mut f, iters) / iters as f64)
            .collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median_ns = per_iter[per_iter.len() / 2];

        let rate = throughput
            .map(|tp| format_rate(tp, median_ns))
            .unwrap_or_default();
        println!("  {id:<48} {median_ns:>12.1} ns/iter  {rate}");
        self.records.push(Record {
            id: id.to_string(),
            metric: Metric::Wall {
                median_ns,
                iters,
                samples: self.samples,
                throughput,
            },
        });
    }

    /// Record a virtual-clock measurement (e.g. simulated packets per
    /// virtual millisecond) produced by a deterministic run.
    pub fn record_virtual(&mut self, id: &str, value: f64, unit: &str) {
        println!("  {id:<48} {value:>12.1} {unit} (virtual clock)");
        self.records.push(Record {
            id: id.to_string(),
            metric: Metric::Virtual {
                value,
                unit: unit.to_string(),
            },
        });
    }

    /// Print the JSON document and (optionally) write it to
    /// `PS_BENCH_JSON`.
    pub fn finish(self) {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"suite\":{},\"results\":[",
            json_str(&self.suite)
        ));
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match &r.metric {
                Metric::Wall {
                    median_ns,
                    iters,
                    samples,
                    throughput,
                } => {
                    out.push_str(&format!(
                        "{{\"id\":{},\"kind\":\"wall\",\"median_ns\":{median_ns:.3},\
                         \"iters\":{iters},\"samples\":{samples}",
                        json_str(&r.id)
                    ));
                    match throughput {
                        Some(Throughput::Elements(n)) => {
                            out.push_str(&format!(",\"elements\":{n}"));
                        }
                        Some(Throughput::Bytes(n)) => out.push_str(&format!(",\"bytes\":{n}")),
                        None => {}
                    }
                    out.push('}');
                }
                Metric::Virtual { value, unit } => {
                    out.push_str(&format!(
                        "{{\"id\":{},\"kind\":\"virtual\",\"value\":{value},\"unit\":{}}}",
                        json_str(&r.id),
                        json_str(unit)
                    ));
                }
            }
        }
        out.push_str("]}");
        println!("{out}");
        if let Ok(path) = std::env::var("PS_BENCH_JSON") {
            if let Err(e) = std::fs::write(&path, &out) {
                eprintln!("ps-bench: cannot write {path}: {e}");
            }
        }
    }
}

fn time_batch<R>(f: &mut impl FnMut() -> R, iters: u64) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    t0.elapsed().as_nanos() as f64
}

fn format_rate(tp: Throughput, median_ns: f64) -> String {
    match tp {
        Throughput::Elements(n) => {
            let per_sec = n as f64 / median_ns * 1e9;
            format!("({:.1} Melem/s)", per_sec / 1e6)
        }
        Throughput::Bytes(n) => {
            let per_sec = n as f64 / median_ns * 1e9;
            format!("({:.2} Gbit/s)", per_sec * 8.0 / 1e9)
        }
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("plain"), "\"plain\"");
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_str("x\ny"), "\"x\\u000ay\"");
    }

    #[test]
    fn rate_formatting() {
        // 4096 elements at 4096 ns = 1 Gelem/s.
        assert_eq!(
            format_rate(Throughput::Elements(4096), 4096.0),
            "(1000.0 Melem/s)"
        );
        // 1000 bytes at 1000 ns = 8 Gbit/s.
        assert_eq!(
            format_rate(Throughput::Bytes(1000), 1000.0),
            "(8.00 Gbit/s)"
        );
    }

    #[test]
    fn bench_produces_a_wall_record() {
        std::env::remove_var("PS_BENCH_JSON");
        let mut r = Runner {
            suite: "test".into(),
            records: Vec::new(),
            samples: 3,
            target_ns: 10_000, // tiny target: keep the test fast
        };
        let mut acc = 0u64;
        r.bench("noop_add", Some(Throughput::Elements(1)), || {
            acc = acc.wrapping_add(1);
            acc
        });
        assert_eq!(r.records.len(), 1);
        match &r.records[0].metric {
            Metric::Wall {
                median_ns, iters, ..
            } => {
                assert!(*median_ns > 0.0);
                assert!(*iters >= 2);
            }
            Metric::Virtual { .. } => panic!("expected wall metric"),
        }
        r.finish();
    }

    #[test]
    fn virtual_records_pass_through() {
        let mut r = Runner {
            suite: "test".into(),
            records: Vec::new(),
            samples: 3,
            target_ns: 1,
        };
        r.record_virtual("sim/throughput", 39.5, "Gbps");
        match &r.records[0].metric {
            Metric::Virtual { value, unit } => {
                assert_eq!(*value, 39.5);
                assert_eq!(unit, "Gbps");
            }
            Metric::Wall { .. } => panic!("expected virtual metric"),
        }
    }
}
