//! `reproduce` — run one application end to end and (optionally)
//! dump the full virtual-time trace.
//!
//! ```text
//! reproduce                                   # IPv4, CPU+GPU, 40 Gbps
//! reproduce --app ipsec --gbps 20 --frame 1514
//! reproduce --app ipv4 --trace-out t.json     # Chrome trace_event JSON
//! PS_TRACE=stage,gpu reproduce --trace-out t.json
//! ```
//!
//! Flags: `--app ipv4|ipv6|openflow|ipsec|minimal|nat|lb`,
//! `--mode gpu|cpu`,
//! `--gbps <f>`, `--frame <bytes>`, `--ms <virtual ms>`,
//! `--trace-out <path>`. The trace honours `PS_TRACE` (category list)
//! and `PS_TRACE_CAP` (ring size); without `PS_TRACE` every category
//! is recorded. After writing the dump the binary re-parses it and
//! verifies the per-lane stage accounting: on every lane,
//! busy + idle == the virtual run time. See OBSERVABILITY.md.

use ps_bench::trace::{config_from_env_or_all, stage_lane_accounting, traced, write_chrome};
use ps_bench::workloads;
use ps_core::apps::{Backend, ForwardPattern, IpsecApp, LbApp, MinimalApp, NatApp};
use ps_core::{Mode, Router, RouterConfig, RouterReport};
use ps_pktgen::{TrafficKind, TrafficSpec};
use ps_sim::trace_summary::summarize;
use ps_sim::MILLIS;
use ps_trace::Collector;

struct Opts {
    app: String,
    mode: Mode,
    gbps: f64,
    frame: usize,
    ms: u64,
    trace_out: Option<String>,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        app: "ipv4".to_string(),
        mode: Mode::CpuGpu,
        gbps: 40.0,
        frame: 64,
        ms: 2,
        trace_out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("reproduce: {name} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--app" => opts.app = value("--app"),
            "--mode" => {
                opts.mode = match value("--mode").as_str() {
                    "gpu" => Mode::CpuGpu,
                    "cpu" => Mode::CpuOnly,
                    other => {
                        eprintln!("reproduce: unknown mode {other} (gpu|cpu)");
                        std::process::exit(2);
                    }
                }
            }
            "--gbps" => opts.gbps = value("--gbps").parse().expect("numeric --gbps"),
            "--frame" => opts.frame = value("--frame").parse().expect("numeric --frame"),
            "--ms" => opts.ms = value("--ms").parse().expect("numeric --ms"),
            "--trace-out" => opts.trace_out = Some(value("--trace-out")),
            "--help" | "-h" => {
                eprintln!(
                    "usage: reproduce [--app ipv4|ipv6|openflow|ipsec|minimal|nat|lb] \
                     [--mode gpu|cpu] [--gbps f] [--frame n] [--ms n] [--trace-out path]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("reproduce: unknown flag {other} (see --help)");
                std::process::exit(2);
            }
        }
    }
    opts
}

fn run(opts: &Opts) -> (RouterReport, Collector) {
    let mut cfg = match opts.mode {
        Mode::CpuGpu => RouterConfig::paper_gpu(),
        Mode::CpuOnly => RouterConfig::paper_cpu(),
    };
    let mut spec = TrafficSpec {
        kind: TrafficKind::Ipv4Udp,
        frame_len: opts.frame,
        offered_bits: (opts.gbps * 1e9) as u64,
        ports: 8,
        seed: 42,
        flows: None,
        ..TrafficSpec::default()
    };
    let duration = opts.ms * MILLIS;
    let tc = config_from_env_or_all();
    match opts.app.as_str() {
        "ipv4" => traced(tc, || {
            Router::run(cfg, workloads::ipv4_app(50_000, 1), spec, duration)
        }),
        "ipv6" => {
            spec.kind = TrafficKind::Ipv6Udp;
            if opts.frame == 64 {
                spec.frame_len = 78; // minimum IPv6 UDP frame
            }
            traced(tc, || {
                Router::run(cfg, workloads::ipv6_app(50_000, 1), spec, duration)
            })
        }
        "openflow" => {
            spec.flows = Some(4096);
            let app = workloads::openflow_app(&spec, 4096, 0);
            traced(tc, || Router::run(cfg, app, spec, duration))
        }
        "ipsec" => {
            cfg.concurrent_copy = cfg.mode == Mode::CpuGpu;
            traced(tc, || {
                Router::run(
                    cfg,
                    IpsecApp::new([0x42; 16], 0xD00D, b"reproduce"),
                    spec,
                    duration,
                )
            })
        }
        "minimal" => traced(tc, || {
            Router::run(
                cfg,
                MinimalApp::new(ForwardPattern::SameNode, 8),
                spec,
                duration,
            )
        }),
        // The stateful NFV tier runs its standard load: IMIX frame
        // blend, 512 heavy-tailed keyed flows (--frame is ignored).
        "nat" => {
            spec = TrafficSpec::imix(opts.gbps, 42).with_heavy_tail(512, 3);
            traced(tc, || {
                Router::run(cfg, NatApp::new(8, 2, 1 << 20, 0), spec, duration)
            })
        }
        "lb" => {
            spec = TrafficSpec::imix(opts.gbps, 42).with_heavy_tail(512, 3);
            let backends: Vec<Backend> = (0..16)
                .map(|i| Backend {
                    ip: 0x0A63_0001 + i,
                    port: 8080,
                })
                .collect();
            traced(tc, || {
                Router::run(cfg, LbApp::new(backends, 8, 2, 1 << 20, 0), spec, duration)
            })
        }
        other => {
            eprintln!("reproduce: unknown app {other} (ipv4|ipv6|openflow|ipsec|minimal|nat|lb)");
            std::process::exit(2);
        }
    }
}

fn main() {
    let opts = parse_args();
    let duration = opts.ms * MILLIS;
    let (report, collector) = run(&opts);

    println!(
        "app={} mode={} offered={:.1} Gbps frame={} window={} ms",
        opts.app,
        match opts.mode {
            Mode::CpuGpu => "gpu",
            Mode::CpuOnly => "cpu",
        },
        report.in_gbps(),
        opts.frame,
        opts.ms
    );
    println!(
        "delivered={:.1} Gbps ({:.1}% of offered) p50={} us rx_drops={} kernels={}",
        report.out_gbps(),
        report.delivery_ratio() * 100.0,
        report.latency.p50() / 1000,
        report.rx_drops,
        report.gpu_kernels
    );
    println!();

    // Flat metrics summary over the whole run.
    let (events, unmatched) = collector.resolved();
    let summary = summarize(&events, duration);
    print!("{}", summary.render());
    if unmatched > 0 || collector.dropped > 0 {
        println!(
            "(unmatched spans: {unmatched}, ring-evicted events: {})",
            collector.dropped
        );
    }

    // Per-lane busy/idle: on every stage lane the span durations plus
    // idle time sum exactly to the virtual run time.
    println!();
    println!(
        "{:>5} {:>12} {:>12} {:>8}   (stage lanes; busy+idle = {} ns)",
        "lane", "busy_us", "idle_us", "busy%", duration
    );
    for acc in stage_lane_accounting(&events, duration) {
        assert_eq!(acc.busy + acc.idle, duration);
        println!(
            "{:>5} {:>12.1} {:>12.1} {:>7.1}%",
            acc.lane,
            acc.busy as f64 / 1e3,
            acc.idle as f64 / 1e3,
            acc.busy as f64 / duration as f64 * 100.0
        );
    }

    if let Some(path) = &opts.trace_out {
        let bytes = write_chrome(&collector, path).unwrap_or_else(|e| {
            eprintln!("reproduce: cannot write {path}: {e}");
            std::process::exit(1);
        });
        // Validate the dump by re-parsing it and re-running the lane
        // accounting on the parsed events.
        let json = std::fs::read_to_string(path).expect("just written");
        let parsed = ps_trace::chrome::parse(&json).unwrap_or_else(|| {
            eprintln!("reproduce: {path} failed to re-parse as trace JSON");
            std::process::exit(1);
        });
        let spans = parsed.iter().filter(|e| e.ph == 'X').count();
        for acc in stage_lane_accounting(&events, duration) {
            assert_eq!(
                acc.busy + acc.idle,
                duration,
                "lane {} stage time does not account for the run",
                acc.lane
            );
        }
        println!();
        println!(
            "trace: {path} ({bytes} bytes, {} events, {spans} spans) — \
             load in chrome://tracing or https://ui.perfetto.dev",
            parsed.len()
        );
    }
}
