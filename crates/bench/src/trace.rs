//! Harness-side tracing glue: run a simulation under an installed
//! collector, export the timeline, and do the busy/idle accounting
//! the `reproduce` binary prints.

use ps_trace::{Category, Collector, Event, Phase, TraceConfig};

/// Run `f` with a fresh collector installed on this thread; returns
/// `f`'s result and the filled collector. Any previously installed
/// collector is restored afterwards.
pub fn traced<T>(cfg: TraceConfig, f: impl FnOnce() -> T) -> (T, Collector) {
    let prior = ps_trace::install(Collector::new(cfg));
    let out = f();
    let collector = ps_trace::take().expect("collector installed above");
    if let Some(p) = prior {
        ps_trace::install(p);
    }
    (out, collector)
}

/// The trace configuration the harness runs with: `PS_TRACE` /
/// `PS_TRACE_CAP` when set, everything otherwise.
pub fn config_from_env_or_all() -> TraceConfig {
    TraceConfig::from_env().unwrap_or_else(TraceConfig::all)
}

/// Export `collector` as Chrome `trace_event` JSON into `path`;
/// returns the byte length written.
pub fn write_chrome(collector: &Collector, path: &str) -> std::io::Result<usize> {
    let json = ps_trace::chrome::export(collector);
    std::fs::write(path, &json)?;
    Ok(json.len())
}

/// Busy/idle accounting for one pipeline-stage lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneAccount {
    /// Stage lane (worker index, then master gather/shade lanes).
    pub lane: u32,
    /// Summed `stage` span time clamped to `[0, window]` (ns).
    pub busy: u64,
    /// `window - busy` (ns).
    pub idle: u64,
}

/// Per-lane accounting over the `stage` category: stage spans on one
/// lane are disjoint by construction (each simulated thread works one
/// interval at a time), so clamped busy + idle always sums exactly to
/// `window`. This is the "durations sum to the virtual run time"
/// invariant the reproduce binary checks after re-parsing its own
/// dump.
pub fn stage_lane_accounting(events: &[Event], window: u64) -> Vec<LaneAccount> {
    let mut lanes: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
    for ev in events {
        if ev.cat != Category::Stage {
            continue;
        }
        let Phase::Complete { dur } = ev.phase else {
            continue;
        };
        let start = ev.ts.min(window);
        let end = (ev.ts + dur).min(window);
        *lanes.entry(ev.lane).or_insert(0) += end - start;
    }
    lanes
        .into_iter()
        .map(|(lane, busy)| LaneAccount {
            lane,
            busy,
            idle: window - busy,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traced_restores_prior_collector() {
        ps_trace::install(Collector::new(TraceConfig::all()));
        ps_trace::complete(Category::Io, "outer", 0, 0, 1, Vec::new);
        let ((), inner) = traced(TraceConfig::all(), || {
            ps_trace::complete(Category::Io, "inner", 0, 0, 1, Vec::new);
        });
        assert_eq!(inner.len(), 1);
        assert_eq!(inner.events().next().unwrap().name, "inner");
        let outer = ps_trace::take().unwrap();
        assert_eq!(outer.len(), 1);
        assert_eq!(outer.events().next().unwrap().name, "outer");
    }

    #[test]
    fn lane_accounting_sums_to_window() {
        let mut c = Collector::new(TraceConfig::all());
        c.complete(Category::Stage, "a", 0, 100, 400, vec![]);
        c.complete(Category::Stage, "b", 0, 400, 600, vec![]);
        // Runs past the window: clamped.
        c.complete(Category::Stage, "c", 1, 900, 1_500, vec![]);
        // Non-stage spans are ignored even when overlapping.
        c.complete(Category::Gpu, "kernel", 0, 0, 1_000, vec![]);
        let (events, _) = c.resolved();
        let acc = stage_lane_accounting(&events, 1_000);
        assert_eq!(
            acc,
            vec![
                LaneAccount {
                    lane: 0,
                    busy: 500,
                    idle: 500
                },
                LaneAccount {
                    lane: 1,
                    busy: 100,
                    idle: 900
                },
            ]
        );
        for a in &acc {
            assert_eq!(a.busy + a.idle, 1_000);
        }
    }
}
