//! `ps-bench --baseline` / `--compare` — the wall-clock regression
//! harness.
//!
//! Everything else in ps-bench measures the *modeled* router in
//! virtual time; this module measures *the simulator itself* — how
//! many wall-clock nanoseconds we burn per simulated packet. The
//! functional kernels (AES-CTR, HMAC-SHA1, lookups) and the chunk
//! pipeline run for real, so their wall-clock cost bounds how large a
//! sweep we can afford to reproduce. `--baseline` records a
//! `BENCH_baseline.json` snapshot (per-workload ns/pkt and pkts/sec);
//! `--compare` re-runs the same workloads and fails loudly when the
//! current build is slower than the recorded baseline by more than
//! `PS_BASELINE_TOLERANCE` (default 1.5×).
//!
//! The workload grid covers the four paper applications at the two
//! edge frame sizes (64 B and 1514 B), the stateful NFV pair (NAT and
//! the L4 load balancer under the IMIX + heavy-tail load, `nat/imix`
//! and `lb/imix`) plus the two headline sweeps the
//! perf work is judged on: the Figure 5 batching sweep (IPv4 minimal
//! forwarding) and the IPsec 64 B sweep (both modes — crypto-bound),
//! and a `shards/*` scaling matrix running one node-local workload at
//! shards ∈ {1, 2, 4, 8} under identical offered load, so the
//! snapshot records what the parallel data plane (DESIGN.md §9) buys
//! on the recording host. Scaling rows are gated on *ratios between
//! rows* (speedup when the host has the hardware threads to scale,
//! bounded runtime overhead when it does not — the header's
//! `host_threads` field records which), never on absolute ns/pkt
//! drift; see [`scaling_verdicts`].
//! Virtual-time results are deterministic per seed, so the `pkts`
//! column is byte-stable across builds and ns/pkt ratios compare
//! apples to apples. Two row families reuse the grid to gate
//! *virtual-time* quantities instead of wall clock: `bytes-h2d/*`
//! (staging bytes per packet) and `latency-p99/*` (p99 RX→TX sojourn
//! per latency mode) — deterministic numbers ride the ns/pkt field,
//! so `--compare` reproduces them exactly and drift is a regression.
//!
//! If `PS_BASELINE_BEFORE` names an earlier snapshot when `--baseline`
//! runs, each workload also records `before_ns_per_pkt` and `speedup`
//! relative to it — that is how the checked-in baseline carries its
//! before/after history.

use std::fmt::Write as _;
use std::time::Instant;

use ps_core::apps::{ForwardPattern, IpsecApp, LbApp, MinimalApp, NatApp};
use ps_core::{App, Router, RouterConfig};
use ps_pktgen::{TrafficKind, TrafficSpec};
use ps_sim::MILLIS;

use crate::{header, window_ms, workloads};

/// One measured workload: wall-clock cost of simulating it.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Stable workload id (`app/frame` or `sweep/...`).
    pub id: String,
    /// Wall-clock seconds spent inside `Router::run`.
    pub wall_secs: f64,
    /// Delivered packets (virtual-time result; seed-deterministic).
    pub pkts: u64,
    /// Wall-clock nanoseconds per delivered packet.
    pub ns_per_pkt: f64,
    /// Delivered packets per wall-clock second.
    pub pkts_per_sec: f64,
}

fn sample(id: &str, wall_secs: f64, pkts: u64) -> Sample {
    let pkts_f = (pkts as f64).max(1.0);
    Sample {
        id: id.to_string(),
        wall_secs,
        pkts,
        ns_per_pkt: wall_secs * 1e9 / pkts_f,
        pkts_per_sec: pkts_f / wall_secs.max(1e-12),
    }
}

fn spec(kind: TrafficKind, frame_len: usize, gbps: f64) -> TrafficSpec {
    TrafficSpec {
        kind,
        frame_len,
        offered_bits: (gbps * 1e9) as u64,
        ports: 8,
        seed: 42,
        flows: None,
        ..TrafficSpec::default()
    }
}

/// How many times to repeat each workload (`PS_BASELINE_REPEATS`,
/// default 1). The recorded wall time is the *minimum* across
/// repeats: scheduler noise and neighbor contention only ever add
/// wall time, and the virtual-time result is identical per run, so
/// min-of-N estimates the true cost of the build, not of the machine's
/// mood. Checked-in baselines should use at least 3.
fn repeats() -> usize {
    std::env::var("PS_BASELINE_REPEATS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1)
        .max(1)
}

/// Run one router configuration and return (wall seconds, delivered),
/// taking the minimum wall across [`repeats`] runs. The app is
/// rebuilt per run (outside the timed section), and the deterministic
/// delivered count is asserted stable.
fn run_once<A: App + Send>(
    cfg: RouterConfig,
    mk_app: impl Fn() -> A,
    spec: TrafficSpec,
    window: u64,
) -> (f64, u64) {
    run_at_shards(
        cfg,
        mk_app,
        spec,
        window,
        ps_core::router::shards_from_env(),
    )
}

/// [`run_once`] with the shard count pinned explicitly instead of
/// inherited from `PS_SHARDS` — the `shards/*` rows measure 1 vs 2
/// within one grid run.
fn run_at_shards<A: App + Send>(
    cfg: RouterConfig,
    mk_app: impl Fn() -> A,
    spec: TrafficSpec,
    window: u64,
    shards: usize,
) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut pkts = 0;
    for i in 0..repeats() {
        let app = mk_app();
        let t0 = Instant::now();
        let report = Router::run_with_shards(cfg, app, spec, window, shards);
        let wall = t0.elapsed().as_secs_f64();
        best = best.min(wall);
        if i == 0 {
            pkts = report.delivered.packets;
        } else {
            assert_eq!(
                pkts, report.delivered.packets,
                "virtual-time result must not vary across repeats"
            );
        }
    }
    (best, pkts)
}

/// The baseline workload grid. Table sizes are scaled (not
/// paper-sized) so setup cost stays small relative to the data plane;
/// what matters here is that the set is stable across builds.
pub fn run_workloads() -> Vec<Sample> {
    let window = window_ms() * MILLIS;
    let mut out = Vec::new();

    // The four stateless applications at the two edge frame sizes, CPU+GPU
    // pipeline (paper_gpu): this is the configuration every fig11
    // sweep spends its time in.
    for &frame in &[64usize, 1514] {
        let tag = |app: &str| format!("{app}/{frame}B");

        let (w, p) = run_once(
            RouterConfig::paper_gpu(),
            || workloads::ipv4_app(50_000, 1),
            spec(TrafficKind::Ipv4Udp, frame, 80.0),
            window,
        );
        out.push(sample(&tag("ipv4"), w, p));

        let (w, p) = run_once(
            RouterConfig::paper_gpu(),
            || workloads::ipv6_app(20_000, 2),
            spec(TrafficKind::Ipv6Udp, frame, 80.0),
            window,
        );
        out.push(sample(&tag("ipv6"), w, p));

        let mut ipsec_cfg = RouterConfig::paper_gpu();
        ipsec_cfg.concurrent_copy = true; // §5.4: streams pay off for IPsec
        let (w, p) = run_once(
            ipsec_cfg,
            || IpsecApp::new([0x42; 16], 0xD00D, b"ps-bench-hmac-key"),
            spec(TrafficKind::Ipv4Udp, frame, 80.0),
            window,
        );
        out.push(sample(&tag("ipsec"), w, p));

        let mut of_spec = spec(TrafficKind::Ipv4Udp, frame, 80.0);
        of_spec.flows = Some(8192);
        let (w, p) = run_once(
            RouterConfig::paper_gpu(),
            || workloads::openflow_app(&of_spec, 8192, 32),
            of_spec,
            window,
        );
        out.push(sample(&tag("openflow"), w, p));
    }

    // The stateful NFV tier (DESIGN.md §10) under its standard load:
    // IMIX blend, 512 heavy-tailed keyed flows. The cuckoo probes and
    // incremental rewrites run for real, so these rows bound the
    // wall-clock cost of the per-packet state machinery.
    {
        let nfv_spec = crate::experiments::nfv::nfv_spec(40.0, 11);
        let (w, p) = run_once(
            RouterConfig::paper_gpu(),
            || NatApp::new(8, 2, 1 << 20, 0),
            nfv_spec,
            window,
        );
        out.push(sample("nat/imix", w, p));
        let (w, p) = run_once(
            RouterConfig::paper_gpu(),
            || LbApp::new(crate::experiments::nfv::backend_pool(), 8, 2, 1 << 20, 0),
            nfv_spec,
            window,
        );
        out.push(sample("lb/imix", w, p));
    }

    // Figure 5 sweep: minimal forwarding, 1 core / 2 ports, 64 B,
    // batch 1..128 — the io-engine wall-clock headline.
    {
        let mut wall = 0.0;
        let mut pkts = 0;
        for &batch in &[1usize, 2, 4, 8, 16, 32, 64, 128] {
            let (w, p) = run_once(
                RouterConfig::fig5(batch),
                || MinimalApp::new(ForwardPattern::SameNode, 2),
                TrafficSpec {
                    kind: TrafficKind::Ipv4Udp,
                    frame_len: 64,
                    offered_bits: 20_000_000_000,
                    ports: 2,
                    seed: 42,
                    flows: None,
                    ..TrafficSpec::default()
                },
                window,
            );
            wall += w;
            pkts += p;
        }
        out.push(sample("sweep/fig5-ipv4-64B", wall, pkts));
    }

    // IPsec 64 B sweep, both modes — the crypto wall-clock headline
    // (fig11d's worst cell).
    {
        let mut wall = 0.0;
        let mut pkts = 0;
        for gpu in [false, true] {
            let cfg = if gpu {
                let mut c = RouterConfig::paper_gpu();
                c.concurrent_copy = true;
                c
            } else {
                RouterConfig::paper_cpu()
            };
            let (w, p) = run_once(
                cfg,
                || IpsecApp::new([0x42; 16], 0xD00D, b"ps-bench-hmac-key"),
                spec(TrafficKind::Ipv4Udp, 64, 80.0),
                window,
            );
            wall += w;
            pkts += p;
        }
        out.push(sample("sweep/ipsec-64B", wall, pkts));
    }

    // Staging bytes-per-packet ledger: the PCIe traffic each staging
    // mode moves per packet, as deterministic virtual-time rows. See
    // `staging_bytes_rows` for why they ride the ns_per_pkt field.
    out.extend(staging_bytes_rows(window));

    // Sojourn-tail ledger: p99 RX→TX residence per latency mode, as
    // deterministic virtual-time rows. See `latency_p99_rows`.
    out.extend(latency_p99_rows(window));

    // Sharded data plane scaling matrix (DESIGN.md §9): one
    // node-local workload under identical offered load at every shard
    // count. See `run_scaling_matrix`.
    out.extend(run_scaling_matrix(window));

    out
}

/// Host→device staging bytes per packet for IPv4 and OpenFlow under
/// each staging mode, recorded as `bytes-h2d/<app>-64B-<mode>` rows.
/// The id is self-describing: the `ns_per_pkt` field carries *bytes
/// per staged packet*, a deterministic virtual-time quantity — so
/// `--compare` reproduces it exactly (ratio 1.0) and any change to
/// what the column layer ships over PCIe trips the tolerance gate
/// like a wall-clock regression would.
pub fn staging_bytes_rows(window: u64) -> Vec<Sample> {
    use ps_core::Staging;
    let mut out = Vec::new();
    for mode in [Staging::Frames, Staging::Soa, Staging::DirectDma] {
        let mut cfg = RouterConfig::paper_gpu();
        cfg.staging = mode;

        let r = Router::run(
            cfg,
            workloads::ipv4_app(50_000, 1),
            spec(TrafficKind::Ipv4Udp, 64, 80.0),
            window,
        );
        out.push(bytes_sample(
            &format!("bytes-h2d/ipv4-64B-{}", mode.label()),
            &r,
        ));

        let mut of_spec = spec(TrafficKind::Ipv4Udp, 64, 80.0);
        of_spec.flows = Some(8192);
        let r = Router::run(
            cfg,
            workloads::openflow_app(&of_spec, 8192, 32),
            of_spec,
            window,
        );
        out.push(bytes_sample(
            &format!("bytes-h2d/openflow-64B-{}", mode.label()),
            &r,
        ));
    }
    out
}

/// A [`Sample`] whose `ns_per_pkt` field carries h2d bytes per staged
/// packet (see [`staging_bytes_rows`]).
fn bytes_sample(id: &str, r: &ps_core::RouterReport) -> Sample {
    let (h2d, _, pkts) = r.staging.unwrap_or((0, 0, 0));
    let bpp = h2d as f64 / (pkts as f64).max(1.0);
    Sample {
        id: id.to_string(),
        wall_secs: 0.0,
        pkts,
        ns_per_pkt: bpp,
        pkts_per_sec: 0.0,
    }
}

/// p99 RX→TX sojourn for IPv4 64 B under the fixed and adaptive
/// latency profiles at half load (20 Gbps) and near-ceiling load
/// (40 Gbps), recorded as `latency-p99/ipv4-64B-<load>-<mode>` rows.
/// Like [`staging_bytes_rows`], the `ns_per_pkt` field carries a
/// deterministic virtual-time quantity — p99 sojourn in nanoseconds —
/// so `--compare` reproduces it exactly (ratio 1.0) and any change
/// that fattens the latency tail trips the tolerance gate like a
/// wall-clock regression would. The pair of rows per load also pins
/// the governance claim itself: adaptive stays far below fixed at
/// half load and converges to it near the ceiling.
pub fn latency_p99_rows(window: u64) -> Vec<Sample> {
    use ps_core::LatencyConfig;
    let mut out = Vec::new();
    for (load_tag, gbps) in [("half", 20.0), ("full", 40.0)] {
        for (mode_tag, latency) in [
            ("fixed", LatencyConfig::off()),
            ("adaptive", LatencyConfig::adaptive()),
        ] {
            let mut cfg = RouterConfig::paper_gpu();
            cfg.latency = latency;
            let r = Router::run(
                cfg,
                workloads::ipv4_app(50_000, 1),
                spec(TrafficKind::Ipv4Udp, 64, gbps),
                window,
            );
            out.push(Sample {
                id: format!("latency-p99/ipv4-64B-{load_tag}-{mode_tag}"),
                wall_secs: 0.0,
                pkts: r.delivered.packets,
                ns_per_pkt: r.sojourn.p99() as f64,
                pkts_per_sec: 0.0,
            });
        }
    }
    out
}

/// The shard counts the scaling matrix measures.
pub const SCALING_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The scaling workload: a wide box with one NUMA domain per shard at
/// the largest count (8 domains, two ports and one worker core each)
/// so every row in the matrix is a *real* N-way split, not a clamped
/// two-way run, and the offered load is byte-identical across rows —
/// the methodological requirement for a scaling claim.
fn scaling_workload() -> (RouterConfig, TrafficSpec) {
    let mut cfg = RouterConfig::paper_cpu();
    cfg.nodes = 8;
    cfg.workers_per_node = 1;
    cfg.ports = 16;
    let mut sp = spec(TrafficKind::Ipv4Udp, 64, 80.0);
    sp.ports = 16;
    // Keyed flows make the tuple a pure function of the flow id, so a
    // replica skips an unhosted packet with zero RNG work — the
    // replay overhead the serialized-host gate bounds is then mostly
    // the per-skip event round-trip, the part the runtime owns.
    sp.flows = Some(8192);
    (cfg, sp)
}

/// Run the replicated minimal workload at shards ∈ {1, 2, 4, 8} under
/// the identical offered load and return one `shards/minimal-64B-xN`
/// sample per count. The virtual-time result is asserted identical
/// across counts, so the wall-clock ratios between rows *are* the
/// parallel speedup (or, on a host without enough hardware threads,
/// the honestly-recorded runtime overhead).
///
/// Unlike the rest of the grid, the repeats here are *interleaved*
/// (x1, x2, x4, x8, x1, x2, ...) instead of run back to back: the
/// verdicts gate on ratios *between* rows, so a patch of neighbor
/// contention that lands entirely inside one row's repeats would skew
/// the ratio. Round-robin spreads ambient drift across every row
/// before the per-row minimum is taken.
pub fn run_scaling_matrix(window: u64) -> Vec<Sample> {
    let (cfg, sp) = scaling_workload();
    let mut best = [f64::INFINITY; SCALING_COUNTS.len()];
    let mut delivered: Option<u64> = None;
    for _ in 0..repeats() {
        for (i, &shards) in SCALING_COUNTS.iter().enumerate() {
            let app = MinimalApp::new(ForwardPattern::SameNode, 16);
            let t0 = Instant::now();
            let report = Router::run_with_shards(cfg, app, sp, window, shards);
            best[i] = best[i].min(t0.elapsed().as_secs_f64());
            let p = report.delivered.packets;
            match delivered {
                None => delivered = Some(p),
                Some(d) => assert_eq!(
                    d, p,
                    "every shard count must deliver the identical virtual-time result"
                ),
            }
        }
    }
    let pkts = delivered.unwrap_or(0);
    SCALING_COUNTS
        .iter()
        .zip(best)
        .map(|(&shards, w)| sample(&format!("shards/minimal-64B-x{shards}"), w, pkts))
        .collect()
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.000".to_string()
    }
}

/// Serialize samples to the `ps-bench-baseline/v1` JSON schema. When
/// `before` has an entry for a sample's id, the record also carries
/// `before_ns_per_pkt` and `speedup` (before ÷ now).
pub fn to_json(samples: &[Sample], before: &[(String, f64)]) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"schema\": \"ps-bench-baseline/v1\",");
    let _ = writeln!(s, "  \"window_ms\": {},", window_ms());
    let _ = writeln!(s, "  \"shards\": {},", ps_core::router::shards_from_env());
    let _ = writeln!(s, "  \"host_threads\": {},", host_threads());
    s.push_str("  \"workloads\": [\n");
    for (i, w) in samples.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"id\": \"{}\", \"wall_ms\": {}, \"pkts\": {}, \"ns_per_pkt\": {}, \"pkts_per_sec\": {}",
            w.id,
            fmt_f64(w.wall_secs * 1e3),
            w.pkts,
            fmt_f64(w.ns_per_pkt),
            fmt_f64(w.pkts_per_sec),
        );
        if let Some((_, prev)) = before.iter().find(|(id, _)| *id == w.id) {
            let _ = write!(
                s,
                ", \"before_ns_per_pkt\": {}, \"speedup\": {}",
                fmt_f64(*prev),
                fmt_f64(prev / w.ns_per_pkt.max(1e-12)),
            );
        }
        s.push_str(if i + 1 == samples.len() {
            "}\n"
        } else {
            "},\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Parse `(id, ns_per_pkt)` pairs back out of a baseline file. This
/// is not a JSON parser — it reads exactly the flat schema `to_json`
/// writes (and that shape is pinned by a test), which keeps the
/// workspace free of a real parser dependency.
pub fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for (at, _) in text.match_indices("\"id\": \"") {
        let rest = &text[at + 7..];
        let Some(id_end) = rest.find('"') else {
            continue;
        };
        let id = &rest[..id_end];
        let Some(np) = rest.find("\"ns_per_pkt\": ") else {
            continue;
        };
        let num = &rest[np + 14..];
        let end = num
            .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
            .unwrap_or(num.len());
        if let Ok(v) = num[..end].parse::<f64>() {
            out.push((id.to_string(), v));
        }
    }
    out
}

fn print_table(samples: &[Sample]) {
    println!(
        "{:<22} {:>9} {:>10} {:>11} {:>12}",
        "workload", "wall ms", "pkts", "ns/pkt", "pkts/sec"
    );
    for s in samples {
        println!(
            "{:<22} {:>9.1} {:>10} {:>11.1} {:>12.0}",
            s.id,
            s.wall_secs * 1e3,
            s.pkts,
            s.ns_per_pkt,
            s.pkts_per_sec
        );
    }
}

/// `--baseline`: run the grid and write the JSON snapshot.
pub fn write_baseline(path: &str) -> std::io::Result<()> {
    header("Wall-clock baseline (ns of host time per simulated packet)");
    let samples = run_workloads();
    print_table(&samples);
    let before = match std::env::var("PS_BASELINE_BEFORE") {
        Ok(prev_path) => parse_baseline(&std::fs::read_to_string(&prev_path)?),
        Err(_) => Vec::new(),
    };
    if !before.is_empty() {
        for s in &samples {
            if let Some((_, prev)) = before.iter().find(|(id, _)| *id == s.id) {
                println!(
                    "{:<22} speedup vs {}: {:.2}x",
                    s.id,
                    std::env::var("PS_BASELINE_BEFORE").unwrap_or_default(),
                    prev / s.ns_per_pkt.max(1e-12)
                );
            }
        }
    }
    std::fs::write(path, to_json(&samples, &before))?;
    println!("baseline: wrote {path}");
    Ok(())
}

/// Hardware threads on this host (the `host_threads` header field and
/// the switch between the two scaling-gate directions).
fn host_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Parse a scaling row id (`shards/<workload>-xN`) into `N`.
fn scaling_count(id: &str) -> Option<usize> {
    if !id.starts_with("shards/") {
        return None;
    }
    let (_, tail) = id.rsplit_once("-x")?;
    tail.parse().ok().filter(|&n| n >= 1)
}

/// Minimum speedup a scaling row must show over its x1 row when the
/// host can actually run that many threads (`PS_SCALING_MIN`,
/// default 1.2).
fn scaling_min() -> f64 {
    std::env::var("PS_SCALING_MIN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.2)
}

/// Maximum runtime-overhead ratio (xN ns/pkt over x1 ns/pkt) a
/// scaling row may show when the host *cannot* run that many threads
/// (`PS_SCALING_OVERHEAD`, default 1.5) — on a small box the rows
/// serialize, so the honest gate is "the parallel machinery stays
/// cheap", not a speedup that is physically impossible there.
fn scaling_overhead() -> f64 {
    std::env::var("PS_SCALING_OVERHEAD")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.5)
}

/// One scaling-gate verdict: row id, pass/fail, and the printable
/// explanation (which gate applied and with what measured ratio).
pub struct ScalingVerdict {
    /// The `shards/...-xN` row the verdict is about.
    pub id: String,
    /// Whether the row passed its gate.
    pub ok: bool,
    /// Human-readable gate description for the report table.
    pub detail: String,
}

/// Apply the direction-aware scaling gates to the `shards/*-xN` rows
/// of a sample set. Each xN row (N > 1) is judged **against the x1
/// row of the same run** — identical offered load, identical build,
/// identical host — never against the recorded baseline's absolute
/// ns/pkt (wall-clock drift between machines is exactly what a
/// scaling claim must be immune to):
///
/// * `threads_for(N) >= N` (the host can genuinely run N-wide): the
///   row must show `pkts_per_sec >= min_speedup x` the x1 row.
/// * otherwise (rows serialize on this host): the row must stay
///   within `max_overhead x` the x1 row's ns/pkt.
///
/// `threads_for` is injected so tests can exercise both directions on
/// any machine; production callers pass [`ps_sim::default_shard_threads`].
pub fn scaling_verdicts(
    samples: &[Sample],
    min_speedup: f64,
    max_overhead: f64,
    threads_for: &dyn Fn(usize) -> usize,
) -> Vec<ScalingVerdict> {
    let Some(base) = samples.iter().find(|s| scaling_count(&s.id) == Some(1)) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for s in samples {
        let Some(n) = scaling_count(&s.id) else {
            continue;
        };
        if n == 1 {
            continue;
        }
        let (ok, detail) = if threads_for(n) >= n {
            let speedup = s.pkts_per_sec / base.pkts_per_sec.max(1e-12);
            (
                speedup >= min_speedup,
                format!("speedup {speedup:.2}x vs x1 (need >= {min_speedup:.2}x)"),
            )
        } else {
            let ratio = s.ns_per_pkt / base.ns_per_pkt.max(1e-12);
            (
                ratio <= max_overhead,
                format!(
                    "overhead {ratio:.2}x vs x1 (serialized on {} host thread(s); need <= {max_overhead:.2}x)",
                    threads_for(n)
                ),
            )
        };
        out.push(ScalingVerdict {
            id: s.id.clone(),
            ok,
            detail,
        });
    }
    out
}

/// Print scaling verdicts and return how many failed.
fn report_scaling(samples: &[Sample]) -> usize {
    let verdicts = scaling_verdicts(samples, scaling_min(), scaling_overhead(), &|n| {
        ps_sim::default_shard_threads(n)
    });
    let mut failures = 0;
    for v in &verdicts {
        let flag = if v.ok {
            "ok"
        } else {
            failures += 1;
            "FAIL"
        };
        println!("{:<22} {:<4} {}", v.id, flag, v.detail);
    }
    failures
}

/// `--compare`: re-run the grid and report regressions against a
/// recorded baseline. Returns the number of regressed workloads.
///
/// Gates are direction-aware per row class: ordinary rows fail on
/// absolute ns/pkt drift beyond `PS_BASELINE_TOLERANCE`; scaling rows
/// (`shards/*-xN`, N > 1) are exempt from the absolute gate and fail
/// on their *in-run* ratio to the x1 row instead (see
/// [`scaling_verdicts`]) — a known-slower xN row must fail even when
/// its absolute ns/pkt matches the recorded baseline perfectly, and a
/// uniformly slower machine must not fail the scaling claim.
pub fn compare(path: &str) -> std::io::Result<usize> {
    let tolerance = std::env::var("PS_BASELINE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.5);
    let recorded = parse_baseline(&std::fs::read_to_string(path)?);
    header(&format!(
        "Wall-clock compare vs {path} (fail if ns/pkt > {tolerance:.2}x baseline)"
    ));
    let samples = run_workloads();
    println!(
        "{:<22} {:>11} {:>11} {:>7}",
        "workload", "base ns/pkt", "now ns/pkt", "ratio"
    );
    let mut regressions = 0;
    for s in &samples {
        if scaling_count(&s.id).is_some_and(|n| n > 1) {
            println!(
                "{:<22} {:>11} {:>11.1}   (ratio-gated below)",
                s.id, "-", s.ns_per_pkt
            );
            continue;
        }
        match recorded.iter().find(|(id, _)| *id == s.id) {
            Some((_, base)) => {
                let ratio = s.ns_per_pkt / base.max(1e-12);
                let flag = if ratio > tolerance {
                    regressions += 1;
                    "  REGRESSION"
                } else {
                    ""
                };
                println!(
                    "{:<22} {:>11.1} {:>11.1} {:>6.2}x{flag}",
                    s.id, base, s.ns_per_pkt, ratio
                );
            }
            None => println!("{:<22} {:>11} {:>11.1}   (new)", s.id, "-", s.ns_per_pkt),
        }
    }
    regressions += report_scaling(&samples);
    if regressions > 0 {
        println!("{regressions} workload(s) regressed beyond {tolerance:.2}x");
    } else {
        println!("no regressions beyond {tolerance:.2}x");
    }
    Ok(regressions)
}

/// `--scaling [out.json]`: run only the shard scaling matrix under
/// identical offered load, apply the direction-aware gates, and
/// optionally write the rows as a baseline-schema JSON artifact.
/// Returns the number of failed gates.
pub fn scaling(path: Option<&str>) -> std::io::Result<usize> {
    header("Shard scaling matrix (identical offered load, wall-clock)");
    let samples = run_scaling_matrix(window_ms() * MILLIS);
    print_table(&samples);
    println!("host threads: {}", host_threads());
    let failures = report_scaling(&samples);
    if let Some(p) = path {
        std::fs::write(p, to_json(&samples, &[]))?;
        println!("scaling: wrote {p}");
    }
    Ok(failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake(id: &str, ns: f64) -> Sample {
        Sample {
            id: id.to_string(),
            wall_secs: 0.5,
            pkts: 1000,
            ns_per_pkt: ns,
            pkts_per_sec: 2000.0,
        }
    }

    #[test]
    fn json_round_trips_through_parser() {
        let samples = vec![fake("ipv4/64B", 512.25), fake("sweep/ipsec-64B", 2048.5)];
        let json = to_json(&samples, &[]);
        let parsed = parse_baseline(&json);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "ipv4/64B");
        assert!((parsed[0].1 - 512.25).abs() < 1e-9);
        assert_eq!(parsed[1].0, "sweep/ipsec-64B");
        assert!((parsed[1].1 - 2048.5).abs() < 1e-9);
    }

    #[test]
    fn before_numbers_embed_speedup() {
        let samples = vec![fake("ipv4/64B", 100.0)];
        let json = to_json(&samples, &[("ipv4/64B".to_string(), 400.0)]);
        assert!(json.contains("\"before_ns_per_pkt\": 400.000"));
        assert!(json.contains("\"speedup\": 4.000"));
        // The parser still reads the *current* ns/pkt, not the before.
        let parsed = parse_baseline(&json);
        assert!((parsed[0].1 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn parser_ignores_malformed_entries() {
        assert!(parse_baseline("{}").is_empty());
        assert!(parse_baseline("\"id\": \"x/64B\" no number").is_empty());
    }

    #[test]
    fn scaling_ids_parse() {
        assert_eq!(scaling_count("shards/minimal-64B-x1"), Some(1));
        assert_eq!(scaling_count("shards/minimal-64B-x8"), Some(8));
        assert_eq!(scaling_count("ipv4/64B"), None);
        assert_eq!(scaling_count("sweep/ipsec-64B"), None);
        assert_eq!(scaling_count("shards/minimal-64B"), None);
    }

    fn scaling_row(n: usize, ns: f64) -> Sample {
        let mut s = fake(&format!("shards/minimal-64B-x{n}"), ns);
        s.pkts_per_sec = 1e9 / ns;
        s
    }

    #[test]
    fn threaded_hosts_gate_on_speedup() {
        // x2 is 1.5x faster, x4 only 1.1x: with enough host threads
        // the speedup gate passes x2 and fails x4.
        let samples = vec![
            scaling_row(1, 300.0),
            scaling_row(2, 200.0),
            scaling_row(4, 272.0),
        ];
        let v = scaling_verdicts(&samples, 1.2, 1.5, &|n| n);
        assert_eq!(v.len(), 2);
        assert!(v[0].ok, "x2 at 1.5x speedup: {}", v[0].detail);
        assert!(!v[1].ok, "x4 at 1.1x speedup: {}", v[1].detail);
    }

    #[test]
    fn serialized_hosts_gate_on_bounded_overhead() {
        // One host thread: no speedup is possible, so the gate flips
        // to bounded overhead — 1.3x passes, 1.8x fails.
        let samples = vec![
            scaling_row(1, 300.0),
            scaling_row(2, 390.0),
            scaling_row(4, 540.0),
        ];
        let v = scaling_verdicts(&samples, 1.2, 1.5, &|_| 1);
        assert_eq!(v.len(), 2);
        assert!(v[0].ok, "x2 at 1.3x overhead: {}", v[0].detail);
        assert!(!v[1].ok, "x4 at 1.8x overhead: {}", v[1].detail);
    }

    #[test]
    fn absolute_drift_does_not_trip_scaling_rows() {
        // A uniformly 2x-slower machine: every scaling ratio is
        // unchanged, so no scaling gate may fire (that is the whole
        // point of gating on in-run ratios, not recorded ns/pkt).
        let fast = vec![scaling_row(1, 300.0), scaling_row(2, 200.0)];
        let slow = vec![scaling_row(1, 600.0), scaling_row(2, 400.0)];
        for samples in [fast, slow] {
            let v = scaling_verdicts(&samples, 1.2, 1.5, &|n| n);
            assert!(v.iter().all(|x| x.ok), "ratio gates are drift-immune");
        }
    }

    #[test]
    fn missing_x1_row_yields_no_verdicts() {
        let samples = vec![scaling_row(2, 200.0)];
        assert!(scaling_verdicts(&samples, 1.2, 1.5, &|n| n).is_empty());
    }
}
