//! `ps-bench --baseline` / `--compare` — the wall-clock regression
//! harness.
//!
//! Everything else in ps-bench measures the *modeled* router in
//! virtual time; this module measures *the simulator itself* — how
//! many wall-clock nanoseconds we burn per simulated packet. The
//! functional kernels (AES-CTR, HMAC-SHA1, lookups) and the chunk
//! pipeline run for real, so their wall-clock cost bounds how large a
//! sweep we can afford to reproduce. `--baseline` records a
//! `BENCH_baseline.json` snapshot (per-workload ns/pkt and pkts/sec);
//! `--compare` re-runs the same workloads and fails loudly when the
//! current build is slower than the recorded baseline by more than
//! `PS_BASELINE_TOLERANCE` (default 1.5×).
//!
//! The workload grid covers the four applications at the two edge
//! frame sizes (64 B and 1514 B) plus the two headline sweeps the
//! perf work is judged on: the Figure 5 batching sweep (IPv4 minimal
//! forwarding) and the IPsec 64 B sweep (both modes — crypto-bound),
//! and a `shards/*` pair running one node-local workload at shards=1
//! and shards=2 so the snapshot records what the parallel data plane
//! (DESIGN.md §9) buys on the recording host.
//! Virtual-time results are deterministic per seed, so the `pkts`
//! column is byte-stable across builds and ns/pkt ratios compare
//! apples to apples.
//!
//! If `PS_BASELINE_BEFORE` names an earlier snapshot when `--baseline`
//! runs, each workload also records `before_ns_per_pkt` and `speedup`
//! relative to it — that is how the checked-in baseline carries its
//! before/after history.

use std::fmt::Write as _;
use std::time::Instant;

use ps_core::apps::{ForwardPattern, IpsecApp, MinimalApp};
use ps_core::{App, Router, RouterConfig};
use ps_pktgen::{TrafficKind, TrafficSpec};
use ps_sim::MILLIS;

use crate::{header, window_ms, workloads};

/// One measured workload: wall-clock cost of simulating it.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Stable workload id (`app/frame` or `sweep/...`).
    pub id: String,
    /// Wall-clock seconds spent inside `Router::run`.
    pub wall_secs: f64,
    /// Delivered packets (virtual-time result; seed-deterministic).
    pub pkts: u64,
    /// Wall-clock nanoseconds per delivered packet.
    pub ns_per_pkt: f64,
    /// Delivered packets per wall-clock second.
    pub pkts_per_sec: f64,
}

fn sample(id: &str, wall_secs: f64, pkts: u64) -> Sample {
    let pkts_f = (pkts as f64).max(1.0);
    Sample {
        id: id.to_string(),
        wall_secs,
        pkts,
        ns_per_pkt: wall_secs * 1e9 / pkts_f,
        pkts_per_sec: pkts_f / wall_secs.max(1e-12),
    }
}

fn spec(kind: TrafficKind, frame_len: usize, gbps: f64) -> TrafficSpec {
    TrafficSpec {
        kind,
        frame_len,
        offered_bits: (gbps * 1e9) as u64,
        ports: 8,
        seed: 42,
        flows: None,
    }
}

/// How many times to repeat each workload (`PS_BASELINE_REPEATS`,
/// default 1). The recorded wall time is the *minimum* across
/// repeats: scheduler noise and neighbor contention only ever add
/// wall time, and the virtual-time result is identical per run, so
/// min-of-N estimates the true cost of the build, not of the machine's
/// mood. Checked-in baselines should use at least 3.
fn repeats() -> usize {
    std::env::var("PS_BASELINE_REPEATS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1)
        .max(1)
}

/// Run one router configuration and return (wall seconds, delivered),
/// taking the minimum wall across [`repeats`] runs. The app is
/// rebuilt per run (outside the timed section), and the deterministic
/// delivered count is asserted stable.
fn run_once<A: App + Send>(
    cfg: RouterConfig,
    mk_app: impl Fn() -> A,
    spec: TrafficSpec,
    window: u64,
) -> (f64, u64) {
    run_at_shards(
        cfg,
        mk_app,
        spec,
        window,
        ps_core::router::shards_from_env(),
    )
}

/// [`run_once`] with the shard count pinned explicitly instead of
/// inherited from `PS_SHARDS` — the `shards/*` rows measure 1 vs 2
/// within one grid run.
fn run_at_shards<A: App + Send>(
    cfg: RouterConfig,
    mk_app: impl Fn() -> A,
    spec: TrafficSpec,
    window: u64,
    shards: usize,
) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut pkts = 0;
    for i in 0..repeats() {
        let app = mk_app();
        let t0 = Instant::now();
        let report = Router::run_with_shards(cfg, app, spec, window, shards);
        let wall = t0.elapsed().as_secs_f64();
        best = best.min(wall);
        if i == 0 {
            pkts = report.delivered.packets;
        } else {
            assert_eq!(
                pkts, report.delivered.packets,
                "virtual-time result must not vary across repeats"
            );
        }
    }
    (best, pkts)
}

/// The baseline workload grid. Table sizes are scaled (not
/// paper-sized) so setup cost stays small relative to the data plane;
/// what matters here is that the set is stable across builds.
pub fn run_workloads() -> Vec<Sample> {
    let window = window_ms() * MILLIS;
    let mut out = Vec::new();

    // The four applications at the two edge frame sizes, CPU+GPU
    // pipeline (paper_gpu): this is the configuration every fig11
    // sweep spends its time in.
    for &frame in &[64usize, 1514] {
        let tag = |app: &str| format!("{app}/{frame}B");

        let (w, p) = run_once(
            RouterConfig::paper_gpu(),
            || workloads::ipv4_app(50_000, 1),
            spec(TrafficKind::Ipv4Udp, frame, 80.0),
            window,
        );
        out.push(sample(&tag("ipv4"), w, p));

        let (w, p) = run_once(
            RouterConfig::paper_gpu(),
            || workloads::ipv6_app(20_000, 2),
            spec(TrafficKind::Ipv6Udp, frame, 80.0),
            window,
        );
        out.push(sample(&tag("ipv6"), w, p));

        let mut ipsec_cfg = RouterConfig::paper_gpu();
        ipsec_cfg.concurrent_copy = true; // §5.4: streams pay off for IPsec
        let (w, p) = run_once(
            ipsec_cfg,
            || IpsecApp::new([0x42; 16], 0xD00D, b"ps-bench-hmac-key"),
            spec(TrafficKind::Ipv4Udp, frame, 80.0),
            window,
        );
        out.push(sample(&tag("ipsec"), w, p));

        let mut of_spec = spec(TrafficKind::Ipv4Udp, frame, 80.0);
        of_spec.flows = Some(8192);
        let (w, p) = run_once(
            RouterConfig::paper_gpu(),
            || workloads::openflow_app(&of_spec, 8192, 32),
            of_spec,
            window,
        );
        out.push(sample(&tag("openflow"), w, p));
    }

    // Figure 5 sweep: minimal forwarding, 1 core / 2 ports, 64 B,
    // batch 1..128 — the io-engine wall-clock headline.
    {
        let mut wall = 0.0;
        let mut pkts = 0;
        for &batch in &[1usize, 2, 4, 8, 16, 32, 64, 128] {
            let (w, p) = run_once(
                RouterConfig::fig5(batch),
                || MinimalApp::new(ForwardPattern::SameNode, 2),
                TrafficSpec {
                    kind: TrafficKind::Ipv4Udp,
                    frame_len: 64,
                    offered_bits: 20_000_000_000,
                    ports: 2,
                    seed: 42,
                    flows: None,
                },
                window,
            );
            wall += w;
            pkts += p;
        }
        out.push(sample("sweep/fig5-ipv4-64B", wall, pkts));
    }

    // IPsec 64 B sweep, both modes — the crypto wall-clock headline
    // (fig11d's worst cell).
    {
        let mut wall = 0.0;
        let mut pkts = 0;
        for gpu in [false, true] {
            let cfg = if gpu {
                let mut c = RouterConfig::paper_gpu();
                c.concurrent_copy = true;
                c
            } else {
                RouterConfig::paper_cpu()
            };
            let (w, p) = run_once(
                cfg,
                || IpsecApp::new([0x42; 16], 0xD00D, b"ps-bench-hmac-key"),
                spec(TrafficKind::Ipv4Udp, 64, 80.0),
                window,
            );
            wall += w;
            pkts += p;
        }
        out.push(sample("sweep/ipsec-64B", wall, pkts));
    }

    // Sharded data plane (DESIGN.md §9): the same node-local workload
    // sequentially and split across one OS thread per NUMA domain.
    // The virtual-time result is byte-identical — asserted below — so
    // the ns/pkt ratio of the two rows *is* the parallel speedup
    // (≈1x on a single hardware thread; recorded honestly either way).
    {
        let mut delivered = [0u64; 2];
        for (i, shards) in [1usize, 2].into_iter().enumerate() {
            let (w, p) = run_at_shards(
                RouterConfig::paper_cpu(),
                || MinimalApp::new(ForwardPattern::SameNode, 8),
                spec(TrafficKind::Ipv4Udp, 64, 80.0),
                window,
                shards,
            );
            delivered[i] = p;
            out.push(sample(&format!("shards/minimal-64B-x{shards}"), w, p));
        }
        assert_eq!(
            delivered[0], delivered[1],
            "shards=1 and shards=2 must deliver identical virtual-time results"
        );
    }

    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.000".to_string()
    }
}

/// Serialize samples to the `ps-bench-baseline/v1` JSON schema. When
/// `before` has an entry for a sample's id, the record also carries
/// `before_ns_per_pkt` and `speedup` (before ÷ now).
pub fn to_json(samples: &[Sample], before: &[(String, f64)]) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"schema\": \"ps-bench-baseline/v1\",");
    let _ = writeln!(s, "  \"window_ms\": {},", window_ms());
    let _ = writeln!(s, "  \"shards\": {},", ps_core::router::shards_from_env());
    s.push_str("  \"workloads\": [\n");
    for (i, w) in samples.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"id\": \"{}\", \"wall_ms\": {}, \"pkts\": {}, \"ns_per_pkt\": {}, \"pkts_per_sec\": {}",
            w.id,
            fmt_f64(w.wall_secs * 1e3),
            w.pkts,
            fmt_f64(w.ns_per_pkt),
            fmt_f64(w.pkts_per_sec),
        );
        if let Some((_, prev)) = before.iter().find(|(id, _)| *id == w.id) {
            let _ = write!(
                s,
                ", \"before_ns_per_pkt\": {}, \"speedup\": {}",
                fmt_f64(*prev),
                fmt_f64(prev / w.ns_per_pkt.max(1e-12)),
            );
        }
        s.push_str(if i + 1 == samples.len() {
            "}\n"
        } else {
            "},\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Parse `(id, ns_per_pkt)` pairs back out of a baseline file. This
/// is not a JSON parser — it reads exactly the flat schema `to_json`
/// writes (and that shape is pinned by a test), which keeps the
/// workspace free of a real parser dependency.
pub fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for (at, _) in text.match_indices("\"id\": \"") {
        let rest = &text[at + 7..];
        let Some(id_end) = rest.find('"') else {
            continue;
        };
        let id = &rest[..id_end];
        let Some(np) = rest.find("\"ns_per_pkt\": ") else {
            continue;
        };
        let num = &rest[np + 14..];
        let end = num
            .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
            .unwrap_or(num.len());
        if let Ok(v) = num[..end].parse::<f64>() {
            out.push((id.to_string(), v));
        }
    }
    out
}

fn print_table(samples: &[Sample]) {
    println!(
        "{:<22} {:>9} {:>10} {:>11} {:>12}",
        "workload", "wall ms", "pkts", "ns/pkt", "pkts/sec"
    );
    for s in samples {
        println!(
            "{:<22} {:>9.1} {:>10} {:>11.1} {:>12.0}",
            s.id,
            s.wall_secs * 1e3,
            s.pkts,
            s.ns_per_pkt,
            s.pkts_per_sec
        );
    }
}

/// `--baseline`: run the grid and write the JSON snapshot.
pub fn write_baseline(path: &str) -> std::io::Result<()> {
    header("Wall-clock baseline (ns of host time per simulated packet)");
    let samples = run_workloads();
    print_table(&samples);
    let before = match std::env::var("PS_BASELINE_BEFORE") {
        Ok(prev_path) => parse_baseline(&std::fs::read_to_string(&prev_path)?),
        Err(_) => Vec::new(),
    };
    if !before.is_empty() {
        for s in &samples {
            if let Some((_, prev)) = before.iter().find(|(id, _)| *id == s.id) {
                println!(
                    "{:<22} speedup vs {}: {:.2}x",
                    s.id,
                    std::env::var("PS_BASELINE_BEFORE").unwrap_or_default(),
                    prev / s.ns_per_pkt.max(1e-12)
                );
            }
        }
    }
    std::fs::write(path, to_json(&samples, &before))?;
    println!("baseline: wrote {path}");
    Ok(())
}

/// `--compare`: re-run the grid and report regressions against a
/// recorded baseline. Returns the number of regressed workloads.
pub fn compare(path: &str) -> std::io::Result<usize> {
    let tolerance = std::env::var("PS_BASELINE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.5);
    let recorded = parse_baseline(&std::fs::read_to_string(path)?);
    header(&format!(
        "Wall-clock compare vs {path} (fail if ns/pkt > {tolerance:.2}x baseline)"
    ));
    let samples = run_workloads();
    println!(
        "{:<22} {:>11} {:>11} {:>7}",
        "workload", "base ns/pkt", "now ns/pkt", "ratio"
    );
    let mut regressions = 0;
    for s in &samples {
        match recorded.iter().find(|(id, _)| *id == s.id) {
            Some((_, base)) => {
                let ratio = s.ns_per_pkt / base.max(1e-12);
                let flag = if ratio > tolerance {
                    regressions += 1;
                    "  REGRESSION"
                } else {
                    ""
                };
                println!(
                    "{:<22} {:>11.1} {:>11.1} {:>6.2}x{flag}",
                    s.id, base, s.ns_per_pkt, ratio
                );
            }
            None => println!("{:<22} {:>11} {:>11.1}   (new)", s.id, "-", s.ns_per_pkt),
        }
    }
    if regressions > 0 {
        println!("{regressions} workload(s) regressed beyond {tolerance:.2}x");
    } else {
        println!("no regressions beyond {tolerance:.2}x");
    }
    Ok(regressions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake(id: &str, ns: f64) -> Sample {
        Sample {
            id: id.to_string(),
            wall_secs: 0.5,
            pkts: 1000,
            ns_per_pkt: ns,
            pkts_per_sec: 2000.0,
        }
    }

    #[test]
    fn json_round_trips_through_parser() {
        let samples = vec![fake("ipv4/64B", 512.25), fake("sweep/ipsec-64B", 2048.5)];
        let json = to_json(&samples, &[]);
        let parsed = parse_baseline(&json);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "ipv4/64B");
        assert!((parsed[0].1 - 512.25).abs() < 1e-9);
        assert_eq!(parsed[1].0, "sweep/ipsec-64B");
        assert!((parsed[1].1 - 2048.5).abs() < 1e-9);
    }

    #[test]
    fn before_numbers_embed_speedup() {
        let samples = vec![fake("ipv4/64B", 100.0)];
        let json = to_json(&samples, &[("ipv4/64B".to_string(), 400.0)]);
        assert!(json.contains("\"before_ns_per_pkt\": 400.000"));
        assert!(json.contains("\"speedup\": 4.000"));
        // The parser still reads the *current* ns/pkt, not the before.
        let parsed = parse_baseline(&json);
        assert!((parsed[0].1 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn parser_ignores_malformed_entries() {
        assert!(parse_baseline("{}").is_empty());
        assert!(parse_baseline("\"id\": \"x/64B\" no number").is_empty());
    }
}
