//! Workload builders shared by the harness, the wall-clock benches
//! and the integration tests.

use ps_core::apps::{Ipv4App, Ipv6App, OpenFlowApp};
use ps_lookup::route::{Route4, Route6};
use ps_lookup::synth;
use ps_net::FlowKey;
use ps_openflow::wildcard::wc;
use ps_openflow::{Action, OpenFlowSwitch, WildcardEntry};
use ps_pktgen::{Generator, TrafficSpec};

/// IPv4 routes: a RouteViews-shaped table plus two /1 "provider
/// default" routes so every randomly addressed packet forwards (the
/// paper's generator guarantees table hits by construction; we make
/// coverage explicit).
pub fn ipv4_routes(prefixes: usize, seed: u64) -> Vec<Route4> {
    let mut routes = vec![
        Route4::new(0x0000_0000, 1, 0),
        Route4::new(0x8000_0000, 1, 4),
    ];
    routes.extend(synth::routeviews_like(prefixes, 8, seed));
    routes
}

/// The full-size §6.2.1 table (282,797 prefixes).
pub fn ipv4_routes_paper(seed: u64) -> Vec<Route4> {
    ipv4_routes(synth::ROUTEVIEWS_PREFIXES, seed)
}

/// IPv6 routes: the §6.2.2 random table plus eight /5 roots covering
/// 2000::/3 so random global-unicast addresses always resolve.
pub fn ipv6_routes(prefixes: usize, seed: u64) -> Vec<Route6> {
    let mut routes: Vec<Route6> = (0..8u16)
        .map(|i| Route6::new((0b001u128 << 125) | (u128::from(i) << 122), 6, i % 8))
        .collect();
    routes.extend(synth::random_ipv6(prefixes, 8, seed));
    routes
}

/// An IPv4 app over a scaled table (full size is used by `ps-bench`,
/// smaller sizes by tests).
pub fn ipv4_app(prefixes: usize, seed: u64) -> Ipv4App {
    Ipv4App::new(&ipv4_routes(prefixes, seed))
}

/// An IPv6 app over a scaled table.
pub fn ipv6_app(prefixes: usize, seed: u64) -> Ipv6App {
    Ipv6App::new(&ipv6_routes(prefixes, seed))
}

/// An OpenFlow switch sized per the Figure 11(c) sweeps:
///
/// * `exact_flows` exact entries matching the generator's flow
///   population (traffic spec must use `flows = Some(exact_flows)`),
/// * `decoy_wildcards` never-matching wildcard rules that force full
///   scans on exact misses,
/// * one lowest-priority catch-all forwarding rule.
pub fn openflow_switch(
    spec: &TrafficSpec,
    exact_flows: u32,
    decoy_wildcards: usize,
) -> OpenFlowSwitch {
    let mut sw = OpenFlowSwitch::new();
    if exact_flows > 0 {
        for (id, key) in exact_keys(spec, exact_flows).into_iter().enumerate() {
            sw.add_exact(key, Action::Output((id % 8) as u16));
        }
    }
    for i in 0..decoy_wildcards {
        sw.add_wildcard(WildcardEntry {
            fields: wc::TP_DST | wc::NW_PROTO,
            priority: 1000 + (i % 100) as u16,
            key: FlowKey {
                tp_dst: 65_500,
                nw_proto: 0xFD, // never generated
                ..FlowKey::default()
            },
            nw_src_mask: 0,
            nw_dst_mask: 0,
            action: Action::Drop,
        });
    }
    // Lowest priority: eight /3-destination rules spreading traffic
    // across all ports (a single catch-all would serialize the whole
    // load onto one 10 GbE port).
    for i in 0..8u16 {
        sw.add_wildcard(WildcardEntry {
            fields: wc::NW_DST,
            priority: 0,
            key: FlowKey {
                nw_dst: u32::from(i) << 29,
                ..FlowKey::default()
            },
            nw_src_mask: 0,
            nw_dst_mask: 0xE000_0000,
            action: Action::Output(i),
        });
    }
    sw
}

/// The flow keys of the generator's first `n` flows as they enter the
/// switch (flow `id`'s in-port is `id % ports` because both rotate
/// with the sequence number when `flows % ports == 0`). Single pass.
pub fn exact_keys(spec: &TrafficSpec, n: u32) -> Vec<FlowKey> {
    let flows = spec.flows.expect("flow-population spec");
    assert!(n <= flows);
    assert_eq!(
        flows % u32::from(spec.ports),
        0,
        "flow count must be a multiple of the port count for stable in_ports"
    );
    let mut g = Generator::new(*spec);
    (0..n)
        .map(|_| {
            let (_, p) = g.next_packet();
            FlowKey::extract(p.in_port.0, &p.data).expect("valid frame")
        })
        .collect()
}

/// Single-flow-key convenience used by tests.
pub fn exact_key_for_flow(spec: &TrafficSpec, id: u32) -> FlowKey {
    exact_keys(spec, id + 1).pop().expect("non-empty")
}

/// An OpenFlow app (helper).
pub fn openflow_app(spec: &TrafficSpec, exact_flows: u32, decoy_wildcards: usize) -> OpenFlowApp {
    OpenFlowApp::new(openflow_switch(spec, exact_flows, decoy_wildcards))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_lookup::route::{lpm4, lpm6};

    #[test]
    fn ipv4_workload_covers_all_addresses() {
        let routes = ipv4_routes(1000, 3);
        for addr in [0u32, 1, 0x7FFF_FFFF, 0x8000_0000, 0xFFFF_FFFF, 0x0A0B0C0D] {
            assert!(lpm4(&routes, addr).is_some(), "addr {addr:#x}");
        }
    }

    #[test]
    fn ipv6_workload_covers_global_unicast() {
        let routes = ipv6_routes(500, 3);
        for addr in [
            0b001u128 << 125,
            (0b001u128 << 125) | 0xFFFF,
            (0b001u128 << 125) | (0x7u128 << 122),
        ] {
            assert!(lpm6(&routes, addr).is_some(), "addr {addr:#x}");
        }
    }

    #[test]
    fn exact_keys_match_generated_traffic() {
        let mut spec = TrafficSpec::ipv4_64b(1.0, 17);
        spec.flows = Some(16);
        let keys: Vec<FlowKey> = (0..16).map(|id| exact_key_for_flow(&spec, id)).collect();
        // Re-generate traffic; every packet's key must be in the set.
        let mut g = Generator::new(spec);
        for _ in 0..64 {
            let (_, p) = g.next_packet();
            let k = FlowKey::extract(p.in_port.0, &p.data).unwrap();
            assert!(keys.contains(&k), "unknown flow key {k:?}");
        }
    }

    #[test]
    fn openflow_switch_config_sizes() {
        let mut spec = TrafficSpec::ipv4_64b(1.0, 17);
        spec.flows = Some(32);
        let sw = openflow_switch(&spec, 32, 10);
        assert_eq!(sw.exact.len(), 32);
        assert_eq!(sw.wildcard.len(), 18); // 10 decoys + 8 spreading rules
    }
}
