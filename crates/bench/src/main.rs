//! `ps-bench` — regenerate every table and figure of the paper.
//!
//! ```text
//! ps-bench all            # everything, paper order
//! ps-bench table1         # PCIe transfer rates
//! ps-bench fig2           # IPv6 lookup, CPU vs GPU vs batch size
//! ps-bench table3 fig5 fig6 numa
//! ps-bench fig11a fig11b fig11c fig11d fig12
//! ps-bench launch spec
//! ps-bench ablate-gather ablate-streams ablate-opportunistic
//! ps-bench ablate-staging                # frames vs SoA vs direct-DMA
//! ps-bench --ablation direct-dma [o.json]# same sweep + JSON artifact
//! ps-bench overload                      # latency profiles across the knee
//! ps-bench --overload [o.json]           # same sweep + JSON artifact
//! ps-bench trace-breakdown
//! ps-bench --trace-out t.json fig6   # also dump the virtual-time trace
//! ps-bench --baseline [out.json]     # record wall-clock ns/pkt snapshot
//! ps-bench --compare [base.json]     # fail on wall-clock regressions
//! ps-bench --scaling [out.json]      # shard matrix 1/2/4/8 + ratio gates
//! ps-bench --shards 2 fig11a         # eligible runs on 2 OS threads
//! ```
//!
//! `PS_BENCH_MS` sets the virtual milliseconds per throughput run
//! (default 2; the README uses 4 for smoother numbers). `--trace-out
//! <path>` (or setting `PS_TRACE`) records every simulation under a
//! trace collector; with `--trace-out` the combined timeline is
//! written as Chrome `trace_event` JSON (see OBSERVABILITY.md).

use ps_bench::experiments as ex;
use ps_bench::timed;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--shards N` is sugar for PS_SHARDS=N: every Router::run in
    // every mode below resolves its shard count from that variable,
    // and the JSON artifact headers record it. Parsed first so it
    // composes with the exclusive modes.
    if let Some(i) = args.iter().position(|a| a == "--shards") {
        if i + 1 >= args.len() {
            eprintln!("ps-bench: --shards needs a count (>= 1)");
            std::process::exit(2);
        }
        let n = args.remove(i + 1);
        args.remove(i);
        if n.parse::<usize>().map_or(true, |n| n < 1) {
            eprintln!("ps-bench: --shards needs a numeric count >= 1, got {n}");
            std::process::exit(2);
        }
        std::env::set_var("PS_SHARDS", &n);
    }
    // Wall-clock regression harness: exclusive modes, no tracing
    // (a collector would perturb the very numbers being recorded).
    if let Some(i) = args.iter().position(|a| a == "--baseline") {
        let path = args.get(i + 1).cloned();
        let path = path.as_deref().unwrap_or("BENCH_baseline.json");
        if let Err(e) = ps_bench::baseline::write_baseline(path) {
            eprintln!("ps-bench: baseline failed: {e}");
            std::process::exit(1);
        }
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--compare") {
        let path = args.get(i + 1).cloned();
        let path = path.as_deref().unwrap_or("BENCH_baseline.json");
        match ps_bench::baseline::compare(path) {
            Ok(0) => return,
            Ok(_) => std::process::exit(1),
            Err(e) => {
                eprintln!("ps-bench: compare failed: {e}");
                std::process::exit(1);
            }
        }
    }
    // Shard scaling matrix: the replicated minimal workload at
    // shards ∈ {1,2,4,8} under identical offered load, gated on
    // in-run speedup/overhead ratios (direction-aware, see
    // baseline::scaling_verdicts). Optional path writes the rows as a
    // JSON artifact for CI upload.
    if let Some(i) = args.iter().position(|a| a == "--scaling") {
        let path = args.get(i + 1).cloned();
        match ps_bench::baseline::scaling(path.as_deref()) {
            Ok(0) => return,
            Ok(n) => {
                eprintln!("ps-bench: {n} scaling gate(s) failed");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("ps-bench: scaling failed: {e}");
                std::process::exit(1);
            }
        }
    }
    // Staging ablation with a JSON artifact: `--ablation direct-dma
    // [out.json]` runs the frames/soa/direct-dma sweep (the direct-DMA
    // delta is its headline) and writes the rows for CI upload.
    if let Some(i) = args.iter().position(|a| a == "--ablation") {
        if i + 1 >= args.len() {
            eprintln!("ps-bench: --ablation needs a name (direct-dma)");
            std::process::exit(2);
        }
        let name = args.remove(i + 1);
        if name != "direct-dma" && name != "staging" {
            eprintln!("ps-bench: unknown ablation {name} (have: direct-dma)");
            std::process::exit(2);
        }
        let path = args
            .get(i + 1)
            .cloned()
            .unwrap_or_else(|| "staging_ablation.json".to_string());
        if let Err(e) = ex::staging::run_and_write(&path) {
            eprintln!("ps-bench: staging ablation failed: {e}");
            std::process::exit(1);
        }
        return;
    }
    // Overload sweep with a JSON artifact: `--overload [out.json]`
    // runs the load-factor x latency-profile grid (see
    // experiments::overload) and writes the rows for CI upload.
    if let Some(i) = args.iter().position(|a| a == "--overload") {
        let path = args
            .get(i + 1)
            .cloned()
            .unwrap_or_else(|| "overload_sweep.json".to_string());
        if let Err(e) = ex::overload::run_and_write(&path) {
            eprintln!("ps-bench: overload sweep failed: {e}");
            std::process::exit(1);
        }
        return;
    }
    // Fault-degradation sweep: exclusive mode like the baseline
    // harness (fault plans and trace collectors are orthogonal; the
    // sweep prints its own fault_summary tables).
    if let Some(i) = args.iter().position(|a| a == "--faults") {
        if i + 1 >= args.len() {
            eprintln!("ps-bench: --faults needs a scenario (nic|corrupt|pcie|gpu|all)");
            std::process::exit(2);
        }
        let scenario = args.remove(i + 1);
        if let Err(e) = ex::faults::run_and_write(&scenario) {
            eprintln!("ps-bench: degradation sweep failed: {e}");
            std::process::exit(1);
        }
        return;
    }
    let mut trace_out = None;
    if let Some(i) = args.iter().position(|a| a == "--trace-out") {
        if i + 1 >= args.len() {
            eprintln!("ps-bench: --trace-out needs a path");
            std::process::exit(2);
        }
        trace_out = Some(args.remove(i + 1));
        args.remove(i);
    }
    if args.is_empty() {
        eprintln!("usage: ps-bench [--shards n] [--trace-out t.json] <experiment>...");
        eprintln!("       ps-bench --baseline [out.json] | --compare [base.json]");
        eprintln!("       ps-bench --scaling [out.json]  (shard matrix + ratio gates)");
        eprintln!("       ps-bench --faults <nic|corrupt|pcie|gpu|all>   (degradation sweep)");
        eprintln!("       ps-bench --overload [out.json]                 (load sweep + artifact)");
        eprintln!(
            "       ps-bench --ablation direct-dma [out.json]      (staging sweep + artifact)"
        );
        eprintln!("       (--shards n, or PS_SHARDS=n, runs eligible workloads on n threads)");
        eprintln!("experiments: spec table1 launch fig2 table3 fig5 fig6 numa");
        eprintln!("             fig11a fig11b fig11c fig11d fig12");
        eprintln!("             ablate-gather ablate-streams ablate-opportunistic ablate-staging");
        eprintln!("             nfv nfv-apps nfv-pressure overload trace-breakdown all");
        std::process::exit(2);
    }
    let tracing = trace_out.is_some() || std::env::var("PS_TRACE").is_ok();
    let run_all = || {
        for arg in &args {
            let ((), secs) = timed(|| dispatch(arg));
            println!("[{arg}: simulated in {secs:.1}s wall clock]");
        }
    };
    if tracing {
        let ((), collector) =
            ps_bench::trace::traced(ps_bench::trace::config_from_env_or_all(), run_all);
        if let Some(path) = trace_out {
            match ps_bench::trace::write_chrome(&collector, &path) {
                Ok(bytes) => println!("trace: wrote {path} ({bytes} bytes)"),
                Err(e) => {
                    eprintln!("ps-bench: cannot write {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
    } else {
        run_all();
    }
}

fn dispatch(name: &str) {
    match name {
        "all" => ex::run_all(),
        "spec" => {
            ex::micro::spec_table2();
        }
        "table1" => {
            ex::micro::table1_pcie();
        }
        "launch" => {
            ex::micro::launch_latency();
        }
        "fig2" => {
            ex::fig2::run();
        }
        "table3" => {
            ex::io::table3_breakdown();
        }
        "fig5" => {
            ex::io::fig5_batching();
        }
        "fig6" => {
            ex::io::fig6_io_engine();
        }
        "numa" => {
            ex::io::numa_placement();
        }
        "fig11a" => {
            ex::apps::fig11a_ipv4();
        }
        "fig11b" => {
            ex::apps::fig11b_ipv6();
        }
        "fig11c" => {
            ex::apps::fig11c_openflow();
        }
        "fig11d" => {
            ex::apps::fig11d_ipsec();
        }
        "fig12" => {
            ex::latency::fig12();
        }
        "ablate-gather" => {
            ex::ablations::gather_scatter();
        }
        "ablate-streams" => {
            ex::ablations::concurrent_copy();
        }
        "ablate-opportunistic" => {
            ex::ablations::opportunistic();
        }
        "ablate-staging" => {
            ex::staging::run();
        }
        "overload" => {
            ex::overload::run();
        }
        "trace-breakdown" => {
            ex::trace::stage_breakdown();
        }
        "nfv" => {
            ex::nfv::run();
        }
        "nfv-apps" => {
            ex::nfv::cross_nf();
        }
        "nfv-pressure" => {
            ex::nfv::flow_pressure();
        }
        "dbg-ipsec" => {
            use ps_core::apps::IpsecApp;
            use ps_core::{Router, RouterConfig};
            use ps_pktgen::{TrafficKind, TrafficSpec};
            for (size, concurrent) in [(64usize, true), (64, false), (1514, true)] {
                let mut cfg = RouterConfig::paper_gpu();
                cfg.concurrent_copy = concurrent;
                let spec = TrafficSpec {
                    kind: TrafficKind::Ipv4Udp,
                    frame_len: size,
                    offered_bits: 40_000_000_000,
                    ports: 8,
                    seed: 42,
                    flows: None,
                    ..TrafficSpec::default()
                };
                let app = IpsecApp::new([0x42; 16], 0xD00D, b"dbg");
                let r = Router::run(cfg, app, spec, 8 * ps_sim::MILLIS);
                println!(
                    "size={size} streams={concurrent} in_gbps(input)={:.1} kernels={} shade_batch={:.1} rx_drops={:?} p50={}us ioh_d2h={:.1?} ioh_h2d={:.1?}",
                    r.out_gbps_input_sized(size),
                    r.gpu_kernels,
                    r.mean_shade_batch,
                    r.drop_split,
                    r.latency.p50() / 1000,
                    r.ioh_d2h_gbit,
                    r.ioh_h2d_gbit,
                );
            }
        }
        "dbg-gpu" => {
            use ps_core::{Router, RouterConfig};
            use ps_pktgen::{TrafficKind, TrafficSpec};
            let cfg = RouterConfig::paper_gpu();
            let spec = TrafficSpec {
                kind: TrafficKind::Ipv4Udp,
                frame_len: 64,
                offered_bits: 80_000_000_000,
                ports: 8,
                seed: 42,
                flows: None,
                ..TrafficSpec::default()
            };
            let app = ps_bench::workloads::ipv4_app(50_000, 1);
            let r = Router::run(cfg, app, spec, 2 * ps_sim::MILLIS);
            println!("out={:.1} Gbps in={:.1}", r.out_gbps(), r.in_gbps());
            println!(
                "rx_drops={} app_drops={} slow={} kernels={} shade_batch={:.1} rx_batch={:.1} p50={}us",
                r.rx_drops, r.app_drops, r.slow_path, r.gpu_kernels,
                r.mean_shade_batch, r.mean_rx_batch, r.latency.p50() / 1000,
            );
        }
        other => {
            eprintln!("unknown experiment: {other}");
            std::process::exit(2);
        }
    }
}
