//! Microbenchmark artifacts: Table 2 (testbed), Table 1 (PCIe
//! transfer rates) and the §2.2 kernel-launch latency.

use ps_gpu::timing;
use ps_hw::pcie::{CopyDir, PcieModel};
use ps_hw::spec::{GpuSpec, Testbed};

use crate::header;

/// Table 2: print the simulated server's specification.
pub fn spec_table2() -> Testbed {
    header("Table 2 — simulated testbed (paper: $7,000 server)");
    let t = Testbed::paper();
    println!(
        "CPU   2 x Xeon X5550  {} cores @ {:.2} GHz",
        t.total_cores(),
        t.cpu.hz as f64 / 1e9
    );
    println!(
        "GPU   2 x GTX480       {} SMs x {} lanes @ {:.1} GHz, {:.1} GB/s",
        t.gpu.sms,
        t.gpu.lanes_per_sm,
        t.gpu.hz as f64 / 1e9,
        t.gpu.mem_bw_bits as f64 / 8e9
    );
    println!("NIC   4 x X520-DA2     {} x 10 GbE ports", t.total_ports());
    println!("NUMA  {} nodes, dual IOH (asymmetric DMA, §3.2)", t.nodes);
    t
}

/// Table 1 rows: `(bytes, paper h2d, model h2d, paper d2h, model d2h)`.
pub type Table1Row = (u64, f64, f64, f64, f64);

/// Paper Table 1 values.
pub const TABLE1_PAPER: &[(u64, f64, f64)] = &[
    (256, 55.0, 63.0),
    (1024, 185.0, 211.0),
    (4096, 759.0, 786.0),
    (16384, 2069.0, 1743.0),
    (65536, 4046.0, 2848.0),
    (262144, 5142.0, 3242.0),
    (1048576, 5577.0, 3394.0),
];

/// Table 1: host↔device transfer rate vs buffer size.
pub fn table1_pcie() -> Vec<Table1Row> {
    header("Table 1 — PCIe transfer rate (MB/s), paper vs model");
    let m = PcieModel::new(Testbed::paper().pcie);
    println!(
        "{:>10} | {:>10} {:>10} | {:>10} {:>10}",
        "bytes", "h2d paper", "h2d model", "d2h paper", "d2h model"
    );
    let mut rows = Vec::new();
    for &(size, h2d, d2h) in TABLE1_PAPER {
        let mh = m.rate_mb_s(CopyDir::HostToDevice, size);
        let md = m.rate_mb_s(CopyDir::DeviceToHost, size);
        println!("{size:>10} | {h2d:>10.0} {mh:>10.0} | {d2h:>10.0} {md:>10.0}");
        rows.push((size, h2d, mh, d2h, md));
    }
    rows
}

/// §2.2: kernel launch latency for 1 vs 4096 threads.
pub fn launch_latency() -> (f64, f64) {
    header("§2.2 — kernel launch latency (paper: 3.8 us @1, 4.1 us @4096)");
    let g = GpuSpec::gtx480();
    let one = timing::launch_overhead(&g, 1) as f64 / 1000.0;
    let many = timing::launch_overhead(&g, 4096) as f64 / 1000.0;
    println!("threads=1    : {one:.2} us");
    println!("threads=4096 : {many:.2} us");
    (one, many)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_within_tolerance() {
        for (size, ph, mh, pd, md) in table1_pcie() {
            assert!((mh - ph).abs() / ph < 0.17, "{size} h2d {mh} vs {ph}");
            assert!((md - pd).abs() / pd < 0.17, "{size} d2h {md} vs {pd}");
        }
    }

    #[test]
    fn launch_latency_matches_paper() {
        let (one, many) = launch_latency();
        assert!((one - 3.8).abs() < 0.1);
        assert!((3.9..4.5).contains(&many));
    }
}
