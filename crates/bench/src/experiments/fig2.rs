//! Figure 2: IPv6 lookup throughput, one/two X5550 sockets vs one
//! GTX480, as a function of batch size — the motivating example
//! (§2.3). No packet I/O is involved, exactly as in the paper.

use ps_core::apps::{CYCLES_PER_NS, TABLE_MISS_NS};
use ps_core::kernels::Ipv6Kernel;
use ps_gpu::{GpuDevice, GpuEngine};
use ps_hw::ioh::Ioh;
use ps_hw::pcie::PcieModel;
use ps_hw::spec::Testbed;
use ps_lookup::mem::{CountingMem, SliceMem};
use ps_lookup::synth;
use ps_lookup::waldvogel::{self, V6Table};

use crate::{header, workloads};

/// The tight lookup-only loop overlaps dependent chains of ~3 packets
/// via software pipelining + prefetch (vs 1.3 inside the router,
/// where I/O competes for MSHRs).
const TIGHT_LOOP_OVERLAP: f64 = 3.0;

/// One row: `(batch, cpu1 Mops, cpu2 Mops, gpu Mops)`.
pub type Fig2Row = (usize, f64, f64, f64);

/// CPU socket lookup rate (M lookups/s) for the given table.
pub fn cpu_socket_rate(table: &V6Table, sample: &[u128]) -> f64 {
    // Measure the true access count (probes + collisions) on a sample.
    let mut accesses = 0u64;
    for &a in sample {
        let mut mem = CountingMem::new(SliceMem::new(table.image()));
        let _ = waldvogel::lookup(table.layout(), &mut mem, a);
        accesses += mem.accesses;
    }
    let per_lookup = accesses as f64 / sample.len() as f64;
    let ns =
        per_lookup * TABLE_MISS_NS as f64 / TIGHT_LOOP_OVERLAP + per_lookup * 16.0 / CYCLES_PER_NS;
    let cores = Testbed::paper().cpu.cores as f64;
    cores * 1e3 / ns // M lookups/s
}

/// GPU lookup rate (M lookups/s) at a given batch size, including
/// transfers and launch overhead.
pub fn gpu_rate(table: &V6Table, addrs: &[u128], batch: usize) -> f64 {
    let image_len = table.image().len();
    let staging = batch * 16 + batch * 2;
    let mut dev = GpuDevice::gtx480_with_mem(image_len + staging + (4 << 20));
    let tbuf = dev.mem.alloc(image_len);
    dev.mem.write(&tbuf, 0, table.image());
    let input = dev.mem.alloc(batch * 16);
    let output = dev.mem.alloc(batch * 2);
    let mut eng = GpuEngine::new(dev, PcieModel::new(Testbed::paper().pcie));
    let mut ioh = Ioh::new(Testbed::paper().ioh);

    let mut staged = Vec::with_capacity(batch * 16);
    for i in 0..batch {
        staged.extend_from_slice(&addrs[i % addrs.len()].to_be_bytes());
    }
    let t0 = eng.next_copy_slot();
    let h2d = eng.copy_h2d(t0, &mut ioh, &input, 0, &staged);
    let kernel = Ipv6Kernel {
        table: tbuf,
        layout: table.layout().clone(),
        input,
        slots: ps_gpu::Slots::packed(16),
        output,
        n: batch as u32,
    };
    let (kdone, _) = eng.launch(h2d, &kernel, batch as u32);
    let mut out = vec![0u8; batch * 2];
    let done = eng.copy_d2h(t0, kdone, &mut ioh, &output, 0, &mut out);
    batch as f64 * 1e3 / (done - t0) as f64
}

/// Run Figure 2 with a table of `prefixes` prefixes.
pub fn run_with(prefixes: usize) -> Vec<Fig2Row> {
    header("Figure 2 — IPv6 lookup throughput vs batch size (M lookups/s)");
    let routes = workloads::ipv6_routes(prefixes, 20100830);
    let table = V6Table::build(&routes);
    let addrs = synth::random_v6_addrs(4096, 7);

    let cpu1 = cpu_socket_rate(&table, &addrs[..512]);
    let cpu2 = 2.0 * cpu1;
    println!("CPU (1 socket): {cpu1:.1} M/s   CPU (2 sockets): {cpu2:.1} M/s");
    println!("{:>9} | {:>9} | paper shape", "batch", "GPU M/s");
    let mut rows = Vec::new();
    for &batch in &[
        32usize, 64, 128, 256, 320, 640, 1024, 4096, 16384, 65536, 262144,
    ] {
        let gpu = gpu_rate(&table, &addrs, batch);
        let marker = if gpu > cpu2 {
            "> 2 CPUs"
        } else if gpu > cpu1 {
            "> 1 CPU"
        } else {
            ""
        };
        println!("{batch:>9} | {gpu:>9.1} | {marker}");
        rows.push((batch, cpu1, cpu2, gpu));
    }
    let peak = rows.iter().map(|r| r.3).fold(0.0, f64::max);
    println!(
        "GPU peak = {:.1} M/s = {:.1}x one X5550 socket (paper: ~10x)",
        peak,
        peak / cpu1
    );
    rows
}

/// The paper-size run (200,000 random prefixes).
pub fn run() -> Vec<Fig2Row> {
    run_with(200_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_shape_holds() {
        // Scaled-down table keeps the test fast; the shape is
        // table-size independent (7 probes either way).
        let rows = run_with(20_000);
        let cpu1 = rows[0].1;
        let cpu2 = rows[0].2;
        // Small batches lose to one CPU socket.
        let small = rows.iter().find(|r| r.0 == 64).unwrap().3;
        assert!(small < cpu1, "batch 64: GPU {small} vs CPU {cpu1}");
        // The GPU overtakes one socket somewhere in the low hundreds
        // of packets (paper: 320)...
        let cross1 = rows.iter().find(|r| r.3 > cpu1).map(|r| r.0).unwrap();
        assert!(
            (64..=1024).contains(&cross1),
            "crossover vs 1 CPU at {cross1}"
        );
        // ...and two sockets later than one socket (paper: 640).
        let cross2 = rows.iter().find(|r| r.3 > cpu2).map(|r| r.0).unwrap();
        assert!(cross2 >= cross1, "cross2 {cross2} < cross1 {cross1}");
        // Peak is roughly an order of magnitude above one socket.
        let peak = rows.iter().map(|r| r.3).fold(0.0, f64::max);
        let ratio = peak / cpu1;
        assert!((5.0..20.0).contains(&ratio), "peak ratio {ratio:.1}");
    }
}
