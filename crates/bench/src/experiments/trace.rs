//! The per-stage breakdown report: where a packet's time goes —
//! pre-shading, gather, GPU copies, kernel, post-shading — as the
//! I/O batch size sweeps. The Figure 6 counterpart for the *inside*
//! of the pipeline, computed entirely from the trace rather than from
//! dedicated counters.

use std::collections::BTreeMap;

use ps_core::{Router, RouterConfig};
use ps_pktgen::{TrafficKind, TrafficSpec};
use ps_sim::MILLIS;
use ps_trace::Phase;

use crate::{header, window_ms, workloads};

/// The stages the breakdown reports, in pipeline order.
pub const BREAKDOWN_STAGES: [&str; 6] = [
    "pre_shade",
    "gather",
    "copy_h2d",
    "kernel",
    "copy_d2h",
    "post_shade",
];

/// One row of the breakdown: aggregate nanoseconds per packet spent
/// in each stage at a given I/O batch cap.
#[derive(Debug, Clone)]
pub struct StageBreakdownRow {
    /// The swept `IoConfig::batch_cap`.
    pub batch: usize,
    /// Packets that entered the pipeline (sum of `pre_shade` spans'
    /// `pkts` argument) — the normalization denominator.
    pub packets: u64,
    /// `(stage name, total ns, ns per packet)` in
    /// [`BREAKDOWN_STAGES`] order.
    pub stages: Vec<(&'static str, u64, f64)>,
}

impl StageBreakdownRow {
    /// ns/packet for a named stage (0.0 when absent).
    pub fn ns_per_pkt(&self, stage: &str) -> f64 {
        self.stages
            .iter()
            .find(|(n, _, _)| *n == stage)
            .map_or(0.0, |&(_, _, v)| v)
    }
}

/// Run the IPv4 app in the paper's CPU+GPU configuration across batch
/// caps, tracing every run, and print copy vs. kernel vs. CPU time
/// per packet.
pub fn stage_breakdown() -> Vec<StageBreakdownRow> {
    header("Per-stage breakdown — copy vs kernel vs CPU per batch size (IPv4, GPU)");
    let batches = [16usize, 64, 256];
    println!(
        "{:>6} | {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}  (ns/pkt)",
        "batch", "pre", "gather", "copy_h2d", "kernel", "copy_d2h", "post"
    );
    let mut rows = Vec::new();
    for &batch in &batches {
        let row = breakdown_for_batch(batch);
        println!(
            "{:>6} | {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            row.batch,
            row.ns_per_pkt("pre_shade"),
            row.ns_per_pkt("gather"),
            row.ns_per_pkt("copy_h2d"),
            row.ns_per_pkt("kernel"),
            row.ns_per_pkt("copy_d2h"),
            row.ns_per_pkt("post_shade"),
        );
        rows.push(row);
    }
    rows
}

/// One traced run at the given batch cap, reduced to a breakdown row.
pub fn breakdown_for_batch(batch: usize) -> StageBreakdownRow {
    let mut cfg = RouterConfig::paper_gpu();
    cfg.io.batch_cap = batch;
    let spec = TrafficSpec {
        kind: TrafficKind::Ipv4Udp,
        frame_len: 64,
        offered_bits: 40_000_000_000,
        ports: 8,
        seed: 42,
        flows: None,
        ..TrafficSpec::default()
    };
    let app = workloads::ipv4_app(50_000, 1);
    let (_, collector) = crate::trace::traced(ps_trace::TraceConfig::all(), || {
        Router::run(cfg, app, spec, window_ms() * MILLIS)
    });
    breakdown_from_collector(batch, &collector)
}

/// Reduce a filled collector to a breakdown row.
pub fn breakdown_from_collector(
    batch: usize,
    collector: &ps_trace::Collector,
) -> StageBreakdownRow {
    let (events, _) = collector.resolved();
    let mut totals: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut packets = 0u64;
    for ev in &events {
        let Phase::Complete { dur } = ev.phase else {
            continue;
        };
        if !BREAKDOWN_STAGES.contains(&ev.name) {
            continue;
        }
        *totals.entry(ev.name).or_insert(0) += dur;
        if ev.name == "pre_shade" {
            packets += ev
                .args
                .iter()
                .find(|(k, _)| *k == "pkts")
                .map_or(0, |&(_, v)| v);
        }
    }
    let denom = packets.max(1) as f64;
    let stages = BREAKDOWN_STAGES
        .iter()
        .map(|&name| {
            let total = totals.get(name).copied().unwrap_or(0);
            (name, total, total as f64 / denom)
        })
        .collect();
    StageBreakdownRow {
        batch,
        packets,
        stages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_covers_every_stage() {
        let row = breakdown_for_batch(64);
        assert!(row.packets > 0, "no packets traced");
        for &stage in &BREAKDOWN_STAGES {
            assert!(
                row.ns_per_pkt(stage) > 0.0,
                "stage {stage} has no trace time"
            );
        }
        // A 64 B IPv4 lookup spends far less than 100 us/pkt anywhere.
        for &(name, _, per_pkt) in &row.stages {
            assert!(per_pkt < 100_000.0, "{name}: {per_pkt} ns/pkt");
        }
    }
}
