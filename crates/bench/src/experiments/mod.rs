//! One module per paper artifact. Every function both prints its
//! table and returns the data, so integration tests can assert the
//! shapes (who wins, crossovers, ceilings) without parsing text.

pub mod ablations;
pub mod apps;
pub mod faults;
pub mod fig2;
pub mod io;
pub mod latency;
pub mod micro;
pub mod nfv;
pub mod overload;
pub mod staging;
pub mod trace;

/// Run everything in paper order (the `ps-bench all` entry point).
pub fn run_all() {
    micro::spec_table2();
    micro::table1_pcie();
    micro::launch_latency();
    fig2::run();
    io::table3_breakdown();
    io::fig5_batching();
    io::fig6_io_engine();
    io::numa_placement();
    apps::fig11a_ipv4();
    apps::fig11b_ipv6();
    apps::fig11c_openflow();
    apps::fig11d_ipsec();
    latency::fig12();
    ablations::gather_scatter();
    ablations::concurrent_copy();
    ablations::opportunistic();
    staging::run();
    nfv::run();
    overload::run();
    trace::stage_breakdown();
}
