//! Packet I/O engine artifacts: Table 3 (Linux RX cycle breakdown),
//! Figure 5 (batching), Figure 6 (engine throughput by packet size)
//! and the §4.5 NUMA-placement comparison.

use ps_core::apps::{ForwardPattern, MinimalApp};
use ps_core::{Router, RouterConfig};
use ps_hw::ioh::Direction;
use ps_hw::spec::Testbed;
use ps_io::cost::{CostModel, LinuxBaseline, TABLE3_BINS};
use ps_io::dma_bytes;
use ps_io::IoConfig;
use ps_pktgen::{TrafficKind, TrafficSpec};
use ps_sim::{MILLIS, SECONDS};

use crate::{header, window_ms};

/// Table 3: the legacy skb-path breakdown.
pub fn table3_breakdown() -> Vec<(String, f64, u64)> {
    header("Table 3 — CPU cycle breakdown in packet RX (legacy skb path)");
    let l = LinuxBaseline::default();
    println!(
        "{:<26} {:>7} {:>8}  solution",
        "functional bin", "%", "cycles"
    );
    let mut rows = Vec::new();
    for (i, bin) in TABLE3_BINS.iter().enumerate() {
        println!(
            "{:<26} {:>6.1}% {:>8}  {}",
            bin.name,
            bin.percent,
            l.bin_cycles(i),
            bin.solution.unwrap_or("-")
        );
        rows.push((bin.name.to_string(), bin.percent, l.bin_cycles(i)));
    }
    println!(
        "total {} cycles/packet; engine path: {} cycles/packet at batch 64",
        l.total_cycles,
        {
            let m = CostModel::default();
            m.forward_batch_cycles(64, 64 * 64, ps_hw::numa::Placement::NumaAware) / 64
        }
    );
    rows
}

fn spec(kind: TrafficKind, frame_len: usize, gbps: f64, ports: u16) -> TrafficSpec {
    TrafficSpec {
        kind,
        frame_len,
        offered_bits: (gbps * 1e9) as u64,
        ports,
        seed: 42,
        flows: None,
        ..TrafficSpec::default()
    }
}

/// Figure 5 rows: `(batch, forward Gbps)`.
pub fn fig5_batching() -> Vec<(usize, f64)> {
    header("Figure 5 — batching, 1 core / 2 ports, 64 B (paper: 0.78 -> 10.5 Gbps)");
    let mut rows = Vec::new();
    println!("{:>6} | {:>9}", "batch", "fwd Gbps");
    for &batch in &[1usize, 2, 4, 8, 16, 32, 64, 128] {
        let cfg = RouterConfig::fig5(batch);
        let app = MinimalApp::new(ForwardPattern::SameNode, 2);
        let report = Router::run(
            cfg,
            app,
            spec(TrafficKind::Ipv4Udp, 64, 20.0, 2),
            window_ms() * MILLIS,
        );
        let gbps = report.out_gbps();
        println!("{batch:>6} | {gbps:>9.2}");
        rows.push((batch, gbps));
    }
    let speedup = rows.last().map(|r| r.1).unwrap_or(0.0) / rows[0].1;
    println!("speedup batch 1 -> 128: {speedup:.1}x (paper: 13.5x at 64)");
    rows
}

/// Figure 6 rows per packet size:
/// `(size, rx Gbps, tx Gbps, forward Gbps, node-crossing Gbps)`.
pub fn fig6_io_engine() -> Vec<(usize, f64, f64, f64, f64)> {
    header("Figure 6 — packet I/O engine (paper: TX ~80, RX 53-60, fwd >40)");
    let sizes = [64usize, 128, 256, 512, 1024, 1514];
    println!(
        "{:>6} | {:>8} {:>8} {:>8} {:>10}",
        "size", "RX", "TX", "forward", "crossing"
    );
    let mut rows = Vec::new();
    for &size in &sizes {
        let rx = rx_only_ceiling(size);
        let tx = tx_only_ceiling(size);
        let fwd = forward_gbps(size, ForwardPattern::SameNode);
        let cross = forward_gbps(size, ForwardPattern::NodeCrossing);
        println!("{size:>6} | {rx:>8.1} {tx:>8.1} {fwd:>8.1} {cross:>10.1}");
        rows.push((size, rx, tx, fwd, cross));
    }
    rows
}

/// RX-only: every arriving packet is DMA'd to host and dropped by the
/// application. The binding resource is the device→host DMA capacity
/// of the two IOHs (§4.6 attributes the RX/TX asymmetry to exactly
/// this, §3.2). Computed by saturating the component models.
pub fn rx_only_ceiling(size: usize) -> f64 {
    let tb = Testbed::paper();
    // Per-IOH d2h saturation with this packet size.
    let mut ioh = ps_hw::ioh::Ioh::new(tb.ioh);
    let mut pkts = 0u64;
    loop {
        let done = ioh.dma(0, Direction::DeviceToHost, dma_bytes(size));
        if done > SECONDS {
            break;
        }
        pkts += 1;
    }
    let per_ioh = pkts as f64 * ps_net::wire_len(size) as f64 * 8.0 / 1e9;
    // CPU ceiling: 8 cores of batched RX.
    let m = CostModel::default();
    let cyc =
        m.rx_batch_cycles(64, 64 * size as u64, ps_hw::numa::Placement::NumaAware) as f64 / 64.0;
    let cpu_pps = 8.0 * tb.cpu.hz as f64 / cyc;
    let cpu = cpu_pps * ps_net::wire_len(size) as f64 * 8.0 / 1e9;
    // Wire ceiling: 8 ports.
    let wire = 80.0;
    (2.0 * per_ioh).min(cpu).min(wire)
}

/// TX-only ceiling: host→device DMA + wire + CPU.
pub fn tx_only_ceiling(size: usize) -> f64 {
    let tb = Testbed::paper();
    let mut ioh = ps_hw::ioh::Ioh::new(tb.ioh);
    let mut pkts = 0u64;
    loop {
        let done = ioh.dma(0, Direction::HostToDevice, dma_bytes(size));
        if done > SECONDS {
            break;
        }
        pkts += 1;
    }
    let per_ioh = pkts as f64 * ps_net::wire_len(size) as f64 * 8.0 / 1e9;
    let m = CostModel::default();
    let cyc =
        m.tx_batch_cycles(64, 64 * size as u64, ps_hw::numa::Placement::NumaAware) as f64 / 64.0;
    let cpu_pps = 8.0 * tb.cpu.hz as f64 / cyc;
    let cpu = cpu_pps * ps_net::wire_len(size) as f64 * 8.0 / 1e9;
    (2.0 * per_ioh).min(cpu).min(80.0)
}

/// Full forwarding throughput from the event simulation.
pub fn forward_gbps(size: usize, pattern: ForwardPattern) -> f64 {
    let cfg = RouterConfig::paper_cpu();
    let app = MinimalApp::new(pattern, 8);
    let report = Router::run(
        cfg,
        app,
        spec(TrafficKind::Ipv4Udp, size, 80.0, 8),
        window_ms() * MILLIS,
    );
    report.out_gbps()
}

/// §4.5: NUMA-aware vs NUMA-blind forwarding (paper: ~40 vs <25).
pub fn numa_placement() -> (f64, f64) {
    header("§4.5 — NUMA-aware vs NUMA-blind I/O (paper: ~40 vs <25 Gbps)");
    let aware = forward_gbps(64, ForwardPattern::SameNode);
    let blind = {
        let mut cfg = RouterConfig::paper_cpu();
        cfg.io = IoConfig::numa_blind();
        let app = MinimalApp::new(ForwardPattern::SameNode, 8);
        Router::run(
            cfg,
            app,
            spec(TrafficKind::Ipv4Udp, 64, 80.0, 8),
            window_ms() * MILLIS,
        )
        .out_gbps()
    };
    println!("NUMA-aware : {aware:.1} Gbps");
    println!(
        "NUMA-blind : {blind:.1} Gbps ({:.0}% of aware)",
        blind / aware * 100.0
    );
    (aware, blind)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_ceilings_match_paper_bands() {
        for &size in &[64usize, 1514] {
            let rx = rx_only_ceiling(size);
            let tx = tx_only_ceiling(size);
            assert!((50.0..64.0).contains(&rx), "RX {rx} at {size}B");
            assert!((70.0..81.0).contains(&tx), "TX {tx} at {size}B");
            assert!(tx > rx, "TX must exceed RX (dual-IOH asymmetry)");
        }
    }
}
