//! The stateful NFV tier (DESIGN.md §10): NAT and the L4 load
//! balancer on the cuckoo flow cache, measured like the paper apps.
//!
//! Two artifacts:
//!
//! * [`cross_nf`] — IPv4 forwarding vs NAT vs LB under the *identical*
//!   IMIX + heavy-tail offered load, CPU-only and CPU+GPU. The gap to
//!   plain forwarding is the price of per-packet state; the GPU column
//!   shows what offloading the flow hash buys back.
//! * [`flow_pressure`] — NAT throughput and flow-cache health while
//!   the per-node table shrinks from comfortable to thrashing under an
//!   ephemeral-flow storm (every packet a new flow, nothing expires).

use ps_core::apps::{Backend, LbApp, NatApp};
use ps_core::{App, RouterConfig};
use ps_flow::FlowCacheStats;
use ps_pktgen::{Generator, TrafficSpec};

use crate::header;

/// The standard stateful-NFV offered load: IMIX frame blend, 512
/// heavy-tailed keyed flows at concentration exponent 3.
pub fn nfv_spec(gbps: f64, seed: u64) -> TrafficSpec {
    TrafficSpec::imix(gbps, seed).with_heavy_tail(512, 3)
}

/// A 16-server backend pool for the load balancer runs.
pub fn backend_pool() -> Vec<Backend> {
    (0..16)
        .map(|i| Backend {
            ip: 0x0A63_0001 + i,
            port: 8080,
        })
        .collect()
}

/// Cross-NF comparison under identical load. Returns
/// `(name, cpu_gbps, gpu_gbps)` rows.
pub fn cross_nf() -> Vec<(&'static str, f64, f64)> {
    header("Stateful NFV — IPv4 vs NAT vs LB, identical IMIX load (Gbps)");
    println!(
        "{:>6} | {:>9} | {:>9} | {:>6}",
        "app", "CPU-only", "CPU+GPU", "gain"
    );
    type MkApp = Box<dyn Fn() -> Box<dyn super::apps::RunApp>>;
    let spec = nfv_spec(40.0, 11);
    let run = |mk: &dyn Fn() -> Box<dyn super::apps::RunApp>, cfg| mk().run(cfg, spec);
    let apps: Vec<(&str, MkApp)> = vec![
        (
            "ipv4",
            Box::new(|| Box::new(crate::workloads::ipv4_app(50_000, 1)) as _),
        ),
        (
            "nat",
            Box::new(|| Box::new(NatApp::new(8, 2, 1 << 20, 0)) as _),
        ),
        (
            "lb",
            Box::new(|| Box::new(LbApp::new(backend_pool(), 8, 2, 1 << 20, 0)) as _),
        ),
    ];
    let mut rows = Vec::new();
    for (name, mk) in &apps {
        let cpu = run(mk, RouterConfig::paper_cpu());
        let gpu = run(mk, RouterConfig::paper_gpu());
        println!(
            "{name:>6} | {cpu:>9.1} | {gpu:>9.1} | {:>5.2}x",
            gpu / cpu.max(1e-9)
        );
        rows.push((*name, cpu, gpu));
    }
    rows
}

/// One pressure cell: per-node table capacity vs what survived.
pub struct PressureRow {
    /// Per-node slot budget requested.
    pub capacity: usize,
    /// Concurrent entries resident after the storm.
    pub occupancy: usize,
    /// Summed flow-cache counters.
    pub stats: FlowCacheStats,
}

/// Drive `n` ephemeral flows (IMIX, per-packet random tuples) straight
/// through a NAT at several per-node table sizes. No router around it:
/// this isolates the cache, so the eviction and displacement columns
/// are the table's own, not backpressure artifacts.
pub fn flow_pressure() -> Vec<PressureRow> {
    header("Stateful NFV — NAT flow-table pressure (ephemeral-flow storm)");
    println!(
        "{:>10} | {:>10} | {:>10} | {:>10} | {:>6}",
        "capacity", "occupancy", "evictions", "hit rate", "depth"
    );
    const N: usize = 400_000;
    let mut rows = Vec::new();
    for shift in [14usize, 16, 18, 20] {
        let capacity = 1usize << shift;
        let mut nat = NatApp::new(8, 2, capacity, 0);
        let mut gen = Generator::new(TrafficSpec::imix(40.0, 13));
        let mut batch = Vec::with_capacity(4096);
        let mut left = N;
        while left > 0 {
            batch.clear();
            for _ in 0..4096.min(left) {
                batch.push(gen.next_packet().1);
            }
            left -= batch.len();
            nat.pre_shade(&mut batch);
            nat.process_cpu(&mut batch);
        }
        let occupancy = nat.occupancy();
        let stats = nat.cache_stats();
        println!(
            "{capacity:>10} | {occupancy:>10} | {:>10} | {:>9.1}% | {:>6}",
            stats.evictions,
            100.0 * stats.hits as f64 / (stats.lookups.max(1)) as f64,
            stats.max_depth,
        );
        rows.push(PressureRow {
            capacity,
            occupancy,
            stats,
        });
    }
    rows
}

/// Run both NFV artifacts (the `ps-bench nfv` entry point).
pub fn run() {
    cross_nf();
    flow_pressure();
}
