//! Ablations of the §5.4 optimization strategies and the §7
//! opportunistic-offloading extension.

use ps_core::apps::IpsecApp;
use ps_core::{Router, RouterConfig};
use ps_pktgen::{TrafficKind, TrafficSpec};
use ps_sim::MILLIS;

use crate::{header, window_ms, workloads};

fn spec(kind: TrafficKind, frame_len: usize, gbps: f64) -> TrafficSpec {
    TrafficSpec {
        kind,
        frame_len,
        offered_bits: (gbps * 1e9) as u64,
        ports: 8,
        seed: 42,
        flows: None,
        ..TrafficSpec::default()
    }
}

/// Gather/scatter (Figure 10(b)): with it the master exposes more
/// parallelism per kernel launch; without it every chunk launches
/// alone and the per-launch overhead dominates. IPv6 64 B.
pub fn gather_scatter() -> (f64, f64) {
    gather_scatter_with(200_000)
}

/// Scaled variant.
pub fn gather_scatter_with(prefixes: usize) -> (f64, f64) {
    header("Ablation — gather/scatter (§5.4), IPv6 64 B");
    let mut on_cfg = RouterConfig::paper_gpu();
    on_cfg.gather = true;
    let mut off_cfg = RouterConfig::paper_gpu();
    off_cfg.gather = false;
    let run = |cfg| {
        Router::run(
            cfg,
            workloads::ipv6_app(prefixes, 2),
            spec(TrafficKind::Ipv6Udp, 64, 80.0),
            window_ms() * MILLIS,
        )
        .out_gbps()
    };
    let on = run(on_cfg);
    let off = run(off_cfg);
    println!("gather ON : {on:.1} Gbps");
    println!("gather OFF: {off:.1} Gbps");
    (on, off)
}

/// Concurrent copy & execution (Figure 10(c)): §5.4 uses it only for
/// IPsec — it helps the copy-heavy workload and hurts lightweight
/// kernels via per-call stream overhead. We show both.
pub fn concurrent_copy() -> ((f64, f64), (f64, f64)) {
    header("Ablation — concurrent copy & execution (§5.4)");
    let run_ipsec = |concurrent| {
        let mut cfg = RouterConfig::paper_gpu();
        cfg.concurrent_copy = concurrent;
        Router::run(
            cfg,
            IpsecApp::new([0x42; 16], 0xD00D, b"ablation-key"),
            spec(TrafficKind::Ipv4Udp, 512, 40.0),
            window_ms() * MILLIS,
        )
        .out_gbps()
    };
    let run_ipv4 = |concurrent| {
        let mut cfg = RouterConfig::paper_gpu();
        cfg.concurrent_copy = concurrent;
        Router::run(
            cfg,
            workloads::ipv4_app(50_000, 1),
            spec(TrafficKind::Ipv4Udp, 64, 80.0),
            window_ms() * MILLIS,
        )
        .out_gbps()
    };
    let ipsec = (run_ipsec(true), run_ipsec(false));
    let ipv4 = (run_ipv4(true), run_ipv4(false));
    println!(
        "IPsec 512B: streams ON {:.1} / OFF {:.1} Gbps",
        ipsec.0, ipsec.1
    );
    println!(
        "IPv4   64B: streams ON {:.1} / OFF {:.1} Gbps",
        ipv4.0, ipv4.1
    );
    (ipsec, ipv4)
}

/// Opportunistic offloading (§7): CPU path under light load for
/// latency, GPU path under heavy load for throughput.
pub fn opportunistic() -> ((f64, f64), (f64, f64)) {
    opportunistic_with(200_000)
}

/// Scaled variant. Returns `((lat_off, lat_on), (tput_off, tput_on))`.
pub fn opportunistic_with(prefixes: usize) -> ((f64, f64), (f64, f64)) {
    header("Ablation — opportunistic offloading (§7), IPv6 64 B");
    let run = |opportunistic, gbps: f64| {
        let mut cfg = RouterConfig::paper_gpu();
        cfg.opportunistic = opportunistic;
        let r = Router::run(
            cfg,
            workloads::ipv6_app(prefixes, 2),
            spec(TrafficKind::Ipv6Udp, 64, gbps),
            window_ms() * MILLIS,
        );
        (r.latency.mean() / 1000.0, r.out_gbps())
    };
    let (lat_off, _) = run(false, 1.0);
    let (lat_on, _) = run(true, 1.0);
    let (_, tput_off) = run(false, 80.0);
    let (_, tput_on) = run(true, 80.0);
    println!("light load (1G):  latency OFF {lat_off:.0} us / ON {lat_on:.0} us");
    println!("heavy load (80G): throughput OFF {tput_off:.1} / ON {tput_on:.1} Gbps");
    ((lat_off, lat_on), (tput_off, tput_on))
}
