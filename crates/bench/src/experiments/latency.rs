//! Figure 12: round-trip latency vs offered load, IPv6 forwarding,
//! 64 B packets, for three configurations.

use ps_core::{Router, RouterConfig};
use ps_pktgen::{TrafficKind, TrafficSpec};
use ps_sim::MILLIS;

use crate::{header, window_ms, workloads};

/// One row: `(offered Gbps, cpu-nobatch us, cpu-batch us, gpu us)`.
pub type Fig12Row = (f64, f64, f64, f64);

fn spec(gbps: f64) -> TrafficSpec {
    TrafficSpec {
        kind: TrafficKind::Ipv6Udp,
        frame_len: 64,
        offered_bits: (gbps * 1e9) as u64,
        ports: 8,
        seed: 42,
        flows: None,
        ..TrafficSpec::default()
    }
}

fn mean_latency_us(cfg: RouterConfig, prefixes: usize, gbps: f64) -> f64 {
    let app = workloads::ipv6_app(prefixes, 2);
    let report = Router::run(cfg, app, spec(gbps), window_ms() * MILLIS);
    report.latency.mean() / 1000.0
}

/// Run Figure 12 with a scaled table.
pub fn fig12_with(prefixes: usize, loads: &[f64]) -> Vec<Fig12Row> {
    header("Figure 12 — avg RTT latency vs offered load, IPv6 64 B (us)");
    println!(
        "{:>8} | {:>14} {:>12} {:>10}",
        "offered", "CPU (batch=1)", "CPU (batch)", "CPU+GPU"
    );
    let mut rows = Vec::new();
    for &gbps in loads {
        let nobatch = mean_latency_us(RouterConfig::fig12_cpu_nobatch(), prefixes, gbps);
        let batch = mean_latency_us(RouterConfig::paper_cpu(), prefixes, gbps);
        let gpu = mean_latency_us(RouterConfig::paper_gpu(), prefixes, gbps);
        println!("{gbps:>7.0}G | {nobatch:>14.0} {batch:>12.0} {gpu:>10.0}");
        rows.push((gbps, nobatch, batch, gpu));
    }
    println!("(paper: GPU adds latency over batched CPU but stays 200-400 us)");
    rows
}

/// The paper-scale run.
pub fn fig12() -> Vec<Fig12Row> {
    fig12_with(200_000, &[1.0, 2.0, 4.0, 8.0, 12.0, 16.0, 20.0, 24.0, 28.0])
}

/// Figure 12's unbatched CPU configuration.
pub trait Fig12Config {
    /// CPU-only with batch size 1.
    fn fig12_cpu_nobatch() -> RouterConfig;
}

impl Fig12Config for RouterConfig {
    fn fig12_cpu_nobatch() -> RouterConfig {
        let mut cfg = RouterConfig::paper_cpu();
        cfg.io.batch_cap = 1;
        cfg
    }
}
