//! Degradation sweep (`ps-bench --faults <scenario>`): delivered
//! throughput versus injected fault rate for every application, plus
//! the per-class `fault_summary` ledger at the headline 1% rate.
//!
//! The scenario names come from [`FaultSpec::scenario`] (`nic`,
//! `corrupt`, `pcie`, `gpu`, `all`); `PS_FAULT_SEED` picks the fault
//! seed. Each cell re-runs the paper CPU+GPU configuration with the
//! scenario rescaled to the row's rate — rate 0 arms no plan at all,
//! so that column doubles as the fault-free reference. Results are
//! also written as flat JSON (`degradation_<scenario>.json`) for the
//! CI artifact upload.

use std::fmt::Write as _;

use ps_core::apps::IpsecApp;
use ps_core::{Router, RouterConfig, RouterReport};
use ps_fault::FaultSpec;
use ps_pktgen::{TrafficKind, TrafficSpec};
use ps_sim::MILLIS;

use crate::{header, window_ms, workloads};

/// Injection rates swept (probability per opportunity). The 1% cell
/// is the acceptance headline; 5% shows where degradation steepens.
pub const RATES: [f64; 4] = [0.0, 0.001, 0.01, 0.05];

/// One sweep cell.
#[derive(Debug, Clone)]
pub struct Row {
    /// Application name.
    pub app: &'static str,
    /// Injection rate this cell ran at.
    pub rate: f64,
    /// Delivered Gbps (input-sized for IPsec, like Figure 11(d)).
    pub out_gbps: f64,
    /// Faults injected during the run.
    pub injected: u64,
    /// Faults absorbed without losing the packet.
    pub handled: u64,
    /// Packets lost to faults.
    pub dropped: u64,
    /// Whether the ledger reconciled (injected == handled + dropped).
    pub reconciled: bool,
}

fn spec(kind: TrafficKind, frame_len: usize) -> TrafficSpec {
    TrafficSpec {
        kind,
        frame_len,
        offered_bits: 40_000_000_000,
        ports: 8,
        seed: 42,
        flows: None,
        ..TrafficSpec::default()
    }
}

fn row(app: &'static str, rate: f64, gbps: f64, r: &RouterReport) -> Row {
    Row {
        app,
        rate,
        out_gbps: gbps,
        injected: r.faults.injected(),
        handled: r.faults.handled(),
        dropped: r.faults.dropped(),
        reconciled: r.faults.reconciles(),
    }
}

/// Run the sweep for one scenario; prints the table and the 1%
/// `fault_summary` per app, returns every cell.
pub fn run(scenario: &str) -> Vec<Row> {
    let base = FaultSpec::scenario(scenario).unwrap_or_else(|| {
        eprintln!("ps-bench: unknown fault scenario {scenario} (nic|corrupt|pcie|gpu|all)");
        std::process::exit(2);
    });
    header(&format!(
        "Degradation sweep — scenario '{scenario}', seed {:#x} (throughput vs fault rate)",
        base.seed
    ));
    println!(
        "{:>8} | {:>6} | {:>8} | {:>9} | {:>9} | {:>9} | ledger",
        "app", "rate", "out Gbps", "injected", "handled", "dropped"
    );
    let window = window_ms() * MILLIS;
    let mut rows = Vec::new();
    let mut summaries = String::new();
    for (ai, app) in ["ipv4", "ipv6", "openflow", "ipsec"]
        .into_iter()
        .enumerate()
    {
        for (ri, &rate) in RATES.iter().enumerate() {
            let mut cfg = RouterConfig::paper_gpu();
            // Each cell gets its own stream derived from the master
            // seed: a short window samples only a prefix of each
            // class's sequence, and identical prefixes across cells
            // would correlate which classes appear.
            let cell = (ai as u64) << 8 | ri as u64;
            cfg.faults = base
                .with_seed(base.seed ^ cell.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .with_rate(rate);
            let s;
            let report = match app {
                "ipv4" => {
                    s = spec(TrafficKind::Ipv4Udp, 64);
                    Router::run(cfg, workloads::ipv4_app(50_000, 1), s, window)
                }
                "ipv6" => {
                    s = spec(TrafficKind::Ipv6Udp, 78);
                    Router::run(cfg, workloads::ipv6_app(20_000, 2), s, window)
                }
                "openflow" => {
                    let mut of = spec(TrafficKind::Ipv4Udp, 64);
                    of.flows = Some(8192);
                    s = of;
                    Router::run(cfg, workloads::openflow_app(&of, 8192, 32), s, window)
                }
                _ => {
                    cfg.concurrent_copy = true; // §5.4: streams pay off for IPsec
                    s = spec(TrafficKind::Ipv4Udp, 64);
                    Router::run(
                        cfg,
                        IpsecApp::new([0x42; 16], 0xD00D, b"ps-bench-hmac-key"),
                        s,
                        window,
                    )
                }
            };
            let gbps = if app == "ipsec" {
                report.out_gbps_input_sized(s.frame_len)
            } else {
                report.out_gbps()
            };
            let r = row(app, rate, gbps, &report);
            println!(
                "{:>8} | {:>6.3} | {:>8.1} | {:>9} | {:>9} | {:>9} | {}",
                r.app,
                r.rate,
                r.out_gbps,
                r.injected,
                r.handled,
                r.dropped,
                if r.reconciled { "ok" } else { "MISMATCH" }
            );
            if rate == 0.01 {
                let _ = writeln!(summaries, "\n[{app} @ rate 0.01]");
                let _ = write!(summaries, "{}", report.faults.summary_table());
            }
            rows.push(r);
        }
    }
    print!("{summaries}");
    rows
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.000".to_string()
    }
}

/// Serialize sweep rows to the `ps-bench-degradation/v1` JSON schema
/// (same hand-rolled flat style as the wall-clock baseline: no parser
/// dependency, shape pinned by a test).
pub fn to_json(scenario: &str, seed: u64, rows: &[Row]) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"schema\": \"ps-bench-degradation/v1\",");
    let _ = writeln!(s, "  \"scenario\": \"{scenario}\",");
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(s, "  \"window_ms\": {},", window_ms());
    let _ = writeln!(s, "  \"shards\": {},", ps_core::router::shards_from_env());
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"app\": \"{}\", \"rate\": {}, \"out_gbps\": {}, \"injected\": {}, \
             \"handled\": {}, \"dropped\": {}, \"reconciled\": {}}}",
            r.app,
            fmt_f64(r.rate),
            fmt_f64(r.out_gbps),
            r.injected,
            r.handled,
            r.dropped,
            r.reconciled,
        );
        s.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// `ps-bench --faults <scenario>`: run the sweep and write the JSON
/// artifact next to the working directory.
pub fn run_and_write(scenario: &str) -> std::io::Result<()> {
    let seed = FaultSpec::scenario(scenario).map(|s| s.seed).unwrap_or(0);
    let rows = run(scenario);
    let path = format!("degradation_{scenario}.json");
    std::fs::write(&path, to_json(scenario, seed, &rows))?;
    println!("\ndegradation: wrote {path} ({} rows)", rows.len());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_pinned() {
        let rows = vec![Row {
            app: "ipv4",
            rate: 0.01,
            out_gbps: 12.5,
            injected: 10,
            handled: 4,
            dropped: 6,
            reconciled: true,
        }];
        let j = to_json("all", 0xFA17, &rows);
        assert!(j.contains("\"schema\": \"ps-bench-degradation/v1\""));
        assert!(j.contains("\"scenario\": \"all\""));
        assert!(j.contains(
            "{\"app\": \"ipv4\", \"rate\": 0.010, \"out_gbps\": 12.500, \
             \"injected\": 10, \"handled\": 4, \"dropped\": 6, \"reconciled\": true}"
        ));
    }
}
