//! Figure 11: the four applications, CPU-only vs CPU+GPU.

use ps_core::apps::{IpsecApp, Ipv4App, Ipv6App};
use ps_core::{Router, RouterConfig};
use ps_pktgen::{TrafficKind, TrafficSpec};
use ps_sim::MILLIS;

use crate::{header, window_ms, workloads};

/// The standard packet-size sweep.
pub const SIZES: [usize; 6] = [64, 128, 256, 512, 1024, 1514];

fn spec(kind: TrafficKind, frame_len: usize, gbps: f64) -> TrafficSpec {
    TrafficSpec {
        kind,
        frame_len,
        offered_bits: (gbps * 1e9) as u64,
        ports: 8,
        seed: 42,
        flows: None,
        ..TrafficSpec::default()
    }
}

/// Generic CPU-vs-GPU sweep over packet sizes.
fn sweep<FA, FB>(
    title: &str,
    kind: TrafficKind,
    sizes: &[usize],
    mut cpu_app: FA,
    mut gpu_app: FB,
    gpu_cfg: RouterConfig,
    input_sized: bool,
) -> Vec<(usize, f64, f64)>
where
    FA: FnMut() -> Box<dyn RunApp>,
    FB: FnMut() -> Box<dyn RunApp>,
{
    header(title);
    println!(
        "{:>6} | {:>9} | {:>9} | {:>6}",
        "size", "CPU-only", "CPU+GPU", "gain"
    );
    let mut rows = Vec::new();
    for &size in sizes {
        let run = |app: Box<dyn RunApp>, cfg| {
            if input_sized {
                app.run_input_sized(cfg, spec(kind, size, 80.0))
            } else {
                app.run(cfg, spec(kind, size, 80.0))
            }
        };
        let cpu = run(cpu_app(), RouterConfig::paper_cpu());
        let gpu = run(gpu_app(), gpu_cfg);
        println!(
            "{size:>6} | {cpu:>9.1} | {gpu:>9.1} | {:>5.2}x",
            gpu / cpu.max(1e-9)
        );
        rows.push((size, cpu, gpu));
    }
    rows
}

/// Object-safe adapter so the sweep can run different app types.
pub trait RunApp {
    /// Run the router and return delivered Gbps.
    fn run(self: Box<Self>, cfg: RouterConfig, spec: TrafficSpec) -> f64;
    /// Run and report at the *input* frame size (the IPsec metric).
    fn run_input_sized(self: Box<Self>, cfg: RouterConfig, spec: TrafficSpec) -> f64;
}

impl<A: ps_core::App + Send + 'static> RunApp for A {
    fn run(self: Box<Self>, cfg: RouterConfig, spec: TrafficSpec) -> f64 {
        Router::run(cfg, *self, spec, window_ms() * MILLIS).out_gbps()
    }
    fn run_input_sized(self: Box<Self>, cfg: RouterConfig, spec: TrafficSpec) -> f64 {
        Router::run(cfg, *self, spec, window_ms() * MILLIS).out_gbps_input_sized(spec.frame_len)
    }
}

/// Figure 11(a): IPv4 forwarding (paper: 28 vs 39 Gbps at 64 B).
pub fn fig11a_ipv4() -> Vec<(usize, f64, f64)> {
    fig11a_with(ps_lookup::synth::ROUTEVIEWS_PREFIXES, &SIZES)
}

/// Scaled variant for tests.
pub fn fig11a_with(prefixes: usize, sizes: &[usize]) -> Vec<(usize, f64, f64)> {
    sweep(
        "Figure 11(a) — IPv4 forwarding (Gbps; paper: CPU ~28, GPU ~39 @64B)",
        TrafficKind::Ipv4Udp,
        sizes,
        || Box::new(workloads::ipv4_app(prefixes, 1)) as Box<dyn RunApp>,
        || Box::new(workloads::ipv4_app(prefixes, 1)) as Box<dyn RunApp>,
        RouterConfig::paper_gpu(),
        false,
    )
}

/// Figure 11(b): IPv6 forwarding (paper: ~8 vs 38 Gbps at 64 B).
pub fn fig11b_ipv6() -> Vec<(usize, f64, f64)> {
    fig11b_with(200_000, &SIZES)
}

/// Scaled variant for tests.
pub fn fig11b_with(prefixes: usize, sizes: &[usize]) -> Vec<(usize, f64, f64)> {
    sweep(
        "Figure 11(b) — IPv6 forwarding (Gbps; paper: CPU ~8, GPU ~38 @64B)",
        TrafficKind::Ipv6Udp,
        sizes,
        || Box::new(workloads::ipv6_app(prefixes, 2)) as Box<dyn RunApp>,
        || Box::new(workloads::ipv6_app(prefixes, 2)) as Box<dyn RunApp>,
        RouterConfig::paper_gpu(),
        false,
    )
}

/// Figure 11(c): OpenFlow, 64 B packets, sweeping table sizes.
/// Returns `(label, exact, wildcard, cpu Gbps, gpu Gbps)`.
pub fn fig11c_openflow() -> Vec<(String, u32, usize, f64, f64)> {
    header("Figure 11(c) — OpenFlow switch, 64 B (paper: GPU ~32 Gbps @32K+32)");
    let mut rows = Vec::new();
    println!(
        "{:>8} {:>9} | {:>9} | {:>9}",
        "exact", "wildcard", "CPU-only", "CPU+GPU"
    );
    // Exact-match sweep (traffic hits exact entries; 32 decoy
    // wildcards are scanned only on the rare miss).
    for &exact in &[1024u32, 8192, 32_768, 65_536] {
        let (cpu, gpu) = run_openflow(exact, 32);
        println!("{exact:>8} {:>9} | {cpu:>9.1} | {gpu:>9.1}", 32);
        rows.push((format!("exact-{exact}"), exact, 32, cpu, gpu));
    }
    // Wildcard sweep (no exact entries: every packet scans the table).
    for &wild in &[16usize, 64, 256] {
        let (cpu, gpu) = run_openflow(0, wild);
        println!("{:>8} {wild:>9} | {cpu:>9.1} | {gpu:>9.1}", 0);
        rows.push((format!("wild-{wild}"), 0, wild, cpu, gpu));
    }
    rows
}

/// One OpenFlow configuration, both modes.
pub fn run_openflow(exact: u32, wildcards: usize) -> (f64, f64) {
    let mut s = spec(TrafficKind::Ipv4Udp, 64, 80.0);
    if exact > 0 {
        s.flows = Some(exact);
    }
    let cpu =
        Box::new(workloads::openflow_app(&s, exact, wildcards)).run(RouterConfig::paper_cpu(), s);
    let gpu =
        Box::new(workloads::openflow_app(&s, exact, wildcards)).run(RouterConfig::paper_gpu(), s);
    (cpu, gpu)
}

/// Figure 11(d): IPsec gateway (paper: ~2.8 vs 10.2 Gbps at 64 B,
/// ~5.7 vs 20 Gbps at 1514 B; GPU gain ~3.5x).
pub fn fig11d_ipsec() -> Vec<(usize, f64, f64)> {
    fig11d_with(&SIZES)
}

/// Scaled variant for tests.
pub fn fig11d_with(sizes: &[usize]) -> Vec<(usize, f64, f64)> {
    let mut gpu_cfg = RouterConfig::paper_gpu();
    gpu_cfg.concurrent_copy = true; // §5.4: streams pay off for IPsec
    sweep(
        "Figure 11(d) — IPsec gateway (input Gbps; paper: ~3.5x GPU gain)",
        TrafficKind::Ipv4Udp,
        sizes,
        || Box::new(IpsecApp::new([0x42; 16], 0xD00D, b"ps-bench-hmac-key")) as Box<dyn RunApp>,
        || Box::new(IpsecApp::new([0x42; 16], 0xD00D, b"ps-bench-hmac-key")) as Box<dyn RunApp>,
        gpu_cfg,
        true,
    )
}

/// Convenience constructors used by examples/tests.
pub fn ipv4_paper_app() -> Ipv4App {
    workloads::ipv4_app(ps_lookup::synth::ROUTEVIEWS_PREFIXES, 1)
}

/// IPv6 app at paper scale.
pub fn ipv6_paper_app() -> Ipv6App {
    workloads::ipv6_app(200_000, 2)
}
