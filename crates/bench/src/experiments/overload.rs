//! Overload sweep — latency and drop behavior across the knee.
//!
//! The paper evaluates throughput at saturating load and latency at
//! moderate load; this experiment walks the whole knee. It first
//! measures the router's delivered ceiling (IPv4 minimal forwarding,
//! 64 B, CPU+GPU) under a saturating open-loop offer, then sweeps
//! offered load from 0.5x to 2.0x of that ceiling for each latency
//! profile:
//!
//! * `fixed`: the paper pipeline — 64-packet fetch cap, moderated
//!   interrupts, open-loop source ([`ps_core::LatencyConfig::off`]);
//! * `adaptive`: depth-scaled fetch cap plus eager interrupts while
//!   queues are shallow ([`ps_core::LatencyConfig::adaptive`]), with
//!   opportunistic offload (§7) so the now-small low-load chunks take
//!   the CPU path instead of queueing through the GPU pipeline;
//! * `adaptive+prio`: adaptive, with ~1/16 of flows classified
//!   latency-critical and riding the priority lanes;
//! * `closed-loop`: fixed batching but a backpressured source — the
//!   generator reads the target RX ring and drops at the source above
//!   the high watermark, so overload converts into an explicit
//!   generator-side ledger entry instead of NIC tail drops.
//!
//! Each cell reports delivered throughput, the RX→TX sojourn tail
//! (p50/p99/p999/max — the residence time batching and queue depth
//! govern), the queue-growth gauge (deepest ring occupancy), and the
//! full drop ledger decomposed by cause. The headline the experiment
//! is judged on: adaptive batching cuts p99 sojourn well below fixed
//! at 0.5x load while delivering the same throughput at 1.0x.

use std::fmt::Write as _;

use ps_core::{LatencyConfig, Router, RouterConfig};
use ps_pktgen::{DropLedger, TrafficKind, TrafficSpec};
use ps_sim::MILLIS;

use crate::{header, window_ms, workloads};

/// Load factors swept, as fractions of the measured ceiling.
pub const FACTORS: [f64; 6] = [0.5, 0.75, 1.0, 1.25, 1.5, 2.0];

/// Closed-loop high watermark: the source stops offering when the
/// target RX ring holds this many frames. Half the default 128-entry
/// ring keeps headroom for in-flight DMA completions.
pub const HIGH_WATERMARK: u32 = 64;

/// One measured cell of the sweep.
#[derive(Debug, Clone)]
pub struct Row {
    /// Latency profile label.
    pub profile: &'static str,
    /// Offered load as a fraction of the measured ceiling.
    pub factor: f64,
    /// Offered load (Gbps, Ethernet-overhead metric).
    pub in_gbps: f64,
    /// Delivered throughput (Gbps).
    pub out_gbps: f64,
    /// Median RX→TX sojourn (µs).
    pub p50_us: f64,
    /// p99 sojourn (µs).
    pub p99_us: f64,
    /// p999 sojourn (µs).
    pub p999_us: f64,
    /// Maximum sojourn (µs).
    pub max_us: f64,
    /// Deepest RX-ring occupancy reached (queue-growth gauge).
    pub peak_ring: usize,
    /// Every drop decomposed by cause.
    pub drops: DropLedger,
}

fn spec_at(gbps: f64) -> TrafficSpec {
    TrafficSpec {
        kind: TrafficKind::Ipv4Udp,
        frame_len: 64,
        offered_bits: (gbps * 1e9) as u64,
        ports: 8,
        seed: 42,
        flows: None,
        ..TrafficSpec::default()
    }
}

/// Measure the delivered ceiling: the paper pipeline under a
/// saturating 80 Gbps open-loop offer. Virtual-time deterministic per
/// window, so every sweep over the same window sees the same ceiling.
pub fn measure_ceiling(prefixes: usize, window: u64) -> f64 {
    let r = Router::run(
        RouterConfig::paper_gpu(),
        workloads::ipv4_app(prefixes, 1),
        spec_at(80.0),
        window,
    );
    r.out_gbps()
}

/// One latency profile of the sweep.
struct Profile {
    name: &'static str,
    latency: LatencyConfig,
    /// Closed-loop source with [`HIGH_WATERMARK`].
    closed: bool,
    /// Opportunistic offload (§7): chunks under the threshold take
    /// the CPU path. Paired with adaptive batching because that is
    /// what shrinks low-load chunks below the threshold in the first
    /// place — under fixed 64-caps every chunk rides the GPU.
    opportunistic: bool,
}

/// The latency profiles crossed with the load factors.
fn profiles() -> Vec<Profile> {
    vec![
        Profile {
            name: "fixed",
            latency: LatencyConfig::off(),
            closed: false,
            opportunistic: false,
        },
        Profile {
            name: "adaptive",
            latency: LatencyConfig::adaptive(),
            closed: false,
            opportunistic: true,
        },
        Profile {
            name: "adaptive+prio",
            latency: LatencyConfig::adaptive().with_priority(16),
            closed: false,
            opportunistic: true,
        },
        Profile {
            name: "closed-loop",
            latency: LatencyConfig::off(),
            closed: true,
            opportunistic: false,
        },
    ]
}

fn cell(profile: &'static str, factor: f64, r: &ps_core::RouterReport) -> Row {
    Row {
        profile,
        factor,
        in_gbps: r.in_gbps(),
        out_gbps: r.out_gbps(),
        p50_us: r.sojourn.p50() as f64 / 1e3,
        p99_us: r.sojourn.p99() as f64 / 1e3,
        p999_us: r.sojourn.p999() as f64 / 1e3,
        max_us: r.sojourn.max() as f64 / 1e3,
        peak_ring: r.peak_ring_depth,
        drops: r.drops,
    }
}

/// The full sweep at the standard table size.
pub fn run() -> Vec<Row> {
    run_with(50_000)
}

/// Scaled variant (`prefixes` sizes the IPv4 FIB).
pub fn run_with(prefixes: usize) -> Vec<Row> {
    header("Overload sweep — latency profiles across the throughput knee");
    let window = window_ms() * MILLIS;
    let ceiling = measure_ceiling(prefixes, window);
    println!(
        "measured ceiling: {ceiling:.1} Gbps delivered (ipv4 64B, open loop, 80 Gbps offered)"
    );
    println!(
        "{:<14} {:>6} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>6} {:>8} {:>8} {:>8} {:>8}",
        "profile",
        "factor",
        "in_gbps",
        "out_gbps",
        "p50_us",
        "p99_us",
        "p999_us",
        "max_us",
        "peak",
        "bp",
        "far_fut",
        "nic",
        "tail"
    );
    let mut rows = Vec::new();
    for p in profiles() {
        for &factor in &FACTORS {
            let mut cfg = RouterConfig::paper_gpu();
            cfg.latency = p.latency;
            cfg.opportunistic = p.opportunistic;
            let mut sp = spec_at(ceiling).scaled(factor);
            if p.closed {
                sp = sp.closed_loop(HIGH_WATERMARK);
            }
            let r = Router::run(cfg, workloads::ipv4_app(prefixes, 1), sp, window);
            let row = cell(p.name, factor, &r);
            print_row(&row);
            rows.push(row);
        }
    }
    print_headlines(&rows);
    rows
}

fn print_row(r: &Row) {
    println!(
        "{:<14} {:>5.2}x {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>6} {:>8} {:>8} {:>8} {:>8}",
        r.profile,
        r.factor,
        r.in_gbps,
        r.out_gbps,
        r.p50_us,
        r.p99_us,
        r.p999_us,
        r.max_us,
        r.peak_ring,
        r.drops.backpressure,
        r.drops.far_future,
        r.drops.nic_admission + r.drops.nic_fault,
        r.drops.ring_tail,
    );
}

/// Find the cell for `(profile, factor)`.
pub fn at<'a>(rows: &'a [Row], profile: &str, factor: f64) -> Option<&'a Row> {
    rows.iter()
        .find(|r| r.profile == profile && (r.factor - factor).abs() < 1e-9)
}

/// The headline deltas the sweep is judged on.
pub fn print_headlines(rows: &[Row]) {
    if let (Some(f), Some(a)) = (at(rows, "fixed", 0.5), at(rows, "adaptive", 0.5)) {
        println!(
            "0.5x: adaptive p99 sojourn {:.1} us vs fixed {:.1} us ({:.1}x lower)",
            a.p99_us,
            f.p99_us,
            f.p99_us / a.p99_us.max(1e-9),
        );
    }
    if let (Some(f), Some(a)) = (at(rows, "fixed", 1.0), at(rows, "adaptive", 1.0)) {
        println!(
            "1.0x: adaptive delivers {:.1} Gbps vs fixed {:.1} Gbps ({:+.1}%)",
            a.out_gbps,
            f.out_gbps,
            (a.out_gbps / f.out_gbps.max(1e-9) - 1.0) * 100.0,
        );
    }
    if let (Some(f), Some(c)) = (at(rows, "fixed", 2.0), at(rows, "closed-loop", 2.0)) {
        println!(
            "2.0x: closed loop moves {} tail drops to {} source drops; p99 {:.1} -> {:.1} us",
            f.drops.ring_tail + f.drops.nic_admission,
            c.drops.backpressure,
            f.p99_us,
            c.p99_us,
        );
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.000".to_string()
    }
}

/// Serialize sweep rows to the `ps-bench-overload/v1` JSON schema
/// (hand-rolled flat style, shape pinned by a test — same policy as
/// the baseline and staging schemas).
pub fn to_json(rows: &[Row]) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"schema\": \"ps-bench-overload/v1\",");
    let _ = writeln!(s, "  \"window_ms\": {},", window_ms());
    let _ = writeln!(s, "  \"shards\": {},", ps_core::router::shards_from_env());
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"profile\": \"{}\", \"factor\": {}, \"in_gbps\": {}, \"out_gbps\": {}, \
             \"p50_us\": {}, \"p99_us\": {}, \"p999_us\": {}, \"max_us\": {}, \
             \"peak_ring\": {}, \"drops_backpressure\": {}, \"drops_far_future\": {}, \
             \"drops_nic_admission\": {}, \"drops_nic_fault\": {}, \"drops_ring_tail\": {}}}",
            r.profile,
            fmt_f64(r.factor),
            fmt_f64(r.in_gbps),
            fmt_f64(r.out_gbps),
            fmt_f64(r.p50_us),
            fmt_f64(r.p99_us),
            fmt_f64(r.p999_us),
            fmt_f64(r.max_us),
            r.peak_ring,
            r.drops.backpressure,
            r.drops.far_future,
            r.drops.nic_admission,
            r.drops.nic_fault,
            r.drops.ring_tail,
        );
        s.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// `ps-bench --overload [out.json]`: run the sweep and write the JSON
/// artifact.
pub fn run_and_write(path: &str) -> std::io::Result<()> {
    let rows = run();
    std::fs::write(path, to_json(&rows))?;
    println!("overload sweep: wrote {path} ({} rows)", rows.len());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake(profile: &'static str, factor: f64, p99: f64) -> Row {
        Row {
            profile,
            factor,
            in_gbps: 20.0,
            out_gbps: 19.5,
            p50_us: 40.0,
            p99_us: p99,
            p999_us: p99 * 1.5,
            max_us: p99 * 2.0,
            peak_ring: 17,
            drops: DropLedger {
                backpressure: 5,
                ..DropLedger::default()
            },
        }
    }

    #[test]
    fn json_shape_is_pinned() {
        let rows = vec![fake("fixed", 0.5, 210.0)];
        let j = to_json(&rows);
        assert!(j.contains("\"schema\": \"ps-bench-overload/v1\""));
        assert!(j.contains(
            "{\"profile\": \"fixed\", \"factor\": 0.500, \"in_gbps\": 20.000, \
             \"out_gbps\": 19.500, \"p50_us\": 40.000, \"p99_us\": 210.000, \
             \"p999_us\": 315.000, \"max_us\": 420.000, \"peak_ring\": 17, \
             \"drops_backpressure\": 5, \"drops_far_future\": 0, \
             \"drops_nic_admission\": 0, \"drops_nic_fault\": 0, \"drops_ring_tail\": 0}"
        ));
    }

    #[test]
    fn cell_lookup_matches_profile_and_factor() {
        let rows = vec![fake("fixed", 0.5, 210.0), fake("adaptive", 0.5, 60.0)];
        assert!((at(&rows, "adaptive", 0.5).unwrap().p99_us - 60.0).abs() < 1e-9);
        assert!(at(&rows, "adaptive", 1.0).is_none());
    }
}
