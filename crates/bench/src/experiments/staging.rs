//! Staging ablation — SoA columnar gather (the default, §4.3.1's
//! "slim data structure" carried to the GPU boundary) against the two
//! endpoints it sits between:
//!
//! * `frames`: every staged packet ships its whole frame over PCIe
//!   into a 2 KB device slot and the kernel digs the field out — the
//!   naive staging the paper's compact-metadata optimization removes;
//! * `direct-dma`: NIC RX DMA lands the column in device memory
//!   (NaNet/GPUDirect-style peer transfer), so the host-side gather
//!   copy disappears entirely and only results cross back.
//!
//! Virtual-time *results* are identical across modes by construction
//! (the kernels read the same bytes); what moves is PCIe traffic and
//! therefore modeled time. The sweep crosses the three modes with the
//! master's gather depth on the IPv4 64 B workload — the smallest
//! column (4 B of a 64 B frame) and so the starkest ratio — and adds
//! one OpenFlow row per mode for a second column width (32 B key).

use std::fmt::Write as _;

use ps_core::{Router, RouterConfig, Staging};
use ps_pktgen::{TrafficKind, TrafficSpec};
use ps_sim::MILLIS;

use crate::{header, window_ms, workloads};

/// The three staging modes in presentation order.
pub const MODES: [Staging; 3] = [Staging::Frames, Staging::Soa, Staging::DirectDma];

/// Gather depths the IPv4 sweep crosses with the modes (the paper
/// config gathers up to 24 chunks per shading step).
pub const GATHER_DEPTHS: [usize; 3] = [4, 12, 24];

/// One measured cell of the ablation.
#[derive(Debug, Clone)]
pub struct Row {
    /// Workload (`ipv4-64B`, `openflow-64B`).
    pub app: &'static str,
    /// Staging mode label.
    pub mode: &'static str,
    /// `max_gather_chunks` for this cell.
    pub gather: usize,
    /// Delivered throughput (Gbps, Ethernet-overhead metric).
    pub out_gbps: f64,
    /// Median round-trip latency (µs).
    pub p50_us: f64,
    /// Host→device staging bytes per staged packet.
    pub h2d_bpp: f64,
    /// Device→host result bytes per staged packet.
    pub d2h_bpp: f64,
    /// Packets staged through the column layer.
    pub staged_pkts: u64,
}

fn spec(kind: TrafficKind, frame_len: usize, gbps: f64) -> TrafficSpec {
    TrafficSpec {
        kind,
        frame_len,
        offered_bits: (gbps * 1e9) as u64,
        ports: 8,
        seed: 42,
        flows: None,
        ..TrafficSpec::default()
    }
}

fn cell(
    app: &'static str,
    mode: Staging,
    gather: usize,
    cfg: RouterConfig,
    report: ps_core::RouterReport,
) -> Row {
    Row {
        app,
        mode: mode.label(),
        gather: if cfg.gather { gather } else { 1 },
        out_gbps: report.out_gbps(),
        p50_us: report.latency.p50() as f64 / 1e3,
        h2d_bpp: report.h2d_bytes_per_pkt().unwrap_or(0.0),
        d2h_bpp: report.d2h_bytes_per_pkt().unwrap_or(0.0),
        staged_pkts: report.staging.map_or(0, |(_, _, p)| p),
    }
}

/// The full sweep at the standard table sizes.
pub fn run() -> Vec<Row> {
    run_with(50_000)
}

/// Scaled variant (`prefixes` sizes the IPv4 FIB).
pub fn run_with(prefixes: usize) -> Vec<Row> {
    header("Ablation — GPU staging: frames vs SoA columns vs NIC->GPU direct DMA");
    let window = window_ms() * MILLIS;
    let mut rows = Vec::new();
    println!(
        "{:<14} {:<11} {:>6} {:>9} {:>8} {:>10} {:>10} {:>10}",
        "app", "staging", "gather", "Gbps", "p50_us", "h2d_B/pkt", "d2h_B/pkt", "staged"
    );
    for &mode in &MODES {
        for &gather in &GATHER_DEPTHS {
            let mut cfg = RouterConfig::paper_gpu();
            cfg.staging = mode;
            cfg.max_gather_chunks = gather;
            let report = Router::run(
                cfg,
                workloads::ipv4_app(prefixes, 1),
                spec(TrafficKind::Ipv4Udp, 64, 80.0),
                window,
            );
            let r = cell("ipv4-64B", mode, gather, cfg, report);
            print_row(&r);
            rows.push(r);
        }
    }
    // One OpenFlow row per mode at the paper gather depth: the 32 B
    // key column, a second point on the bytes-per-packet axis.
    for &mode in &MODES {
        let mut cfg = RouterConfig::paper_gpu();
        cfg.staging = mode;
        let mut of_spec = spec(TrafficKind::Ipv4Udp, 64, 80.0);
        of_spec.flows = Some(8192);
        let report = Router::run(
            cfg,
            workloads::openflow_app(&of_spec, 8192, 32),
            of_spec,
            window,
        );
        let r = cell("openflow-64B", mode, cfg.max_gather_chunks, cfg, report);
        print_row(&r);
        rows.push(r);
    }
    print_deltas(&rows);
    rows
}

fn print_row(r: &Row) {
    println!(
        "{:<14} {:<11} {:>6} {:>9.1} {:>8.0} {:>10.1} {:>10.1} {:>10}",
        r.app, r.mode, r.gather, r.out_gbps, r.p50_us, r.h2d_bpp, r.d2h_bpp, r.staged_pkts
    );
}

/// Find the sweep cell for `(app, mode)` at the deepest gather.
fn at_full_gather<'a>(rows: &'a [Row], app: &str, mode: &str) -> Option<&'a Row> {
    rows.iter()
        .filter(|r| r.app == app && r.mode == mode)
        .max_by_key(|r| r.gather)
}

/// The headline deltas the ablation is judged on.
pub fn print_deltas(rows: &[Row]) {
    for app in ["ipv4-64B", "openflow-64B"] {
        let (Some(frames), Some(soa), Some(direct)) = (
            at_full_gather(rows, app, "frames"),
            at_full_gather(rows, app, "soa"),
            at_full_gather(rows, app, "direct-dma"),
        ) else {
            continue;
        };
        println!(
            "{app}: h2d bytes/pkt frames {:.1} -> soa {:.1} ({:.1}x smaller)",
            frames.h2d_bpp,
            soa.h2d_bpp,
            frames.h2d_bpp / soa.h2d_bpp.max(1e-9),
        );
        println!(
            "{app}: direct-dma vs soa: {:+.1} Gbps, p50 {:+.0} us, h2d {:.1} -> {:.1} B/pkt",
            direct.out_gbps - soa.out_gbps,
            direct.p50_us - soa.p50_us,
            soa.h2d_bpp,
            direct.h2d_bpp,
        );
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.000".to_string()
    }
}

/// Serialize sweep rows to the `ps-bench-staging/v1` JSON schema
/// (hand-rolled flat style, shape pinned by a test — no parser
/// dependency, same policy as the baseline and degradation schemas).
pub fn to_json(rows: &[Row]) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"schema\": \"ps-bench-staging/v1\",");
    let _ = writeln!(s, "  \"window_ms\": {},", window_ms());
    let _ = writeln!(s, "  \"shards\": {},", ps_core::router::shards_from_env());
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"app\": \"{}\", \"mode\": \"{}\", \"gather\": {}, \"out_gbps\": {}, \
             \"p50_us\": {}, \"h2d_bytes_per_pkt\": {}, \"d2h_bytes_per_pkt\": {}, \
             \"staged_pkts\": {}}}",
            r.app,
            r.mode,
            r.gather,
            fmt_f64(r.out_gbps),
            fmt_f64(r.p50_us),
            fmt_f64(r.h2d_bpp),
            fmt_f64(r.d2h_bpp),
            r.staged_pkts,
        );
        s.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// `ps-bench --ablation direct-dma [out.json]`: run the sweep and
/// write the JSON artifact.
pub fn run_and_write(path: &str) -> std::io::Result<()> {
    let rows = run();
    std::fs::write(path, to_json(&rows))?;
    println!("staging ablation: wrote {path} ({} rows)", rows.len());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake(app: &'static str, mode: &'static str, gather: usize, h2d: f64) -> Row {
        Row {
            app,
            mode,
            gather,
            out_gbps: 30.0,
            p50_us: 200.0,
            h2d_bpp: h2d,
            d2h_bpp: 2.0,
            staged_pkts: 1000,
        }
    }

    #[test]
    fn json_shape_is_pinned() {
        let rows = vec![fake("ipv4-64B", "soa", 24, 4.0)];
        let j = to_json(&rows);
        assert!(j.contains("\"schema\": \"ps-bench-staging/v1\""));
        assert!(j.contains(
            "{\"app\": \"ipv4-64B\", \"mode\": \"soa\", \"gather\": 24, \"out_gbps\": 30.000, \
             \"p50_us\": 200.000, \"h2d_bytes_per_pkt\": 4.000, \"d2h_bytes_per_pkt\": 2.000, \
             \"staged_pkts\": 1000}"
        ));
    }

    #[test]
    fn deepest_gather_row_wins_delta_selection() {
        let rows = vec![
            fake("ipv4-64B", "soa", 4, 4.0),
            fake("ipv4-64B", "soa", 24, 4.5),
        ];
        assert!((at_full_gather(&rows, "ipv4-64B", "soa").unwrap().h2d_bpp - 4.5).abs() < 1e-9);
        assert!(at_full_gather(&rows, "ipv4-64B", "frames").is_none());
    }
}
