//! Wall-clock microbenchmarks of the forwarding tables: the real data
//! structures the simulated router executes (not the virtual-time
//! models). One runner group per algorithm.

use ps_bench::runner::{black_box, Runner, Throughput};
use ps_bench::workloads;
use ps_lookup::dir24::Dir24Table;
use ps_lookup::synth;
use ps_lookup::waldvogel::V6Table;

fn main() {
    let mut r = Runner::new("lookup");

    let routes = workloads::ipv4_routes(100_000, 1);
    let table = Dir24Table::build(&routes);
    let addrs = synth::random_v4_addrs(4096, 2);
    r.bench(
        "dir24/lookup_4k_random",
        Some(Throughput::Elements(addrs.len() as u64)),
        || {
            let mut acc = 0u32;
            for &a in &addrs {
                acc = acc.wrapping_add(u32::from(table.lookup_host(black_box(a))));
            }
            acc
        },
    );
    r.bench("dir24/build_100k_prefixes", None, || {
        Dir24Table::build(black_box(&routes))
    });

    let routes6 = workloads::ipv6_routes(50_000, 1);
    let table6 = V6Table::build(&routes6);
    let addrs6 = synth::random_v6_addrs(4096, 3);
    r.bench(
        "waldvogel/lookup_4k_random",
        Some(Throughput::Elements(addrs6.len() as u64)),
        || {
            let mut acc = 0u32;
            for &a in &addrs6 {
                acc = acc.wrapping_add(u32::from(table6.lookup_host(black_box(a))));
            }
            acc
        },
    );

    r.finish();
}
