//! Wall-clock microbenchmarks of the forwarding tables: the real data
//! structures the simulated router executes (not the virtual-time
//! models). One criterion group per algorithm.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ps_bench::workloads;
use ps_lookup::dir24::Dir24Table;
use ps_lookup::synth;
use ps_lookup::waldvogel::V6Table;

fn dir24(c: &mut Criterion) {
    let routes = workloads::ipv4_routes(100_000, 1);
    let table = Dir24Table::build(&routes);
    let addrs = synth::random_v4_addrs(4096, 2);
    let mut g = c.benchmark_group("dir24");
    g.throughput(Throughput::Elements(addrs.len() as u64));
    g.bench_function("lookup_4k_random", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &a in &addrs {
                acc = acc.wrapping_add(u32::from(table.lookup_host(black_box(a))));
            }
            acc
        })
    });
    g.finish();

    c.bench_function("dir24/build_100k_prefixes", |b| {
        b.iter(|| Dir24Table::build(black_box(&routes)))
    });
}

fn waldvogel(c: &mut Criterion) {
    let routes = workloads::ipv6_routes(50_000, 1);
    let table = V6Table::build(&routes);
    let addrs = synth::random_v6_addrs(4096, 3);
    let mut g = c.benchmark_group("waldvogel");
    g.throughput(Throughput::Elements(addrs.len() as u64));
    g.bench_function("lookup_4k_random", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &a in &addrs {
                acc = acc.wrapping_add(u32::from(table.lookup_host(black_box(a))));
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(benches, dir24, waldvogel);
criterion_main!(benches);
