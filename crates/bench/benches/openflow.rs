//! Wall-clock microbenchmarks of the OpenFlow tables.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ps_bench::workloads;
use ps_openflow::flow_hash;
use ps_pktgen::TrafficSpec;

fn tables(c: &mut Criterion) {
    let mut spec = TrafficSpec::ipv4_64b(1.0, 17);
    spec.flows = Some(1024);
    let keys = workloads::exact_keys(&spec, 1024);
    let mut sw = workloads::openflow_switch(&spec, 1024, 64);

    let mut g = c.benchmark_group("openflow");
    g.throughput(Throughput::Elements(keys.len() as u64));
    g.bench_function("flow_hash_1k", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for k in &keys {
                acc = acc.wrapping_add(flow_hash(black_box(k)));
            }
            acc
        })
    });
    g.bench_function("exact_hit_1k", |b| {
        b.iter(|| {
            let mut hits = 0;
            for k in &keys {
                if sw.lookup(black_box(k), 64).exact_hit {
                    hits += 1;
                }
            }
            hits
        })
    });
    g.finish();

    // Wildcard scans: a key that misses the exact table.
    let mut miss = keys[0];
    miss.tp_dst ^= 0x5555;
    c.bench_function("openflow/wildcard_scan_64_entries", |b| {
        b.iter(|| sw.lookup(black_box(&miss), 64))
    });
}

criterion_group!(benches, tables);
criterion_main!(benches);
