//! Wall-clock microbenchmarks of the OpenFlow tables.

use ps_bench::runner::{black_box, Runner, Throughput};
use ps_bench::workloads;
use ps_openflow::flow_hash;
use ps_pktgen::TrafficSpec;

fn main() {
    let mut r = Runner::new("openflow");

    let mut spec = TrafficSpec::ipv4_64b(1.0, 17);
    spec.flows = Some(1024);
    let keys = workloads::exact_keys(&spec, 1024);
    let mut sw = workloads::openflow_switch(&spec, 1024, 64);

    let tp = Some(Throughput::Elements(keys.len() as u64));
    r.bench("openflow/flow_hash_1k", tp, || {
        let mut acc = 0u32;
        for k in &keys {
            acc = acc.wrapping_add(flow_hash(black_box(k)));
        }
        acc
    });
    r.bench("openflow/exact_hit_1k", tp, || {
        let mut hits = 0;
        for k in &keys {
            if sw.lookup(black_box(k), 64).exact_hit {
                hits += 1;
            }
        }
        hits
    });

    // Wildcard scans: a key that misses the exact table.
    let mut miss = keys[0];
    miss.tp_dst ^= 0x5555;
    r.bench("openflow/wildcard_scan_64_entries", None, || {
        sw.lookup(black_box(&miss), 64)
    });

    r.finish();
}
