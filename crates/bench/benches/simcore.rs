//! Wall-clock microbenchmarks of the simulation substrate itself:
//! event-queue throughput and a short end-to-end router run (how many
//! virtual packets per host-second the reproduction simulates), plus
//! the virtual-clock throughput of that run — both clocks, one report.

use ps_bench::runner::{black_box, Runner, Throughput};
use ps_core::apps::{ForwardPattern, MinimalApp};
use ps_core::{Router, RouterConfig};
use ps_pktgen::TrafficSpec;
use ps_sim::{Model, Scheduler, Simulation, MILLIS};

struct Pong {
    left: u64,
}

impl Model for Pong {
    type Event = u64;
    fn handle(&mut self, sched: &mut Scheduler<u64>, ev: u64) {
        if self.left > 0 {
            self.left -= 1;
            sched.after(10, ev + 1);
        }
    }
}

fn main() {
    let mut r = Runner::new("simcore");

    r.bench(
        "sim-core/dispatch_100k_events",
        Some(Throughput::Elements(100_000)),
        || {
            let mut sim = Simulation::new(Pong { left: 100_000 });
            sim.schedule(0, 0);
            black_box(sim.run_to_completion())
        },
    );

    r.bench("router/minimal_forwarding_1ms_20G", None, || {
        let cfg = RouterConfig::paper_cpu();
        let app = MinimalApp::new(ForwardPattern::SameNode, 8);
        let report = Router::run(cfg, app, TrafficSpec::ipv4_64b(20.0, 1), MILLIS);
        black_box(report.delivered.packets)
    });

    // The same run on the virtual clock: a deterministic throughput
    // figure (identical on every host, byte-stable per seed).
    let report = Router::run(
        RouterConfig::paper_cpu(),
        MinimalApp::new(ForwardPattern::SameNode, 8),
        TrafficSpec::ipv4_64b(20.0, 1),
        MILLIS,
    );
    r.record_virtual(
        "router/minimal_forwarding_1ms_20G/delivered",
        report.delivered.packets as f64,
        "pkts/virtual-ms",
    );

    r.finish();
}
