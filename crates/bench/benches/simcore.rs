//! Wall-clock microbenchmarks of the simulation substrate itself:
//! event-queue throughput and a short end-to-end router run (how many
//! virtual packets per host-second the reproduction simulates).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ps_core::apps::{ForwardPattern, MinimalApp};
use ps_core::{Router, RouterConfig};
use ps_pktgen::TrafficSpec;
use ps_sim::{Model, Scheduler, Simulation, MILLIS};

struct Pong {
    left: u64,
}

impl Model for Pong {
    type Event = u64;
    fn handle(&mut self, sched: &mut Scheduler<u64>, ev: u64) {
        if self.left > 0 {
            self.left -= 1;
            sched.after(10, ev + 1);
        }
    }
}

fn event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim-core");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("dispatch_100k_events", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(Pong { left: 100_000 });
            sim.schedule(0, 0);
            black_box(sim.run_to_completion())
        })
    });
    g.finish();
}

fn router_run(c: &mut Criterion) {
    c.bench_function("router/minimal_forwarding_1ms_20G", |b| {
        b.iter(|| {
            let cfg = RouterConfig::paper_cpu();
            let app = MinimalApp::new(ForwardPattern::SameNode, 8);
            let r = Router::run(cfg, app, TrafficSpec::ipv4_64b(20.0, 1), MILLIS);
            black_box(r.delivered.packets)
        })
    });
}

criterion_group!(benches, event_queue, router_run);
criterion_main!(benches);
