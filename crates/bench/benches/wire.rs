//! Wall-clock microbenchmarks of the wire-format hot paths: parsing,
//! classification, RSS hashing, checksum updates.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ps_core::router::rss_hash;
use ps_net::ethernet::MacAddr;
use ps_net::ipv4::Ipv4Packet;
use ps_net::{classify, FlowKey, PacketBuilder};

fn frame() -> Vec<u8> {
    PacketBuilder::udp_v4(
        MacAddr::local(1),
        MacAddr::local(2),
        "10.1.2.3".parse().unwrap(),
        "172.16.9.9".parse().unwrap(),
        4000,
        53,
        64,
    )
}

fn parse_paths(c: &mut Criterion) {
    let f = frame();
    let mut g = c.benchmark_group("wire");
    g.throughput(Throughput::Elements(1));
    g.bench_function("classify_64B", |b| {
        b.iter(|| classify(black_box(&f), &[]))
    });
    g.bench_function("flow_key_extract", |b| {
        b.iter(|| FlowKey::extract(3, black_box(&f)).expect("valid"))
    });
    g.bench_function("rss_toeplitz_hash", |b| b.iter(|| rss_hash(black_box(&f))));
    g.bench_function("ttl_decrement_incremental_checksum", |b| {
        let mut f = frame();
        b.iter(|| {
            let mut ip = Ipv4Packet::new_unchecked(&mut f[14..]);
            ip.set_ttl(64);
            ip.fill_checksum();
            ip.decrement_ttl()
        })
    });
    g.finish();
}

criterion_group!(benches, parse_paths);
criterion_main!(benches);
