//! Wall-clock microbenchmarks of the wire-format hot paths: parsing,
//! classification, RSS hashing, checksum updates.

use ps_bench::runner::{black_box, Runner, Throughput};
use ps_core::router::rss_hash;
use ps_net::ethernet::MacAddr;
use ps_net::ipv4::Ipv4Packet;
use ps_net::{classify, FlowKey, PacketBuilder};

fn frame() -> Vec<u8> {
    PacketBuilder::udp_v4(
        MacAddr::local(1),
        MacAddr::local(2),
        "10.1.2.3".parse().unwrap(),
        "172.16.9.9".parse().unwrap(),
        4000,
        53,
        64,
    )
}

fn main() {
    let mut r = Runner::new("wire");
    let f = frame();
    let tp = Some(Throughput::Elements(1));

    r.bench("wire/classify_64B", tp, || classify(black_box(&f), &[]));
    r.bench("wire/flow_key_extract", tp, || {
        FlowKey::extract(3, black_box(&f)).expect("valid")
    });
    r.bench("wire/rss_toeplitz_hash", tp, || rss_hash(black_box(&f)));

    let mut g = frame();
    r.bench("wire/ttl_decrement_incremental_checksum", tp, || {
        let mut ip = Ipv4Packet::new_unchecked(&mut g[14..]);
        ip.set_ttl(64);
        ip.fill_checksum();
        ip.decrement_ttl()
    });

    r.finish();
}
