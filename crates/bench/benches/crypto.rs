//! Wall-clock microbenchmarks of the IPsec crypto substrate.

use ps_bench::runner::{black_box, Runner, Throughput};
use ps_crypto::aes::CtrStream;
use ps_crypto::esp::{decrypt_tunnel, encrypt_tunnel, SecurityAssociation};
use ps_crypto::hmac::HmacSha1;
use ps_crypto::sha1::Sha1;

fn main() {
    let mut r = Runner::new("crypto");

    let ctr = CtrStream::new(&[0x42; 16], 0xD00D);
    let iv = [1, 2, 3, 4, 5, 6, 7, 8];
    for size in [64usize, 1504] {
        let mut data = vec![0xA5u8; size];
        r.bench(
            &format!("aes-ctr/xor_{size}B"),
            Some(Throughput::Bytes(size as u64)),
            || ctr.apply(black_box(&iv), &mut data),
        );
    }

    let data = vec![0x5Au8; 1500];
    r.bench(
        "sha1/digest_1500B",
        Some(Throughput::Bytes(data.len() as u64)),
        || Sha1::digest(black_box(&data)),
    );

    let hmac = HmacSha1::new(b"benchmark-key");
    r.bench(
        "hmac-sha1/mac96_1500B",
        Some(Throughput::Bytes(data.len() as u64)),
        || hmac.mac96(black_box(&data)),
    );

    for size in [50usize, 1480] {
        let mut sa = SecurityAssociation::new(1, &[7; 16], 2, b"k");
        let inner = vec![0xC3u8; size];
        r.bench(
            &format!("esp/encrypt_tunnel_{size}B"),
            Some(Throughput::Bytes(size as u64)),
            || encrypt_tunnel(&mut sa, black_box(&inner)),
        );
        let mut sa2 = SecurityAssociation::new(1, &[7; 16], 2, b"k");
        let inner2 = vec![0xC3u8; size];
        r.bench(
            &format!("esp/round_trip_{size}B"),
            Some(Throughput::Bytes(size as u64)),
            || {
                let wire = encrypt_tunnel(&mut sa2, black_box(&inner2));
                decrypt_tunnel(&sa2, &wire).expect("decrypts")
            },
        );
    }

    r.finish();
}
