//! Wall-clock microbenchmarks of the IPsec crypto substrate.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ps_crypto::aes::CtrStream;
use ps_crypto::esp::{decrypt_tunnel, encrypt_tunnel, SecurityAssociation};
use ps_crypto::hmac::HmacSha1;
use ps_crypto::sha1::Sha1;

fn aes_ctr(c: &mut Criterion) {
    let ctr = CtrStream::new(&[0x42; 16], 0xD00D);
    let iv = [1, 2, 3, 4, 5, 6, 7, 8];
    for size in [64usize, 1504] {
        let mut g = c.benchmark_group("aes-ctr");
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("xor_{size}B"), |b| {
            let mut data = vec![0xA5u8; size];
            b.iter(|| {
                ctr.apply(black_box(&iv), &mut data);
            })
        });
        g.finish();
    }
}

fn sha1_hmac(c: &mut Criterion) {
    let data = vec![0x5Au8; 1500];
    let mut g = c.benchmark_group("sha1");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("digest_1500B", |b| b.iter(|| Sha1::digest(black_box(&data))));
    g.finish();

    let hmac = HmacSha1::new(b"benchmark-key");
    let mut g = c.benchmark_group("hmac-sha1");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("mac96_1500B", |b| b.iter(|| hmac.mac96(black_box(&data))));
    g.finish();
}

fn esp(c: &mut Criterion) {
    let mut g = c.benchmark_group("esp");
    for size in [50usize, 1480] {
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("encrypt_tunnel_{size}B"), |b| {
            let mut sa = SecurityAssociation::new(1, &[7; 16], 2, b"k");
            let inner = vec![0xC3u8; size];
            b.iter(|| encrypt_tunnel(&mut sa, black_box(&inner)))
        });
        g.bench_function(format!("round_trip_{size}B"), |b| {
            let mut sa = SecurityAssociation::new(1, &[7; 16], 2, b"k");
            let inner = vec![0xC3u8; size];
            b.iter(|| {
                let wire = encrypt_tunnel(&mut sa, black_box(&inner));
                decrypt_tunnel(&sa, &wire).expect("decrypts")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, aes_ctr, sha1_hmac, esp);
criterion_main!(benches);
