//! Scaled-down shape checks of the paper reproduction: who wins, by
//! roughly what factor, where crossovers fall. These run the same
//! experiment code as the `ps-bench` binary with smaller tables and
//! shorter windows (set via `PS_BENCH_MS` internally where needed).

use ps_bench::experiments as ex;

#[test]
fn fig5_endpoints_and_speedup() {
    let rows = ex::io::fig5_batching();
    let b1 = rows.iter().find(|r| r.0 == 1).unwrap().1;
    let b64 = rows.iter().find(|r| r.0 == 64).unwrap().1;
    assert!((0.6..1.0).contains(&b1), "batch=1 {b1} (paper 0.78)");
    assert!((9.0..11.5).contains(&b64), "batch=64 {b64} (paper 10.5)");
    let speedup = b64 / b1;
    assert!(
        (11.0..16.0).contains(&speedup),
        "speedup {speedup} (paper 13.5)"
    );
    // Monotone increasing throughput with batch size.
    for w in rows.windows(2) {
        assert!(w[1].1 >= w[0].1 * 0.98, "non-monotone at batch {}", w[1].0);
    }
}

#[test]
fn fig6_orderings() {
    // TX > RX (dual-IOH asymmetry) and forwarding above 40 Gbps at
    // 64 B, the §4.6 headline.
    let rx = ex::io::rx_only_ceiling(64);
    let tx = ex::io::tx_only_ceiling(64);
    assert!(tx > rx, "TX {tx} must exceed RX {rx}");
    assert!((50.0..64.0).contains(&rx), "RX {rx} (paper 53-60)");
    assert!((75.0..81.0).contains(&tx), "TX {tx} (paper 79-80)");
    let fwd = ex::io::forward_gbps(64, ps_core::apps::ForwardPattern::SameNode);
    assert!((38.0..47.0).contains(&fwd), "forward {fwd} (paper ~41)");
}

#[test]
fn numa_blind_costs_forty_percent() {
    let (aware, blind) = ex::io::numa_placement();
    assert!(aware > 38.0, "aware {aware}");
    assert!(
        blind < aware * 0.72,
        "blind {blind} vs aware {aware} (paper <25 vs ~41)"
    );
}

#[test]
fn fig11a_gpu_wins_at_small_packets_only() {
    let rows = ex::apps::fig11a_with(20_000, &[64, 1514]);
    let (_, cpu64, gpu64) = rows[0];
    let (_, cpu1514, gpu1514) = rows[1];
    // 64 B: GPU clearly ahead (paper 28 -> 39).
    assert!(gpu64 > cpu64 * 1.2, "64B: gpu {gpu64} cpu {cpu64}");
    assert!((25.0..33.0).contains(&cpu64), "cpu64 {cpu64} (paper ~28)");
    assert!((34.0..46.0).contains(&gpu64), "gpu64 {gpu64} (paper ~39)");
    // 1514 B: both I/O bound near 40 Gbps.
    assert!(
        (cpu1514 - gpu1514).abs() / cpu1514 < 0.15,
        "{cpu1514} vs {gpu1514}"
    );
}

#[test]
fn fig11b_gpu_factor_is_large_for_ipv6() {
    let rows = ex::apps::fig11b_with(20_000, &[64]);
    let (_, cpu, gpu) = rows[0];
    assert!((5.0..11.0).contains(&cpu), "cpu {cpu} (paper ~8)");
    assert!((35.0..45.0).contains(&gpu), "gpu {gpu} (paper ~38)");
    assert!(gpu / cpu > 3.5, "gain {} (paper ~4.8x)", gpu / cpu);
}

#[test]
fn fig11d_ipsec_gain_matches_paper_band() {
    let rows = ex::apps::fig11d_with(&[256]);
    let (_, cpu, gpu) = rows[0];
    assert!(gpu / cpu > 2.0, "gain {} (paper ~3.5x)", gpu / cpu);
    assert!(cpu > 2.0 && cpu < 9.0, "cpu {cpu}");
    assert!(gpu > 8.0, "gpu {gpu}");
}

#[test]
fn openflow_wildcard_offload_dominates_large_tables() {
    // Small wildcard table: GPU >= CPU. Large: GPU >> CPU.
    let (cpu_small, gpu_small) = ex::apps::run_openflow(0, 16);
    let (cpu_large, gpu_large) = ex::apps::run_openflow(0, 256);
    assert!(gpu_small >= cpu_small * 0.95, "{gpu_small} vs {cpu_small}");
    assert!(gpu_large > cpu_large * 1.6, "{gpu_large} vs {cpu_large}");
    assert!(cpu_large < cpu_small, "CPU must degrade with table size");
}
