//! # ps-check — a minimal seeded property-testing harness
//!
//! The zero-dependency replacement for the slice of `proptest` the
//! repo used: run a property over many seeded random cases, and on
//! failure shrink by halving the generator's size budget until the
//! failure disappears, then report the smallest still-failing case
//! with everything needed to replay it.
//!
//! ```
//! use ps_check::{check, ensure_eq, Gen};
//!
//! check("addition_commutes", |g: &mut Gen| {
//!     let (a, b) = (g.rng().gen::<u32>(), g.rng().gen::<u32>());
//!     ensure_eq!(a.wrapping_add(b), b.wrapping_add(a));
//!     Ok(())
//! });
//! ```
//!
//! * Cases default to 64; override with `PS_CHECK_CASES`.
//! * The base seed is derived from the property name (stable across
//!   runs); override with `PS_CHECK_SEED=<decimal or 0x-hex>`.
//! * On failure the panic message prints the base seed, case seed and
//!   shrink level, and the exact environment to replay the run.

use std::panic::{catch_unwind, AssertUnwindSafe};

use ps_rng::{splitmix64, Rng, Sample, SampleRange};

/// Outcome of one property case: `Err` carries the counterexample
/// description.
pub type CaseResult = Result<(), String>;

/// Maximum shrink levels tried (each level halves size budgets; 16
/// halvings floor any practical length range).
const MAX_SHRINK: u32 = 16;

/// Harness configuration, resolved from the environment.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run (`PS_CHECK_CASES`, default 64).
    pub cases: u64,
    /// Base seed (`PS_CHECK_SEED`, default: hash of the property name).
    pub seed: u64,
}

impl Config {
    /// The configuration for a named property.
    pub fn from_env(name: &str) -> Config {
        let cases = std::env::var("PS_CHECK_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
            .max(1);
        let seed = std::env::var("PS_CHECK_SEED")
            .ok()
            .and_then(|v| parse_seed(&v))
            .unwrap_or_else(|| fnv1a(name.as_bytes()));
        Config { cases, seed }
    }
}

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// FNV-1a over `data` — a stable, dependency-free name hash.
fn fnv1a(data: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The per-case value source handed to properties: a seeded RNG plus
/// a shrink level that halves size budgets.
pub struct Gen {
    rng: Rng,
    shrink: u32,
}

impl Gen {
    fn new(case_seed: u64, shrink: u32) -> Gen {
        Gen {
            rng: Rng::seed_from_u64(case_seed),
            shrink,
        }
    }

    /// The underlying RNG for scalar draws.
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }

    /// A uniform scalar (`g.value::<u32>()`).
    pub fn value<T: Sample>(&mut self) -> T {
        self.rng.gen()
    }

    /// A uniform value in `range`.
    pub fn int_in<R: SampleRange>(&mut self, range: R) -> R::Output {
        self.rng.gen_range(range)
    }

    /// A length in `[lo, hi)` whose span halves with each shrink
    /// level — the harness's unit of shrinking.
    pub fn len_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty length range {lo}..{hi}");
        let span = ((hi - lo) >> self.shrink).max(1);
        self.rng.gen_range(lo..lo + span)
    }

    /// Random bytes with a shrinkable length in `[lo, hi)`.
    pub fn bytes(&mut self, lo: usize, hi: usize) -> Vec<u8> {
        let n = self.len_in(lo, hi);
        let mut out = vec![0u8; n];
        self.rng.fill_bytes(&mut out);
        out
    }

    /// A fixed-size random byte array (e.g. a key).
    pub fn byte_array<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        self.rng.fill_bytes(&mut out);
        out
    }

    /// A vector of `f(g)`-generated elements with a shrinkable length
    /// in `[lo, hi)`.
    pub fn vec_of<T>(&mut self, lo: usize, hi: usize, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let n = self.len_in(lo, hi);
        (0..n).map(|_| f(self)).collect()
    }
}

/// Run `prop` over `PS_CHECK_CASES` seeded cases; panic with a
/// replayable report on the first (shrunk) failure.
pub fn check(name: &str, prop: impl FnMut(&mut Gen) -> CaseResult) {
    let cfg = Config::from_env(name);
    check_with(name, &cfg, prop);
}

/// [`check`] with an explicit configuration.
pub fn check_with(name: &str, cfg: &Config, mut prop: impl FnMut(&mut Gen) -> CaseResult) {
    for case in 0..cfg.cases {
        let mut stream = cfg.seed ^ case;
        let case_seed = splitmix64(&mut stream);
        let Err(msg) = run_case(&mut prop, case_seed, 0) else {
            continue;
        };
        // Shrink: halve size budgets while the property still fails;
        // keep the smallest failing level.
        let mut level = 0;
        let mut best = msg;
        for next in 1..=MAX_SHRINK {
            match run_case(&mut prop, case_seed, next) {
                Err(m) => {
                    level = next;
                    best = m;
                }
                Ok(()) => break,
            }
        }
        panic!(
            "ps-check: property '{name}' failed at case {case}/{cases} \
             (base seed {seed:#018x}, case seed {case_seed:#018x}, shrink level {level}):\n  \
             {best}\n  replay with: PS_CHECK_SEED={seed:#x} PS_CHECK_CASES={cases}",
            cases = cfg.cases,
            seed = cfg.seed,
        );
    }
}

fn run_case(
    prop: &mut impl FnMut(&mut Gen) -> CaseResult,
    case_seed: u64,
    shrink: u32,
) -> CaseResult {
    let mut g = Gen::new(case_seed, shrink);
    match catch_unwind(AssertUnwindSafe(|| prop(&mut g))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "property panicked".to_string());
            Err(format!("panic: {msg}"))
        }
    }
}

/// Fail the case with a message unless `cond` holds.
#[macro_export]
macro_rules! ensure {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($arg:tt)+) => {
        if !$cond {
            return Err(format!("{} ({})", format!($($arg)+), stringify!($cond)));
        }
    };
}

/// Fail the case unless `a == b`, reporting both values.
#[macro_export]
macro_rules! ensure_eq {
    ($a:expr, $b:expr) => {{
        let (va, vb) = (&$a, &$b);
        if va != vb {
            return Err(format!(
                "{} != {}: {:?} vs {:?}",
                stringify!($a), stringify!($b), va, vb
            ));
        }
    }};
    ($a:expr, $b:expr, $($arg:tt)+) => {{
        let (va, vb) = (&$a, &$b);
        if va != vb {
            return Err(format!(
                "{}: {} != {}: {:?} vs {:?}",
                format!($($arg)+), stringify!($a), stringify!($b), va, vb
            ));
        }
    }};
}

/// Fail the case unless `a != b`.
#[macro_export]
macro_rules! ensure_ne {
    ($a:expr, $b:expr) => {{
        let (va, vb) = (&$a, &$b);
        if va == vb {
            return Err(format!(
                "{} == {}: both {:?}",
                stringify!($a),
                stringify!($b),
                va
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u64;
        let cfg = Config { cases: 32, seed: 1 };
        check_with("always_true", &cfg, |_g| {
            count += 1;
            Ok(())
        });
        assert_eq!(count, 32);
    }

    #[test]
    fn cases_are_deterministic_per_seed() {
        let collect = |seed| {
            let mut vals = Vec::new();
            let cfg = Config { cases: 8, seed };
            check_with("collect", &cfg, |g| {
                vals.push(g.value::<u64>());
                Ok(())
            });
            vals
        };
        assert_eq!(collect(5), collect(5));
        assert_ne!(collect(5), collect(6));
    }

    #[test]
    fn failure_panics_with_replay_info() {
        let cfg = Config { cases: 64, seed: 9 };
        let err = catch_unwind(AssertUnwindSafe(|| {
            check_with("always_false", &cfg, |_g| Err("nope".to_string()));
        }))
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("always_false"), "{msg}");
        assert!(msg.contains("PS_CHECK_SEED"), "{msg}");
        assert!(msg.contains("nope"), "{msg}");
    }

    #[test]
    fn shrinking_halves_length_budgets() {
        // A property failing only for long inputs must be reported at
        // a deeper shrink level with a shorter witness.
        let cfg = Config { cases: 64, seed: 3 };
        let mut reported = usize::MAX;
        let err = catch_unwind(AssertUnwindSafe(|| {
            check_with("long_inputs_fail", &cfg, |g| {
                let v = g.bytes(0, 1024);
                if v.len() >= 4 {
                    Err(format!("len={}", v.len()))
                } else {
                    Ok(())
                }
            });
        }))
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        // Parse the final witness length out of the message.
        if let Some(pos) = msg.rfind("len=") {
            let digits: String = msg[pos + 4..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect();
            reported = digits.parse().expect("length in message");
        }
        assert!(
            reported < 64,
            "shrinking should cut the witness well below the 1024 cap: {msg}"
        );
        assert!(msg.contains("shrink level"), "{msg}");
    }

    #[test]
    fn panics_inside_properties_are_counterexamples() {
        let cfg = Config { cases: 4, seed: 2 };
        let err = catch_unwind(AssertUnwindSafe(|| {
            check_with("panicky", &cfg, |_g| {
                let v: Vec<u8> = Vec::new();
                let _ = v[3]; // index out of bounds
                Ok(())
            });
        }))
        .expect_err("must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("panic"), "{msg}");
    }

    #[test]
    fn len_in_respects_bounds_at_all_shrink_levels() {
        for shrink in 0..=MAX_SHRINK {
            let mut g = Gen::new(77, shrink);
            for _ in 0..200 {
                let n = g.len_in(3, 10);
                assert!((3..10).contains(&n), "shrink {shrink} gave {n}");
            }
        }
    }

    #[test]
    fn seed_parsing_accepts_hex_and_decimal() {
        assert_eq!(parse_seed("123"), Some(123));
        assert_eq!(parse_seed("0xFF"), Some(255));
        assert_eq!(parse_seed("0Xff"), Some(255));
        assert_eq!(parse_seed("bogus"), None);
    }
}
