//! Descriptor rings: fixed-capacity FIFO queues with drop-on-full
//! semantics, modelling the 82599's per-queue RX/TX rings.

use std::collections::VecDeque;

/// A fixed-capacity ring. `T` is whatever a descriptor points at — in
/// the simulation, an owned packet record.
#[derive(Debug)]
pub struct Ring<T> {
    items: VecDeque<T>,
    capacity: usize,
    /// Packets dropped because the ring was full (tail drops).
    pub drops: u64,
    /// Total packets ever accepted.
    pub accepted: u64,
    /// Deepest occupancy ever reached — the queue-growth gauge the
    /// overload experiments report (a full ring at peak means the
    /// run was admission-limited, not service-limited).
    pub peak: usize,
}

impl<T> Ring<T> {
    /// A ring holding up to `capacity` descriptors.
    pub fn new(capacity: usize) -> Ring<T> {
        assert!(capacity > 0);
        Ring {
            items: VecDeque::with_capacity(capacity),
            capacity,
            drops: 0,
            accepted: 0,
            peak: 0,
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Occupied descriptors.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True when no descriptor is free.
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Free descriptors.
    pub fn free(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// Enqueue; on a full ring the item is dropped (tail drop) and
    /// `Err` returns it to the caller.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.is_full() {
            self.drops += 1;
            return Err(item);
        }
        self.accepted += 1;
        self.items.push_back(item);
        self.peak = self.peak.max(self.items.len());
        Ok(())
    }

    /// Dequeue one.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Dequeue up to `max` items — the batched fetch at the heart of
    /// the I/O engine (§4.3: "the chunk size is not fixed but only
    /// capped").
    pub fn pop_batch(&mut self, max: usize) -> Vec<T> {
        let n = max.min(self.items.len());
        self.items.drain(..n).collect()
    }

    /// Peek at the head without removing it.
    pub fn peek(&self) -> Option<&T> {
        self.items.front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut r = Ring::new(4);
        for i in 0..4 {
            r.push(i).unwrap();
        }
        assert_eq!(r.pop(), Some(0));
        assert_eq!(r.pop(), Some(1));
    }

    #[test]
    fn tail_drop_when_full() {
        let mut r = Ring::new(2);
        r.push('a').unwrap();
        r.push('b').unwrap();
        assert_eq!(r.push('c'), Err('c'));
        assert_eq!(r.drops, 1);
        assert_eq!(r.accepted, 2);
        assert!(r.is_full());
    }

    #[test]
    fn batch_pop_caps_at_available() {
        let mut r = Ring::new(64);
        for i in 0..10 {
            r.push(i).unwrap();
        }
        let batch = r.pop_batch(64);
        assert_eq!(batch, (0..10).collect::<Vec<_>>());
        assert!(r.is_empty());
        assert!(r.pop_batch(4).is_empty());
    }

    #[test]
    fn batch_pop_respects_max() {
        let mut r = Ring::new(64);
        for i in 0..10 {
            r.push(i).unwrap();
        }
        assert_eq!(r.pop_batch(4), vec![0, 1, 2, 3]);
        assert_eq!(r.len(), 6);
    }

    #[test]
    fn peak_tracks_deepest_occupancy() {
        let mut r = Ring::new(8);
        for i in 0..5 {
            r.push(i).unwrap();
        }
        r.pop_batch(4);
        r.push(9).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.peak, 5);
    }

    #[test]
    fn free_slots_track_occupancy() {
        let mut r: Ring<u8> = Ring::new(8);
        assert_eq!(r.free(), 8);
        r.push(1).unwrap();
        assert_eq!(r.free(), 7);
        r.pop();
        assert_eq!(r.free(), 8);
    }

    #[test]
    fn wrap_around_many_times() {
        // Rings recycle descriptors indefinitely (huge-buffer cells
        // are reused "whenever the circular RX queues wrap up", §4.2).
        let mut r = Ring::new(3);
        for i in 0..1000 {
            r.push(i).unwrap();
            assert_eq!(r.pop(), Some(i));
        }
        assert_eq!(r.accepted, 1000);
        assert_eq!(r.drops, 0);
    }
}
