//! The 10 GbE port: wire-rate serialization and the per-queue
//! interrupt state machine of §5.2.

use ps_sim::resource::BandwidthServer;
use ps_sim::stats::PacketCounter;
use ps_sim::time::Time;

/// Port index within the whole router (0..8 on the paper's server).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub u16);

/// Queue index within a port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueueId(pub u16);

/// Receive-interrupt state for one RX queue (§5.2): PacketShader
/// disables the interrupt while it polls, re-enables it when the
/// queue runs dry, and the next arrival fires a wakeup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterruptState {
    /// Interrupt armed; the next packet arrival wakes the worker.
    Armed,
    /// Worker is polling; arrivals do not interrupt.
    Disabled,
}

/// One physical port: two unidirectional wires at line rate.
///
/// Frames are charged their wire length (frame + 24 B of preamble,
/// FCS and inter-frame gap), so a 10 Gbps wire carries at most
/// 14.2 M 64 B-frames per second — the paper's line-rate metric.
#[derive(Debug)]
pub struct Port {
    /// This port's id.
    pub id: PortId,
    rx_wire: BandwidthServer,
    tx_wire: BandwidthServer,
    /// Frames received (arrived from the wire), including drops.
    pub rx: PacketCounter,
    /// Frames transmitted onto the wire.
    pub tx: PacketCounter,
    /// Frames dropped at RX (ring full).
    pub rx_dropped: u64,
    /// Frames killed at the MAC by injected faults (descriptor
    /// starvation bursts, link-flap windows).
    pub fault_drops: u64,
    /// Carrier-down horizon (fault injection): frames whose last bit
    /// lands before this instant are lost at the MAC.
    link_down_until: Time,
}

impl Port {
    /// A port at `line_rate_bits` (10 Gbps for the X520).
    ///
    /// Both wires are trace-labelled (`"wire.rx"` / `"wire.tx"`, lane
    /// = port index): each serialized frame emits one `fabric` span
    /// when that category is enabled.
    pub fn new(id: PortId, line_rate_bits: u64) -> Port {
        let mut rx_wire = BandwidthServer::new(line_rate_bits, 0);
        let mut tx_wire = BandwidthServer::new(line_rate_bits, 0);
        rx_wire.set_trace("wire.rx", id.0 as u32);
        tx_wire.set_trace("wire.tx", id.0 as u32);
        Port {
            id,
            rx_wire,
            tx_wire,
            rx: PacketCounter::default(),
            tx: PacketCounter::default(),
            rx_dropped: 0,
            fault_drops: 0,
            link_down_until: 0,
        }
    }

    /// Take the link down until `until` (an injected flap). Extends
    /// but never shortens an existing down window.
    pub fn set_link_down(&mut self, until: Time) {
        self.link_down_until = self.link_down_until.max(until);
    }

    /// Whether the link carries frames at `now`.
    pub fn link_up(&self, now: Time) -> bool {
        now >= self.link_down_until
    }

    /// Serialize an arriving frame of `len` bytes onto the RX wire;
    /// returns when its last bit lands in the NIC.
    pub fn rx_arrival(&mut self, now: Time, len: usize) -> Time {
        self.rx.add(len as u64);
        self.rx_wire.submit(now, ps_net::wire_len(len) as u64)
    }

    /// Serialize an outgoing frame; returns when the wire is done.
    /// The caller decides whether TX completion matters (it does for
    /// the round-trip latency measurements).
    pub fn tx_frame(&mut self, now: Time, len: usize) -> Time {
        self.tx.add(len as u64);
        self.tx_wire.submit(now, ps_net::wire_len(len) as u64)
    }

    /// Earliest instant the TX wire could take another frame.
    pub fn tx_free_at(&self) -> Time {
        self.tx_wire.next_free()
    }

    /// RX wire utilization over `[0, now]`.
    pub fn rx_utilization(&self, now: Time) -> f64 {
        self.rx_wire.utilization(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_sim::{GIGA, SECONDS};

    #[test]
    fn line_rate_64b_is_14_2_mpps() {
        let mut p = Port::new(PortId(0), 10 * GIGA);
        let mut sent = 0u64;
        loop {
            let done = p.tx_frame(0, 64);
            if done > SECONDS {
                break;
            }
            sent += 1;
        }
        // 10e9 / (88 * 8) = 14.20 M frames/s.
        let mpps = sent as f64 / 1e6;
        assert!((14.0..14.3).contains(&mpps), "{mpps} Mpps");
    }

    #[test]
    fn full_size_frames_reach_line_rate() {
        let mut p = Port::new(PortId(0), 10 * GIGA);
        let mut sent_bytes = 0u64;
        loop {
            let done = p.tx_frame(0, 1514);
            if done > SECONDS {
                break;
            }
            sent_bytes += 1538; // wire bytes
        }
        let gbps = sent_bytes as f64 * 8.0 / 1e9;
        assert!((9.9..10.01).contains(&gbps), "{gbps} Gbps");
    }

    #[test]
    fn rx_and_tx_are_independent_wires() {
        let mut p = Port::new(PortId(0), 10 * GIGA);
        let rx_done = p.rx_arrival(0, 1514);
        let tx_done = p.tx_frame(0, 1514);
        // Full duplex: both complete at the same time, not serialized.
        assert_eq!(rx_done, tx_done);
    }

    #[test]
    fn counters_accumulate() {
        let mut p = Port::new(PortId(3), 10 * GIGA);
        p.rx_arrival(0, 64);
        p.rx_arrival(0, 128);
        p.tx_frame(0, 256);
        assert_eq!(p.rx.packets, 2);
        assert_eq!(p.rx.bytes, 192);
        assert_eq!(p.tx.packets, 1);
        assert_eq!(p.id, PortId(3));
    }

    #[test]
    fn link_flap_window_extends_not_shrinks() {
        let mut p = Port::new(PortId(0), 10 * GIGA);
        assert!(p.link_up(0));
        p.set_link_down(5_000);
        assert!(!p.link_up(4_999));
        assert!(p.link_up(5_000));
        // A shorter flap cannot re-open the link early.
        p.set_link_down(2_000);
        assert!(!p.link_up(4_999));
    }

    #[test]
    fn utilization_reflects_load() {
        let mut p = Port::new(PortId(0), 10 * GIGA);
        // one 1250-byte wire transfer = 1 us busy
        p.rx_arrival(0, 1250 - 24);
        assert!((p.rx_utilization(2_000) - 0.5).abs() < 0.01);
    }
}
