//! # ps-nic — the 10 GbE NIC model (Intel 82599 / X520)
//!
//! The structural pieces of the paper's NICs that the packet I/O
//! engine builds on:
//!
//! * [`rss`] — Receive-Side Scaling: the real Toeplitz hash (verified
//!   against the Microsoft reference vectors) plus an indirection
//!   table that the NUMA-aware configuration restricts to same-node
//!   cores (§4.4–4.5);
//! * [`ring`] — RX/TX descriptor rings with drop-on-full semantics and
//!   per-queue statistics (the paper's per-queue counters that avoid
//!   cache bouncing, §4.4);
//! * [`port`] — the 10 GbE wire: serialization at line rate including
//!   the 24 B Ethernet overhead, and the interrupt/polling state
//!   machine of §5.2 (interrupt disabled while the engine polls,
//!   re-armed when a queue runs dry).

pub mod port;
pub mod ring;
pub mod rss;

pub use port::{InterruptState, Port, PortId, QueueId};
pub use ring::Ring;
pub use rss::{toeplitz_hash, Rss, MSFT_KEY};
