//! Receive-Side Scaling: Toeplitz hashing and queue selection (§4.4).

/// The Microsoft verification key from the RSS specification; also
/// the default key of the ixgbe driver the paper modifies.
pub const MSFT_KEY: [u8; 40] = [
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
    0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
    0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
];

/// The 40-bit key chunk covering byte position `p`: key bits
/// `[8p, 8p + 40)`, top-aligned in the low 40 bits of a `u64`. The
/// window for input bit `8p + j` is then `(chunk >> (8 - j)) as u32`.
const fn key_chunk(key: &[u8; 40], p: usize) -> u64 {
    ((key[p] as u64) << 32)
        | ((key[p + 1] as u64) << 24)
        | ((key[p + 2] as u64) << 16)
        | ((key[p + 3] as u64) << 8)
        | (key[p + 4] as u64)
}

/// Per-(byte position, byte value) XOR contributions for one key:
/// `tables[p][b]` is the XOR of the key windows selected by the set
/// bits of input byte `b` at position `p`. Hashing is then one table
/// lookup per input byte.
const fn build_tables(key: &[u8; 40]) -> [[u32; 256]; 36] {
    let mut tables = [[0u32; 256]; 36];
    let mut p = 0;
    while p < 36 {
        let chunk = key_chunk(key, p);
        let mut b = 0;
        while b < 256 {
            let mut acc = 0u32;
            let mut j = 0;
            while j < 8 {
                if (b >> (7 - j)) & 1 == 1 {
                    acc ^= (chunk >> (8 - j)) as u32;
                }
                j += 1;
            }
            tables[p][b] = acc;
            b += 1;
        }
        p += 1;
    }
    tables
}

/// Precomputed tables for [`MSFT_KEY`] — the key every RSS
/// configuration in this codebase uses, so the per-packet hash on the
/// hot path is pure table lookups.
static MSFT_TABLES: [[u32; 256]; 36] = build_tables(&MSFT_KEY);

/// Toeplitz hash of `input` under `key`. Bit `i` of the input selects
/// the 32-bit window of the key starting at bit `i`.
pub fn toeplitz_hash(key: &[u8; 40], input: &[u8]) -> u32 {
    assert!(input.len() <= 36, "key window exhausted");
    let mut result = 0u32;
    if *key == MSFT_KEY {
        // Hot path: one precomputed lookup per input byte.
        for (p, &byte) in input.iter().enumerate() {
            result ^= MSFT_TABLES[p][byte as usize];
        }
        return result;
    }
    // Generic key: extract the eight windows per byte from a 40-bit
    // chunk instead of sliding the window bit by bit.
    for (p, &byte) in input.iter().enumerate() {
        if byte == 0 {
            continue;
        }
        let chunk = key_chunk(key, p);
        for j in 0..8 {
            if (byte >> (7 - j)) & 1 == 1 {
                result ^= (chunk >> (8 - j)) as u32;
            }
        }
    }
    result
}

/// Hash the IPv4 + TCP/UDP tuple in the canonical RSS input order:
/// `src_addr || dst_addr || src_port || dst_port`.
pub fn hash_v4(key: &[u8; 40], src: u32, dst: u32, src_port: u16, dst_port: u16) -> u32 {
    let mut input = [0u8; 12];
    input[0..4].copy_from_slice(&src.to_be_bytes());
    input[4..8].copy_from_slice(&dst.to_be_bytes());
    input[8..10].copy_from_slice(&src_port.to_be_bytes());
    input[10..12].copy_from_slice(&dst_port.to_be_bytes());
    toeplitz_hash(key, &input)
}

/// Hash the IPv6 + TCP/UDP tuple in the canonical RSS input order:
/// `src_addr || dst_addr || src_port || dst_port`.
pub fn hash_v6(
    key: &[u8; 40],
    src: &[u8; 16],
    dst: &[u8; 16],
    src_port: u16,
    dst_port: u16,
) -> u32 {
    let mut input = [0u8; 36];
    input[0..16].copy_from_slice(src);
    input[16..32].copy_from_slice(dst);
    input[32..34].copy_from_slice(&src_port.to_be_bytes());
    input[34..36].copy_from_slice(&dst_port.to_be_bytes());
    toeplitz_hash(key, &input)
}

/// RSS configuration for one NIC: key + indirection table.
#[derive(Debug, Clone)]
pub struct Rss {
    key: [u8; 40],
    /// 128-entry indirection table mapping hash LSBs to queue ids, as
    /// in the 82599.
    indirection: Vec<u16>,
}

impl Rss {
    /// RSS spreading over queues `0..queues` with the standard key.
    pub fn spread_over(queues: u16) -> Rss {
        assert!(queues > 0);
        Rss {
            key: MSFT_KEY,
            indirection: (0..128).map(|i| i % queues).collect(),
        }
    }

    /// RSS restricted to an explicit queue list — the paper's
    /// NUMA-aware configuration maps a NIC's queues only to cores in
    /// its own node (§4.5).
    pub fn over_queues(queues: &[u16]) -> Rss {
        assert!(!queues.is_empty());
        Rss {
            key: MSFT_KEY,
            indirection: (0..128).map(|i| queues[i % queues.len()]).collect(),
        }
    }

    /// Queue for a flow's 5-tuple.
    pub fn queue_for(&self, src: u32, dst: u32, src_port: u16, dst_port: u16) -> u16 {
        let h = hash_v4(&self.key, src, dst, src_port, dst_port);
        self.indirection[(h & 0x7F) as usize]
    }

    /// Queue for a raw hash value (used when the caller already
    /// extracted a flow key).
    pub fn queue_for_hash(&self, hash: u32) -> u16 {
        self.indirection[(hash & 0x7F) as usize]
    }

    /// The queues this configuration can select.
    pub fn target_queues(&self) -> Vec<u16> {
        let mut qs: Vec<u16> = self.indirection.clone();
        qs.sort_unstable();
        qs.dedup();
        qs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// (addr, port) endpoint in a verification vector.
    type Endpoint = (u32, u16);

    /// Microsoft RSS verification suite (IPv4 with TCP ports).
    /// (dst_addr:port, src_addr:port, expected hash)
    const VECTORS: &[(Endpoint, Endpoint, u32)] = &[
        ((0xa18e6450, 1766), (0x420995bb, 2794), 0x51ccc178),
        ((0x41458c53, 4739), (0xc75c6f02, 14230), 0xc626b0ea),
        ((0x0c16cfb8, 38024), (0x1813c65f, 12898), 0x5c2b394a),
        ((0xd18ea306, 2217), (0x261bcd1e, 48228), 0xafc7327f),
        ((0xcabc7f02, 1303), (0x9927a3bf, 44251), 0x10e828a2),
    ];

    #[test]
    fn microsoft_verification_vectors() {
        for &((dst, dport), (src, sport), want) in VECTORS {
            let got = hash_v4(&MSFT_KEY, src, dst, sport, dport);
            assert_eq!(got, want, "src={src:#x} dst={dst:#x}");
        }
    }

    #[test]
    fn ip_only_vectors() {
        // The 2-tuple (src || dst) variants from the same suite.
        let cases: &[(u32, u32, u32)] = &[
            (0x420995bb, 0xa18e6450, 0x323e8fc2),
            (0xc75c6f02, 0x41458c53, 0xd718262a),
        ];
        for &(src, dst, want) in cases {
            let mut input = [0u8; 8];
            input[0..4].copy_from_slice(&src.to_be_bytes());
            input[4..8].copy_from_slice(&dst.to_be_bytes());
            assert_eq!(toeplitz_hash(&MSFT_KEY, &input), want);
        }
    }

    #[test]
    fn same_flow_same_queue() {
        let rss = Rss::spread_over(4);
        let a = rss.queue_for(0x0A000001, 0x0B000001, 1000, 2000);
        let b = rss.queue_for(0x0A000001, 0x0B000001, 1000, 2000);
        assert_eq!(a, b);
    }

    #[test]
    fn spreads_across_queues() {
        let rss = Rss::spread_over(4);
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u32 {
            seen.insert(rss.queue_for(i * 7919, 0x0B000001, (i % 60000) as u16, 80));
        }
        assert_eq!(seen.len(), 4, "all queues used: {seen:?}");
    }

    #[test]
    fn spread_is_roughly_even() {
        let rss = Rss::spread_over(4);
        let mut counts = [0u32; 4];
        for i in 0..40_000u32 {
            counts[rss.queue_for(
                i.wrapping_mul(2654435761),
                0x0B000001,
                (i % 61000) as u16,
                53,
            ) as usize] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "counts={counts:?}");
        }
    }

    #[test]
    fn restricted_indirection_only_hits_listed_queues() {
        let rss = Rss::over_queues(&[2, 3]);
        assert_eq!(rss.target_queues(), vec![2, 3]);
        for i in 0..500u32 {
            let q = rss.queue_for(i * 31, i * 17, 5, 6);
            assert!(q == 2 || q == 3);
        }
    }

    #[test]
    #[should_panic(expected = "key window exhausted")]
    fn oversized_input_panics() {
        let _ = toeplitz_hash(&MSFT_KEY, &[0u8; 37]);
    }

    /// Textbook formulation: slide the 32-bit key window one bit at a
    /// time. Both fast paths must reproduce it exactly.
    fn toeplitz_bitwise(key: &[u8; 40], input: &[u8]) -> u32 {
        let mut result = 0u32;
        let mut window = u32::from_be_bytes([key[0], key[1], key[2], key[3]]);
        let mut next_byte = 4;
        let mut bits_used = 0;
        let mut window_next = key[next_byte];
        for &byte in input {
            for bit in (0..8).rev() {
                if byte >> bit & 1 == 1 {
                    result ^= window;
                }
                window = (window << 1) | u32::from(window_next >> 7);
                window_next <<= 1;
                bits_used += 1;
                if bits_used == 8 {
                    bits_used = 0;
                    next_byte += 1;
                    window_next = if next_byte < key.len() {
                        key[next_byte]
                    } else {
                        0
                    };
                }
            }
        }
        result
    }

    #[test]
    fn fast_paths_match_bitwise_reference() {
        let mut other_key = MSFT_KEY;
        other_key[0] ^= 0xA5; // forces the generic-key path
        for len in [0usize, 1, 7, 8, 12, 13, 35, 36] {
            let input: Vec<u8> = (0..len as u32)
                .map(|i| (i.wrapping_mul(167) ^ (i >> 3)) as u8)
                .collect();
            assert_eq!(
                toeplitz_hash(&MSFT_KEY, &input),
                toeplitz_bitwise(&MSFT_KEY, &input),
                "table path, len {len}"
            );
            assert_eq!(
                toeplitz_hash(&other_key, &input),
                toeplitz_bitwise(&other_key, &input),
                "generic path, len {len}"
            );
        }
    }
}
