//! The per-thread tracer the instrumented crates talk to.
//!
//! Emission sites cannot thread a `&mut Collector` through every
//! model (the bandwidth servers sit several layers below the code
//! that owns the collector), so the active collector is installed
//! per thread. The enabled mask is mirrored into a plain [`Cell`] so
//! the off path — no collector, or category disabled — is a single
//! load with no `RefCell` borrow and no allocation.

use std::cell::{Cell, RefCell};

use crate::collector::Collector;
use crate::event::{Args, Category, SpanId};
use crate::Time;

thread_local! {
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
    /// Cached `CategoryMask` bits of the installed collector (0 when
    /// none), checked before touching the `RefCell`.
    static MASK: Cell<u8> = const { Cell::new(0) };
}

/// Install `collector` as this thread's tracer, replacing (and
/// returning) any previous one. Instrumented code all over the
/// workspace starts recording immediately.
pub fn install(collector: Collector) -> Option<Collector> {
    MASK.with(|m| m.set(collector.mask().0));
    COLLECTOR.with(|c| c.borrow_mut().replace(collector))
}

/// Remove and return this thread's tracer; emission becomes free
/// again.
pub fn take() -> Option<Collector> {
    MASK.with(|m| m.set(0));
    COLLECTOR.with(|c| c.borrow_mut().take())
}

/// Whether any tracer is installed on this thread.
pub fn is_installed() -> bool {
    COLLECTOR.with(|c| c.borrow().is_some())
}

/// Whether `cat` is enabled on this thread's tracer. This is the
/// fast path every emission helper takes first; with tracing off it
/// is one thread-local `Cell` load.
#[inline]
pub fn enabled(cat: Category) -> bool {
    MASK.with(|m| m.get()) & cat.bit() != 0
}

fn with(f: impl FnOnce(&mut Collector)) {
    COLLECTOR.with(|c| {
        if let Some(col) = c.borrow_mut().as_mut() {
            f(col);
        }
    });
}

/// Record a complete span on the installed tracer (no-op when off).
/// `args` is built lazily so the off path never allocates.
#[inline]
pub fn complete(
    cat: Category,
    name: &'static str,
    lane: u32,
    start: Time,
    end: Time,
    args: impl FnOnce() -> Args,
) {
    if !enabled(cat) {
        return;
    }
    let args = args();
    with(|c| c.complete(cat, name, lane, start, end, args));
}

/// Open a begin/end span on the installed tracer. Returns `None`
/// when off; [`span_end`] ignores `None`.
#[inline]
pub fn span_begin(cat: Category, name: &'static str, lane: u32, ts: Time) -> Option<SpanId> {
    if !enabled(cat) {
        return None;
    }
    let mut id = None;
    with(|c| id = c.span_begin(cat, name, lane, ts));
    id
}

/// Close a span opened with [`span_begin`].
#[inline]
pub fn span_end(id: Option<SpanId>, ts: Time, args: impl FnOnce() -> Args) {
    if id.is_none() {
        return;
    }
    let args = args();
    with(|c| c.span_end(id, ts, args));
}

/// Record a gauge sample on the installed tracer (no-op when off).
#[inline]
pub fn counter(cat: Category, name: &'static str, lane: u32, ts: Time, value: u64) {
    if !enabled(cat) {
        return;
    }
    with(|c| c.counter(cat, name, lane, ts, value));
}

/// Record a zero-duration marker on the installed tracer.
#[inline]
pub fn instant(
    cat: Category,
    name: &'static str,
    lane: u32,
    ts: Time,
    args: impl FnOnce() -> Args,
) {
    if !enabled(cat) {
        return;
    }
    let args = args();
    with(|c| c.instant(cat, name, lane, ts, args));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::TraceConfig;
    use crate::event::CategoryMask;

    // Each test thread has its own collector, so these tests are
    // isolated from each other and from any other test using the
    // global API.

    #[test]
    fn install_take_round_trip() {
        assert!(take().is_none());
        assert!(!is_installed());
        install(Collector::new(TraceConfig::all()));
        assert!(is_installed());
        assert!(enabled(Category::Stage));
        complete(Category::Stage, "s", 0, 1, 2, Vec::new);
        counter(Category::Io, "g", 0, 1, 7);
        let c = take().unwrap();
        assert_eq!(c.len(), 2);
        assert!(!enabled(Category::Stage));
    }

    #[test]
    fn emission_without_tracer_is_a_no_op() {
        assert!(!enabled(Category::Gpu));
        complete(Category::Gpu, "k", 0, 0, 1, || {
            panic!("args must not build")
        });
        span_end(span_begin(Category::Gpu, "k", 0, 0), 1, || {
            panic!("args must not build")
        });
    }

    #[test]
    fn mask_gates_categories_at_the_global_level() {
        install(Collector::new(TraceConfig {
            mask: CategoryMask::of(&[Category::Fabric]),
            capacity: 64,
        }));
        assert!(enabled(Category::Fabric));
        assert!(!enabled(Category::Stage));
        complete(Category::Stage, "s", 0, 0, 1, || panic!("gated"));
        complete(Category::Fabric, "wire", 0, 0, 1, Vec::new);
        assert_eq!(take().unwrap().len(), 1);
    }
}
