//! The trace event model: categories, phases, spans and counters.
//!
//! One [`Event`] is one row of the timeline. Most instrumentation
//! emits *complete* spans — the simulation computes an operation's
//! start and completion time in the same handler, so both ends are
//! known at emission. Begin/end spans exist for stages whose end is
//! only learned by a later event handler; they pair by [`SpanId`], so
//! emission order does not matter.

/// Event categories — one per instrumented subsystem. Each can be
/// enabled independently; a disabled category costs one mask check
/// per emission site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// Pipeline stages: pre-shader, shader, post-shader, CPU-path
    /// processing, master gather (emitted by `ps-core`).
    Stage,
    /// GPU engine operations: host↔device copies and kernel launches
    /// (emitted by `ps-gpu`).
    Gpu,
    /// Fabric resource acquisition: every transaction served by a
    /// labelled `ps-sim` bandwidth server — IOH DMA directions, NIC
    /// wires (PCIe occupancy rides the IOH and GPU events).
    Fabric,
    /// Packet I/O engine: RX/TX batch assembly and ring/buffer
    /// occupancy gauges (emitted by `ps-io` helpers).
    Io,
    /// Injected faults: one instant per fault the `ps-fault` plan
    /// fires (NIC starvation, link flaps, wire corruption, PCIe
    /// stalls, GPU aborts/stragglers). Fault-free runs emit none, so
    /// enabling the category costs nothing when no plan is armed.
    Fault,
    /// Stateful-NF flow cache: per-node occupancy, eviction/expiry
    /// totals and cuckoo displacement depth gauges (emitted by the
    /// NAT and load-balancer apps in `ps-core`).
    Flow,
}

impl Category {
    /// All categories, in export order.
    pub const ALL: [Category; 6] = [
        Category::Stage,
        Category::Gpu,
        Category::Fabric,
        Category::Io,
        Category::Fault,
        Category::Flow,
    ];

    #[inline]
    pub(crate) fn bit(self) -> u8 {
        match self {
            Category::Stage => 1 << 0,
            Category::Gpu => 1 << 1,
            Category::Fabric => 1 << 2,
            Category::Io => 1 << 3,
            Category::Fault => 1 << 4,
            Category::Flow => 1 << 5,
        }
    }

    /// Stable lowercase name used in `PS_TRACE` lists and the Chrome
    /// `cat` field.
    pub fn name(self) -> &'static str {
        match self {
            Category::Stage => "stage",
            Category::Gpu => "gpu",
            Category::Fabric => "fabric",
            Category::Io => "io",
            Category::Fault => "fault",
            Category::Flow => "flow",
        }
    }

    /// Parse a single category name as written in `PS_TRACE`.
    pub fn parse(s: &str) -> Option<Category> {
        match s.trim() {
            "stage" => Some(Category::Stage),
            "gpu" => Some(Category::Gpu),
            "fabric" => Some(Category::Fabric),
            "io" => Some(Category::Io),
            "fault" => Some(Category::Fault),
            "flow" => Some(Category::Flow),
            _ => None,
        }
    }
}

/// A set of enabled categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CategoryMask(pub(crate) u8);

impl CategoryMask {
    /// Every category enabled.
    pub const ALL: CategoryMask = CategoryMask(0b111111);
    /// No category enabled.
    pub const NONE: CategoryMask = CategoryMask(0);

    /// Mask with exactly the given categories.
    pub fn of(cats: &[Category]) -> CategoryMask {
        CategoryMask(cats.iter().fold(0, |m, c| m | c.bit()))
    }

    /// Parse a `PS_TRACE`-style list: comma-separated category names,
    /// or `all`/`1` for everything. Unknown names are ignored; an
    /// empty or unrecognized list yields [`CategoryMask::NONE`].
    pub fn parse(list: &str) -> CategoryMask {
        let list = list.trim();
        if list == "all" || list == "1" {
            return CategoryMask::ALL;
        }
        CategoryMask(
            list.split(',')
                .filter_map(Category::parse)
                .fold(0, |m, c| m | c.bit()),
        )
    }

    /// Whether `cat` is enabled in this mask.
    #[inline]
    pub fn contains(self, cat: Category) -> bool {
        self.0 & cat.bit() != 0
    }

    /// Whether no category is enabled.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

/// Identifier pairing a begin event with its end event. Unique per
/// collector install.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub(crate) u64);

/// Event phase, mirroring the Chrome `trace_event` `ph` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A complete span: `[ts, ts + dur]` (`ph: "X"`).
    Complete {
        /// Span duration in virtual nanoseconds.
        dur: u64,
    },
    /// Span start, paired with the [`Phase::End`] carrying the same
    /// [`SpanId`].
    Begin {
        /// Pairing id.
        id: SpanId,
    },
    /// Span end, paired with the [`Phase::Begin`] carrying the same
    /// [`SpanId`].
    End {
        /// Pairing id.
        id: SpanId,
    },
    /// A gauge sample (`ph: "C"`).
    Counter {
        /// Sampled value.
        value: u64,
    },
    /// A zero-duration marker (`ph: "i"`).
    Instant,
}

/// Key/value arguments attached to an event. Keys are static names;
/// values are integers (counts, bytes, thread counts). Bounded so an
/// event never allocates more than one small `Vec`.
pub type Args = Vec<(&'static str, u64)>;

/// One recorded trace event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Virtual timestamp (ns).
    pub ts: u64,
    /// Category (also the Chrome `pid` lane group).
    pub cat: Category,
    /// Event name (the Chrome `name` field).
    pub name: &'static str,
    /// Lane within the category: worker index, node index, port
    /// index… (the Chrome `tid` field).
    pub lane: u32,
    /// Phase and phase-specific payload.
    pub phase: Phase,
    /// Key/value arguments.
    pub args: Args,
}

impl Event {
    /// Span duration for complete events, 0 otherwise.
    pub fn dur(&self) -> u64 {
        match self.phase {
            Phase::Complete { dur } => dur,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_parse_handles_lists_and_all() {
        assert_eq!(CategoryMask::parse("all"), CategoryMask::ALL);
        assert_eq!(CategoryMask::parse("1"), CategoryMask::ALL);
        assert_eq!(
            CategoryMask::parse("stage,gpu"),
            CategoryMask::of(&[Category::Stage, Category::Gpu])
        );
        assert_eq!(CategoryMask::parse("bogus"), CategoryMask::NONE);
        assert!(CategoryMask::parse("").is_empty());
    }

    #[test]
    fn mask_contains_only_selected() {
        let m = CategoryMask::of(&[Category::Fabric]);
        assert!(m.contains(Category::Fabric));
        assert!(!m.contains(Category::Stage));
        assert!(!m.contains(Category::Io));
    }

    #[test]
    fn category_names_round_trip() {
        for c in Category::ALL {
            assert_eq!(Category::parse(c.name()), Some(c));
        }
    }
}
