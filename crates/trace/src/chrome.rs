//! Chrome `trace_event` JSON export, plus a minimal parser used to
//! validate dumps and round-trip them in tests.
//!
//! The exported object follows the JSON-object format of the Trace
//! Event spec: a `traceEvents` array of complete (`"X"`), counter
//! (`"C"`), instant (`"i"`) and metadata (`"M"`) events. Timestamps
//! are microseconds, so virtual nanoseconds are written as `ns/1000`
//! with three decimal places — formatted with integer arithmetic to
//! keep dumps byte-identical across runs and platforms.
//!
//! Lanes map onto the viewer's process/thread tree: `pid` is the
//! category (one "process" per subsystem), `tid` the lane within it;
//! metadata events name both so Perfetto shows "stage", "gpu",
//! "fabric", "io" groups.

use std::fmt::Write as _;

use crate::collector::Collector;
use crate::event::{Category, Phase};

/// Fixed pid per category in the exported JSON.
pub fn pid_of(cat: Category) -> u32 {
    match cat {
        Category::Stage => 1,
        Category::Gpu => 2,
        Category::Fabric => 3,
        Category::Io => 4,
        Category::Fault => 5,
        Category::Flow => 6,
    }
}

/// Nanoseconds rendered as a microsecond decimal (`1234` → `1.234`)
/// using integer math only.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn write_args(out: &mut String, args: &[(&'static str, u64)]) {
    out.push_str(",\"args\":{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{k}\":{v}");
    }
    out.push('}');
}

/// Serialize the collector's buffered events (begin/end pairs
/// resolved, sorted by virtual time) as a Chrome `trace_event` JSON
/// object.
pub fn export(collector: &Collector) -> String {
    let (events, unmatched) = collector.resolved();
    let mut out = String::with_capacity(events.len() * 96 + 1024);
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;
    let mut emit = |line: String, out: &mut String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&line);
    };

    // Metadata: name the per-category "processes" and their lanes.
    let mut lanes: Vec<(Category, u32)> = Vec::new();
    for ev in &events {
        if !lanes.contains(&(ev.cat, ev.lane)) {
            lanes.push((ev.cat, ev.lane));
        }
    }
    lanes.sort_by_key(|&(c, l)| (pid_of(c), l));
    let mut named: Vec<Category> = Vec::new();
    for &(cat, lane) in &lanes {
        if !named.contains(&cat) {
            named.push(cat);
            emit(
                format!(
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
                    pid_of(cat),
                    cat.name()
                ),
                &mut out,
            );
        }
        emit(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\"args\":{{\"name\":\"{} {}\"}}}}",
                pid_of(cat),
                lane,
                cat.name(),
                lane
            ),
            &mut out,
        );
    }

    for ev in &events {
        let mut line = String::with_capacity(96);
        let _ = write!(
            line,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":{}",
            ev.name,
            ev.cat.name(),
            pid_of(ev.cat),
            ev.lane,
            us(ev.ts)
        );
        match ev.phase {
            Phase::Complete { dur } => {
                let _ = write!(line, ",\"ph\":\"X\",\"dur\":{}", us(dur));
                write_args(&mut line, &ev.args);
            }
            Phase::Counter { value } => {
                let _ = write!(line, ",\"ph\":\"C\",\"args\":{{\"value\":{value}}}");
            }
            Phase::Instant => {
                line.push_str(",\"ph\":\"i\",\"s\":\"t\"");
                write_args(&mut line, &ev.args);
            }
            // resolved() never yields raw begin/end events.
            Phase::Begin { .. } | Phase::End { .. } => unreachable!("resolved spans only"),
        }
        line.push('}');
        emit(line, &mut out);
    }
    let _ = write!(
        out,
        "\n],\"displayTimeUnit\":\"ns\",\"otherData\":{{\"clock\":\"virtual\",\"dropped\":{},\"unmatched\":{}}}}}\n",
        collector.dropped, unmatched
    );
    out
}

/// One event as read back by [`parse`]: enough structure to validate
/// a dump and recompute stage totals without a JSON library.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedEvent {
    /// Event name.
    pub name: String,
    /// Category string.
    pub cat: String,
    /// Phase letter (`X`, `C`, `i`, `M`).
    pub ph: char,
    /// Timestamp in virtual nanoseconds.
    pub ts_ns: u64,
    /// Duration in virtual nanoseconds (0 unless `ph == 'X'`).
    pub dur_ns: u64,
    /// Process id (category lane group).
    pub pid: u32,
    /// Thread id (lane).
    pub tid: u32,
    /// Counter value (`ph == 'C'` only).
    pub value: Option<u64>,
}

fn field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = obj.find(&pat)? + pat.len();
    let rest = &obj[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        let end = stripped.find('"')?;
        Some(&stripped[..end])
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
}

fn parse_us(s: &str) -> Option<u64> {
    // "12.345" microseconds -> 12345 ns; integer part alone is legal.
    let (int, frac) = s.split_once('.').unwrap_or((s, "0"));
    let int: u64 = int.parse().ok()?;
    let frac_padded = format!("{frac:0<3}");
    let frac: u64 = frac_padded.get(..3)?.parse().ok()?;
    Some(int * 1000 + frac)
}

/// Minimal `trace_event` JSON parser: splits the `traceEvents` array
/// into objects and extracts the fields [`ParsedEvent`] carries. It
/// understands exactly the subset [`export`] writes (no nested
/// objects except `args`, no escaped quotes), which is all the tests
/// and report tooling need. Returns `None` on structural mismatch.
pub fn parse(json: &str) -> Option<Vec<ParsedEvent>> {
    let start = json.find("\"traceEvents\":[")? + "\"traceEvents\":[".len();
    let end = json.rfind("],")?;
    let body = &json[start..end];
    let mut events = Vec::new();
    let mut depth = 0usize;
    let mut obj_start = None;
    for (i, ch) in body.char_indices() {
        match ch {
            '{' => {
                if depth == 0 {
                    obj_start = Some(i);
                }
                depth += 1;
            }
            '}' => {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    let obj = &body[obj_start?..=i];
                    let ph = field(obj, "ph")?.chars().next()?;
                    events.push(ParsedEvent {
                        name: field(obj, "name")?.to_string(),
                        cat: field(obj, "cat").unwrap_or("").to_string(),
                        ph,
                        ts_ns: field(obj, "ts").and_then(parse_us).unwrap_or(0),
                        dur_ns: field(obj, "dur").and_then(parse_us).unwrap_or(0),
                        pid: field(obj, "pid")?.parse().ok()?,
                        tid: field(obj, "tid")?.parse().ok()?,
                        value: field(obj, "value").and_then(|v| v.parse().ok()),
                    });
                }
            }
            _ => {}
        }
    }
    (depth == 0).then_some(events)
}

/// The `dropped` count recorded in a dump's `otherData`, if present.
pub fn parsed_dropped(json: &str) -> Option<u64> {
    field(json.split("\"otherData\":").nth(1)?, "dropped")?
        .parse()
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{Collector, TraceConfig};
    use crate::event::Category;

    fn sample() -> Collector {
        let mut c = Collector::new(TraceConfig::all());
        c.complete(
            Category::Stage,
            "pre_shade",
            3,
            1_000,
            2_500,
            vec![("pkts", 64), ("bytes", 4096)],
        );
        c.counter(Category::Io, "ring_depth", 3, 1_000, 17);
        let id = c.span_begin(Category::Gpu, "kernel", 0, 2_500);
        c.span_end(id, 9_001, vec![("threads", 256)]);
        c.instant(Category::Fabric, "drop", 1, 500, vec![]);
        c
    }

    #[test]
    fn export_round_trips_through_parser() {
        let c = sample();
        let json = export(&c);
        let parsed = parse(&json).expect("valid dump");
        // 4 real events + metadata rows.
        let real: Vec<&ParsedEvent> = parsed.iter().filter(|e| e.ph != 'M').collect();
        assert_eq!(real.len(), 4);
        let pre = real.iter().find(|e| e.name == "pre_shade").unwrap();
        assert_eq!((pre.ts_ns, pre.dur_ns), (1_000, 1_500));
        assert_eq!((pre.cat.as_str(), pre.tid), ("stage", 3));
        let k = real.iter().find(|e| e.name == "kernel").unwrap();
        assert_eq!((k.ts_ns, k.dur_ns, k.ph), (2_500, 6_501, 'X'));
        let d = real.iter().find(|e| e.name == "ring_depth").unwrap();
        assert_eq!((d.ph, d.value), ('C', Some(17)));
        assert_eq!(parsed_dropped(&json), Some(0));
    }

    #[test]
    fn export_is_deterministic() {
        assert_eq!(export(&sample()), export(&sample()));
    }

    #[test]
    fn events_export_in_timestamp_order() {
        let json = export(&sample());
        let parsed = parse(&json).unwrap();
        let ts: Vec<u64> = parsed
            .iter()
            .filter(|e| e.ph != 'M')
            .map(|e| e.ts_ns)
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "unsorted: {ts:?}");
    }

    #[test]
    fn sub_microsecond_times_keep_ns_precision() {
        assert_eq!(us(1), "0.001");
        assert_eq!(us(999), "0.999");
        assert_eq!(us(1_000), "1.000");
        assert_eq!(us(1_234_567), "1234.567");
        assert_eq!(parse_us("1234.567"), Some(1_234_567));
        assert_eq!(parse_us("0.001"), Some(1));
        assert_eq!(parse_us("7"), Some(7_000));
    }

    #[test]
    fn empty_collector_exports_valid_json() {
        let c = Collector::new(TraceConfig::all());
        let json = export(&c);
        assert_eq!(parse(&json), Some(vec![]));
    }
}
