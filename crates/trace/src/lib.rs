//! # ps-trace — virtual-time pipeline tracing
//!
//! A zero-dependency tracing and metrics substrate for the simulated
//! data plane. Components emit *span events* (a named interval on the
//! virtual clock, with a category and key/value arguments) and
//! *counter events* (a gauge sample); a [`Collector`] buffers them in
//! a bounded ring and exports the whole timeline as Chrome
//! `trace_event` JSON, loadable in `chrome://tracing` or Perfetto
//! against the **virtual** timeline.
//!
//! Design constraints, in order:
//!
//! 1. **Zero perturbation.** Tracing never touches the virtual clock,
//!    the RNG stream or any model decision — it only records times the
//!    simulation already computed. An identical seed produces a
//!    byte-identical trace dump (`tests/determinism.rs` pins this).
//! 2. **Negligible cost when off.** Emission helpers check a cached
//!    per-thread category mask (one `Cell` load) before doing any
//!    work; with no collector installed, or a category disabled,
//!    nothing allocates.
//! 3. **No dependencies.** The crate sits below `ps-sim`, so even the
//!    simulation substrate can emit events (the FIFO bandwidth servers
//!    modelling PCIe/IOH/NIC wires live there). Time is a plain `u64`
//!    nanosecond count, layout-identical to `ps_sim::time::Time`.
//!
//! The simulation is single-threaded, so the collector is installed
//! per thread ([`install`]/[`take`]); parallel test threads each get
//! an isolated collector.
//!
//! See `OBSERVABILITY.md` at the repository root for the event model,
//! the category/lane conventions used by the router, and a worked
//! example reading a dump.

#![deny(missing_docs)]

pub mod chrome;
pub mod collector;
pub mod event;
mod global;

pub use collector::{Collector, TraceConfig};
pub use event::{Args, Category, CategoryMask, Event, Phase, SpanId};
pub use global::{
    complete, counter, enabled, install, instant, is_installed, span_begin, span_end, take,
};

/// Virtual time in nanoseconds since simulation start. Identical to
/// `ps_sim::time::Time` (this crate sits below `ps-sim` and cannot
/// name it).
pub type Time = u64;
