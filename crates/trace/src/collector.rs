//! The bounded event collector.

use std::collections::VecDeque;

use crate::event::{Args, Category, CategoryMask, Event, Phase, SpanId};
use crate::Time;

/// Collector configuration.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Enabled categories; emission sites check this before doing any
    /// work.
    pub mask: CategoryMask,
    /// Ring-buffer capacity in events. When full, the *oldest* events
    /// are overwritten (the tail of a run is usually the interesting
    /// part) and [`Collector::dropped`] counts the loss.
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            mask: CategoryMask::ALL,
            capacity: 1 << 20,
        }
    }
}

impl TraceConfig {
    /// Everything on, default capacity.
    pub fn all() -> TraceConfig {
        TraceConfig::default()
    }

    /// Only the given categories.
    pub fn categories(cats: &[Category]) -> TraceConfig {
        TraceConfig {
            mask: CategoryMask::of(cats),
            ..TraceConfig::default()
        }
    }

    /// Read configuration from the environment: `PS_TRACE` is a
    /// category list (`stage,gpu` / `all`), `PS_TRACE_CAP` overrides
    /// the ring capacity. Returns `None` when `PS_TRACE` is unset,
    /// empty, or `0`.
    pub fn from_env() -> Option<TraceConfig> {
        let list = std::env::var("PS_TRACE").ok()?;
        if list.trim().is_empty() || list.trim() == "0" {
            return None;
        }
        let mask = CategoryMask::parse(&list);
        if mask.is_empty() {
            return None;
        }
        let capacity = std::env::var("PS_TRACE_CAP")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(TraceConfig::default().capacity);
        Some(TraceConfig { mask, capacity })
    }
}

/// Bounded, ordered store of trace events.
///
/// Events are kept in emission order, which for the deterministic
/// simulation is itself deterministic — the exported dump is
/// byte-identical across runs of the same seed.
#[derive(Debug)]
pub struct Collector {
    cfg: TraceConfig,
    events: VecDeque<Event>,
    /// Events evicted by the ring bound.
    pub dropped: u64,
    next_span: u64,
}

impl Collector {
    /// An empty collector with the given configuration.
    pub fn new(cfg: TraceConfig) -> Collector {
        assert!(cfg.capacity > 0, "a trace ring needs at least one slot");
        Collector {
            cfg,
            events: VecDeque::new(),
            dropped: 0,
            next_span: 0,
        }
    }

    /// The collector's configuration.
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// Enabled-category mask (cached per thread by the global API).
    pub fn mask(&self) -> CategoryMask {
        self.cfg.mask
    }

    /// Recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded (or everything was
    /// evicted).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn push(&mut self, ev: Event) {
        if self.events.len() == self.cfg.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    fn enabled(&self, cat: Category) -> bool {
        self.cfg.mask.contains(cat)
    }

    /// Record a complete span `[start, end]`. `end < start` is a bug
    /// in the emitter and panics in debug builds; release builds clamp
    /// to a zero-length span.
    pub fn complete(
        &mut self,
        cat: Category,
        name: &'static str,
        lane: u32,
        start: Time,
        end: Time,
        args: Args,
    ) {
        if !self.enabled(cat) {
            return;
        }
        debug_assert!(end >= start, "span {name} ends before it starts");
        self.push(Event {
            ts: start,
            cat,
            name,
            lane,
            phase: Phase::Complete {
                dur: end.saturating_sub(start),
            },
            args,
        });
    }

    /// Open a span whose end is not yet known; pair the returned id
    /// with [`Collector::span_end`]. Returns `None` when the category
    /// is disabled (pass it straight to `span_end`, which ignores
    /// `None`).
    pub fn span_begin(
        &mut self,
        cat: Category,
        name: &'static str,
        lane: u32,
        ts: Time,
    ) -> Option<SpanId> {
        if !self.enabled(cat) {
            return None;
        }
        self.next_span += 1;
        let id = SpanId(self.next_span);
        self.push(Event {
            ts,
            cat,
            name,
            lane,
            phase: Phase::Begin { id },
            args: Vec::new(),
        });
        Some(id)
    }

    /// Close a span opened by [`Collector::span_begin`]. A `None` id
    /// (disabled category at begin time) is a no-op. The end event
    /// may be emitted out of order relative to other lanes' events;
    /// pairing is by id, not position.
    pub fn span_end(&mut self, id: Option<SpanId>, ts: Time, args: Args) {
        let Some(id) = id else { return };
        // The begin was recorded, so the category was enabled; record
        // the end unconditionally so pairs never half-vanish on a
        // reconfigured mask.
        self.push(Event {
            ts,
            cat: Category::Stage,
            name: "",
            lane: 0,
            phase: Phase::End { id },
            args,
        });
    }

    /// Record a gauge sample.
    pub fn counter(&mut self, cat: Category, name: &'static str, lane: u32, ts: Time, value: u64) {
        if !self.enabled(cat) {
            return;
        }
        self.push(Event {
            ts,
            cat,
            name,
            lane,
            phase: Phase::Counter { value },
            args: Vec::new(),
        });
    }

    /// Record a zero-duration marker.
    pub fn instant(&mut self, cat: Category, name: &'static str, lane: u32, ts: Time, args: Args) {
        if !self.enabled(cat) {
            return;
        }
        self.push(Event {
            ts,
            cat,
            name,
            lane,
            phase: Phase::Instant,
            args,
        });
    }

    /// Resolve begin/end pairs into complete spans and return the
    /// full event list in timestamp order (ties keep emission order).
    /// Unpaired begins/ends are dropped and counted in the returned
    /// `unmatched`.
    pub fn resolved(&self) -> (Vec<Event>, u64) {
        let mut out: Vec<Event> = Vec::with_capacity(self.events.len());
        // Open spans by id: (index into `out`, begin event).
        let mut open: Vec<(SpanId, Event)> = Vec::new();
        let mut unmatched = 0u64;
        for ev in &self.events {
            match ev.phase {
                Phase::Begin { id } => open.push((id, ev.clone())),
                Phase::End { id } => {
                    if let Some(pos) = open.iter().position(|(oid, _)| *oid == id) {
                        let (_, begin) = open.remove(pos);
                        out.push(Event {
                            ts: begin.ts,
                            cat: begin.cat,
                            name: begin.name,
                            lane: begin.lane,
                            phase: Phase::Complete {
                                dur: ev.ts.saturating_sub(begin.ts),
                            },
                            args: ev.args.clone(),
                        });
                    } else {
                        unmatched += 1;
                    }
                }
                _ => out.push(ev.clone()),
            }
        }
        unmatched += open.len() as u64;
        // Stable sort: equal timestamps keep deterministic emission
        // order, so the dump is byte-stable.
        out.sort_by_key(|e| e.ts);
        (out, unmatched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_bound_evicts_oldest() {
        let mut c = Collector::new(TraceConfig {
            mask: CategoryMask::ALL,
            capacity: 2,
        });
        for i in 0..5u64 {
            c.complete(Category::Io, "x", 0, i, i + 1, vec![]);
        }
        assert_eq!(c.len(), 2);
        assert_eq!(c.dropped, 3);
        let ts: Vec<u64> = c.events().map(|e| e.ts).collect();
        assert_eq!(ts, vec![3, 4]);
    }

    #[test]
    fn disabled_categories_record_nothing() {
        let mut c = Collector::new(TraceConfig::categories(&[Category::Gpu]));
        c.complete(Category::Stage, "pre", 0, 0, 10, vec![]);
        c.counter(Category::Io, "depth", 0, 5, 3);
        assert!(c.span_begin(Category::Fabric, "wire", 0, 0).is_none());
        assert!(c.is_empty());
        c.complete(Category::Gpu, "kernel", 0, 0, 10, vec![]);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn begin_end_pair_out_of_order() {
        let mut c = Collector::new(TraceConfig::all());
        let a = c.span_begin(Category::Stage, "a", 0, 0);
        let b = c.span_begin(Category::Stage, "b", 1, 5);
        // Ends arrive in the opposite order of the begins.
        c.span_end(a, 20, vec![("n", 1)]);
        c.span_end(b, 10, vec![]);
        let (resolved, unmatched) = c.resolved();
        assert_eq!(unmatched, 0);
        assert_eq!(resolved.len(), 2);
        let a = resolved.iter().find(|e| e.name == "a").unwrap();
        assert_eq!((a.ts, a.dur()), (0, 20));
        assert_eq!(a.args, vec![("n", 1)]);
        let b = resolved.iter().find(|e| e.name == "b").unwrap();
        assert_eq!((b.ts, b.dur()), (5, 5));
    }

    #[test]
    fn unmatched_spans_are_counted_not_exported() {
        let mut c = Collector::new(TraceConfig::all());
        let _open = c.span_begin(Category::Stage, "never_closed", 0, 0);
        c.span_end(Some(SpanId(999)), 10, vec![]);
        let (resolved, unmatched) = c.resolved();
        assert!(resolved.is_empty());
        assert_eq!(unmatched, 2);
    }

    #[test]
    fn resolved_sorts_by_timestamp_stably() {
        let mut c = Collector::new(TraceConfig::all());
        c.complete(Category::Gpu, "late", 0, 50, 60, vec![]);
        c.complete(Category::Gpu, "early", 0, 10, 20, vec![]);
        c.complete(Category::Gpu, "tie1", 0, 10, 15, vec![]);
        let (r, _) = c.resolved();
        let names: Vec<&str> = r.iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["early", "tie1", "late"]);
    }
}
