//! Synthetic route workloads standing in for the paper's datasets
//! (DESIGN.md substitution table):
//!
//! * [`routeviews_like`] — an IPv4 prefix set shaped like the
//!   RouteViews BGP snapshot of September 1, 2009 used in §6.2.1:
//!   282,797 unique prefixes with only 3 % longer than /24 and the
//!   bulk at /24, /16..​/23. DIR-24-8 performance depends only on this
//!   length distribution and the table size, both of which we match.
//! * [`random_ipv6`] — the §6.2.2 workload: 200,000 randomly generated
//!   prefixes (IPv6 tables in 2010 were too small to stress a CPU
//!   cache, so the paper generates random ones; we do the same).

use ps_rng::Rng;

use crate::route::{Route4, Route6};

/// Prefix-length histogram approximating the 2009-09-01 RouteViews
/// snapshot: `(length, weight)` in permille. /24 dominates at ~53 %,
/// lengths 25..32 sum to ~3 % ("only 3 percent of the prefixes are
/// longer than 24 bits", §6.2.1).
pub const ROUTEVIEWS_LENGTH_PERMILLE: &[(u8, u32)] = &[
    (8, 3),
    (9, 3),
    (10, 5),
    (11, 8),
    (12, 15),
    (13, 20),
    (14, 30),
    (15, 30),
    (16, 70),
    (17, 35),
    (18, 50),
    (19, 70),
    (20, 60),
    (21, 55),
    (22, 75),
    (23, 60),
    (24, 381),
    (25, 6),
    (26, 7),
    (27, 5),
    (28, 4),
    (29, 4),
    (30, 3),
    (32, 1),
];

/// The number of unique prefixes in the paper's snapshot.
pub const ROUTEVIEWS_PREFIXES: usize = 282_797;

/// Generate `n` IPv4 routes with the RouteViews length distribution.
/// Deterministic per seed; next hops cycle through `hops`.
pub fn routeviews_like(n: usize, hops: u16, seed: u64) -> Vec<Route4> {
    assert!(hops > 0);
    let mut rng = Rng::seed_from_u64(seed);
    let total: u32 = ROUTEVIEWS_LENGTH_PERMILLE.iter().map(|(_, w)| w).sum();
    let mut out = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::with_capacity(n);
    while out.len() < n {
        let mut pick = rng.gen_range(0..total);
        let mut len = 24;
        for &(l, w) in ROUTEVIEWS_LENGTH_PERMILLE {
            if pick < w {
                len = l;
                break;
            }
            pick -= w;
        }
        // Public-ish address space: avoid 0/8 and 127/8 for realism.
        let addr: u32 = rng.gen_range(0x0100_0000u32..0xE000_0000);
        let r = Route4::new(addr, len, out.len() as u16 % hops);
        if seen.insert((r.prefix, r.len)) {
            out.push(r);
        }
    }
    out
}

/// Generate `n` random IPv6 routes (§6.2.2). Prefix lengths are drawn
/// from 16..=64 in multiples of 4 plus some odd lengths, the typical
/// allocation pattern; addresses are uniform in 2000::/3 (global
/// unicast).
pub fn random_ipv6(n: usize, hops: u16, seed: u64) -> Vec<Route6> {
    assert!(hops > 0);
    let mut rng = Rng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::with_capacity(n);
    while out.len() < n {
        let len = *[
            16u8, 20, 24, 28, 32, 32, 36, 40, 44, 48, 48, 48, 52, 56, 60, 64, 64,
        ]
        .get(rng.gen_range(0usize..17))
        .expect("index in range");
        let hi: u64 = rng.gen();
        let lo: u64 = rng.gen();
        let addr = ((u128::from(hi) << 64) | u128::from(lo)) >> 3 | (0b001u128 << 125);
        let r = Route6::new(addr, len, out.len() as u16 % hops);
        if seen.insert((r.prefix, r.len)) {
            out.push(r);
        }
    }
    out
}

/// Uniform random IPv4 addresses for lookup workloads (the generator
/// uses "random destination IP addresses", §6.1).
pub fn random_v4_addrs(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen()).collect()
}

/// Uniform random IPv6 addresses in 2000::/3.
pub fn random_v6_addrs(n: usize, seed: u64) -> Vec<u128> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let hi: u64 = rng.gen();
            let lo: u64 = rng.gen();
            ((u128::from(hi) << 64) | u128::from(lo)) >> 3 | (0b001u128 << 125)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routeviews_shape() {
        let routes = routeviews_like(20_000, 8, 1);
        assert_eq!(routes.len(), 20_000);
        let longer_than_24 = routes.iter().filter(|r| r.len > 24).count();
        let frac = longer_than_24 as f64 / routes.len() as f64;
        assert!((0.015..0.05).contains(&frac), "frac>24 = {frac}");
        let at_24 = routes.iter().filter(|r| r.len == 24).count() as f64 / 20_000.0;
        assert!((0.30..0.50).contains(&at_24), "frac@24 = {at_24}");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(routeviews_like(100, 8, 7), routeviews_like(100, 8, 7));
        assert_ne!(routeviews_like(100, 8, 7), routeviews_like(100, 8, 8));
        assert_eq!(random_ipv6(50, 8, 3), random_ipv6(50, 8, 3));
    }

    #[test]
    fn prefixes_are_unique() {
        let routes = routeviews_like(5_000, 8, 2);
        let mut seen = std::collections::HashSet::new();
        for r in &routes {
            assert!(seen.insert((r.prefix, r.len)));
        }
    }

    #[test]
    fn ipv6_in_global_unicast() {
        for r in random_ipv6(500, 8, 4) {
            assert_eq!(r.prefix >> 125, 0b001, "prefix {:#x}", r.prefix);
            assert!((16..=64).contains(&r.len));
        }
        for a in random_v6_addrs(100, 5) {
            assert_eq!(a >> 125, 0b001);
        }
    }

    #[test]
    fn hops_cycle() {
        let routes = routeviews_like(100, 4, 9);
        assert!(routes.iter().all(|r| r.hop < 4));
        assert!(routes.iter().any(|r| r.hop == 3));
    }
}
