//! The [`TableMem`] accessor: how lookup code reads a table image.
//!
//! Lookups are written once against this trait; binding it to a
//! slice gives the CPU path, binding it to GPU device memory (in
//! `ps-core`) gives the shader path, and [`CountingMem`] wraps either
//! to produce the memory-access profiles the CPU cost model charges.

/// Read access to a flat table image.
pub trait TableMem {
    /// Read a little-endian `u16` at byte offset `off`.
    fn read_u16(&mut self, off: usize) -> u16;
    /// Read a little-endian `u32` at byte offset `off`.
    fn read_u32(&mut self, off: usize) -> u32;
    /// Read `N` raw bytes at byte offset `off`.
    fn read_bytes<const N: usize>(&mut self, off: usize) -> [u8; N];
}

/// CPU-side accessor: a borrowed image slice.
pub struct SliceMem<'a> {
    data: &'a [u8],
}

impl<'a> SliceMem<'a> {
    /// Wrap an image.
    pub fn new(data: &'a [u8]) -> SliceMem<'a> {
        SliceMem { data }
    }
}

impl TableMem for SliceMem<'_> {
    #[inline]
    fn read_u16(&mut self, off: usize) -> u16 {
        u16::from_le_bytes(self.data[off..off + 2].try_into().expect("in bounds"))
    }

    #[inline]
    fn read_u32(&mut self, off: usize) -> u32 {
        u32::from_le_bytes(self.data[off..off + 4].try_into().expect("in bounds"))
    }

    #[inline]
    fn read_bytes<const N: usize>(&mut self, off: usize) -> [u8; N] {
        self.data[off..off + N].try_into().expect("in bounds")
    }
}

/// Decorator that counts accesses, for cost-model profiles.
pub struct CountingMem<M> {
    inner: M,
    /// Number of reads performed.
    pub accesses: u64,
}

impl<M> CountingMem<M> {
    /// Wrap an accessor.
    pub fn new(inner: M) -> CountingMem<M> {
        CountingMem { inner, accesses: 0 }
    }
}

impl<M: TableMem> TableMem for CountingMem<M> {
    fn read_u16(&mut self, off: usize) -> u16 {
        self.accesses += 1;
        self.inner.read_u16(off)
    }

    fn read_u32(&mut self, off: usize) -> u32 {
        self.accesses += 1;
        self.inner.read_u32(off)
    }

    fn read_bytes<const N: usize>(&mut self, off: usize) -> [u8; N] {
        self.accesses += 1;
        self.inner.read_bytes(off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_mem_reads_le() {
        let data = [0x01u8, 0x02, 0x03, 0x04, 0xAA];
        let mut m = SliceMem::new(&data);
        assert_eq!(m.read_u16(0), 0x0201);
        assert_eq!(m.read_u32(0), 0x04030201);
        assert_eq!(m.read_bytes::<2>(3), [0x04, 0xAA]);
    }

    #[test]
    fn counting_mem_counts() {
        let data = [0u8; 16];
        let mut m = CountingMem::new(SliceMem::new(&data));
        let _ = m.read_u16(0);
        let _ = m.read_u32(4);
        let _ = m.read_bytes::<8>(8);
        assert_eq!(m.accesses, 3);
    }
}
