//! IPv6 longest-prefix match: binary search on prefix lengths
//! (Waldvogel, Varghese, Turner & Plattner, SIGCOMM 1997 \[55\]).
//!
//! One hash table per prefix length holds real prefixes and *markers*
//! (truncated prefixes inserted along the binary-search path so the
//! search knows longer matches may exist). Each entry carries its
//! precomputed best-matching prefix ("bmp") so a probe that hits can
//! record the best answer so far before searching longer lengths.
//! Searching lengths 1..=128 takes ⌈log₂ 128⌉ = 7 probes — the
//! paper's "seven memory accesses" per IPv6 lookup (§6.2.2).

use std::collections::HashMap;

use crate::mem::{SliceMem, TableMem};
use crate::route::{mask6, Route6};
use crate::NO_ROUTE;

/// Bytes per hash-table slot: 16 B key + 2 B bmp + 1 B flags, padded
/// to 32 so slots never straddle coalescing segments unnecessarily.
pub const ENTRY_SIZE: usize = 32;

const FLAG_OCCUPIED: u8 = 1;

/// One per-length hash table's position in the image.
#[derive(Debug, Clone, Copy, Default)]
pub struct Level {
    /// Byte offset of the table in the image.
    pub off: u32,
    /// Capacity minus one (capacity is a power of two); `u32::MAX`
    /// denotes an absent level (no entries of this length).
    pub mask: u32,
}

const ABSENT: u32 = u32::MAX;

/// Lookup parameters: level directory + default route.
#[derive(Debug, Clone)]
pub struct V6Layout {
    /// `levels[len-1]` describes the table for prefix length `len`.
    pub levels: Vec<Level>,
    /// Hop for the len-0 default route, or [`NO_ROUTE`].
    pub default_hop: u16,
}

/// A built IPv6 table: image + layout.
pub struct V6Table {
    image: Vec<u8>,
    layout: V6Layout,
    markers: usize,
}

/// FNV-1a over the masked key and the length; cheap enough for a GPU
/// thread and deterministic across platforms.
#[inline]
fn hash_key(key: u128, len: u8) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.to_be_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
    }
    (h ^ u64::from(len)).wrapping_mul(0x1000_0000_01b3)
}

impl V6Table {
    /// Build from a route list. Later duplicates override earlier.
    pub fn build(routes: &[Route6]) -> V6Table {
        // Deduplicate; keep insertion order semantics (later wins).
        let mut by_key: HashMap<(u128, u8), u16> = HashMap::new();
        let mut default_hop = NO_ROUTE;
        for r in routes {
            if r.len == 0 {
                default_hop = r.hop;
            } else {
                by_key.insert((r.prefix, r.len), r.hop);
            }
        }
        let uniq: Vec<Route6> = by_key
            .iter()
            .map(|(&(prefix, len), &hop)| Route6 { prefix, len, hop })
            .collect();

        // Real prefixes and markers per length.
        // value: (bmp_hop, is_real)
        let mut levels: Vec<HashMap<u128, (u16, bool)>> = vec![HashMap::new(); 128];
        for r in &uniq {
            levels[r.len as usize - 1].insert(r.prefix, (r.hop, true));
        }

        // Insert markers along each prefix's binary-search path.
        let mut marker_count = 0usize;
        for r in &uniq {
            let (mut lo, mut hi) = (1u16, 128u16);
            let len = u16::from(r.len);
            while lo <= hi {
                let mid = (lo + hi) / 2;
                match len.cmp(&mid) {
                    std::cmp::Ordering::Equal => break,
                    std::cmp::Ordering::Greater => {
                        let key = mask6(r.prefix, mid as u8);
                        levels[mid as usize - 1].entry(key).or_insert_with(|| {
                            marker_count += 1;
                            (NO_ROUTE, false) // bmp filled below
                        });
                        lo = mid + 1;
                    }
                    std::cmp::Ordering::Less => hi = mid - 1,
                }
            }
        }

        // Precompute bmp for pure markers: the longest real prefix
        // strictly shorter than the marker that matches it. Checking
        // only the lengths that actually hold real prefixes keeps the
        // build at O(markers × distinct-lengths).
        let real_lengths: Vec<u8> = (1..=128u8)
            .filter(|&l| levels[l as usize - 1].values().any(|(_, real)| *real))
            .collect();
        for len in 1..=128u8 {
            let fixups: Vec<(u128, u16)> = levels[len as usize - 1]
                .iter()
                .filter(|(_, (_, is_real))| !is_real)
                .map(|(&key, _)| {
                    let mut bmp = NO_ROUTE;
                    for &l in real_lengths.iter().rev() {
                        if l >= len {
                            continue;
                        }
                        if let Some(&(hop, true)) = levels[l as usize - 1].get(&mask6(key, l)) {
                            bmp = hop;
                            break;
                        }
                    }
                    (key, bmp)
                })
                .collect();
            let lvl = &mut levels[len as usize - 1];
            for (key, bmp) in fixups {
                lvl.insert(key, (bmp, false));
            }
        }

        // Serialize: open-addressed tables, linear probing.
        let mut layout = V6Layout {
            levels: vec![
                Level {
                    off: 0,
                    mask: ABSENT
                };
                128
            ],
            default_hop,
        };
        let mut image: Vec<u8> = Vec::new();
        for len in 1..=128u8 {
            let lvl = &levels[len as usize - 1];
            if lvl.is_empty() {
                continue;
            }
            let cap = (lvl.len() * 2).next_power_of_two().max(4);
            let off = image.len();
            image.resize(off + cap * ENTRY_SIZE, 0);
            // Sort for a deterministic image: hash-map iteration order
            // would otherwise vary slot placement (and thus collision
            // traces) across runs.
            let mut entries: Vec<(u128, u16)> =
                lvl.iter().map(|(&k, &(bmp, _))| (k, bmp)).collect();
            entries.sort_unstable();
            for &(key, bmp) in &entries {
                let mut slot = (hash_key(key, len) as usize) & (cap - 1);
                loop {
                    let so = off + slot * ENTRY_SIZE;
                    if image[so + 18] & FLAG_OCCUPIED == 0 {
                        image[so..so + 16].copy_from_slice(&key.to_be_bytes());
                        image[so + 16..so + 18].copy_from_slice(&bmp.to_le_bytes());
                        image[so + 18] = FLAG_OCCUPIED;
                        break;
                    }
                    slot = (slot + 1) & (cap - 1);
                }
            }
            layout.levels[len as usize - 1] = Level {
                off: off as u32,
                mask: (cap - 1) as u32,
            };
        }

        V6Table {
            image,
            layout,
            markers: marker_count,
        }
    }

    /// The serialized image.
    pub fn image(&self) -> &[u8] {
        &self.image
    }

    /// The level directory + default route.
    pub fn layout(&self) -> &V6Layout {
        &self.layout
    }

    /// Markers inserted during the build.
    pub fn markers(&self) -> usize {
        self.markers
    }

    /// CPU-side lookup against the table's own image.
    pub fn lookup_host(&self, addr: u128) -> u16 {
        let mut mem = SliceMem::new(&self.image);
        lookup(&self.layout, &mut mem, addr)
    }
}

/// Probe one level for `key`; returns `Some(bmp)` on hit.
#[inline]
fn probe<M: TableMem>(layout: &V6Layout, mem: &mut M, len: u8, key: u128) -> Option<u16> {
    let level = layout.levels[len as usize - 1];
    if level.mask == ABSENT {
        return None;
    }
    let cap_mask = level.mask as usize;
    let mut slot = (hash_key(key, len) as usize) & cap_mask;
    loop {
        let so = level.off as usize + slot * ENTRY_SIZE;
        let raw = mem.read_bytes::<19>(so);
        if raw[18] & FLAG_OCCUPIED == 0 {
            return None;
        }
        let ekey = u128::from_be_bytes(raw[0..16].try_into().expect("entry key"));
        if ekey == key {
            return Some(u16::from_le_bytes([raw[16], raw[17]]));
        }
        slot = (slot + 1) & cap_mask;
    }
}

/// Binary search on prefix lengths, generic over image location.
///
/// Probes at most ⌈log₂ 128⌉ = 7 levels; levels absent from the table
/// are rejected without a memory access (the host/kernel knows the
/// level directory), so the access count is ≤ 7 plus any linear-probe
/// collisions.
pub fn lookup<M: TableMem>(layout: &V6Layout, mem: &mut M, addr: u128) -> u16 {
    let mut best = layout.default_hop;
    let (mut lo, mut hi) = (1u16, 128u16);
    while lo <= hi {
        let mid = (lo + hi) / 2;
        match probe(layout, mem, mid as u8, mask6(addr, mid as u8)) {
            Some(bmp) => {
                if bmp != NO_ROUTE {
                    best = bmp;
                }
                lo = mid + 1;
            }
            None => hi = mid - 1,
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::CountingMem;
    use crate::route::lpm6;

    fn routes() -> Vec<Route6> {
        vec![
            Route6::new(0x2001_0db8u128 << 96, 32, 1),
            Route6::new(0x2001_0db8_0001u128 << 80, 48, 2),
            Route6::new(0x2001_0db8_0001_0002u128 << 64, 64, 3),
            Route6::new(0xfe80u128 << 112, 16, 4),
            Route6::new(0, 0, 9), // default
        ]
    }

    #[test]
    fn longest_prefix_wins() {
        let t = V6Table::build(&routes());
        assert_eq!(t.lookup_host(0x2001_0db8_0001_0002u128 << 64 | 7), 3);
        assert_eq!(t.lookup_host(0x2001_0db8_0001_0003u128 << 64), 2);
        assert_eq!(t.lookup_host(0x2001_0db8_9999u128 << 80), 1);
        assert_eq!(t.lookup_host(0xfe80_1234u128 << 96), 4);
        assert_eq!(t.lookup_host(0x3333u128 << 112), 9); // default
    }

    #[test]
    fn no_default_returns_no_route() {
        let t = V6Table::build(&[Route6::new(0x2001u128 << 112, 16, 1)]);
        assert_eq!(t.lookup_host(0x3001u128 << 112), NO_ROUTE);
    }

    #[test]
    fn probe_count_bounded_by_seven() {
        let t = V6Table::build(&routes());
        // Count *levels probed* (<=7) rather than raw reads, which can
        // exceed 7 only through hash collisions.
        for addr in [
            0x2001_0db8_0001_0002u128 << 64 | 7,
            0xfe80u128 << 112,
            0x3333u128 << 112,
        ] {
            let mut mem = CountingMem::new(SliceMem::new(t.image()));
            let _ = lookup(t.layout(), &mut mem, addr);
            assert!(
                mem.accesses <= 9,
                "addr {addr:#x}: {} accesses",
                mem.accesses
            );
        }
    }

    #[test]
    fn matches_oracle_on_structured_set() {
        let rs = routes();
        let t = V6Table::build(&rs);
        for base in [
            0x2001_0db8u128 << 96,
            0x2001_0db8_0001u128 << 80,
            0x2001_0db8_0001_0002u128 << 64,
            0xfe80u128 << 112,
        ] {
            for delta in 0u128..4 {
                let addr = base | delta | (delta << 40);
                let want = lpm6(&rs, addr).unwrap_or(NO_ROUTE);
                assert_eq!(t.lookup_host(addr), want, "addr {addr:#x}");
            }
        }
    }

    #[test]
    fn markers_are_inserted() {
        // A single /64 prefix needs markers at 64's search path:
        // 64 is the first midpoint, so zero markers; a /48 needs one
        // marker at 64? No: path to 48: mid 64 (48<64, go shorter),
        // mid 32 (48>32, marker at 32), mid 48 (hit). One marker.
        let t = V6Table::build(&[Route6::new(0x2001_0db8_0001u128 << 80, 48, 2)]);
        assert_eq!(t.markers(), 1);
        // The marker alone must not produce a false positive.
        assert_eq!(t.lookup_host(0x2001_0db8u128 << 96), NO_ROUTE);
    }

    #[test]
    fn marker_bmp_prevents_backtracking_errors() {
        // Classic Waldvogel case: marker at 32 for a /48 must carry
        // the /16's hop so a search that dead-ends past the marker
        // still answers correctly.
        let rs = vec![
            Route6::new(0x2001u128 << 112, 16, 7),
            Route6::new(0x2001_0db8_0001u128 << 80, 48, 2),
        ];
        let t = V6Table::build(&rs);
        // Matches the /16 and the marker at 32 (0x2001_0db8) but not
        // the /48; best must be... the marker's bmp chain: address
        // matches marker at 32, search goes longer, misses at 48,
        // misses at 40 etc. Final answer = marker's bmp = 7.
        let addr = 0x2001_0db8_ffffu128 << 80;
        assert_eq!(lpm6(&rs, addr), Some(7));
        assert_eq!(t.lookup_host(addr), 7);
    }

    #[test]
    fn duplicate_prefix_last_wins() {
        let t = V6Table::build(&[
            Route6::new(0x2001u128 << 112, 16, 1),
            Route6::new(0x2001u128 << 112, 16, 2),
        ]);
        assert_eq!(t.lookup_host(0x2001_1111u128 << 96), 2);
    }

    #[test]
    fn empty_table() {
        let t = V6Table::build(&[]);
        assert_eq!(t.lookup_host(42), NO_ROUTE);
        assert_eq!(t.image().len(), 0);
    }
}
