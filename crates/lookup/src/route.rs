//! Route types and the naive longest-prefix-match oracle the property
//! tests compare the real tables against.

/// An IPv4 route: `prefix/len -> hop`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route4 {
    /// Prefix bits, host order, aligned to the top of the word.
    pub prefix: u32,
    /// Prefix length 0..=32.
    pub len: u8,
    /// Next-hop index (below [`crate::NO_ROUTE`]).
    pub hop: u16,
}

impl Route4 {
    /// Construct with the prefix masked to `len` bits.
    pub fn new(prefix: u32, len: u8, hop: u16) -> Route4 {
        assert!(len <= 32);
        assert!(hop < crate::NO_ROUTE);
        Route4 {
            prefix: mask4(prefix, len),
            len,
            hop,
        }
    }

    /// Does this route match `addr`?
    pub fn matches(&self, addr: u32) -> bool {
        mask4(addr, self.len) == self.prefix
    }
}

/// An IPv6 route: `prefix/len -> hop`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route6 {
    /// Prefix bits, host order, aligned to the top of the word.
    pub prefix: u128,
    /// Prefix length 0..=128.
    pub len: u8,
    /// Next-hop index.
    pub hop: u16,
}

impl Route6 {
    /// Construct with the prefix masked to `len` bits.
    pub fn new(prefix: u128, len: u8, hop: u16) -> Route6 {
        assert!(len <= 128);
        assert!(hop < crate::NO_ROUTE);
        Route6 {
            prefix: mask6(prefix, len),
            len,
            hop,
        }
    }

    /// Does this route match `addr`?
    pub fn matches(&self, addr: u128) -> bool {
        mask6(addr, self.len) == self.prefix
    }
}

/// Mask an IPv4 address to its top `len` bits.
#[inline]
pub fn mask4(addr: u32, len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        addr & (u32::MAX << (32 - len))
    }
}

/// Mask an IPv6 address to its top `len` bits.
#[inline]
pub fn mask6(addr: u128, len: u8) -> u128 {
    if len == 0 {
        0
    } else {
        addr & (u128::MAX << (128 - len))
    }
}

/// Naive longest-prefix match over an IPv4 route list. The oracle for
/// correctness tests; O(n) per lookup. When several routes of the
/// same longest length match (duplicate prefixes), the *last* one in
/// the list wins, matching table-build overwrite semantics.
pub fn lpm4(routes: &[Route4], addr: u32) -> Option<u16> {
    let mut best: Option<&Route4> = None;
    for r in routes {
        if r.matches(addr) && best.is_none_or(|b| r.len >= b.len) {
            best = Some(r);
        }
    }
    best.map(|r| r.hop)
}

/// Naive longest-prefix match over an IPv6 route list.
pub fn lpm6(routes: &[Route6], addr: u128) -> Option<u16> {
    let mut best: Option<&Route6> = None;
    for r in routes {
        if r.matches(addr) && best.is_none_or(|b| r.len >= b.len) {
            best = Some(r);
        }
    }
    best.map(|r| r.hop)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks() {
        assert_eq!(mask4(0xFFFF_FFFF, 24), 0xFFFF_FF00);
        assert_eq!(mask4(0x1234_5678, 0), 0);
        assert_eq!(mask4(0x1234_5678, 32), 0x1234_5678);
        assert_eq!(mask6(u128::MAX, 64), u128::MAX << 64);
        assert_eq!(mask6(0xABCD, 128), 0xABCD);
    }

    #[test]
    fn route_construction_masks_prefix() {
        let r = Route4::new(0x0A0B_0C0D, 16, 3);
        assert_eq!(r.prefix, 0x0A0B_0000);
        assert!(r.matches(0x0A0B_FFFF));
        assert!(!r.matches(0x0A0C_0000));
    }

    #[test]
    fn oracle_picks_longest() {
        let routes = vec![
            Route4::new(0x0A00_0000, 8, 1),
            Route4::new(0x0A0B_0000, 16, 2),
            Route4::new(0x0A0B_0C00, 24, 3),
        ];
        assert_eq!(lpm4(&routes, 0x0A0B_0C01), Some(3));
        assert_eq!(lpm4(&routes, 0x0A0B_FF01), Some(2));
        assert_eq!(lpm4(&routes, 0x0AFF_FF01), Some(1));
        assert_eq!(lpm4(&routes, 0x0BFF_FF01), None);
    }

    #[test]
    fn oracle_default_route() {
        let routes = vec![Route4::new(0, 0, 9)];
        assert_eq!(lpm4(&routes, 0xDEAD_BEEF), Some(9));
    }

    #[test]
    fn oracle_duplicate_prefix_last_wins() {
        let routes = vec![Route4::new(0x0A000000, 8, 1), Route4::new(0x0A000000, 8, 2)];
        assert_eq!(lpm4(&routes, 0x0A000001), Some(2));
    }

    #[test]
    fn oracle_v6() {
        let routes = vec![
            Route6::new(0x2001_0db8 << 96, 32, 1),
            Route6::new(0x2001_0db8_0001u128 << 80, 48, 2),
        ];
        assert_eq!(lpm6(&routes, 0x2001_0db8_0001u128 << 80 | 5), Some(2));
        assert_eq!(lpm6(&routes, (0x2001_0db8u128 << 96) | 5), Some(1));
        assert_eq!(lpm6(&routes, 0x2001_0db9u128 << 96), None);
    }
}
