//! # ps-lookup — longest-prefix-match forwarding tables
//!
//! The two lookup algorithms PacketShader evaluates, implemented over
//! flat, serializable **table images** so the *same* lookup code runs
//! on the CPU (borrowing the image as a slice) and on the simulated
//! GPU (reading the image from device memory through a
//! [`TableMem`] accessor that records the memory-access trace):
//!
//! * [`dir24`] — DIR-24-8-BASIC (Gupta, Lin, McKeown \[22\]): a 2²⁴-entry
//!   16-bit first table plus spill blocks; one memory access for
//!   routes of /24 or shorter, two otherwise (§6.2.1).
//! * [`waldvogel`] — binary search on prefix lengths (Waldvogel et
//!   al. \[55\]) for IPv6: per-length hash tables with markers and
//!   precomputed best-match prefixes; ⌈log₂ 128⌉ = 7 probes per
//!   lookup (§6.2.2 "requires seven memory accesses").
//!
//! [`synth`] generates the evaluation workloads: a RouteViews-shaped
//! IPv4 prefix set (282,797 prefixes, 3 % longer than /24) and the
//! 200,000-prefix random IPv6 set.

pub mod dir24;
pub mod mem;
pub mod route;
pub mod synth;
pub mod waldvogel;

pub use dir24::{Dir24Layout, Dir24Table};
pub use mem::{CountingMem, SliceMem, TableMem};
pub use route::{lpm4, lpm6, Route4, Route6};
pub use waldvogel::{V6Layout, V6Table};

/// "No route" next-hop sentinel. Next-hop values are port/adjacency
/// indices below this.
pub const NO_ROUTE: u16 = 0x7FFF;
