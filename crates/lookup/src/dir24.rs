//! DIR-24-8-BASIC (Gupta, Lin & McKeown, INFOCOM 1998 \[22\]).
//!
//! * `TBL24`: 2²⁴ 16-bit entries indexed by the top 24 address bits.
//!   High bit clear → the entry *is* the next hop. High bit set → the
//!   low 15 bits index a 256-entry block in `TBLlong`.
//! * `TBLlong`: spill blocks indexed by the low 8 address bits.
//!
//! One memory access resolves any route of length ≤ 24 (97 % of the
//! RouteViews table, §6.2.1); a second access resolves the rest.

use crate::mem::{SliceMem, TableMem};
use crate::route::{lpm4, Route4};
use crate::NO_ROUTE;

/// Entries in TBL24.
const TBL24_ENTRIES: usize = 1 << 24;
/// Flag: entry points into TBLlong.
const LONG_FLAG: u16 = 0x8000;

/// Byte offsets of the two tables within a serialized image; the
/// "kernel parameters" a lookup needs besides the image itself.
#[derive(Debug, Clone, Copy)]
pub struct Dir24Layout {
    /// Offset of TBL24.
    pub tbl24: usize,
    /// Offset of TBLlong.
    pub tbllong: usize,
}

/// A built DIR-24-8 table: flat image + layout.
///
/// Supports incremental route insertion (the FIB-update direction the
/// paper discusses in §7): a shadow array records the prefix length
/// that painted each entry, so a new route only overwrites entries
/// painted by equal-or-shorter prefixes. Withdrawals require a
/// rebuild (as in the original DIR-24-8 proposal).
pub struct Dir24Table {
    image: Vec<u8>,
    layout: Dir24Layout,
    long_blocks: usize,
    /// Painting prefix length per TBL24 entry (33 = spilled).
    len24: Vec<u8>,
    /// Painting prefix length per TBLlong entry.
    len_long: Vec<u8>,
}

impl Dir24Table {
    /// Build from a route list. Routes are painted shortest-first so
    /// longer prefixes override; duplicate (prefix, len) pairs resolve
    /// to the later route.
    ///
    /// # Panics
    /// Panics if more than 2¹⁵ distinct /24 ranges need spill blocks
    /// (the algorithm's architectural limit).
    pub fn build(routes: &[Route4]) -> Dir24Table {
        let mut order: Vec<&Route4> = routes.iter().collect();
        order.sort_by_key(|r| r.len);

        let mut tbl24 = vec![NO_ROUTE; TBL24_ENTRIES];
        let mut long: Vec<u16> = Vec::new();
        // Map from /24 index -> block id, stored in tbl24's low bits.
        for r in &order {
            if r.len <= 24 {
                let start = (r.prefix >> 8) as usize;
                let count = 1usize << (24 - r.len);
                for e in &mut tbl24[start..start + count] {
                    // A shorter route never overwrites a spill block:
                    // blocks are only created for len>24, which are
                    // painted after all shorter routes.
                    *e = r.hop;
                }
            } else {
                let idx24 = (r.prefix >> 8) as usize;
                let block = if tbl24[idx24] & LONG_FLAG != 0 {
                    (tbl24[idx24] & !LONG_FLAG) as usize
                } else {
                    let id = long.len() / 256;
                    assert!(id < (LONG_FLAG as usize), "TBLlong exhausted");
                    let fill = tbl24[idx24];
                    long.extend(std::iter::repeat_n(fill, 256));
                    tbl24[idx24] = LONG_FLAG | id as u16;
                    id
                };
                let lo = (r.prefix & 0xFF) as usize;
                let count = 1usize << (32 - r.len);
                let base = block * 256;
                for e in &mut long[base + lo..base + lo + count] {
                    *e = r.hop;
                }
            }
        }

        let tbl24_bytes = TBL24_ENTRIES * 2;
        let mut image = vec![0u8; tbl24_bytes + long.len() * 2];
        for (i, v) in tbl24.iter().enumerate() {
            image[i * 2..i * 2 + 2].copy_from_slice(&v.to_le_bytes());
        }
        for (i, v) in long.iter().enumerate() {
            let off = tbl24_bytes + i * 2;
            image[off..off + 2].copy_from_slice(&v.to_le_bytes());
        }
        let mut table = Dir24Table {
            image,
            layout: Dir24Layout {
                tbl24: 0,
                tbllong: tbl24_bytes,
            },
            long_blocks: long.len() / 256,
            len24: vec![0; TBL24_ENTRIES],
            len_long: vec![0; long.len()],
        };
        table.rebuild_shadow(&order);
        table
    }

    /// Recompute the painting-length shadow from the build order.
    fn rebuild_shadow(&mut self, order: &[&Route4]) {
        for r in order {
            if r.len <= 24 {
                let start = (r.prefix >> 8) as usize;
                for idx in start..start + (1usize << (24 - r.len)) {
                    if self.tbl24_entry(idx) & LONG_FLAG != 0 {
                        // Entries inside the spilled block inherit.
                        let block = (self.tbl24_entry(idx) & !LONG_FLAG) as usize;
                        for e in 0..256 {
                            let li = block * 256 + e;
                            if self.len_long[li] <= r.len {
                                // hop already painted during build
                                self.len_long[li] = self.len_long[li].max(r.len);
                            }
                        }
                        self.len24[idx] = 33;
                    } else if self.len24[idx] <= r.len {
                        self.len24[idx] = r.len;
                    }
                }
            } else {
                let idx = (r.prefix >> 8) as usize;
                self.len24[idx] = 33;
                let block = (self.tbl24_entry(idx) & !LONG_FLAG) as usize;
                let lo = (r.prefix & 0xFF) as usize;
                for e in lo..lo + (1usize << (32 - r.len)) {
                    let li = block * 256 + e;
                    self.len_long[li] = self.len_long[li].max(r.len);
                }
            }
        }
    }

    fn tbl24_entry(&self, idx: usize) -> u16 {
        let o = self.layout.tbl24 + idx * 2;
        u16::from_le_bytes([self.image[o], self.image[o + 1]])
    }

    fn set_tbl24_entry(&mut self, idx: usize, v: u16) {
        let o = self.layout.tbl24 + idx * 2;
        self.image[o..o + 2].copy_from_slice(&v.to_le_bytes());
    }

    #[cfg(test)]
    fn long_entry(&self, li: usize) -> u16 {
        let o = self.layout.tbllong + li * 2;
        u16::from_le_bytes([self.image[o], self.image[o + 1]])
    }

    fn set_long_entry(&mut self, li: usize, v: u16) {
        let o = self.layout.tbllong + li * 2;
        self.image[o..o + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Incrementally insert (or replace) a route without rebuilding —
    /// the §7 FIB-update path. Entries painted by longer prefixes are
    /// left untouched.
    pub fn insert(&mut self, r: Route4) {
        if r.len <= 24 {
            let start = (r.prefix >> 8) as usize;
            for idx in start..start + (1usize << (24 - r.len)) {
                let e = self.tbl24_entry(idx);
                if e & LONG_FLAG != 0 {
                    let block = (e & !LONG_FLAG) as usize;
                    for off in 0..256 {
                        let li = block * 256 + off;
                        if self.len_long[li] <= r.len {
                            self.set_long_entry(li, r.hop);
                            self.len_long[li] = r.len;
                        }
                    }
                } else if self.len24[idx] <= r.len {
                    self.set_tbl24_entry(idx, r.hop);
                    self.len24[idx] = r.len;
                }
            }
        } else {
            let idx = (r.prefix >> 8) as usize;
            let e = self.tbl24_entry(idx);
            let block = if e & LONG_FLAG != 0 {
                (e & !LONG_FLAG) as usize
            } else {
                // Spill: grow TBLlong by one block inheriting the
                // direct entry.
                let id = self.long_blocks;
                assert!(id < LONG_FLAG as usize, "TBLlong exhausted");
                let fill = e;
                let fill_len = self.len24[idx];
                self.image
                    .extend(std::iter::repeat_n(fill.to_le_bytes(), 256).flatten());
                self.len_long.extend(std::iter::repeat_n(fill_len, 256));
                self.long_blocks += 1;
                self.set_tbl24_entry(idx, LONG_FLAG | id as u16);
                self.len24[idx] = 33;
                id
            };
            let lo = (r.prefix & 0xFF) as usize;
            for off in lo..lo + (1usize << (32 - r.len)) {
                let li = block * 256 + off;
                if self.len_long[li] <= r.len {
                    self.set_long_entry(li, r.hop);
                    self.len_long[li] = r.len;
                }
            }
        }
    }

    /// The serialized image (uploaded to GPU device memory verbatim).
    pub fn image(&self) -> &[u8] {
        &self.image
    }

    /// The image layout (passed to kernels as launch parameters).
    pub fn layout(&self) -> Dir24Layout {
        self.layout
    }

    /// Number of 256-entry spill blocks allocated.
    pub fn long_blocks(&self) -> usize {
        self.long_blocks
    }

    /// CPU-side lookup against the table's own image.
    pub fn lookup_host(&self, addr: u32) -> u16 {
        let mut mem = SliceMem::new(&self.image);
        lookup(&self.layout, &mut mem, addr)
    }
}

/// The lookup itself, generic over where the image lives. Returns a
/// next hop or [`NO_ROUTE`]. Exactly the DIR-24-8 access pattern: one
/// `TBL24` read, plus one `TBLlong` read when the entry spills.
#[inline]
pub fn lookup<M: TableMem>(layout: &Dir24Layout, mem: &mut M, addr: u32) -> u16 {
    let hi = (addr >> 8) as usize;
    let e = mem.read_u16(layout.tbl24 + hi * 2);
    if e & LONG_FLAG == 0 {
        return e;
    }
    let block = (e & !LONG_FLAG) as usize;
    let lo = (addr & 0xFF) as usize;
    mem.read_u16(layout.tbllong + (block * 256 + lo) * 2)
}

/// Reference check helper: table lookup must equal the oracle.
pub fn matches_oracle(table: &Dir24Table, routes: &[Route4], addr: u32) -> bool {
    table.lookup_host(addr) == lpm4(routes, addr).unwrap_or(NO_ROUTE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::CountingMem;

    fn simple_routes() -> Vec<Route4> {
        vec![
            Route4::new(0x0A000000, 8, 1),  // 10/8
            Route4::new(0x0A0B0000, 16, 2), // 10.11/16
            Route4::new(0x0A0B0C00, 24, 3), // 10.11.12/24
            Route4::new(0x0A0B0C80, 25, 4), // 10.11.12.128/25
            Route4::new(0x0A0B0CFF, 32, 5), // 10.11.12.255/32
            Route4::new(0x00000000, 0, 6),  // default
        ]
    }

    #[test]
    fn longest_prefix_wins() {
        let routes = simple_routes();
        let t = Dir24Table::build(&routes);
        assert_eq!(t.lookup_host(0x0A0B0C01), 3); // /24
        assert_eq!(t.lookup_host(0x0A0B0C81), 4); // /25
        assert_eq!(t.lookup_host(0x0A0B0CFF), 5); // /32
        assert_eq!(t.lookup_host(0x0A0B0D01), 2); // /16
        assert_eq!(t.lookup_host(0x0A0C0000), 1); // /8
        assert_eq!(t.lookup_host(0xDEADBEEF), 6); // default
    }

    #[test]
    fn no_default_returns_no_route() {
        let t = Dir24Table::build(&[Route4::new(0x0A000000, 8, 1)]);
        assert_eq!(t.lookup_host(0x0B000000), NO_ROUTE);
    }

    #[test]
    fn access_counts_match_paper() {
        // §6.2.1: one access for <=24, one more for longer matches.
        let routes = simple_routes();
        let t = Dir24Table::build(&routes);

        let count = |addr: u32| {
            let mut mem = CountingMem::new(SliceMem::new(t.image()));
            let hop = lookup(&t.layout(), &mut mem, addr);
            (hop, mem.accesses)
        };
        // /16 match: single access.
        assert_eq!(count(0x0A0B0D01), (2, 1));
        // Inside a spilled /24: two accesses even for the /24 part.
        assert_eq!(count(0x0A0B0C01), (3, 2));
        assert_eq!(count(0x0A0B0C81), (4, 2));
    }

    #[test]
    fn agrees_with_oracle_on_dense_sample() {
        let routes = simple_routes();
        let t = Dir24Table::build(&routes);
        // Sweep around every route boundary.
        for base in [
            0x0A000000u32,
            0x0A0B0000,
            0x0A0B0C00,
            0x0A0B0C80,
            0x0A0B0CFF,
        ] {
            for delta in -2i64..=2 {
                let addr = (base as i64 + delta) as u32;
                assert!(
                    matches_oracle(&t, &routes, addr),
                    "mismatch at {addr:#010x}"
                );
            }
        }
    }

    #[test]
    fn spill_block_reuse() {
        // Two >24 routes in the same /24 share one block.
        let routes = vec![
            Route4::new(0x01020300, 26, 1),
            Route4::new(0x01020380, 26, 2),
        ];
        let t = Dir24Table::build(&routes);
        assert_eq!(t.long_blocks(), 1);
        assert_eq!(t.lookup_host(0x01020301), 1);
        assert_eq!(t.lookup_host(0x01020381), 2);
        assert_eq!(t.lookup_host(0x01020250), NO_ROUTE);
    }

    #[test]
    fn spill_block_inherits_shorter_route() {
        let routes = vec![
            Route4::new(0x01020000, 16, 7),
            Route4::new(0x01020340, 30, 8),
        ];
        let t = Dir24Table::build(&routes);
        // Addresses in the spilled /24 but outside the /30 still get
        // the /16's hop.
        assert_eq!(t.lookup_host(0x01020301), 7);
        assert_eq!(t.lookup_host(0x01020341), 8);
    }

    #[test]
    fn incremental_insert_equals_rebuild() {
        // Start from a base set, insert more routes one by one; the
        // incremental table must match a from-scratch build at every
        // step.
        let base = simple_routes();
        let extra = [
            Route4::new(0x0A0B0C40, 26, 1), // inside the spilled /24
            Route4::new(0x0A0B0000, 18, 2), // covers the spilled /24
            Route4::new(0xC0A80000, 16, 3), // fresh region
            Route4::new(0xC0A80180, 25, 4), // new spill
            Route4::new(0xC0A80000, 16, 5), // replace an existing route
        ];
        let mut table = Dir24Table::build(&base);
        let mut all = base;
        for r in extra {
            table.insert(r);
            all.push(r);
            for probe in [
                0x0A0B0C41u32,
                0x0A0B0C01,
                0x0A0B0C81,
                0x0A0BFFFF,
                0x0A0B0001,
                0xC0A80001,
                0xC0A80181,
                0xC0A801FF,
                0xC0A80101,
                0xDEADBEEF,
            ] {
                assert!(
                    matches_oracle(&table, &all, probe),
                    "after {r:?}: mismatch at {probe:#010x}"
                );
            }
        }
    }

    #[test]
    fn incremental_insert_never_overwrites_longer_prefixes() {
        let mut table = Dir24Table::build(&[Route4::new(0x0A0B0C00, 24, 9)]);
        table.insert(Route4::new(0x0A000000, 8, 1));
        assert_eq!(table.lookup_host(0x0A0B0C01), 9, "/24 survives a /8 insert");
        assert_eq!(table.lookup_host(0x0A000001), 1);
    }

    #[test]
    fn incremental_spill_inherits_current_entry() {
        let mut table = Dir24Table::build(&[Route4::new(0x01020000, 16, 7)]);
        table.insert(Route4::new(0x01020340, 30, 8));
        assert_eq!(table.long_blocks(), 1);
        assert_eq!(table.lookup_host(0x01020301), 7, "inherited /16");
        assert_eq!(table.lookup_host(0x01020341), 8);
        // The shadow knows the inherited entries are /16-painted:
        // a /20 insert must overwrite them but not the /30.
        table.insert(Route4::new(0x01020000, 20, 6));
        assert_eq!(table.lookup_host(0x01020301), 6);
        assert_eq!(table.lookup_host(0x01020341), 8);
        let block_entry = table.long_entry(0x41);
        assert_eq!(block_entry, 8);
    }

    #[test]
    fn image_round_trips_through_slice_mem() {
        let routes = simple_routes();
        let t = Dir24Table::build(&routes);
        let image = t.image().to_vec();
        let mut mem = SliceMem::new(&image);
        assert_eq!(lookup(&t.layout(), &mut mem, 0x0A0B0C81), 4);
    }
}
