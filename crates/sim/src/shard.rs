//! Conservative (lookahead-based) parallel execution of a sharded
//! model on plain OS threads.
//!
//! The data plane partitions into *shards* (one per NUMA domain in
//! `ps-core`), each owning a private [`Scheduler`] — its own heap,
//! next-slot and FIFO lanes — and a disjoint slice of model state.
//! Shards interact only through **typed cross-shard messages** with a
//! minimum latency `L` (the lookahead: in PacketShader terms, the
//! cross-IOH/QPI hop). That bound is what makes parallel execution
//! safe *and* deterministic:
//!
//! * Virtual time is cut into windows of `L` ticks. Every shard runs
//!   window `k` to completion before any shard starts window `k+1`
//!   (a barrier on the coordinator thread).
//! * A message emitted inside window `k` arrives at least `L` after
//!   its emission instant, hence strictly after window `k` ends — no
//!   shard can ever receive a message for its past. The outbox
//!   ([`CrossQueue::send`]) asserts this contract.
//! * At each barrier the coordinator sorts the in-flight messages by
//!   `(arrival, source, per-source emission index)` — a total order
//!   that does not depend on how shards are hosted on threads — and
//!   hands each shard its deliveries *in that order* before the next
//!   window starts.
//!
//! The result: the observable evolution of every shard is a pure
//! function of the initial state and the lookahead, independent of
//! thread scheduling and of how many OS threads execute the shards.
//! Passing `lookahead >= until + 1` degenerates to a single window —
//! fully independent shards running in parallel with no barriers.
//!
//! The workspace is hermetic, so the implementation uses only
//! `std::thread::scope` and `std::sync::mpsc`.

use std::sync::mpsc;

use crate::event::Scheduler;
use crate::time::Time;

/// One event queue per shard with a deterministic merged total order:
/// `(time, shard, seq)` — earliest time first, ties broken by shard
/// index, then by scheduling order within the shard. With one shard
/// this is exactly the single-queue `(time, seq)` order.
pub struct ShardedScheduler<E> {
    shards: Vec<Scheduler<E>>,
}

impl<E> ShardedScheduler<E> {
    /// `n` empty per-shard queues at time zero.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "a sharded scheduler needs at least one shard");
        ShardedScheduler {
            shards: (0..n).map(|_| Scheduler::new()).collect(),
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Always false (`new` requires at least one shard); present so
    /// `len` follows the container convention.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Mutable access to shard `i`'s queue, for seeding initial events
    /// and for inspecting clocks after a run.
    pub fn shard_mut(&mut self, i: usize) -> &mut Scheduler<E> {
        &mut self.shards[i]
    }

    /// Pop the globally earliest event across all shards in
    /// `(time, shard, seq)` order. Returns `(shard, time, event)`.
    pub fn pop_merged(&mut self) -> Option<(usize, Time, E)> {
        let mut best: Option<(Time, usize)> = None;
        for (i, s) in self.shards.iter().enumerate() {
            if let Some((t, _)) = s.peek_key() {
                // Strict `<` keeps the lowest shard index on time ties.
                if best.is_none_or(|(bt, _)| t < bt) {
                    best = Some((t, i));
                }
            }
        }
        let (_, i) = best?;
        let (t, ev) = self.shards[i]
            .pop_due(Time::MAX)
            .expect("peeked shard non-empty");
        Some((i, t, ev))
    }
}

/// A model partitioned into shards that communicate exclusively via
/// typed messages with a minimum cross-shard latency.
///
/// Each shard is one value of the implementing type; `handle` runs
/// local events against the shard's private queue, and emissions to
/// other shards go through the [`CrossQueue`] outbox instead of being
/// scheduled directly. `deliver` is the receiving side, invoked at
/// window barriers in the deterministic global message order.
pub trait ShardModel {
    /// Local event type of each shard's queue.
    type Event;
    /// Cross-shard message payload.
    type Cross;

    /// Handle one local event at the shard's current virtual time.
    fn handle(
        &mut self,
        sched: &mut Scheduler<Self::Event>,
        ev: Self::Event,
        cross: &mut CrossQueue<Self::Cross>,
    );

    /// Accept a cross-shard message arriving at `at` (always strictly
    /// inside the shard's *next* window, never its past). Typically
    /// schedules a local event at `at`.
    fn deliver(&mut self, sched: &mut Scheduler<Self::Event>, at: Time, msg: Self::Cross);
}

/// One window's command to a shard worker: the globally ordered
/// deliveries for the window, plus the window deadline.
type WindowCmd<C> = (Vec<(Time, C)>, Time);

/// An in-flight cross-shard message, keyed for the deterministic
/// merge: `(arrival, src, idx)` where `idx` is the per-source emission
/// counter. A source lives in exactly one shard under any hosting, so
/// the key — and therefore the delivery order — is independent of the
/// shard count.
struct CrossMsg<C> {
    arrival: Time,
    src: usize,
    idx: u64,
    to: usize,
    msg: C,
}

/// Per-shard outbox for cross-shard messages, handed to
/// [`ShardModel::handle`]. Enforces the lookahead contract and stamps
/// each message with its per-source emission index (monotone across
/// the whole run, so ties at equal arrival times order identically no
/// matter how emissions spread over windows).
pub struct CrossQueue<C> {
    window_end: Time,
    counters: Vec<u64>,
    msgs: Vec<CrossMsg<C>>,
}

impl<C> CrossQueue<C> {
    fn new() -> Self {
        CrossQueue {
            window_end: 0,
            counters: Vec::new(),
            msgs: Vec::new(),
        }
    }

    /// Emit a message from source `src` (a model-defined id, e.g. a
    /// NUMA node index) to destination `to`, arriving at absolute time
    /// `arrival`.
    ///
    /// # Panics
    /// Panics if `arrival` does not lie strictly beyond the current
    /// window: that would mean the model's cross-shard latency is
    /// smaller than the lookahead the run was started with, i.e. the
    /// parallel execution could miss causality.
    pub fn send(&mut self, src: usize, to: usize, arrival: Time, msg: C) {
        assert!(
            arrival > self.window_end,
            "cross-shard message violates the lookahead contract: \
             arrival {arrival} <= window end {}",
            self.window_end
        );
        if src >= self.counters.len() {
            self.counters.resize(src + 1, 0);
        }
        let idx = self.counters[src];
        self.counters[src] += 1;
        self.msgs.push(CrossMsg {
            arrival,
            src,
            idx,
            to,
            msg,
        });
    }
}

/// Run every shard to `until` (inclusive) under conservative
/// synchronization with the given `lookahead`, one OS thread per
/// shard plus the calling thread as barrier coordinator.
///
/// * `models[i]` runs against `scheds` shard `i`; seed initial events
///   via [`ShardedScheduler::shard_mut`] before calling.
/// * `lookahead` is the minimum cross-shard latency `L >= 1`: window
///   `k` covers virtual times `[(k-1)·L, k·L - 1]` (clipped to
///   `until`), which guarantees every emission lands beyond its own
///   window. Pass `until + 1` (or more) when shards never communicate
///   — the run collapses to one barrier-free window.
/// * `dest_shard` maps a message's destination id to a shard index.
///
/// After the run every shard's clock stands exactly at `until`.
/// Messages that would arrive after `until` are discarded — the same
/// fate a past-`until` event has in a sequential `run_until`.
///
/// # Panics
/// Panics if `models` and `scheds` disagree on the shard count, if
/// `lookahead == 0`, or if a shard worker panics (the panic is
/// propagated to the caller).
pub fn run_sharded<M, F>(
    models: &mut [M],
    scheds: &mut ShardedScheduler<M::Event>,
    until: Time,
    lookahead: Time,
    dest_shard: F,
) where
    M: ShardModel + Send,
    M::Event: Send,
    M::Cross: Send,
    F: Fn(usize) -> usize,
{
    let n = models.len();
    assert_eq!(n, scheds.len(), "one model per shard");
    assert!(lookahead >= 1, "lookahead must be at least one tick");

    std::thread::scope(|scope| {
        let mut cmd_txs = Vec::with_capacity(n);
        let mut out_rxs = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for (model, sched) in models.iter_mut().zip(scheds.shards.iter_mut()) {
            let (cmd_tx, cmd_rx) = mpsc::channel::<WindowCmd<M::Cross>>();
            let (out_tx, out_rx) = mpsc::channel::<Vec<CrossMsg<M::Cross>>>();
            cmd_txs.push(cmd_tx);
            out_rxs.push(out_rx);
            workers.push(scope.spawn(move || {
                let mut cross = CrossQueue::new();
                while let Ok((deliveries, deadline)) = cmd_rx.recv() {
                    // Deliveries were globally ordered by the
                    // coordinator; scheduling them before the window
                    // runs keeps that order ahead of any event the
                    // window itself creates at the same instant.
                    for (at, msg) in deliveries {
                        model.deliver(sched, at, msg);
                    }
                    cross.window_end = deadline;
                    while let Some((_, ev)) = sched.pop_due(deadline) {
                        model.handle(sched, ev, &mut cross);
                    }
                    sched.advance_clock(deadline);
                    if out_tx.send(std::mem::take(&mut cross.msgs)).is_err() {
                        break;
                    }
                }
            }));
        }

        // Coordinator: windows end at L-1, 2L-1, ... (clipped), so an
        // emission at the earliest instant of window k (time (k-1)·L)
        // still arrives at >= k·L, past the window's deadline.
        let mut pending: Vec<CrossMsg<M::Cross>> = Vec::new();
        let mut deadline = lookahead.saturating_sub(1).min(until);
        'windows: loop {
            let due = pending.partition_point(|m| m.arrival <= deadline);
            let mut per_shard: Vec<Vec<(Time, M::Cross)>> = (0..n).map(|_| Vec::new()).collect();
            for m in pending.drain(..due) {
                per_shard[dest_shard(m.to)].push((m.arrival, m.msg));
            }
            for (tx, dels) in cmd_txs.iter().zip(per_shard) {
                if tx.send((dels, deadline)).is_err() {
                    // Worker gone — bail out; the joins below
                    // propagate its panic to the caller.
                    break 'windows;
                }
            }
            for rx in &out_rxs {
                match rx.recv() {
                    Ok(msgs) => pending.extend(msgs),
                    Err(_) => break 'windows,
                }
            }
            pending.sort_by_key(|m| (m.arrival, m.src, m.idx));
            if deadline >= until {
                break;
            }
            deadline = deadline.saturating_add(lookahead).min(until);
        }
        drop(cmd_txs);
        for w in workers {
            if let Err(payload) = w.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    type Log = Vec<(Time, u64)>;

    /// Shard `id` logs every event and volleys `v+1` back to the other
    /// shard with `latency` ns of flight time.
    struct PingPong {
        id: usize,
        latency: Time,
        limit: u64,
        log: Log,
    }

    impl ShardModel for PingPong {
        type Event = u64;
        type Cross = u64;
        fn handle(&mut self, sched: &mut Scheduler<u64>, ev: u64, cross: &mut CrossQueue<u64>) {
            self.log.push((sched.now(), ev));
            if ev < self.limit {
                cross.send(self.id, 1 - self.id, sched.now() + self.latency, ev + 1);
            }
        }
        fn deliver(&mut self, sched: &mut Scheduler<u64>, at: Time, msg: u64) {
            sched.at(at, msg);
        }
    }

    fn volley(latency: Time, lookahead: Time, until: Time) -> (Log, Log) {
        let mut models = vec![
            PingPong {
                id: 0,
                latency,
                limit: 8,
                log: vec![],
            },
            PingPong {
                id: 1,
                latency,
                limit: 8,
                log: vec![],
            },
        ];
        let mut scheds = ShardedScheduler::new(2);
        scheds.shard_mut(0).at(0, 0);
        run_sharded(&mut models, &mut scheds, until, lookahead, |node| node);
        assert_eq!(scheds.shard_mut(0).now(), until);
        assert_eq!(scheds.shard_mut(1).now(), until);
        let mut it = models.into_iter();
        (it.next().unwrap().log, it.next().unwrap().log)
    }

    #[test]
    fn volleys_alternate_with_exact_latency() {
        let (a, b) = volley(10, 10, 1000);
        assert_eq!(a, vec![(0, 0), (20, 2), (40, 4), (60, 6), (80, 8)]);
        assert_eq!(b, vec![(10, 1), (30, 3), (50, 5), (70, 7)]);
    }

    #[test]
    fn smaller_lookahead_gives_identical_results() {
        // Any lookahead <= the true latency is safe and observably
        // equivalent; only the number of barriers changes.
        assert_eq!(volley(10, 10, 1000), volley(10, 1, 1000));
        assert_eq!(volley(10, 10, 1000), volley(10, 3, 1000));
    }

    #[test]
    fn until_clips_the_run() {
        // The volley at t=40 is the last one at or before until=45;
        // the message for t=50 is in flight but never delivered.
        let (a, b) = volley(10, 10, 45);
        assert_eq!(a.last(), Some(&(40, 4)));
        assert_eq!(b.last(), Some(&(30, 3)));
    }

    #[test]
    #[should_panic(expected = "lookahead contract")]
    fn undershooting_the_latency_is_caught() {
        // The model's real latency (2) is smaller than the declared
        // lookahead (10): the emission lands inside its own window.
        volley(2, 10, 1000);
    }

    #[test]
    fn pop_merged_orders_by_time_shard_seq() {
        let mut s: ShardedScheduler<u32> = ShardedScheduler::new(3);
        s.shard_mut(2).at(5, 20);
        s.shard_mut(0).at(5, 0);
        s.shard_mut(1).at(3, 10);
        s.shard_mut(0).at(5, 1);
        s.shard_mut(1).at(9, 11);
        let mut order = vec![];
        while let Some((shard, t, ev)) = s.pop_merged() {
            order.push((t, shard, ev));
        }
        // Time first; shard index breaks the t=5 tie; within shard 0
        // scheduling order holds.
        assert_eq!(
            order,
            vec![(3, 1, 10), (5, 0, 0), (5, 0, 1), (5, 2, 20), (9, 1, 11)]
        );
    }

    #[test]
    fn single_shard_run_matches_sequential_dispatch() {
        // One shard, no messages: run_sharded must be a plain
        // run_until in disguise, windows and all.
        struct Chain(Vec<(Time, u32)>);
        impl ShardModel for Chain {
            type Event = u32;
            type Cross = ();
            fn handle(&mut self, sched: &mut Scheduler<u32>, ev: u32, _: &mut CrossQueue<()>) {
                self.0.push((sched.now(), ev));
                if ev < 5 {
                    sched.after(7, ev + 1);
                }
            }
            fn deliver(&mut self, _: &mut Scheduler<u32>, _: Time, _: ()) {
                unreachable!("no cross traffic")
            }
        }
        let mut models = vec![Chain(vec![])];
        let mut scheds = ShardedScheduler::new(1);
        scheds.shard_mut(0).at(0, 0);
        run_sharded(&mut models, &mut scheds, 100, 4, |_| 0);
        assert_eq!(
            models[0].0,
            vec![(0, 0), (7, 1), (14, 2), (21, 3), (28, 4), (35, 5)]
        );
        assert_eq!(scheds.shard_mut(0).now(), 100);
    }
}
