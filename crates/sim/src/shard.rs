//! Conservative (lookahead-based) parallel execution of a sharded
//! model on plain OS threads.
//!
//! The data plane partitions into *shards* (one per NUMA domain in
//! `ps-core`), each owning a private [`Scheduler`] — its own heap,
//! next-slot and FIFO lanes — and a disjoint slice of model state.
//! Shards interact only through **typed cross-shard messages** with a
//! minimum latency `L` (the lookahead: in PacketShader terms, the
//! cross-IOH/QPI hop). That bound is what makes parallel execution
//! safe *and* deterministic:
//!
//! * Virtual time is cut into windows. Every shard runs window `k` to
//!   completion before any shard starts window `k+1` (a
//!   [`std::sync::Barrier`]). Window deadlines are **adaptive**: the
//!   next deadline is `GVT + L - 1` (clipped to `until`), where GVT is
//!   the earliest pending event or in-flight message across all
//!   shards. Idle stretches of virtual time cost zero barriers, and a
//!   run with no cross traffic (`lookahead > until`) is a single
//!   barrier-free window.
//! * A message emitted at time `t >= GVT` arrives at `t + L >
//!   GVT + L - 1`, i.e. strictly after the window it was emitted in —
//!   no shard can ever receive a message for its past. The outbox
//!   ([`CrossQueue::send`]) asserts this contract.
//! * Messages are exchanged in **batches**: during a window each shard
//!   appends emissions to per-destination outbox vectors; at the
//!   barrier the leader moves each non-empty vector to its destination
//!   — one `Vec` swap per communicating shard pair per window, never a
//!   per-message channel round-trip. Each destination then sorts its
//!   batch by `(arrival, source, per-source emission index)` — a total
//!   order independent of how shards are hosted on threads — and
//!   delivers in that order before its next window starts.
//! * Shards are decoupled from threads: a pool of `T <= shards`
//!   threads claims shard-windows from a shared counter, so a thread
//!   that finishes its shard early **steals** the next unstarted
//!   shard's window instead of idling at the barrier. Each
//!   shard-window executes atomically against the shard's private
//!   state, so the result is independent of which thread hosts it.
//!
//! The observable evolution of every shard is therefore a pure
//! function of the initial state and the lookahead — independent of
//! thread count, steal pattern and shard count. With `T == 1` (the
//! default on a single-core host) the whole run executes inline on
//! the calling thread: no spawns, no barriers, no atomics.
//!
//! The workspace is hermetic: only `std::thread`, `std::sync`.

use std::num::NonZeroUsize;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};

use crate::event::Scheduler;
use crate::time::Time;

/// One event queue per shard with a deterministic merged total order:
/// `(time, shard, seq)` — earliest time first, ties broken by shard
/// index, then by scheduling order within the shard. With one shard
/// this is exactly the single-queue `(time, seq)` order.
pub struct ShardedScheduler<E> {
    shards: Vec<Scheduler<E>>,
}

impl<E> ShardedScheduler<E> {
    /// `n` empty per-shard queues at time zero.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "a sharded scheduler needs at least one shard");
        ShardedScheduler {
            shards: (0..n).map(|_| Scheduler::new()).collect(),
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Always false (`new` requires at least one shard); present so
    /// `len` follows the container convention.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Mutable access to shard `i`'s queue, for seeding initial events
    /// and for inspecting clocks after a run.
    pub fn shard_mut(&mut self, i: usize) -> &mut Scheduler<E> {
        &mut self.shards[i]
    }

    /// Pop the globally earliest event across all shards in
    /// `(time, shard, seq)` order. Returns `(shard, time, event)`.
    pub fn pop_merged(&mut self) -> Option<(usize, Time, E)> {
        let mut best: Option<(Time, usize)> = None;
        for (i, s) in self.shards.iter().enumerate() {
            if let Some((t, _)) = s.peek_key() {
                // Strict `<` keeps the lowest shard index on time ties.
                if best.is_none_or(|(bt, _)| t < bt) {
                    best = Some((t, i));
                }
            }
        }
        let (_, i) = best?;
        let (t, ev) = self.shards[i]
            .pop_due(Time::MAX)
            .expect("peeked shard non-empty");
        Some((i, t, ev))
    }
}

/// A model partitioned into shards that communicate exclusively via
/// typed messages with a minimum cross-shard latency.
///
/// Each shard is one value of the implementing type; `handle` runs
/// local events against the shard's private queue, and emissions to
/// other shards go through the [`CrossQueue`] outbox instead of being
/// scheduled directly. `deliver` is the receiving side, invoked at
/// window barriers in the deterministic global message order.
pub trait ShardModel {
    /// Local event type of each shard's queue.
    type Event;
    /// Cross-shard message payload.
    type Cross;

    /// Handle one local event at the shard's current virtual time.
    fn handle(
        &mut self,
        sched: &mut Scheduler<Self::Event>,
        ev: Self::Event,
        cross: &mut CrossQueue<Self::Cross>,
    );

    /// Accept a cross-shard message arriving at `at` (always strictly
    /// inside the shard's *next* window, never its past). Typically
    /// schedules a local event at `at`.
    fn deliver(&mut self, sched: &mut Scheduler<Self::Event>, at: Time, msg: Self::Cross);
}

/// An in-flight cross-shard message, keyed for the deterministic
/// merge: `(arrival, src, idx)` where `idx` is the per-source emission
/// counter. A source lives in exactly one shard under any hosting, so
/// the key — and therefore the delivery order — is independent of the
/// shard count.
struct CrossMsg<C> {
    arrival: Time,
    src: usize,
    idx: u64,
    to: usize,
    msg: C,
}

/// Per-shard outbox for cross-shard messages, handed to
/// [`ShardModel::handle`]. Enforces the lookahead contract and stamps
/// each message with its per-source emission index (monotone across
/// the whole run, so ties at equal arrival times order identically no
/// matter how emissions spread over windows).
pub struct CrossQueue<C> {
    window_end: Time,
    counters: Vec<u64>,
    msgs: Vec<CrossMsg<C>>,
}

impl<C> CrossQueue<C> {
    fn new() -> Self {
        CrossQueue {
            window_end: 0,
            counters: Vec::new(),
            msgs: Vec::new(),
        }
    }

    /// Emit a message from source `src` (a model-defined id, e.g. a
    /// NUMA node index) to destination `to`, arriving at absolute time
    /// `arrival`.
    ///
    /// # Panics
    /// Panics if `arrival` does not lie strictly beyond the current
    /// window: that would mean the model's cross-shard latency is
    /// smaller than the lookahead the run was started with, i.e. the
    /// parallel execution could miss causality.
    pub fn send(&mut self, src: usize, to: usize, arrival: Time, msg: C) {
        assert!(
            arrival > self.window_end,
            "cross-shard message violates the lookahead contract: \
             arrival {arrival} <= window end {}",
            self.window_end
        );
        if src >= self.counters.len() {
            self.counters.resize(src + 1, 0);
        }
        let idx = self.counters[src];
        self.counters[src] += 1;
        self.msgs.push(CrossMsg {
            arrival,
            src,
            idx,
            to,
            msg,
        });
    }
}

/// What a sharded run did, beyond its (deterministic) virtual-time
/// result: barrier count, steal count and the in-flight message
/// high-water mark. Purely observational — two runs of the same
/// inputs always produce the same model state, but may report
/// different `stolen` counts depending on thread timing.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardRunStats {
    /// Number of conservative windows executed (barriers + 1 with
    /// multiple threads; always ≥ 1).
    pub windows: u64,
    /// Shard-windows executed by a thread other than the shard's home
    /// thread (`shard % threads`) — i.e. how often work-stealing
    /// actually moved work. Always 0 when `threads == 1`.
    pub stolen: u64,
    /// Maximum number of cross-shard messages in flight (emitted but
    /// not yet delivered) observed at any barrier.
    pub max_in_flight: usize,
    /// OS threads the run actually used (after clamping to the shard
    /// count and the host's available parallelism).
    pub threads: usize,
}

/// The thread count [`run_sharded`] uses for `shards` shards:
/// `min(shards, available_parallelism)`, overridable with the
/// `PS_SHARD_THREADS` environment variable (which may exceed the
/// host's parallelism — useful for exercising the steal and barrier
/// paths on small machines).
pub fn default_shard_threads(shards: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    let cap = std::env::var("PS_SHARD_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&t| t >= 1)
        .unwrap_or(hw);
    cap.min(shards).max(1)
}

/// Everything one shard owns during a run. A shard-window executes
/// atomically against this state under its mutex, so which OS thread
/// hosts it is unobservable.
struct Slot<'a, M: ShardModel> {
    model: &'a mut M,
    sched: &'a mut Scheduler<M::Event>,
    cross: CrossQueue<M::Cross>,
    /// Per-destination outboxes filled while draining a window; moved
    /// wholesale to the destinations at the barrier.
    out: Vec<Vec<CrossMsg<M::Cross>>>,
    /// Batches received at barriers, merged lazily at window start.
    fresh: Vec<Vec<CrossMsg<M::Cross>>>,
    /// Merged undelivered messages, sorted by `(arrival, src, idx)`.
    pending: Vec<CrossMsg<M::Cross>>,
    /// Published after each window: earliest pending event or
    /// undelivered/outgoing message arrival — this shard's GVT input.
    local_min: Option<Time>,
}

impl<M: ShardModel> Slot<'_, M> {
    /// Run one conservative window to `deadline` (inclusive):
    /// merge + deliver due messages, drain local events, advance the
    /// clock, partition emissions into per-destination outboxes and
    /// publish the local GVT component.
    fn run_window<F: Fn(usize) -> usize>(&mut self, deadline: Time, until: Time, dest: &F) {
        if !self.fresh.is_empty() {
            for batch in self.fresh.drain(..) {
                self.pending.extend(batch);
            }
            // Keys are unique per (src, idx), so an unstable sort
            // yields the same deterministic delivery order a stable
            // one would.
            self.pending
                .sort_unstable_by_key(|m| (m.arrival, m.src, m.idx));
        }
        let due = self.pending.partition_point(|m| m.arrival <= deadline);
        for m in self.pending.drain(..due) {
            self.model.deliver(self.sched, m.arrival, m.msg);
        }
        self.cross.window_end = deadline;
        while let Some((_, ev)) = self.sched.pop_due(deadline) {
            self.model.handle(self.sched, ev, &mut self.cross);
        }
        self.sched.advance_clock(deadline);
        let mut lmin = self.sched.peek_time();
        for m in self.cross.msgs.drain(..) {
            if m.arrival > until {
                // Never deliverable — the same fate a past-`until`
                // event has in a sequential `run_until`. Dropping at
                // the source bounds the in-flight set.
                continue;
            }
            lmin = Some(lmin.map_or(m.arrival, |v| v.min(m.arrival)));
            self.out[dest(m.to)].push(m);
        }
        if let Some(first) = self.pending.first() {
            lmin = Some(lmin.map_or(first.arrival, |v| v.min(first.arrival)));
        }
        self.local_min = lmin;
    }

    /// Undelivered messages held by this shard (for the in-flight
    /// high-water mark).
    fn held(&self) -> usize {
        self.pending.len() + self.fresh.iter().map(Vec::len).sum::<usize>()
    }
}

/// Barrier work, executed by exactly one thread while all others wait:
/// move every non-empty outbox vector to its destination shard (the
/// "one `Vec` swap per shard pair" exchange), compute the global
/// virtual time floor, and track the in-flight high-water mark.
/// Returns `(gvt, in_flight)`.
fn exchange<M: ShardModel>(slots: &[Mutex<Slot<'_, M>>]) -> (Option<Time>, usize) {
    let n = slots.len();
    let mut gvt: Option<Time> = None;
    let mut moved: Vec<Vec<CrossMsg<M::Cross>>> = Vec::new();
    // Phase 1: take outboxes and fold the GVT inputs.
    for slot in slots {
        let mut s = slot.lock().expect("no shard panicked");
        if let Some(m) = s.local_min {
            gvt = Some(gvt.map_or(m, |v: Time| v.min(m)));
        }
        for d in 0..n {
            moved.push(std::mem::take(&mut s.out[d]));
        }
    }
    // Phase 2: hand each non-empty batch to its destination.
    let mut in_flight = 0;
    for (d, slot) in slots.iter().enumerate() {
        let mut dst = slot.lock().expect("no shard panicked");
        for src in 0..n {
            let batch = std::mem::take(&mut moved[src * n + d]);
            if !batch.is_empty() {
                dst.fresh.push(batch);
            }
        }
        in_flight += dst.held();
    }
    (gvt, in_flight)
}

/// The adaptive window rule: the next deadline is `GVT + L - 1`
/// (clipped to `until`); with nothing pending anywhere, jump straight
/// to `until`. Every pending item lies strictly beyond the previous
/// deadline, so the window sequence always makes progress — and GVT
/// is a *global* quantity (the same system state at any shard count),
/// which is what keeps the window sequence, and therefore the
/// delivery order, identical across shard counts.
fn next_deadline(gvt: Option<Time>, lookahead: Time, until: Time) -> Time {
    match gvt {
        Some(g) => g.saturating_add(lookahead - 1).min(until),
        None => until,
    }
}

/// Run every shard to `until` (inclusive) under conservative
/// synchronization with the given `lookahead`, on
/// [`default_shard_threads`] OS threads.
///
/// * `models[i]` runs against `scheds` shard `i`; seed initial events
///   via [`ShardedScheduler::shard_mut`] before calling.
/// * `lookahead` is the minimum cross-shard latency `L >= 1`. Windows
///   are sized adaptively (see [the module docs](self)); every
///   emission is guaranteed to land beyond its own window. Pass
///   `until + 1` (or more) when shards never communicate — the run
///   collapses to one barrier-free window.
/// * `dest_shard` maps a message's destination id to a shard index.
///
/// After the run every shard's clock stands exactly at `until`.
/// Messages that would arrive after `until` are discarded — the same
/// fate a past-`until` event has in a sequential `run_until`.
///
/// # Panics
/// Panics if `models` and `scheds` disagree on the shard count, if
/// `lookahead == 0`, or if a shard worker panics (the panic is
/// propagated to the caller).
pub fn run_sharded<M, F>(
    models: &mut [M],
    scheds: &mut ShardedScheduler<M::Event>,
    until: Time,
    lookahead: Time,
    dest_shard: F,
) -> ShardRunStats
where
    M: ShardModel + Send,
    M::Event: Send,
    M::Cross: Send,
    F: Fn(usize) -> usize + Sync,
{
    let threads = default_shard_threads(models.len());
    run_sharded_on(models, scheds, until, lookahead, threads, dest_shard)
}

/// [`run_sharded`] with the thread count pinned explicitly. `threads`
/// is clamped to `[1, shards]`; `threads == 1` executes the whole run
/// inline on the calling thread (no spawns, no barriers) — the window
/// sequence and every virtual-time result are identical either way.
pub fn run_sharded_on<M, F>(
    models: &mut [M],
    scheds: &mut ShardedScheduler<M::Event>,
    until: Time,
    lookahead: Time,
    threads: usize,
    dest_shard: F,
) -> ShardRunStats
where
    M: ShardModel + Send,
    M::Event: Send,
    M::Cross: Send,
    F: Fn(usize) -> usize + Sync,
{
    let n = models.len();
    assert_eq!(n, scheds.len(), "one model per shard");
    assert!(lookahead >= 1, "lookahead must be at least one tick");
    let threads = threads.clamp(1, n);

    let slots: Vec<Mutex<Slot<'_, M>>> = models
        .iter_mut()
        .zip(scheds.shards.iter_mut())
        .map(|(model, sched)| {
            Mutex::new(Slot {
                model,
                sched,
                cross: CrossQueue::new(),
                out: (0..n).map(|_| Vec::new()).collect(),
                fresh: Vec::new(),
                pending: Vec::new(),
                local_min: None,
            })
        })
        .collect();

    // The first deadline anchors at the earliest seeded event, the
    // same GVT rule every later window uses.
    let gvt0 = slots
        .iter()
        .filter_map(|s| s.lock().expect("unused yet").sched.peek_time())
        .min();
    let first = next_deadline(gvt0, lookahead, until);

    let mut stats = ShardRunStats {
        threads,
        ..ShardRunStats::default()
    };

    if threads == 1 {
        let mut deadline = first;
        loop {
            stats.windows += 1;
            for slot in &slots {
                slot.lock().expect("inline run cannot poison").run_window(
                    deadline,
                    until,
                    &dest_shard,
                );
            }
            let (gvt, in_flight) = exchange(&slots);
            stats.max_in_flight = stats.max_in_flight.max(in_flight);
            if deadline >= until {
                break;
            }
            deadline = next_deadline(gvt, lookahead, until);
        }
        return stats;
    }

    let barrier = Barrier::new(threads);
    let jobs = AtomicUsize::new(0);
    let deadline = AtomicU64::new(first);
    let done = AtomicBool::new(false);
    let poisoned = AtomicBool::new(false);
    let windows = AtomicU64::new(0);
    let stolen = AtomicU64::new(0);
    let high_water = AtomicUsize::new(0);
    let payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for t in 0..threads {
            let slots = &slots;
            let dest_shard = &dest_shard;
            let barrier = &barrier;
            let jobs = &jobs;
            let deadline = &deadline;
            let done = &done;
            let poisoned = &poisoned;
            let windows = &windows;
            let stolen = &stolen;
            let high_water = &high_water;
            let payload = &payload;
            scope.spawn(move || loop {
                let d = deadline.load(Ordering::Acquire);
                // Claim shard-windows until the pool is drained. A
                // thread whose "home" shards finished early claims —
                // steals — someone else's next unstarted shard.
                let run = std::panic::catch_unwind(AssertUnwindSafe(|| loop {
                    let i = jobs.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    if i % threads != t {
                        stolen.fetch_add(1, Ordering::Relaxed);
                    }
                    slots[i]
                        .lock()
                        .expect("claimed exactly once per window")
                        .run_window(d, until, dest_shard);
                }));
                if let Err(p) = run {
                    poisoned.store(true, Ordering::Release);
                    let mut slot = payload.lock().expect("payload lock");
                    if slot.is_none() {
                        *slot = Some(p);
                    }
                }
                if barrier.wait().is_leader() {
                    windows.fetch_add(1, Ordering::Relaxed);
                    if poisoned.load(Ordering::Acquire) || d >= until {
                        done.store(true, Ordering::Release);
                    } else {
                        let (gvt, in_flight) = exchange(slots);
                        high_water.fetch_max(in_flight, Ordering::Relaxed);
                        deadline.store(next_deadline(gvt, lookahead, until), Ordering::Release);
                        jobs.store(0, Ordering::Release);
                    }
                }
                barrier.wait();
                if done.load(Ordering::Acquire) {
                    break;
                }
            });
        }
    });

    if let Some(p) = payload.lock().expect("payload lock").take() {
        std::panic::resume_unwind(p);
    }
    stats.windows = windows.load(Ordering::Relaxed);
    stats.stolen = stolen.load(Ordering::Relaxed);
    stats.max_in_flight = high_water.load(Ordering::Relaxed);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    type Log = Vec<(Time, u64)>;

    /// Shard `id` logs every event and volleys `v+1` back to the other
    /// shard with `latency` ns of flight time.
    struct PingPong {
        id: usize,
        latency: Time,
        limit: u64,
        log: Log,
    }

    impl ShardModel for PingPong {
        type Event = u64;
        type Cross = u64;
        fn handle(&mut self, sched: &mut Scheduler<u64>, ev: u64, cross: &mut CrossQueue<u64>) {
            self.log.push((sched.now(), ev));
            if ev < self.limit {
                cross.send(self.id, 1 - self.id, sched.now() + self.latency, ev + 1);
            }
        }
        fn deliver(&mut self, sched: &mut Scheduler<u64>, at: Time, msg: u64) {
            sched.at(at, msg);
        }
    }

    fn volley_on(latency: Time, lookahead: Time, until: Time, threads: usize) -> (Log, Log) {
        let mut models = vec![
            PingPong {
                id: 0,
                latency,
                limit: 8,
                log: vec![],
            },
            PingPong {
                id: 1,
                latency,
                limit: 8,
                log: vec![],
            },
        ];
        let mut scheds = ShardedScheduler::new(2);
        scheds.shard_mut(0).at(0, 0);
        run_sharded_on(
            &mut models,
            &mut scheds,
            until,
            lookahead,
            threads,
            |node| node,
        );
        assert_eq!(scheds.shard_mut(0).now(), until);
        assert_eq!(scheds.shard_mut(1).now(), until);
        let mut it = models.into_iter();
        (it.next().unwrap().log, it.next().unwrap().log)
    }

    fn volley(latency: Time, lookahead: Time, until: Time) -> (Log, Log) {
        volley_on(latency, lookahead, until, default_shard_threads(2))
    }

    #[test]
    fn volleys_alternate_with_exact_latency() {
        let (a, b) = volley(10, 10, 1000);
        assert_eq!(a, vec![(0, 0), (20, 2), (40, 4), (60, 6), (80, 8)]);
        assert_eq!(b, vec![(10, 1), (30, 3), (50, 5), (70, 7)]);
    }

    #[test]
    fn smaller_lookahead_gives_identical_results() {
        // Any lookahead <= the true latency is safe and observably
        // equivalent; only the number of barriers changes.
        assert_eq!(volley(10, 10, 1000), volley(10, 1, 1000));
        assert_eq!(volley(10, 10, 1000), volley(10, 3, 1000));
    }

    #[test]
    fn thread_count_is_unobservable() {
        // Inline, one-per-shard, and oversubscribed (clamped) all
        // produce the identical virtual-time evolution.
        let inline = volley_on(10, 3, 1000, 1);
        assert_eq!(inline, volley_on(10, 3, 1000, 2));
        assert_eq!(inline, volley_on(10, 3, 1000, 7));
    }

    #[test]
    fn adaptive_windows_skip_idle_time() {
        // Volleys end by t=80 (limit 8, latency 10); with lookahead 1
        // a fixed-grid runtime would need ~1000 windows, the adaptive
        // rule anchors windows at events and then jumps to `until`.
        let mut models = vec![
            PingPong {
                id: 0,
                latency: 10,
                limit: 8,
                log: vec![],
            },
            PingPong {
                id: 1,
                latency: 10,
                limit: 8,
                log: vec![],
            },
        ];
        let mut scheds = ShardedScheduler::new(2);
        scheds.shard_mut(0).at(0, 0);
        let stats = run_sharded_on(&mut models, &mut scheds, 1000, 1, 1, |node| node);
        assert!(
            stats.windows <= 12,
            "expected ~one window per volley + final, got {}",
            stats.windows
        );
    }

    #[test]
    fn until_clips_the_run() {
        // The volley at t=40 is the last one at or before until=45;
        // the message for t=50 is in flight but never delivered.
        let (a, b) = volley(10, 10, 45);
        assert_eq!(a.last(), Some(&(40, 4)));
        assert_eq!(b.last(), Some(&(30, 3)));
    }

    #[test]
    #[should_panic(expected = "lookahead contract")]
    fn undershooting_the_latency_is_caught() {
        // The model's real latency (2) is smaller than the declared
        // lookahead (10): the emission lands inside its own window.
        volley(2, 10, 1000);
    }

    #[test]
    #[should_panic(expected = "lookahead contract")]
    fn undershooting_is_caught_across_threads_too() {
        // The panic must propagate out of a pooled worker without
        // deadlocking the barrier.
        volley_on(2, 10, 1000, 2);
    }

    #[test]
    fn pop_merged_orders_by_time_shard_seq() {
        let mut s: ShardedScheduler<u32> = ShardedScheduler::new(3);
        s.shard_mut(2).at(5, 20);
        s.shard_mut(0).at(5, 0);
        s.shard_mut(1).at(3, 10);
        s.shard_mut(0).at(5, 1);
        s.shard_mut(1).at(9, 11);
        let mut order = vec![];
        while let Some((shard, t, ev)) = s.pop_merged() {
            order.push((t, shard, ev));
        }
        // Time first; shard index breaks the t=5 tie; within shard 0
        // scheduling order holds.
        assert_eq!(
            order,
            vec![(3, 1, 10), (5, 0, 0), (5, 0, 1), (5, 2, 20), (9, 1, 11)]
        );
    }

    #[test]
    fn single_shard_run_matches_sequential_dispatch() {
        // One shard, no messages: run_sharded must be a plain
        // run_until in disguise, windows and all.
        struct Chain(Vec<(Time, u32)>);
        impl ShardModel for Chain {
            type Event = u32;
            type Cross = ();
            fn handle(&mut self, sched: &mut Scheduler<u32>, ev: u32, _: &mut CrossQueue<()>) {
                self.0.push((sched.now(), ev));
                if ev < 5 {
                    sched.after(7, ev + 1);
                }
            }
            fn deliver(&mut self, _: &mut Scheduler<u32>, _: Time, _: ()) {
                unreachable!("no cross traffic")
            }
        }
        let mut models = vec![Chain(vec![])];
        let mut scheds = ShardedScheduler::new(1);
        scheds.shard_mut(0).at(0, 0);
        run_sharded(&mut models, &mut scheds, 100, 4, |_| 0);
        assert_eq!(
            models[0].0,
            vec![(0, 0), (7, 1), (14, 2), (21, 3), (28, 4), (35, 5)]
        );
        assert_eq!(scheds.shard_mut(0).now(), 100);
    }

    #[test]
    fn no_cross_traffic_is_one_barrier_free_window() {
        struct Quiet;
        impl ShardModel for Quiet {
            type Event = u32;
            type Cross = ();
            fn handle(&mut self, _: &mut Scheduler<u32>, _: u32, _: &mut CrossQueue<()>) {}
            fn deliver(&mut self, _: &mut Scheduler<u32>, _: Time, _: ()) {}
        }
        let mut models = vec![Quiet, Quiet];
        let mut scheds = ShardedScheduler::new(2);
        scheds.shard_mut(0).at(0, 1);
        scheds.shard_mut(1).at(3, 2);
        let stats = run_sharded_on(&mut models, &mut scheds, 1000, 1001, 1, |n| n);
        assert_eq!(stats.windows, 1, "lookahead > until means no barriers");
        assert_eq!(stats.max_in_flight, 0);
    }
}
