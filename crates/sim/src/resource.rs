//! Shared-resource models.
//!
//! The fabric bottlenecks in the paper — PCIe links, IOH directions,
//! the 10 GbE wire — are all "serve bytes in FIFO order at a fixed
//! rate, plus a fixed per-transaction overhead". [`BandwidthServer`]
//! captures exactly that: callers submit a transaction at the current
//! virtual time and get back its completion time; queueing delay is
//! implicit in the server's `next_free` horizon.

use crate::time::{transfer_ns, Time};

/// A FIFO store-and-forward server with a byte rate and a fixed
/// per-transaction overhead.
///
/// Completion of a transaction submitted at `now` is
/// `max(now, next_free) + overhead + bytes/rate`, and the server is
/// busy until then. This is the classic M/G/1-style service abstraction
/// used for every link in the simulated machine.
///
/// A server can carry a trace label ([`BandwidthServer::set_trace`]);
/// labelled servers emit one `fabric`-category span per transaction
/// when that category is enabled, covering exactly the service
/// interval (queueing shows up as the gap before the span starts).
#[derive(Debug, Clone)]
pub struct BandwidthServer {
    /// Service rate in bits per second.
    bits_per_sec: u64,
    /// Fixed cost per transaction (DMA setup, PCIe TLP overheads...).
    overhead: Time,
    /// Earliest instant the server can start a new transaction.
    next_free: Time,
    /// Total bytes served (for utilization accounting).
    bytes_served: u64,
    /// Total busy time accumulated.
    busy: Time,
    /// Trace span name; `None` keeps the server silent.
    trace_name: Option<&'static str>,
    /// Trace lane (instance index: IOH number, port number...).
    trace_lane: u32,
}

impl BandwidthServer {
    /// A server with `bits_per_sec` capacity and `overhead` ns fixed
    /// cost per transaction.
    pub fn new(bits_per_sec: u64, overhead: Time) -> Self {
        assert!(bits_per_sec > 0, "a link must have positive capacity");
        BandwidthServer {
            bits_per_sec,
            overhead,
            next_free: 0,
            bytes_served: 0,
            busy: 0,
            trace_name: None,
            trace_lane: 0,
        }
    }

    /// Label this server for tracing: `name` becomes the span name
    /// (e.g. `"ioh.d2h"`, `"wire.rx"`), `lane` the instance index.
    pub fn set_trace(&mut self, name: &'static str, lane: u32) {
        self.trace_name = Some(name);
        self.trace_lane = lane;
    }

    /// The configured rate in bits per second.
    pub fn bits_per_sec(&self) -> u64 {
        self.bits_per_sec
    }

    /// Earliest instant a transaction submitted now would start.
    pub fn next_free(&self) -> Time {
        self.next_free
    }

    /// Submit a transaction of `bytes` at time `now`; returns its
    /// completion time and occupies the server until then.
    pub fn submit(&mut self, now: Time, bytes: u64) -> Time {
        let start = self.next_free.max(now);
        let service = self.overhead + transfer_ns(bytes, self.bits_per_sec);
        let done = start + service;
        self.next_free = done;
        self.bytes_served += bytes;
        self.busy += service;
        if let Some(name) = self.trace_name {
            ps_trace::complete(
                ps_trace::Category::Fabric,
                name,
                self.trace_lane,
                start,
                done,
                || vec![("bytes", bytes), ("wait", start - now)],
            );
        }
        done
    }

    /// Occupy the server for `ns` without moving any bytes — a
    /// retried transaction holding the link (fault injection). The
    /// hold starts when the server next frees up and delays every
    /// later transaction by `ns`; returns when the hold ends.
    pub fn stall(&mut self, now: Time, ns: Time) -> Time {
        let start = self.next_free.max(now);
        let done = start + ns;
        self.next_free = done;
        self.busy += ns;
        if let Some(name) = self.trace_name {
            ps_trace::complete(
                ps_trace::Category::Fabric,
                name,
                self.trace_lane,
                start,
                done,
                || vec![("bytes", 0), ("wait", start - now)],
            );
        }
        done
    }

    /// Queueing delay a transaction submitted at `now` would incur
    /// before service starts.
    pub fn backlog_delay(&self, now: Time) -> Time {
        self.next_free.saturating_sub(now)
    }

    /// Whether the server would accept a transaction at `now` without
    /// queueing more than `limit` ns of delay.
    pub fn admits_within(&self, now: Time, limit: Time) -> bool {
        self.backlog_delay(now) <= limit
    }

    /// Total bytes served so far.
    pub fn bytes_served(&self) -> u64 {
        self.bytes_served
    }

    /// Fraction of `[0, now]` this server spent busy.
    pub fn utilization(&self, now: Time) -> f64 {
        if now == 0 {
            return 0.0;
        }
        (self.busy.min(now)) as f64 / now as f64
    }

    /// Reset accounting (bytes served, busy time) without touching the
    /// service horizon; used when an experiment discards a warm-up
    /// window.
    pub fn reset_accounting(&mut self) {
        self.bytes_served = 0;
        self.busy = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{GIGA, MICROS};

    #[test]
    fn idle_server_serves_immediately() {
        let mut s = BandwidthServer::new(8 * GIGA, 0);
        // 1000 bytes at 8 Gbps = 1 us.
        assert_eq!(s.submit(0, 1000), MICROS);
    }

    #[test]
    fn fifo_backlog_accumulates() {
        let mut s = BandwidthServer::new(8 * GIGA, 0);
        let t1 = s.submit(0, 1000);
        let t2 = s.submit(0, 1000);
        assert_eq!(t1, MICROS);
        assert_eq!(t2, 2 * MICROS);
        assert_eq!(s.backlog_delay(0), 2 * MICROS);
    }

    #[test]
    fn overhead_is_charged_per_transaction() {
        let mut s = BandwidthServer::new(8 * GIGA, 500);
        let t1 = s.submit(0, 1000);
        assert_eq!(t1, MICROS + 500);
    }

    #[test]
    fn idle_gaps_are_not_charged() {
        let mut s = BandwidthServer::new(8 * GIGA, 0);
        s.submit(0, 1000);
        // Submit long after the first completes: starts fresh.
        let t = s.submit(10 * MICROS, 1000);
        assert_eq!(t, 11 * MICROS);
    }

    #[test]
    fn utilization_tracks_busy_fraction() {
        let mut s = BandwidthServer::new(8 * GIGA, 0);
        s.submit(0, 1000); // busy 1 us
        assert!((s.utilization(2 * MICROS) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn admits_within_limit() {
        let mut s = BandwidthServer::new(8 * GIGA, 0);
        s.submit(0, 8000); // busy until 8 us
        assert!(s.admits_within(0, 8 * MICROS));
        assert!(!s.admits_within(0, 7 * MICROS));
        assert!(s.admits_within(8 * MICROS, 0));
    }
}
