//! Virtual time: `u64` nanoseconds since simulation start.

/// Virtual time in nanoseconds.
pub type Time = u64;

/// One microsecond in [`Time`] units.
pub const MICROS: Time = 1_000;
/// One millisecond in [`Time`] units.
pub const MILLIS: Time = 1_000_000;
/// One second in [`Time`] units.
pub const SECONDS: Time = 1_000_000_000;

/// 10^3, handy for rate conversions.
pub const KILO: u64 = 1_000;
/// 10^6, handy for rate conversions.
pub const MEGA: u64 = 1_000_000;
/// 10^9, handy for rate conversions.
pub const GIGA: u64 = 1_000_000_000;

/// Duration of transferring `bytes` at `bits_per_sec`, in nanoseconds,
/// rounded up so back-to-back transfers never overlap.
#[inline]
pub fn transfer_ns(bytes: u64, bits_per_sec: u64) -> Time {
    debug_assert!(bits_per_sec > 0);
    let bits = bytes * 8;
    // ns = bits / (bits_per_sec / 1e9) = bits * 1e9 / bits_per_sec
    (bits * SECONDS).div_ceil(bits_per_sec)
}

/// Convert a packet/operation count over a virtual-time window into an
/// operations-per-second rate.
#[inline]
pub fn rate_per_sec(count: u64, window: Time) -> f64 {
    if window == 0 {
        return 0.0;
    }
    count as f64 * SECONDS as f64 / window as f64
}

/// Convert cycles at `hz` into nanoseconds (rounded up).
#[inline]
pub fn cycles_to_ns(cycles: u64, hz: u64) -> Time {
    debug_assert!(hz > 0);
    (cycles * SECONDS).div_ceil(hz)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_10gbe() {
        // 1250 bytes at 10 Gbps = 1 us.
        assert_eq!(transfer_ns(1250, 10 * GIGA), MICROS);
    }

    #[test]
    fn transfer_time_rounds_up() {
        // 1 byte at 10 Gbps = 0.8 ns -> rounds to 1 ns.
        assert_eq!(transfer_ns(1, 10 * GIGA), 1);
    }

    #[test]
    fn rate_round_trip() {
        // 14_204 packets over 1 ms ~= 14.2 Mpps.
        let r = rate_per_sec(14_204, MILLIS);
        assert!((r - 14_204_000.0).abs() < 1.0);
    }

    #[test]
    fn cycles_at_2_66ghz() {
        // 2660 cycles at 2.66 GHz = 1000 ns.
        assert_eq!(cycles_to_ns(2660, 2_660_000_000), 1000);
    }

    #[test]
    fn zero_window_rate_is_zero() {
        assert_eq!(rate_per_sec(100, 0), 0.0);
    }
}
