//! # ps-sim — discrete-event simulation substrate
//!
//! The execution-driven core that every hardware model in the
//! PacketShader reproduction runs on. It provides:
//!
//! * a deterministic event queue over a nanosecond-resolution virtual
//!   clock ([`Simulation`], [`Scheduler`]),
//! * FIFO bandwidth servers used to model PCIe directions, IOH
//!   directions and Ethernet wires ([`resource::BandwidthServer`]),
//! * statistics primitives: counters, rate meters and log-bucketed
//!   histograms ([`stats`]),
//! * a small deterministic RNG ([`rng::SplitMix64`]) so the simulation
//!   itself has no external dependencies and identical seeds always
//!   replay identical virtual-time traces.
//!
//! The design keeps all concurrency in *virtual* time: PacketShader's
//! worker and master *threads* are simulated entities, which keeps
//! every experiment exactly reproducible. For wall-clock speed the
//! [`shard`] module additionally executes independent model shards on
//! real OS threads under conservative (lookahead-based)
//! synchronization — without giving up a single bit of that
//! determinism (see `DESIGN.md` §9).

#![deny(missing_docs)]

pub mod event;
pub mod resource;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod time;
pub mod trace_summary;

pub use event::{Scheduler, Simulation};
pub use shard::{
    default_shard_threads, run_sharded, run_sharded_on, CrossQueue, ShardModel, ShardRunStats,
    ShardedScheduler,
};
pub use time::{Time, GIGA, KILO, MEGA, MICROS, MILLIS, SECONDS};

/// A simulation model: one big deterministic state machine.
///
/// All component interactions are expressed as events of a single
/// model-defined enum type. This monolithic style avoids shared
/// mutability webs (`Rc<RefCell<..>>`) and keeps the hot dispatch loop
/// free of dynamic dispatch.
pub trait Model {
    /// The closed set of events this model reacts to.
    type Event;

    /// Handle one event at the scheduler's current virtual time.
    fn handle(&mut self, sched: &mut Scheduler<Self::Event>, ev: Self::Event);
}
