//! Minimal deterministic RNG for the simulation core.
//!
//! `ps-sim` deliberately has zero dependencies; workload generation in
//! higher layers uses the `rand` crate, but the simulator itself only
//! needs a small, fast, seedable generator for things like hash-seed
//! perturbation and sampling. SplitMix64 (Steele et al., "Fast
//! splittable pseudorandom number generators") is the standard choice:
//! one multiply-xor-shift pipeline per output, passes BigCrush.

/// SplitMix64 pseudorandom generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator. Equal seeds produce equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)` using Lemire's multiply-shift
    /// reduction (bias is negligible for simulation purposes).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Exponentially distributed value with the given mean; used for
    /// Poisson arrival processes in the traffic generator.
    #[inline]
    pub fn exp(&mut self, mean: f64) -> f64 {
        let u = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = SplitMix64::new(99);
        let mut buckets = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            buckets[r.below(8) as usize] += 1;
        }
        for b in buckets {
            // Expect 10_000 per bucket; allow 5% deviation.
            assert!((9_500..10_500).contains(&b), "bucket count {b}");
        }
    }

    #[test]
    fn exp_has_reasonable_mean() {
        let mut r = SplitMix64::new(5);
        let mean = 250.0;
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| r.exp(mean)).sum();
        let observed = sum / n as f64;
        assert!(
            (observed - mean).abs() < mean * 0.05,
            "observed mean {observed}"
        );
    }
}
