//! The flat metrics exporter over a `ps-trace` event buffer.
//!
//! The Chrome JSON exporter (in `ps-trace` itself) preserves the full
//! timeline; this module reduces the same events to the numbers an
//! experiment report wants printed: per-stage latency distributions
//! (through the log-bucketed [`Histogram`]), queue-depth gauges, and
//! per-resource busy time/utilization. It lives in `ps-sim` rather
//! than `ps-trace` because `ps-trace` sits *below* this crate and
//! cannot see the histogram.

use std::collections::BTreeMap;

use ps_trace::{Category, Collector, Event, Phase};

use crate::stats::Histogram;
use crate::time::Time;

/// Aggregate over all complete spans sharing a `(category, name)`.
#[derive(Debug, Clone)]
pub struct StageStat {
    /// Span category.
    pub cat: Category,
    /// Span name.
    pub name: &'static str,
    /// Number of spans.
    pub count: u64,
    /// Summed span duration (ns). Lanes may overlap, so this can
    /// exceed the run window.
    pub total_ns: u64,
    /// Span-duration distribution.
    pub hist: Histogram,
}

/// Aggregate over all counter samples sharing a `(category, name)`.
#[derive(Debug, Clone)]
pub struct GaugeStat {
    /// Gauge category.
    pub cat: Category,
    /// Gauge name.
    pub name: &'static str,
    /// Number of samples across all lanes.
    pub samples: u64,
    /// Smallest sampled value.
    pub min: u64,
    /// Largest sampled value.
    pub max: u64,
    /// Mean sampled value.
    pub mean: f64,
}

/// Per-kernel PCIe staging traffic, reduced from the cumulative
/// `pcie_h2d.*` / `pcie_d2h.*` / `pcie_pkts.*` counters the column
/// stage emits after every launch (`ps-core`'s `ColumnStage`). The
/// counters are monotone, so the per-run total is the largest sample
/// across lanes summed over lanes.
#[derive(Debug, Clone, Default)]
pub struct PcieStat {
    /// Kernel name (the counter suffix, e.g. `"ipv4-dir24"`).
    pub kernel: String,
    /// Packets staged through the column layer.
    pub pkts: u64,
    /// Host→device staging bytes.
    pub h2d_bytes: u64,
    /// Device→host result bytes.
    pub d2h_bytes: u64,
}

impl PcieStat {
    /// Host→device bytes per staged packet.
    pub fn h2d_per_pkt(&self) -> f64 {
        self.h2d_bytes as f64 / self.pkts.max(1) as f64
    }

    /// Device→host bytes per staged packet.
    pub fn d2h_per_pkt(&self) -> f64 {
        self.d2h_bytes as f64 / self.pkts.max(1) as f64
    }
}

/// Busy accounting for one labelled fabric resource instance.
#[derive(Debug, Clone)]
pub struct ResourceStat {
    /// Resource span name (e.g. `"ioh.d2h"`).
    pub name: &'static str,
    /// Instance lane.
    pub lane: u32,
    /// Transactions served.
    pub count: u64,
    /// Summed service time (ns); FIFO servers never overlap
    /// themselves, so this is true busy time.
    pub busy_ns: u64,
    /// Bytes served (from the spans' `bytes` argument).
    pub bytes: u64,
    /// `busy_ns / window`.
    pub utilization: f64,
}

/// The flat metrics summary: what `--trace-out` prints next to the
/// timeline dump.
#[derive(Debug, Clone)]
pub struct TraceSummary {
    /// Run window the utilization figures are relative to (ns).
    pub window: Time,
    /// Per-stage latency statistics, sorted by category then name.
    pub stages: Vec<StageStat>,
    /// Queue-depth (and other) gauges, sorted by category then name.
    /// `pcie_*` staging counters are factored out into
    /// [`TraceSummary::pcie`] instead of appearing here.
    pub gauges: Vec<GaugeStat>,
    /// Per-kernel PCIe staging traffic, sorted by kernel name.
    pub pcie: Vec<PcieStat>,
    /// Per-resource utilization, sorted by name then lane.
    pub resources: Vec<ResourceStat>,
}

/// Reduce resolved trace events to a [`TraceSummary`] over `window`
/// ns of virtual time.
pub fn summarize(events: &[Event], window: Time) -> TraceSummary {
    let mut stages: BTreeMap<(&'static str, &'static str), StageStat> = BTreeMap::new();
    let mut gauges: BTreeMap<(&'static str, &'static str), (GaugeStat, u128)> = BTreeMap::new();
    let mut resources: BTreeMap<(&'static str, u32), ResourceStat> = BTreeMap::new();
    // Cumulative pcie_* counters: per-(name, lane) running max, so the
    // run total is the lane maxima summed over lanes.
    let mut pcie_max: BTreeMap<(&'static str, u32), u64> = BTreeMap::new();
    for ev in events {
        match ev.phase {
            Phase::Complete { dur } => {
                let s = stages
                    .entry((ev.cat.name(), ev.name))
                    .or_insert_with(|| StageStat {
                        cat: ev.cat,
                        name: ev.name,
                        count: 0,
                        total_ns: 0,
                        hist: Histogram::new(),
                    });
                s.count += 1;
                s.total_ns += dur;
                s.hist.record(dur);
                if ev.cat == Category::Fabric {
                    let r = resources
                        .entry((ev.name, ev.lane))
                        .or_insert_with(|| ResourceStat {
                            name: ev.name,
                            lane: ev.lane,
                            count: 0,
                            busy_ns: 0,
                            bytes: 0,
                            utilization: 0.0,
                        });
                    r.count += 1;
                    r.busy_ns += dur;
                    r.bytes += ev
                        .args
                        .iter()
                        .find(|(k, _)| *k == "bytes")
                        .map_or(0, |&(_, v)| v);
                }
            }
            Phase::Counter { value } => {
                if ev.name.starts_with("pcie_") {
                    let m = pcie_max.entry((ev.name, ev.lane)).or_insert(0);
                    *m = (*m).max(value);
                    continue;
                }
                let (g, sum) = gauges.entry((ev.cat.name(), ev.name)).or_insert_with(|| {
                    (
                        GaugeStat {
                            cat: ev.cat,
                            name: ev.name,
                            samples: 0,
                            min: u64::MAX,
                            max: 0,
                            mean: 0.0,
                        },
                        0u128,
                    )
                });
                g.samples += 1;
                g.min = g.min.min(value);
                g.max = g.max.max(value);
                *sum += value as u128;
            }
            _ => {}
        }
    }
    let mut pcie: BTreeMap<&'static str, PcieStat> = BTreeMap::new();
    for (&(name, _lane), &total) in &pcie_max {
        let Some((field, kernel)) = name.split_once('.') else {
            continue;
        };
        let s = pcie.entry(kernel).or_insert_with(|| PcieStat {
            kernel: kernel.to_string(),
            ..PcieStat::default()
        });
        match field {
            "pcie_h2d" => s.h2d_bytes += total,
            "pcie_d2h" => s.d2h_bytes += total,
            "pcie_pkts" => s.pkts += total,
            _ => {}
        }
    }
    let window_f = window.max(1) as f64;
    TraceSummary {
        window,
        stages: stages.into_values().collect(),
        gauges: gauges
            .into_values()
            .map(|(mut g, sum)| {
                g.mean = sum as f64 / g.samples.max(1) as f64;
                g
            })
            .collect(),
        pcie: pcie.into_values().collect(),
        resources: resources
            .into_values()
            .map(|mut r| {
                r.utilization = r.busy_ns as f64 / window_f;
                r
            })
            .collect(),
    }
}

/// Convenience: resolve a collector's buffer and summarize it.
pub fn summarize_collector(collector: &Collector, window: Time) -> TraceSummary {
    let (events, _) = collector.resolved();
    summarize(&events, window)
}

impl TraceSummary {
    /// Look up a stage by name (any category).
    pub fn stage(&self, name: &str) -> Option<&StageStat> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Render the flat text report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<12} {:<12} {:>9} {:>12} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "category",
            "span",
            "count",
            "total_us",
            "p50_ns",
            "p99_ns",
            "p999_ns",
            "max_ns",
            "mean_ns"
        );
        for s in &self.stages {
            let _ = writeln!(
                out,
                "{:<12} {:<12} {:>9} {:>12.1} {:>9} {:>9} {:>9} {:>9} {:>9.0}",
                s.cat.name(),
                s.name,
                s.count,
                s.total_ns as f64 / 1e3,
                s.hist.p50(),
                s.hist.p99(),
                s.hist.p999(),
                s.hist.max(),
                s.hist.mean()
            );
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(
                out,
                "{:<12} {:<12} {:>9} {:>9} {:>9} {:>9}",
                "category", "gauge", "samples", "min", "max", "mean"
            );
            for g in &self.gauges {
                let _ = writeln!(
                    out,
                    "{:<12} {:<12} {:>9} {:>9} {:>9} {:>9.1}",
                    g.cat.name(),
                    g.name,
                    g.samples,
                    g.min,
                    g.max,
                    g.mean
                );
            }
        }
        if !self.pcie.is_empty() {
            let _ = writeln!(
                out,
                "{:<24} {:>10} {:>10} {:>9} {:>10} {:>9}",
                "pcie staging", "pkts", "h2d_mb", "h2d_b/pkt", "d2h_mb", "d2h_b/pkt"
            );
            for p in &self.pcie {
                let _ = writeln!(
                    out,
                    "{:<24} {:>10} {:>10.2} {:>9.1} {:>10.2} {:>9.1}",
                    p.kernel,
                    p.pkts,
                    p.h2d_bytes as f64 / 1e6,
                    p.h2d_per_pkt(),
                    p.d2h_bytes as f64 / 1e6,
                    p.d2h_per_pkt()
                );
            }
        }
        if !self.resources.is_empty() {
            let _ = writeln!(
                out,
                "{:<12} {:>5} {:>9} {:>12} {:>12} {:>6}",
                "resource", "lane", "txns", "busy_us", "mbytes", "util"
            );
            for r in &self.resources {
                let _ = writeln!(
                    out,
                    "{:<12} {:>5} {:>9} {:>12.1} {:>12.2} {:>5.0}%",
                    r.name,
                    r.lane,
                    r.count,
                    r.busy_ns as f64 / 1e3,
                    r.bytes as f64 / 1e6,
                    r.utilization * 100.0
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_trace::{Collector, TraceConfig};

    fn collector_with_sample() -> Collector {
        let mut c = Collector::new(TraceConfig::all());
        c.complete(Category::Stage, "pre_shade", 0, 0, 1_000, vec![]);
        c.complete(Category::Stage, "pre_shade", 1, 500, 2_500, vec![]);
        c.complete(
            Category::Fabric,
            "ioh.d2h",
            0,
            0,
            4_000,
            vec![("bytes", 5_000)],
        );
        c.counter(Category::Io, "ring_depth", 0, 0, 10);
        c.counter(Category::Io, "ring_depth", 0, 100, 30);
        // Cumulative staging counters on two lanes (NUMA nodes).
        c.counter(Category::Gpu, "pcie_h2d.ipv4-dir24", 0, 10, 400);
        c.counter(Category::Gpu, "pcie_h2d.ipv4-dir24", 0, 20, 1_000);
        c.counter(Category::Gpu, "pcie_h2d.ipv4-dir24", 1, 20, 600);
        c.counter(Category::Gpu, "pcie_d2h.ipv4-dir24", 0, 20, 500);
        c.counter(Category::Gpu, "pcie_pkts.ipv4-dir24", 0, 20, 250);
        c.counter(Category::Gpu, "pcie_pkts.ipv4-dir24", 1, 20, 150);
        c
    }

    #[test]
    fn stage_totals_and_percentiles() {
        let s = summarize_collector(&collector_with_sample(), 10_000);
        let pre = s.stage("pre_shade").unwrap();
        assert_eq!(pre.count, 2);
        assert_eq!(pre.total_ns, 3_000);
        assert!((pre.hist.mean() - 1_500.0).abs() < 1.0);
    }

    #[test]
    fn resource_utilization_over_window() {
        let s = summarize_collector(&collector_with_sample(), 10_000);
        let ioh = s.resources.iter().find(|r| r.name == "ioh.d2h").unwrap();
        assert_eq!(ioh.bytes, 5_000);
        assert!((ioh.utilization - 0.4).abs() < 1e-9);
    }

    #[test]
    fn gauge_min_max_mean() {
        let s = summarize_collector(&collector_with_sample(), 10_000);
        let g = s.gauges.iter().find(|g| g.name == "ring_depth").unwrap();
        assert_eq!((g.samples, g.min, g.max), (2, 10, 30));
        assert!((g.mean - 20.0).abs() < 1e-9);
    }

    #[test]
    fn pcie_counters_reduce_to_lane_summed_maxima() {
        let s = summarize_collector(&collector_with_sample(), 10_000);
        let p = s.pcie.iter().find(|p| p.kernel == "ipv4-dir24").unwrap();
        // Cumulative per lane: lane 0 peaks at 1000, lane 1 at 600.
        assert_eq!(p.h2d_bytes, 1_600);
        assert_eq!(p.d2h_bytes, 500);
        assert_eq!(p.pkts, 400);
        assert!((p.h2d_per_pkt() - 4.0).abs() < 1e-9);
        // Staging counters stay out of the generic gauge table.
        assert!(s.gauges.iter().all(|g| !g.name.starts_with("pcie_")));
    }

    #[test]
    fn render_contains_every_section() {
        let s = summarize_collector(&collector_with_sample(), 10_000);
        let text = s.render();
        assert!(text.contains("p999_ns"));
        assert!(text.contains("max_ns"));
        assert!(text.contains("pre_shade"));
        assert!(text.contains("ring_depth"));
        assert!(text.contains("ioh.d2h"));
        assert!(text.contains("pcie staging"));
        assert!(text.contains("ipv4-dir24"));
    }
}
