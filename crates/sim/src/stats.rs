//! Statistics primitives shared by every experiment: counters, rate
//! meters over virtual-time windows, and a log-bucketed histogram for
//! latency percentiles.

use crate::time::{rate_per_sec, Time};

/// A monotonically increasing event counter with an optional byte
/// dimension — the shape of every NIC/queue statistic in the paper
/// (packets + bytes, kept per queue to avoid false sharing; here the
/// simulation is single-threaded so a plain struct suffices).
#[derive(Debug, Default, Clone, Copy)]
pub struct PacketCounter {
    /// Packets counted.
    pub packets: u64,
    /// Bytes counted (frame bytes, excluding simulated wire overhead).
    pub bytes: u64,
}

impl PacketCounter {
    /// Record one packet of `bytes` length.
    #[inline]
    pub fn add(&mut self, bytes: u64) {
        self.packets += 1;
        self.bytes += bytes;
    }

    /// Record `packets` packets totalling `bytes`.
    #[inline]
    pub fn add_many(&mut self, packets: u64, bytes: u64) {
        self.packets += packets;
        self.bytes += bytes;
    }

    /// Merge another counter into this one.
    pub fn merge(&mut self, other: &PacketCounter) {
        self.packets += other.packets;
        self.bytes += other.bytes;
    }

    /// Packets per second over `window`.
    pub fn pps(&self, window: Time) -> f64 {
        rate_per_sec(self.packets, window)
    }

    /// Throughput in Gbps over `window` using the paper's metric:
    /// each packet is charged `overhead_bytes` of Ethernet overhead
    /// on top of its frame. Frame lengths throughout the workspace
    /// *exclude* the 4 B FCS (`ps-io` counts 60..=1514 B frames), so
    /// the overhead that reconstructs on-wire bits is 24 B — 4 B FCS,
    /// 8 B preamble/SFD and 12 B inter-frame gap
    /// ([`ETHERNET_OVERHEAD_BYTES`]); a minimum 60 B frame then costs
    /// 84 B of wire time — the standard 64 B minimum frame plus 20 B
    /// of preamble and gap.
    pub fn gbps_with_overhead(&self, window: Time, overhead_bytes: u64) -> f64 {
        if window == 0 {
            return 0.0;
        }
        let bits = (self.bytes + self.packets * overhead_bytes) * 8;
        rate_per_sec(bits, window) / 1e9
    }

    /// Raw throughput in Gbps (no overhead accounting).
    pub fn gbps(&self, window: Time) -> f64 {
        self.gbps_with_overhead(window, 0)
    }
}

/// Ethernet overhead per packet in the paper's throughput metric:
/// 4 B FCS + 8 B preamble/SFD + 12 B inter-frame gap. Correct only
/// because frame byte counts exclude the FCS (see
/// [`PacketCounter::gbps_with_overhead`]); it matches `ps-net`'s
/// `WIRE_OVERHEAD` and `wire_len`, which serialize frames onto the
/// simulated wires with the same 24 B charge.
pub const ETHERNET_OVERHEAD_BYTES: u64 = 24;

/// Log-bucketed histogram for latency measurements.
///
/// Buckets grow geometrically (~9% per bucket: 8 sub-buckets per
/// octave), giving percentile error under 10% across nanoseconds to
/// seconds with a few hundred buckets — the HdrHistogram idea reduced
/// to what the experiments need.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

const SUB_BUCKET_BITS: u32 = 3; // 8 sub-buckets per power of two

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 64 << SUB_BUCKET_BITS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn index(value: u64) -> usize {
        if value == 0 {
            return 0;
        }
        let msb = 63 - value.leading_zeros();
        if msb < SUB_BUCKET_BITS {
            return value as usize;
        }
        let shift = msb - SUB_BUCKET_BITS;
        let sub = (value >> shift) as usize & ((1 << SUB_BUCKET_BITS) - 1);
        (((msb - SUB_BUCKET_BITS + 1) as usize) << SUB_BUCKET_BITS) + sub
    }

    fn bucket_high(idx: usize) -> u64 {
        // Upper bound of values mapping to bucket idx.
        if idx < (1 << SUB_BUCKET_BITS) {
            return idx as u64;
        }
        let octave = (idx >> SUB_BUCKET_BITS) as u32 - 1;
        let sub = (idx & ((1 << SUB_BUCKET_BITS) - 1)) as u64;
        let base = 1u64 << (octave + SUB_BUCKET_BITS);
        base + (sub + 1) * (base >> SUB_BUCKET_BITS) - 1
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let idx = Self::index(value).min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded values, 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded value, 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Fold another histogram into this one. Both sides share the same
    /// fixed bucket layout, so quantiles over the merged histogram are
    /// exactly the quantiles a single histogram fed both value streams
    /// would report — the property the sharded data plane relies on
    /// when it merges per-shard latency histograms.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Approximate value at quantile `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_high(idx).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Median shortcut.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile shortcut.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile shortcut — the tail the overload experiments
    /// gate on. Bucket resolution (~9%) is the same as [`Self::p99`];
    /// by construction `p999() >= p99()` (quantile targets are
    /// monotone in `q` over a fixed bucket walk).
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

/// Samples a metric at fixed virtual-time intervals, producing the
/// time series behind figures like the latency-vs-load plot.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    interval: Time,
    next: Time,
    /// `(time, value)` samples.
    pub samples: Vec<(Time, f64)>,
}

impl TimeSeries {
    /// Sample every `interval` ns.
    pub fn new(interval: Time) -> Self {
        assert!(interval > 0);
        TimeSeries {
            interval,
            next: 0,
            samples: Vec::new(),
        }
    }

    /// Offer a sample; records only when the sampling interval has
    /// elapsed since the last recorded sample.
    pub fn offer(&mut self, now: Time, value: f64) {
        if now >= self.next {
            self.samples.push((now, value));
            self.next = now + self.interval;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{MICROS, SECONDS};

    #[test]
    fn counter_rates() {
        let mut c = PacketCounter::default();
        for _ in 0..1000 {
            c.add(64);
        }
        assert_eq!(c.packets, 1000);
        assert_eq!(c.bytes, 64_000);
        // 1000 64B packets in 1 ms = 1 Mpps.
        assert!((c.pps(crate::time::MILLIS) - 1_000_000.0).abs() < 1.0);
        // Paper metric: (64+24)*8 bits per packet.
        let gbps = c.gbps_with_overhead(crate::time::MILLIS, ETHERNET_OVERHEAD_BYTES);
        assert!((gbps - 0.704).abs() < 1e-9, "gbps={gbps}");
    }

    #[test]
    fn ethernet_overhead_reconstructs_wire_bits() {
        // Frames exclude the FCS, so per-packet overhead is FCS +
        // preamble/SFD + inter-frame gap. Pinned: if either side of
        // this convention changes (frame sizing in ps-io/ps-net or
        // this constant), throughput numbers silently shift.
        assert_eq!(ETHERNET_OVERHEAD_BYTES, 4 + 8 + 12);
        // A minimum FCS-less frame (60 B) occupies 84 B of wire time:
        // the 64 B minimum on-wire frame plus 20 B preamble + gap.
        let mut c = PacketCounter::default();
        c.add(60);
        // 84 B over 1 us = 672 Mbps.
        let gbps = c.gbps_with_overhead(crate::time::MICROS, ETHERNET_OVERHEAD_BYTES);
        assert!((gbps - 0.672).abs() < 1e-9, "{gbps}");
    }

    #[test]
    fn counter_merge() {
        let mut a = PacketCounter::default();
        a.add_many(10, 640);
        let mut b = PacketCounter::default();
        b.add(100);
        a.merge(&b);
        assert_eq!(a.packets, 11);
        assert_eq!(a.bytes, 740);
    }

    #[test]
    fn histogram_basic_stats() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 500.5).abs() < 0.01);
        let p50 = h.p50();
        assert!(
            (450..=560).contains(&p50),
            "p50={p50} outside 10% tolerance"
        );
    }

    #[test]
    fn histogram_merge_matches_single_feed() {
        // Split one value stream across two histograms; the merge must
        // agree with a single histogram on every exposed statistic.
        let mut whole = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 0..10_000u64 {
            let v = v.wrapping_mul(0x9E37_79B9).rotate_left(7) % 1_000_000;
            whole.record(v);
            if v % 3 == 0 { &mut a } else { &mut b }.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        assert_eq!(a.mean(), whole.mean());
        for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), whole.quantile(q), "q={q}");
        }
    }

    #[test]
    fn histogram_quantile_bounds() {
        let mut h = Histogram::new();
        h.record(100 * MICROS);
        h.record(200 * MICROS);
        h.record(300 * MICROS);
        assert!(h.quantile(0.0) >= h.min());
        assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn histogram_large_values() {
        let mut h = Histogram::new();
        h.record(10 * SECONDS);
        assert_eq!(h.max(), 10 * SECONDS);
        let q = h.quantile(0.5);
        // Within one bucket (~12.5%) of the true value.
        assert!((10 * SECONDS / 8 * 7..=10 * SECONDS).contains(&q));
    }

    #[test]
    fn histogram_zero_and_empty() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        h.record(0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn histogram_percentile_accuracy_uniform() {
        let mut h = Histogram::new();
        for v in 0..100_000u64 {
            h.record(v);
        }
        let p99 = h.p99();
        let truth = 99_000.0;
        let err = (p99 as f64 - truth).abs() / truth;
        assert!(err < 0.15, "p99={p99} err={err}");
    }

    #[test]
    fn timeseries_sampling_interval() {
        let mut ts = TimeSeries::new(100);
        for t in 0..1000 {
            ts.offer(t, t as f64);
        }
        assert_eq!(ts.samples.len(), 10);
        assert_eq!(ts.samples[0], (0, 0.0));
        assert_eq!(ts.samples[1].0, 100);
    }
}
