//! Deterministic event queue and simulation driver.
//!
//! Events are ordered by `(time, sequence)`: two events scheduled for
//! the same instant fire in scheduling order, which makes every run
//! bit-for-bit reproducible regardless of heap internals.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::Time;
use crate::Model;

struct Entry<E> {
    time: Time,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The event queue plus the virtual clock, handed to
/// [`Model::handle`] so handlers can schedule follow-up events.
pub struct Scheduler<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: Time,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// An empty scheduler at time zero.
    pub fn new() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedule `ev` at absolute time `t`.
    ///
    /// # Panics
    /// Panics if `t` is in the past: a model scheduling backwards in
    /// time is always a bug and would silently corrupt causality.
    pub fn at(&mut self, t: Time, ev: E) {
        assert!(
            t >= self.now,
            "event scheduled in the past: t={} now={}",
            t,
            self.now
        );
        self.seq += 1;
        self.heap.push(Reverse(Entry {
            time: t,
            seq: self.seq,
            ev,
        }));
    }

    /// Schedule `ev` after a delay of `d` nanoseconds.
    pub fn after(&mut self, d: Time, ev: E) {
        self.at(self.now + d, ev);
    }

    /// Schedule `ev` to run at the current instant, after all events
    /// already queued for this instant.
    pub fn immediately(&mut self, ev: E) {
        self.at(self.now, ev);
    }

    fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|Reverse(e)| {
            debug_assert!(e.time >= self.now);
            self.now = e.time;
            (e.time, e.ev)
        })
    }
}

/// Drives a [`Model`] by repeatedly popping the earliest event and
/// dispatching it.
pub struct Simulation<M: Model> {
    /// The model under simulation; public so experiments can inspect
    /// state and statistics after (or during) a run.
    pub model: M,
    sched: Scheduler<M::Event>,
}

impl<M: Model> Simulation<M> {
    /// Wrap `model` with an empty event queue at time zero.
    pub fn new(model: M) -> Self {
        Simulation {
            model,
            sched: Scheduler::new(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.sched.now()
    }

    /// Schedule an initial (or external) event.
    pub fn schedule(&mut self, t: Time, ev: M::Event) {
        self.sched.at(t, ev);
    }

    /// Schedule an event after a delay from the current time.
    pub fn schedule_after(&mut self, d: Time, ev: M::Event) {
        self.sched.after(d, ev);
    }

    /// Dispatch a single event. Returns `false` when the queue is dry.
    pub fn step(&mut self) -> bool {
        match self.sched.pop() {
            Some((_, ev)) => {
                self.model.handle(&mut self.sched, ev);
                true
            }
            None => false,
        }
    }

    /// Run until the queue is empty or virtual time would exceed
    /// `deadline`. Events at exactly `deadline` still run. Returns the
    /// number of events dispatched.
    pub fn run_until(&mut self, deadline: Time) -> u64 {
        let mut steps = 0;
        while let Some(Reverse(head)) = self.sched.heap.peek() {
            if head.time > deadline {
                break;
            }
            let (_, ev) = self.sched.pop().expect("peeked entry vanished");
            self.model.handle(&mut self.sched, ev);
            steps += 1;
        }
        // Advance the clock to the deadline so rate computations over
        // the window [0, deadline] are well defined even if the last
        // event fired earlier.
        if self.sched.now < deadline {
            self.sched.now = deadline;
        }
        steps
    }

    /// Run until the event queue is empty. Returns events dispatched.
    pub fn run_to_completion(&mut self) -> u64 {
        let mut steps = 0;
        while self.step() {
            steps += 1;
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        seen: Vec<(Time, u32)>,
        chain: bool,
    }

    impl Model for Recorder {
        type Event = u32;
        fn handle(&mut self, sched: &mut Scheduler<u32>, ev: u32) {
            self.seen.push((sched.now(), ev));
            if self.chain && ev < 3 {
                sched.after(10, ev + 1);
            }
        }
    }

    fn recorder(chain: bool) -> Simulation<Recorder> {
        Simulation::new(Recorder {
            seen: vec![],
            chain,
        })
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = recorder(false);
        sim.schedule(30, 3);
        sim.schedule(10, 1);
        sim.schedule(20, 2);
        sim.run_to_completion();
        assert_eq!(sim.model.seen, vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn ties_fire_in_scheduling_order() {
        let mut sim = recorder(false);
        sim.schedule(5, 1);
        sim.schedule(5, 2);
        sim.schedule(5, 3);
        sim.run_to_completion();
        assert_eq!(sim.model.seen, vec![(5, 1), (5, 2), (5, 3)]);
    }

    #[test]
    fn handlers_can_chain_events() {
        let mut sim = recorder(true);
        sim.schedule(0, 0);
        sim.run_to_completion();
        assert_eq!(sim.model.seen, vec![(0, 0), (10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn run_until_respects_deadline_inclusive() {
        let mut sim = recorder(false);
        sim.schedule(10, 1);
        sim.schedule(20, 2);
        sim.schedule(21, 3);
        let n = sim.run_until(20);
        assert_eq!(n, 2);
        assert_eq!(sim.model.seen, vec![(10, 1), (20, 2)]);
        assert_eq!(sim.now(), 20);
        // Remaining event still fires afterwards.
        sim.run_to_completion();
        assert_eq!(sim.model.seen.last(), Some(&(21, 3)));
    }

    #[test]
    fn run_until_advances_clock_to_deadline() {
        let mut sim = recorder(false);
        sim.schedule(10, 1);
        sim.run_until(1000);
        assert_eq!(sim.now(), 1000);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sched: Scheduler<u32> = Scheduler::new();
        sched.at(10, 1);
        sched.pop();
        sched.at(5, 2);
    }

    #[test]
    fn immediately_runs_after_current_instant_events() {
        struct M {
            order: Vec<u32>,
        }
        impl Model for M {
            type Event = u32;
            fn handle(&mut self, sched: &mut Scheduler<u32>, ev: u32) {
                if ev == 1 {
                    sched.immediately(9);
                }
                self.order.push(ev);
            }
        }
        let mut sim = Simulation::new(M { order: vec![] });
        sim.schedule(0, 1);
        sim.schedule(0, 2);
        sim.run_to_completion();
        assert_eq!(sim.model.order, vec![1, 2, 9]);
    }
}
