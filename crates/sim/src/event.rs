//! Deterministic event queue and simulation driver.
//!
//! Events are ordered by `(time, sequence)`: two events scheduled for
//! the same instant fire in scheduling order, which makes every run
//! bit-for-bit reproducible regardless of queue internals.
//!
//! Internally the queue is three structures with one total order:
//!
//! * a **binary heap** holding arbitrary events;
//! * a one-entry **next slot** caching an event known to precede
//!   everything in the heap — the common "schedule the immediate next
//!   arrival" pattern then never touches the heap at all;
//! * **FIFO lanes** ([`Scheduler::at_fifo`]) for streams whose
//!   completion times are nondecreasing (bandwidth/serialization
//!   servers): appending to a sorted deque is O(1) where a heap push
//!   plus pop costs two `O(log n)` sifts over a cache-hostile array.
//!
//! Every pop takes the `(time, seq)` minimum across all three, so the
//! dispatch order is exactly the one a single global heap would give.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::Time;
use crate::Model;

struct Entry<E> {
    time: Time,
    seq: u64,
    ev: E,
}

impl<E> Entry<E> {
    #[inline]
    fn key(&self) -> (Time, u64) {
        (self.time, self.seq)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The event queue plus the virtual clock, handed to
/// [`Model::handle`] so handlers can schedule follow-up events.
pub struct Scheduler<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    /// When occupied, an event whose key precedes every heap entry
    /// (lane heads may still precede it; `pop` checks).
    next: Option<Entry<E>>,
    /// FIFO lanes: each deque is sorted by construction (nondecreasing
    /// times, increasing seq).
    lanes: Vec<VecDeque<Entry<E>>>,
    seq: u64,
    now: Time,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// An empty scheduler at time zero.
    pub fn new() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            next: None,
            lanes: Vec::new(),
            seq: 0,
            now: 0,
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.heap.len()
            + usize::from(self.next.is_some())
            + self.lanes.iter().map(VecDeque::len).sum::<usize>()
    }

    /// Schedule `ev` at absolute time `t`.
    ///
    /// # Panics
    /// Panics if `t` is in the past: a model scheduling backwards in
    /// time is always a bug and would silently corrupt causality.
    pub fn at(&mut self, t: Time, ev: E) {
        assert!(
            t >= self.now,
            "event scheduled in the past: t={} now={}",
            t,
            self.now
        );
        self.seq += 1;
        let e = Entry {
            time: t,
            seq: self.seq,
            ev,
        };
        // Keep the slot holding a key that precedes the whole heap:
        // a smaller event displaces the occupant into the heap; with
        // the slot empty, only an event preceding the heap root may
        // claim it.
        match &self.next {
            Some(n) if e.key() < n.key() => {
                let old = self.next.replace(e).expect("occupied");
                self.heap.push(Reverse(old));
            }
            Some(_) => self.heap.push(Reverse(e)),
            None => {
                if self.heap.peek().is_none_or(|Reverse(h)| e.key() < h.key()) {
                    self.next = Some(e);
                } else {
                    self.heap.push(Reverse(e));
                }
            }
        }
    }

    /// Schedule `ev` at absolute time `t` on FIFO lane `lane`,
    /// equivalent to [`Scheduler::at`] in every observable way.
    ///
    /// Lanes suit event streams whose times are nondecreasing — DMA
    /// or wire completions out of a bandwidth server. Lanes are
    /// created on first use.
    ///
    /// # Panics
    /// Panics if `t` is in the past, or precedes the last event
    /// already queued on this lane (the lane contract).
    pub fn at_fifo(&mut self, lane: usize, t: Time, ev: E) {
        assert!(
            t >= self.now,
            "event scheduled in the past: t={} now={}",
            t,
            self.now
        );
        if lane >= self.lanes.len() {
            self.lanes.resize_with(lane + 1, VecDeque::new);
        }
        let q = &mut self.lanes[lane];
        if let Some(back) = q.back() {
            assert!(
                back.time <= t,
                "fifo lane {lane} not monotone: {} then {t}",
                back.time
            );
        }
        self.seq += 1;
        q.push_back(Entry {
            time: t,
            seq: self.seq,
            ev,
        });
    }

    /// Schedule `ev` after a delay of `d` nanoseconds.
    pub fn after(&mut self, d: Time, ev: E) {
        self.at(self.now + d, ev);
    }

    /// Schedule `ev` to run at the current instant, after all events
    /// already queued for this instant.
    pub fn immediately(&mut self, ev: E) {
        self.at(self.now, ev);
    }

    /// Key of the earliest pending event, across all three structures.
    /// Crate-visible so the shard merge ([`crate::shard`]) can order
    /// heads across shards by `(time, shard, seq)`.
    pub(crate) fn peek_key(&self) -> Option<(Time, u64)> {
        let mut best = match &self.next {
            Some(n) => Some(n.key()),
            None => self.heap.peek().map(|Reverse(h)| h.key()),
        };
        for q in &self.lanes {
            if let Some(h) = q.front() {
                let k = h.key();
                if best.is_none_or(|b| k < b) {
                    best = Some(k);
                }
            }
        }
        best
    }

    /// Time of the earliest pending event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<Time> {
        self.peek_key().map(|(t, _)| t)
    }

    fn pop(&mut self) -> Option<(Time, E)> {
        self.pop_at_or_before(Time::MAX)
    }

    /// Pop the earliest event with `time <= deadline` — the shard
    /// worker's window-bounded drain (see [`crate::shard`]).
    pub(crate) fn pop_due(&mut self, deadline: Time) -> Option<(Time, E)> {
        self.pop_at_or_before(deadline)
    }

    /// Advance the clock to `t` without dispatching anything (no-op if
    /// the clock is already past `t`). Shard workers call this at every
    /// window barrier so cross-shard deliveries for the next window are
    /// never "in the past" of an idle shard.
    pub(crate) fn advance_clock(&mut self, t: Time) {
        if self.now < t {
            self.now = t;
        }
    }

    /// Pop the earliest event unless its time exceeds `deadline`.
    /// One scan decides both "is there a due event" and "which one" —
    /// the driver loop would otherwise pay the three-structure scan
    /// twice per dispatch (peek, then pop).
    fn pop_at_or_before(&mut self, deadline: Time) -> Option<(Time, E)> {
        /// Where the minimum lives.
        enum Src {
            Slot,
            Heap,
            Lane(usize),
        }
        let mut best = match &self.next {
            Some(n) => Some((n.key(), Src::Slot)),
            None => self.heap.peek().map(|Reverse(h)| (h.key(), Src::Heap)),
        };
        for (i, q) in self.lanes.iter().enumerate() {
            if let Some(h) = q.front() {
                let k = h.key();
                if best.as_ref().is_none_or(|(b, _)| k < *b) {
                    best = Some((k, Src::Lane(i)));
                }
            }
        }
        let (k, src) = best?;
        if k.0 > deadline {
            return None;
        }
        let e = match src {
            Src::Slot => self.next.take().expect("slot occupied"),
            Src::Heap => self.heap.pop().expect("heap non-empty").0,
            Src::Lane(i) => self.lanes[i].pop_front().expect("lane non-empty"),
        };
        debug_assert!(e.time >= self.now);
        self.now = e.time;
        Some((e.time, e.ev))
    }
}

/// Drives a [`Model`] by repeatedly popping the earliest event and
/// dispatching it.
pub struct Simulation<M: Model> {
    /// The model under simulation; public so experiments can inspect
    /// state and statistics after (or during) a run.
    pub model: M,
    sched: Scheduler<M::Event>,
}

impl<M: Model> Simulation<M> {
    /// Wrap `model` with an empty event queue at time zero.
    pub fn new(model: M) -> Self {
        Simulation {
            model,
            sched: Scheduler::new(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.sched.now()
    }

    /// Schedule an initial (or external) event.
    pub fn schedule(&mut self, t: Time, ev: M::Event) {
        self.sched.at(t, ev);
    }

    /// Schedule an event after a delay from the current time.
    pub fn schedule_after(&mut self, d: Time, ev: M::Event) {
        self.sched.after(d, ev);
    }

    /// Dispatch a single event. Returns `false` when the queue is dry.
    pub fn step(&mut self) -> bool {
        match self.sched.pop() {
            Some((_, ev)) => {
                self.model.handle(&mut self.sched, ev);
                true
            }
            None => false,
        }
    }

    /// Run until the queue is empty or virtual time would exceed
    /// `deadline`. Events at exactly `deadline` still run. Returns the
    /// number of events dispatched.
    pub fn run_until(&mut self, deadline: Time) -> u64 {
        let mut steps = 0;
        while let Some((_, ev)) = self.sched.pop_at_or_before(deadline) {
            self.model.handle(&mut self.sched, ev);
            steps += 1;
        }
        // Advance the clock to the deadline so rate computations over
        // the window [0, deadline] are well defined even if the last
        // event fired earlier.
        if self.sched.now < deadline {
            self.sched.now = deadline;
        }
        steps
    }

    /// Run until the event queue is empty. Returns events dispatched.
    pub fn run_to_completion(&mut self) -> u64 {
        let mut steps = 0;
        while self.step() {
            steps += 1;
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        seen: Vec<(Time, u32)>,
        chain: bool,
    }

    impl Model for Recorder {
        type Event = u32;
        fn handle(&mut self, sched: &mut Scheduler<u32>, ev: u32) {
            self.seen.push((sched.now(), ev));
            if self.chain && ev < 3 {
                sched.after(10, ev + 1);
            }
        }
    }

    fn recorder(chain: bool) -> Simulation<Recorder> {
        Simulation::new(Recorder {
            seen: vec![],
            chain,
        })
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = recorder(false);
        sim.schedule(30, 3);
        sim.schedule(10, 1);
        sim.schedule(20, 2);
        sim.run_to_completion();
        assert_eq!(sim.model.seen, vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn ties_fire_in_scheduling_order() {
        let mut sim = recorder(false);
        sim.schedule(5, 1);
        sim.schedule(5, 2);
        sim.schedule(5, 3);
        sim.run_to_completion();
        assert_eq!(sim.model.seen, vec![(5, 1), (5, 2), (5, 3)]);
    }

    #[test]
    fn handlers_can_chain_events() {
        let mut sim = recorder(true);
        sim.schedule(0, 0);
        sim.run_to_completion();
        assert_eq!(sim.model.seen, vec![(0, 0), (10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn run_until_respects_deadline_inclusive() {
        let mut sim = recorder(false);
        sim.schedule(10, 1);
        sim.schedule(20, 2);
        sim.schedule(21, 3);
        let n = sim.run_until(20);
        assert_eq!(n, 2);
        assert_eq!(sim.model.seen, vec![(10, 1), (20, 2)]);
        assert_eq!(sim.now(), 20);
        // Remaining event still fires afterwards.
        sim.run_to_completion();
        assert_eq!(sim.model.seen.last(), Some(&(21, 3)));
    }

    #[test]
    fn run_until_advances_clock_to_deadline() {
        let mut sim = recorder(false);
        sim.schedule(10, 1);
        sim.run_until(1000);
        assert_eq!(sim.now(), 1000);
    }

    #[test]
    fn fifo_lanes_interleave_with_heap_in_global_order() {
        let mut sim = recorder(false);
        // Lane 0: monotone stream; lane 1: another; heap: odd times.
        sim.sched.at_fifo(0, 10, 1);
        sim.sched.at_fifo(0, 30, 3);
        sim.sched.at_fifo(1, 20, 2);
        sim.schedule(15, 10);
        sim.schedule(25, 20);
        sim.schedule(5, 0);
        sim.run_to_completion();
        assert_eq!(
            sim.model.seen,
            vec![(5, 0), (10, 1), (15, 10), (20, 2), (25, 20), (30, 3)]
        );
    }

    #[test]
    fn fifo_lane_ties_fire_in_scheduling_order() {
        // Same instant across lane, heap and slot: scheduling order
        // (= seq order) decides, exactly as a single heap would.
        let mut sim = recorder(false);
        sim.schedule(5, 1); // slot
        sim.sched.at_fifo(0, 5, 2);
        sim.schedule(5, 3); // heap
        sim.sched.at_fifo(0, 5, 4);
        sim.run_to_completion();
        assert_eq!(sim.model.seen, vec![(5, 1), (5, 2), (5, 3), (5, 4)]);
    }

    #[test]
    #[should_panic(expected = "not monotone")]
    fn fifo_lane_rejects_time_regression() {
        let mut sched: Scheduler<u32> = Scheduler::new();
        sched.at_fifo(0, 10, 1);
        sched.at_fifo(0, 9, 2);
    }

    #[test]
    fn next_slot_displacement_keeps_order() {
        // Exercise the slot: each new minimum displaces the previous
        // occupant back into the heap.
        let mut sim = recorder(false);
        for &(t, v) in &[(50u64, 5u32), (40, 4), (30, 3), (20, 2), (10, 1)] {
            sim.schedule(t, v);
        }
        sim.run_to_completion();
        assert_eq!(
            sim.model.seen,
            vec![(10, 1), (20, 2), (30, 3), (40, 4), (50, 5)]
        );
    }

    #[test]
    fn pending_counts_all_structures() {
        let mut sched: Scheduler<u32> = Scheduler::new();
        sched.at(10, 1); // slot
        sched.at(20, 2); // heap
        sched.at_fifo(0, 15, 3); // lane
        assert_eq!(sched.pending(), 3);
        sched.pop();
        assert_eq!(sched.pending(), 2);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sched: Scheduler<u32> = Scheduler::new();
        sched.at(10, 1);
        sched.pop();
        sched.at(5, 2);
    }

    #[test]
    fn immediately_runs_after_current_instant_events() {
        struct M {
            order: Vec<u32>,
        }
        impl Model for M {
            type Event = u32;
            fn handle(&mut self, sched: &mut Scheduler<u32>, ev: u32) {
                if ev == 1 {
                    sched.immediately(9);
                }
                self.order.push(ev);
            }
        }
        let mut sim = Simulation::new(M { order: vec![] });
        sim.schedule(0, 1);
        sim.schedule(0, 2);
        sim.run_to_completion();
        assert_eq!(sim.model.order, vec![1, 2, 9]);
    }
}
