//! Fault injection (the smoltcp examples' `--drop-chance` /
//! `--corrupt-chance` idiom): a stage between the generator and the
//! router that randomly drops or corrupts frames, exercising the
//! router's checksum verification and slow-path classification.

use ps_rng::Rng;

use ps_io::Packet;

/// Ethernet header length — corruption kinds aimed at L3 leave the
/// Ethernet header intact so the damage lands where parsers and
/// checksums actually look.
const ETH_LEN: usize = 14;

/// The ways a frame can be damaged on the wire. Each kind targets a
/// different defensive layer in the router: parsers (truncation,
/// zero length), checksum/ICV verification (bad checksum), and both
/// (a bit flip lands anywhere).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptKind {
    /// One random bit anywhere in the frame is inverted.
    BitFlip,
    /// The frame is cut short at a random interior offset.
    Truncate,
    /// The frame arrives with zero octets (a runt the MAC passed up).
    ZeroLength,
    /// A bit inside the L3 region flips, guaranteeing any checksum or
    /// authentication tag over that region no longer verifies.
    BadChecksum,
}

impl CorruptKind {
    /// All kinds, in the order [`CorruptKind::pick`] indexes them.
    pub const ALL: [CorruptKind; 4] = [
        CorruptKind::BitFlip,
        CorruptKind::Truncate,
        CorruptKind::ZeroLength,
        CorruptKind::BadChecksum,
    ];

    /// Draw a kind uniformly from `rng`.
    pub fn pick(rng: &mut Rng) -> CorruptKind {
        Self::ALL[rng.gen_range(0..Self::ALL.len())]
    }

    /// Stable lowercase label for tables and traces.
    pub fn name(self) -> &'static str {
        match self {
            CorruptKind::BitFlip => "bit_flip",
            CorruptKind::Truncate => "truncate",
            CorruptKind::ZeroLength => "zero_len",
            CorruptKind::BadChecksum => "bad_csum",
        }
    }
}

/// Damage `data` in place according to `kind`, drawing offsets from
/// `rng`. Pure apart from the RNG: the same stream and input produce
/// the same corruption, which is what keeps fault plans replayable.
pub fn corrupt_in_place(rng: &mut Rng, kind: CorruptKind, data: &mut Vec<u8>) {
    match kind {
        CorruptKind::BitFlip => {
            if !data.is_empty() {
                let idx = rng.gen_range(0..data.len());
                let bit = 1u8 << rng.gen_range(0u32..8);
                data[idx] ^= bit;
            }
        }
        CorruptKind::Truncate => {
            if data.len() > 1 {
                let keep = rng.gen_range(1..data.len());
                data.truncate(keep);
            }
        }
        CorruptKind::ZeroLength => data.clear(),
        CorruptKind::BadChecksum => {
            if data.len() > ETH_LEN {
                // Flip one bit within the first 20 octets after the
                // Ethernet header — inside the IPv4 header checksum /
                // IPv6 pseudo-header / ESP authenticated region.
                let span = (data.len() - ETH_LEN).min(20);
                let idx = ETH_LEN + rng.gen_range(0..span);
                let bit = 1u8 << rng.gen_range(0u32..8);
                data[idx] ^= bit;
            } else if !data.is_empty() {
                let idx = rng.gen_range(0..data.len());
                data[idx] ^= 1;
            }
        }
    }
}

/// Fault-injection configuration (probabilities in [0, 1]).
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Probability a packet is silently dropped.
    pub drop_chance: f64,
    /// Probability one random octet is flipped.
    pub corrupt_chance: f64,
    /// Drop frames longer than this (None = no limit).
    pub size_limit: Option<usize>,
}

impl FaultConfig {
    /// No faults.
    pub fn none() -> FaultConfig {
        FaultConfig {
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            size_limit: None,
        }
    }
}

/// The injector: deterministic per seed.
pub struct FaultInjector {
    cfg: FaultConfig,
    rng: Rng,
    /// Packets dropped by the injector.
    pub dropped: u64,
    /// Packets corrupted by the injector.
    pub corrupted: u64,
}

impl FaultInjector {
    /// An injector with the given config and seed.
    pub fn new(cfg: FaultConfig, seed: u64) -> FaultInjector {
        assert!((0.0..=1.0).contains(&cfg.drop_chance));
        assert!((0.0..=1.0).contains(&cfg.corrupt_chance));
        FaultInjector {
            cfg,
            rng: Rng::seed_from_u64(seed),
            dropped: 0,
            corrupted: 0,
        }
    }

    /// Apply faults; `None` means the packet was dropped in flight.
    pub fn apply(&mut self, mut p: Packet) -> Option<Packet> {
        if let Some(limit) = self.cfg.size_limit {
            if p.len() > limit {
                self.dropped += 1;
                return None;
            }
        }
        if self.cfg.drop_chance > 0.0 && self.rng.gen_bool(self.cfg.drop_chance) {
            self.dropped += 1;
            return None;
        }
        if self.cfg.corrupt_chance > 0.0 && self.rng.gen_bool(self.cfg.corrupt_chance) {
            let idx = self.rng.gen_range(0..p.data.len());
            let bit = 1u8 << self.rng.gen_range(0u32..8);
            p.data[idx] ^= bit;
            self.corrupted += 1;
        }
        Some(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_nic::port::PortId;

    fn packet(len: usize) -> Packet {
        Packet::new(0, vec![0xAB; len], PortId(0), 0)
    }

    #[test]
    fn no_faults_passes_everything_unchanged() {
        let mut inj = FaultInjector::new(FaultConfig::none(), 1);
        for _ in 0..100 {
            let p = inj.apply(packet(64)).expect("no drops configured");
            assert_eq!(p.data, vec![0xAB; 64]);
        }
        assert_eq!(inj.dropped + inj.corrupted, 0);
    }

    #[test]
    fn drop_chance_is_roughly_honored() {
        let mut inj = FaultInjector::new(
            FaultConfig {
                drop_chance: 0.15,
                corrupt_chance: 0.0,
                size_limit: None,
            },
            2,
        );
        let survived = (0..10_000)
            .filter(|_| inj.apply(packet(64)).is_some())
            .count();
        assert!((8_200..8_800).contains(&survived), "survived {survived}");
        assert_eq!(inj.dropped, 10_000 - survived as u64);
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let mut inj = FaultInjector::new(
            FaultConfig {
                drop_chance: 0.0,
                corrupt_chance: 1.0,
                size_limit: None,
            },
            3,
        );
        let p = inj.apply(packet(64)).expect("not dropped");
        let diff: u32 = p.data.iter().map(|b| (b ^ 0xAB).count_ones()).sum();
        assert_eq!(diff, 1, "exactly one flipped bit");
        assert_eq!(inj.corrupted, 1);
    }

    #[test]
    fn size_limit_drops_jumbo_frames() {
        let mut inj = FaultInjector::new(
            FaultConfig {
                drop_chance: 0.0,
                corrupt_chance: 0.0,
                size_limit: Some(128),
            },
            4,
        );
        assert!(inj.apply(packet(64)).is_some());
        assert!(inj.apply(packet(256)).is_none());
        assert_eq!(inj.dropped, 1);
    }

    #[test]
    fn corrupt_kinds_damage_as_documented() {
        let base = vec![0xAB; 64];
        let mut rng = Rng::seed_from_u64(11);
        for _ in 0..100 {
            let mut d = base.clone();
            corrupt_in_place(&mut rng, CorruptKind::BitFlip, &mut d);
            let diff: u32 = d.iter().map(|b| (b ^ 0xAB).count_ones()).sum();
            assert_eq!(diff, 1);

            let mut d = base.clone();
            corrupt_in_place(&mut rng, CorruptKind::Truncate, &mut d);
            assert!(!d.is_empty() && d.len() < base.len(), "len {}", d.len());

            let mut d = base.clone();
            corrupt_in_place(&mut rng, CorruptKind::ZeroLength, &mut d);
            assert!(d.is_empty());

            let mut d = base.clone();
            corrupt_in_place(&mut rng, CorruptKind::BadChecksum, &mut d);
            assert_eq!(d.len(), base.len());
            let first_diff = d.iter().position(|&b| b != 0xAB).expect("one flip");
            assert!((14..34).contains(&first_diff), "flip at {first_diff}");
        }
    }

    #[test]
    fn corrupt_handles_degenerate_frames() {
        let mut rng = Rng::seed_from_u64(12);
        for kind in CorruptKind::ALL {
            let mut empty: Vec<u8> = Vec::new();
            corrupt_in_place(&mut rng, kind, &mut empty);
            let mut one = vec![0u8; 1];
            corrupt_in_place(&mut rng, kind, &mut one);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut inj = FaultInjector::new(
                FaultConfig {
                    drop_chance: 0.3,
                    corrupt_chance: 0.3,
                    size_limit: None,
                },
                seed,
            );
            (0..100)
                .map(|_| inj.apply(packet(64)).map(|p| p.data))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
