//! Fault injection (the smoltcp examples' `--drop-chance` /
//! `--corrupt-chance` idiom): a stage between the generator and the
//! router that randomly drops or corrupts frames, exercising the
//! router's checksum verification and slow-path classification.

use ps_rng::Rng;

use ps_io::Packet;

/// Fault-injection configuration (probabilities in [0, 1]).
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Probability a packet is silently dropped.
    pub drop_chance: f64,
    /// Probability one random octet is flipped.
    pub corrupt_chance: f64,
    /// Drop frames longer than this (None = no limit).
    pub size_limit: Option<usize>,
}

impl FaultConfig {
    /// No faults.
    pub fn none() -> FaultConfig {
        FaultConfig {
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            size_limit: None,
        }
    }
}

/// The injector: deterministic per seed.
pub struct FaultInjector {
    cfg: FaultConfig,
    rng: Rng,
    /// Packets dropped by the injector.
    pub dropped: u64,
    /// Packets corrupted by the injector.
    pub corrupted: u64,
}

impl FaultInjector {
    /// An injector with the given config and seed.
    pub fn new(cfg: FaultConfig, seed: u64) -> FaultInjector {
        assert!((0.0..=1.0).contains(&cfg.drop_chance));
        assert!((0.0..=1.0).contains(&cfg.corrupt_chance));
        FaultInjector {
            cfg,
            rng: Rng::seed_from_u64(seed),
            dropped: 0,
            corrupted: 0,
        }
    }

    /// Apply faults; `None` means the packet was dropped in flight.
    pub fn apply(&mut self, mut p: Packet) -> Option<Packet> {
        if let Some(limit) = self.cfg.size_limit {
            if p.len() > limit {
                self.dropped += 1;
                return None;
            }
        }
        if self.cfg.drop_chance > 0.0 && self.rng.gen_bool(self.cfg.drop_chance) {
            self.dropped += 1;
            return None;
        }
        if self.cfg.corrupt_chance > 0.0 && self.rng.gen_bool(self.cfg.corrupt_chance) {
            let idx = self.rng.gen_range(0..p.data.len());
            let bit = 1u8 << self.rng.gen_range(0u32..8);
            p.data[idx] ^= bit;
            self.corrupted += 1;
        }
        Some(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_nic::port::PortId;

    fn packet(len: usize) -> Packet {
        Packet::new(0, vec![0xAB; len], PortId(0), 0)
    }

    #[test]
    fn no_faults_passes_everything_unchanged() {
        let mut inj = FaultInjector::new(FaultConfig::none(), 1);
        for _ in 0..100 {
            let p = inj.apply(packet(64)).expect("no drops configured");
            assert_eq!(p.data, vec![0xAB; 64]);
        }
        assert_eq!(inj.dropped + inj.corrupted, 0);
    }

    #[test]
    fn drop_chance_is_roughly_honored() {
        let mut inj = FaultInjector::new(
            FaultConfig {
                drop_chance: 0.15,
                corrupt_chance: 0.0,
                size_limit: None,
            },
            2,
        );
        let survived = (0..10_000)
            .filter(|_| inj.apply(packet(64)).is_some())
            .count();
        assert!((8_200..8_800).contains(&survived), "survived {survived}");
        assert_eq!(inj.dropped, 10_000 - survived as u64);
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let mut inj = FaultInjector::new(
            FaultConfig {
                drop_chance: 0.0,
                corrupt_chance: 1.0,
                size_limit: None,
            },
            3,
        );
        let p = inj.apply(packet(64)).expect("not dropped");
        let diff: u32 = p.data.iter().map(|b| (b ^ 0xAB).count_ones()).sum();
        assert_eq!(diff, 1, "exactly one flipped bit");
        assert_eq!(inj.corrupted, 1);
    }

    #[test]
    fn size_limit_drops_jumbo_frames() {
        let mut inj = FaultInjector::new(
            FaultConfig {
                drop_chance: 0.0,
                corrupt_chance: 0.0,
                size_limit: Some(128),
            },
            4,
        );
        assert!(inj.apply(packet(64)).is_some());
        assert!(inj.apply(packet(256)).is_none());
        assert_eq!(inj.dropped, 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut inj = FaultInjector::new(
                FaultConfig {
                    drop_chance: 0.3,
                    corrupt_chance: 0.3,
                    size_limit: None,
                },
                seed,
            );
            (0..100)
                .map(|_| inj.apply(packet(64)).map(|p| p.data))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
