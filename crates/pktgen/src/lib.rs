//! # ps-pktgen — the traffic generator and sink (§6.1)
//!
//! Plays the role of the paper's packet generator: an open-loop
//! source producing fixed-size frames with uniformly random
//! destination IP addresses and UDP ports ("so that IP forwarding and
//! OpenFlow look up a different entry for every packet"), attached to
//! all eight 10 GbE ports, plus a sink that accounts throughput, loss
//! and round-trip latency from embedded timestamps.

pub mod fault;

use std::net::{Ipv4Addr, Ipv6Addr};

use ps_rng::Rng;

use ps_io::Packet;
use ps_net::ethernet::MacAddr;
use ps_net::{checksum, PacketBuilder};
use ps_nic::port::PortId;
use ps_sim::stats::{Histogram, PacketCounter, ETHERNET_OVERHEAD_BYTES};
use ps_sim::time::Time;

/// What kind of frames to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficKind {
    /// UDP over IPv4 with random destination address + ports.
    Ipv4Udp,
    /// UDP over IPv6 with random destination address + ports.
    Ipv6Udp,
}

/// Frame-length mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameMix {
    /// Every frame is `frame_len` bytes — the paper's fixed-size runs.
    Fixed,
    /// The standard "Simple IMIX" blend: 64, 594 and 1518 B frames in
    /// a 7:4:1 ratio over a repeating 12-frame cycle (`frame_len` is
    /// ignored). The length of each frame is a pure function of its
    /// sequence number, so the skip path stays randomness-free.
    Imix,
}

/// How keyed traffic (`flows = Some(k)`) spreads packets over the
/// flow population. Ignored when `flows` is `None` (every packet a
/// fresh random flow).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowModel {
    /// Round-robin: packet `seq` belongs to flow `seq % k`, so every
    /// flow is the same size (the OpenFlow exact-table workload).
    Uniform,
    /// Heavy-tailed flow sizes: packet `seq` maps to flow
    /// `⌊k·u^exponent⌋` for a per-packet uniform `u` derived purely
    /// from `(seed, seq)` — a few elephant flows near id 0 carry most
    /// packets while a long tail of mice carries the rest. Larger
    /// exponents mean a heavier head; 1 degenerates to uniform flow
    /// *popularity* (not round-robin). Purely functional: the skip
    /// path draws nothing.
    HeavyTail {
        /// Concentration exponent (≥ 1; 3 is a realistic mix).
        exponent: u32,
    },
}

/// How the source responds to downstream pressure.
///
/// The paper's generator is strictly open loop; the overload
/// experiments need both: open loop to push offered load past the
/// router's ceiling, closed loop to model a source that listens to
/// NIC-ring occupancy and throttles instead of flooding a full queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoadMode {
    /// Offer the paced schedule unconditionally, even past the
    /// ceiling — queues grow and the NIC drops (the paper's mode).
    #[default]
    OpenLoop,
    /// NIC rings report occupancy upward: when a packet's target RX
    /// ring sits at or above the watermark, the source consumes the
    /// paced slot but drops the frame at the generator (ledgered as
    /// `backpressure` in [`DropLedger`]) — it never touches the wire,
    /// so queues stay bounded near the watermark.
    ClosedLoop {
        /// Ring-occupancy high watermark, in descriptors.
        high_watermark: u32,
    },
}

/// Where every non-delivered packet went, decomposed by cause. The
/// seam this fixes: generator-side drops (source throttling, arrivals
/// past the run horizon) and NIC-side drops (descriptor starvation,
/// injected faults, RX-ring tail drops) used to share counters, which
/// made `injected == handled + dropped`-style invariants impossible
/// to check per cause. Counters are disjoint; sums are exact.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DropLedger {
    /// Dropped at the source by closed-loop backpressure
    /// ([`LoadMode::ClosedLoop`]); the frame was never built.
    pub backpressure: u64,
    /// Dropped at the source because the packet could only complete
    /// past the run horizon (the far-future flood guard; only
    /// QPI-crossing traffic can land here).
    pub far_future: u64,
    /// Dropped in the NIC FIFO: descriptor starvation (the inbound
    /// DMA backlog exceeded the posted-descriptor horizon).
    pub nic_admission: u64,
    /// Dropped at the MAC by an injected NIC fault (link-flap window
    /// or starvation burst) — reconciles against the fault ledger.
    pub nic_fault: u64,
    /// Tail-dropped from a full RX descriptor ring.
    pub ring_tail: u64,
}

impl DropLedger {
    /// Drops charged to the generator side of the seam.
    pub fn gen_side(&self) -> u64 {
        self.backpressure + self.far_future
    }

    /// Drops charged to the NIC side of the seam.
    pub fn nic_side(&self) -> u64 {
        self.nic_admission + self.nic_fault + self.ring_tail
    }

    /// All drops, every cause.
    pub fn total(&self) -> u64 {
        self.gen_side() + self.nic_side()
    }

    /// Fold another ledger into this one (commutative sums, so the
    /// sharded data plane can merge per-shard ledgers exactly).
    pub fn merge(&mut self, other: &DropLedger) {
        self.backpressure += other.backpressure;
        self.far_future += other.far_future;
        self.nic_admission += other.nic_admission;
        self.nic_fault += other.nic_fault;
        self.ring_tail += other.ring_tail;
    }
}

/// The Simple IMIX frame lengths (bytes, no FCS).
pub const IMIX_LENS: [usize; 3] = [64, 594, 1518];

/// The repeating 12-frame IMIX cycle: indexes into [`IMIX_LENS`],
/// interleaved 7:4:1 so every port sees all three sizes.
const IMIX_PATTERN: [usize; 12] = [0, 0, 1, 0, 0, 1, 2, 0, 1, 0, 0, 1];

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct TrafficSpec {
    /// Frame kind.
    pub kind: TrafficKind,
    /// Frame length in bytes (without FCS), e.g. 64.
    pub frame_len: usize,
    /// Aggregate offered load in bits/s, measured with the paper's
    /// 24 B-overhead wire metric across all ports.
    pub offered_bits: u64,
    /// Ports the generator feeds, round-robin.
    pub ports: u16,
    /// RNG seed.
    pub seed: u64,
    /// Restrict traffic to a fixed flow population (`None` = every
    /// packet is a fresh random flow, the paper's default). With
    /// `Some(k)`, each flow id always carries the same addresses and
    /// ports — the workload OpenFlow exact-match tables and the
    /// stateful NFs need. Which flow a packet belongs to is decided
    /// by [`TrafficSpec::model`].
    pub flows: Option<u32>,
    /// Frame-length mix ([`FrameMix::Fixed`] reproduces the paper).
    pub mix: FrameMix,
    /// Flow-size model for keyed traffic.
    pub model: FlowModel,
    /// Open- or closed-loop response to downstream pressure
    /// ([`LoadMode::OpenLoop`] reproduces the paper).
    pub load: LoadMode,
}

impl Default for TrafficSpec {
    /// 64 B fixed-size IPv4 frames, 1 Gbps over 8 ports, seed 0,
    /// unkeyed flows — override what a workload needs.
    fn default() -> TrafficSpec {
        TrafficSpec {
            kind: TrafficKind::Ipv4Udp,
            frame_len: 64,
            offered_bits: 1_000_000_000,
            ports: 8,
            seed: 0,
            flows: None,
            mix: FrameMix::Fixed,
            model: FlowModel::Uniform,
            load: LoadMode::OpenLoop,
        }
    }
}

impl TrafficSpec {
    /// 64 B IPv4 frames at `gbps` across 8 ports — the workhorse
    /// workload of the evaluation.
    pub fn ipv4_64b(gbps: f64, seed: u64) -> TrafficSpec {
        TrafficSpec {
            offered_bits: (gbps * 1e9) as u64,
            seed,
            ..TrafficSpec::default()
        }
    }

    /// IMIX-blend IPv4 frames at `gbps` across 8 ports — the realistic
    /// frame mix the stateful-NFV evaluation offers.
    pub fn imix(gbps: f64, seed: u64) -> TrafficSpec {
        TrafficSpec {
            mix: FrameMix::Imix,
            ..TrafficSpec::ipv4_64b(gbps, seed)
        }
    }

    /// Restrict this spec to `flows` keyed flows with heavy-tailed
    /// flow sizes of the given concentration exponent.
    pub fn with_heavy_tail(mut self, flows: u32, exponent: u32) -> TrafficSpec {
        self.flows = Some(flows);
        self.model = FlowModel::HeavyTail { exponent };
        self
    }

    /// This spec with its offered load scaled by `factor` — the
    /// overload sweep's "load factor × measured ceiling" helper.
    /// Factors ≤ 0 are clamped to one bit/s (the generator needs a
    /// positive rate).
    pub fn scaled(mut self, factor: f64) -> TrafficSpec {
        self.offered_bits = ((self.offered_bits as f64 * factor).round() as u64).max(1);
        self
    }

    /// This spec in closed-loop mode with the given ring-occupancy
    /// high watermark.
    pub fn closed_loop(mut self, high_watermark: u32) -> TrafficSpec {
        self.load = LoadMode::ClosedLoop { high_watermark };
        self
    }
}

/// A prebuilt frame with checksum partial sums: generated frames
/// differ only in addresses and ports, so the generator clones this
/// template and patches the varying fields instead of re-serializing
/// headers and re-summing the constant bytes for every packet.
/// Byte-identical to the [`PacketBuilder`] output (property-tested).
struct FrameTemplate {
    buf: Vec<u8>,
    /// IPv4 header sum with src/dst/checksum zeroed.
    ip_part: u32,
    /// UDP sum (incl. pseudo header) with src/dst/ports/cksum zeroed.
    udp_part: u32,
}

/// Byte offsets of the patched fields (Ethernet header is 14 bytes).
mod field {
    pub const IP4_CKSUM: usize = 24;
    pub const IP4_SRC: usize = 26;
    pub const IP4_DST: usize = 30;
    pub const UDP4_SPORT: usize = 34;
    pub const UDP4_DPORT: usize = 36;
    pub const UDP4_CKSUM: usize = 40;
    pub const IP6_SRC: usize = 22;
    pub const IP6_DST: usize = 38;
    pub const UDP6_SPORT: usize = 54;
    pub const UDP6_DPORT: usize = 56;
}

impl FrameTemplate {
    fn new(kind: TrafficKind, frame_len: usize, src_mac: MacAddr, dst_mac: MacAddr) -> Self {
        match kind {
            TrafficKind::Ipv4Udp => {
                let zero = Ipv4Addr::from(0u32);
                let mut buf = PacketBuilder::udp_v4(src_mac, dst_mac, zero, zero, 0, 0, frame_len);
                // Zero the checksum fields: the partial sums must see
                // every varying field as zero.
                buf[field::IP4_CKSUM..field::IP4_CKSUM + 2].fill(0);
                buf[field::UDP4_CKSUM..field::UDP4_CKSUM + 2].fill(0);
                let ip_part = checksum::sum(0, &buf[14..34]);
                let udp_len = u16::from_be_bytes([buf[38], buf[39]]);
                let udp_part = checksum::sum(
                    checksum::pseudo_header_v4(
                        [0; 4],
                        [0; 4],
                        ps_net::ipv4::protocol::UDP,
                        udp_len,
                    ),
                    &buf[34..],
                );
                FrameTemplate {
                    buf,
                    ip_part,
                    udp_part,
                }
            }
            TrafficKind::Ipv6Udp => {
                let zero = Ipv6Addr::from(0u128);
                let buf = PacketBuilder::udp_v6(src_mac, dst_mac, zero, zero, 0, 0, frame_len);
                // No checksums to maintain: udp_v6 leaves UDP checksum
                // zero ("offloaded").
                FrameTemplate {
                    buf,
                    ip_part: 0,
                    udp_part: 0,
                }
            }
        }
    }

    #[cfg(test)]
    fn frame_v4(&self, src: Ipv4Addr, dst: Ipv4Addr, sport: u16, dport: u16) -> Vec<u8> {
        self.frame_v4_into(src, dst, sport, dport, Vec::new())
    }

    /// [`Self::frame_v4`] writing into a recycled buffer: the steady
    /// state reuses delivered/dropped frame buffers instead of
    /// allocating one per packet.
    fn frame_v4_into(
        &self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        sport: u16,
        dport: u16,
        mut buf: Vec<u8>,
    ) -> Vec<u8> {
        buf.clear();
        buf.extend_from_slice(&self.buf);
        let s = u32::from(src);
        let d = u32::from(dst);
        buf[field::IP4_SRC..field::IP4_SRC + 4].copy_from_slice(&s.to_be_bytes());
        buf[field::IP4_DST..field::IP4_DST + 4].copy_from_slice(&d.to_be_bytes());
        buf[field::UDP4_SPORT..field::UDP4_SPORT + 2].copy_from_slice(&sport.to_be_bytes());
        buf[field::UDP4_DPORT..field::UDP4_DPORT + 2].copy_from_slice(&dport.to_be_bytes());
        let addr_sum = (s >> 16) + (s & 0xFFFF) + (d >> 16) + (d & 0xFFFF);
        let ip_ck = checksum::finish(self.ip_part + addr_sum);
        buf[field::IP4_CKSUM..field::IP4_CKSUM + 2].copy_from_slice(&ip_ck.to_be_bytes());
        let mut udp_ck =
            checksum::finish(self.udp_part + addr_sum + u32::from(sport) + u32::from(dport));
        if udp_ck == 0 {
            udp_ck = 0xFFFF; // RFC 768: computed 0 transmits as 0xFFFF
        }
        buf[field::UDP4_CKSUM..field::UDP4_CKSUM + 2].copy_from_slice(&udp_ck.to_be_bytes());
        buf
    }

    #[cfg(test)]
    fn frame_v6(&self, src: Ipv6Addr, dst: Ipv6Addr, sport: u16, dport: u16) -> Vec<u8> {
        self.frame_v6_into(src, dst, sport, dport, Vec::new())
    }

    /// [`Self::frame_v6`] writing into a recycled buffer.
    fn frame_v6_into(
        &self,
        src: Ipv6Addr,
        dst: Ipv6Addr,
        sport: u16,
        dport: u16,
        mut buf: Vec<u8>,
    ) -> Vec<u8> {
        buf.clear();
        buf.extend_from_slice(&self.buf);
        buf[field::IP6_SRC..field::IP6_SRC + 16].copy_from_slice(&src.octets());
        buf[field::IP6_DST..field::IP6_DST + 16].copy_from_slice(&dst.octets());
        buf[field::UDP6_SPORT..field::UDP6_SPORT + 2].copy_from_slice(&sport.to_be_bytes());
        buf[field::UDP6_DPORT..field::UDP6_DPORT + 2].copy_from_slice(&dport.to_be_bytes());
        buf
    }
}

/// The varying fields of one generated frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Tuple {
    /// IPv4 source/destination addresses + UDP ports.
    V4 {
        src: Ipv4Addr,
        dst: Ipv4Addr,
        sport: u16,
        dport: u16,
    },
    /// IPv6 source/destination addresses + UDP ports.
    V6 {
        src: Ipv6Addr,
        dst: Ipv6Addr,
        sport: u16,
        dport: u16,
    },
}

/// Everything the router needs to admit or drop a packet *before* its
/// frame bytes exist: arrival time, id, input port, length and flow
/// tuple. Produced by [`Generator::next_meta`]; turned into a real
/// [`Packet`] by [`Generator::materialize_into`] only once the NIC
/// has accepted the frame — frames the NIC FIFO drops under overload
/// are never built at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameMeta {
    /// Arrival time of the last bit at the NIC.
    pub t: Time,
    /// Monotonic packet id.
    pub id: u64,
    /// Input port.
    pub port: PortId,
    /// Frame length in bytes (no FCS).
    pub len: usize,
    /// Index into the generator's template set (one per frame length
    /// class; always 0 for fixed-size traffic).
    class: u8,
    tuple: Tuple,
}

impl FrameMeta {
    /// The RSS hash the NIC computes for this frame — identical to
    /// parsing the materialized frame's 5-tuple back out of its bytes
    /// (property-tested), but without touching them.
    pub fn rss_hash(&self) -> u32 {
        use ps_nic::rss::{hash_v4, hash_v6, MSFT_KEY};
        match self.tuple {
            Tuple::V4 {
                src,
                dst,
                sport,
                dport,
            } => hash_v4(&MSFT_KEY, u32::from(src), u32::from(dst), sport, dport),
            Tuple::V6 {
                src,
                dst,
                sport,
                dport,
            } => hash_v6(&MSFT_KEY, &src.octets(), &dst.octets(), sport, dport),
        }
    }
}

/// The open-loop packet source.
///
/// Inter-arrival spacing is deterministic (`wire_bits /
/// offered_bits`), matching a hardware generator's paced output;
/// arrivals rotate over the ports.
pub struct Generator {
    spec: TrafficSpec,
    rng: Rng,
    /// Per-length-class pacing numerator (`wire_bits * 1e9`); one
    /// entry for fixed-size traffic, one per IMIX length otherwise.
    intervals: Vec<u64>,
    /// Fixed-point remainder accumulation for exact pacing.
    acc: u64,
    next_time: Time,
    seq: u64,
    /// One prebuilt template per length class, parallel to
    /// `intervals`.
    tmpls: Vec<FrameTemplate>,
}

impl Generator {
    /// A generator for `spec`.
    pub fn new(spec: TrafficSpec) -> Generator {
        assert!(spec.offered_bits > 0);
        assert!(spec.ports > 0);
        let lens: Vec<usize> = match spec.mix {
            FrameMix::Fixed => vec![spec.frame_len],
            FrameMix::Imix => IMIX_LENS.to_vec(),
        };
        // ns per packet = wire_bits * 1e9 / offered_bits, kept as a
        // rational to avoid drift.
        let intervals = lens
            .iter()
            .map(|&l| (ps_net::wire_len(l) * 8) as u64 * 1_000_000_000)
            .collect();
        let tmpls = lens
            .iter()
            .map(|&l| FrameTemplate::new(spec.kind, l, MacAddr::local(1), MacAddr::local(2)))
            .collect();
        Generator {
            spec,
            rng: Rng::seed_from_u64(spec.seed),
            intervals,
            acc: 0,
            next_time: 0,
            seq: 0,
            tmpls,
        }
    }

    /// Length class of packet `seq` — a pure function, so the skip
    /// path can pace variable-size mixes without any stream state.
    fn class_of(&self, seq: u64) -> usize {
        match self.spec.mix {
            FrameMix::Fixed => 0,
            FrameMix::Imix => IMIX_PATTERN[(seq % 12) as usize],
        }
    }

    /// The spec this generator runs.
    pub fn spec(&self) -> &TrafficSpec {
        &self.spec
    }

    /// Arrival time of the next packet (the open-loop schedule is
    /// deterministic, so this is exact).
    pub fn next_time(&self) -> Time {
        self.next_time
    }

    /// Port of the packet [`Self::next_meta`] would return, without
    /// advancing anything (arrivals rotate deterministically, so the
    /// port needs no draw). Shard replicas use this to decide whether
    /// the next packet is theirs *before* paying for its metadata.
    pub fn peek_port(&self) -> PortId {
        PortId((self.seq % u64::from(self.spec.ports)) as u16)
    }

    /// Advance past the next packet without constructing its
    /// metadata: pacing, the sequence counter and the shared RNG
    /// stream move exactly as [`Self::next_meta`] would move them
    /// (pinned by `skip_meta_keeps_the_stream_aligned`). With keyed
    /// flows (`spec.flows`) the tuple is a pure function of the flow
    /// id — no stream state exists to advance, so the draw is skipped
    /// entirely. This is the fast path a shard replica takes for
    /// every packet it does not host.
    pub fn skip_meta(&mut self) {
        self.acc += self.intervals[self.class_of(self.seq)];
        let step = self.acc / self.spec.offered_bits;
        self.acc %= self.spec.offered_bits;
        self.next_time += step;
        if self.spec.flows.is_none() {
            // The tuple draw and the stream advance are the same
            // operation; discard the value, keep the alignment.
            let _ = self.next_tuple();
        }
        self.seq += 1;
    }

    /// Produce the next packet and its arrival time.
    pub fn next_packet(&mut self) -> (Time, Packet) {
        let meta = self.next_meta();
        let p = self.materialize_into(&meta, Vec::new());
        (meta.t, p)
    }

    /// Advance the generator by one packet, returning its metadata
    /// without building the frame. All randomness is drawn here, so
    /// the stream of tuples is identical whether or not any given
    /// frame is later materialized.
    pub fn next_meta(&mut self) -> FrameMeta {
        let t = self.next_time;
        let class = self.class_of(self.seq);
        self.acc += self.intervals[class];
        let step = self.acc / self.spec.offered_bits;
        self.acc %= self.spec.offered_bits;
        self.next_time += step;

        let meta = FrameMeta {
            t,
            id: self.seq,
            port: PortId((self.seq % u64::from(self.spec.ports)) as u16),
            len: self.tmpls[class].buf.len(),
            class: class as u8,
            tuple: self.next_tuple(),
        };
        self.seq += 1;
        meta
    }

    /// Build the frame for `meta` into a recycled buffer and wrap it
    /// as a [`Packet`]. Pure function of the metadata: byte-identical
    /// to what [`Self::next_packet`] would have produced.
    pub fn materialize_into(&self, meta: &FrameMeta, buf: Vec<u8>) -> Packet {
        let tmpl = &self.tmpls[meta.class as usize];
        let data = match meta.tuple {
            Tuple::V4 {
                src,
                dst,
                sport,
                dport,
            } => tmpl.frame_v4_into(src, dst, sport, dport, buf),
            Tuple::V6 {
                src,
                dst,
                sport,
                dport,
            } => tmpl.frame_v6_into(src, dst, sport, dport, buf),
        };
        let mut p = Packet::new(meta.id, data, meta.port, meta.t);
        p.arrival = meta.t;
        p
    }

    /// All packets arriving in `[0, until)`.
    pub fn packets_until(&mut self, until: Time) -> Vec<(Time, Packet)> {
        let mut out = Vec::new();
        while self.next_time < until {
            out.push(self.next_packet());
        }
        out
    }

    /// Deterministic tuple for flow `id` (also used by benches to
    /// install matching exact-match entries).
    pub fn flow_tuple(spec: &TrafficSpec, id: u32) -> (u32, u32, u16, u16) {
        let mut r = Rng::seed_from_u64(spec.seed ^ (u64::from(id) << 20) ^ 0xF10F);
        (
            r.gen::<u32>() | 0x0100_0000,
            r.gen::<u32>(),
            r.gen_range(1024u16..65000),
            r.gen_range(1u16..65000),
        )
    }

    /// Flow id of keyed packet `seq` under the heavy-tailed model —
    /// a pure function of `(seed, seq)` so the skip path needs no
    /// stream state. Maps a per-packet uniform `u` through `k·u^e`:
    /// flow 0 is the biggest elephant, high ids are mice.
    pub fn heavy_flow_id(spec: &TrafficSpec, seq: u64, k: u32, exponent: u32) -> u32 {
        let mut z = spec
            .seed
            .wrapping_add(0x5EAF_00D5)
            .wrapping_add(seq.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let u = (ps_rng::splitmix64(&mut z) >> 11) as f64 / (1u64 << 53) as f64;
        // Integer-exponent power by repeated multiplication: exactly
        // reproducible (no libm powf in the deterministic core).
        let mut p = 1.0f64;
        for _ in 0..exponent.max(1) {
            p *= u;
        }
        ((p * f64::from(k)) as u32).min(k - 1)
    }

    /// Draw the next frame's varying fields, in the exact RNG order
    /// the original frame builder used (the tuple stream is part of
    /// the deterministic contract pinned by the fastpath guard).
    fn next_tuple(&mut self) -> Tuple {
        if let Some(k) = self.spec.flows {
            let id = match self.spec.model {
                FlowModel::Uniform => (self.seq % u64::from(k)) as u32,
                FlowModel::HeavyTail { exponent } => {
                    Self::heavy_flow_id(&self.spec, self.seq, k, exponent)
                }
            };
            let (src, dst, sport, dport) = Self::flow_tuple(&self.spec, id);
            return match self.spec.kind {
                TrafficKind::Ipv4Udp => Tuple::V4 {
                    src: Ipv4Addr::from(src),
                    dst: Ipv4Addr::from(dst),
                    sport,
                    dport,
                },
                TrafficKind::Ipv6Udp => Tuple::V6 {
                    src: Ipv6Addr::from((u128::from(src) << 64) | (0b001u128 << 125)),
                    dst: Ipv6Addr::from((u128::from(dst) << 32) | (0b001u128 << 125)),
                    sport,
                    dport,
                },
            };
        }
        let sport: u16 = self.rng.gen_range(1024u16..65000);
        let dport: u16 = self.rng.gen_range(1u16..65000);
        match self.spec.kind {
            TrafficKind::Ipv4Udp => Tuple::V4 {
                src: Ipv4Addr::from(self.rng.gen::<u32>() | 0x0100_0000),
                dst: Ipv4Addr::from(self.rng.gen::<u32>()),
                sport,
                dport,
            },
            TrafficKind::Ipv6Udp => {
                fn gua(hi: u64, lo: u64) -> Ipv6Addr {
                    Ipv6Addr::from(
                        ((u128::from(hi) << 64) | u128::from(lo)) >> 3 | (0b001u128 << 125),
                    )
                }
                Tuple::V6 {
                    src: gua(self.rng.gen(), self.rng.gen()),
                    dst: gua(self.rng.gen(), self.rng.gen()),
                    sport,
                    dport,
                }
            }
        }
    }
}

/// The measurement sink: the generator timestamps packets, the sink
/// accounts them on return.
#[derive(Debug, Default)]
pub struct Sink {
    /// Delivered packets/bytes.
    pub delivered: PacketCounter,
    /// Round-trip latency histogram (ns).
    pub latency: Histogram,
    /// Round-trip latency of priority-lane packets only (ns); empty
    /// unless a priority classifier is configured.
    pub prio_latency: Histogram,
    /// Packets that came back out of order within a flow probe.
    pub last_id_seen: Option<u64>,
    /// Count of id inversions observed (order violations across the
    /// whole stream; cross-flow reordering is legitimate).
    pub inversions: u64,
    /// When set to the generator's flow count, the sink additionally
    /// tracks *per-flow* order (flow id = packet id mod flows), the
    /// §5.3 FIFO guarantee.
    pub track_flows: Option<u32>,
    flow_last: std::collections::HashMap<u64, u64>,
    /// Per-flow order violations (must stay 0 per §5.3).
    pub flow_inversions: u64,
}

impl Sink {
    /// A fresh sink.
    pub fn new() -> Sink {
        Sink::default()
    }

    /// Account a delivered packet at `now`.
    pub fn deliver(&mut self, now: Time, p: &Packet) {
        self.delivered.add(p.len() as u64);
        self.latency.record(now.saturating_sub(p.gen_ts));
        if p.priority {
            self.prio_latency.record(now.saturating_sub(p.gen_ts));
        }
        if let Some(last) = self.last_id_seen {
            if p.id < last {
                self.inversions += 1;
            }
        }
        self.last_id_seen = Some(p.id);
        if let Some(flows) = self.track_flows {
            let flow = p.id % u64::from(flows);
            if let Some(&last) = self.flow_last.get(&flow) {
                if p.id < last {
                    self.flow_inversions += 1;
                }
            }
            self.flow_last.insert(flow, p.id);
        }
    }

    /// Delivered throughput over `window`, paper metric.
    pub fn gbps(&self, window: Time) -> f64 {
        self.delivered
            .gbps_with_overhead(window, ETHERNET_OVERHEAD_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_sim::{GIGA, MILLIS, SECONDS};

    #[test]
    fn pacing_matches_offered_load() {
        let mut g = Generator::new(TrafficSpec::ipv4_64b(10.0, 1));
        let pkts = g.packets_until(MILLIS);
        // 10 Gbps of 88-wire-byte frames = 14.2 Mpps -> 14,204 per ms.
        let n = pkts.len() as f64;
        assert!((14_100.0..14_310.0).contains(&n), "{n} packets per ms");
    }

    #[test]
    fn pacing_has_no_drift() {
        let spec = TrafficSpec {
            offered_bits: 3 * GIGA, // awkward divisor
            seed: 2,
            ..TrafficSpec::default()
        };
        let mut g = Generator::new(spec);
        let window = SECONDS / 20;
        let pkts = g.packets_until(window);
        let expect = 3e9 / (88.0 * 8.0) / 20.0;
        let err = (pkts.len() as f64 - expect).abs() / expect;
        assert!(err < 0.001, "count={} expect={expect}", pkts.len());
    }

    #[test]
    fn ports_rotate() {
        let mut g = Generator::new(TrafficSpec::ipv4_64b(10.0, 3));
        let pkts = g.packets_until(10_000);
        let mut seen = std::collections::HashSet::new();
        for (_, p) in &pkts {
            seen.insert(p.in_port);
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn frames_are_well_formed() {
        for kind in [TrafficKind::Ipv4Udp, TrafficKind::Ipv6Udp] {
            let mut g = Generator::new(TrafficSpec {
                kind,
                offered_bits: GIGA,
                ports: 4,
                seed: 7,
                ..TrafficSpec::default()
            });
            for _ in 0..50 {
                let (_, p) = g.next_packet();
                assert_eq!(p.len(), 64);
                assert_eq!(
                    ps_net::classify(&p.data, &[]),
                    ps_net::Verdict::FastPath,
                    "kind {kind:?}"
                );
            }
        }
    }

    /// The template fast path must be byte-identical to the full
    /// builder for every frame size and tuple — checksums included.
    #[test]
    fn template_frames_match_packetbuilder() {
        let (sm, dm) = (MacAddr::local(1), MacAddr::local(2));
        let mut r = ps_rng::Rng::seed_from_u64(0xF0F0);
        for &len in &[60usize, 64, 65, 101, 128, 512, 1514] {
            let t4 = FrameTemplate::new(TrafficKind::Ipv4Udp, len, sm, dm);
            let t6 = FrameTemplate::new(TrafficKind::Ipv6Udp, len, sm, dm);
            for _ in 0..50 {
                let (s4, d4) = (
                    Ipv4Addr::from(r.gen::<u32>()),
                    Ipv4Addr::from(r.gen::<u32>()),
                );
                let (sp, dp) = (r.gen::<u16>(), r.gen::<u16>());
                assert_eq!(
                    t4.frame_v4(s4, d4, sp, dp),
                    PacketBuilder::udp_v4(sm, dm, s4, d4, sp, dp, len),
                    "v4 len={len} {s4}->{d4} {sp}->{dp}"
                );
                let (s6, d6) = (
                    Ipv6Addr::from(r.gen::<u128>()),
                    Ipv6Addr::from(r.gen::<u128>()),
                );
                assert_eq!(
                    t6.frame_v6(s6, d6, sp, dp),
                    PacketBuilder::udp_v6(sm, dm, s6, d6, sp, dp, len),
                    "v6 len={len}"
                );
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = Generator::new(TrafficSpec::ipv4_64b(5.0, 11));
        let mut b = Generator::new(TrafficSpec::ipv4_64b(5.0, 11));
        for _ in 0..100 {
            let (ta, pa) = a.next_packet();
            let (tb, pb) = b.next_packet();
            assert_eq!(ta, tb);
            assert_eq!(pa.data, pb.data);
        }
    }

    #[test]
    fn limited_flow_population_repeats_tuples() {
        let mut spec = TrafficSpec::ipv4_64b(1.0, 9);
        spec.flows = Some(8);
        let mut g = Generator::new(spec);
        let frames: Vec<Vec<u8>> = (0..24).map(|_| g.next_packet().1.data).collect();
        assert_eq!(frames[0], frames[8]);
        assert_eq!(frames[3], frames[19]);
        assert_ne!(frames[0], frames[1]);
    }

    #[test]
    fn sink_accounts_latency_and_loss() {
        let mut g = Generator::new(TrafficSpec::ipv4_64b(1.0, 5));
        let mut sink = Sink::new();
        for _ in 0..1000 {
            let (t, p) = g.next_packet();
            sink.deliver(t + 100_000, &p); // 100 us RTT
        }
        assert_eq!(sink.delivered.packets, 1000);
        assert_eq!(sink.inversions, 0);
        let p50 = sink.latency.p50();
        assert!((90_000..115_000).contains(&p50), "p50={p50}");
    }

    #[test]
    fn sink_throughput_metric() {
        let mut sink = Sink::new();
        let mut g = Generator::new(TrafficSpec::ipv4_64b(10.0, 5));
        // Deliver everything generated in 1ms at the same instant.
        for (t, p) in g.packets_until(MILLIS) {
            sink.deliver(t, &p);
        }
        let gbps = sink.gbps(MILLIS);
        assert!((9.8..10.2).contains(&gbps), "{gbps} Gbps");
    }

    #[test]
    fn imix_blend_has_the_7_4_1_ratio() {
        let mut g = Generator::new(TrafficSpec::imix(10.0, 4));
        let mut counts = [0u64; 3];
        for _ in 0..1200 {
            let m = g.next_meta();
            let class = IMIX_LENS
                .iter()
                .position(|&l| l == m.len)
                .expect("imix len");
            counts[class] += 1;
        }
        assert_eq!(counts, [700, 400, 100], "7:4:1 over each 12-frame cycle");
    }

    #[test]
    fn imix_pacing_matches_offered_load() {
        // 10 Gbps of the IMIX blend: mean wire length = (7*88 + 4*618
        // + 1542) / 12 = 385.17 B -> ~3.245 Mpps -> ~3245 per ms.
        let mut g = Generator::new(TrafficSpec::imix(10.0, 1));
        let pkts = g.packets_until(MILLIS);
        let wire: u64 = pkts.iter().map(|(_, p)| p.len() as u64 + 24).sum();
        let gbps = wire as f64 * 8.0 / 1e6;
        assert!((9.8..10.2).contains(&gbps), "{gbps} Gbps offered");
        let n = pkts.len();
        assert!((3200..3290).contains(&n), "{n} packets per ms");
    }

    #[test]
    fn imix_frames_are_well_formed_and_materialize_identically() {
        let mut g = Generator::new(TrafficSpec::imix(10.0, 9));
        for _ in 0..36 {
            let meta = g.next_meta();
            let p = g.materialize_into(&meta, Vec::new());
            assert_eq!(p.len(), meta.len);
            assert!(IMIX_LENS.contains(&p.len()));
            assert_eq!(ps_net::classify(&p.data, &[]), ps_net::Verdict::FastPath);
        }
    }

    #[test]
    fn heavy_tail_concentrates_on_few_flows() {
        let k = 4096u32;
        let spec = TrafficSpec::ipv4_64b(10.0, 21).with_heavy_tail(k, 3);
        let mut g = Generator::new(spec);
        let mut per_flow = std::collections::HashMap::new();
        let n = 100_000u64;
        for _ in 0..n {
            let m = g.next_meta();
            *per_flow.entry(m.tuple).or_insert(0u64) += 1;
        }
        let mut sizes: Vec<u64> = per_flow.values().copied().collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        // With u^3 the top decile of flows carries q^(1/3) ≈ 46% of
        // packets (a uniform population would carry ~10%).
        let top = sizes.iter().take(sizes.len() / 10).sum::<u64>();
        assert!(
            top as f64 > 0.4 * n as f64,
            "top-decile share {top}/{n} not heavy-tailed"
        );
        assert!(sizes[0] > n / 100, "largest flow too small: {}", sizes[0]);
    }

    #[test]
    fn heavy_flow_id_is_a_pure_function() {
        let spec = TrafficSpec::ipv4_64b(1.0, 33).with_heavy_tail(1 << 20, 3);
        for seq in [0u64, 1, 77, 1 << 33] {
            let a = Generator::heavy_flow_id(&spec, seq, 1 << 20, 3);
            let b = Generator::heavy_flow_id(&spec, seq, 1 << 20, 3);
            assert_eq!(a, b);
            assert!(a < 1 << 20);
        }
    }

    #[test]
    fn drop_ledger_sides_are_disjoint_and_sum() {
        let mut a = DropLedger {
            backpressure: 5,
            far_future: 2,
            nic_admission: 11,
            nic_fault: 3,
            ring_tail: 1,
        };
        assert_eq!(a.gen_side(), 7);
        assert_eq!(a.nic_side(), 15);
        assert_eq!(a.total(), 22);
        let b = DropLedger {
            backpressure: 1,
            ..DropLedger::default()
        };
        a.merge(&b);
        assert_eq!(a.backpressure, 6);
        assert_eq!(a.total(), 23);
    }

    #[test]
    fn scaled_spec_scales_pacing() {
        let base = TrafficSpec::ipv4_64b(10.0, 1);
        let mut half = Generator::new(base.scaled(0.5));
        let mut full = Generator::new(base);
        let (h, f) = (half.packets_until(MILLIS), full.packets_until(MILLIS));
        let ratio = h.len() as f64 / f.len() as f64;
        assert!((0.49..0.51).contains(&ratio), "ratio={ratio}");
        // Degenerate factors stay constructible.
        let _ = Generator::new(base.scaled(0.0));
    }

    #[test]
    fn closed_loop_builder_sets_the_watermark() {
        let spec = TrafficSpec::ipv4_64b(10.0, 1).closed_loop(768);
        assert_eq!(
            spec.load,
            LoadMode::ClosedLoop {
                high_watermark: 768
            }
        );
        assert_eq!(TrafficSpec::default().load, LoadMode::OpenLoop);
    }

    #[test]
    fn skip_meta_keeps_the_stream_aligned() {
        // Skipping k packets must leave the generator in exactly the
        // state k next_meta calls would — pacing, ports, ids and the
        // tuple RNG stream — for both the shared-stream and the keyed
        // flows tuple paths.
        let mut specs = vec![];
        for flows in [None, Some(16u32)] {
            let mut spec = TrafficSpec::ipv4_64b(40.0, 7);
            spec.flows = flows;
            specs.push(spec);
        }
        // Variable-size and heavy-tailed streams must satisfy the same
        // contract: their length class and flow id are pure functions
        // of seq, so the skip path stays aligned for free.
        specs.push(TrafficSpec::imix(40.0, 7));
        specs.push(TrafficSpec::imix(40.0, 7).with_heavy_tail(64, 3));
        for spec in specs {
            let flows = spec.flows;
            let mut a = Generator::new(spec);
            let mut b = Generator::new(spec);
            let reference: Vec<FrameMeta> = (0..6).map(|_| a.next_meta()).collect();
            assert_eq!(b.peek_port(), reference[0].port);
            b.skip_meta();
            assert_eq!(b.peek_port(), reference[1].port);
            assert_eq!(b.next_time(), reference[1].t);
            b.skip_meta();
            b.skip_meta();
            for expect in &reference[3..] {
                let got = b.next_meta();
                assert_eq!(got.t, expect.t, "pacing aligned (flows={flows:?})");
                assert_eq!(got.id, expect.id, "ids aligned");
                assert_eq!(got.port, expect.port, "ports aligned");
                assert_eq!(got.tuple, expect.tuple, "tuple stream aligned");
            }
        }
    }
}
