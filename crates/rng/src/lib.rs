//! # ps-rng — the workspace's deterministic random number generator
//!
//! A zero-dependency replacement for the small slice of the `rand`
//! crate the repo used: every synthetic workload (route tables,
//! traffic, fault injection) draws from this generator, so recorded
//! experiment fingerprints are a function of (seed, algorithm) and
//! nothing else.
//!
//! The algorithm is **xoshiro256\*\*** (Blackman & Vigna) seeded by
//! running **SplitMix64** over the user seed — the same construction
//! `rand`'s reference xoshiro crates use. Changing either half
//! invalidates every recorded seed-dependent number in
//! EXPERIMENTS.md / reproduce_output.txt, so treat the algorithm as
//! frozen; if it must change, bump the [`ALGORITHM`] tag and
//! regenerate the recorded outputs.

/// Frozen identifier of the generator algorithm. Recorded experiment
/// outputs are only comparable across runs with the same tag.
pub const ALGORITHM: &str = "splitmix64+xoshiro256**";

/// One SplitMix64 step: advances `state` and returns the next output.
/// Public because the determinism tests pin its known-answer outputs.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The workspace RNG: xoshiro256** state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seed deterministically from a single `u64` via SplitMix64
    /// (mirrors `rand::SeedableRng::seed_from_u64`).
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// The next 64 uniform random bits (xoshiro256** output function).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32 uniform random bits (upper half of the output).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value of any [`Sample`] type: `rng.gen::<u32>()`.
    #[inline]
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `range` (half-open `lo..hi` or inclusive
    /// `lo..=hi`), for the integer types the workloads draw.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (must be in `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        self.gen_f64() < p
    }

    /// Fill `dest` with uniform random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&last[..rest.len()]);
        }
    }
}

/// Types [`Rng::gen`] can produce uniformly.
pub trait Sample {
    /// Draw one uniform value.
    fn sample(rng: &mut Rng) -> Self;
}

macro_rules! impl_sample {
    ($($t:ty),*) => {$(
        impl Sample for $t {
            #[inline]
            fn sample(rng: &mut Rng) -> $t {
                // Truncation keeps the high-quality low bits of the
                // 64-bit output; for u128, two draws.
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_sample!(u8, u16, u32, u64, usize);

impl Sample for u128 {
    #[inline]
    fn sample(rng: &mut Rng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Sample for bool {
    #[inline]
    fn sample(rng: &mut Rng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<const N: usize> Sample for [u8; N] {
    #[inline]
    fn sample(rng: &mut Rng) -> [u8; N] {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draw one uniform value from the range.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

/// Uniform draw from a width-`w` window starting at `lo`, `w >= 1`,
/// via Lemire's multiply-shift (bias < 2^-64, irrelevant at our draw
/// counts and far below `rand`'s own tolerance).
#[inline]
fn sample_u64_window(rng: &mut Rng, lo: u64, w: u64) -> u64 {
    debug_assert!(w >= 1);
    lo + ((u128::from(rng.next_u64()) * u128::from(w)) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let w = (self.end as u64) - (self.start as u64);
                sample_u64_window(rng, self.start as u64, w) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                if lo as u64 == 0 && hi as u64 == u64::from(<$t>::MAX as u64) {
                    return rng.gen::<$t>();
                }
                let w = (hi as u64) - (lo as u64) + 1;
                sample_u64_window(rng, lo as u64, w) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, usize);

impl SampleRange for core::ops::Range<u64> {
    type Output = u64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> u64 {
        assert!(self.start < self.end, "empty range");
        sample_u64_window(rng, self.start, self.end - self.start)
    }
}

impl SampleRange for core::ops::RangeInclusive<u64> {
    type Output = u64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        if lo == 0 && hi == u64::MAX {
            return rng.next_u64();
        }
        sample_u64_window(rng, lo, hi - lo + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_known_answers() {
        // Reference outputs of the canonical SplitMix64 from seed 0.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut s), 0x06C4_5D18_8009_454F);
        assert_eq!(splitmix64(&mut s), 0xF88B_B8A8_724C_81EC);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        let mut c = Rng::seed_from_u64(43);
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3u8..=5);
            assert!((3..=5).contains(&w));
            let p = rng.gen_range(1024u16..65000);
            assert!((1024..65000).contains(&p));
            let i = rng.gen_range(0usize..17);
            assert!(i < 17);
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut rng = Rng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn full_domain_inclusive_ranges() {
        let mut rng = Rng::seed_from_u64(11);
        // Must not overflow the window arithmetic.
        let _: u64 = rng.gen_range(0u64..=u64::MAX);
        let _: u8 = rng.gen_range(0u8..=u8::MAX);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.15)).count();
        assert!((14_000..16_000).contains(&hits), "hits {hits}");
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn fill_bytes_handles_odd_lengths() {
        for len in [0usize, 1, 7, 8, 9, 16, 33] {
            let mut a = vec![0u8; len];
            let mut b = vec![0u8; len];
            Rng::seed_from_u64(5).fill_bytes(&mut a);
            Rng::seed_from_u64(5).fill_bytes(&mut b);
            assert_eq!(a, b);
            if len >= 8 {
                assert_ne!(a, vec![0u8; len], "len {len} all zero");
            }
        }
    }

    #[test]
    fn u128_uses_two_draws() {
        let mut rng = Rng::seed_from_u64(17);
        let hi = rng.next_u64();
        let lo = rng.next_u64();
        let mut rng2 = Rng::seed_from_u64(17);
        let v: u128 = rng2.gen();
        assert_eq!(v, (u128::from(hi) << 64) | u128::from(lo));
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(19);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((0.48..0.52).contains(&mean), "mean {mean}");
    }

    /// Frozen stream snapshot: if this test ever fails, the generator
    /// changed and every recorded seed-dependent experiment number is
    /// invalid (see DESIGN.md).
    #[test]
    fn stream_snapshot_is_frozen() {
        let mut rng = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        // xoshiro256** over the SplitMix64-expanded zero seed.
        assert_eq!(first[0], 0x99EC_5F36_CB75_F2B4);
        assert_eq!(first[1], 0xBF6E_1F78_4956_452A);
        assert_eq!(first[2], 0x1A5F_849D_4933_E6E0);
        assert_eq!(first[3], 0x6AA5_94F1_262D_2D2C);
    }
}
