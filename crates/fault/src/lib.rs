//! # ps-fault — deterministic fault injection for the simulated router
//!
//! The paper's numbers assume the hardware behaves: DMA completes,
//! kernels return, rings drain. This crate is the adversary. A
//! [`FaultSpec`] names per-class injection probabilities; when any is
//! nonzero the router arms a [`FaultPlan`] — per-class RNG streams
//! split from one seed — that decides, packet by packet and batch by
//! batch, which fault fires next:
//!
//! * **NIC** (owned by `ps-nic`): RX descriptor-starvation bursts and
//!   link flaps. Both kill frames at the MAC, before any DMA.
//! * **Wire** (owned by `ps-pktgen`): frame corruption — bit flips,
//!   truncation, zero-length runts, broken checksums/ICVs
//!   ([`CorruptKind`]). Corrupted frames enter the pipeline and must
//!   come out as *counted drops*, never panics.
//! * **PCIe** (owned by `ps-sim`'s resource model via the IOH): copy
//!   stalls retried with exponential backoff, bounded by
//!   [`FaultSpec::pcie_max_retries`]; exhaustion escalates to the
//!   CPU fallback.
//! * **GPU** (owned by `ps-gpu`): kernel aborts (the whole batch
//!   re-runs functionally on the host CPU at calibrated cost) and
//!   slow-warp stragglers that stretch a launch and occupy the
//!   engines past their modeled completion.
//!
//! ## Determinism rules
//!
//! Same spec (including seed) ⇒ the same faults at the same virtual
//! times ⇒ byte-identical run statistics. Three mechanisms make this
//! hold:
//!
//! 1. Each fault class draws from its **own** RNG stream
//!    (SplitMix64-derived from the spec seed), so enabling one class
//!    never perturbs another's decisions.
//! 2. Every draw is gated on its chance being nonzero — an all-zero
//!    spec consumes **no** randomness, no virtual time and emits no
//!    trace events, so fault-free runs reproduce the pinned seed
//!    fingerprints byte for byte.
//! 3. Fault decisions depend only on (stream position, port/node),
//!    never on wall-clock state.
//!
//! Scenario specs are replayable via `PS_FAULT_SEED` (decimal or
//! `0x`-hex), mirroring `PS_CHECK_SEED`. Every fired fault emits a
//! [`ps_trace::Category::Fault`] instant, and [`FaultStats`] feeds
//! the `fault_summary` table whose identity `injected == handled +
//! dropped` the tests reconcile exactly.

#![deny(missing_docs)]

use ps_rng::{splitmix64, Rng};
use ps_sim::time::Time;
use ps_trace::Category;

pub use ps_pktgen::fault::CorruptKind;

/// Per-class fault probabilities and shape parameters. All-zero
/// chances mean "no plan": the router then skips the fault layer
/// entirely (zero RNG draws, zero trace events).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Seed for the plan's RNG streams (`PS_FAULT_SEED` replays it).
    pub seed: u64,
    /// Per-frame probability an RX descriptor-starvation burst begins.
    pub nic_starve_chance: f64,
    /// Frames killed by one starvation burst, `[lo, hi]` inclusive.
    pub nic_burst: (u32, u32),
    /// Per-frame probability the ingress link flaps down.
    pub link_flap_chance: f64,
    /// Link-down window per flap in ns, `[lo, hi]` inclusive.
    pub link_flap_ns: (u64, u64),
    /// Per-frame probability of on-the-wire corruption.
    pub corrupt_chance: f64,
    /// Per-batch probability a shading copy stalls on PCIe.
    pub pcie_stall_chance: f64,
    /// Base stall before the first retry (doubles per retry).
    pub pcie_stall_ns: u64,
    /// Retry budget; a stall that exhausts it escalates to the CPU
    /// fallback path.
    pub pcie_max_retries: u32,
    /// Per-batch probability the kernel aborts (CPU fallback).
    pub gpu_abort_chance: f64,
    /// Per-batch probability of a slow-warp straggler.
    pub gpu_straggle_chance: f64,
    /// Straggler cost: percentage added to the batch's shading time.
    pub straggle_extra_pct: u32,
}

impl FaultSpec {
    /// No faults; the router runs exactly the fault-free pipeline.
    pub fn none() -> FaultSpec {
        FaultSpec {
            seed: 0,
            nic_starve_chance: 0.0,
            nic_burst: (2, 8),
            link_flap_chance: 0.0,
            link_flap_ns: (50_000, 200_000),
            corrupt_chance: 0.0,
            pcie_stall_chance: 0.0,
            pcie_stall_ns: 5_000,
            pcie_max_retries: 3,
            gpu_abort_chance: 0.0,
            gpu_straggle_chance: 0.0,
            straggle_extra_pct: 30,
        }
    }

    /// Whether any fault class can fire.
    pub fn enabled(&self) -> bool {
        self.nic_starve_chance > 0.0
            || self.link_flap_chance > 0.0
            || self.corrupt_chance > 0.0
            || self.pcie_stall_chance > 0.0
            || self.gpu_abort_chance > 0.0
            || self.gpu_straggle_chance > 0.0
    }

    /// A named scenario at a 1% default injection rate, honoring
    /// `PS_FAULT_SEED` when set. Known names: `nic`, `corrupt`,
    /// `pcie`, `gpu`, `all`.
    pub fn scenario(name: &str) -> Option<FaultSpec> {
        let base = FaultSpec {
            seed: env_seed().unwrap_or(0xFA17),
            ..FaultSpec::none()
        };
        let rate = 0.01;
        let spec = match name {
            "nic" => FaultSpec {
                nic_starve_chance: rate,
                link_flap_chance: rate / 10.0,
                ..base
            },
            "corrupt" => FaultSpec {
                corrupt_chance: rate,
                ..base
            },
            "pcie" => FaultSpec {
                pcie_stall_chance: rate,
                ..base
            },
            "gpu" => FaultSpec {
                gpu_abort_chance: rate,
                gpu_straggle_chance: rate,
                ..base
            },
            "all" => FaultSpec {
                nic_starve_chance: rate,
                link_flap_chance: rate / 10.0,
                corrupt_chance: rate,
                pcie_stall_chance: rate,
                gpu_abort_chance: rate,
                gpu_straggle_chance: rate,
                ..base
            },
            _ => return None,
        };
        Some(spec)
    }

    /// The same scenario with every *enabled* chance rescaled so the
    /// dominant classes fire with probability `rate` (degradation
    /// sweeps sweep this). A rate of 0 disables the plan entirely.
    pub fn with_rate(mut self, rate: f64) -> FaultSpec {
        assert!((0.0..=1.0).contains(&rate), "rate {rate} out of range");
        let scale = |c: &mut f64, r: f64| {
            if *c > 0.0 {
                *c = r;
            } else {
                *c = 0.0;
            }
        };
        scale(&mut self.nic_starve_chance, rate);
        // Flaps kill tens of microseconds of traffic each; keep them
        // an order of magnitude rarer than per-frame faults so the
        // sweep's x-axis stays "per-event rate".
        scale(&mut self.link_flap_chance, rate / 10.0);
        scale(&mut self.corrupt_chance, rate);
        scale(&mut self.pcie_stall_chance, rate);
        scale(&mut self.gpu_abort_chance, rate);
        scale(&mut self.gpu_straggle_chance, rate);
        self
    }

    /// The same spec with a different seed.
    pub fn with_seed(mut self, seed: u64) -> FaultSpec {
        self.seed = seed;
        self
    }
}

/// `PS_FAULT_SEED` from the environment (decimal or `0x`-hex).
pub fn env_seed() -> Option<u64> {
    let v = std::env::var("PS_FAULT_SEED").ok()?;
    let s = v.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// A NIC-layer fault verdict for one arriving frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NicFault {
    /// The RX ring had no posted descriptor (starvation burst).
    Starve,
    /// The link flapped down; the frame (and everything arriving
    /// within the window) is lost at the MAC.
    LinkFlap {
        /// How long the link stays down, in ns.
        down_ns: Time,
    },
}

/// A shading-layer fault verdict for one gathered batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShadeFault {
    /// No fault; the batch shades normally.
    None,
    /// A PCIe copy stalled; the driver retries with exponential
    /// backoff. `stall_ns` is the total time lost; `escalate` means
    /// the retry budget ran out and the batch must take the CPU
    /// fallback.
    PcieStall {
        /// Total backoff time consumed by the retries.
        stall_ns: Time,
        /// Whether the retry budget was exhausted.
        escalate: bool,
    },
    /// The kernel aborted; the batch re-runs functionally on the CPU.
    GpuAbort,
    /// A slow warp straggles: the launch takes `extra_pct` percent
    /// longer and the engines stay occupied for the overrun.
    Straggle {
        /// Percentage added to the batch's shading interval.
        extra_pct: u32,
    },
}

/// Per-port fault accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortFaults {
    /// Frames killed at this port's MAC (starvation + flap windows).
    pub nic_drops: u64,
    /// Frames corrupted on this port's ingress wire.
    pub corrupted: u64,
}

/// Every fault counter the plan and router maintain. The ledger
/// closes: `injected() == handled() + dropped()` at any instant —
/// packets corrupted but still in the pipeline are carried by the
/// live `corrupt_in_flight` gauge.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames killed by descriptor-starvation bursts.
    pub nic_starved: u64,
    /// Link-flap events fired.
    pub flaps: u64,
    /// Frames lost inside link-down windows.
    pub flap_drops: u64,
    /// Frames corrupted on the wire.
    pub corrupt_injected: u64,
    /// Corruptions by kind, indexed like [`CorruptKind::ALL`].
    pub corrupt_by_kind: [u64; 4],
    /// Corrupted frames the pipeline dropped (counted, not panicked).
    pub corrupt_dropped: u64,
    /// Corrupted frames that still forwarded (damage the apps don't
    /// inspect, e.g. a payload bit flip).
    pub corrupt_delivered: u64,
    /// Corrupted frames currently inside the pipeline.
    pub corrupt_in_flight: u64,
    /// PCIe copy stalls injected.
    pub pcie_stalls: u64,
    /// Total retries those stalls consumed.
    pub pcie_retries: u64,
    /// Total ns of backoff charged to the fabric.
    pub pcie_stall_ns: u64,
    /// Stalls that exhausted the retry budget (→ CPU fallback).
    pub pcie_escalated: u64,
    /// GPU kernel aborts injected.
    pub gpu_aborts: u64,
    /// Slow-warp stragglers injected.
    pub gpu_stragglers: u64,
    /// Total ns stragglers added to shading intervals.
    pub straggle_extra_ns: u64,
    /// Batches re-run functionally on the host CPU.
    pub cpu_fallbacks: u64,
    /// Packets carried through the CPU fallback path.
    pub cpu_fallback_pkts: u64,
    /// Per-port ledger, indexed by port id.
    pub per_port: Vec<PortFaults>,
}

impl FaultStats {
    /// Grow the per-port ledger to cover `port`.
    fn port_mut(&mut self, port: u16) -> &mut PortFaults {
        let idx = port as usize;
        if self.per_port.len() <= idx {
            self.per_port.resize(idx + 1, PortFaults::default());
        }
        &mut self.per_port[idx]
    }

    /// Total fault events injected.
    pub fn injected(&self) -> u64 {
        self.nic_starved
            + self.flap_drops
            + self.corrupt_injected
            + self.pcie_stalls
            + self.gpu_aborts
            + self.gpu_stragglers
    }

    /// Fault events the pipeline absorbed without losing the packet:
    /// survived corruptions (delivered or still in flight), retried
    /// stalls, fallbacks and stragglers.
    pub fn handled(&self) -> u64 {
        self.corrupt_delivered
            + self.corrupt_in_flight
            + self.pcie_stalls
            + self.gpu_aborts
            + self.gpu_stragglers
    }

    /// Fault events that cost the packet (all counted drops).
    pub fn dropped(&self) -> u64 {
        self.nic_starved + self.flap_drops + self.corrupt_dropped
    }

    /// Whether the ledger closes: every injected fault is accounted
    /// as handled or dropped, with nothing lost or double-counted.
    pub fn reconciles(&self) -> bool {
        self.injected() == self.handled() + self.dropped()
    }

    /// FNV-1a digest over every counter — the "stats fingerprint"
    /// determinism tests pin per seed.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for v in [
            self.nic_starved,
            self.flaps,
            self.flap_drops,
            self.corrupt_injected,
            self.corrupt_dropped,
            self.corrupt_delivered,
            self.corrupt_in_flight,
            self.pcie_stalls,
            self.pcie_retries,
            self.pcie_stall_ns,
            self.pcie_escalated,
            self.gpu_aborts,
            self.gpu_stragglers,
            self.straggle_extra_ns,
            self.cpu_fallbacks,
            self.cpu_fallback_pkts,
        ] {
            mix(v);
        }
        for k in self.corrupt_by_kind {
            mix(k);
        }
        for p in &self.per_port {
            mix(p.nic_drops);
            mix(p.corrupted);
        }
        h
    }

    /// Human-readable `fault_summary` table.
    pub fn summary_table(&self) -> String {
        let mut s = String::new();
        s.push_str("fault_summary\n");
        s.push_str("  class          injected   handled   dropped\n");
        let mut row = |name: &str, inj: u64, han: u64, dro: u64| {
            s.push_str(&format!("  {name:<14} {inj:>8} {han:>9} {dro:>9}\n"));
        };
        row("nic_starve", self.nic_starved, 0, self.nic_starved);
        row("link_flap", self.flap_drops, 0, self.flap_drops);
        row(
            "wire_corrupt",
            self.corrupt_injected,
            self.corrupt_delivered + self.corrupt_in_flight,
            self.corrupt_dropped,
        );
        row("pcie_stall", self.pcie_stalls, self.pcie_stalls, 0);
        row("gpu_abort", self.gpu_aborts, self.gpu_aborts, 0);
        row("gpu_straggle", self.gpu_stragglers, self.gpu_stragglers, 0);
        row("total", self.injected(), self.handled(), self.dropped());
        s.push_str(&format!(
            "  corrupt kinds: bit_flip={} truncate={} zero_len={} bad_csum={} (in_flight={})\n",
            self.corrupt_by_kind[0],
            self.corrupt_by_kind[1],
            self.corrupt_by_kind[2],
            self.corrupt_by_kind[3],
            self.corrupt_in_flight,
        ));
        s.push_str(&format!(
            "  flaps={} pcie: retries={} stall_ns={} escalated={}  straggle_ns={}\n",
            self.flaps,
            self.pcie_retries,
            self.pcie_stall_ns,
            self.pcie_escalated,
            self.straggle_extra_ns,
        ));
        s.push_str(&format!(
            "  cpu_fallbacks={} ({} pkts)\n",
            self.cpu_fallbacks, self.cpu_fallback_pkts,
        ));
        let ports: Vec<String> = self
            .per_port
            .iter()
            .enumerate()
            .filter(|(_, p)| p.nic_drops + p.corrupted > 0)
            .map(|(i, p)| format!("p{i}:{}+{}c", p.nic_drops, p.corrupted))
            .collect();
        if !ports.is_empty() {
            s.push_str(&format!(
                "  per-port (drops+corrupt): {}\n",
                ports.join(" ")
            ));
        }
        s.push_str(&format!(
            "  reconcile: injected {} == handled {} + dropped {} ? {}\n",
            self.injected(),
            self.handled(),
            self.dropped(),
            if self.reconciles() { "OK" } else { "MISMATCH" },
        ));
        s
    }
}

/// The armed, stateful fault injector: per-class RNG streams plus the
/// running [`FaultStats`] ledger. Built by the router when its
/// config's [`FaultSpec::enabled`]; absent otherwise.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    spec: FaultSpec,
    rng_nic: Rng,
    rng_wire: Rng,
    rng_gpu: Rng,
    /// Remaining kills of the current starvation burst, per port.
    burst_left: Vec<u32>,
    /// The running ledger. Routers mutate the corruption-outcome
    /// counters directly as packets die or deliver.
    pub stats: FaultStats,
}

impl FaultPlan {
    /// Arm a plan for `spec`. Panics if any chance is outside [0, 1].
    pub fn new(spec: FaultSpec) -> FaultPlan {
        for c in [
            spec.nic_starve_chance,
            spec.link_flap_chance,
            spec.corrupt_chance,
            spec.pcie_stall_chance,
            spec.gpu_abort_chance,
            spec.gpu_straggle_chance,
        ] {
            assert!((0.0..=1.0).contains(&c), "chance {c} out of range");
        }
        let mut s = spec.seed;
        let mut stream = || Rng::seed_from_u64(splitmix64(&mut s));
        FaultPlan {
            spec,
            rng_nic: stream(),
            rng_wire: stream(),
            rng_gpu: stream(),
            burst_left: Vec::new(),
            stats: FaultStats::default(),
        }
    }

    /// The spec this plan was armed with.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Decide the NIC's fate for a frame arriving on `port` at `now`.
    /// The caller (the router driving `ps-nic`) owns the link-down
    /// window; frames it kills inside that window are recorded via
    /// [`FaultPlan::note_flap_drop`] without consuming any draw here.
    pub fn nic_fault(&mut self, port: u16, now: Time) -> Option<NicFault> {
        let idx = port as usize;
        if self.burst_left.len() <= idx {
            self.burst_left.resize(idx + 1, 0);
        }
        if self.burst_left[idx] > 0 {
            self.burst_left[idx] -= 1;
            self.note_starve(port, now);
            return Some(NicFault::Starve);
        }
        if self.spec.link_flap_chance > 0.0 && self.rng_nic.gen_bool(self.spec.link_flap_chance) {
            let (lo, hi) = self.spec.link_flap_ns;
            let down_ns = if hi > lo {
                self.rng_nic.gen_range(lo..=hi)
            } else {
                lo
            };
            self.stats.flaps += 1;
            ps_trace::instant(Category::Fault, "link_flap", u32::from(port), now, || {
                vec![("down_ns", down_ns)]
            });
            self.note_flap_drop(port);
            return Some(NicFault::LinkFlap { down_ns });
        }
        if self.spec.nic_starve_chance > 0.0 && self.rng_nic.gen_bool(self.spec.nic_starve_chance) {
            let (lo, hi) = self.spec.nic_burst;
            let burst = if hi > lo {
                self.rng_nic.gen_range(lo..=hi)
            } else {
                lo.max(1)
            };
            self.burst_left[idx] = burst.saturating_sub(1);
            self.note_starve(port, now);
            return Some(NicFault::Starve);
        }
        None
    }

    fn note_starve(&mut self, port: u16, now: Time) {
        self.stats.nic_starved += 1;
        self.stats.port_mut(port).nic_drops += 1;
        ps_trace::instant(
            Category::Fault,
            "nic_starve",
            u32::from(port),
            now,
            Vec::new,
        );
    }

    /// Record a frame lost inside a link-down window (the window
    /// itself was opened by an earlier [`NicFault::LinkFlap`]).
    pub fn note_flap_drop(&mut self, port: u16) {
        self.stats.flap_drops += 1;
        self.stats.port_mut(port).nic_drops += 1;
    }

    /// Maybe corrupt a freshly materialized frame arriving on `port`.
    /// Returns the kind applied; the caller marks the packet so every
    /// later drop or delivery is attributed back to this ledger.
    pub fn corrupt_frame(
        &mut self,
        port: u16,
        now: Time,
        data: &mut Vec<u8>,
    ) -> Option<CorruptKind> {
        if self.spec.corrupt_chance <= 0.0 || !self.rng_wire.gen_bool(self.spec.corrupt_chance) {
            return None;
        }
        let kind = CorruptKind::pick(&mut self.rng_wire);
        ps_pktgen::fault::corrupt_in_place(&mut self.rng_wire, kind, data);
        self.stats.corrupt_injected += 1;
        self.stats.corrupt_in_flight += 1;
        let ki = CorruptKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("kind in ALL");
        self.stats.corrupt_by_kind[ki] += 1;
        self.stats.port_mut(port).corrupted += 1;
        ps_trace::instant(
            Category::Fault,
            "wire_corrupt",
            u32::from(port),
            now,
            || vec![("kind", ki as u64)],
        );
        Some(kind)
    }

    /// Record corrupted packets leaving the pipeline as counted drops.
    pub fn note_corrupt_dropped(&mut self, n: u64) {
        self.stats.corrupt_dropped += n;
        self.stats.corrupt_in_flight = self
            .stats
            .corrupt_in_flight
            .checked_sub(n)
            .expect("more corrupted drops than in flight");
    }

    /// Record a corrupted packet that still forwarded to the sink.
    pub fn note_corrupt_delivered(&mut self) {
        self.stats.corrupt_delivered += 1;
        self.stats.corrupt_in_flight = self
            .stats
            .corrupt_in_flight
            .checked_sub(1)
            .expect("delivered corrupt packet not in flight");
    }

    /// Decide the shading fate of a batch on `node` at `now`. At most
    /// one class fires per batch (stall, then abort, then straggler),
    /// keeping the ledger one-event-per-batch.
    pub fn shade_fault(&mut self, node: usize, now: Time) -> ShadeFault {
        if self.spec.pcie_stall_chance > 0.0 && self.rng_gpu.gen_bool(self.spec.pcie_stall_chance) {
            // Attempts needed for the copy to go through: uniform over
            // [1, budget + 1]; needing more than the budget escalates.
            let budget = self.spec.pcie_max_retries.max(1);
            let attempts = self.rng_gpu.gen_range(1..=budget + 1);
            let escalate = attempts > budget;
            let retries = attempts.min(budget);
            // Exponential backoff: base, 2*base, 4*base, ...
            let stall_ns = self.spec.pcie_stall_ns * ((1u64 << retries) - 1);
            self.stats.pcie_stalls += 1;
            self.stats.pcie_retries += u64::from(retries);
            self.stats.pcie_stall_ns += stall_ns;
            if escalate {
                self.stats.pcie_escalated += 1;
            }
            ps_trace::instant(Category::Fault, "pcie_stall", node as u32, now, || {
                vec![
                    ("stall_ns", stall_ns),
                    ("retries", u64::from(retries)),
                    ("escalate", u64::from(escalate)),
                ]
            });
            return ShadeFault::PcieStall { stall_ns, escalate };
        }
        if self.spec.gpu_abort_chance > 0.0 && self.rng_gpu.gen_bool(self.spec.gpu_abort_chance) {
            self.stats.gpu_aborts += 1;
            ps_trace::instant(Category::Fault, "gpu_abort", node as u32, now, Vec::new);
            return ShadeFault::GpuAbort;
        }
        if self.spec.gpu_straggle_chance > 0.0
            && self.rng_gpu.gen_bool(self.spec.gpu_straggle_chance)
        {
            self.stats.gpu_stragglers += 1;
            ps_trace::instant(Category::Fault, "gpu_straggle", node as u32, now, || {
                vec![("extra_pct", u64::from(self.spec.straggle_extra_pct))]
            });
            return ShadeFault::Straggle {
                extra_pct: self.spec.straggle_extra_pct,
            };
        }
        ShadeFault::None
    }

    /// Record a batch taking the CPU fallback path with `pkts` packets.
    pub fn note_cpu_fallback(&mut self, pkts: u64) {
        self.stats.cpu_fallbacks += 1;
        self.stats.cpu_fallback_pkts += pkts;
    }

    /// Record the straggler overrun actually charged to a launch.
    pub fn note_straggle_ns(&mut self, extra: Time) {
        self.stats.straggle_extra_ns += extra;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_spec() -> FaultSpec {
        FaultSpec::scenario("all").expect("known scenario")
    }

    #[test]
    fn zero_spec_is_disabled() {
        assert!(!FaultSpec::none().enabled());
        assert!(busy_spec().enabled());
        assert!(!busy_spec().with_rate(0.0).enabled());
    }

    #[test]
    fn scenarios_cover_their_classes() {
        let nic = FaultSpec::scenario("nic").expect("nic");
        assert!(nic.nic_starve_chance > 0.0 && nic.link_flap_chance > 0.0);
        assert_eq!(nic.corrupt_chance, 0.0);
        let gpu = FaultSpec::scenario("gpu").expect("gpu");
        assert!(gpu.gpu_abort_chance > 0.0 && gpu.gpu_straggle_chance > 0.0);
        assert!(FaultSpec::scenario("bogus").is_none());
    }

    #[test]
    fn same_seed_same_decisions() {
        let run = |seed: u64| {
            let mut plan = FaultPlan::new(busy_spec().with_seed(seed).with_rate(0.3));
            let mut log = Vec::new();
            for i in 0..500u64 {
                let port = (i % 4) as u16;
                log.push(plan.nic_fault(port, i).is_some());
                let mut data = vec![0xAB; 64];
                log.push(plan.corrupt_frame(port, i, &mut data).is_some());
                log.push(plan.shade_fault(0, i) != ShadeFault::None);
            }
            (log, plan.stats.fingerprint())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).1, run(8).1);
    }

    #[test]
    fn classes_draw_from_independent_streams() {
        // Disabling corruption must not change NIC or GPU decisions.
        let decisions = |spec: FaultSpec| {
            let mut plan = FaultPlan::new(spec);
            let mut log = Vec::new();
            for i in 0..500u64 {
                log.push(plan.nic_fault(0, i).is_some());
                log.push(plan.shade_fault(0, i) != ShadeFault::None);
            }
            log
        };
        let with = busy_spec().with_rate(0.2);
        let without = FaultSpec {
            corrupt_chance: 0.0,
            ..with
        };
        assert_eq!(decisions(with), decisions(without));
    }

    #[test]
    fn starvation_bursts_run_their_length() {
        let spec = FaultSpec {
            nic_starve_chance: 1.0,
            nic_burst: (3, 3),
            ..FaultSpec::none()
        };
        let mut plan = FaultPlan::new(spec);
        for i in 0..9 {
            assert_eq!(plan.nic_fault(0, i), Some(NicFault::Starve));
        }
        // Every frame died: 3 bursts of 3.
        assert_eq!(plan.stats.nic_starved, 9);
    }

    #[test]
    fn stall_backoff_is_bounded() {
        let spec = FaultSpec {
            pcie_stall_chance: 1.0,
            ..FaultSpec::none()
        };
        let mut plan = FaultPlan::new(spec);
        let worst = spec.pcie_stall_ns * ((1u64 << spec.pcie_max_retries) - 1);
        for i in 0..200 {
            match plan.shade_fault(0, i) {
                ShadeFault::PcieStall { stall_ns, .. } => {
                    assert!(stall_ns <= worst, "stall {stall_ns} > worst {worst}")
                }
                other => panic!("expected stall, got {other:?}"),
            }
        }
        assert!(plan.stats.pcie_escalated > 0, "some stalls must escalate");
        assert!(
            plan.stats.pcie_escalated < plan.stats.pcie_stalls,
            "not all stalls escalate"
        );
    }

    #[test]
    fn ledger_reconciles_under_synthetic_traffic() {
        let mut plan = FaultPlan::new(busy_spec().with_rate(0.2));
        for i in 0..2000u64 {
            let port = (i % 8) as u16;
            let _ = plan.nic_fault(port, i);
            let mut data = vec![0xAB; 64];
            if plan.corrupt_frame(port, i, &mut data).is_some() {
                // Caller decides the packet's fate; alternate.
                if i % 2 == 0 {
                    plan.note_corrupt_dropped(1);
                } else {
                    plan.note_corrupt_delivered();
                }
            }
            match plan.shade_fault(0, i) {
                ShadeFault::GpuAbort => plan.note_cpu_fallback(32),
                ShadeFault::PcieStall { escalate: true, .. } => plan.note_cpu_fallback(32),
                ShadeFault::Straggle { .. } => plan.note_straggle_ns(1000),
                _ => {}
            }
        }
        assert!(plan.stats.injected() > 0);
        assert!(plan.stats.reconciles(), "{}", plan.stats.summary_table());
        let table = plan.stats.summary_table();
        assert!(table.contains("reconcile"), "{table}");
        assert!(table.contains("OK"), "{table}");
    }

    #[test]
    fn summary_table_renders_counts() {
        let mut stats = FaultStats {
            nic_starved: 3,
            corrupt_injected: 2,
            corrupt_dropped: 2,
            ..FaultStats::default()
        };
        stats.port_mut(1).nic_drops = 3;
        let t = stats.summary_table();
        assert!(t.contains("nic_starve"), "{t}");
        assert!(t.contains("p1:3+0c"), "{t}");
        assert!(t.contains("OK"), "{t}");
    }
}
