//! The I/O hub (Intel 5520) as a shared DMA fabric (§3.2, §4.6).
//!
//! Each IOH hosts two dual-port NICs and one GPU. Every DMA
//! transaction (NIC RX write, NIC TX read, GPU copy) is constrained by
//! *two* FIFO servers: its direction server (device→host or
//! host→device) and a combined bidirectional server. The completion
//! time is whichever server finishes later. With the calibrated
//! capacities this produces the paper's empirical ceilings:
//!
//! * RX only:  bound by d2h ≈ 28 Gbps/IOH → 53–60 Gbps system RX;
//! * TX only:  bound by h2d ≈ 40 Gbps/IOH → ~80 Gbps system TX;
//! * RX+TX:    bound by the combined ≈ 42 Gbps/IOH → ~41 Gbps
//!   full-duplex forwarding for the whole machine (each forwarded
//!   packet crosses an IOH twice).

use ps_sim::resource::BandwidthServer;
use ps_sim::time::Time;

use crate::spec::IohSpec;

/// DMA direction through the IOH.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Device writes host memory: NIC RX, GPU device→host copy.
    DeviceToHost,
    /// Device reads host memory: NIC TX, GPU host→device copy.
    HostToDevice,
}

/// One I/O hub.
#[derive(Debug, Clone)]
pub struct Ioh {
    d2h: BandwidthServer,
    h2d: BandwidthServer,
    combined: BandwidthServer,
    /// Bytes that crossed this hub exactly once as NIC→GPU peer
    /// transfers (direct-DMA staging) — already charged by the NIC RX
    /// DMA, so no server is touched here; kept as a ledger so reports
    /// can show what the host staging path *didn't* move.
    direct_bytes: u64,
}

impl Ioh {
    /// An IOH with the given capacity spec.
    pub fn new(spec: IohSpec) -> Ioh {
        Ioh {
            d2h: BandwidthServer::new(spec.d2h_bits, spec.per_dma_overhead_ns),
            h2d: BandwidthServer::new(spec.h2d_bits, spec.per_dma_overhead_ns),
            combined: BandwidthServer::new(spec.combined_bits, 0),
            direct_bytes: 0,
        }
    }

    /// Label this IOH's servers for tracing as `"ioh.d2h"`,
    /// `"ioh.h2d"` and `"ioh.shared"` on lane `lane` (the IOH/node
    /// index). Each DMA then emits one `fabric` span per server it
    /// crosses when that category is enabled.
    pub fn set_trace_lane(&mut self, lane: u32) {
        self.d2h.set_trace("ioh.d2h", lane);
        self.h2d.set_trace("ioh.h2d", lane);
        self.combined.set_trace("ioh.shared", lane);
    }

    /// Submit a DMA transaction; returns its completion time.
    pub fn dma(&mut self, now: Time, dir: Direction, bytes: u64) -> Time {
        let dir_done = match dir {
            Direction::DeviceToHost => self.d2h.submit(now, bytes),
            Direction::HostToDevice => self.h2d.submit(now, bytes),
        };
        let comb_done = self.combined.submit(now, bytes);
        dir_done.max(comb_done)
    }

    /// Submit a DMA transaction with arbitration priority: the x16
    /// GPU link is switched ahead of queued NIC traffic, so its
    /// completion ignores the FIFO backlog — but the bytes still
    /// consume IOH capacity (advancing the horizons), which is what
    /// throttles NIC admission when GPU copies load the hub (§6.3:
    /// "IOH gets more overloaded due to copying IP addresses and
    /// lookup results").
    pub fn dma_priority(&mut self, now: Time, dir: Direction, bytes: u64) -> Time {
        let _ = self.dma(now, dir, bytes);
        // Completion as if served immediately at `now` (capacity
        // horizons above still advanced by the full byte cost).
        let service = ps_sim::time::transfer_ns(
            bytes,
            match dir {
                Direction::DeviceToHost => self.d2h.bits_per_sec(),
                Direction::HostToDevice => self.h2d.bits_per_sec(),
            },
        );
        now + service
    }

    /// Hold `dir` (and the shared bidirectional server) busy for `ns`
    /// without moving bytes: an injected PCIe stall's retry window.
    /// Queued NIC and GPU traffic behind the stall is pushed back,
    /// which is exactly how a wedged copy starves the hub. Returns
    /// when the stall clears.
    pub fn inject_stall(&mut self, now: Time, dir: Direction, ns: Time) -> Time {
        let dir_done = match dir {
            Direction::DeviceToHost => self.d2h.stall(now, ns),
            Direction::HostToDevice => self.h2d.stall(now, ns),
        };
        let comb_done = self.combined.stall(now, ns);
        dir_done.max(comb_done)
    }

    /// Backlog (ns) a transaction in `dir` would wait before starting.
    pub fn backlog(&self, now: Time, dir: Direction) -> Time {
        let d = match dir {
            Direction::DeviceToHost => self.d2h.backlog_delay(now),
            Direction::HostToDevice => self.h2d.backlog_delay(now),
        };
        d.max(self.combined.backlog_delay(now))
    }

    /// Bytes moved device→host so far.
    pub fn d2h_bytes(&self) -> u64 {
        self.d2h.bytes_served()
    }

    /// Bytes moved host→device so far.
    pub fn h2d_bytes(&self) -> u64 {
        self.h2d.bytes_served()
    }

    /// Record `bytes` delivered NIC→GPU without a host staging copy.
    /// The RX DMA already paid the single IOH traversal via
    /// [`Ioh::dma`]; this only keeps the ledger.
    pub fn note_direct(&mut self, bytes: u64) {
        self.direct_bytes += bytes;
    }

    /// Bytes that took the NIC→GPU direct path so far.
    pub fn direct_bytes(&self) -> u64 {
        self.direct_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::IohSpec;
    use ps_sim::{GIGA, SECONDS};

    fn ioh() -> Ioh {
        Ioh::new(IohSpec::intel_5520_dual())
    }

    /// Saturate the IOH for 1 s of virtual time with the given
    /// transaction mix (all submitted at t=0, i.e. infinite offered
    /// load); return achieved Gbps.
    fn saturate(mix: &[(Direction, u64)]) -> f64 {
        let mut ioh = ioh();
        let mut bytes = 0u64;
        let deadline = SECONDS;
        for i in 0.. {
            let (dir, sz) = mix[i % mix.len()];
            let done = ioh.dma(0, dir, sz);
            if done > deadline {
                break;
            }
            bytes += sz;
        }
        bytes as f64 * 8.0 / 1e9
    }

    #[test]
    fn rx_only_caps_near_28_gbps() {
        let gbps = saturate(&[(Direction::DeviceToHost, 2048)]);
        assert!((26.0..29.0).contains(&gbps), "RX-only {gbps:.1} Gbps");
    }

    #[test]
    fn tx_only_caps_near_40_gbps() {
        let gbps = saturate(&[(Direction::HostToDevice, 2048)]);
        assert!((38.0..41.0).contains(&gbps), "TX-only {gbps:.1} Gbps");
    }

    #[test]
    fn full_duplex_caps_near_combined_limit() {
        // Alternating RX/TX: each direction should get ~21 Gbps, the
        // paper's forwarding ceiling per IOH.
        let gbps = saturate(&[
            (Direction::DeviceToHost, 2048),
            (Direction::HostToDevice, 2048),
        ]);
        assert!(
            (39.0..43.0).contains(&gbps),
            "full-duplex total {gbps:.1} Gbps"
        );
    }

    #[test]
    fn dma_completion_monotone() {
        let mut ioh = ioh();
        let t1 = ioh.dma(0, Direction::DeviceToHost, 1500);
        let t2 = ioh.dma(0, Direction::DeviceToHost, 1500);
        assert!(t2 > t1);
    }

    #[test]
    fn directions_share_combined_capacity() {
        let mut ioh = ioh();
        // Fill h2d heavily; a subsequent d2h transaction must still
        // wait on the combined server.
        for _ in 0..1000 {
            ioh.dma(0, Direction::HostToDevice, 64 * 1024);
        }
        let t = ioh.dma(0, Direction::DeviceToHost, 2048);
        // d2h alone would finish in ~1 us; combined backlog dominates.
        assert!(t > 1_000, "t={t}");
        assert!(ioh.backlog(0, Direction::DeviceToHost) > 0);
    }

    #[test]
    fn byte_accounting() {
        let mut ioh = ioh();
        ioh.dma(0, Direction::DeviceToHost, 100);
        ioh.dma(0, Direction::HostToDevice, 200);
        assert_eq!(ioh.d2h_bytes(), 100);
        assert_eq!(ioh.h2d_bytes(), 200);
    }

    #[test]
    fn capacity_constants_sane() {
        let s = IohSpec::intel_5520_dual();
        assert!(s.d2h_bits < s.h2d_bits);
        assert!(s.combined_bits > s.d2h_bits);
        assert!(s.combined_bits >= 42 * GIGA);
    }
}
