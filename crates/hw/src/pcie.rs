//! PCIe transfer timing for GPU copies, calibrated against Table 1.
//!
//! The model is `t(S) = t0 + S/bw` per direction; `rate(S) = S/t(S)`
//! then reproduces the measured MB/s column within a few percent (see
//! the calibration test below, which checks every Table 1 entry).

use ps_sim::time::Time;

use crate::spec::PcieSpec;

/// Copy direction over the PCIe link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyDir {
    /// Host memory to device (GPU) memory.
    HostToDevice,
    /// Device (GPU) memory to host memory.
    DeviceToHost,
}

/// Deterministic PCIe transfer-time model.
#[derive(Debug, Clone, Copy)]
pub struct PcieModel {
    spec: PcieSpec,
}

impl PcieModel {
    /// Model over the given fitted constants.
    pub fn new(spec: PcieSpec) -> PcieModel {
        PcieModel { spec }
    }

    /// Duration of one DMA copy of `bytes` in `dir`.
    pub fn copy_time(&self, dir: CopyDir, bytes: u64) -> Time {
        let (t0, bw) = match dir {
            CopyDir::HostToDevice => (self.spec.h2d_overhead_ns, self.spec.h2d_bw_bits),
            CopyDir::DeviceToHost => (self.spec.d2h_overhead_ns, self.spec.d2h_bw_bits),
        };
        t0 + ps_sim::time::transfer_ns(bytes, bw)
    }

    /// Effective transfer rate in MB/s for a copy of `bytes` — the
    /// quantity Table 1 reports.
    pub fn rate_mb_s(&self, dir: CopyDir, bytes: u64) -> f64 {
        let t = self.copy_time(dir, bytes) as f64 / 1e9;
        bytes as f64 / t / 1e6
    }

    /// When pipelining many copies (the gather optimization of §5.4),
    /// the fixed overhead is paid once and subsequent copies stream:
    /// total time for `n` copies of `bytes` each.
    pub fn pipelined_copies_time(&self, dir: CopyDir, n: u64, bytes: u64) -> Time {
        if n == 0 {
            return 0;
        }
        let (t0, bw) = match dir {
            CopyDir::HostToDevice => (self.spec.h2d_overhead_ns, self.spec.h2d_bw_bits),
            CopyDir::DeviceToHost => (self.spec.d2h_overhead_ns, self.spec.d2h_bw_bits),
        };
        t0 + ps_sim::time::transfer_ns(n * bytes, bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PcieSpec;

    fn model() -> PcieModel {
        PcieModel::new(PcieSpec::dual_ioh_x16())
    }

    /// Paper Table 1, exactly as printed.
    const TABLE1: &[(u64, f64, f64)] = &[
        // (buffer bytes, h2d MB/s, d2h MB/s)
        (256, 55.0, 63.0),
        (1024, 185.0, 211.0),
        (4096, 759.0, 786.0),
        (16384, 2069.0, 1743.0),
        (65536, 4046.0, 2848.0),
        (262144, 5142.0, 3242.0),
        (1048576, 5577.0, 3394.0),
    ];

    #[test]
    fn reproduces_table1_within_tolerance() {
        let m = model();
        for &(size, h2d, d2h) in TABLE1 {
            let got_h2d = m.rate_mb_s(CopyDir::HostToDevice, size);
            let got_d2h = m.rate_mb_s(CopyDir::DeviceToHost, size);
            let err_h2d = (got_h2d - h2d).abs() / h2d;
            let err_d2h = (got_d2h - d2h).abs() / d2h;
            // The measured Table 1 latencies are non-monotonic around
            // 1-4 KB (1024 B implies a *larger* fixed latency than
            // 4096 B), which a two-parameter t0+S/bw fit cannot
            // capture; 17% covers that one outlier, all other entries
            // are within ~7%.
            assert!(
                err_h2d < 0.17,
                "h2d {size}B: model {got_h2d:.0} vs paper {h2d} ({:.1}% off)",
                err_h2d * 100.0
            );
            assert!(
                err_d2h < 0.17,
                "d2h {size}B: model {got_d2h:.0} vs paper {d2h} ({:.1}% off)",
                err_d2h * 100.0
            );
        }
    }

    #[test]
    fn h2d_peaks_higher_than_d2h() {
        // The dual-IOH asymmetry of §3.2.
        let m = model();
        let h2d = m.rate_mb_s(CopyDir::HostToDevice, 1 << 20);
        let d2h = m.rate_mb_s(CopyDir::DeviceToHost, 1 << 20);
        assert!(h2d > d2h * 1.5, "h2d={h2d:.0} d2h={d2h:.0}");
    }

    #[test]
    fn small_copies_dominated_by_overhead() {
        let m = model();
        let t256 = m.copy_time(CopyDir::HostToDevice, 256);
        let t1k = m.copy_time(CopyDir::HostToDevice, 1024);
        // Quadrupling the size must not quadruple the time.
        assert!(t1k < 2 * t256);
    }

    #[test]
    fn pipelined_copies_amortize_overhead() {
        let m = model();
        let one_by_one: Time = (0..8)
            .map(|_| m.copy_time(CopyDir::HostToDevice, 4096))
            .sum();
        let pipelined = m.pipelined_copies_time(CopyDir::HostToDevice, 8, 4096);
        assert!(
            pipelined < one_by_one / 2,
            "pipelined={pipelined} serial={one_by_one}"
        );
        assert_eq!(m.pipelined_copies_time(CopyDir::HostToDevice, 0, 4096), 0);
    }

    #[test]
    fn paper_example_256_ipv4_addresses() {
        // §2.2: "we can transfer 1 KB of 256 IPv4 addresses at
        // 185 MB/s", i.e. ~48.5 M addresses/s.
        let m = model();
        let rate = m.rate_mb_s(CopyDir::HostToDevice, 1024);
        let mpps = rate * 1e6 / 4.0 / 1e6;
        assert!((40.0..60.0).contains(&mpps), "addresses/s = {mpps:.1}M");
    }
}
