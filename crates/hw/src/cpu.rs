//! Analytic CPU timing model.
//!
//! The paper's CPU-side costs come from two places: raw cycles
//! (parsing, hashing, crypto in the CPU-only mode) and memory stalls
//! (table lookups whose working set defeats the cache, §2.4). We model
//! an operation as an [`OpProfile`] and convert it to time:
//!
//! * ALU work: `alu_cycles / hz`;
//! * memory work: dependent misses serialize at full latency, while
//!   independent misses overlap up to the MSHR limit (≈6 per core, 4
//!   under all-core bursts) and an additional software-pipelining
//!   factor for batch loops that interleave several packets.
//!
//! The model is deliberately simple and fully documented — it is a
//! calibration surface, not a microarchitectural simulator.

use ps_sim::time::Time;

use crate::numa::NodeId;
use crate::spec::CpuSpec;

/// Cost profile of one operation on one core.
#[derive(Debug, Clone, Copy, Default)]
pub struct OpProfile {
    /// Pure compute cycles (no memory stall attributed).
    pub alu_cycles: u64,
    /// Cache-missing memory accesses that depend on each other
    /// (pointer chase / search steps): these serialize.
    pub dependent_misses: u64,
    /// Cache-missing accesses with no mutual dependency: these
    /// overlap up to the effective MSHR window.
    pub independent_misses: u64,
    /// Accesses that hit in cache; charged a small fixed cost.
    pub cache_hits: u64,
}

impl OpProfile {
    /// Pure-compute profile.
    pub fn alu(cycles: u64) -> OpProfile {
        OpProfile {
            alu_cycles: cycles,
            ..Default::default()
        }
    }

    /// A pointer-chase profile of `n` dependent misses plus `cycles`
    /// of compute.
    pub fn chase(n: u64, cycles: u64) -> OpProfile {
        OpProfile {
            alu_cycles: cycles,
            dependent_misses: n,
            ..Default::default()
        }
    }

    /// Merge another profile into this one (sequential composition).
    pub fn add(&mut self, other: OpProfile) {
        self.alu_cycles += other.alu_cycles;
        self.dependent_misses += other.dependent_misses;
        self.independent_misses += other.independent_misses;
        self.cache_hits += other.cache_hits;
    }
}

/// L1/L2 hit cost in cycles.
const HIT_CYCLES: u64 = 4;

/// Execution context for the memory model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryPressure {
    /// Only this core is bursting memory references.
    Light,
    /// All cores burst simultaneously (the contended MSHR case).
    Contended,
}

/// The per-core analytic timing model.
#[derive(Debug, Clone, Copy)]
pub struct CpuModel {
    spec: CpuSpec,
    /// How many packet-sized operations the software pipeline keeps in
    /// flight per core (batch loops interleave independent packets,
    /// letting dependent chains of *different* packets overlap).
    /// Calibrated so one X5550 socket sustains ~17 M IPv6 lookups/s
    /// (Figure 2's CPU plateau).
    pub sw_pipeline: f64,
}

impl CpuModel {
    /// Model for the given socket spec with the default software
    /// pipelining factor.
    pub fn new(spec: CpuSpec) -> CpuModel {
        CpuModel {
            spec,
            sw_pipeline: 2.5,
        }
    }

    /// The socket spec.
    pub fn spec(&self) -> &CpuSpec {
        &self.spec
    }

    /// Convert cycles to nanoseconds at this core's clock.
    #[inline]
    pub fn cycles_to_ns(&self, cycles: u64) -> Time {
        ps_sim::time::cycles_to_ns(cycles, self.spec.hz)
    }

    /// Memory latency seen from `accessor` node to `memory` node.
    #[inline]
    pub fn mem_latency_ns(&self, accessor: NodeId, memory: NodeId) -> u64 {
        if accessor == memory {
            self.spec.mem_latency_local_ns
        } else {
            self.spec.mem_latency_remote_ns
        }
    }

    /// Time for one operation whose memory lives on `memory`, run by a
    /// core on `core_node`.
    pub fn op_time(
        &self,
        profile: OpProfile,
        core_node: NodeId,
        memory: NodeId,
        pressure: MemoryPressure,
    ) -> Time {
        let lat = self.mem_latency_ns(core_node, memory);
        let mshr = match pressure {
            MemoryPressure::Light => self.spec.mshr_per_core,
            MemoryPressure::Contended => self.spec.mshr_contended,
        } as f64;

        // Dependent chain: serialized, but batch loops overlap chains
        // of different packets up to min(sw_pipeline, mshr).
        let overlap = self.sw_pipeline.min(mshr).max(1.0);
        let chain_ns = profile.dependent_misses as f64 * lat as f64 / overlap;

        // Independent misses overlap up to the MSHR window.
        let indep_ns = profile.independent_misses as f64 * lat as f64 / mshr;

        let alu_ns = profile.alu_cycles as f64 * 1e9 / self.spec.hz as f64;
        let hit_ns = profile.cache_hits as f64 * HIT_CYCLES as f64 * 1e9 / self.spec.hz as f64;

        (chain_ns + indep_ns + alu_ns + hit_ns).ceil() as Time
    }

    /// Throughput of one *socket* (all cores) executing `profile` in a
    /// tight batch loop, in operations per second.
    pub fn socket_ops_per_sec(
        &self,
        profile: OpProfile,
        core_node: NodeId,
        memory: NodeId,
        pressure: MemoryPressure,
    ) -> f64 {
        let per_op = self.op_time(profile, core_node, memory, pressure) as f64;
        if per_op == 0.0 {
            return f64::INFINITY;
        }
        self.spec.cores as f64 * 1e9 / per_op
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CpuSpec;

    fn model() -> CpuModel {
        CpuModel::new(CpuSpec::x5550())
    }

    #[test]
    fn alu_only_matches_clock() {
        let m = model();
        // 2660 cycles at 2.66 GHz = 1000 ns.
        let t = m.op_time(
            OpProfile::alu(2660),
            NodeId(0),
            NodeId(0),
            MemoryPressure::Light,
        );
        assert_eq!(t, 1000);
    }

    #[test]
    fn dependent_chain_overlaps_by_pipeline_factor() {
        let m = model();
        // 7 dependent misses, local: 7*60/2.5 = 168 ns.
        let t = m.op_time(
            OpProfile::chase(7, 0),
            NodeId(0),
            NodeId(0),
            MemoryPressure::Light,
        );
        assert_eq!(t, 168);
    }

    #[test]
    fn remote_memory_costs_more() {
        let m = model();
        let local = m.op_time(
            OpProfile::chase(7, 0),
            NodeId(0),
            NodeId(0),
            MemoryPressure::Light,
        );
        let remote = m.op_time(
            OpProfile::chase(7, 0),
            NodeId(0),
            NodeId(1),
            MemoryPressure::Light,
        );
        let ratio = remote as f64 / local as f64;
        assert!((1.40..=1.50).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn independent_misses_overlap_more_than_dependent() {
        let m = model();
        let dep = m.op_time(
            OpProfile::chase(6, 0),
            NodeId(0),
            NodeId(0),
            MemoryPressure::Light,
        );
        let indep = m.op_time(
            OpProfile {
                independent_misses: 6,
                ..Default::default()
            },
            NodeId(0),
            NodeId(0),
            MemoryPressure::Light,
        );
        assert!(indep < dep, "indep={indep} dep={dep}");
        assert_eq!(indep, 60); // 6 * 60 / 6 MSHRs
    }

    #[test]
    fn contention_reduces_overlap() {
        let m = model();
        let p = OpProfile {
            independent_misses: 12,
            ..Default::default()
        };
        let light = m.op_time(p, NodeId(0), NodeId(0), MemoryPressure::Light);
        let contended = m.op_time(p, NodeId(0), NodeId(0), MemoryPressure::Contended);
        assert!(contended > light);
    }

    #[test]
    fn socket_throughput_ipv6_lookup_calibration() {
        // Figure 2 calibration: one X5550 socket sustains roughly
        // 15-20M IPv6 lookups/s (7 dependent misses + ~60 cycles ALU).
        let m = model();
        let profile = OpProfile::chase(7, 60);
        let ops = m.socket_ops_per_sec(profile, NodeId(0), NodeId(0), MemoryPressure::Light);
        assert!(
            (14.0e6..24.0e6).contains(&ops),
            "one-socket IPv6 lookup rate {ops:.2e} outside Figure 2 band"
        );
    }

    #[test]
    fn profile_composition() {
        let mut p = OpProfile::alu(100);
        p.add(OpProfile::chase(2, 50));
        assert_eq!(p.alu_cycles, 150);
        assert_eq!(p.dependent_misses, 2);
    }
}
