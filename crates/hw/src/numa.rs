//! NUMA topology: node identifiers and placement helpers (§4.5).

/// A NUMA node (0 or 1 on the paper's server).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// NUMA placement policy for packet I/O data structures (§4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Descriptor arrays, huge buffers and statistics live on the same
    /// node as the owning NIC, and RSS only targets same-node cores —
    /// the paper's tuned configuration (~40 Gbps forwarding).
    NumaAware,
    /// Buffers allocated without regard for the NIC's node and RSS
    /// spraying packets across both sockets — the baseline that limits
    /// forwarding below 25 Gbps (§4.5).
    NumaBlind,
}

impl Placement {
    /// The probability that a given packet's buffers end up remote to
    /// the core that processes it under this policy.
    pub fn remote_fraction(&self) -> f64 {
        match self {
            // With careful placement nothing crosses the node.
            Placement::NumaAware => 0.0,
            // Blind RSS sends half the packets to cores on the other
            // node, and blind allocation puts half the buffers remote
            // even for locally-processed packets: 1 - 1/2·1/2 = 3/4 of
            // packets touch at least one remote structure.
            Placement::NumaBlind => 0.75,
        }
    }
}

/// Map an entity index (port, queue, core) to its NUMA node, given a
/// symmetric two-node system with `per_node` entities per node.
pub fn node_of(index: u32, per_node: u32) -> NodeId {
    NodeId(index / per_node)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_mapping() {
        // 8 ports, 4 per node.
        assert_eq!(node_of(0, 4), NodeId(0));
        assert_eq!(node_of(3, 4), NodeId(0));
        assert_eq!(node_of(4, 4), NodeId(1));
        assert_eq!(node_of(7, 4), NodeId(1));
    }

    #[test]
    fn placement_fractions() {
        assert_eq!(Placement::NumaAware.remote_fraction(), 0.0);
        assert!(Placement::NumaBlind.remote_fraction() > 0.5);
    }

    #[test]
    fn display() {
        assert_eq!(NodeId(1).to_string(), "node1");
    }
}
