//! The testbed specification (paper Table 2) and every timing
//! calibration constant, with the measurement each one is tied to.
//!
//! Centralizing the constants here keeps the rest of the code free of
//! magic numbers and gives EXPERIMENTS.md a single place to reference
//! when comparing paper values to simulated values.

use ps_sim::time::Time;
use ps_sim::GIGA;

/// CPU specification: Intel Xeon X5550 (Nehalem, 4 cores, 2.66 GHz).
#[derive(Debug, Clone, Copy)]
pub struct CpuSpec {
    /// Core clock in Hz.
    pub hz: u64,
    /// Cores per socket.
    pub cores: u32,
    /// Local DRAM access latency (ns). Nehalem + DDR3-1333.
    pub mem_latency_local_ns: u64,
    /// Remote-node DRAM access latency: paper §4.5 reports 40–50 %
    /// higher than local; we use +45 %.
    pub mem_latency_remote_ns: u64,
    /// Outstanding misses one core can sustain in the best case
    /// (§2.4 microbenchmark: "about 6 outstanding cache misses").
    pub mshr_per_core: u32,
    /// Outstanding misses per core when all four cores burst
    /// references (§2.4: "only 4 misses").
    pub mshr_contended: u32,
    /// Cache line size (x86): every random access costs one line of
    /// memory bandwidth (§2.4).
    pub cache_line: u32,
    /// Per-socket memory bandwidth, bits/s (§2.4: 32 GB/s).
    pub mem_bw_bits: u64,
}

impl CpuSpec {
    /// The Xeon X5550 as configured in Table 2.
    pub const fn x5550() -> CpuSpec {
        CpuSpec {
            hz: 2_660_000_000,
            cores: 4,
            mem_latency_local_ns: 60,
            mem_latency_remote_ns: 87,
            mshr_per_core: 6,
            mshr_contended: 4,
            cache_line: 64,
            mem_bw_bits: 32 * 8 * GIGA,
        }
    }
}

/// GPU specification: NVIDIA GTX480 (Fermi) as described in §2.1.
#[derive(Debug, Clone, Copy)]
pub struct GpuSpec {
    /// Streaming multiprocessors.
    pub sms: u32,
    /// Stream processors (lanes) per SM.
    pub lanes_per_sm: u32,
    /// Threads per warp.
    pub warp_size: u32,
    /// Maximum resident warps per SM ("the scheduler in an SM holds
    /// up to 32 warps", §2.1).
    pub max_warps_per_sm: u32,
    /// Shader clock in Hz (1.4 GHz).
    pub hz: u64,
    /// Device memory size in bytes (1.5 GB).
    pub mem_bytes: u64,
    /// Device memory bandwidth, bits/s (§2.4: 177.4 GB/s).
    pub mem_bw_bits: u64,
    /// Device memory access latency in ns (Fermi global load,
    /// 400–800 cycles; 600 cycles at 1.4 GHz ≈ 430 ns).
    pub mem_latency_ns: u64,
    /// Maximum memory transactions in flight per SM; bounds the
    /// latency-hiding capacity like CPU MSHRs do.
    pub max_mem_inflight_per_sm: u32,
    /// Memory transaction granularity (coalescing segment), bytes.
    pub mem_segment: u32,
    /// Kernel launch latency for one thread (§2.2: 3.8 µs).
    pub launch_base_ns: u64,
    /// Additional launch cost per thread (§2.2: 4096 threads cost
    /// 4.1 µs, i.e. ~0.073 ns/thread).
    pub launch_per_thread_ps: u64,
}

impl GpuSpec {
    /// The GTX480 as configured in Table 2.
    pub const fn gtx480() -> GpuSpec {
        GpuSpec {
            sms: 15,
            lanes_per_sm: 32,
            warp_size: 32,
            max_warps_per_sm: 32,
            hz: 1_400_000_000,
            mem_bytes: 1_536 * 1024 * 1024,
            mem_bw_bits: 1774 * 8 * GIGA / 10,
            mem_latency_ns: 430,
            max_mem_inflight_per_sm: 48,
            mem_segment: 128,
            launch_base_ns: 3_800,
            launch_per_thread_ps: 73,
        }
    }

    /// Total lanes (480 "cores" for GTX480).
    pub const fn total_lanes(&self) -> u32 {
        self.sms * self.lanes_per_sm
    }
}

/// PCIe transfer-direction parameters fitted against paper Table 1
/// (`rate(S) = S / (t0 + S/bw)`).
///
/// * host→device: t0 = 4.6 µs, bw = 5.72 GB/s reproduces
///   55 MB/s @256 B … 5577 MB/s @1 MB within ~6 %.
/// * device→host: t0 = 4.0 µs, bw = 3.44 GB/s reproduces
///   63 MB/s @256 B … 3394 MB/s @1 MB within ~2 %.
///
/// The asymmetry is the dual-IOH problem of §3.2 — it is part of the
/// fitted constants, not added separately.
#[derive(Debug, Clone, Copy)]
pub struct PcieSpec {
    /// Fixed per-transfer latency host→device (ns).
    pub h2d_overhead_ns: u64,
    /// host→device bandwidth, bits/s.
    pub h2d_bw_bits: u64,
    /// Fixed per-transfer latency device→host (ns).
    pub d2h_overhead_ns: u64,
    /// device→host bandwidth, bits/s.
    pub d2h_bw_bits: u64,
}

impl PcieSpec {
    /// PCIe 2.0 x16 on the dual-5520 board, as measured in Table 1.
    pub const fn dual_ioh_x16() -> PcieSpec {
        PcieSpec {
            h2d_overhead_ns: 4_600,
            h2d_bw_bits: 5_720 * 8 * MEGA_BYTES,
            d2h_overhead_ns: 4_000,
            d2h_bw_bits: 3_440 * 8 * MEGA_BYTES,
        }
    }
}

const MEGA_BYTES: u64 = 1_000_000;

/// Per-IOH DMA capacity, calibrated from §4.6 / Figure 6:
///
/// * RX-only peaks at 53–60 Gbps over two IOHs → ~28 Gbps of
///   device→host DMA per IOH;
/// * TX-only reaches 79–80 Gbps → ~40 Gbps of host→device per IOH;
/// * forwarding (RX+TX together) tops out at ~41 Gbps total →
///   a combined per-IOH ceiling of ~20.5 + 20.5 Gbps.
///
/// Each DMA transaction is constrained by both its direction server
/// and the combined server; the binding constraint emerges per
/// workload mix exactly as in the paper.
#[derive(Debug, Clone, Copy)]
pub struct IohSpec {
    /// device→host capacity per IOH, bits/s.
    pub d2h_bits: u64,
    /// host→device capacity per IOH, bits/s.
    pub h2d_bits: u64,
    /// Combined bidirectional capacity per IOH, bits/s.
    pub combined_bits: u64,
    /// Per-DMA-transaction fixed overhead (descriptor fetch, TLP
    /// framing), ns.
    pub per_dma_overhead_ns: Time,
    /// Added latency of one cross-IOH hop over the QPI interconnect
    /// (§3.2, Figure 4), ns. This is also the *minimum* latency any
    /// packet needs to move between NUMA domains, which makes it the
    /// safe lookahead for per-domain parallel simulation
    /// (`ps_sim::shard`, DESIGN.md §9): a domain can run `qpi_hop_ns`
    /// of virtual time ahead without missing a cross-domain arrival.
    pub qpi_hop_ns: Time,
}

impl IohSpec {
    /// Intel 5520 as it behaves on the dual-IOH board (§3.2).
    ///
    /// `qpi_hop_ns` is zero here: the calibrated DMA times above
    /// already fold in the interconnect round trip the paper's
    /// figures measured, so the testbed model charges no *extra*
    /// per-hop latency — and consequently offers no lookahead.
    pub const fn intel_5520_dual() -> IohSpec {
        IohSpec {
            d2h_bits: 28 * GIGA,
            h2d_bits: 40 * GIGA,
            combined_bits: 42 * GIGA,
            per_dma_overhead_ns: 0,
            qpi_hop_ns: 0,
        }
    }

    /// The same IOH with an explicit QPI hop latency, for
    /// what-if experiments that price cross-domain traffic (and for
    /// the sharded runtime, which uses the hop as its lookahead).
    pub const fn with_qpi_hop(mut self, ns: Time) -> IohSpec {
        self.qpi_hop_ns = ns;
        self
    }
}

/// NIC/port constants.
#[derive(Debug, Clone, Copy)]
pub struct NicSpec {
    /// Port line rate, bits/s.
    pub line_rate_bits: u64,
    /// RX/TX descriptor ring size per queue.
    pub ring_entries: usize,
    /// Interrupt-moderation delay. §6.4 attributes the higher latency
    /// at low input rates to this; the observed ~200 µs floor implies
    /// an effective ITR around 200 µs for the paper's ixgbe build.
    pub interrupt_moderation_ns: Time,
}

impl NicSpec {
    /// Intel 82599 (X520-DA2) port.
    pub const fn x520() -> NicSpec {
        NicSpec {
            line_rate_bits: 10 * GIGA,
            ring_entries: 1024,
            interrupt_moderation_ns: 200_000,
        }
    }
}

/// The whole Table 2 server.
#[derive(Debug, Clone, Copy)]
pub struct Testbed {
    /// Per-socket CPU spec (one socket per NUMA node).
    pub cpu: CpuSpec,
    /// Per-card GPU spec (one per node).
    pub gpu: GpuSpec,
    /// PCIe transfer model for GPU copies.
    pub pcie: PcieSpec,
    /// Per-IOH capacity.
    pub ioh: IohSpec,
    /// NIC/port constants.
    pub nic: NicSpec,
    /// NUMA nodes in the system.
    pub nodes: u32,
    /// 10 GbE ports per node (two dual-port NICs).
    pub ports_per_node: u32,
}

impl Testbed {
    /// The $7,000 server of Table 2.
    pub const fn paper() -> Testbed {
        Testbed {
            cpu: CpuSpec::x5550(),
            gpu: GpuSpec::gtx480(),
            pcie: PcieSpec::dual_ioh_x16(),
            ioh: IohSpec::intel_5520_dual(),
            nic: NicSpec::x520(),
            nodes: 2,
            ports_per_node: 4,
        }
    }

    /// Total 10 GbE ports (8).
    pub const fn total_ports(&self) -> u32 {
        self.nodes * self.ports_per_node
    }

    /// Total CPU cores (8).
    pub const fn total_cores(&self) -> u32 {
        self.nodes * self.cpu.cores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shape() {
        let t = Testbed::paper();
        assert_eq!(t.total_ports(), 8);
        assert_eq!(t.total_cores(), 8);
        assert_eq!(t.gpu.total_lanes(), 480);
        assert_eq!(t.cpu.hz, 2_660_000_000);
    }

    #[test]
    fn gpu_mem_bandwidth_matches_paper() {
        let g = GpuSpec::gtx480();
        // 177.4 GB/s
        assert_eq!(g.mem_bw_bits, 1_419_200_000_000);
    }

    #[test]
    fn remote_latency_is_40_to_50_percent_higher() {
        let c = CpuSpec::x5550();
        let ratio = c.mem_latency_remote_ns as f64 / c.mem_latency_local_ns as f64;
        assert!((1.40..=1.50).contains(&ratio), "ratio={ratio}");
    }
}
