//! # ps-hw — host hardware models
//!
//! Models of the paper's testbed (Table 2): two Nehalem NUMA nodes,
//! each with a quad-core Xeon X5550, local DDR3 memory, and an Intel
//! 5520 IOH hosting two dual-port 10 GbE NICs and one GTX480.
//!
//! Three things live here:
//!
//! * [`spec`] — every calibration constant in one place, each tied to
//!   the paper measurement it reproduces;
//! * [`cpu`] — an analytic CPU cost model turning operation profiles
//!   (ALU cycles, dependent/independent memory accesses) into
//!   nanoseconds, with the MSHR-limited miss overlap of §2.4;
//! * [`pcie`]/[`ioh`] — the I/O fabric: per-direction PCIe transfer
//!   timing calibrated against Table 1, and the dual-IOH contention
//!   that produces the paper's ~40 Gbps forwarding ceiling (§3.2).

pub mod cpu;
pub mod ioh;
pub mod numa;
pub mod pcie;
pub mod spec;

pub use cpu::{CpuModel, OpProfile};
pub use ioh::{Direction, Ioh};
pub use numa::NodeId;
pub use pcie::PcieModel;
pub use spec::Testbed;
