//! The router's event enum, the worker-side handlers (fetch,
//! pre-shade, CPU process, post-shade, TX serialization), the event
//! dispatch [`Model`] impl, and the RSS hash.
//!
//! Handlers address workers, rings and ports by the same global ids
//! the events carry; the [`super::Router`] accessors map those onto
//! the per-NUMA-domain [`super::node::NodeShard`]s. The only
//! cross-domain interactions are (a) a worker transmitting out a
//! remote node's port and (b) NUMA-blind DMA mirroring — (a) is
//! exactly what [`Ev::CrossArrive`] reifies so the parallel runtime
//! can exchange it at window barriers. The admission side (generator,
//! NIC RX, interrupts) lives in `rx`; the master's
//! gather/shade/scatter in `master`.

use ps_hw::ioh::Direction;
use ps_hw::numa::Placement;
use ps_io::{dma_bytes, Packet};
use ps_net::ethernet::{EtherType, EthernetFrame};
use ps_net::ipv4::Ipv4Packet;
use ps_net::ipv6::Ipv6Packet;
use ps_net::tcp::TcpSegment;
use ps_net::udp::UdpDatagram;
use ps_nic::rss::{toeplitz_hash, MSFT_KEY};
use ps_sim::time::Time;
use ps_sim::{Model, Scheduler};

use crate::app::App;
use crate::chunk::Chunk;
use crate::config::Mode;

use super::parallel::CrossTx;
use super::Router;

/// Router events.
#[derive(Debug)]
pub enum Ev {
    /// Generator emits its next packet.
    Gen,
    /// A packet's RX DMA completed; it lands in a worker's queue.
    RxReady {
        /// Global worker id the RSS hash selected.
        worker: usize,
        /// The received frame.
        pkt: Box<Packet>,
    },
    /// A worker thread continues its loop.
    WorkerLoop {
        /// Global worker id.
        worker: usize,
    },
    /// A master thread checks its input queue.
    MasterLoop {
        /// NUMA node of the master.
        node: usize,
    },
    /// A transmitted frame finished serializing onto the wire.
    TxDone {
        /// The delivered frame.
        pkt: Box<Packet>,
    },
    /// A processed packet arrived at a *remote* node for TX: it
    /// crossed the QPI (paying `qpi_hop_ns`) and now starts its TX
    /// DMA on the destination node's IOH. In a windowed parallel run
    /// this event is scheduled by the barrier delivery; sequentially
    /// it comes straight off the heap.
    CrossArrive {
        /// Destination NUMA node (owner of the out port).
        node: usize,
        /// The crossing frame.
        pkt: Box<Packet>,
    },
}

impl<A: App> Router<A> {
    pub(super) fn cycles_ns(&self, cycles: u64) -> Time {
        self.cpu.cycles_to_ns(cycles)
    }

    pub(super) fn wake_worker(&mut self, sched: &mut Scheduler<Ev>, w: usize, t: Time) {
        let t = t.max(sched.now());
        let ws = self.worker_mut(w);
        if let Some(pending) = ws.next_wake {
            if pending <= t {
                return;
            }
        }
        ws.next_wake = Some(t);
        sched.at(t, Ev::WorkerLoop { worker: w });
    }

    pub(super) fn wake_master(&mut self, sched: &mut Scheduler<Ev>, node: usize, t: Time) {
        let t = t.max(sched.now());
        let ms = self.master_mut(node);
        if let Some(pending) = ms.next_wake {
            if pending <= t {
                return;
            }
        }
        ms.next_wake = Some(t);
        sched.at(t, Ev::MasterLoop { node });
    }

    fn on_worker_loop(&mut self, sched: &mut Scheduler<Ev>, w: usize) {
        let now = sched.now();
        self.worker_mut(w).next_wake = None;
        if self.worker(w).busy_until > now {
            let t = self.worker(w).busy_until;
            self.wake_worker(sched, w, t);
            return;
        }

        // 1. Completed shading output? Post-shade + transmit.
        if let Some(&(ready, _)) = self.worker(w).done_queue.front() {
            if ready <= now {
                let ws = self.worker_mut(w);
                let (_, chunk) = ws.done_queue.pop_front().expect("front exists");
                ws.outstanding -= 1;
                self.finish_chunk(sched, w, chunk, true);
                return;
            }
        }

        // 2. Fetch a new chunk if the pipeline has room. The priority
        // ring is strictly first and fetched with its own small cap,
        // so latency-critical packets never wait behind a bulk batch.
        let can_fetch = match self.cfg.mode {
            Mode::CpuOnly => true,
            Mode::CpuGpu => self.worker(w).outstanding < self.cfg.pipeline_depth,
        };
        let fetch_prio = can_fetch && !self.prio_ring(w).is_empty();
        if fetch_prio || (can_fetch && !self.ring(w).is_empty()) {
            let batch = if fetch_prio {
                let cap = self
                    .cfg
                    .latency
                    .priority
                    .map_or(self.cfg.io.batch_cap, |c| c.cap);
                let b = self.prio_ring_mut(w).pop_batch(cap);
                ps_io::trace::trace_prio_ring_depth(w as u32, now, self.prio_ring(w).len() as u64);
                b
            } else {
                let cap = self.effective_batch_cap(w);
                if self.cfg.latency.adaptive_batch {
                    ps_io::trace::trace_batch_cap(w as u32, now, cap as u64);
                }
                let b = self.ring_mut(w).pop_batch(cap);
                ps_io::trace::trace_ring_depth(w as u32, now, self.ring(w).len() as u64);
                b
            };
            self.stats.rx_batches += 1;
            self.stats.rx_packets += batch.len() as u64;
            let n = batch.len() as u64;
            let bytes: u64 = batch.iter().map(|p| p.len() as u64).sum();
            let rx_cycles = self.cost.rx_batch_cycles(n, bytes, self.cfg.io.placement);
            let mut pkts = batch;
            let corrupt_before = match &self.plan {
                Some(_) => pkts.iter().filter(|p| p.corrupted).count() as u64,
                None => 0,
            };
            let pre = self.app.pre_shade(&mut pkts);
            if let Some(plan) = self.plan.as_mut() {
                // Corrupted frames the pre-shader rejected (malformed,
                // bad checksum) or diverted off the fast path settle
                // as counted drops.
                let after = pkts.iter().filter(|p| p.corrupted).count() as u64;
                plan.note_corrupt_dropped(corrupt_before - after);
            }
            self.stats.app_drops += pre.dropped;
            self.stats.slow_path += pre.slow_path;
            let t1 = now + self.cycles_ns(rx_cycles + pre.cycles);
            self.worker_mut(w).busy_until = t1;
            // One span for the fused RX-fetch + pre-shade interval:
            // the model charges them as a single cycle budget, and
            // splitting the ns conversion would round differently.
            ps_io::trace::trace_rx_batch(w as u32, now, t1, n, bytes);
            ps_trace::complete(
                ps_trace::Category::Stage,
                "pre_shade",
                w as u32,
                now,
                t1,
                || {
                    vec![
                        ("pkts", n),
                        ("bytes", bytes),
                        ("dropped", pre.dropped),
                        ("slow_path", pre.slow_path),
                    ]
                },
            );

            if pkts.is_empty() {
                self.wake_worker(sched, w, t1);
                return;
            }

            let use_cpu = match self.cfg.mode {
                Mode::CpuOnly => true,
                // Priority chunks bypass the GPU pipeline entirely:
                // gather/shade/scatter buys throughput with latency,
                // which is the wrong trade for the priority lane.
                Mode::CpuGpu => {
                    fetch_prio
                        || (self.cfg.opportunistic && pkts.len() < self.cfg.opportunistic_threshold)
                }
            };
            if use_cpu {
                let corrupt_before = match &self.plan {
                    Some(_) => pkts.iter().filter(|p| p.corrupted).count() as u64,
                    None => 0,
                };
                let cycles = self.app.process_cpu(&mut pkts);
                if let Some(plan) = self.plan.as_mut() {
                    let after = pkts.iter().filter(|p| p.corrupted).count() as u64;
                    plan.note_corrupt_dropped(corrupt_before - after);
                }
                let t2 = t1 + self.cycles_ns(cycles);
                self.worker_mut(w).busy_until = t2;
                let n = pkts.len() as u64;
                ps_trace::complete(
                    ps_trace::Category::Stage,
                    "cpu_process",
                    w as u32,
                    t1,
                    t2,
                    || vec![("pkts", n)],
                );
                let chunk = Chunk::new(w, pkts, now);
                // Transmit as soon as processing ends.
                let ws = self.worker_mut(w);
                ws.done_queue.push_back((t2, chunk));
                ws.outstanding += 1;
                self.wake_worker(sched, w, t2);
            } else {
                let node = self.worker_node(w);
                let chunk = Chunk::new(w, pkts, now);
                self.worker_mut(w).outstanding += 1;
                self.master_mut(node).input.push_back(chunk);
                self.wake_master(sched, node, t1);
                self.wake_worker(sched, w, t1);
            }
            return;
        }

        // 3. Output pending but not ready: sleep until it is.
        if let Some(&(ready, _)) = self.worker(w).done_queue.front() {
            self.wake_worker(sched, w, ready);
            return;
        }

        // 4. Nothing to do: arm the interrupt (§5.2).
        if self.ring(w).is_empty() && self.prio_ring(w).is_empty() {
            self.worker_mut(w).idle = true;
        } else {
            // Pipeline full; the master's scatter will wake us.
        }
    }

    /// The RX fetch cap for this fetch: the configured cap, or — in
    /// adaptive mode — scaled with the ring's current depth so
    /// shallow queues take small, low-latency batches while deep
    /// queues grow back to the paper's 64-packet cap (§4.3's "the
    /// chunk size is not fixed but only capped", made load-aware).
    fn effective_batch_cap(&self, w: usize) -> usize {
        let lat = &self.cfg.latency;
        if !lat.adaptive_batch {
            return self.cfg.io.batch_cap;
        }
        let cap = self.cfg.io.batch_cap;
        (self.ring(w).len() / lat.depth_per_cap.max(1)).clamp(lat.min_batch.min(cap), cap)
    }

    /// Post-shade + TX a finished chunk on worker `w`.
    fn finish_chunk(&mut self, sched: &mut Scheduler<Ev>, w: usize, chunk: Chunk, charge: bool) {
        let now = sched.now();
        let mut pkts = chunk.packets;
        // Application may have cleared out_port for drops.
        let before = pkts.len();
        if self.plan.is_some() {
            let dead = pkts
                .iter()
                .filter(|p| p.corrupted && p.out_port.is_none())
                .count() as u64;
            if let Some(plan) = self.plan.as_mut() {
                plan.note_corrupt_dropped(dead);
            }
        }
        pkts.retain(|p| p.out_port.is_some());
        self.stats.app_drops += (before - pkts.len()) as u64;

        let bytes: u64 = pkts.iter().map(|p| p.len() as u64).sum();
        let cycles = if charge {
            self.app.post_shade_cycles(pkts.len())
                + self
                    .cost
                    .tx_batch_cycles(pkts.len() as u64, bytes, self.cfg.io.placement)
        } else {
            0
        };
        let t2 = now + self.cycles_ns(cycles);
        self.worker_mut(w).busy_until = t2;
        if charge {
            let n = pkts.len() as u64;
            ps_io::trace::trace_tx_batch(w as u32, now, t2, n, bytes);
            ps_trace::complete(
                ps_trace::Category::Stage,
                "post_shade",
                w as u32,
                now,
                t2,
                || vec![("pkts", n), ("bytes", bytes)],
            );
        }

        let src_node = self.worker_node(w);
        let qpi = self.cfg.testbed.ioh.qpi_hop_ns;
        for p in pkts {
            let out = p.out_port.expect("retained");
            let node = self.node_of_port(out);
            if qpi > 0 && node != src_node {
                // The frame crosses the QPI to the remote IOH before
                // its TX DMA; the hop is the parallel runtime's
                // lookahead, so in a windowed run the packet leaves
                // through the barrier (even when the destination node
                // is hosted by this same shard — routing *all*
                // crossings one way keeps delivery order independent
                // of the hosting). Sequentially it takes the heap.
                let at = t2 + qpi;
                if at > self.stop_at {
                    // Past the run horizon: a sequential run would
                    // never dispatch this arrival (`run_until` stops
                    // at the deadline) and a windowed run discards it
                    // at the barrier — ledger it at the source in
                    // both, so the drop ledger is byte-identical at
                    // every shard count.
                    self.stats.drops.far_future += 1;
                    self.reclaim_buf(p.data);
                    continue;
                }
                if self.cross_windowed {
                    self.pending_cross.push(CrossTx {
                        src: src_node,
                        to: node,
                        at,
                        pkt: p,
                    });
                } else {
                    let pkt = self.event_box(p);
                    sched.at(at, Ev::CrossArrive { node, pkt });
                }
                continue;
            }
            // TX DMA: the NIC reads the frame from host memory.
            let mut dma_done =
                self.nodes[node]
                    .ioh
                    .dma(t2, Direction::HostToDevice, dma_bytes(p.len()));
            if self.cfg.io.placement == Placement::NumaBlind && self.cfg.nodes > 1 && p.id % 4 != 0
            {
                // Blind buffers: the NIC's read crosses the remote IOH.
                let other = (node + 1) % self.cfg.nodes;
                let mirrored =
                    self.nodes[other]
                        .ioh
                        .dma(t2, Direction::HostToDevice, dma_bytes(p.len()));
                dma_done = dma_done.max(mirrored);
            }
            let len = p.len();
            let wire_done = self.port_mut(out).tx_frame(dma_done, len);
            let pkt = self.event_box(p);
            // Per-port TX completions serialize onto the wire in
            // nondecreasing order; lanes sit above the RX-node lanes.
            sched.at_fifo(
                self.cfg.nodes + out.0 as usize,
                wire_done,
                Ev::TxDone { pkt },
            );
        }
        self.wake_worker(sched, w, t2);
    }

    /// A QPI-crossing packet reached its destination node: start the
    /// TX DMA on the *remote* IOH and serialize onto the out port.
    fn on_cross_arrive(&mut self, sched: &mut Scheduler<Ev>, node: usize, pkt: Box<Packet>) {
        let now = sched.now();
        let len = pkt.len();
        let out = pkt.out_port.expect("cross packets carry an out port");
        let dma_done = self.nodes[node]
            .ioh
            .dma(now, Direction::HostToDevice, dma_bytes(len));
        let wire_done = self.port_mut(out).tx_frame(dma_done, len);
        // Cross completions interleave with the port's native TX lane
        // stream non-monotonically (two independent DMA horizons), so
        // they take the heap.
        sched.at(wire_done, Ev::TxDone { pkt });
    }
}

impl<A: App> Model for Router<A> {
    type Event = Ev;

    fn handle(&mut self, sched: &mut Scheduler<Ev>, ev: Ev) {
        match ev {
            Ev::Gen => self.on_gen(sched),
            Ev::RxReady { worker, pkt } => self.on_rx_ready(sched, worker, pkt),
            Ev::WorkerLoop { worker } => self.on_worker_loop(sched, worker),
            Ev::MasterLoop { node } => self.on_master_loop(sched, node),
            Ev::CrossArrive { node, pkt } => self.on_cross_arrive(sched, node, pkt),
            Ev::TxDone { pkt } => {
                let now = sched.now();
                if now >= self.measure_from {
                    self.sink.deliver(now, &pkt);
                    // Per-packet sojourn: RX DMA completion to last
                    // TX bit on the wire — the residence time queues
                    // and batching govern (gen-to-TX RTT additionally
                    // includes wire serialization and NIC admission
                    // wait; the sink keeps that one).
                    let sojourn = now.saturating_sub(pkt.arrival);
                    self.stats.sojourn.record(sojourn);
                    if pkt.priority {
                        self.stats.prio_sojourn.record(sojourn);
                    }
                }
                let p = self.event_unbox(pkt);
                if p.corrupted {
                    if let Some(plan) = self.plan.as_mut() {
                        plan.note_corrupt_delivered();
                    }
                }
                self.reclaim_buf(p.data);
            }
        }
    }
}

/// RSS hash over the frame's 5-tuple (Toeplitz, §4.4); non-IP frames
/// hash to 0 (queue 0), like the 82599.
pub fn rss_hash(frame: &[u8]) -> u32 {
    let Ok(eth) = EthernetFrame::new_checked(frame) else {
        return 0;
    };
    match eth.ethertype() {
        EtherType::Ipv4 => {
            let Ok(ip) = Ipv4Packet::new_checked(eth.payload()) else {
                return 0;
            };
            let (sport, dport) = l4_ports(ip.protocol(), ip.payload());
            let mut input = [0u8; 12];
            input[0..4].copy_from_slice(&ip.src().octets());
            input[4..8].copy_from_slice(&ip.dst().octets());
            input[8..10].copy_from_slice(&sport.to_be_bytes());
            input[10..12].copy_from_slice(&dport.to_be_bytes());
            toeplitz_hash(&MSFT_KEY, &input)
        }
        EtherType::Ipv6 => {
            let Ok(ip) = Ipv6Packet::new_checked(eth.payload()) else {
                return 0;
            };
            let (sport, dport) = l4_ports(ip.next_header(), ip.payload());
            let mut input = [0u8; 36];
            input[0..16].copy_from_slice(&ip.src().octets());
            input[16..32].copy_from_slice(&ip.dst().octets());
            input[32..34].copy_from_slice(&sport.to_be_bytes());
            input[34..36].copy_from_slice(&dport.to_be_bytes());
            toeplitz_hash(&MSFT_KEY, &input)
        }
        _ => 0,
    }
}

fn l4_ports(proto: u8, payload: &[u8]) -> (u16, u16) {
    match proto {
        ps_net::ipv4::protocol::UDP => UdpDatagram::new_checked(payload)
            .map(|u| (u.src_port(), u.dst_port()))
            .unwrap_or((0, 0)),
        ps_net::ipv4::protocol::TCP => TcpSegment::new_checked(payload)
            .map(|t| (t.src_port(), t.dst_port()))
            .unwrap_or((0, 0)),
        _ => (0, 0),
    }
}
