//! [`RouterReport`]: the public result of one router run.

use ps_fault::FaultStats;
use ps_sim::stats::{Histogram, PacketCounter, ETHERNET_OVERHEAD_BYTES};
use ps_sim::time::Time;

/// Aggregated run statistics.
#[derive(Debug)]
pub struct RouterReport {
    /// Virtual-time window simulated.
    pub window: Time,
    /// Packets offered by the generator.
    pub offered: PacketCounter,
    /// Packets delivered back to the sink.
    pub delivered: PacketCounter,
    /// Round-trip latency (ns).
    pub latency: Histogram,
    /// RX-ring tail drops.
    pub rx_drops: u64,
    /// Packets dropped by the application (no route, TTL, checksum).
    pub app_drops: u64,
    /// Packets diverted to the host stack.
    pub slow_path: u64,
    /// GPU kernels launched (both devices).
    pub gpu_kernels: u64,
    /// Mean packets per shading launch.
    pub mean_shade_batch: f64,
    /// Mean packets per RX fetch.
    pub mean_rx_batch: f64,
    /// Bytes served per IOH, device->host (Gbit over the window).
    pub ioh_d2h_gbit: Vec<f64>,
    /// Bytes served per IOH, host->device.
    pub ioh_h2d_gbit: Vec<f64>,
    /// NIC-FIFO drops (IOH admission) vs RX-ring tail drops.
    pub drop_split: (u64, u64),
    /// Fault-injection ledger (all zero when no plan was armed).
    pub faults: FaultStats,
    /// Cumulative column-staging PCIe traffic `(h2d_bytes, d2h_bytes,
    /// staged_packets)` from [`crate::app::App::staging_totals`], or
    /// [`None`] for apps without a column stage (IPsec, CPU-only runs
    /// still report the gather bytes they *would* have moved as 0).
    pub staging: Option<(u64, u64, u64)>,
}

impl RouterReport {
    /// Delivered throughput in the paper's metric.
    pub fn out_gbps(&self) -> f64 {
        self.delivered
            .gbps_with_overhead(self.window, ETHERNET_OVERHEAD_BYTES)
    }

    /// Offered load in the paper's metric.
    pub fn in_gbps(&self) -> f64 {
        self.offered
            .gbps_with_overhead(self.window, ETHERNET_OVERHEAD_BYTES)
    }

    /// Delivered throughput measured at the *input* frame size — the
    /// paper's IPsec metric ("we take input throughput as a metric
    /// rather than output throughput", §6.2.4), which factors out the
    /// ESP expansion.
    pub fn out_gbps_input_sized(&self, input_frame_len: usize) -> f64 {
        let bits = self.delivered.packets * (ps_net::wire_len(input_frame_len) as u64) * 8;
        ps_sim::time::rate_per_sec(bits, self.window) / 1e9
    }

    /// Host→device staging bytes per staged packet, or [`None`] when
    /// the app has no column stage or staged nothing.
    pub fn h2d_bytes_per_pkt(&self) -> Option<f64> {
        match self.staging {
            Some((h2d, _, pkts)) if pkts > 0 => Some(h2d as f64 / pkts as f64),
            _ => None,
        }
    }

    /// Device→host staging bytes per staged packet.
    pub fn d2h_bytes_per_pkt(&self) -> Option<f64> {
        match self.staging {
            Some((_, d2h, pkts)) if pkts > 0 => Some(d2h as f64 / pkts as f64),
            _ => None,
        }
    }

    /// Delivered fraction.
    pub fn delivery_ratio(&self) -> f64 {
        if self.offered.packets == 0 {
            return 1.0;
        }
        self.delivered.packets as f64 / self.offered.packets as f64
    }
}
