//! [`RouterReport`]: the public result of one router run.

use ps_fault::FaultStats;
use ps_pktgen::DropLedger;
use ps_sim::stats::{Histogram, PacketCounter, ETHERNET_OVERHEAD_BYTES};
use ps_sim::time::Time;

/// Aggregated run statistics.
#[derive(Debug)]
pub struct RouterReport {
    /// Virtual-time window simulated.
    pub window: Time,
    /// Packets offered by the generator.
    pub offered: PacketCounter,
    /// Packets delivered back to the sink.
    pub delivered: PacketCounter,
    /// Round-trip latency (ns).
    pub latency: Histogram,
    /// Round-trip latency of priority-lane packets only (ns); empty
    /// without a priority classifier.
    pub prio_latency: Histogram,
    /// Per-packet RX→TX sojourn (ns): RX DMA completion to last TX
    /// bit on the wire — the residence time queue depths and batching
    /// govern. Merged bucket-wise across shards, so `p99()`/`p999()`
    /// over the merged histogram equal a sequential run's exactly.
    pub sojourn: Histogram,
    /// Sojourn of priority-lane packets only (ns).
    pub prio_sojourn: Histogram,
    /// Every drop decomposed by cause (generator-side backpressure
    /// and far-future discards; NIC-side admission, fault and
    /// ring-tail drops). `drops.nic_side() == rx_drops` always;
    /// gen-side causes are extra (those packets never hit the wire).
    pub drops: DropLedger,
    /// Deepest RX-ring occupancy any worker ring reached — the
    /// queue-growth gauge (a peak at ring capacity means the run was
    /// admission-limited).
    pub peak_ring_depth: usize,
    /// RX-ring tail drops.
    pub rx_drops: u64,
    /// Packets dropped by the application (no route, TTL, checksum).
    pub app_drops: u64,
    /// Packets diverted to the host stack.
    pub slow_path: u64,
    /// GPU kernels launched (both devices).
    pub gpu_kernels: u64,
    /// Mean packets per shading launch.
    pub mean_shade_batch: f64,
    /// Mean packets per RX fetch.
    pub mean_rx_batch: f64,
    /// Bytes served per IOH, device->host (Gbit over the window).
    pub ioh_d2h_gbit: Vec<f64>,
    /// Bytes served per IOH, host->device.
    pub ioh_h2d_gbit: Vec<f64>,
    /// NIC-FIFO drops (IOH admission) vs RX-ring tail drops.
    pub drop_split: (u64, u64),
    /// Fault-injection ledger (all zero when no plan was armed).
    pub faults: FaultStats,
    /// Cumulative column-staging PCIe traffic `(h2d_bytes, d2h_bytes,
    /// staged_packets)` from [`crate::app::App::staging_totals`], or
    /// [`None`] for apps without a column stage (IPsec, CPU-only runs
    /// still report the gather bytes they *would* have moved as 0).
    pub staging: Option<(u64, u64, u64)>,
}

impl RouterReport {
    /// Delivered throughput in the paper's metric.
    pub fn out_gbps(&self) -> f64 {
        self.delivered
            .gbps_with_overhead(self.window, ETHERNET_OVERHEAD_BYTES)
    }

    /// Offered load in the paper's metric.
    pub fn in_gbps(&self) -> f64 {
        self.offered
            .gbps_with_overhead(self.window, ETHERNET_OVERHEAD_BYTES)
    }

    /// Delivered throughput measured at the *input* frame size — the
    /// paper's IPsec metric ("we take input throughput as a metric
    /// rather than output throughput", §6.2.4), which factors out the
    /// ESP expansion.
    pub fn out_gbps_input_sized(&self, input_frame_len: usize) -> f64 {
        let bits = self.delivered.packets * (ps_net::wire_len(input_frame_len) as u64) * 8;
        ps_sim::time::rate_per_sec(bits, self.window) / 1e9
    }

    /// Host→device staging bytes per staged packet, or [`None`] when
    /// the app has no column stage or staged nothing.
    pub fn h2d_bytes_per_pkt(&self) -> Option<f64> {
        match self.staging {
            Some((h2d, _, pkts)) if pkts > 0 => Some(h2d as f64 / pkts as f64),
            _ => None,
        }
    }

    /// Device→host staging bytes per staged packet.
    pub fn d2h_bytes_per_pkt(&self) -> Option<f64> {
        match self.staging {
            Some((_, d2h, pkts)) if pkts > 0 => Some(d2h as f64 / pkts as f64),
            _ => None,
        }
    }

    /// Delivered fraction.
    pub fn delivery_ratio(&self) -> f64 {
        if self.offered.packets == 0 {
            return 1.0;
        }
        self.delivered.packets as f64 / self.offered.packets as f64
    }
}
