//! Execution policy: when (and how) a run splits into per-NUMA-domain
//! shards on OS threads, and the glue binding [`Router`] to the
//! conservative-window runtime in [`ps_sim::shard`] (DESIGN.md §9).
//!
//! Three regimes, chosen by [`plan`]:
//!
//! * **Sequential** — anything the parallel runtime cannot host
//!   bit-exactly: single-node configs, NUMA-blind placement, armed
//!   fault plans (global per-class RNG streams), installed trace
//!   collectors (thread-local sinks), or an app that does not
//!   implement [`App::shard_replica`]. Also the shards=1 request for
//!   node-local traffic. This is the pre-shard code path, unchanged.
//! * **Replicated** (`windowed: false`) — node-local traffic with
//!   shards > 1: each shard runs a full `Router` replica that admits
//!   only the packets whose RX node it hosts. No cross-shard messages
//!   exist, so the run is one barrier-free window; the merged report
//!   is the deterministic sum of the per-shard reports.
//! * **Windowed** (`windowed: true`) — cross-node traffic priced with
//!   a QPI hop (`IohSpec::qpi_hop_ns > 0`): that hop is the minimum
//!   cross-domain latency, i.e. the lookahead. The run executes in
//!   adaptive conservative windows (each reaching `GVT + hop − 1`) at
//!   *every* shard count, shards=1 included, so results are identical
//!   across `PS_SHARDS` by construction, not by coincidence.
//!
//! Cross-node traffic *without* a priced hop (`qpi_hop_ns == 0`, the
//! calibrated paper testbed) offers zero lookahead and stays
//! sequential.

use ps_hw::numa::Placement;
use ps_io::Packet;
use ps_pktgen::TrafficSpec;
use ps_sim::time::Time;
use ps_sim::{run_sharded, CrossQueue, Model, Scheduler, ShardModel, ShardedScheduler};

use crate::app::{App, ShardAffinity};
use crate::config::RouterConfig;

use super::report::RouterReport;
use super::stats::merged_report;
use super::{Ev, Router};

/// A processed packet bound for a remote NUMA node's TX path: the
/// typed cross-shard message of the windowed runtime. `src` is the
/// emitting node (not the shard!), so message tie-breaking is
/// identical under every hosting.
pub struct CrossTx {
    /// Node whose worker emitted the packet.
    pub src: usize,
    /// Destination node (owner of the out port).
    pub to: usize,
    /// Arrival instant at the destination IOH (`t2 + qpi_hop_ns`).
    pub at: Time,
    /// The crossing frame.
    pub pkt: Packet,
}

/// The shard count requested via `PS_SHARDS` (default 1). This is
/// what [`Router::run`] passes to [`Router::run_with_shards`]; it is
/// public so artifact writers (ps-bench JSON headers) can record the
/// setting a run was produced under.
pub fn shards_from_env() -> usize {
    std::env::var("PS_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// How a run will execute.
pub(crate) enum ExecPlan<A> {
    /// Single-threaded, byte-identical to the pre-shard router.
    Sequential(A),
    /// One `Router` replica per shard, driven by the work-stealing
    /// window pool in [`ps_sim::run_sharded`].
    Parallel {
        /// One app replica per shard.
        apps: Vec<A>,
        /// Conservative windows (cross-node traffic) vs a single
        /// barrier-free window (node-local traffic).
        windowed: bool,
    },
}

/// Decide the execution regime for a run (see the module docs).
pub(crate) fn plan<A: App>(cfg: &RouterConfig, app: A, shards: usize) -> ExecPlan<A> {
    let shards = shards.clamp(1, cfg.nodes);
    if cfg.nodes < 2
        || cfg.io.placement != Placement::NumaAware
        || cfg.faults.enabled()
        || ps_trace::is_installed()
    {
        return ExecPlan::Sequential(app);
    }
    let Some((_, affinity)) = app.shard_replica() else {
        return ExecPlan::Sequential(app);
    };
    let windowed = match affinity {
        ShardAffinity::NodeLocal => {
            if shards == 1 {
                return ExecPlan::Sequential(app);
            }
            false
        }
        ShardAffinity::CrossNode => {
            if cfg.testbed.ioh.qpi_hop_ns == 0 {
                // No priced hop means no lookahead to run ahead on.
                return ExecPlan::Sequential(app);
            }
            true
        }
    };
    let mut apps = vec![app];
    while apps.len() < shards {
        let (replica, _) = apps[0].shard_replica().expect("checked replicable above");
        apps.push(replica);
    }
    ExecPlan::Parallel { apps, windowed }
}

/// Execute a parallel plan and merge the shards deterministically.
pub(crate) fn run_parallel<A: App + Send>(
    cfg: RouterConfig,
    apps: Vec<A>,
    spec: TrafficSpec,
    duration: Time,
    windowed: bool,
) -> RouterReport {
    let shards = apps.len();
    let mut routers: Vec<Router<A>> = apps
        .into_iter()
        .enumerate()
        .map(|(i, app)| {
            let mut r = Router::new(cfg, app, spec, duration);
            r.shard = Some((i, shards));
            r.cross_windowed = windowed;
            r
        })
        .collect();
    let mut scheds = ShardedScheduler::new(shards);
    // Every shard replays the full generator stream (skipping packets
    // it does not host), so every shard seeds its own Gen.
    for i in 0..shards {
        scheds.shard_mut(i).at(0, Ev::Gen);
    }
    let lookahead = if windowed {
        cfg.testbed.ioh.qpi_hop_ns
    } else {
        // Independent shards: one window, no barriers.
        duration.saturating_add(1)
    };
    run_sharded(&mut routers, &mut scheds, duration, lookahead, |node| {
        node % shards
    });
    let window = duration - routers[0].measure_from;
    merged_report(&routers, window)
}

impl<A: App> ShardModel for Router<A> {
    type Event = Ev;
    type Cross = CrossTx;

    fn handle(&mut self, sched: &mut Scheduler<Ev>, ev: Ev, cross: &mut CrossQueue<CrossTx>) {
        Model::handle(self, sched, ev);
        // Drain the packets `finish_chunk` diverted at the QPI into
        // the outbox, in emission order (the per-source index keys the
        // deterministic merge at the barrier).
        for tx in self.pending_cross.drain(..) {
            cross.send(tx.src, tx.to, tx.at, tx);
        }
    }

    fn deliver(&mut self, sched: &mut Scheduler<Ev>, at: Time, msg: CrossTx) {
        let pkt = self.event_box(msg.pkt);
        sched.at(at, Ev::CrossArrive { node: msg.to, pkt });
    }
}
