//! The event-driven router: workers, masters, NICs, IOHs and GPUs
//! composed into one deterministic simulation (Figures 7 and 9).
//!
//! The module is split along the paper's own NUMA seam (§3.2):
//!
//! * `node` — `NodeShard`: every hardware resource a NUMA domain
//!   owns (NIC ports, IOH, GPU, worker cores, master, RX rings), held
//!   *exclusively* so shard-parallel execution is an ownership fact,
//!   not a convention;
//! * `rx` — the admission side: generator arrivals, NIC RX, faults,
//!   RX DMA and the interrupt into a worker;
//! * `dispatch` — the event enum, the worker-side handlers
//!   (fetch/pre-shade/process/post-shade/TX) and the event dispatch;
//! * `master` — the master loop: gather, shade (GPU or CPU
//!   fallback), scatter;
//! * `stats` — per-run counters and the deterministic cross-shard
//!   report merge;
//! * `report` — [`RouterReport`], the public result type;
//! * `parallel` — the execution policy: when a run may split into
//!   per-NUMA-domain shards on OS threads (`PS_SHARDS`, DESIGN.md §9)
//!   and the conservative-window plumbing over [`ps_sim::shard`].
//!
//! This file holds the [`Router`] aggregate: construction, the
//! resource pools, and the run entry points.

mod dispatch;
mod master;
mod node;
mod parallel;
mod report;
mod rx;
mod stats;
#[cfg(test)]
mod tests;

pub use dispatch::{rss_hash, Ev};
pub use parallel::shards_from_env;
pub use report::RouterReport;

use ps_fault::FaultPlan;
use ps_io::Packet;
use ps_nic::port::PortId;
use ps_nic::ring::Ring;
use ps_pktgen::{Generator, Sink, TrafficSpec};
use ps_sim::time::Time;
use ps_sim::Simulation;

use crate::app::App;
use crate::config::RouterConfig;

use node::{MasterState, NodeShard, WorkerState};
use parallel::CrossTx;
use stats::RunStats;

/// Upper bound on the recycled frame-buffer / event-box pools; keeps
/// a pathological burst from pinning memory forever.
const POOL_CAP: usize = 8192;

/// The router model.
pub struct Router<A: App> {
    cfg: RouterConfig,
    app: A,
    gen: Generator,
    /// The measurement sink.
    pub sink: Sink,
    /// One shard of hardware per NUMA domain; all port/worker/ring
    /// indexing goes through the accessors below, which map the global
    /// ids used by events onto `(node, local)` pairs.
    nodes: Vec<NodeShard>,
    cost: ps_io::cost::CostModel,
    cpu: ps_hw::cpu::CpuModel,
    stop_at: Time,
    /// Counters only accumulate from this instant (warm-up excluded).
    measure_from: Time,
    stats: RunStats,
    /// Recycled frame buffers: delivered and tail-dropped packets
    /// return their `data` allocation here, and the generator
    /// materializes new frames into them — the steady state allocates
    /// no per-packet buffers.
    free_bufs: Vec<Vec<u8>>,
    /// Recycled event boxes for [`Ev::RxReady`] / [`Ev::TxDone`] —
    /// the `Box` allocations themselves are the pooled resource.
    #[allow(clippy::vec_box)]
    free_boxes: Vec<Box<Packet>>,
    /// Armed fault plan; [`None`] whenever the config's spec is
    /// all-zero, so fault-free runs draw no randomness and emit no
    /// trace events from this layer.
    plan: Option<FaultPlan>,
    /// `Some((index, count))` when this router is one shard of a
    /// parallel run: it then only admits packets whose RX node it
    /// hosts (`node % count == index`).
    shard: Option<(usize, usize)>,
    /// True when the parallel run uses conservative windows (cross-IOH
    /// traffic present): cross-node TX must leave through
    /// [`parallel::CrossTx`] messages instead of being simulated
    /// inline, and `Gen` may not free-run past a window boundary.
    cross_windowed: bool,
    /// Cross-IOH packets awaiting the next window barrier.
    pending_cross: Vec<CrossTx>,
}

impl<A: App> Router<A> {
    /// Build a router; `stop_at` bounds packet generation.
    pub fn new(cfg: RouterConfig, mut app: A, spec: TrafficSpec, stop_at: Time) -> Router<A> {
        assert_eq!(
            spec.ports, cfg.ports,
            "traffic spec and router must agree on port count"
        );
        app.set_staging(cfg.staging);
        let nodes = (0..cfg.nodes)
            .map(|node| NodeShard::new(&cfg, node, &mut app))
            .collect();
        Router {
            cfg,
            app,
            gen: Generator::new(spec),
            sink: Sink::new(),
            nodes,
            cost: ps_io::cost::CostModel::default(),
            cpu: ps_hw::cpu::CpuModel::new(cfg.testbed.cpu),
            stop_at,
            measure_from: stop_at / 5,
            stats: RunStats::default(),
            free_bufs: Vec::new(),
            free_boxes: Vec::new(),
            plan: cfg.faults.enabled().then(|| FaultPlan::new(cfg.faults)),
            shard: None,
            cross_windowed: false,
            pending_cross: Vec::new(),
        }
    }

    /// Run a configured router for `duration` and report. The shard
    /// count comes from the `PS_SHARDS` environment variable (default
    /// 1); see [`Router::run_with_shards`] for the policy.
    pub fn run(cfg: RouterConfig, app: A, spec: TrafficSpec, duration: Time) -> RouterReport
    where
        A: Send,
    {
        Self::run_with_shards(cfg, app, spec, duration, parallel::shards_from_env())
    }

    /// Run with an explicit shard-count request.
    ///
    /// The request is only that — a request. The execution policy
    /// decides whether the workload can execute as per-NUMA-domain
    /// shards on OS threads (the app must be replicable, the run
    /// untraced and fault-free, placement NUMA-aware); everything
    /// else takes the sequential path below, byte-identical to the
    /// pre-shard implementation. Virtual-time results are identical
    /// at *every* shard count (pinned by `tests/shards.rs`); only
    /// wall-clock time changes.
    pub fn run_with_shards(
        cfg: RouterConfig,
        app: A,
        spec: TrafficSpec,
        duration: Time,
        shards: usize,
    ) -> RouterReport
    where
        A: Send,
    {
        match parallel::plan(&cfg, app, shards) {
            parallel::ExecPlan::Sequential(app) => {
                let router = Router::new(cfg, app, spec, duration);
                let mut sim = Simulation::new(router);
                sim.schedule(0, Ev::Gen);
                // Measure exactly [0, duration]: packets still in
                // flight at the deadline do not count (steady-state
                // occupancy is small relative to any measurement
                // window).
                sim.run_until(duration);
                let window = duration - sim.model.measure_from;
                sim.model.report(window)
            }
            parallel::ExecPlan::Parallel { apps, windowed } => {
                parallel::run_parallel(cfg, apps, spec, duration, windowed)
            }
        }
    }

    /// Access the application (post-run inspection).
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Return a frame buffer to the recycling pool.
    fn reclaim_buf(&mut self, buf: Vec<u8>) {
        if self.free_bufs.len() < POOL_CAP {
            self.free_bufs.push(buf);
        }
    }

    /// Box `p` for an event, reusing a recycled box when available.
    fn event_box(&mut self, p: Packet) -> Box<Packet> {
        match self.free_boxes.pop() {
            Some(mut b) => {
                *b = p;
                b
            }
            None => Box::new(p),
        }
    }

    /// Take the packet out of an event box and recycle the box.
    fn event_unbox(&mut self, mut b: Box<Packet>) -> Packet {
        let p = std::mem::replace(&mut *b, Packet::new(0, Vec::new(), PortId(0), 0));
        if self.free_boxes.len() < POOL_CAP {
            self.free_boxes.push(b);
        }
        p
    }

    // Global-id accessors: events address workers, rings and ports by
    // the same flat ids the pre-shard router used; the node-sharded
    // layout is `(id / per_node, id % per_node)`.

    fn worker_node(&self, w: usize) -> usize {
        w / self.cfg.workers_per_node
    }

    fn worker(&self, w: usize) -> &WorkerState {
        &self.nodes[w / self.cfg.workers_per_node].workers[w % self.cfg.workers_per_node]
    }

    fn worker_mut(&mut self, w: usize) -> &mut WorkerState {
        let per = self.cfg.workers_per_node;
        &mut self.nodes[w / per].workers[w % per]
    }

    fn ring(&self, w: usize) -> &Ring<Packet> {
        &self.nodes[w / self.cfg.workers_per_node].rings[w % self.cfg.workers_per_node]
    }

    fn ring_mut(&mut self, w: usize) -> &mut Ring<Packet> {
        let per = self.cfg.workers_per_node;
        &mut self.nodes[w / per].rings[w % per]
    }

    fn prio_ring(&self, w: usize) -> &Ring<Packet> {
        &self.nodes[w / self.cfg.workers_per_node].prio_rings[w % self.cfg.workers_per_node]
    }

    fn prio_ring_mut(&mut self, w: usize) -> &mut Ring<Packet> {
        let per = self.cfg.workers_per_node;
        &mut self.nodes[w / per].prio_rings[w % per]
    }

    /// Scheduler FIFO lane for node `node`'s *priority* RX
    /// completions. Priority completions are a subsequence of the
    /// node IOH's (nondecreasing) d2h completion stream, so each
    /// class keeps the lane contract on its own lane. Lanes sit just
    /// past the Gen lane: `0..nodes` are per-node bulk RX,
    /// `nodes..nodes+ports` per-port TX, `nodes+ports` the Gen chain.
    fn prio_rx_lane(&self, node: usize) -> usize {
        self.cfg.nodes + self.cfg.ports as usize + 1 + node
    }

    fn master_mut(&mut self, node: usize) -> &mut MasterState {
        &mut self.nodes[node].master
    }

    fn port_mut(&mut self, p: PortId) -> &mut ps_nic::port::Port {
        let per = self.cfg.ports_per_node() as usize;
        &mut self.nodes[p.0 as usize / per].ports[p.0 as usize % per]
    }

    fn node_of_port(&self, port: PortId) -> usize {
        (port.0 / self.cfg.ports_per_node()) as usize
    }

    /// Does this router (shard) host `node`? Always true outside a
    /// parallel run.
    fn hosted(&self, node: usize) -> bool {
        match self.shard {
            Some((idx, count)) => node % count == idx,
            None => true,
        }
    }
}
