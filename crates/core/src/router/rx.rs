//! The admission side of the data plane: generator arrivals, NIC/IOH
//! RX admission (descriptor starvation, link faults, wire
//! corruption), RX DMA completion and the interrupt that hands a
//! frame to its RSS-selected worker (§4.4–§4.6, §5.2).

use ps_fault::NicFault;
use ps_hw::ioh::Direction;
use ps_hw::numa::Placement;
use ps_io::{dma_bytes, Packet};
use ps_nic::port::PortId;
use ps_pktgen::LoadMode;
use ps_sim::time::Time;
use ps_sim::{Scheduler, MICROS};

use crate::app::App;

use super::{Ev, Router};

/// Interrupt delivery latency once fired.
const INT_LATENCY: Time = 2 * MICROS;
/// RX DMA admission horizon: when the IOH's device->host backlog
/// exceeds this, the NIC has run out of posted descriptors and drops
/// in its internal FIFO *before* spending any DMA bandwidth.
const RX_ADMIT_BACKLOG: Time = 20 * MICROS;

impl<A: App> Router<A> {
    /// RSS: pick the worker for a flow hash (§4.4 flow affinity; §4.5
    /// same-node restriction under NUMA-aware placement).
    fn worker_for_hash(&self, hash: u32, in_port: PortId) -> usize {
        match self.cfg.io.placement {
            Placement::NumaAware => {
                let w = self.cfg.workers_per_node;
                self.node_of_port(in_port) * w + hash as usize % w
            }
            Placement::NumaBlind => hash as usize % self.cfg.total_workers(),
        }
    }

    pub(super) fn on_gen(&mut self, sched: &mut Scheduler<Ev>) {
        let (meta, node, wire_done) = loop {
            // The input port rotates deterministically, so hosting is
            // decided from a free peek — an unhosted packet's metadata
            // (and, with keyed flows, its tuple draw) is never built.
            let node = self.node_of_port(self.gen.peek_port());
            if !self.hosted(node) {
                // Another shard simulates this packet; every shard
                // replays the same generator pacing so skipping it
                // here touches nothing — the hosted subset evolves
                // packet-for-packet like the sequential run.
                self.gen.skip_meta();
                let next = self.gen_peek_next();
                if next >= self.stop_at {
                    return;
                }
                if !self.cross_windowed && sched.peek_time().is_none_or(|t| next < t) {
                    continue;
                }
                self.schedule_gen(sched, next);
                return;
            }
            let meta = self.gen.next_meta();
            debug_assert!(meta.t >= sched.now());
            if meta.t >= self.measure_from {
                self.stats.offered.add(meta.len as u64);
            }

            // Closed-loop source throttle: the target RX ring reports
            // its occupancy upward; at or above the watermark the
            // source consumes the paced slot but drops at the
            // generator — the frame is never built and touches
            // neither the wire nor the fabric. Ring state at this
            // instant is deterministic (every earlier event has been
            // dispatched), and for hosted packets it is shard-local,
            // so the verdict is identical at every shard count.
            if let LoadMode::ClosedLoop { high_watermark } = self.gen.spec().load {
                let w = self.worker_for_hash(meta.rss_hash(), meta.port);
                if self.ring(w).len() >= high_watermark as usize {
                    self.stats.drops.backpressure += 1;
                    let next = self.gen_peek_next();
                    if next >= self.stop_at {
                        return;
                    }
                    // Same drain shortcut as the NIC-drop path below:
                    // the verdict reads ring state too, but only when
                    // the next arrival strictly precedes every pending
                    // event — nothing can mutate a ring in between.
                    if !self.cross_windowed && sched.peek_time().is_none_or(|t| next < t) {
                        continue;
                    }
                    self.schedule_gen(sched, next);
                    return;
                }
            }

            // Wire serialization into the NIC, then RX DMA through the
            // node's IOH into the huge packet buffer. The frame itself
            // is built only if the NIC admits it.
            let wire_done = self.port_mut(meta.port).rx_arrival(meta.t, meta.len);
            // Injected NIC faults (link-flap windows, starvation
            // bursts) kill the frame at the MAC before the admission
            // check; they consume RX wire time like any arrival but no
            // fabric bandwidth.
            let local_port = meta.port.0 as usize % self.cfg.ports_per_node() as usize;
            let faulted = match self.plan.as_mut() {
                Some(plan) => {
                    let port = &mut self.nodes[node].ports[local_port];
                    if !port.link_up(wire_done) {
                        plan.note_flap_drop(meta.port.0);
                        port.fault_drops += 1;
                        true
                    } else {
                        match plan.nic_fault(meta.port.0, wire_done) {
                            Some(NicFault::LinkFlap { down_ns }) => {
                                port.set_link_down(wire_done + down_ns);
                                port.fault_drops += 1;
                                true
                            }
                            Some(NicFault::Starve) => {
                                port.fault_drops += 1;
                                true
                            }
                            None => false,
                        }
                    }
                }
                None => false,
            };
            // Descriptor starvation: drop in the NIC before the DMA if
            // the IOH's inbound backlog is past the posted-descriptor
            // horizon (dropped frames must not consume fabric
            // bandwidth).
            if !faulted
                && self.nodes[node]
                    .ioh
                    .backlog(wire_done, Direction::DeviceToHost)
                    <= RX_ADMIT_BACKLOG
            {
                break (meta, node, wire_done);
            }
            self.stats.nic_drops += 1;
            // Ledger the cause separately — injected faults and
            // descriptor starvation share the NIC-drop total (which
            // keeps `rx_drops` pins intact) but not a ledger counter,
            // so fault invariants stay decomposable per cause.
            if faulted {
                self.stats.drops.nic_fault += 1;
            } else {
                self.stats.drops.nic_admission += 1;
            }
            let next = self.gen_peek_next();
            if next >= self.stop_at {
                return;
            }
            // The drop verdict reads only generator, RX-wire, and
            // inbound-IOH state, all mutated exclusively here — so
            // while the next arrival strictly precedes every other
            // pending event (which could advance the IOH's shared
            // capacity horizon), consecutive drops drain in this loop
            // instead of paying one scheduler round-trip each. In a
            // windowed parallel run the shortcut is off: `Gen` must
            // not run ahead of a window deadline, because barrier
            // deliveries reserve the same IOH capacity.
            if !self.cross_windowed && sched.peek_time().is_none_or(|t| next < t) {
                continue;
            }
            self.schedule_gen(sched, next);
            return;
        };
        let len = meta.len;
        let mut dma_done =
            self.nodes[node]
                .ioh
                .dma(wire_done, Direction::DeviceToHost, dma_bytes(len));
        let mut crossed = false;
        if self.cfg.io.placement == Placement::NumaBlind && self.cfg.nodes > 1 {
            // Blind placement: ~3/4 of packets touch a remote
            // structure (blind RSS x blind buffer allocation, see
            // `Placement::remote_fraction`), so their DMA crosses the
            // other IOH too.
            if meta.id % 4 != 0 {
                let other = (node + 1) % self.cfg.nodes;
                let mirrored =
                    self.nodes[other]
                        .ioh
                        .dma(wire_done, Direction::DeviceToHost, dma_bytes(len));
                dma_done = dma_done.max(mirrored);
                crossed = true;
            }
        }
        // The NIC hashes the tuple it is already holding; parsing it
        // back out of the frame bytes would give the same value
        // (pinned by `meta_hash_matches_frame_parse`).
        let hash = meta.rss_hash();
        let worker = self.worker_for_hash(hash, meta.port);
        let buf = self.free_bufs.pop().unwrap_or_default();
        let mut p = self.gen.materialize_into(&meta, buf);
        p.arrival = dma_done;
        // Priority classification: a pure function of the RSS hash,
        // so the lane a flow takes is identical on every shard.
        let prio = self.cfg.latency.priority.is_some_and(|c| c.matches(hash));
        p.priority = prio;
        // On-the-wire corruption: the frame was admitted and DMA'd,
        // but its bytes arrive damaged. The flag lets every later
        // drop or delivery settle against the fault ledger.
        if let Some(plan) = self.plan.as_mut() {
            if plan
                .corrupt_frame(meta.port.0, wire_done, &mut p.data)
                .is_some()
            {
                p.corrupted = true;
            }
        }
        let pkt = self.event_box(p);
        let ev = Ev::RxReady { worker, pkt };
        if crossed {
            // A node's crossing packets finish at the max of *two*
            // IOH horizons while its local-only packets track one, so
            // the interleaved per-node stream is not monotone — those
            // completions take the heap.
            sched.at(dma_done, ev);
        } else {
            // Local-only RX completions come out of the node IOH's
            // bandwidth server in nondecreasing order: a FIFO lane
            // spares the heap. Priority completions are a subsequence
            // of that same monotone stream, so they keep the lane
            // contract on their own dedicated lane.
            let lane = if prio { self.prio_rx_lane(node) } else { node };
            sched.at_fifo(lane, dma_done, ev);
        }

        // Next arrival (open loop) until the generation window ends.
        let next = self.gen_peek_next();
        if next < self.stop_at {
            self.schedule_gen(sched, next);
        }
    }

    /// Schedule the next `Gen` event. The generator paces arrivals in
    /// nondecreasing order, so the whole Gen chain rides one dedicated
    /// FIFO lane (just past the per-port TX lanes) instead of churning
    /// the heap — `at_fifo` is observably identical to `at`, this is
    /// pure constant-factor relief for the hottest event in the run.
    /// It matters most in shard replicas, which replay the full
    /// generator stream and pay one Gen round-trip per skipped packet.
    fn schedule_gen(&self, sched: &mut Scheduler<Ev>, next: Time) {
        sched.at_fifo(self.cfg.nodes + self.cfg.ports as usize, next, Ev::Gen);
    }

    fn gen_peek_next(&self) -> Time {
        // Generator paces deterministically; its next emission time is
        // exposed by running it lazily: we schedule Gen at the time the
        // *next* packet will carry. Peek by cloning cost would be
        // heavy; instead the generator's pacing makes next_time public
        // through spec: we simply reuse its internal pacing by asking
        // for the time of the next packet on the next Gen event.
        self.gen.next_time()
    }

    pub(super) fn on_rx_ready(
        &mut self,
        sched: &mut Scheduler<Ev>,
        worker: usize,
        pkt: Box<Packet>,
    ) {
        let now = sched.now();
        let pkt = self.event_unbox(pkt);
        let prio = pkt.priority;
        let ring = if prio {
            self.prio_ring_mut(worker)
        } else {
            self.ring_mut(worker)
        };
        if let Err(p) = ring.push(pkt) {
            if p.corrupted {
                if let Some(plan) = self.plan.as_mut() {
                    plan.note_corrupt_dropped(1);
                }
            }
            self.reclaim_buf(p.data);
            return; // tail drop, counted by the ring
        }
        if prio {
            ps_io::trace::trace_prio_ring_depth(
                worker as u32,
                now,
                self.prio_ring(worker).len() as u64,
            );
        } else {
            ps_io::trace::trace_ring_depth(worker as u32, now, self.ring(worker).len() as u64);
        }
        if self.worker(worker).idle {
            // Fire the RX interrupt. Moderation holds the wake back to
            // one interrupt per moderation window — the throughput
            // regime. Priority arrivals always fire eagerly; adaptive
            // mode also fires eagerly while the queue is shallow (the
            // latency regime) and falls back to moderation once depth
            // reaches the bulk batch cap, where batching amortizes
            // the per-wake overhead anyway.
            let moderation = self.cfg.testbed.nic.interrupt_moderation_ns;
            let eager = prio
                || (self.cfg.latency.adaptive_batch
                    && self.ring(worker).len() < self.cfg.io.batch_cap);
            let w = self.worker_mut(worker);
            w.idle = false;
            let t = if eager {
                now + INT_LATENCY
            } else {
                (now + INT_LATENCY).max(w.last_int + moderation)
            };
            w.last_int = t;
            self.wake_worker(sched, worker, t);
        }
    }
}
