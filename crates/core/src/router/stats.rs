//! Per-run counters and the deterministic cross-shard report merge.
//!
//! All of the router's scalar statistics live in [`RunStats`] so that
//! a parallel run can combine shards with plain commutative sums —
//! the merged [`super::RouterReport`] is a pure function of the
//! per-shard virtual-time results, independent of thread timing.

use ps_fault::FaultStats;
use ps_pktgen::DropLedger;
use ps_sim::stats::{Histogram, PacketCounter};
use ps_sim::time::Time;

use crate::app::App;

use super::report::RouterReport;
use super::Router;

/// The counters the data plane accumulates during a run. Every field
/// is a sum (or a counter of sums), so merging shards is field-wise
/// addition.
#[derive(Debug, Default)]
pub(crate) struct RunStats {
    /// Packets offered by the generator inside the measurement window.
    pub offered: PacketCounter,
    /// Drops in the NIC FIFO (descriptor starvation under overload).
    pub nic_drops: u64,
    /// Packets dropped by the application.
    pub app_drops: u64,
    /// Packets diverted to the host slow path.
    pub slow_path: u64,
    /// Shading launches and the packets they carried.
    pub shade_batches: u64,
    /// Packets across all shading launches.
    pub shade_packets: u64,
    /// RX fetches and the packets they carried.
    pub rx_batches: u64,
    /// Packets across all RX fetches.
    pub rx_packets: u64,
    /// Decomposed drop causes. `ring_tail` stays zero here (rings
    /// count their own tail drops); the report fills it in. The
    /// NIC-side counters satisfy `nic_fault + nic_admission ==
    /// nic_drops` by construction.
    pub drops: DropLedger,
    /// Per-packet RX→TX sojourn (RX DMA completion to last TX bit).
    pub sojourn: Histogram,
    /// Sojourn of priority-lane packets only.
    pub prio_sojourn: Histogram,
}

fn mean(packets: u64, batches: u64) -> f64 {
    if batches == 0 {
        0.0
    } else {
        packets as f64 / batches as f64
    }
}

impl<A: App> Router<A> {
    /// Build the report over measurement window `window`.
    pub fn report(&self, window: Time) -> RouterReport {
        let ring_drops: u64 = self
            .nodes
            .iter()
            .flat_map(|n| n.rings.iter().chain(n.prio_rings.iter()))
            .map(|r| r.drops)
            .sum();
        let peak_ring_depth = self
            .nodes
            .iter()
            .flat_map(|n| n.rings.iter().chain(n.prio_rings.iter()))
            .map(|r| r.peak)
            .max()
            .unwrap_or(0);
        debug_assert_eq!(
            self.stats.drops.nic_fault + self.stats.drops.nic_admission,
            self.stats.nic_drops,
            "NIC ledger counters must decompose the NIC-drop total"
        );
        let drops = DropLedger {
            ring_tail: ring_drops,
            ..self.stats.drops
        };
        RouterReport {
            window,
            offered: self.stats.offered,
            delivered: self.sink.delivered,
            latency: self.sink.latency.clone(),
            prio_latency: self.sink.prio_latency.clone(),
            sojourn: self.stats.sojourn.clone(),
            prio_sojourn: self.stats.prio_sojourn.clone(),
            drops,
            peak_ring_depth,
            rx_drops: self.stats.nic_drops + ring_drops,
            app_drops: self.stats.app_drops,
            slow_path: self.stats.slow_path,
            gpu_kernels: self
                .nodes
                .iter()
                .filter_map(|n| n.gpu.as_ref())
                .map(|g| g.kernels_launched)
                .sum(),
            mean_shade_batch: mean(self.stats.shade_packets, self.stats.shade_batches),
            mean_rx_batch: mean(self.stats.rx_packets, self.stats.rx_batches),
            ioh_d2h_gbit: self
                .nodes
                .iter()
                .map(|n| n.ioh.d2h_bytes() as f64 * 8.0 / window as f64)
                .collect(),
            ioh_h2d_gbit: self
                .nodes
                .iter()
                .map(|n| n.ioh.h2d_bytes() as f64 * 8.0 / window as f64)
                .collect(),
            drop_split: (self.stats.nic_drops, ring_drops),
            faults: match &self.plan {
                Some(p) => p.stats.clone(),
                None => FaultStats::default(),
            },
            staging: self.app.staging_totals(),
        }
    }
}

/// Deterministically merge the shards of a parallel run into one
/// report. Every combined quantity is a commutative, associative fold
/// (counter sums, bucket-wise histogram addition, element-wise IOH
/// byte sums), so the result does not depend on shard count or thread
/// interleaving — `tests/shards.rs` pins reports at shards ∈
/// {1,2,4,8} against each other.
///
/// Parallel runs never arm a fault plan (faulted runs are planned
/// sequential), so the merged ledger is all-zero by construction.
pub(crate) fn merged_report<A: App>(shards: &[Router<A>], window: Time) -> RouterReport {
    let mut offered = PacketCounter::default();
    let mut delivered = PacketCounter::default();
    let mut latency = Histogram::new();
    let mut prio_latency = Histogram::new();
    let mut sojourn = Histogram::new();
    let mut prio_sojourn = Histogram::new();
    let mut drops = DropLedger::default();
    let mut peak_ring_depth = 0usize;
    let mut nic_drops = 0u64;
    let mut ring_drops = 0u64;
    let mut app_drops = 0u64;
    let mut slow_path = 0u64;
    let mut gpu_kernels = 0u64;
    let mut shade = (0u64, 0u64); // (packets, batches)
    let mut rx = (0u64, 0u64);
    let nodes = shards.first().map_or(0, |s| s.nodes.len());
    let mut d2h = vec![0.0f64; nodes];
    let mut h2d = vec![0.0f64; nodes];
    let mut staging: Option<(u64, u64, u64)> = None;
    for s in shards {
        offered.merge(&s.stats.offered);
        delivered.merge(&s.sink.delivered);
        latency.merge(&s.sink.latency);
        prio_latency.merge(&s.sink.prio_latency);
        sojourn.merge(&s.stats.sojourn);
        prio_sojourn.merge(&s.stats.prio_sojourn);
        nic_drops += s.stats.nic_drops;
        let shard_ring_drops = s
            .nodes
            .iter()
            .flat_map(|n| n.rings.iter().chain(n.prio_rings.iter()))
            .map(|r| r.drops)
            .sum::<u64>();
        ring_drops += shard_ring_drops;
        drops.merge(&DropLedger {
            ring_tail: shard_ring_drops,
            ..s.stats.drops
        });
        peak_ring_depth = peak_ring_depth.max(
            s.nodes
                .iter()
                .flat_map(|n| n.rings.iter().chain(n.prio_rings.iter()))
                .map(|r| r.peak)
                .max()
                .unwrap_or(0),
        );
        app_drops += s.stats.app_drops;
        slow_path += s.stats.slow_path;
        gpu_kernels += s
            .nodes
            .iter()
            .filter_map(|n| n.gpu.as_ref())
            .map(|g| g.kernels_launched)
            .sum::<u64>();
        shade.0 += s.stats.shade_packets;
        shade.1 += s.stats.shade_batches;
        rx.0 += s.stats.rx_packets;
        rx.1 += s.stats.rx_batches;
        // A shard only moves bytes through the IOHs of nodes it
        // hosts (plus cross-window deliveries *into* hosted nodes);
        // non-hosted entries are zero, so element-wise sums recover
        // the per-node totals.
        for (i, n) in s.nodes.iter().enumerate() {
            d2h[i] += n.ioh.d2h_bytes() as f64 * 8.0 / window as f64;
            h2d[i] += n.ioh.h2d_bytes() as f64 * 8.0 / window as f64;
        }
        if let Some((sh, sd, sp)) = s.app.staging_totals() {
            let (h, d, p) = staging.unwrap_or((0, 0, 0));
            staging = Some((h + sh, d + sd, p + sp));
        }
    }
    RouterReport {
        window,
        offered,
        delivered,
        latency,
        prio_latency,
        sojourn,
        prio_sojourn,
        drops,
        peak_ring_depth,
        rx_drops: nic_drops + ring_drops,
        app_drops,
        slow_path,
        gpu_kernels,
        mean_shade_batch: mean(shade.0, shade.1),
        mean_rx_batch: mean(rx.0, rx.1),
        ioh_d2h_gbit: d2h,
        ioh_h2d_gbit: h2d,
        drop_split: (nic_drops, ring_drops),
        faults: FaultStats::default(),
        staging,
    }
}
