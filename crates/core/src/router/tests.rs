//! Router-level behavior tests (throughput envelopes, determinism,
//! RSS hashing), relocated unchanged from the pre-split monolith.

use super::*;
use crate::apps::{ForwardPattern, MinimalApp};
use crate::config::RouterConfig;
use ps_pktgen::{Generator, TrafficSpec};
use ps_sim::{MICROS, MILLIS, SECONDS};

fn spec(gbps: f64, ports: u16) -> TrafficSpec {
    let mut s = TrafficSpec::ipv4_64b(gbps, 42);
    s.ports = ports;
    s
}

#[test]
fn light_load_is_delivered_losslessly() {
    let cfg = RouterConfig::paper_cpu();
    let app = MinimalApp::new(ForwardPattern::SameNode, 8);
    let report = Router::run(cfg, app, spec(4.0, 8), 4 * MILLIS);
    assert!(
        report.delivery_ratio() > 0.999,
        "ratio {}",
        report.delivery_ratio()
    );
    assert_eq!(report.rx_drops, 0);
    let out = report.out_gbps();
    assert!((3.8..4.2).contains(&out), "out {out} Gbps");
}

#[test]
fn forwarding_saturates_near_40_gbps() {
    // Figure 6: minimal forwarding tops out just above 40 Gbps,
    // bound by the dual-IOH fabric.
    let cfg = RouterConfig::paper_cpu();
    let app = MinimalApp::new(ForwardPattern::SameNode, 8);
    let report = Router::run(cfg, app, spec(80.0, 8), 4 * MILLIS);
    let out = report.out_gbps();
    assert!((38.0..46.0).contains(&out), "saturated at {out} Gbps");
    assert!(report.rx_drops > 0, "overload must shed load");
}

#[test]
fn node_crossing_still_forwards_above_40() {
    let cfg = RouterConfig::paper_cpu();
    let app = MinimalApp::new(ForwardPattern::NodeCrossing, 8);
    let report = Router::run(cfg, app, spec(80.0, 8), 4 * MILLIS);
    let out = report.out_gbps();
    assert!(out > 36.0, "node-crossing {out} Gbps");
}

#[test]
fn numa_blind_loses_throughput() {
    let mut blind = RouterConfig::paper_cpu();
    blind.io = ps_io::IoConfig::numa_blind();
    let aware = RouterConfig::paper_cpu();
    let r_blind = Router::run(
        blind,
        MinimalApp::new(ForwardPattern::SameNode, 8),
        spec(80.0, 8),
        4 * MILLIS,
    );
    let r_aware = Router::run(
        aware,
        MinimalApp::new(ForwardPattern::SameNode, 8),
        spec(80.0, 8),
        4 * MILLIS,
    );
    assert!(
        r_blind.out_gbps() < r_aware.out_gbps() * 0.72,
        "blind {} vs aware {}",
        r_blind.out_gbps(),
        r_aware.out_gbps()
    );
}

#[test]
fn fig5_single_core_batching() {
    for (batch, lo, hi) in [(1usize, 0.6, 1.0), (64, 9.0, 11.5)] {
        let cfg = RouterConfig::fig5(batch);
        let app = MinimalApp::new(ForwardPattern::SameNode, 2);
        let report = Router::run(cfg, app, spec(20.0, 2), 4 * MILLIS);
        let out = report.out_gbps();
        assert!(
            (lo..hi).contains(&out),
            "batch {batch}: {out} Gbps not in [{lo},{hi}]"
        );
    }
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let cfg = RouterConfig::paper_cpu();
        let app = MinimalApp::new(ForwardPattern::SameNode, 8);
        let r = Router::run(cfg, app, spec(30.0, 8), 2 * MILLIS);
        (r.delivered.packets, r.latency.p50(), r.rx_drops)
    };
    assert_eq!(run(), run());
}

#[test]
fn latency_reasonable_at_moderate_load() {
    let cfg = RouterConfig::paper_cpu();
    let app = MinimalApp::new(ForwardPattern::SameNode, 8);
    let report = Router::run(cfg, app, spec(20.0, 8), 4 * MILLIS);
    let p50 = report.latency.p50();
    assert!(
        (10 * MICROS..SECONDS).contains(&p50),
        "p50 latency {p50} ns"
    );
}

#[test]
fn meta_hash_matches_frame_parse() {
    use ps_pktgen::TrafficKind;
    for kind in [TrafficKind::Ipv4Udp, TrafficKind::Ipv6Udp] {
        for flows in [None, Some(8)] {
            let mut g = Generator::new(TrafficSpec {
                kind,
                frame_len: 64,
                offered_bits: 1_000_000_000,
                ports: 4,
                seed: 9,
                flows,
                ..TrafficSpec::default()
            });
            for _ in 0..200 {
                let meta = g.next_meta();
                let p = g.materialize_into(&meta, Vec::new());
                assert_eq!(
                    meta.rss_hash(),
                    rss_hash(&p.data),
                    "kind {kind:?} flows {flows:?}"
                );
            }
        }
    }
}

#[test]
fn rss_hash_is_flow_stable() {
    let f1 = ps_net::PacketBuilder::udp_v4(
        ps_net::ethernet::MacAddr::local(1),
        ps_net::ethernet::MacAddr::local(2),
        "10.0.0.1".parse().expect("fixture src addr parses"),
        "10.0.0.2".parse().expect("fixture dst addr parses"),
        100,
        200,
        64,
    );
    assert_eq!(rss_hash(&f1), rss_hash(&f1));
    let f2 = ps_net::PacketBuilder::udp_v4(
        ps_net::ethernet::MacAddr::local(1),
        ps_net::ethernet::MacAddr::local(2),
        "10.0.0.1".parse().expect("fixture src addr parses"),
        "10.0.0.2".parse().expect("fixture dst addr parses"),
        100,
        201,
        64,
    );
    assert_ne!(rss_hash(&f1), rss_hash(&f2));
}
