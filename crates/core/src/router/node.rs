//! [`NodeShard`]: the hardware one NUMA domain owns.
//!
//! Every resource a packet touches between its RX wire and its TX wire
//! lives in exactly one shard — NIC ports, the IOH, the GPU engine,
//! the worker cores with their RX rings, and the master core. The
//! struct owns them exclusively (no `Rc`/`RefCell`), which is what
//! lets [`super::parallel`] hand whole shards to OS threads: the
//! borrow checker proves the domains share nothing.

use std::collections::VecDeque;

use ps_gpu::{GpuDevice, GpuEngine};
use ps_hw::ioh::Ioh;
use ps_hw::pcie::PcieModel;
use ps_io::Packet;
use ps_nic::port::{Port, PortId};
use ps_nic::ring::Ring;
use ps_sim::time::Time;

use crate::app::App;
use crate::chunk::Chunk;
use crate::config::{Mode, RouterConfig};

/// Per-worker-core state (§5.2 worker threads).
pub(crate) struct WorkerState {
    pub busy_until: Time,
    /// Armed RX interrupt (worker parked).
    pub idle: bool,
    /// Earliest already-scheduled wake, to dedupe events.
    pub next_wake: Option<Time>,
    /// Interrupt moderation horizon.
    pub last_int: Time,
    /// Chunks in flight at the master.
    pub outstanding: usize,
    /// Shaded chunks ready for post-processing: `(ready_at, chunk)`.
    pub done_queue: VecDeque<(Time, Chunk)>,
}

/// Per-node master-core state (§5.3 master threads).
pub(crate) struct MasterState {
    pub input: VecDeque<Chunk>,
    pub next_wake: Option<Time>,
    /// The master thread blocks in the shading step until this
    /// instant (with streams it only blocks for the copy submission).
    pub busy_until: Time,
}

/// All hardware owned by one NUMA domain.
pub(crate) struct NodeShard {
    /// This node's NIC ports (globally, ports
    /// `node * ports_per_node ..` map here in order).
    pub ports: Vec<Port>,
    /// The domain's I/O hub: every DMA this node's NICs and GPU issue
    /// is a reservation against these bandwidth servers.
    pub ioh: Ioh,
    /// The node's GPU engine; [`None`] in CPU-only mode.
    pub gpu: Option<GpuEngine>,
    /// Worker cores, indexed by local id.
    pub workers: Vec<WorkerState>,
    /// The node's master core.
    pub master: MasterState,
    /// Per-worker RX rings (RSS queues), parallel to `workers`.
    pub rings: Vec<Ring<Packet>>,
    /// Per-worker priority RX rings, parallel to `rings`. Packets the
    /// priority classifier marks land here and are fetched ahead of
    /// bulk traffic with a small cap; empty forever when no
    /// classifier is configured.
    pub prio_rings: Vec<Ring<Packet>>,
}

impl NodeShard {
    /// Build node `node`'s shard of the testbed described by `cfg`.
    pub fn new<A: App>(cfg: &RouterConfig, node: usize, app: &mut A) -> NodeShard {
        let tb = cfg.testbed;
        let per_node = cfg.ports_per_node();
        let ports = (0..per_node)
            .map(|i| Port::new(PortId(node as u16 * per_node + i), tb.nic.line_rate_bits))
            .collect();
        let mut ioh = Ioh::new(tb.ioh);
        ioh.set_trace_lane(node as u32);
        let gpu = (cfg.mode == Mode::CpuGpu).then(|| {
            let dev = GpuDevice {
                spec: tb.gpu,
                mem: ps_gpu::DeviceMemory::new(cfg.gpu_mem_bytes),
            };
            let mut eng = GpuEngine::new(dev, PcieModel::new(tb.pcie));
            eng.concurrent_copy = cfg.concurrent_copy;
            eng.trace_lane = node as u32;
            app.setup_gpu(node, &mut eng);
            eng
        });
        let workers = (0..cfg.workers_per_node)
            .map(|_| WorkerState {
                busy_until: 0,
                idle: true,
                next_wake: None,
                last_int: 0,
                outstanding: 0,
                done_queue: VecDeque::new(),
            })
            .collect();
        let master = MasterState {
            input: VecDeque::new(),
            next_wake: None,
            busy_until: 0,
        };
        let rings = (0..cfg.workers_per_node)
            .map(|_| Ring::new(cfg.io.ring_entries))
            .collect();
        let prio_rings = (0..cfg.workers_per_node)
            .map(|_| Ring::new(cfg.io.ring_entries))
            .collect();
        NodeShard {
            ports,
            ioh,
            gpu,
            workers,
            master,
            rings,
            prio_rings,
        }
    }
}
