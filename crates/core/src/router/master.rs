//! The master loop (§5.3): gather worker chunks into one batch,
//! shade it on the node's GPU (or fall back to the CPU under injected
//! faults), and scatter the results back to per-worker output queues.

use ps_fault::ShadeFault;
use ps_hw::ioh::Direction;
use ps_io::Packet;
use ps_sim::time::Time;
use ps_sim::{Scheduler, MICROS};

use crate::app::App;
use crate::chunk::Chunk;

use super::node::NodeShard;
use super::{Ev, Router};

/// Master orchestration cycles per gathered chunk (it "transfers the
/// input data ... without touching the data itself", §5.3).
const MASTER_CYCLES_PER_CHUNK: u64 = 300;
/// Driver timeout before the host notices a dead or escalated GPU
/// batch and starts the CPU fallback.
const FAULT_DETECT_NS: Time = 10 * MICROS;

impl<A: App> Router<A> {
    /// Trace lane for node `node`'s master gather work: masters get
    /// the lanes just above the workers so every thread in the machine
    /// has its own row in the timeline.
    fn gather_lane(&self, node: usize) -> u32 {
        (self.cfg.total_workers() + node) as u32
    }

    /// Trace lane for node `node`'s shading intervals. Kept separate
    /// from the gather lane because in stream mode the next gather
    /// overlaps the previous shade; per-lane stage spans stay disjoint
    /// so busy-time accounting can sum them.
    fn shade_lane(&self, node: usize) -> u32 {
        (self.cfg.total_workers() + self.cfg.nodes + node) as u32
    }

    pub(super) fn on_master_loop(&mut self, sched: &mut Scheduler<Ev>, node: usize) {
        let now = sched.now();
        self.master_mut(node).next_wake = None;
        if self.master_mut(node).busy_until > now {
            let t = self.master_mut(node).busy_until;
            self.wake_master(sched, node, t);
            return;
        }
        if self.master_mut(node).input.is_empty() {
            return;
        }
        // Gather pending chunks (Figure 10(b)); without gather, take
        // exactly one.
        let take = if self.cfg.gather {
            self.cfg
                .max_gather_chunks
                .min(self.master_mut(node).input.len())
        } else {
            1
        };
        let chunks: Vec<Chunk> = self.master_mut(node).input.drain(..take).collect();
        let mut all: Vec<Packet> = Vec::with_capacity(chunks.iter().map(Chunk::len).sum());
        let mut splits = Vec::with_capacity(take);
        for c in &chunks {
            splits.push((c.worker, c.len(), c.fetched_at));
        }
        for c in chunks {
            all.extend(c.packets);
        }

        let ready = now + self.cycles_ns(MASTER_CYCLES_PER_CHUNK * take as u64);
        self.stats.shade_batches += 1;
        self.stats.shade_packets += all.len() as u64;
        let n = all.len() as u64;
        ps_trace::complete(
            ps_trace::Category::Stage,
            "gather",
            self.gather_lane(node),
            now,
            ready,
            || vec![("chunks", take as u64), ("pkts", n)],
        );
        // Injected shading faults: a PCIe stall pushes the batch (and
        // the node's fabric) back by its retry backoff; an abort or an
        // exhausted retry budget sends the whole batch down the CPU
        // fallback; a straggler stretches the launch.
        let mut start = ready;
        let mut fallback = false;
        let mut straggle_pct = 0u32;
        if let Some(plan) = self.plan.as_mut() {
            match plan.shade_fault(node, ready) {
                ShadeFault::None => {}
                ShadeFault::PcieStall { stall_ns, escalate } => {
                    self.nodes[node]
                        .ioh
                        .inject_stall(ready, Direction::HostToDevice, stall_ns);
                    start = ready + stall_ns;
                    fallback = escalate;
                }
                ShadeFault::GpuAbort => {
                    fallback = true;
                    // A device context reset loses any state the app
                    // keeps synchronized on this node's GPU (a
                    // stateful NF's flow table); let it reconcile
                    // before the CPU fallback re-runs the batch.
                    self.app.on_gpu_fault(node);
                }
                ShadeFault::Straggle { extra_pct } => straggle_pct = extra_pct,
            }
        }

        if fallback {
            // The GPU batch is lost: after the driver timeout the
            // master re-runs the kernel functionally on the host at
            // the calibrated CPU cost. `process_cpu` may *remove*
            // packets the shader would only have unmarked, so the
            // scatter walks survivors against each split's original
            // id range (order is preserved).
            let ids: Vec<u64> = all.iter().map(|p| p.id).collect();
            let corrupt_before = all.iter().filter(|p| p.corrupted).count() as u64;
            let cycles = self.app.process_cpu(&mut all);
            let done = start + FAULT_DETECT_NS + self.cycles_ns(cycles);
            if let Some(plan) = self.plan.as_mut() {
                plan.note_cpu_fallback(ids.len() as u64);
                let after = all.iter().filter(|p| p.corrupted).count() as u64;
                plan.note_corrupt_dropped(corrupt_before - after);
            }
            self.stats.app_drops += (ids.len() - all.len()) as u64;
            ps_trace::complete(
                ps_trace::Category::Stage,
                "cpu_fallback",
                self.shade_lane(node),
                start,
                done,
                || vec![("pkts", n)],
            );
            let mut out: Vec<Vec<Packet>> = splits
                .iter()
                .map(|&(_, len, _)| Vec::with_capacity(len))
                .collect();
            let mut j = 0usize; // cursor into the original id sequence
            let mut s = 0usize; // current split
            let mut bound = splits[0].1;
            for p in all {
                while ids[j] != p.id {
                    j += 1;
                }
                while j >= bound {
                    s += 1;
                    bound += splits[s].1;
                }
                out[s].push(p);
                j += 1;
            }
            for ((worker, _, fetched_at), pkts) in splits.into_iter().zip(out) {
                let chunk = Chunk::new(worker, pkts, fetched_at);
                self.worker_mut(worker).done_queue.push_back((done, chunk));
                self.wake_worker(sched, worker, done);
            }
            // The master itself did the fallback work: it blocks
            // until the batch is done regardless of stream mode.
            self.master_mut(node).busy_until = done;
        } else {
            let NodeShard { ioh, gpu, .. } = &mut self.nodes[node];
            let done = self.app.shade(
                node,
                gpu.as_mut().expect("CpuGpu mode has a GPU per node"),
                ioh,
                start,
                &mut all,
            );
            let done = if straggle_pct > 0 {
                let extra = (done - start) * u64::from(straggle_pct) / 100;
                // The straggling warp occupies the engines past the
                // modeled completion, queueing the next launch too.
                self.nodes[node]
                    .gpu
                    .as_mut()
                    .expect("CpuGpu mode has a GPU per node")
                    .delay_engines(extra);
                if let Some(plan) = self.plan.as_mut() {
                    plan.note_straggle_ns(extra);
                }
                done + extra
            } else {
                done
            };
            ps_trace::complete(
                ps_trace::Category::Stage,
                "shade",
                self.shade_lane(node),
                start,
                done,
                || vec![("pkts", n)],
            );

            // Scatter results back to per-worker output queues, moving
            // the packets out of the gathered batch — no per-packet
            // clones of the frame data.
            let mut rest = all.into_iter();
            for (worker, len, fetched_at) in splits {
                let pkts: Vec<Packet> = rest.by_ref().take(len).collect();
                let chunk = Chunk::new(worker, pkts, fetched_at);
                self.worker_mut(worker).done_queue.push_back((done, chunk));
                self.wake_worker(sched, worker, done);
            }

            // With streams the master pipelines the next gather behind
            // this one as soon as this gather's uploads are queued;
            // without streams it blocks until the results are back.
            self.master_mut(node).busy_until = if self.cfg.concurrent_copy {
                start.max(
                    self.nodes[node]
                        .gpu
                        .as_ref()
                        .expect("CpuGpu mode has a GPU per node")
                        .next_copy_slot(),
                )
            } else {
                done
            };
        }
        if !self.master_mut(node).input.is_empty() {
            let t = self.master_mut(node).busy_until;
            self.wake_master(sched, node, t);
        }
    }
}
