//! # ps-core — the PacketShader framework (paper §5) and applications (§6.2)
//!
//! The paper's contribution assembled over the substrates: a
//! worker/master software router with GPU offload, reproduced as a
//! deterministic discrete-event simulation whose *data plane is
//! functionally real* — every packet is parsed, looked up, rewritten
//! and (for IPsec) encrypted for real; only hardware timing comes
//! from the calibrated models in `ps-hw`/`ps-gpu`.
//!
//! Architecture (Figure 7):
//!
//! * per NUMA node: three worker threads + one master thread in
//!   CPU+GPU mode, four workers in CPU-only mode (§6.1);
//! * workers fetch **chunks** (capped batches, §5.3) from their
//!   per-queue virtual interfaces, run the application's
//!   **pre-shading**, and hand input to the node's master;
//! * the master **gathers** queued chunks (Figure 10(b)), runs the
//!   **shading** step on the node's GPU (copy → kernel → copy,
//!   optionally with concurrent copy & execution, Figure 10(c)), and
//!   **scatters** results back to per-worker output queues;
//! * workers **post-shade** and transmit; RSS keeps flows on one
//!   worker so FIFO order holds per flow (§5.3).
//!
//! [`apps`] implements the four evaluated applications (IPv4, IPv6,
//! OpenFlow, IPsec), each in CPU-only and CPU+GPU modes, over the
//! same functional code paths.

pub mod app;
pub mod apps;
pub mod chunk;
pub mod columns;
pub mod config;
pub mod kernels;
pub mod router;

pub use app::{App, PreShadeResult, ShardAffinity};
pub use chunk::Chunk;
pub use columns::{ColumnSet, ColumnSpec, ColumnStage};
pub use config::{LatencyConfig, Mode, PriorityClass, RouterConfig};
pub use ps_gpu::Staging;
pub use router::{Router, RouterReport};
